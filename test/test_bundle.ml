(** The configuration-bundle codec (DESIGN.md §6.9).

    A bundle is a real artifact: the autotuner emits one, CI archives
    it, and [rio_serve --bundle] boots from it — so the codec must
    round-trip every valid bundle exactly, keep its digest stable
    under field reordering (the digest names the *configuration*, not
    the byte layout), and reject malformed input with a typed error
    instead of a best-effort guess. *)

module B = Rio.Bundle
module O = Rio.Options

(* ------------------------------------------------------------------ *)
(* Generator: random valid bundles                                    *)
(* ------------------------------------------------------------------ *)

let gen_string =
  QCheck.Gen.(
    string_size ~gen:(oneof [ char_range 'a' 'z'; char_range '0' '9' ])
      (int_range 0 12))

let gen_opts : O.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* opt_level = int_range 0 3 in
  let* trace_threshold = int_range 1 500 in
  let* max_trace_blocks = int_range 2 32 in
  let* spec_threshold = int_range 1 64 in
  let* spec_max_violations = int_range 1 16 in
  let* quantum = int_range 1_000 500_000 in
  let* link_indirect = bool in
  let* always_save_flags = bool in
  let* flush_policy = oneofl [ O.Flush_fifo; O.Flush_full ] in
  let* reopt =
    if opt_level >= 1 then opt (int_range 1 16) else return None
  in
  let base =
    {
      O.default with
      opt_level;
      trace_threshold;
      max_trace_blocks;
      spec_threshold;
      spec_max_violations;
      quantum;
      link_indirect;
      always_save_flags;
      flush_policy;
      reopt_threshold = reopt;
    }
  in
  let* cap = opt (int_range 2 4) in
  let* ctx_cost = int_range 1 100 in
  return
    {
      base with
      O.cache_capacity = Option.map (fun k -> k * O.min_cache_capacity base) cap;
      costs = { base.O.costs with O.context_switch = ctx_cost };
    }

let gen_pool : O.pool_opts QCheck.Gen.t =
  let open QCheck.Gen in
  let* domains = int_range 1 4 in
  let* max_inflight = int_range 1 128 in
  let* affinity = bool in
  let* retries = int_range 1 4 in
  let* quarantine_threshold = int_range 1 5 in
  let* accept_queue = int_range 1 256 in
  let* batch_window = int_range 0 16 in
  let* prewarm = bool in
  let* min_domains = opt (int_range 1 domains) in
  let* scale_down_depth = int_range 0 3 in
  let* scale_up_depth = int_range (scale_down_depth + 1) 8 in
  let* scale_hysteresis = int_range 1 5 in
  return
    {
      O.default_pool with
      domains;
      max_inflight;
      affinity;
      retries;
      quarantine_threshold;
      accept_queue;
      batch_window;
      prewarm;
      min_domains;
      scale_up_depth;
      scale_down_depth;
      scale_hysteresis;
    }

let override_names = [ "art"; "gcc"; "gzip"; "parser" ]  (* sorted *)

let gen_overrides : (string * int) list QCheck.Gen.t =
  let open QCheck.Gen in
  let* picks =
    flatten_l
      (List.map
         (fun n ->
           let* keep = bool in
           let* lvl = int_range 0 3 in
           return (if keep then Some (n, lvl) else None))
         override_names)
  in
  return (List.filter_map Fun.id picks)

let gen_bundle : B.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* b_opts = gen_opts in
  let* b_pool = gen_pool in
  let* b_overrides = gen_overrides in
  let* created_by = gen_string in
  let* note = gen_string in
  return
    {
      B.b_opts;
      b_pool;
      b_overrides;
      b_provenance =
        { B.default_provenance with pv_created_by = created_by; pv_note = note };
    }

let bundle_arb =
  QCheck.make ~print:(fun b -> B.to_string b) gen_bundle

(* ------------------------------------------------------------------ *)
(* Round trip                                                         *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"of_string (to_string b) = Ok b" bundle_arb
    (fun b ->
      QCheck.assume (B.validate b = Ok ());
      match B.of_string (B.to_string b) with
      | Ok b' ->
          if b' = b then true
          else QCheck.Test.fail_reportf "round trip changed the bundle"
      | Error e ->
          QCheck.Test.fail_reportf "round trip failed: %s" (B.error_to_string e))

(* ------------------------------------------------------------------ *)
(* Digest stability across field reordering                           *)
(* ------------------------------------------------------------------ *)

(* Deterministic shuffle of every object's field order; array order is
   semantic (pass lists) and stays put. *)
let rec shuffle_json rand (j : B.json) : B.json =
  match j with
  | B.Obj kvs ->
      let tagged =
        List.map (fun kv -> (rand (), kv)) kvs
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      B.Obj (List.map (fun (_, (k, v)) -> (k, shuffle_json rand v)) tagged)
  | B.Arr xs -> B.Arr (List.map (shuffle_json rand) xs)
  | _ -> j

let lcg_rand seed =
  let s = ref (seed land 0x3fff_ffff) in
  fun () ->
    s := ((!s * 1103515245) + 12345) land 0x3fff_ffff;
    !s

let prop_digest_reorder =
  QCheck.Test.make ~count:100
    ~name:"digest and parse stable under field reordering"
    QCheck.(pair bundle_arb (make Gen.(int_bound 0xffff)))
    (fun (b, seed) ->
      QCheck.assume (B.validate b = Ok ());
      let reordered = shuffle_json (lcg_rand seed) (B.to_json b) in
      match B.of_json reordered with
      | Ok b' ->
          if b' <> b then
            QCheck.Test.fail_reportf "reordered parse changed the bundle"
          else if B.digest b' <> B.digest b then
            QCheck.Test.fail_reportf "digest moved: %08x vs %08x" (B.digest b')
              (B.digest b)
          else true
      | Error e ->
          QCheck.Test.fail_reportf "reordered parse failed: %s"
            (B.error_to_string e))

(* The digest names the configuration payload only: provenance edits
   (who tuned it, when, the note) must not move it. *)
let test_digest_ignores_provenance () =
  let b =
    { B.b_opts = O.default; b_pool = O.default_pool; b_overrides = [];
      b_provenance = B.default_provenance }
  in
  let b' =
    { b with
      B.b_provenance =
        { B.pv_created_by = "someone-else"; pv_created_at = "2199-01-01";
          pv_objective = "different"; pv_note = "edited after the fact" } }
  in
  Alcotest.(check bool) "digest unchanged" true (B.digest b = B.digest b')

(* ------------------------------------------------------------------ *)
(* Typed rejection                                                    *)
(* ------------------------------------------------------------------ *)

let err_kind = function
  | Ok _ -> "ok"
  | Error (B.Io_error _) -> "io"
  | Error (B.Parse_error _) -> "parse"
  | Error (B.Unknown_key k) -> "unknown:" ^ k
  | Error (B.Bad_value (f, _)) -> "bad:" ^ f
  | Error (B.Stale_version v) -> Printf.sprintf "stale:%d" v
  | Error (B.Invalid_bundle _) -> "invalid"

let check_reject name expected text =
  Alcotest.(check string) name expected (err_kind (B.of_string text))

let test_rejections () =
  check_reject "unknown top-level key" "unknown:zzz"
    {|{"bundle_version": 1, "zzz": 3}|};
  check_reject "unknown engine key" "unknown:engine.warp_factor"
    {|{"bundle_version": 1, "engine": {"warp_factor": 9}}|};
  check_reject "unknown costs key" "unknown:engine.costs.telepathy"
    {|{"bundle_version": 1, "engine": {"costs": {"telepathy": 1}}}|};
  check_reject "stale version" "stale:3" {|{"bundle_version": 3}|};
  check_reject "missing version" "bad:bundle_version" {|{"engine": {}}|};
  check_reject "out-of-range opt level" "invalid"
    {|{"bundle_version": 1, "engine": {"opt_level": 9}}|};
  check_reject "negative trace threshold" "bad:engine.trace_threshold"
    {|{"bundle_version": 1, "engine": {"trace_threshold": -5}}|};
  check_reject "zero quantum" "bad:engine.quantum"
    {|{"bundle_version": 1, "engine": {"quantum": 0}}|};
  check_reject "out-of-range override" "bad:overrides.gzip"
    {|{"bundle_version": 1, "overrides": {"gzip": 7}}|};
  check_reject "non-integer override" "bad:overrides.gcc"
    {|{"bundle_version": 1, "overrides": {"gcc": "fast"}}|};
  check_reject "wrong field type" "bad:engine.quantum"
    {|{"bundle_version": 1, "engine": {"quantum": "often"}}|};
  check_reject "bad flush policy" "bad:engine.flush_policy"
    {|{"bundle_version": 1, "engine": {"flush_policy": "lru"}}|};
  check_reject "unknown pool key" "unknown:pool.turbo"
    {|{"bundle_version": 1, "pool": {"turbo": true}}|};
  check_reject "zero accept queue" "invalid"
    {|{"bundle_version": 1, "pool": {"accept_queue": 0}}|};
  check_reject "negative batch window" "invalid"
    {|{"bundle_version": 1, "pool": {"batch_window": -1}}|};
  check_reject "non-bool prewarm" "bad:pool.prewarm"
    {|{"bundle_version": 1, "pool": {"prewarm": 3}}|};
  check_reject "min-domains above domains" "invalid"
    {|{"bundle_version": 1, "pool": {"domains": 2, "min_domains": 4}}|};
  check_reject "overlapping scale thresholds" "invalid"
    {|{"bundle_version": 1, "pool": {"scale_up_depth": 1, "scale_down_depth": 1}}|};
  check_reject "zero scale hysteresis" "invalid"
    {|{"bundle_version": 1, "pool": {"scale_hysteresis": 0}}|};
  check_reject "duplicate key" "parse"
    {|{"bundle_version": 1, "bundle_version": 1}|};
  check_reject "trailing garbage" "parse" {|{"bundle_version": 1} x|};
  check_reject "digest mismatch" "bad:digest"
    {|{"bundle_version": 1, "digest": "00000000"}|}

(* A stored digest that matches is accepted; the written form always
   carries one that matches. *)
let test_digest_verified () =
  let b =
    { B.b_opts = { O.default with O.opt_level = 2 }; b_pool = O.default_pool;
      b_overrides = [ ("gcc", 0) ]; b_provenance = B.default_provenance }
  in
  (match B.of_string (B.to_string b) with
   | Ok b' -> Alcotest.(check bool) "accepted with own digest" true (b' = b)
   | Error e -> Alcotest.failf "rejected: %s" (B.error_to_string e));
  (* flip the embedded digest and it must be refused *)
  let replace sub by s =
    let n = String.length sub in
    let rec find i =
      if i + n > String.length s then None
      else if String.sub s i n = sub then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> s
    | Some i ->
        String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n)
  in
  let tampered =
    replace (Printf.sprintf "%08x" (B.digest b)) "deadbeef" (B.to_string b)
  in
  Alcotest.(check string) "tampered digest refused" "bad:digest"
    (err_kind (B.of_string tampered))

(* ------------------------------------------------------------------ *)
(* Override projection                                                *)
(* ------------------------------------------------------------------ *)

let test_opts_for () =
  let base =
    { O.default with O.opt_level = 3; reopt_threshold = Some 4 }
  in
  let b =
    { B.b_opts = base; b_pool = O.default_pool;
      b_overrides = [ ("gcc", 0); ("gzip", 1) ];
      b_provenance = B.default_provenance }
  in
  Alcotest.(check bool) "bundle valid" true (B.validate b = Ok ());
  Alcotest.(check int) "no override -> base level" 3
    (B.opts_for b "art").O.opt_level;
  Alcotest.(check int) "gzip demoted" 1 (B.opts_for b "gzip").O.opt_level;
  let gcc = B.opts_for b "gcc" in
  Alcotest.(check int) "gcc off" 0 gcc.O.opt_level;
  (* the level-0 projection must drop level-gated knobs so it is a
     valid configuration on its own *)
  Alcotest.(check bool) "gcc projection valid" true
    (O.validate gcc = Ok ());
  Alcotest.(check bool) "reopt dropped at level 0" true
    (gcc.O.reopt_threshold = None)

let () =
  Alcotest.run "bundle"
    [
      ( "roundtrip",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_digest_reorder;
        ] );
      ( "directed",
        [
          Alcotest.test_case "digest ignores provenance" `Quick
            test_digest_ignores_provenance;
          Alcotest.test_case "typed rejection" `Quick test_rejections;
          Alcotest.test_case "embedded digest verified" `Quick
            test_digest_verified;
          Alcotest.test_case "override projection" `Quick test_opts_for;
        ] );
    ]
