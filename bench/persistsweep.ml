(** Persist sweep: the warm-boot gate for the persistent code cache
    (DESIGN.md §6.8), written to BENCH_persist.json.

    Two parts, both hard gates:

    {b Warm vs cold boot.}  For every workload in the suite, prime an
    instance over a few requests, snapshot it with
    {!Rio.Engine.save_image}, then serve a batch of first-requests two
    ways: fresh engines (cold boot, every block and trace rebuilt) and
    image-loaded engines (warm boot, fragments re-materialized by
    relocation replay).  In full mode the two passes cover 1000 first
    requests.  Every run must be output-identical to the native
    reference and every image load must be accepted.  The gated metric
    is the {e boot tax}: modelled cycles spent in the runtime during a
    first request (block building, trace selection, optimization,
    dispatch) — warm boot must cut it by >= 1.5x on the geomean.  The
    application retires the same instructions either way, so this is
    exactly the MIPS ratio over the boot window; whole-request
    simulated time (diluted by app execution, reported alongside) must
    not regress.

    {b Compaction.}  A directed two-thread scenario builds the
    fragmentation pattern FIFO eviction cannot solve: thread A parks
    inside its own trace mid-region (quantum expiry pins it), and
    thread B then needs a contiguous trace allocation larger than any
    hole but smaller than total free space.  With compaction disabled
    the trace is dropped (No_room with only pinned fragments left);
    with compaction enabled the pinned trace slides toward the region
    base — the parked thread's pc moves with it — and the allocation
    succeeds.  The gate: the FIFO-only run drops at least one trace,
    the compacting run drops none, and both produce native output. *)

open Workloads

let pr fmt = Printf.printf fmt

let arm_alarm ~quick =
  Sys.set_signal Sys.sigalrm
    (Sys.Signal_handle
       (fun _ ->
         prerr_endline "!! persistsweep: HANG — alarm fired before completion";
         exit 3));
  ignore (Unix.alarm (if quick then 300 else 900))

let prime_requests = 2
let batch ~quick = if quick then 3 else 50

(* ------------------------------------------------------------------ *)
(* Warm vs cold boot                                                  *)
(* ------------------------------------------------------------------ *)

type wl_row = {
  r_name : string;
  r_persisted : int;
  r_loaded : int;
  r_refused : int;
  r_cold_cycles : int;
  r_warm_cycles : int;
  r_cold_rt_cycles : int;  (* modelled cycles spent in the runtime *)
  r_warm_rt_cycles : int;
  r_cold_blocks : int;
  r_warm_blocks : int;
  r_cold_host_s : float;
  r_warm_host_s : float;
  r_total_speedup : float;  (* cold/warm total simulated cycles *)
  r_boot_speedup : float;   (* cold/warm runtime cycles: the boot tax *)
  r_divergent : int;
}

(* One pool-style request on a dedicated engine: cold-loaded image,
   optional saved-image warm boot, one thread, the request's input. *)
let serve_once ?cache ~opts image input =
  let m = Vm.Machine.create () in
  Asm.Image.load_cold m image;
  let rt = Rio.Engine.create ~opts m in
  let loaded =
    Option.map
      (fun path ->
        Rio.Engine.load_image rt ~image_digest:(Asm.Image.digest image) ~path)
      cache
  in
  ignore
    (Vm.Machine.add_thread m ~entry:image.Asm.Image.entry
       ~stack_top:Asm.Image.default_stack_top);
  Vm.Machine.set_input m input;
  let o = Rio.Engine.run rt in
  (loaded, o, Vm.Machine.output m, rt)

let measure_workload ~quick ~opts (w : Workload.t) : wl_row =
  let image = Asm.Assemble.assemble w.Workload.program in
  let digest = Asm.Image.digest image in
  let input_for seed = Workload.request_input ~seed @ w.Workload.input in
  let native_for seed =
    let n = Workload.run_native (Workload.with_input w (input_for seed)) in
    assert n.Workload.ok;
    n.Workload.output
  in
  (* prime one long-lived instance the way the pool would: a few warm
     requests, traces and profiles accumulating, then snapshot *)
  let path = Filename.temp_file "persistsweep" ".riocache" in
  let persisted =
    let m = Vm.Machine.create () in
    Asm.Image.load_cold m image;
    let rt = Rio.Engine.create ~opts m in
    for k = 0 to prime_requests - 1 do
      if k > 0 then
        Rio.Engine.reset_for_reuse rt
          ~restore:(fun m ~zeroed -> Asm.Image.restore m image ~zeroed);
      ignore
        (Vm.Machine.add_thread m ~entry:image.Asm.Image.entry
           ~stack_top:Asm.Image.default_stack_top);
      Vm.Machine.set_input m (input_for k);
      ignore (Rio.Engine.run rt)
    done;
    Rio.Engine.save_image rt ~image_digest:digest ~path
  in
  let n = batch ~quick in
  let divergent = ref 0 in
  let run_batch ~cache () =
    let cycles = ref 0 and rt_cycles = ref 0 and blocks = ref 0 in
    let loads = ref 0 and refused = ref 0 in
    let t0 = Sweep.time_now () in
    for k = 0 to n - 1 do
      let seed = 1000 + k in
      let loaded, o, out, rt =
        serve_once ?cache ~opts image (input_for seed)
      in
      (match loaded with
      | Some (Ok _) -> incr loads
      | Some (Error _) -> incr refused
      | None -> ());
      if not (o.Rio.Engine.reason = Rio.Engine.All_exited && out = native_for seed)
      then incr divergent;
      cycles := !cycles + o.Rio.Engine.cycles;
      rt_cycles := !rt_cycles + (Rio.Engine.stats rt).Rio.Stats.runtime_cycles;
      blocks := !blocks + (Rio.Engine.stats rt).Rio.Stats.blocks_built
    done;
    (!cycles, !rt_cycles, !blocks, !loads, !refused, Sweep.time_now () -. t0)
  in
  let cold_cycles, cold_rt, cold_blocks, _, _, cold_s =
    run_batch ~cache:None ()
  in
  let warm_cycles, warm_rt, warm_blocks, loads, refused, warm_s =
    run_batch ~cache:(Some path) ()
  in
  (try Sys.remove path with Sys_error _ -> ());
  {
    r_name = w.Workload.name;
    r_persisted = persisted;
    r_loaded = loads;
    r_refused = refused;
    r_cold_cycles = cold_cycles;
    r_warm_cycles = warm_cycles;
    r_cold_rt_cycles = cold_rt;
    r_warm_rt_cycles = warm_rt;
    r_cold_blocks = cold_blocks;
    r_warm_blocks = warm_blocks;
    r_cold_host_s = cold_s;
    r_warm_host_s = warm_s;
    r_total_speedup =
      float_of_int cold_cycles /. float_of_int (max 1 warm_cycles);
    r_boot_speedup = float_of_int cold_rt /. float_of_int (max 1 warm_rt);
    r_divergent = !divergent;
  }

(* ------------------------------------------------------------------ *)
(* Compaction: the fragmentation pattern FIFO eviction cannot solve   *)
(* ------------------------------------------------------------------ *)

(* Thread B (main) gets a medium-bodied hot loop (trace 1), then a
   large-bodied hot loop (trace 2).  Thread A (worker) spins in a small
   hot loop long enough to stay parked in the cache for B's whole run.
   Allocation order in the trace region is [trace1][traceA][tail]:
   trace 2 is bigger than trace 1 and bigger than the tail, so after
   FIFO evicts trace 1 the pinned traceA still splits the free space
   and the allocation fails without compaction. *)
let compaction_program =
  let open Asm.Dsl in
  let body_medium =
    List.concat (List.init 12 (fun _ -> [ add edx (i 1); add esi (i 3) ]))
  in
  let body_large =
    List.concat (List.init 40 (fun _ -> [ add edx (i 2); add edi (i 5) ]))
  in
  program ~name:"compaction-gate" ~entry:"main"
    ~text:
      ([
         label "main";
         mov ecx (i 0);
         mov edx (i 0);
         mov esi (i 0);
         mov edi (i 0);
         label "bloop1";
       ]
      @ body_medium
      @ [
          inc ecx;
          cmp ecx (i 3000);
          j l "bloop1";
          mov ecx (i 0);
          label "bloop2";
        ]
      @ body_large
      @ [
          inc ecx;
          cmp ecx (i 400);
          j l "bloop2";
          out edx;
          out esi;
          out edi;
          hlt;
          (* the worker writes nothing: output order must not depend on
             which thread halts first under either scheduler *)
          label "worker";
        ]
      (* warmup: a run of distinct loops, each below the trace
         threshold, delays the worker's hot trace past the main
         thread's first trace so it lands mid-region — where eviction
         alone cannot open a contiguous run but sliding can *)
      @ List.concat
          (List.init 8 (fun k ->
               let lbl = Printf.sprintf "warm%d" k in
               [ mov ebx (i 0); label lbl ]
               @ List.concat
                   (List.init 8 (fun _ -> [ add eax (i 1); add eax (i 2) ]))
               @ [ inc ebx; cmp ebx (i 45); j l lbl ]))
      @ [
          mov ebx (i 0);
          label "aloop";
          inc ebx;
          cmp ebx (i 120_000);
          j l "aloop";
          hlt;
        ])
    ()

type compaction_run = {
  c_dropped : int;
  c_compactions : int;
  c_moved : int;
  c_output_ok : bool;
}

let run_compaction_case ~compacting : compaction_run =
  let image = Asm.Assemble.assemble compaction_program in
  let opts =
    {
      Rio.Options.default with
      opt_level = 2;
      (* the quantum must expire between B building trace 1 and B's
         second loop getting hot, so A's trace lands between B's two *)
      quantum = 12_000;
      trace_threshold = 50;
      (* a short bb ceiling lowers the FIFO capacity floor, letting the
         trace region be small enough that B's two traces plus A's
         cannot coexist *)
      max_bb_insns = 16;
      cache_capacity = Some 768;
      flush_policy = Rio.Options.Flush_fifo;
      cache_compaction = compacting;
      max_cycles = max_int / 2;
    }
  in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  ignore (Asm.Image.spawn m image "worker");
  let rt = Rio.Engine.create ~opts m in
  if Sys.getenv_opt "PSW_DEBUG" <> None then Rio.enable_flow_log rt;
  let o = Rio.Engine.run rt in
  (if Sys.getenv_opt "PSW_DEBUG" <> None then
     List.iter
       (fun l ->
         if
           (String.length l >= 5 && String.sub l 0 5 = "built")
           || List.exists
                (fun p ->
                  let pl = String.length p in
                  let rec has i =
                    i + pl <= String.length l
                    && (String.sub l i pl = p || has (i + 1))
                  in
                  has 0)
                [ "compact"; "evict trace"; "drop"; "No_room"; "start trace" ]
         then Printf.eprintf "FLOW %s\n%!" l)
       (Rio.flow_log rt));
  let s = Rio.Engine.stats rt in
  if Sys.getenv_opt "PSW_DEBUG" <> None then
    Printf.eprintf
      "DBG compaction compacting=%b: built bb=%d tr=%d bytes bb=%d tr=%d \
       evict=%d dropped=%d fallback=%d compact=%d moved=%d holes=%d free=%d \
       largest=%d reason=%s\n%!"
      compacting s.Rio.Stats.blocks_built s.Rio.Stats.traces_built
      s.Rio.Stats.cache_bytes_bb s.Rio.Stats.cache_bytes_trace
      s.Rio.Stats.evictions s.Rio.Stats.traces_dropped
      s.Rio.Stats.full_flush_fallbacks s.Rio.Stats.compactions
      s.Rio.Stats.fragments_moved s.Rio.Stats.freelist_holes
      s.Rio.Stats.freelist_free_bytes s.Rio.Stats.freelist_largest_hole
      (Rio.Engine.stop_reason_to_string o.Rio.Engine.reason);
  if Sys.getenv_opt "PSW_DEBUG" <> None then
    List.iter
      (fun ts ->
        Rio.Fragindex.iter_traces ts.Rio.Types.index (fun tag f ->
            Printf.eprintf "DBG   tid %d trace 0x%x: entry=0x%x len=%d\n%!"
              ts.Rio.Types.ts_tid tag f.Rio.Types.entry
              (f.Rio.Types.total_end - f.Rio.Types.entry)))
      rt.Rio.Types.thread_states;
  let native =
    let nm = Vm.Machine.create () in
    ignore (Asm.Image.load nm image);
    ignore (Asm.Image.spawn nm image "worker");
    ignore (Vm.Sched.run ~emulate:false nm);
    Vm.Machine.output nm
  in
  {
    c_dropped = s.Rio.Stats.traces_dropped;
    c_compactions = s.Rio.Stats.compactions;
    c_moved = s.Rio.Stats.fragments_moved;
    c_output_ok =
      o.Rio.Engine.reason = Rio.Engine.All_exited
      && Vm.Machine.output m = native;
  }

(* ------------------------------------------------------------------ *)

let run ~quick ~out_path () =
  arm_alarm ~quick;
  let wls = List.map Workload.serving_variant Suite.all in
  pr "\n=== Persist sweep (%s mode; %d workloads; batch %d) ===\n"
    (if quick then "quick" else "full")
    (List.length wls) (batch ~quick);
  let opts =
    { Rio.Options.default with opt_level = 2; max_cycles = max_int / 2 }
  in
  pr "%-12s %6s %6s %8s %12s %12s %7s %7s\n" "workload" "frags" "loads"
    "refused" "cold-rtcyc" "warm-rtcyc" "boot" "total";
  let rows = List.map (fun w -> measure_workload ~quick ~opts w) wls in
  List.iter
    (fun r ->
      pr "%-12s %6d %6d %8d %12d %12d %6.2fx %6.2fx\n%!" r.r_name r.r_persisted
        r.r_loaded r.r_refused r.r_cold_rt_cycles r.r_warm_rt_cycles
        r.r_boot_speedup r.r_total_speedup)
    rows;
  let boot_speedup = Sweep.geomean (List.map (fun r -> r.r_boot_speedup) rows) in
  let total_speedup =
    Sweep.geomean (List.map (fun r -> r.r_total_speedup) rows)
  in
  let divergences = List.fold_left (fun a r -> a + r.r_divergent) 0 rows in
  let refused = List.fold_left (fun a r -> a + r.r_refused) 0 rows in
  let cold_host = List.fold_left (fun a r -> a +. r.r_cold_host_s) 0.0 rows in
  let warm_host = List.fold_left (fun a r -> a +. r.r_warm_host_s) 0.0 rows in
  pr
    "geomean boot speedup (cold/warm runtime cycles on a first request): \
     %.2fx\n"
    boot_speedup;
  pr "geomean total-request speedup (simulated time): %.2fx\n" total_speedup;
  pr "host wall time (informational): cold %.3fs, warm %.3fs\n%!" cold_host
    warm_host;

  pr "\n--- compaction gate ---\n";
  let fifo_only = run_compaction_case ~compacting:false in
  let compacted = run_compaction_case ~compacting:true in
  pr
    "fifo-only:  dropped %d  (output %s)\ncompacting: dropped %d  \
     compactions %d  moved %d  (output %s)\n%!"
    fifo_only.c_dropped
    (if fifo_only.c_output_ok then "ok" else "BAD")
    compacted.c_dropped compacted.c_compactions compacted.c_moved
    (if compacted.c_output_ok then "ok" else "BAD");

  let open Sweep in
  write_json ~path:out_path
    (Obj
       [
         ("schema", Str "rio-persistsweep-v1");
         ("quick", Bool quick);
         ("workloads", Int (List.length rows));
         ("batch", Int (batch ~quick));
         ("geomean_boot_speedup", Float boot_speedup);
         ("geomean_total_speedup", Float total_speedup);
         ("divergences", Int divergences);
         ("loads_refused", Int refused);
         ( "compaction",
           Obj
             [
               ("fifo_only_dropped", Int fifo_only.c_dropped);
               ("compacting_dropped", Int compacted.c_dropped);
               ("compactions", Int compacted.c_compactions);
               ("fragments_moved", Int compacted.c_moved);
               ( "outputs_ok",
                 Bool (fifo_only.c_output_ok && compacted.c_output_ok) );
             ] );
         ( "grid",
           Arr
             (List.map
                (fun r ->
                  Obj
                    [
                      ("workload", Str r.r_name);
                      ("fragments_persisted", Int r.r_persisted);
                      ("images_loaded", Int r.r_loaded);
                      ("loads_refused", Int r.r_refused);
                      ("cold_cycles", Int r.r_cold_cycles);
                      ("warm_cycles", Int r.r_warm_cycles);
                      ("cold_runtime_cycles", Int r.r_cold_rt_cycles);
                      ("warm_runtime_cycles", Int r.r_warm_rt_cycles);
                      ("cold_blocks_built", Int r.r_cold_blocks);
                      ("warm_blocks_built", Int r.r_warm_blocks);
                      ("cold_host_seconds", Float r.r_cold_host_s);
                      ("warm_host_seconds", Float r.r_warm_host_s);
                      ("boot_speedup", Float r.r_boot_speedup);
                      ("total_speedup", Float r.r_total_speedup);
                      ("divergent", Int r.r_divergent);
                    ])
                rows) );
       ]);

  (* hard gates *)
  if divergences > 0 then begin
    pr "!! %d run(s) not output-identical to native\n%!" divergences;
    exit 1
  end;
  if refused > 0 then begin
    pr "!! %d image load(s) refused\n%!" refused;
    exit 1
  end;
  if boot_speedup < 1.5 then begin
    pr "!! warm-boot speedup %.2fx below the 1.5x gate\n%!" boot_speedup;
    exit 1
  end;
  if total_speedup < 1.0 then begin
    pr "!! warm boot made whole requests slower (%.2fx)\n%!" total_speedup;
    exit 1
  end;
  if fifo_only.c_dropped < 1 then begin
    pr "!! compaction gate vacuous: FIFO-only run dropped no trace\n%!";
    exit 1
  end;
  if compacted.c_dropped > 0 then begin
    pr "!! compaction failed to prevent %d trace drop(s)\n%!"
      compacted.c_dropped;
    exit 1
  end;
  if not (fifo_only.c_output_ok && compacted.c_output_ok) then begin
    pr "!! compaction scenario diverged from native\n%!";
    exit 1
  end;
  ignore (Unix.alarm 0)
