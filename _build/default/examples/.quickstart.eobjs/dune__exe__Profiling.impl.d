examples/profiling.ml: Clients Hashtbl List Option Printf Rio Workloads
