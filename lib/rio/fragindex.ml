(** Open-addressing fragment index — see the interface for the design.

    Layout: a power-of-two array of per-tag entries, Fibonacci-hashed
    key, linear probing.  An array cell is either [Empty] or an
    [entry]; a probe can stop at the first [Empty] both for lookups and
    inserts because {!delete} removes keys by backward-shifting the
    probe chain closed (no tombstones, so chains never accumulate dead
    cells).  Fragment slots are valid only while [entry.fgen] equals
    the table's generation; {!flush_fragments} bumps the generation,
    invalidating every slot at once without walking the table. *)

type profile = {
  mutable p_t1 : int;
  mutable p_n1 : int;
  mutable p_t2 : int;
  mutable p_n2 : int;
  mutable p_other : int;
  mutable p_total : int;
}

type 'a entry = {
  key : int;
  mutable fgen : int;
  mutable bb : 'a option;
  mutable trace : 'a option;
  mutable ibl : 'a option;
  mutable head : int;
  mutable marked : bool;
  mutable prof : profile option;
  mutable head_cycles : int;
  mutable nospec : bool;
      (* despeculation verdict: a constant-load guard at this site
         already died once (Opt.despec cut it), so trace building must
         not re-speculate on observed constants here.  Like head
         counters and profiles this describes the application, not a
         cached fragment — it survives flushes, warm resets, and (via
         the pool's shared profile store) travels between workers *)
}

type 'a cell = Empty | Entry of 'a entry

type 'a t = {
  mutable cells : 'a cell array;
  mutable mask : int;          (* capacity - 1; capacity is a power of two *)
  mutable count : int;         (* live keys *)
  mutable gen : int;           (* fragment-slot generation *)
}

let create ?(bits = 9) () =
  let cap = 1 lsl bits in
  { cells = Array.make cap Empty; mask = cap - 1; count = 0; gen = 0 }

(* Fibonacci hashing: tags are small word-aligned-ish addresses whose
   low bits carry little entropy; the golden-ratio multiply spreads
   them across the table before masking. *)
let[@inline] slot_of t tag = (tag * 0x2545F4914F6CDD1D) lsr 16 land t.mask

(* Lazily reset fragment slots left over from a pre-flush generation. *)
let[@inline] normalize t (e : 'a entry) =
  if e.fgen <> t.gen then begin
    e.fgen <- t.gen;
    e.bb <- None;
    e.trace <- None;
    e.ibl <- None
  end

let rec probe t tag i =
  match t.cells.(i) with
  | Empty -> None
  | Entry e when e.key = tag ->
      normalize t e;
      Some e
  | Entry _ -> probe t tag ((i + 1) land t.mask)

let find t tag = probe t tag (slot_of t tag)

let grow t =
  let old = t.cells in
  let cap = (t.mask + 1) * 2 in
  t.cells <- Array.make cap Empty;
  t.mask <- cap - 1;
  Array.iter
    (fun c ->
      match c with
      | Empty -> ()
      | Entry e ->
          let rec place i =
            match t.cells.(i) with
            | Empty -> t.cells.(i) <- c
            | Entry _ -> place ((i + 1) land t.mask)
          in
          place (slot_of t e.key))
    old

let ensure t tag =
  let rec go i =
    match t.cells.(i) with
    | Empty ->
        let e =
          { key = tag; fgen = t.gen; bb = None; trace = None; ibl = None;
            head = -1; marked = false; prof = None; head_cycles = 0;
            nospec = false }
        in
        t.cells.(i) <- Entry e;
        t.count <- t.count + 1;
        if t.count * 4 > (t.mask + 1) * 3 then grow t;
        e
    | Entry e when e.key = tag ->
        normalize t e;
        e
    | Entry _ -> go ((i + 1) land t.mask)
  in
  go (slot_of t tag)

(* Allocation-free single-slot probes for the dispatcher's hot path:
   the returned option is the one stored in the entry, not a fresh
   box. *)

let find_ibl t tag =
  let rec go i =
    match t.cells.(i) with
    | Empty -> None
    | Entry e when e.key = tag -> if e.fgen = t.gen then e.ibl else None
    | Entry _ -> go ((i + 1) land t.mask)
  in
  go (slot_of t tag)

let find_bb t tag =
  let rec go i =
    match t.cells.(i) with
    | Empty -> None
    | Entry e when e.key = tag -> if e.fgen = t.gen then e.bb else None
    | Entry _ -> go ((i + 1) land t.mask)
  in
  go (slot_of t tag)

let find_trace t tag =
  let rec go i =
    match t.cells.(i) with
    | Empty -> None
    | Entry e when e.key = tag -> if e.fgen = t.gen then e.trace else None
    | Entry _ -> go ((i + 1) land t.mask)
  in
  go (slot_of t tag)

let set_bb t tag f = (ensure t tag).bb <- Some f
let set_trace t tag f = (ensure t tag).trace <- Some f
let set_ibl t tag f = (ensure t tag).ibl <- Some f

let clear_ibl t tag =
  match find t tag with None -> () | Some e -> e.ibl <- None

(* Backward-shift deletion for linear probing: after emptying slot [i],
   walk the chain forward; an entry at [j] whose ideal slot lies
   cyclically at or before [i] moves back into the hole (which then
   becomes [j]), preserving the invariant that every key is reachable
   from its ideal slot without crossing an [Empty].  Entries move by
   cell reference only — the records themselves are stable, so entry
   references held across a delete of a *different* key stay valid. *)
let delete t tag =
  let rec locate i =
    match t.cells.(i) with
    | Empty -> None
    | Entry e when e.key = tag -> Some i
    | Entry _ -> locate ((i + 1) land t.mask)
  in
  match locate (slot_of t tag) with
  | None -> ()
  | Some hole ->
      t.count <- t.count - 1;
      let rec shift hole j =
        match t.cells.(j) with
        | Empty -> t.cells.(hole) <- Empty
        | Entry e ->
            let ideal = slot_of t e.key in
            (* e may fill the hole iff its ideal slot is not inside the
               cyclic range (hole, j] *)
            if (j - ideal) land t.mask >= (j - hole) land t.mask then begin
              t.cells.(hole) <- t.cells.(j);
              shift j ((j + 1) land t.mask)
            end
            else shift hole ((j + 1) land t.mask)
      in
      shift hole ((hole + 1) land t.mask)

let count t = t.count

(* Successor profiles (speculation, DESIGN.md §6.7): a two-slot
   most-frequent-target histogram per exit site, deliberately kept in
   the index — like head counters, they describe the application, not
   any cached fragment, so they survive flushes and warm resets. *)

let record_successor t site target =
  let e = ensure t site in
  let p =
    match e.prof with
    | Some p -> p
    | None ->
        let p =
          { p_t1 = 0; p_n1 = 0; p_t2 = 0; p_n2 = 0; p_other = 0; p_total = 0 }
        in
        e.prof <- Some p;
        p
  in
  p.p_total <- p.p_total + 1;
  if p.p_n1 = 0 || p.p_t1 = target then begin
    p.p_t1 <- target;
    p.p_n1 <- p.p_n1 + 1
  end
  else if p.p_n2 = 0 || p.p_t2 = target then begin
    p.p_t2 <- target;
    p.p_n2 <- p.p_n2 + 1;
    (* keep slot 1 the dominant one *)
    if p.p_n2 > p.p_n1 then begin
      let t1 = p.p_t1 and n1 = p.p_n1 in
      p.p_t1 <- p.p_t2;
      p.p_n1 <- p.p_n2;
      p.p_t2 <- t1;
      p.p_n2 <- n1
    end
  end
  else p.p_other <- p.p_other + 1

let successor_profile t site =
  match find t site with None -> None | Some e -> e.prof

let copy_profile (p : profile) : profile =
  {
    p_t1 = p.p_t1;
    p_n1 = p.p_n1;
    p_t2 = p.p_t2;
    p_n2 = p.p_n2;
    p_other = p.p_other;
    p_total = p.p_total;
  }

(* Merging two 2-slot histograms: pool the four (target, count) slots
   taking the per-target MAXIMUM, keep the two heaviest (ties broken
   by target so the result is order-independent), and spill the rest
   into [p_other].  Max, not sum: publishers carry *cumulative*
   histograms (an instance that was itself seeded from the store
   re-publishes everything it was given plus its own samples), so
   summing would double-count shared ancestry on every publish.
   Per-target max is idempotent under re-publish, never moves a count
   backward, and for genuinely disjoint targets degenerates to the
   union.  The anonymous [p_other] bucket gets the same treatment —
   max over both inputs' buckets and the slot spill — rather than an
   addition, because spilled targets would otherwise re-add on every
   re-publish of the same cumulative histogram.  [p_total] is
   recomputed as n1 + n2 + other, keeping the invariant the recorder
   maintains. *)
let merge_profile ~(src : profile) (dst : profile) : unit =
  let add acc (t, n) =
    if n <= 0 then acc
    else
      match List.assoc_opt t acc with
      | Some m -> (t, max m n) :: List.remove_assoc t acc
      | None -> (t, n) :: acc
  in
  let slots =
    List.fold_left add []
      [
        (dst.p_t1, dst.p_n1); (dst.p_t2, dst.p_n2);
        (src.p_t1, src.p_n1); (src.p_t2, src.p_n2);
      ]
  in
  let slots =
    List.sort
      (fun (t1, n1) (t2, n2) ->
        if n1 <> n2 then compare n2 n1 else compare t1 t2)
      slots
  in
  let other = max dst.p_other src.p_other in
  (match slots with
  | [] ->
      dst.p_t1 <- 0;
      dst.p_n1 <- 0;
      dst.p_t2 <- 0;
      dst.p_n2 <- 0;
      dst.p_other <- other
  | [ (t1, n1) ] ->
      dst.p_t1 <- t1;
      dst.p_n1 <- n1;
      dst.p_t2 <- 0;
      dst.p_n2 <- 0;
      dst.p_other <- other
  | (t1, n1) :: (t2, n2) :: leftover ->
      dst.p_t1 <- t1;
      dst.p_n1 <- n1;
      dst.p_t2 <- t2;
      dst.p_n2 <- n2;
      dst.p_other <-
        max other (List.fold_left (fun a (_, n) -> a + n) 0 leftover));
  dst.p_total <- dst.p_n1 + dst.p_n2 + dst.p_other

let is_head t tag =
  match find t tag with
  | None -> false
  | Some e -> e.head >= 0 || e.marked

let set_nospec t tag = (ensure t tag).nospec <- true

let nospec t tag =
  match find t tag with None -> false | Some e -> e.nospec

let flush_fragments t = t.gen <- t.gen + 1

let iter_entries t f =
  Array.iter (fun c -> match c with Empty -> () | Entry e -> f e) t.cells

let iter_bbs t f =
  iter_entries t (fun e ->
      if e.fgen = t.gen then
        match e.bb with Some frag -> f e.key frag | None -> ())

let iter_ibl t f =
  iter_entries t (fun e ->
      if e.fgen = t.gen then
        match e.ibl with Some frag -> f e.key frag | None -> ())

let iter_traces t f =
  iter_entries t (fun e ->
      if e.fgen = t.gen then
        match e.trace with Some frag -> f e.key frag | None -> ())

let bb_count t =
  let n = ref 0 in
  iter_bbs t (fun _ _ -> incr n);
  !n

let trace_count t =
  let n = ref 0 in
  iter_traces t (fun _ _ -> incr n);
  !n
