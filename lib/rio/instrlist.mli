(** [InstrList]: the linear code sequence the runtime and its clients
    manipulate (paper §3.1) — a doubly-linked list of {!Instr.t} with a
    single entrance and no internal join points.  Instrs are intrusive
    nodes: walk with [i.Instr.next] / [i.Instr.prev] or the iterators
    here. *)

type t

val create : unit -> t
val first : t -> Instr.t option
val last : t -> Instr.t option
val length : t -> int
val is_empty : t -> bool
val next : Instr.t -> Instr.t option
val prev : Instr.t -> Instr.t option

val append : t -> Instr.t -> unit
(** @raise Invalid_argument if the instr already belongs to a list. *)

val prepend : t -> Instr.t -> unit
val insert_after : t -> Instr.t -> Instr.t -> unit
val insert_before : t -> Instr.t -> Instr.t -> unit
val remove : t -> Instr.t -> unit

val replace : t -> Instr.t -> Instr.t -> unit
(** [replace t old new_] swaps [new_] into [old]'s position. *)

val iter : t -> (Instr.t -> unit) -> unit
(** Safe against removal/replacement of the visited instr. *)

val iter_rev : t -> (Instr.t -> unit) -> unit
(** Last-to-first iteration (backward analyses); safe against
    removal/replacement of the visited instr. *)

val fold : t -> init:'a -> ('a -> Instr.t -> 'a) -> 'a
val to_list : t -> Instr.t list
val exists : t -> (Instr.t -> bool) -> bool

val append_all : dst:t -> t -> unit
(** Move every instr of the source list to the end of [dst]. *)

val split_bundles : t -> unit
(** Split every Level-0 bundle into per-instruction Level-1 instrs. *)

val decode_to : t -> Level.t -> unit
(** Raise every instruction to at least the given level ([L3] is what
    the runtime uses before trace optimization: fully decoded, raw bits
    valid). *)

val encoded_size : ?pc:int -> t -> int
val pp : Format.formatter -> t -> unit
