(** The synthetic SPEC2000-like benchmark suite (see DESIGN.md §2 for
    the substitution rationale: these model the *behavioural
    characters* Figure 5's shape depends on). *)

let all : Workload.t list =
  [
    (* integer *)
    Gzip_like.workload;
    Vpr_like.workload;
    Parser_like.workload;
    Gcc_like.workload;
    Mcf_like.workload;
    Crafty_like.workload;
    Eon_like.workload;
    Perlbmk_like.workload;
    Gap_like.workload;
    Vortex_like.workload;
    Bzip2_like.workload;
    Twolf_like.workload;
    (* floating point *)
    Wupwise_like.workload;
    Swim_like.workload;
    Mgrid_like.workload;
    Applu_like.workload;
    Mesa_like.workload;
    Art_like.workload;
    Equake_like.workload;
    Ammp_like.workload;
  ]

let integer = List.filter (fun w -> not w.Workload.fp) all
let floating = List.filter (fun w -> w.Workload.fp) all

let by_name name =
  List.find_opt (fun w -> w.Workload.name = name) all

let names = List.map (fun w -> w.Workload.name) all
