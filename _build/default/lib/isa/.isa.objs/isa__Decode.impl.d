lib/isa/decode.ml: Bytes Char Cond Encoding_spec Insn Opcode Operand Printf Reg String
