lib/workloads/vortex_like.ml: Asm Workload
