lib/isa/insn.mli: Cond Eflags Opcode Operand Reg
