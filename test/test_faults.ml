(** Tests for the self-healing machinery (S34): the cache auditor's
    corruption detection, the client-hook exception barrier, the
    graceful-degradation ladder, and end-to-end observational
    equivalence under deterministic fault injection. *)

open Workloads

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_ilist = Alcotest.(check (list int))

let wl name = Option.get (Suite.by_name name)

(* The workloads used by the end-to-end runs: a spread of int and fp
   programs that all finish quickly. *)
let quick_suite = [ "gzip"; "perlbmk"; "parser"; "crafty"; "twolf"; "applu" ]

(* ------------------------------------------------------------------ *)
(* Checksum: any single-byte corruption is detected                   *)
(* ------------------------------------------------------------------ *)

(* Build a populated runtime by running a workload to completion; its
   live fragments (bbs, traces, stubs, links) are the corpus the
   corruption property ranges over. *)
let fragment_corpus =
  lazy
    (let _, rt = Workload.run_rio ~client:(Clients.Compose.all_four ()) (wl "gzip") in
     let frags = Rio.Audit.live_fragments rt in
     assert (frags <> []);
     (rt, Array.of_list frags))

let test_corruption_detected =
  QCheck.Test.make ~count:500 ~name:"any single-byte corruption is detected"
    QCheck.(triple small_nat small_nat (int_range 1 255))
    (fun (fidx, off, mask) ->
      let rt, frags = Lazy.force fragment_corpus in
      let f = frags.(fidx mod Array.length frags) in
      let addr =
        f.Rio.Types.entry + (off mod (f.Rio.Types.total_end - f.Rio.Types.entry))
      in
      let mem = Vm.Machine.mem (Rio.machine rt) in
      let old = Vm.Memory.read_u8 mem addr in
      Vm.Memory.write_u8 mem addr (old lxor mask);
      let detected = Rio.Audit.check_fragment rt f <> None in
      Vm.Memory.write_u8 mem addr old;
      let restored = Rio.Audit.check_fragment rt f = None in
      detected && restored)

(* ------------------------------------------------------------------ *)
(* Relocation: moved fragments stay audit-clean                       *)
(* ------------------------------------------------------------------ *)

(* Relocating a fragment re-encodes its pc-relative sites and must
   refresh the audit checksum to match the new placement: the auditor
   reads clean right after every move, and a corruption introduced
   into the moved body is still caught (the checksum tracked the move
   rather than being skipped). *)
let test_move_then_audit () =
  let _, rt = Workload.run_rio (wl "gzip") in
  let frags = Rio.Audit.live_fragments rt in
  checkb "corpus non-empty" true (frags <> []);
  List.iter
    (fun f ->
      checkb "clean before move" true (Rio.Audit.check_fragment rt f = None))
    frags;
  let mem = Vm.Machine.mem (Rio.machine rt) in
  List.iter
    (fun f ->
      let len = f.Rio.Types.total_end - f.Rio.Types.entry in
      let dst = rt.Rio.Types.cache_cursor in
      assert (dst + len <= rt.Rio.Types.cache_end);
      rt.Rio.Types.cache_cursor <- dst + len;
      Rio.Emit.move_fragment rt f ~dst;
      checki "fragment entry moved" dst f.Rio.Types.entry;
      checkb "clean after move" true (Rio.Audit.check_fragment rt f = None);
      (* the refreshed checksum covers the new placement: flipping a
         byte of the moved body must still be detected *)
      let addr = f.Rio.Types.entry + (len / 2) in
      let old = Vm.Memory.read_u8 mem addr in
      Vm.Memory.write_u8 mem addr (old lxor 0x5a);
      checkb "corruption after move detected" true
        (Rio.Audit.check_fragment rt f <> None);
      Vm.Memory.write_u8 mem addr old;
      checkb "clean after restore" true
        (Rio.Audit.check_fragment rt f = None))
    frags;
  checki "every move counted" (List.length frags)
    (Rio.stats rt).Rio.Stats.fragments_moved

(* ------------------------------------------------------------------ *)
(* Hook barrier: a raising client never alters program output         *)
(* ------------------------------------------------------------------ *)

(* The nastiest client we can write: it guts every basic block (and
   mutates the IL as destructively as Instrlist allows), then raises.
   Under the barrier none of that may reach the cache. *)
let wrecking_client () =
  {
    Rio.Types.null_client with
    name = "wrecker";
    basic_block =
      Some
        (fun _ ~tag:_ il ->
          List.iter (Rio.Instrlist.remove il) (Rio.Instrlist.to_list il);
          failwith "wrecker: deliberate crash");
  }

let test_raising_hook_preserves_output () =
  let w = wl "gzip" in
  let native = Workload.run_native w in
  let r, rt = Workload.run_rio ~client:(wrecking_client ()) w in
  checkb "finished" true r.ok;
  check_ilist "output identical to native" native.output r.output;
  let s = Rio.stats rt in
  checki "failures up to the quarantine limit"
    Rio.Options.default.Rio.Options.client_fail_limit s.Rio.Stats.hook_failures;
  checki "client quarantined" 1 s.Rio.Stats.clients_quarantined;
  checkb "quarantine flag set" true rt.Rio.Types.client_quarantined

let test_raising_init_and_exit_hooks () =
  let w = wl "perlbmk" in
  let native = Workload.run_native w in
  let client =
    {
      Rio.Types.null_client with
      name = "lifecycle-wrecker";
      init = (fun _ -> failwith "init crash");
      thread_init = (fun _ -> failwith "thread_init crash");
      exit_hook = (fun _ -> failwith "exit crash");
    }
  in
  let r, rt = Workload.run_rio ~client w in
  checkb "finished" true r.ok;
  check_ilist "output identical to native" native.output r.output;
  checkb "failures recorded" true ((Rio.stats rt).Rio.Stats.hook_failures > 0)

let test_client_abort_still_escapes () =
  (* Client_abort is the one deliberate escape hatch; the barrier must
     not swallow it. *)
  let client =
    {
      Rio.Types.null_client with
      name = "aborter";
      basic_block = Some (fun _ ~tag:_ _ -> raise (Rio.Types.Client_abort "policy"));
    }
  in
  let r, _ = Workload.run_rio ~client (wl "gzip") in
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  checkb "run stopped" true (not r.ok);
  checkb "abort reported" true (contains r.detail "client")

(* ------------------------------------------------------------------ *)
(* Recovery ladder                                                    *)
(* ------------------------------------------------------------------ *)

let test_ladder_escalates () =
  let _, rt = Workload.run_rio (wl "gzip") in
  let ts = List.hd rt.Rio.Types.thread_states in
  let f = List.hd (Rio.Audit.live_fragments rt) in
  let tag = f.Rio.Types.tag in
  for _ = 1 to 4 do
    Rio.Dispatch.recover_tag rt ts ~tag ~reason:"test escalation"
  done;
  let s = Rio.stats rt in
  checki "rung 0 re-emit" 1 s.Rio.Stats.recover_reemit;
  checki "rung 1 flush fragment" 1 s.Rio.Stats.recover_flush_frag;
  checki "rung 2 flush world" 1 s.Rio.Stats.recover_flush_world;
  checki "rung 3 emulate" 1 s.Rio.Stats.recover_emulate;
  checki "four detections" 4 s.Rio.Stats.faults_detected;
  checkb "tag demoted to pure emulation" true
    (Hashtbl.mem rt.Rio.Types.emulate_only tag);
  checkb "offending fragment deleted" true f.Rio.Types.deleted

let test_forced_emulation_matches_native () =
  (* Demote the program's entry block to pure emulation before the run
     starts: the dispatcher must interpret it (and every re-entry) yet
     produce identical output. *)
  let w = wl "gzip" in
  let native = Workload.run_native w in
  let image = Asm.Assemble.assemble w.Workload.program in
  let m = Vm.Machine.create () in
  Vm.Machine.set_input m w.Workload.input;
  ignore (Asm.Image.load m image);
  let rt = Rio.create m in
  List.iter
    (fun th -> Hashtbl.replace rt.Rio.Types.emulate_only th.Vm.Machine.pc ())
    (Vm.Machine.live_threads m);
  let o = Rio.run rt in
  checkb "finished" true (o.Rio.reason = Rio.All_exited);
  check_ilist "output identical to native" native.output (Vm.Machine.output m);
  checkb "blocks were emulated" true
    ((Rio.stats rt).Rio.Stats.blocks_emulated > 0)

(* ------------------------------------------------------------------ *)
(* End-to-end fault injection                                         *)
(* ------------------------------------------------------------------ *)

let injected_opts ?(faults = Rio.Options.default_faults) seed =
  {
    Rio.Options.default with
    faults = Some { faults with Rio.Options.fi_seed = seed };
    audit_period = 1;
  }

let test_injection_preserves_output () =
  let total = Rio.Stats.create () in
  List.iter
    (fun name ->
      let w = wl name in
      let native = Workload.run_native w in
      List.iter
        (fun seed ->
          let r, rt =
            Workload.run_rio ~opts:(injected_opts seed)
              ~client:(Clients.Compose.all_four ()) w
          in
          checkb (name ^ ": finished") true r.ok;
          check_ilist (name ^ ": output identical to native") native.output
            r.output;
          let s = Rio.stats rt in
          total.Rio.Stats.faults_injected <-
            total.Rio.Stats.faults_injected + s.Rio.Stats.faults_injected;
          total.Rio.Stats.faults_detected <-
            total.Rio.Stats.faults_detected + s.Rio.Stats.faults_detected;
          total.Rio.Stats.recover_reemit <-
            total.Rio.Stats.recover_reemit + Rio.Stats.recoveries s)
        [ 1; 7 ])
    quick_suite;
  checkb "faults were injected" true (total.Rio.Stats.faults_injected > 0);
  checkb "faults were detected" true (total.Rio.Stats.faults_detected > 0);
  checkb "recoveries happened" true (total.Rio.Stats.recover_reemit > 0)

let test_injection_is_deterministic () =
  let run () =
    let r, rt =
      Workload.run_rio ~opts:(injected_opts 7)
        ~client:(Clients.Compose.all_four ()) (wl "gzip")
    in
    let s = Rio.stats rt in
    (r.output, r.cycles, s.Rio.Stats.faults_injected, s.Rio.Stats.faults_detected)
  in
  let a = run () and b = run () in
  checkb "same (seed, workload) replays identically" true (a = b)

let test_spurious_signals_dropped () =
  let faults =
    {
      Rio.Options.default_faults with
      fi_period = 10;
      fi_corrupt = false;
      fi_links = false;
      fi_hooks = false;
    }
  in
  let w = wl "gzip" in
  let native = Workload.run_native w in
  let r, rt = Workload.run_rio ~opts:(injected_opts ~faults 3) w in
  checkb "finished" true r.ok;
  check_ilist "output identical to native" native.output r.output;
  checkb "spurious signals were dropped" true
    ((Rio.stats rt).Rio.Stats.spurious_signals_dropped > 0)

let test_audit_clean_after_normal_run () =
  (* With no injection, an audited run must report zero violations. *)
  List.iter
    (fun name ->
      let r, rt =
        Workload.run_rio
          ~opts:{ Rio.Options.default with audit_period = 4 }
          (wl name)
      in
      checkb (name ^ ": finished") true r.ok;
      let s = Rio.stats rt in
      checkb (name ^ ": audits ran") true (s.Rio.Stats.audits_run > 0);
      checki (name ^ ": no violations") 0 s.Rio.Stats.faults_detected)
    [ "gzip"; "crafty" ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [
      ( "auditor",
        [
          QCheck_alcotest.to_alcotest test_corruption_detected;
          Alcotest.test_case "clean after normal run" `Slow
            test_audit_clean_after_normal_run;
          Alcotest.test_case "moved fragments stay audit-clean" `Slow
            test_move_then_audit;
        ] );
      ( "hook barrier",
        [
          Alcotest.test_case "raising hook preserves output" `Slow
            test_raising_hook_preserves_output;
          Alcotest.test_case "lifecycle hooks contained" `Slow
            test_raising_init_and_exit_hooks;
          Alcotest.test_case "client abort escapes" `Slow
            test_client_abort_still_escapes;
        ] );
      ( "recovery ladder",
        [
          Alcotest.test_case "escalates rung by rung" `Slow test_ladder_escalates;
          Alcotest.test_case "forced emulation matches native" `Slow
            test_forced_emulation_matches_native;
        ] );
      ( "injection",
        [
          Alcotest.test_case "output preserved under faults" `Slow
            test_injection_preserves_output;
          Alcotest.test_case "deterministic replay" `Slow
            test_injection_is_deterministic;
          Alcotest.test_case "spurious signals dropped" `Slow
            test_spurious_signals_dropped;
        ] );
    ]
