(** Golden tests for the flags semantics of {!Vm.Arith} — the layer
    every optimization's safety argument ultimately rests on. *)

open Isa

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let flag r f = Eflags.is_set r.Vm.Arith.flags f
let v r = r.Vm.Arith.value

let e = Eflags.empty

let test_add_carry () =
  let r = Vm.Arith.add 0xFFFFFFFF 1 e in
  checki "wraps" 0 (v r);
  checkb "CF" true (flag r CF);
  checkb "ZF" true (flag r ZF);
  checkb "OF clear (no signed overflow)" false (flag r OF)

let test_add_signed_overflow () =
  let r = Vm.Arith.add 0x7FFFFFFF 1 e in
  checki "value" 0x80000000 (v r);
  checkb "OF" true (flag r OF);
  checkb "CF clear" false (flag r CF);
  checkb "SF" true (flag r SF)

let test_sub_borrow () =
  let r = Vm.Arith.sub 0 1 e in
  checki "wraps to -1" 0xFFFFFFFF (v r);
  checkb "CF (borrow)" true (flag r CF);
  checkb "SF" true (flag r SF);
  checkb "OF clear" false (flag r OF)

let test_sub_signed_overflow () =
  (* INT_MIN - 1 overflows *)
  let r = Vm.Arith.sub 0x80000000 1 e in
  checki "value" 0x7FFFFFFF (v r);
  checkb "OF" true (flag r OF);
  checkb "CF clear" false (flag r CF)

let test_adc_chain () =
  (* 64-bit add via adc: 0xFFFFFFFF_FFFFFFFF + 1 = 0x1_00000000_00000000 *)
  let lo = Vm.Arith.add 0xFFFFFFFF 1 e in
  let hi = Vm.Arith.add ~carry_in:(flag lo CF) 0xFFFFFFFF 0 lo.flags in
  checki "lo" 0 (v lo);
  checki "hi" 0 (v hi);
  checkb "final carry out" true (flag hi CF)

let test_inc_dec_preserve_cf () =
  let base = Vm.Arith.add 0xFFFFFFFF 1 e in
  checkb "setup CF" true (flag base CF);
  let r = Vm.Arith.inc 41 base.flags in
  checki "inc" 42 (v r);
  checkb "CF preserved by inc" true (flag r CF);
  let r = Vm.Arith.dec 42 base.flags in
  checki "dec" 41 (v r);
  checkb "CF preserved by dec" true (flag r CF);
  (* but OF/ZF/SF are fully recomputed *)
  let r = Vm.Arith.inc 0x7FFFFFFF base.flags in
  checkb "inc sets OF at INT_MAX" true (flag r OF)

let test_logic_clears_cf_of () =
  let dirty = (Vm.Arith.add 0x7FFFFFFF 0x7FFFFFFF e).flags in
  let r = Vm.Arith.land_ 0xF0 0x0F dirty in
  checki "and" 0 (v r);
  checkb "ZF" true (flag r ZF);
  checkb "CF cleared" false (flag r CF);
  checkb "OF cleared" false (flag r OF)

let test_parity () =
  (* PF is even parity of the LOW BYTE only *)
  let r = Vm.Arith.lor_ 0x3 0x0 e in
  checkb "0x03 has even parity" true (flag r PF);
  let r = Vm.Arith.lor_ 0x7 0x0 e in
  checkb "0x07 has odd parity" false (flag r PF);
  let r = Vm.Arith.lor_ 0x10100 0x0 e in
  checkb "only the low byte counts" true (flag r PF)

let test_shifts () =
  let r = Vm.Arith.shl 0x80000000 1 e in
  checki "shl drops msb" 0 (v r);
  checkb "CF = bit shifted out" true (flag r CF);
  let r = Vm.Arith.shr 0x3 1 e in
  checki "shr" 1 (v r);
  checkb "CF = low bit out" true (flag r CF);
  let r = Vm.Arith.sar 0x80000000 4 e in
  checki "sar sign-extends" 0xF8000000 (v r);
  (* count 0 leaves flags untouched *)
  let dirty = (Vm.Arith.add 0xFFFFFFFF 1 e).flags in
  let r = Vm.Arith.shl 5 0 dirty in
  checkb "count-0 keeps CF" true (flag r CF);
  (* counts are masked to 5 bits like IA-32 *)
  let r = Vm.Arith.shl 1 32 e in
  checki "count 32 = count 0" 1 (v r)

let test_neg () =
  let r = Vm.Arith.neg 5 e in
  checki "neg" 0xFFFFFFFB (v r);
  checkb "CF set for nonzero" true (flag r CF);
  let r = Vm.Arith.neg 0 e in
  checkb "CF clear for zero" false (flag r CF);
  let r = Vm.Arith.neg 0x80000000 e in
  checki "INT_MIN unchanged" 0x80000000 (v r);
  checkb "OF set" true (flag r OF)

let test_imul () =
  let r = Vm.Arith.imul 0x10000 0x10000 e in
  checki "wraps" 0 (v r);
  checkb "CF=OF on overflow" true (flag r CF && flag r OF);
  let r = Vm.Arith.imul (Vm.Arith.of_signed (-3)) 7 e in
  checki "signed" (Vm.Arith.of_signed (-21)) (v r);
  checkb "no overflow" false (flag r CF)

let test_idiv () =
  let q, r, _ = Vm.Arith.idiv ~eax:(Vm.Arith.of_signed (-17)) 5 e in
  checki "quotient truncates toward zero" (Vm.Arith.of_signed (-3)) q;
  checki "remainder keeps dividend sign" (Vm.Arith.of_signed (-2)) r;
  checkb "div by zero raises" true
    (match Vm.Arith.idiv ~eax:1 0 e with
     | exception Vm.Arith.Division_by_zero -> true
     | _ -> false)

let test_fcmp () =
  let fl = Vm.Arith.fcmp 1.0 2.0 e in
  checkb "less sets CF" true (Eflags.is_set fl CF);
  checkb "less clears ZF" false (Eflags.is_set fl ZF);
  let fl = Vm.Arith.fcmp 2.0 2.0 e in
  checkb "equal sets ZF" true (Eflags.is_set fl ZF);
  checkb "equal clears CF" false (Eflags.is_set fl CF);
  let fl = Vm.Arith.fcmp 3.0 2.0 e in
  checkb "greater clears both" true
    (not (Eflags.is_set fl CF) && not (Eflags.is_set fl ZF));
  let fl = Vm.Arith.fcmp Float.nan 2.0 e in
  checkb "unordered sets ZF+PF+CF" true
    (Eflags.is_set fl ZF && Eflags.is_set fl PF && Eflags.is_set fl CF)

(* property: the interpreter only writes flags its opcode metadata
   declares (metadata soundness, DESIGN.md invariant 4) *)
let prop_flags_within_declared =
  QCheck2.Test.make ~name:"arith writes only declared flags" ~count:2000
    QCheck2.Gen.(
      triple (int_range 0 5)
        (int_range (-0x8000_0000) 0x7FFF_FFFF)
        (int_range (-0x8000_0000) 0x7FFF_FFFF))
    (fun (which, a, b) ->
      let a = Vm.Arith.of_signed a and b = Vm.Arith.of_signed b in
      (* random starting flags *)
      let fl0 = (a * 31 + b) land Eflags.all_mask in
      let op, mask =
        match which with
        | 0 -> ((fun () -> (Vm.Arith.add a b fl0).flags), Opcode.eflags Opcode.Add)
        | 1 -> ((fun () -> (Vm.Arith.sub a b fl0).flags), Opcode.eflags Opcode.Sub)
        | 2 -> ((fun () -> (Vm.Arith.inc a fl0).flags), Opcode.eflags Opcode.Inc)
        | 3 -> ((fun () -> (Vm.Arith.land_ a b fl0).flags), Opcode.eflags Opcode.And)
        | 4 -> ((fun () -> (Vm.Arith.imul a b fl0).flags), Opcode.eflags Opcode.Imul)
        | _ -> ((fun () -> (Vm.Arith.neg a fl0).flags), Opcode.eflags Opcode.Neg)
      in
      let fl1 = op () in
      let changed = fl0 lxor fl1 in
      changed land lnot (Eflags.write_mask mask) = 0)

let () =
  Alcotest.run "arith"
    [
      ( "integer flags",
        [
          Alcotest.test_case "add carry" `Quick test_add_carry;
          Alcotest.test_case "add signed overflow" `Quick test_add_signed_overflow;
          Alcotest.test_case "sub borrow" `Quick test_sub_borrow;
          Alcotest.test_case "sub signed overflow" `Quick test_sub_signed_overflow;
          Alcotest.test_case "adc chain" `Quick test_adc_chain;
          Alcotest.test_case "inc/dec preserve CF" `Quick test_inc_dec_preserve_cf;
          Alcotest.test_case "logic clears CF/OF" `Quick test_logic_clears_cf_of;
          Alcotest.test_case "parity" `Quick test_parity;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "neg" `Quick test_neg;
          Alcotest.test_case "imul" `Quick test_imul;
          Alcotest.test_case "idiv" `Quick test_idiv;
        ] );
      ("fp", [ Alcotest.test_case "fcmp" `Quick test_fcmp ]);
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_flags_within_declared ] );
    ]
