(** SynISA decoders, at three fidelities — the foundation of the
    adaptive level-of-detail representation:

    - {!boundary} finds only the instruction length (Levels 0/1),
    - {!opcode_eflags} adds the opcode, hence the eflags effects
      (Level 2),
    - {!full} builds a complete {!Isa.Insn.t} (Levels 3/4).

    All three are total on arbitrary bytes: they return structured
    errors, never raise on malformed input (see the fuzz properties in
    the test suite). *)

type error =
  | Invalid_opcode of int * int  (** position, offending byte *)
  | Invalid_modrm of int

val error_to_string : error -> string

exception Decode_error of error

type fetch = int -> int
(** Byte fetcher: [fetch addr] is the byte at [addr] (0–255). *)

val fetch_bytes : Bytes.t -> fetch
val fetch_string : string -> fetch

val boundary : fetch -> int -> (int, error) result
(** Length of the instruction at the address; the cheapest decode. *)

val opcode_eflags : fetch -> int -> (Opcode.t * int, error) result
(** Opcode (hence eflags mask) and length, without building operands. *)

val full : fetch -> int -> (Insn.t * int, error) result
(** Full decode; implicit operands reconstructed, pc-relative targets
    resolved to absolute addresses. *)

val boundary_exn : fetch -> int -> int
val opcode_eflags_exn : fetch -> int -> Opcode.t * int
val full_exn : fetch -> int -> Insn.t * int
