(** Unit-granular code-cache allocator — see the interface for the
    design.

    The region is divided into fixed-size units; the free state is a
    sorted list of disjoint maximal runs [(start_unit, n_units)].
    Allocation is address-ordered first-fit over that list; freeing
    re-inserts the run and coalesces with both neighbours.  Run lengths
    of live allocations are remembered by start unit so [free] needs
    only the address.  FIFO eviction *order* is not kept here — the
    runtime tracks fragment age in its own queues and calls [free] as
    it retires them. *)

type t = {
  base : int;
  unit_bytes : int;
  total_units : int;
  mutable free : (int * int) list; (* sorted disjoint (start, len) unit runs *)
  live : (int, int) Hashtbl.t;     (* start unit -> allocated units *)
  mutable free_units : int;
}

let default_unit_bytes = 64

let create ~base ~size ?(unit_bytes = default_unit_bytes) () =
  if size <= 0 then invalid_arg "Cachealloc.create: size must be positive";
  if unit_bytes <= 0 then invalid_arg "Cachealloc.create: unit_bytes must be positive";
  let total_units = size / unit_bytes in
  if total_units = 0 then invalid_arg "Cachealloc.create: size below one unit";
  {
    base;
    unit_bytes;
    total_units;
    free = [ (0, total_units) ];
    live = Hashtbl.create 64;
    free_units = total_units;
  }

let capacity t = t.total_units * t.unit_bytes
let free_bytes t = t.free_units * t.unit_bytes
let used_bytes t = (t.total_units - t.free_units) * t.unit_bytes
let holes t = List.length t.free

let largest_free_bytes t =
  List.fold_left (fun m (_, len) -> max m (len * t.unit_bytes)) 0 t.free

let units_for t bytes = (bytes + t.unit_bytes - 1) / t.unit_bytes

(** First-fit allocation of [bytes] contiguous bytes; [None] when no
    free run is large enough. *)
let alloc t bytes : int option =
  if bytes <= 0 then invalid_arg "Cachealloc.alloc: bytes must be positive";
  let n = units_for t bytes in
  let rec take acc = function
    | [] -> None
    | (start, len) :: rest when len >= n ->
        let rest' = if len = n then rest else (start + n, len - n) :: rest in
        t.free <- List.rev_append acc rest';
        t.free_units <- t.free_units - n;
        Hashtbl.replace t.live start n;
        Some (t.base + (start * t.unit_bytes))
    | run :: rest -> take (run :: acc) rest
  in
  take [] t.free

(** Release the allocation starting at [addr] (as returned by
    {!alloc}); coalesces with adjacent free runs.  Returns the number
    of bytes returned to the free list. *)
let free t ~addr : int =
  let off = addr - t.base in
  if off < 0 || off mod t.unit_bytes <> 0 then
    invalid_arg "Cachealloc.free: address not from this allocator";
  let start = off / t.unit_bytes in
  match Hashtbl.find_opt t.live start with
  | None -> invalid_arg "Cachealloc.free: address not currently allocated"
  | Some n ->
      Hashtbl.remove t.live start;
      t.free_units <- t.free_units + n;
      (* insert (start, n) keeping the list sorted, merging neighbours *)
      let rec ins = function
        | [] -> [ (start, n) ]
        | (s, l) :: rest when s + l = start -> (
            (* merge with predecessor; may also touch the successor *)
            match rest with
            | (s2, l2) :: rest2 when start + n = s2 -> (s, l + n + l2) :: rest2
            | _ -> (s, l + n) :: rest)
        | (s, l) :: rest when start + n = s -> (start, n + l) :: rest
        | (s, l) :: rest when start < s -> (start, n) :: (s, l) :: rest
        | run :: rest -> run :: ins rest
      in
      t.free <- ins t.free;
      n * t.unit_bytes

(** Re-place the allocation at [addr] at the lowest address that fits
    it.  The old run is freed first, so it is itself a candidate;
    address-ordered first-fit then guarantees the result is [<= addr].
    Returns the new address ([= addr] when the allocation is already as
    low as it can go).  The caller owns moving the bytes — the
    destination may overlap the source. *)
let slide_down t ~addr : int =
  let off = addr - t.base in
  if off < 0 || off mod t.unit_bytes <> 0 then
    invalid_arg "Cachealloc.slide_down: address not from this allocator";
  let start = off / t.unit_bytes in
  match Hashtbl.find_opt t.live start with
  | None -> invalid_arg "Cachealloc.slide_down: address not currently allocated"
  | Some n -> (
      ignore (free t ~addr);
      match alloc t (n * t.unit_bytes) with
      | Some a ->
          assert (a <= addr);
          a
      | None -> assert false (* the freed run itself always fits *))

(** Forget every allocation: the whole region becomes one free run. *)
let reset t =
  Hashtbl.reset t.live;
  t.free <- [ (0, t.total_units) ];
  t.free_units <- t.total_units
