(** General-purpose registers of SynISA.

    SynISA mirrors IA-32's register scarcity: eight 32-bit general-purpose
    registers, with [Esp] conventionally the stack pointer and [Ebp] the
    frame pointer.  Register numbers match their 3-bit encoding in
    ModRM/SIB bytes. *)

type t =
  | Eax
  | Ecx
  | Edx
  | Ebx
  | Esp
  | Ebp
  | Esi
  | Edi

let all = [ Eax; Ecx; Edx; Ebx; Esp; Ebp; Esi; Edi ]

let number = function
  | Eax -> 0
  | Ecx -> 1
  | Edx -> 2
  | Ebx -> 3
  | Esp -> 4
  | Ebp -> 5
  | Esi -> 6
  | Edi -> 7

let of_number = function
  | 0 -> Eax
  | 1 -> Ecx
  | 2 -> Edx
  | 3 -> Ebx
  | 4 -> Esp
  | 5 -> Ebp
  | 6 -> Esi
  | 7 -> Edi
  | n -> invalid_arg (Printf.sprintf "Reg.of_number: %d" n)

let name = function
  | Eax -> "eax"
  | Ecx -> "ecx"
  | Edx -> "edx"
  | Ebx -> "ebx"
  | Esp -> "esp"
  | Ebp -> "ebp"
  | Esi -> "esi"
  | Edi -> "edi"

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare (number a) (number b)
let pp ppf r = Fmt.pf ppf "%%%s" (name r)

(** Floating-point registers: a flat bank of eight 64-bit registers,
    [f0]..[f7] (no x87-style stack — SynISA's FP unit is SSE2-flavoured). *)
module F = struct
  type t = int (* invariant: 0..7 *)

  let make n =
    if n < 0 || n > 7 then invalid_arg (Printf.sprintf "Reg.F.make: %d" n);
    n

  let number (f : t) = f
  let all = [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  let name (f : t) = Printf.sprintf "f%d" f
  let equal (a : t) (b : t) = a = b
  let pp ppf f = Fmt.pf ppf "%%%s" (name f)
end
