(** Tests for the persistent code cache (DESIGN.md §6.8): a saved
    image warm-boots a fresh engine by relocation replay, and the
    warm-booted run is byte-identical to both a never-persisted run and
    the native reference — across optimization levels and under FIFO
    cache pressure.  Damaged images (corrupted, truncated,
    version-skewed, wrong program, wrong options) are refused with a
    typed error, never a crash, and the refused engine still serves
    cold. *)

open Workloads

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_ilist = Alcotest.(check (list int))

let wl name = Workload.serving_variant (Option.get (Suite.by_name name))

(* A few quick workloads spanning int and fp pipelines. *)
let suite = [| "gzip"; "parser"; "crafty"; "applu" |]

let opts_for ~level ~fifo =
  {
    Rio.Options.default with
    opt_level = level;
    cache_capacity =
      (* a deliberately small FIFO region so priming evicts and the
         save/load path meets fragmentation head on *)
      (if fifo then Some (2 * Rio.Options.(min_cache_capacity default))
       else None);
    flush_policy = Rio.Options.Flush_fifo;
  }

(* Serve one request the way the pool does: cold-loaded image, one
   thread, the request input stream.  [cache] warm-boots from a saved
   image first. *)
let serve_once ?cache ~opts (w : Workload.t) input :
    (Rio.Persist.summary, Rio.Persist.error) result option
    * int list
    * Rio.Engine.t =
  let image = Asm.Assemble.assemble w.Workload.program in
  let m = Vm.Machine.create () in
  Asm.Image.load_cold m image;
  let rt = Rio.Engine.create ~opts m in
  let loaded =
    Option.map
      (fun path ->
        Rio.Engine.load_image rt ~image_digest:(Asm.Image.digest image) ~path)
      cache
  in
  ignore
    (Vm.Machine.add_thread m ~entry:image.Asm.Image.entry
       ~stack_top:Asm.Image.default_stack_top);
  Vm.Machine.set_input m input;
  let o = Rio.Engine.run rt in
  checkb "request finished" true (o.Rio.Engine.reason = Rio.Engine.All_exited);
  (loaded, Vm.Machine.output m, rt)

let with_tmp f =
  let path = Filename.temp_file "rio" ".riocache" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Round trip: save -> load -> run is byte-identical                  *)
(* ------------------------------------------------------------------ *)

let test_roundtrip =
  QCheck.Test.make ~count:40
    ~name:"warm-boot run byte-identical to native and to never-persisted run"
    QCheck.(quad small_nat small_nat (int_range 0 2) bool)
    (fun (widx, seed, lidx, fifo) ->
      let w = wl suite.(widx mod Array.length suite) in
      let level = [| 0; 2; 3 |].(lidx) in
      let opts = opts_for ~level ~fifo in
      let input = Workload.request_input ~seed @ w.Workload.input in
      let native = Workload.run_native (Workload.with_input w input) in
      assert native.Workload.ok;
      with_tmp (fun path ->
          (* prime an instance, then snapshot it *)
          let _, prime_out, prime_rt = serve_once ~opts w input in
          let image = Asm.Assemble.assemble w.Workload.program in
          let persisted =
            Rio.Engine.save_image prime_rt
              ~image_digest:(Asm.Image.digest image) ~path
          in
          (* a fresh never-persisted instance, and a warm-booted one *)
          let _, fresh_out, _ = serve_once ~opts w input in
          let loaded, warm_out, warm_rt = serve_once ~cache:path ~opts w input in
          let summary =
            match loaded with
            | Some (Ok s) -> s
            | Some (Error e) ->
                QCheck.Test.fail_reportf "image refused: %s"
                  (Rio.Persist.error_to_string e)
            | None -> assert false
          in
          let warm_stats = Rio.Engine.stats warm_rt in
          prime_out = native.Workload.output
          && fresh_out = native.Workload.output
          && warm_out = native.Workload.output
          && summary.Rio.Persist.fragments + summary.Rio.Persist.skipped
             = persisted
          && warm_stats.Rio.Stats.fragments_preloaded
             = summary.Rio.Persist.fragments))

(* The headline effect, deterministically: with everything persisted,
   the warm-booted request rebuilds (almost) nothing. *)
let test_warm_boot_skips_building () =
  let w = wl "gzip" in
  let opts = opts_for ~level:3 ~fifo:false in
  let input = Workload.request_input ~seed:7 @ w.Workload.input in
  with_tmp (fun path ->
      let _, _, prime_rt = serve_once ~opts w input in
      let image = Asm.Assemble.assemble w.Workload.program in
      let n =
        Rio.Engine.save_image prime_rt ~image_digest:(Asm.Image.digest image)
          ~path
      in
      checkb "something persisted" true (n > 0);
      let _, _, cold_rt = serve_once ~opts w input in
      let loaded, _, warm_rt = serve_once ~cache:path ~opts w input in
      (match loaded with
      | Some (Ok s) -> checki "all fragments loaded" n s.Rio.Persist.fragments
      | _ -> Alcotest.fail "image refused");
      let cold = (Rio.Engine.stats cold_rt).Rio.Stats.blocks_built in
      let warm = (Rio.Engine.stats warm_rt).Rio.Stats.blocks_built in
      checkb
        (Printf.sprintf "warm run builds fewer blocks (%d < %d)" warm cold)
        true (warm < cold))

(* ------------------------------------------------------------------ *)
(* -O3 guard state round trip (format v2)                             *)
(* ------------------------------------------------------------------ *)

let kind_code = function
  | Rio.Types.G_ind Rio.Types.Ind_jmp -> 0
  | Rio.Types.G_ind Rio.Types.Ind_call -> 1
  | Rio.Types.G_ind Rio.Types.Ind_ret -> 2
  | Rio.Types.G_const -> 3

(* The guard state [save] persists, as a sorted multiset of
   (trace tag, site, kind, lifetime violations): guards of live
   persistable traces that are bound to a live exit. *)
let guard_multiset (rt : Rio.Engine.t) : (int * int * int * int) list =
  let open Rio.Types in
  let acc = ref [] in
  List.iter
    (fun ts ->
      Rio.Fragindex.iter_traces ts.index (fun _ f ->
          let persistable =
            (not f.deleted)
            && Array.for_all
                 (fun r ->
                   match r.r_target with
                   | RT_runtime_abs _ -> false
                   | _ -> true)
                 f.relocs
          in
          if persistable then
            List.iter
              (fun g ->
                if Array.exists (fun e -> e.exit_id = g.g_exit_id) f.exits
                then
                  acc :=
                    (f.tag, g.g_site, kind_code g.g_kind, g.g_violations)
                    :: !acc)
              f.guards))
    rt.thread_states;
  List.sort compare !acc

let multiset_to_string ms =
  String.concat "; "
    (List.map
       (fun (tag, site, kind, viols) ->
         Printf.sprintf "(0x%x,0x%x,k%d,v%d)" tag site kind viols)
       ms)

(* Speculation state must survive the reboot: a fresh engine
   warm-booted from a spec-heavy -O3 image carries exactly the saver's
   guard multiset — sites, assumption kinds, and lifetime violation
   counters — re-bound to fresh exits with clean burst state, and then
   serves byte-identically to native.  mesa exercises the full
   lifecycle (speculate / violate / despec / re-speculate); eon
   accumulates violations on indirect-target guards. *)
let test_guard_roundtrip () =
  let total_guards = ref 0 and total_viols = ref 0 in
  List.iter
    (fun name ->
      let w = wl name in
      let opts = opts_for ~level:3 ~fifo:false in
      let input = Workload.request_input ~seed:11 @ w.Workload.input in
      let native = Workload.run_native (Workload.with_input w input) in
      assert native.Workload.ok;
      with_tmp (fun path ->
          let _, _, prime_rt = serve_once ~opts w input in
          let image = Asm.Assemble.assemble w.Workload.program in
          ignore
            (Rio.Engine.save_image prime_rt
               ~image_digest:(Asm.Image.digest image) ~path);
          let expected = guard_multiset prime_rt in
          total_guards := !total_guards + List.length expected;
          List.iter (fun (_, _, _, v) -> total_viols := !total_viols + v)
            expected;
          (* load into a fresh engine WITHOUT serving anything, so the
             loaded guard state is inspectable before a run mutates it *)
          let m = Vm.Machine.create () in
          Asm.Image.load_cold m image;
          let cold_rt = Rio.Engine.create ~opts m in
          (match
             Rio.Engine.load_image cold_rt
               ~image_digest:(Asm.Image.digest image) ~path
           with
          | Ok _ -> ()
          | Error e ->
              Alcotest.fail (name ^ ": " ^ Rio.Persist.error_to_string e));
          let got = guard_multiset cold_rt in
          checkb
            (Printf.sprintf "%s: guard multiset preserved ([%s] vs [%s])"
               name
               (multiset_to_string expected)
               (multiset_to_string got))
            true (got = expected);
          (* run-local burst state starts clean on every loaded guard *)
          List.iter
            (fun ts ->
              Rio.Fragindex.iter_traces ts.Rio.Types.index (fun _ f ->
                  List.iter
                    (fun (g : Rio.Types.guard) ->
                      checki (name ^ ": burst reset") 0 g.Rio.Types.g_burst;
                      checki
                        (name ^ ": violation stamp reset")
                        0 g.Rio.Types.g_last_violation)
                    f.Rio.Types.guards))
            cold_rt.Rio.Types.thread_states;
          (* and a warm-booted request still serves byte-identically *)
          let loaded, warm_out, _ = serve_once ~cache:path ~opts w input in
          (match loaded with
          | Some (Ok _) -> ()
          | Some (Error e) ->
              Alcotest.fail (name ^ ": " ^ Rio.Persist.error_to_string e)
          | None -> assert false);
          check_ilist (name ^ ": warm -O3 output identical to native")
            native.Workload.output warm_out))
    [ "mesa"; "eon" ];
  (* the case must not pass vacuously *)
  checkb "some guards persisted" true (!total_guards > 0);
  checkb "some lifetime violations persisted" true (!total_viols > 0)

(* ------------------------------------------------------------------ *)
(* Damaged images: typed refusal, no crash, engine still serves       *)
(* ------------------------------------------------------------------ *)

(* Save a primed gzip image once; each rejection case mutates a copy. *)
let saved_image =
  lazy
    (let w = wl "gzip" in
     let opts = opts_for ~level:2 ~fifo:false in
     let input = Workload.request_input ~seed:3 @ w.Workload.input in
     let path = Filename.temp_file "rio_master" ".riocache" in
     let _, _, rt = serve_once ~opts w input in
     let image = Asm.Assemble.assemble w.Workload.program in
     let n =
       Rio.Engine.save_image rt ~image_digest:(Asm.Image.digest image) ~path
     in
     assert (n > 0);
     (path, opts, w, input))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Feed a (possibly damaged) image to a fresh engine; the load must
   return [Error expect] without raising, and the engine must still
   serve the request correctly from a cold cache afterwards. *)
let expect_refusal ~who ~expect (damage : string -> string) : unit =
  let master, opts, w, input = Lazy.force saved_image in
  let native = Workload.run_native (Workload.with_input w input) in
  with_tmp (fun path ->
      write_file path (damage (read_file master));
      let loaded, out, rt = serve_once ~cache:path ~opts w input in
      (match loaded with
      | Some (Error e) ->
          checkb
            (Printf.sprintf "%s: refused as %s (got %s)" who
               (Rio.Persist.error_to_string expect)
               (Rio.Persist.error_to_string e))
            true (e = expect)
      | Some (Ok _) -> Alcotest.fail (who ^ ": damaged image accepted")
      | None -> assert false);
      check_ilist (who ^ ": cold fallback still correct")
        native.Workload.output out;
      checki (who ^ ": refusal counted") 1
        (Rio.Engine.stats rt).Rio.Stats.persist_load_failures)

let flip s i mask =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
  Bytes.to_string b

let test_bad_magic () =
  expect_refusal ~who:"bad magic" ~expect:Rio.Persist.Bad_magic (fun s ->
      flip s 0 0x40)

let test_version_skew () =
  (* the version field sits right after the 8-byte magic; flipping the
     low bits of v2 yields v1 *)
  expect_refusal ~who:"version skew"
    ~expect:(Rio.Persist.Bad_version 1)
    (fun s -> flip s 8 0x03)

let test_corrupted_payload () =
  expect_refusal ~who:"payload corruption"
    ~expect:Rio.Persist.Checksum_mismatch (fun s ->
      flip s (String.length s / 2) 0x10)

let test_truncated_header () =
  expect_refusal ~who:"truncated to header stub"
    ~expect:Rio.Persist.Truncated (fun s -> String.sub s 0 (min 10 (String.length s)))

let test_truncated_payload () =
  (* losing the tail also loses the stored checksum *)
  expect_refusal ~who:"truncated payload"
    ~expect:Rio.Persist.Checksum_mismatch (fun s ->
      String.sub s 0 (String.length s / 2))

let test_options_mismatch () =
  let master, _, w, input = Lazy.force saved_image in
  let other = opts_for ~level:3 ~fifo:false in
  let loaded, _, _ =
    serve_once ~cache:master ~opts:other w input
  in
  match loaded with
  | Some (Error Rio.Persist.Options_mismatch) -> ()
  | Some (Error e) ->
      Alcotest.fail ("wrong error: " ^ Rio.Persist.error_to_string e)
  | Some (Ok _) -> Alcotest.fail "options skew accepted"
  | None -> assert false

let test_image_mismatch () =
  (* same options, different program: the digest check must refuse *)
  let master, opts, _, _ = Lazy.force saved_image in
  let w = wl "parser" in
  let input = Workload.request_input ~seed:3 @ w.Workload.input in
  let loaded, out, _ = serve_once ~cache:master ~opts w input in
  let native = Workload.run_native (Workload.with_input w input) in
  (match loaded with
  | Some (Error Rio.Persist.Image_mismatch) -> ()
  | Some (Error e) ->
      Alcotest.fail ("wrong error: " ^ Rio.Persist.error_to_string e)
  | Some (Ok _) -> Alcotest.fail "foreign program's image accepted"
  | None -> assert false);
  check_ilist "cold fallback still correct" native.Workload.output out

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "persist"
    [
      ( "round trip",
        [
          QCheck_alcotest.to_alcotest test_roundtrip;
          Alcotest.test_case "warm boot skips block building" `Slow
            test_warm_boot_skips_building;
          Alcotest.test_case "-O3 guard state survives save/load" `Slow
            test_guard_roundtrip;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "version skew" `Quick test_version_skew;
          Alcotest.test_case "corrupted payload" `Quick test_corrupted_payload;
          Alcotest.test_case "truncated header" `Quick test_truncated_header;
          Alcotest.test_case "truncated payload" `Quick test_truncated_payload;
          Alcotest.test_case "options mismatch" `Quick test_options_mismatch;
          Alcotest.test_case "program mismatch" `Quick test_image_mismatch;
        ] );
    ]
