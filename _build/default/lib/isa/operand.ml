(** Instruction operands.

    Memory operands use IA-32-style [base + index*scale + disp]
    addressing.  Direct control-transfer targets are stored as
    *absolute* application addresses (the encoder materialises them as
    pc-relative displacements); keeping the absolute form in the
    operand is what lets the DynamoRIO layer re-encode a control
    transfer at a different cache address without fixups. *)

type mem = {
  base : Reg.t option;
  index : (Reg.t * int) option;  (** register and scale in {1,2,4,8} *)
  disp : int;                    (** signed 32-bit displacement *)
}

type t =
  | Reg of Reg.t
  | Freg of Reg.F.t
  | Imm of int                   (** signed immediate, fits in 32 bits *)
  | Mem of mem
  | Target of int                (** absolute code address of a direct CTI *)

let reg r = Reg r
let freg f = Freg f
let imm i = Imm i
let target a = Target a

let mem ?base ?index ?(disp = 0) () =
  (match index with
   | Some (_, s) when s <> 1 && s <> 2 && s <> 4 && s <> 8 ->
       invalid_arg "Operand.mem: scale must be 1, 2, 4 or 8"
   | _ -> ());
  Mem { base; index; disp }

let mem_abs addr = mem ~disp:addr ()
let mem_base ?(disp = 0) b = mem ~base:b ~disp ()
let mem_bi ?(disp = 0) b (i, s) = mem ~base:b ~index:(i, s) ~disp ()

let is_reg = function Reg _ -> true | _ -> false
let is_mem = function Mem _ -> true | _ -> false
let is_imm = function Imm _ -> true | _ -> false
let is_freg = function Freg _ -> true | _ -> false

let get_reg = function Reg r -> r | _ -> invalid_arg "Operand.get_reg"
let get_imm = function Imm i -> i | _ -> invalid_arg "Operand.get_imm"
let get_mem = function Mem m -> m | _ -> invalid_arg "Operand.get_mem"
let get_target = function Target t -> t | _ -> invalid_arg "Operand.get_target"

(** Registers read when computing a memory operand's effective address. *)
let mem_regs (m : mem) : Reg.t list =
  let b = match m.base with Some r -> [ r ] | None -> [] in
  let i = match m.index with Some (r, _) -> [ r ] | None -> [] in
  b @ i

(** General-purpose registers this operand reads when used as a source.
    (A [Mem] used as a destination still *reads* its address registers.) *)
let regs_used = function
  | Reg r -> [ r ]
  | Mem m -> mem_regs m
  | Freg _ | Imm _ | Target _ -> []

let equal_mem (a : mem) (b : mem) =
  a.disp = b.disp
  && Option.equal Reg.equal a.base b.base
  && Option.equal
       (fun (r1, s1) (r2, s2) -> Reg.equal r1 r2 && s1 = s2)
       a.index b.index

let equal (a : t) (b : t) =
  match (a, b) with
  | Reg x, Reg y -> Reg.equal x y
  | Freg x, Freg y -> Reg.F.equal x y
  | Imm x, Imm y -> x = y
  | Mem x, Mem y -> equal_mem x y
  | Target x, Target y -> x = y
  | _ -> false

let pp_mem ppf (m : mem) =
  let pp_base ppf = function
    | Some r -> Reg.pp ppf r
    | None -> ()
  in
  match m.index with
  | None ->
      if m.base = None then Fmt.pf ppf "0x%x" (m.disp land 0xffffffff)
      else if m.disp = 0 then Fmt.pf ppf "(%a)" pp_base m.base
      else Fmt.pf ppf "%s0x%x(%a)"
          (if m.disp < 0 then "-" else "")
          (abs m.disp) pp_base m.base
  | Some (i, s) ->
      if m.disp = 0 then
        Fmt.pf ppf "(%a,%a,%d)" pp_base m.base Reg.pp i s
      else
        Fmt.pf ppf "%s0x%x(%a,%a,%d)"
          (if m.disp < 0 then "-" else "")
          (abs m.disp) pp_base m.base Reg.pp i s

let pp ppf = function
  | Reg r -> Reg.pp ppf r
  | Freg f -> Reg.F.pp ppf f
  | Imm i -> Fmt.pf ppf "$0x%x" (i land 0xffffffff)
  | Mem m -> pp_mem ppf m
  | Target t -> Fmt.pf ppf "0x%x" t
