lib/workloads/vpr_like.ml: Asm List Workload
