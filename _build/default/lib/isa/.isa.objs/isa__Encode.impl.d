lib/isa/encode.ml: Array Buffer Bytes Char Cond Encoding_spec Fmt Insn Opcode Operand Option Reg
