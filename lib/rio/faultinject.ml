(** Deterministic, seeded fault injector (S34).

    Exercises the self-healing machinery by sabotaging the runtime at
    dispatcher safe points — never while any thread is inside the
    victim fragment, and always immediately followed by an audit pass
    (the dispatcher runs {!Audit.run} after every injection), so
    injected damage is detected and repaired before the cache is
    re-entered.  That discipline is what lets observational-equivalence
    tests pass {e under} injection: faults land, are found, and are
    healed without a corrupted byte ever executing.

    Four fault kinds, selectable via {!Options.fault_opts}:
    - {b corrupt}: flip one byte of a live fragment's cache image;
    - {b link}: re-patch a linked exit branch to a bogus target,
      without updating the link bookkeeping;
    - {b hook}: arm {!Types.runtime.fi_hook_pending} so the next client
      hook raises ({!Guard.Fault_injected}) after doing its work;
    - {b signal}: queue a pending signal whose handler address lies
      outside application space.

    All randomness comes from a private LCG on
    {!Types.runtime.fi_state}; candidate fragments and exits are sorted
    before selection so a (seed, workload, options) triple replays
    byte-identically. *)

open Types

(* the 48-bit LCG of java.util.Random: well-studied, fits in OCaml's
   63-bit int without overflow games *)
let state_mask = (1 lsl 48) - 1

let rand (rt : runtime) (n : int) : int =
  rt.fi_state <- ((rt.fi_state * 25214903917) + 11) land state_mask;
  if n <= 1 then 0 else (rt.fi_state lsr 16) mod n

(* A fragment is a safe corruption victim only if no preempted thread
   is currently executing inside it: the damage must be repairable at
   this safe point, before the bytes can run.  The pinning test is
   {!Types.thread_inside}, shared with capacity eviction. *)
let candidate_fragments (rt : runtime) : fragment list =
  List.filter (fun f -> not (thread_inside rt f)) (Audit.live_fragments rt)

(* ------------------------------------------------------------------ *)
(* The four fault kinds.  Each returns true if it found a victim.     *)
(* ------------------------------------------------------------------ *)

let inject_corrupt (rt : runtime) : bool =
  match candidate_fragments rt with
  | [] -> false
  | frags ->
      let f = List.nth frags (rand rt (List.length frags)) in
      let off = rand rt (f.total_end - f.entry) in
      let addr = f.entry + off in
      let mem = Vm.Machine.mem rt.machine in
      let old = Vm.Memory.read_u8 mem addr in
      (* xor with a nonzero mask: the byte always actually changes *)
      Vm.Memory.write_u8 mem addr (old lxor (1 + rand rt 255));
      Vm.Machine.invalidate_icache rt.machine ~addr ~len:1;
      rt.stats.Stats.faults_corrupt <- rt.stats.Stats.faults_corrupt + 1;
      log_flow rt "inject: corrupt byte at 0x%x (fragment 0x%x)" addr f.tag;
      true

(* Clients can replace an exit's stub with a custom IL (compare
   chains, profiling code); for those the recorded patch site no longer
   holds a direct branch and {!Emit.patch_branch} would refuse it. *)
let exit_patchable (rt : runtime) (e : exit_) : bool =
  let pc = if e.always_through_stub then e.stub_jmp_pc else e.branch_pc in
  let fetch = Vm.Memory.fetch (Vm.Machine.mem rt.machine) in
  match Isa.Decode.full fetch pc with
  | Ok (insn, _) -> (
      match insn.Isa.Insn.opcode with
      | Isa.Opcode.Jmp | Isa.Opcode.Jcc _ -> true
      | _ -> false)
  | Error _ -> false

let inject_link_flip (rt : runtime) : bool =
  let linked_exits =
    List.concat_map
      (fun f ->
        Array.to_list f.exits
        |> List.filter (fun e -> e.linked <> None && exit_patchable rt e))
      (candidate_fragments rt)
    |> List.sort (fun a b -> compare a.exit_id b.exit_id)
  in
  match linked_exits with
  | [] -> false
  | exits ->
      let e = List.nth exits (rand rt (List.length exits)) in
      let tgt = match e.linked with Some t -> t | None -> assert false in
      (* mid-fragment target: decodable as a branch, but wrong — and the
         owner's checksum is deliberately left stale *)
      let bogus = tgt.entry + 1 + rand rt (max 1 (tgt.total_end - tgt.entry - 1)) in
      let pc = if e.always_through_stub then e.stub_jmp_pc else e.branch_pc in
      Emit.patch_branch rt ~pc ~target:bogus;
      rt.stats.Stats.faults_link <- rt.stats.Stats.faults_link + 1;
      log_flow rt "inject: exit %d branch flipped to 0x%x" e.exit_id bogus;
      true

let inject_hook_raise (rt : runtime) : bool =
  let c = rt.client in
  let has_hook =
    c.basic_block <> None || c.trace_hook <> None
    || c.fragment_deleted <> None || c.end_trace <> None
  in
  if rt.client_quarantined || rt.fi_hook_pending || not has_hook then false
  else begin
    rt.fi_hook_pending <- true;
    rt.stats.Stats.faults_hook <- rt.stats.Stats.faults_hook + 1;
    log_flow rt "inject: next client hook will raise";
    true
  end

let inject_spurious_signal (rt : runtime) (ts : thread_state) : bool =
  (* handler outside application space: delivery must refuse it *)
  let handler = cache_base + rand rt 0x1000 in
  ts.thread.Vm.Machine.pending_signals <-
    ts.thread.Vm.Machine.pending_signals @ [ handler ];
  rt.stats.Stats.faults_signal <- rt.stats.Stats.faults_signal + 1;
  log_flow rt "inject: spurious signal, handler 0x%x" handler;
  true

(* ------------------------------------------------------------------ *)
(* Pool-scope chaos injection (DESIGN.md §6.6)                        *)
(* ------------------------------------------------------------------ *)

(** Domain-scope faults, injected by the serving pool around whole
    requests rather than by the dispatcher inside one engine.  Where
    the S34 injector sabotages {e cache state} and expects the audit +
    recovery ladder to heal it, chaos sabotages the {e fleet}: it kills
    worker domains, stalls them, poisons warm instances, and storms
    client hooks, and expects the pool's supervisor + retry ladder +
    quarantine to keep every request served and output-identical. *)
type chaos_kind =
  | Chaos_crash      (** raise {!Chaos_domain_kill} mid-request: the worker
                         domain dies and the supervisor must respawn it *)
  | Chaos_stall      (** the worker sleeps, tripping a wall-clock deadline *)
  | Chaos_poison     (** flip a byte of the instance's application image
                         so the request diverges or faults *)
  | Chaos_hook_storm (** arm a hook-raise burst against the client *)

let chaos_kind_name = function
  | Chaos_crash -> "crash"
  | Chaos_stall -> "stall"
  | Chaos_poison -> "poison"
  | Chaos_hook_storm -> "hookstorm"

exception Chaos_domain_kill
(** The injected worker-domain death.  Deliberately punches through the
    pool's per-request exception barrier: the domain really dies, and
    recovery must come from the supervisor. *)

type chaos_opts = {
  ch_seed : int;
  ch_period : int;         (** mean requests between injections (>= 1) *)
  ch_crash : bool;
  ch_stall : bool;
  ch_poison : bool;
  ch_hook_storm : bool;
}

let default_chaos =
  {
    ch_seed = 1;
    ch_period = 4;
    ch_crash = true;
    ch_stall = true;
    ch_poison = true;
    ch_hook_storm = true;
  }

(** Per-worker chaos state: each worker domain owns a private LCG
    stream (seed mixed with the worker id), so concurrent workers never
    race on injector state and a (seed, worker, request-order) triple
    replays deterministically. *)
type chaos_state = { mutable cs_lcg : int; cs_opts : chaos_opts }

let chaos_make (opts : chaos_opts) ~salt : chaos_state =
  let mixed =
    ((opts.ch_seed * 1000003) + ((salt + 1) * 0x9e3779b9)) land state_mask
  in
  { cs_lcg = (if mixed = 0 then 0x9e3779b9 else mixed); cs_opts = opts }

let chaos_rand (cs : chaos_state) (n : int) : int =
  cs.cs_lcg <- ((cs.cs_lcg * 25214903917) + 11) land state_mask;
  if n <= 1 then 0 else (cs.cs_lcg lsr 16) mod n

(** Roll the chaos dice for one request attempt: [None] roughly
    [ch_period - 1] times out of [ch_period], otherwise one of the
    enabled fault kinds uniformly. *)
let chaos_tick (cs : chaos_state) : chaos_kind option =
  let o = cs.cs_opts in
  if chaos_rand cs (max 1 o.ch_period) <> 0 then None
  else
    let kinds =
      List.concat
        [
          (if o.ch_crash then [ Chaos_crash ] else []);
          (if o.ch_stall then [ Chaos_stall ] else []);
          (if o.ch_poison then [ Chaos_poison ] else []);
          (if o.ch_hook_storm then [ Chaos_hook_storm ] else []);
        ]
    in
    match kinds with
    | [] -> None
    | ks -> Some (List.nth ks (chaos_rand cs (List.length ks)))

(* ------------------------------------------------------------------ *)

(** Called by the dispatcher at each safe point.  Injects roughly once
    every [fi_period] calls; returns true when something was injected
    (the dispatcher then audits immediately). *)
let tick (rt : runtime) (ts : thread_state) : bool =
  match rt.opts.Options.faults with
  | None -> false
  | Some fo ->
      if rand rt (max 1 fo.Options.fi_period) <> 0 then false
      else begin
        let kinds =
          List.concat
            [
              (if fo.Options.fi_corrupt then [ `Corrupt ] else []);
              (if fo.Options.fi_links then [ `Link ] else []);
              (if fo.Options.fi_hooks then [ `Hook ] else []);
              (if fo.Options.fi_signals then [ `Signal ] else []);
            ]
        in
        match kinds with
        | [] -> false
        | _ ->
            (* try each enabled kind starting at a random one until a
               victim is found *)
            let n = List.length kinds in
            let start = rand rt n in
            let try_kind = function
              | `Corrupt -> inject_corrupt rt
              | `Link -> inject_link_flip rt
              | `Hook -> inject_hook_raise rt
              | `Signal -> inject_spurious_signal rt ts
            in
            let rec go k =
              if k >= n then false
              else if try_kind (List.nth kinds ((start + k) mod n)) then true
              else go (k + 1)
            in
            let injected = go 0 in
            if injected then
              rt.stats.Stats.faults_injected <- rt.stats.Stats.faults_injected + 1;
            injected
      end
