lib/workloads/workload.mli: Asm Rio Vm
