(** Workload infrastructure.

    Each workload is a synthetic SynISA program named after the
    SPEC2000 benchmark whose {e behavioural character} it reproduces
    (see DESIGN.md §2): loop-dominated FP with register-pressure
    reloads, branchy integer with indirect dispatch, call-heavy,
    low-code-reuse multi-phase, and so on.  Figure 5's shape depends on
    those characters, not on the original SPEC source.

    Every program finishes by writing a checksum to the output port and
    halting, so observational-equivalence tests can compare native,
    emulated, and code-cache executions exactly. *)

type t = {
  name : string;
  spec_name : string;      (** the SPEC2000 benchmark this models *)
  fp : bool;               (** floating-point (vs integer) benchmark *)
  description : string;
  program : Asm.Ast.program;
  input : int list;        (** values served by the [in] port *)
}

let make ~name ~spec_name ~fp ~description ?(input = []) program =
  { name; spec_name; fp; description; program; input }

(* ------------------------------------------------------------------ *)
(* Deterministic pseudo-random data for data segments                 *)
(* ------------------------------------------------------------------ *)

(** Linear congruential generator (Numerical Recipes constants),
    yielding non-negative 31-bit values. *)
let lcg ?(seed = 12345) n : int list =
  let state = ref seed in
  List.init n (fun _ ->
      state := (1664525 * !state + 1013904223) land 0xFFFF_FFFF;
      !state lsr 1)

let lcg_mod ?seed n m = List.map (fun v -> v mod m) (lcg ?seed n)

let lcg_floats ?(seed = 999) n : float list =
  let ints = lcg ~seed n in
  List.map (fun v -> float_of_int (v land 0xFFFF) /. 65536.0 +. 0.25) ints

(* ------------------------------------------------------------------ *)
(* Request parameterization (serving)                                  *)
(* ------------------------------------------------------------------ *)

(** The per-request input words a serving variant's preamble consumes
    (four LCG words derived from the request seed). *)
let request_input ~seed : int list = lcg ~seed:(seed + 1) 4

let with_input (w : t) (input : int list) : t = { w with input }

(** Wrap a workload for serving: a fixed preamble reads the four
    request words, folds them into a fingerprint written to the output
    port, zeroes its scratch registers, and jumps to the original
    entry.  The text is {e identical} for every request seed — only the
    input stream differs — so a warm code cache built for one seed is
    directly reusable for the next. *)
let serving_variant (w : t) : t =
  let open Asm.Dsl in
  let preamble =
    [
      label "__request_entry";
      in_ eax;
      in_ ebx;
      xor eax ebx;
      in_ ebx;
      add eax ebx;
      in_ ebx;
      xor eax ebx;
      out eax;
      mov eax (i 0);
      mov ebx (i 0);
      jmp w.program.Asm.Ast.entry;
    ]
  in
  {
    w with
    name = w.name;
    program =
      {
        w.program with
        Asm.Ast.entry = "__request_entry";
        Asm.Ast.text = preamble @ w.program.Asm.Ast.text;
      };
  }

(* ------------------------------------------------------------------ *)
(* Running                                                            *)
(* ------------------------------------------------------------------ *)

type run_result = {
  output : int list;
  cycles : int;
  insns : int;
  ok : bool;               (** program halted normally *)
  detail : string;
}

(** Run natively (or in pure interpreter-emulation mode via the
    scheduler, for calibration tests). *)
let run_native ?(family = Vm.Cost.Pentium4) ?(emulate = false) (w : t) : run_result =
  let image = Asm.Assemble.assemble w.program in
  let m = Vm.Machine.create ~family () in
  Vm.Machine.set_input m w.input;
  ignore (Asm.Image.load m image);
  let o = Vm.Sched.run ~emulate m in
  {
    output = Vm.Machine.output m;
    cycles = o.Vm.Sched.cycles;
    insns = o.Vm.Sched.insns;
    ok = o.Vm.Sched.stop = Vm.Interp.Halted;
    detail = Vm.Interp.stop_to_string o.Vm.Sched.stop;
  }

(** Run under the RIO runtime with the given options and client.
    Returns the result plus the runtime (for stats inspection). *)
let run_rio ?(family = Vm.Cost.Pentium4) ?(opts = Rio.Options.default)
    ?(client = Rio.Types.null_client) (w : t) : run_result * Rio.t =
  let image = Asm.Assemble.assemble w.program in
  let m = Vm.Machine.create ~family () in
  Vm.Machine.set_input m w.input;
  ignore (Asm.Image.load m image);
  let rt = Rio.create ~opts ~client m in
  let o = Rio.run rt in
  ( {
      output = Vm.Machine.output m;
      cycles = o.Rio.cycles;
      insns = o.Rio.insns;
      ok = o.Rio.reason = Rio.All_exited;
      detail = Rio.stop_reason_to_string o.Rio.reason;
    },
    rt )
