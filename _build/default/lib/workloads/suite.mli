(** The synthetic SPEC2000-like benchmark suite: 12 integer + 8
    floating-point workloads (see DESIGN.md §2 for the substitution
    rationale). *)

val all : Workload.t list
val integer : Workload.t list
val floating : Workload.t list
val by_name : string -> Workload.t option
val names : string list
