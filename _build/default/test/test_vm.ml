(** Tests for the VM substrate: interpreter semantics, flags, memory,
    scheduler, cost model, assembler round trips. *)

open Asm.Dsl

let checkb = Alcotest.(check bool)
let check_ilist = Alcotest.(check (list int))

(* Run a program natively on a fresh machine; return (output, machine). *)
let run_native ?(family = Vm.Cost.Pentium4) ?(input = []) prog =
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create ~family () in
  Vm.Machine.set_input m input;
  let _t = Asm.Image.load m image in
  let outcome = Vm.Sched.run ~emulate:false m in
  (Vm.Machine.output m, m, outcome)

let expect_output ?input name prog expected =
  let out, _, outcome = run_native ?input prog in
  (match outcome.Vm.Sched.stop with
   | Vm.Interp.Halted -> ()
   | s -> Alcotest.failf "%s: stopped with %s" name (Vm.Interp.stop_to_string s));
  check_ilist name expected out

(* ------------------------------------------------------------------ *)
(* Basic arithmetic programs                                          *)
(* ------------------------------------------------------------------ *)

let test_mov_out () =
  expect_output "mov/out"
    (program ~name:"t" ~text:[ label "main"; mov eax (i 42); out eax; hlt ] ())
    [ 42 ]

let test_loop_sum () =
  (* sum 1..10 = 55 *)
  expect_output "loop sum"
    (program ~name:"t"
       ~text:
         [
           label "main";
           mov eax (i 0);
           mov ecx (i 1);
           label "loop";
           add eax ecx;
           inc ecx;
           cmp ecx (i 10);
           j le "loop";
           out eax;
           hlt;
         ]
       ())
    [ 55 ]

let test_signed_arith () =
  expect_output "neg/idiv"
    (program ~name:"t"
       ~text:
         [
           label "main";
           mov eax (i (-17));
           mov ebx (i 5);
           idiv ebx;       (* eax = -3, edx = -2 *)
           out eax;
           out edx;
           neg eax;        (* 3 *)
           out eax;
           hlt;
         ]
       ())
    [ -3 land 0xFFFFFFFF; -2 land 0xFFFFFFFF; 3 ]

let test_flags_cf_of () =
  (* 0xFFFFFFFF + 1 sets CF and ZF, not OF *)
  expect_output "carry chain"
    (program ~name:"t"
       ~text:
         [
           label "main";
           mov eax (i (-1));
           add eax (i 1);      (* CF=1 ZF=1 *)
           mov ebx (i 0);
           adc ebx (i 0);      (* ebx = 0 + 0 + CF = 1 *)
           out ebx;
           (* signed overflow: 0x7FFFFFFF + 1 -> OF *)
           mov eax (i 0x7FFFFFFF);
           add eax (i 1);
           mov ecx (i 0);
           j no "no_of";
           mov ecx (i 1);
           label "no_of";
           out ecx;
           hlt;
         ]
       ())
    [ 1; 1 ]

let test_inc_preserves_cf () =
  expect_output "inc preserves CF"
    (program ~name:"t"
       ~text:
         [
           label "main";
           mov eax (i (-1));
           add eax (i 1);   (* CF=1 *)
           inc eax;         (* must not clobber CF *)
           mov ebx (i 0);
           adc ebx (i 0);   (* 1 if CF still set *)
           out ebx;
           hlt;
         ]
       ())
    [ 1 ]

let test_shifts () =
  expect_output "shifts"
    (program ~name:"t"
       ~text:
         [
           label "main";
           mov eax (i 1);
           shl eax (i 4);
           out eax;              (* 16 *)
           mov eax (i (-32));
           sar eax (i 2);
           out eax;              (* -8 *)
           mov eax (i (-32));
           shr eax (i 28);
           out eax;              (* 0xF *)
           mov ecx (i 3);
           mov eax (i 2);
           shl eax ecx;
           out eax;              (* 16 *)
           hlt;
         ]
       ())
    [ 16; -8 land 0xFFFFFFFF; 0xF; 16 ]

let test_memory_ops () =
  expect_output "memory load/store"
    (program ~name:"t"
       ~text:
         [
           label "main";
           li ebx "buf";
           mov (mb ebx) (i 0x11223344);
           movzx8 eax (mb ebx);
           out eax;                       (* 0x44 *)
           movzx16 eax (mb ebx);
           out eax;                       (* 0x3344 *)
           mov (mb ebx ~disp:4) (i 7);
           mov eax (mb ebx ~disp:4);
           out eax;                       (* 7 *)
           (* scaled indexing: buf[2*4] *)
           mov ecx (i 2);
           mov (m ~base:ebx ~index:(ecx, 4) ()) (i 99);
           mov eax (mb ebx ~disp:8);
           out eax;                       (* 99 *)
           hlt;
         ]
       ~data:[ label "buf"; space 64 ]
       ())
    [ 0x44; 0x3344; 7; 99 ]

let test_stack_and_calls () =
  expect_output "call/ret"
    (program ~name:"t"
       ~text:
         [
           label "main";
           mov eax (i 5);
           call "double";
           out eax;          (* 10 *)
           call "double";
           out eax;          (* 20 *)
           hlt;
           label "double";
           add eax eax;
           ret;
         ]
       ())
    [ 10; 20 ]

let test_indirect_branches () =
  expect_output "indirect jmp through table"
    (program ~name:"t"
       ~text:
         [
           label "main";
           mov esi (i 0);
           label "loop";
           li ebx "table";
           mov eax (m ~base:ebx ~index:(esi, 4) ());
           jmp_ind eax;
           label "case0";
           out (i 100);
           inc esi;
           jmp "loop";
           label "case1";
           out (i 200);
           inc esi;
           jmp "loop";
           label "case2";
           hlt;
         ]
       ~data:[ label "table"; word32_lbl [ "case0"; "case1"; "case2" ] ]
       ())
    [ 100; 200 ]

let test_fp () =
  expect_output "fp arithmetic"
    (program ~name:"t"
       ~text:
         [
           label "main";
           li ebx "vals";
           fld f0 (mb ebx);             (* 2.5 *)
           fld f1 (mb ebx ~disp:8);     (* 4.0 *)
           fmul f0 (fr f1);             (* 10.0 *)
           fsqrt f1;                    (* 2.0 *)
           fadd f0 (fr f1);             (* 12.0 *)
           cvtfi eax f0;
           out eax;                     (* 12 *)
           fcmp f0 (fr f1);
           j nbe "bigger";              (* 12 > 2 unsigned-style compare *)
           out (i 0);
           hlt;
           label "bigger";
           out (i 1);
           hlt;
         ]
       ~data:[ label "vals"; float64 [ 2.5; 4.0 ] ]
       ())
    [ 12; 1 ]

let test_in_port () =
  expect_output "input port" ~input:[ 3; 4 ]
    (program ~name:"t"
       ~text:
         [
           label "main";
           in_ eax;
           in_ ebx;
           imul eax ebx;
           out eax;
           hlt;
         ]
       ())
    [ 12 ]

let test_fault_oob () =
  let _, _, outcome =
    run_native
      (program ~name:"t"
         ~text:[ label "main"; mov eax (i (-4)); mov ebx (mb eax); hlt ]
         ())
  in
  match outcome.Vm.Sched.stop with
  | Vm.Interp.Fault _ -> ()
  | s -> Alcotest.failf "expected fault, got %s" (Vm.Interp.stop_to_string s)

let test_div_by_zero () =
  let _, _, outcome =
    run_native
      (program ~name:"t"
         ~text:[ label "main"; mov eax (i 1); mov ebx (i 0); idiv ebx; hlt ]
         ())
  in
  match outcome.Vm.Sched.stop with
  | Vm.Interp.Fault s ->
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      checkb "mentions div" true (contains s "division")
  | s -> Alcotest.failf "expected fault, got %s" (Vm.Interp.stop_to_string s)

(* ------------------------------------------------------------------ *)
(* Cost model                                                         *)
(* ------------------------------------------------------------------ *)

let cycles_of ?(family = Vm.Cost.Pentium4) prog =
  let _, _, outcome = run_native ~family prog in
  outcome.Vm.Sched.cycles

let count_loop body =
  program ~name:"t"
    ~text:
      ([ label "main"; mov ecx (i 0); label "loop" ]
      @ body
      @ [ inc ecx; cmp ecx (i 1000); j l "loop"; hlt ])
    ()

let test_family_inc_vs_add () =
  (* On P4, inc is slower than add 1; on P3 it is not. *)
  let inc_p4 = cycles_of ~family:Vm.Cost.Pentium4 (count_loop [ inc eax ]) in
  let add_p4 = cycles_of ~family:Vm.Cost.Pentium4 (count_loop [ add eax (i 1) ]) in
  let inc_p3 = cycles_of ~family:Vm.Cost.Pentium3 (count_loop [ inc eax ]) in
  let add_p3 = cycles_of ~family:Vm.Cost.Pentium3 (count_loop [ add eax (i 1) ]) in
  checkb "P4: inc slower than add" true (inc_p4 > add_p4);
  checkb "P3: inc not slower than add" true (inc_p3 <= add_p3)

let test_emulation_overhead () =
  let prog = count_loop [ add eax (i 1) ] in
  let image = Asm.Assemble.assemble prog in
  let native =
    let m = Vm.Machine.create () in
    ignore (Asm.Image.load m image);
    (Vm.Sched.run ~emulate:false m).Vm.Sched.cycles
  in
  let emu =
    let m = Vm.Machine.create () in
    ignore (Asm.Image.load m image);
    (Vm.Sched.run ~emulate:true m).Vm.Sched.cycles
  in
  checkb "emulation is > 50x native" true (emu > 50 * native)

let test_ras_prediction () =
  (* call/ret pairs should be much cheaper than matched indirect jumps *)
  let call_prog =
    program ~name:"t"
      ~text:
        [
          label "main"; mov ecx (i 0);
          label "loop"; call "f"; inc ecx; cmp ecx (i 1000); j l "loop"; hlt;
          label "f"; ret;
        ]
      ()
  in
  let c = cycles_of call_prog in
  (* the same control flow written as push + pop/jmp_ind (what a code
     cache must do) loses RAS prediction when call sites alternate *)
  let mangled_prog =
    program ~name:"t"
      ~text:
        [
          label "main"; mov ecx (i 0);
          label "loop";
          push_lbl "ret1"; jmp "f";
          label "ret1";
          push_lbl "ret2"; jmp "f";
          label "ret2";
          inc ecx; cmp ecx (i 500); j l "loop"; hlt;
          (* f "returns" via pop + indirect jump: alternating targets
             defeat the one-entry BTB *)
          label "f"; pop eax; jmp_ind eax;
        ]
      ()
  in
  let c_mangled = cycles_of mangled_prog in
  (* both loops perform 1000 call/returns *)
  checkb "RAS-predicted returns beat indirect jumps" true (c < c_mangled)

(* ------------------------------------------------------------------ *)
(* Threads and signals                                                *)
(* ------------------------------------------------------------------ *)

let test_two_threads () =
  let prog =
    program ~name:"t"
      ~text:
        [
          label "main";
          label "spin";  (* wait for worker to write flag *)
          ld eax "flag";
          test eax eax;
          j z "spin";
          out (i 7);
          hlt;
          label "worker";
          mov eax (i 1);
          st "flag" eax;
          hlt;
        ]
      ~data:[ label "flag"; word32 [ 0 ] ]
      ()
  in
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  ignore (Asm.Image.spawn m image "worker");
  let outcome = Vm.Sched.run ~quantum:1000 ~max_cycles:10_000_000 ~emulate:false m in
  (match outcome.Vm.Sched.stop with
   | Vm.Interp.Halted -> ()
   | s -> Alcotest.failf "stopped with %s" (Vm.Interp.stop_to_string s));
  check_ilist "thread handoff" [ 7 ] (Vm.Machine.output m)

let test_signal_native () =
  let prog =
    program ~name:"t"
      ~text:
        [
          label "main";
          mov ecx (i 0);
          label "loop";
          inc ecx;
          cmp ecx (i 100000);
          j l "loop";
          out ecx;
          hlt;
          label "handler";
          out (i 555);
          ret;  (* return to interrupted pc (pushed by delivery) *)
        ]
      ()
  in
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  Vm.Machine.schedule_signal m ~at:500 ~tid:0
    ~handler:(Asm.Image.label image "handler");
  let outcome = Vm.Sched.run ~emulate:false m in
  (match outcome.Vm.Sched.stop with
   | Vm.Interp.Halted -> ()
   | s -> Alcotest.failf "stopped with %s" (Vm.Interp.stop_to_string s));
  check_ilist "signal ran then program finished" [ 555; 100000 ]
    (Vm.Machine.output m)

(* ------------------------------------------------------------------ *)
(* Assembler                                                          *)
(* ------------------------------------------------------------------ *)

let test_branch_relaxation () =
  (* a branch over >127 bytes of code must use the rel32 form; one over
     a few bytes must use rel8.  Both must still run correctly. *)
  let far_body = List.init 60 (fun _ -> add eax (i 1000)) (* 6 bytes each *) in
  expect_output "relaxed branches"
    (program ~name:"t"
       ~text:
         ([ label "main"; mov eax (i 0); cmp eax (i 1); j z "far" ]
         @ far_body
         @ [ label "far"; out eax; hlt ])
       ())
    [ 60000 ]

let test_duplicate_label () =
  let prog =
    program ~name:"t" ~text:[ label "main"; label "main"; hlt ] ()
  in
  checkb "duplicate label rejected" true
    (match Asm.Assemble.assemble prog with
     | exception Asm.Ast.Duplicate_label "main" -> true
     | exception _ -> false
     | _ -> false)

let test_unknown_label () =
  let prog = program ~name:"t" ~text:[ label "main"; jmp "nowhere" ] () in
  checkb "unknown label rejected" true
    (match Asm.Assemble.assemble prog with
     | exception _ -> true
     | _ -> false)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "vm"
    [
      ( "semantics",
        [
          Alcotest.test_case "mov/out" `Quick test_mov_out;
          Alcotest.test_case "loop sum" `Quick test_loop_sum;
          Alcotest.test_case "signed arith" `Quick test_signed_arith;
          Alcotest.test_case "carry/overflow flags" `Quick test_flags_cf_of;
          Alcotest.test_case "inc preserves CF" `Quick test_inc_preserves_cf;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "memory ops" `Quick test_memory_ops;
          Alcotest.test_case "call/ret" `Quick test_stack_and_calls;
          Alcotest.test_case "indirect branches" `Quick test_indirect_branches;
          Alcotest.test_case "floating point" `Quick test_fp;
          Alcotest.test_case "input port" `Quick test_in_port;
          Alcotest.test_case "oob fault" `Quick test_fault_oob;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "inc vs add by family" `Quick test_family_inc_vs_add;
          Alcotest.test_case "emulation overhead" `Quick test_emulation_overhead;
          Alcotest.test_case "RAS prediction" `Quick test_ras_prediction;
        ] );
      ( "threads+signals",
        [
          Alcotest.test_case "two threads" `Quick test_two_threads;
          Alcotest.test_case "native signal" `Quick test_signal_native;
        ] );
      ( "assembler",
        [
          Alcotest.test_case "branch relaxation" `Quick test_branch_relaxation;
          Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
          Alcotest.test_case "unknown label" `Quick test_unknown_label;
        ] );
    ]
