(** Runtime configuration.

    The first four flags select the systems of Table 1: pure emulation,
    basic-block cache only, + direct links, + indirect-branch in-cache
    lookup, + traces.  The cost block holds the modelled runtime
    overheads (see DESIGN.md §2 for the substitution rationale). *)

type costs = {
  context_switch : int;
      (** cycles to leave the cache, restore runtime state, dispatch,
          and re-enter the cache *)
  ibl_lookup : int;
      (** in-cache indirect-branch hashtable lookup (includes the
          mispredicted indirect jump at its end) *)
  stub_exec : int;       (** executing an exit stub's save/record path *)
  bb_build_base : int;   (** fixed cost of building a basic block *)
  bb_build_per_insn : int;
  trace_build_per_insn : int;  (** full decode + analysis + re-encode *)
  clean_call : int;      (** context save/restore around a clean call *)
  replace_fragment : int;
  audit_per_fragment : int;
      (** modelled cost of auditing one fragment (checksum walk +
          link-state validation) at a dispatch safe point *)
  evict_fragment : int;
      (** unlinking and reclaiming one fragment under incremental
          (FIFO) capacity eviction *)
  opt_per_insn_pass : int;
      (** running one optimizer pass over one trace instruction (each
          pass is a linear scan, far cheaper than the full decode +
          re-encode already covered by [trace_build_per_insn]) *)
}

let default_costs =
  {
    context_switch = 150;
    ibl_lookup = 45;
    stub_exec = 10;
    bb_build_base = 250;
    bb_build_per_insn = 60;
    trace_build_per_insn = 150;
    clean_call = 60;
    replace_fragment = 500;
    audit_per_fragment = 20;
    evict_fragment = 40;
    opt_per_insn_pass = 6;
  }

(* ------------------------------------------------------------------ *)
(* Trace optimization (DESIGN.md §6.4)                                *)
(* ------------------------------------------------------------------ *)

(** The in-core optimizer's passes, runnable individually (see
    {!Opt}).  [opt_level] selects a canonical set; [opt_enable] /
    [opt_disable] fine-tune it. *)
type opt_pass =
  | Copy_prop       (** copy + constant propagation *)
  | Strength        (** inc→add / dec→sub (architecture-gated) *)
  | Load_removal    (** redundant load removal *)
  | Dead_store      (** dead stores + dead register/flag writes *)
  | Exit_peephole   (** exit-check simplification *)
  | Flag_elide      (** dead flag-save/restore bracket elision *)

let all_passes =
  [ Copy_prop; Strength; Load_removal; Dead_store; Exit_peephole; Flag_elide ]

let pass_name = function
  | Copy_prop -> "copyprop"
  | Strength -> "strength"
  | Load_removal -> "loadrem"
  | Dead_store -> "deadstore"
  | Exit_peephole -> "peephole"
  | Flag_elide -> "flagelide"

let pass_of_name n =
  List.find_opt (fun p -> pass_name p = n) all_passes

(** Canonical pass set per level: [-O1] runs the flag-safe rewrites,
    [-O2] adds the passes backed by the register/memory liveness
    analysis.  [-O3] runs the same classic passes; what it adds is the
    speculative machinery in {!Trace}/{!Opt} (profile-guided guard
    insertion and mid-trace deoptimization, DESIGN.md §6.7), which is
    not a pass over the IL but a change to how traces are built. *)
let passes_at_level = function
  | 0 -> []
  | 1 -> [ Copy_prop; Strength; Flag_elide ]
  | _ -> [ Copy_prop; Strength; Load_removal; Dead_store; Exit_peephole; Flag_elide ]

(** Deterministic fault injection (S34).  The injector fires at
    dispatcher safe points, roughly once every [fi_period] dispatches,
    choosing uniformly among the enabled fault kinds.  Everything is
    driven by a private LCG seeded with [fi_seed], so a given
    (seed, workload, options) triple replays exactly. *)
type fault_opts = {
  fi_seed : int;
  fi_period : int;     (** mean dispatches between injections (>= 1) *)
  fi_corrupt : bool;   (** flip a byte inside a live fragment *)
  fi_links : bool;     (** re-patch a linked exit branch to a bogus target *)
  fi_hooks : bool;     (** make the next client hook invocation raise *)
  fi_signals : bool;   (** queue a signal whose handler is outside app space *)
}

let default_faults =
  {
    fi_seed = 1;
    fi_period = 40;
    fi_corrupt = true;
    fi_links = true;
    fi_hooks = true;
    fi_signals = true;
  }

(* ------------------------------------------------------------------ *)
(* Serving-pool supervision (DESIGN.md §6.6)                          *)
(* ------------------------------------------------------------------ *)

(** Configuration of the supervised serving pool ({!Pool}): sizing,
    per-request deadlines, the bounded retry ladder, and the
    per-workload-key quarantine circuit breaker. *)
type pool_opts = {
  domains : int;           (** worker domains (>= 1) *)
  max_inflight : int;      (** submitted-but-incomplete cap (>= 1) *)
  queue_capacity : int;    (** initial per-worker deque capacity (>= 1) *)
  affinity : bool;         (** shard by key hash instead of round-robin *)
  retries : int;
      (** retry-ladder depth: failed requests are retried up to this
          many times (warm → cold → migrate-cold), 0 disables retries *)
  quarantine_threshold : int;
      (** consecutive final failures of one workload key before its
          circuit breaker opens and new submits are rejected (>= 1) *)
  deadline_cycles : int option;
      (** per-request simulated-cycle budget; the watchdog preempts the
          engine at the next fragment boundary once exceeded *)
  deadline_secs : float option;
      (** per-request host wall-clock bound, same preemption path *)
  (* --- serving front-end (DESIGN.md §6.10) --- *)
  accept_queue : int;
      (** admission bound: total requests admitted but not yet finished
          before {!Pool.try_submit} sheds with [Overloaded] (>= 1).
          [max_inflight] still bounds the blocking {!Pool.submit} path *)
  batch_window : int;
      (** dequeue-time batching: how deep into its own deque a worker
          scans for a request matching the key it served last (keeping
          the warm instance hot); 0 disables reordering *)
  prewarm : bool;
      (** build every (worker, workload) instance at pool boot, before
          any request is accepted, so steady-state traffic sees zero
          cold boots *)
  min_domains : int option;
      (** enable the queue-depth autoscaler: workers beyond this floor
          park when load drops and wake as depth grows, between
          [min_domains] and [domains].  [None] keeps every domain hot
          (no scaling) *)
  scale_up_depth : int;
      (** queued requests per live worker that must be sustained for
          [scale_hysteresis] decisions before a parked worker wakes *)
  scale_down_depth : int;
      (** queued requests per live worker below which a sustained run
          of decisions parks the youngest live worker; must be below
          [scale_up_depth] *)
  scale_hysteresis : int;
      (** consecutive same-direction decisions required before the
          autoscaler acts (>= 1); damps flapping on bursty arrivals *)
}

let default_pool =
  {
    domains = 2;
    max_inflight = 64;
    queue_capacity = 16;
    affinity = false;
    retries = 3;
    quarantine_threshold = 3;
    deadline_cycles = None;
    deadline_secs = None;
    accept_queue = 128;
    batch_window = 8;
    prewarm = false;
    min_domains = None;
    scale_up_depth = 4;
    scale_down_depth = 1;
    scale_hysteresis = 3;
  }

(** What to do when a bounded code cache fills up (DESIGN.md §6.3). *)
type flush_policy =
  | Flush_fifo
      (** incremental reclamation: evict the oldest unpinned fragments,
          one at a time, until the new fragment fits.  The capacity is
          a hard bound split between a basic-block and a trace region *)
  | Flush_full
      (** Dynamo's flush-the-world: the capacity is a soft bound over a
          bump allocator; crossing it requests a whole-cache flush at
          the next globally safe point (the pre-refactor behaviour) *)

let flush_policy_name = function Flush_fifo -> "fifo" | Flush_full -> "full"

let flush_policy_of_name = function
  | "fifo" -> Some Flush_fifo
  | "full" -> Some Flush_full
  | _ -> None

type t = {
  emulate : bool;         (** pure emulation: no cache at all (Table 1 row 1) *)
  link_direct : bool;     (** link direct branches between fragments *)
  link_indirect : bool;   (** in-cache indirect-branch lookup (vs. full context switch) *)
  enable_traces : bool;
  trace_threshold : int;  (** trace-head executions before trace creation *)
  max_trace_blocks : int; (** cap on constituent blocks per trace *)
  max_bb_insns : int;     (** basic blocks stop after this many instructions *)
  cache_capacity : int option;
      (** bound on total code-cache bytes; [None] = unlimited (the
          paper's experimental setup).  How overflow is handled is
          [flush_policy]'s choice *)
  flush_policy : flush_policy;
      (** capacity response; irrelevant when [cache_capacity] is
          [None] *)
  cache_compaction : bool;
      (** under the FIFO policy, slide live fragments down over free
          holes (relocation replay) when an allocation fails from
          fragmentation rather than capacity, and as a last resort
          before giving up — FIFO eviction's worst case (free space
          sharded around pinned fragments) becomes a compaction instead
          of a dropped trace or a full flush *)
  quantum : int;          (** scheduler quantum, cycles *)
  always_save_flags : bool;
      (** disable the Level-2 eflags liveness analysis: every inline
          target check conservatively saves and restores the
          application flags (ablation of §3.1's motivation) *)
  sideline : bool;
      (** perform trace optimization and fragment replacement on a
          simulated spare processor: their cost is tracked but not
          charged to the application thread (paper §3.4's "sideline
          optimization" direction) *)
  opt_level : int;
      (** trace-optimization level 0–3 ([-O]); 0 disables the in-core
          optimizer entirely so seed cycle counts are unchanged.  Level
          3 runs the same classic passes as 2 and additionally builds
          speculative traces: profile-guided guard insertion with
          mid-trace deoptimization (DESIGN.md §6.7) *)
  opt_enable : opt_pass list;
      (** individual passes added on top of [opt_level]'s set (requires
          [opt_level >= 1]) *)
  opt_disable : opt_pass list;
      (** individual passes removed from [opt_level]'s set *)
  reopt_threshold : int option;
      (** re-optimize a trace through decode/replace once it has been
          entered this many times ([None] = use the built-in deferral
          threshold; requires [opt_level >= 1] and a positive
          threshold) *)
  spec_threshold : int;
      (** minimum successor-profile samples at an exit site before the
          trace builder speculates on it (dominant-target inlining,
          exit-direction gating); only consulted at [opt_level >= 3] *)
  spec_max_violations : int;
      (** guard violations tolerated per guard before the trace is
          re-optimized without that assumption (the speculative exit is
          cut); only consulted at [opt_level >= 3] *)
  max_cycles : int;       (** safety stop *)
  faults : fault_opts option;
      (** deterministic fault injection; [None] = injector off *)
  audit_period : int;
      (** run the cache auditor every N context switches (and
          immediately after every injected fault); 0 = never *)
  client_fail_limit : int;
      (** client-hook failures tolerated before the client is
          quarantined (hooks skipped for the rest of the run) *)
  costs : costs;
}

let default =
  {
    emulate = false;
    link_direct = true;
    link_indirect = true;
    enable_traces = true;
    trace_threshold = 50;
    max_trace_blocks = 16;
    max_bb_insns = 128;
    cache_capacity = None;
    flush_policy = Flush_fifo;
    cache_compaction = true;
    quantum = 100_000;
    always_save_flags = false;
    sideline = false;
    opt_level = 0;
    opt_enable = [];
    opt_disable = [];
    reopt_threshold = None;
    spec_threshold = 8;
    spec_max_violations = 3;
    max_cycles = 2_000_000_000;
    faults = None;
    audit_period = 0;
    client_fail_limit = 3;
    costs = default_costs;
  }

(* ------------------------------------------------------------------ *)
(* Digest (persistent-cache compatibility key)                        *)
(* ------------------------------------------------------------------ *)

(** FNV-1a over the marshalled options bundle.  Any field that changes
    code generation changes the digest, so a persisted cache image
    built under different options is refused at load rather than
    producing subtly wrong code.  [t] is plain data (no closures), so
    marshalling is deterministic within one program version. *)
let digest (t : t) : int =
  let s = Marshal.to_string t [] in
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffff_ffff)
    s;
  !h

(* ------------------------------------------------------------------ *)
(* Validation                                                         *)
(* ------------------------------------------------------------------ *)

exception Invalid_options of string
(** Raised by {!validate_exn} (and thus {!Rio.create}) on option
    combinations that could only fail later, mid-emission. *)

(* No SynISA encoding exceeds 12 bytes (opcode byte + modrm + two
   4-byte immediates/displacements; see lib/isa/encode.ml). *)
let max_insn_bytes = 12

(** Worst-case cache bytes of a single basic-block fragment: the body
    (up to [max_bb_insns] instructions, the final CTI mangled into a
    handful of instructions, plus the sealing jmp) and two exit stubs
    with flags-restore preambles.  Trace fragments can be far larger
    but are droppable — a trace that does not fit is simply not built —
    so only the bb bound is a hard floor. *)
let max_bb_fragment_bytes (t : t) = ((t.max_bb_insns + 8) * max_insn_bytes) + 32

(** Smallest [cache_capacity] the FIFO policy accepts: each region
    (capacity/2 for basic blocks, the rest for traces) must fit the
    largest possible bb fragment even with every other fragment
    evicted. *)
let min_cache_capacity (t : t) = 2 * max_bb_fragment_bytes t

(** The pass set a configuration actually runs: the level's canonical
    passes, plus [opt_enable], minus [opt_disable], in canonical order. *)
let effective_passes (t : t) : opt_pass list =
  let base = passes_at_level t.opt_level in
  List.filter
    (fun p ->
      (List.mem p base || List.mem p t.opt_enable)
      && not (List.mem p t.opt_disable))
    all_passes

let validate_opt (t : t) : (unit, string) result =
  if t.opt_level < 0 || t.opt_level > 3 then
    Error
      (Printf.sprintf "optimization level must be between 0 and 3 (got %d)"
         t.opt_level)
  else if t.spec_threshold < 1 then
    Error
      (Printf.sprintf "speculation threshold must be >= 1 (got %d)"
         t.spec_threshold)
  else if t.spec_max_violations < 1 then
    Error
      (Printf.sprintf "speculation max-violations must be >= 1 (got %d)"
         t.spec_max_violations)
  else if t.opt_level = 0 && t.opt_enable <> [] then
    Error
      (Printf.sprintf
         "pass %s is enabled but the optimizer is off (-O0); raise the \
          level to -O1 or higher or drop the per-pass enable"
         (pass_name (List.hd t.opt_enable)))
  else
    match t.reopt_threshold with
    | Some n when n <= 0 ->
        Error
          (Printf.sprintf
             "re-optimization threshold must be positive (got %d)" n)
    | Some _ when t.opt_level = 0 ->
        Error
          "re-optimization is requested but the optimizer is off (-O0); \
           raise the level to -O1 or higher or drop the threshold"
    | _ -> Ok ()

let validate (t : t) : (unit, string) result =
  let cache =
    match t.cache_capacity with
    | None -> Ok ()
    | Some cap ->
        if cap <= 0 then
          Error (Printf.sprintf "cache capacity must be positive (got %d)" cap)
        else if t.flush_policy = Flush_fifo && cap < min_cache_capacity t then
          Error
            (Printf.sprintf
               "cache capacity %d is below the FIFO floor of %d bytes (twice \
                the worst-case basic-block fragment for max-bb-insns=%d); \
                raise the capacity or use the full flush policy"
               cap (min_cache_capacity t) t.max_bb_insns)
        else Ok ()
  in
  match cache with Error _ as e -> e | Ok () -> validate_opt t

let validate_exn (t : t) : unit =
  match validate t with Ok () -> () | Error msg -> raise (Invalid_options msg)

(** Validate pool sizing and supervision parameters; {!Pool.create} and
    the [rio_serve] CLI both reject bad values through here so the
    message is identical at every entry point. *)
let validate_pool (p : pool_opts) : (unit, string) result =
  if p.domains < 1 then
    Error (Printf.sprintf "pool domains must be >= 1 (got %d)" p.domains)
  else if p.max_inflight < 1 then
    Error
      (Printf.sprintf "pool max-inflight must be >= 1 (got %d)" p.max_inflight)
  else if p.queue_capacity < 1 then
    Error
      (Printf.sprintf
         "pool queue capacity must be >= 1 (got %d): a zero-capacity deque \
          can never hold a request"
         p.queue_capacity)
  else if p.retries < 0 then
    Error (Printf.sprintf "pool retries must be >= 0 (got %d)" p.retries)
  else if p.quarantine_threshold < 1 then
    Error
      (Printf.sprintf "quarantine threshold must be >= 1 (got %d)"
         p.quarantine_threshold)
  else if p.accept_queue < 1 then
    Error
      (Printf.sprintf
         "pool accept-queue must be >= 1 (got %d): a zero admission bound \
          sheds every request"
         p.accept_queue)
  else if p.batch_window < 0 then
    Error (Printf.sprintf "pool batch-window must be >= 0 (got %d)" p.batch_window)
  else if p.scale_hysteresis < 1 then
    Error
      (Printf.sprintf "pool scale-hysteresis must be >= 1 (got %d)"
         p.scale_hysteresis)
  else if p.scale_down_depth < 0 then
    Error
      (Printf.sprintf "pool scale-down-depth must be >= 0 (got %d)"
         p.scale_down_depth)
  else if p.scale_up_depth <= p.scale_down_depth then
    Error
      (Printf.sprintf
         "pool scale-up-depth (%d) must exceed scale-down-depth (%d): \
          overlapping thresholds make the autoscaler flap"
         p.scale_up_depth p.scale_down_depth)
  else
    match p.min_domains with
    | Some m when m < 1 || m > p.domains ->
        Error
          (Printf.sprintf
             "pool min-domains must be between 1 and domains=%d (got %d)"
             p.domains m)
    | _ -> (
        match (p.deadline_cycles, p.deadline_secs) with
        | Some c, _ when c <= 0 ->
            Error (Printf.sprintf "deadline-cycles must be positive (got %d)" c)
        | _, Some s when s <= 0.0 ->
            Error (Printf.sprintf "deadline-secs must be positive (got %g)" s)
        | _ -> Ok ())

let validate_pool_exn (p : pool_opts) : unit =
  match validate_pool p with
  | Ok () -> ()
  | Error msg -> raise (Invalid_options msg)

(** The five configurations of Table 1, in order. *)
let table1_configs =
  [
    ("emulation", { default with emulate = true });
    ( "+ basic block cache",
      { default with link_direct = false; link_indirect = false; enable_traces = false } );
    ( "+ link direct branches",
      { default with link_indirect = false; enable_traces = false } );
    ("+ link indirect branches", { default with enable_traces = false });
    ("+ traces", default);
  ]
