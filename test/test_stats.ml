(** Statistics-aggregation laws (DESIGN.md §6.10).

    Pool workers keep private {!Rio.Stats.t} records and the serving
    layer folds them together with {!Rio.Stats.merge}, so the fold must
    not care how the per-worker records are grouped or ordered:
    counters add, gauges take the max, and latency histograms combine
    bucket-wise — all associative and commutative.  The percentile
    extractor is checked against the obvious oracle: sort the raw
    samples, pick the rank-th smallest, report its bucket's upper
    bound. *)

module S = Rio.Stats

(* ------------------------------------------------------------------ *)
(* Generator: random stats records                                    *)
(* ------------------------------------------------------------------ *)

(* Samples span bucket 0 (non-positive) through wide buckets, so merge
   and percentile see uneven histograms, not just small dense ones. *)
let gen_samples =
  QCheck.Gen.(
    list_size (int_range 0 60)
      (oneof
         [ int_range (-5) 3; int_range 0 200; int_range 1_000 5_000_000 ]))

let gen_stats : S.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* samples = gen_samples in
  let* counters = array_size (return 8) (int_range 0 10_000) in
  let* gauges = array_size (return 3) (int_range 0 1_000) in
  return
    (let s = S.create () in
     List.iter (S.hist_add s.S.serve_lat) samples;
     (* a representative spread of summed counters... *)
     s.S.blocks_built <- counters.(0);
     s.S.traces_built <- counters.(1);
     s.S.runtime_cycles <- counters.(2);
     s.S.requests_shed <- counters.(3);
     s.S.requests_batched <- counters.(4);
     s.S.scale_ups <- counters.(5);
     s.S.scale_downs <- counters.(6);
     s.S.prewarm_boots <- counters.(7);
     (* ...and every max-combined gauge *)
     s.S.freelist_holes <- gauges.(0);
     s.S.freelist_free_bytes <- gauges.(1);
     s.S.freelist_largest_hole <- gauges.(2);
     s)

let stats_arb =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "{blocks=%d; shed=%d; hist_n=%d}" s.S.blocks_built
        s.S.requests_shed (S.hist_count s.S.serve_lat))
    gen_stats

(* Structural equality is the right notion: [t] is ints and an int
   array (the histogram), and [merge] allocates fresh records. *)
let eq = ( = )

(* ------------------------------------------------------------------ *)
(* Merge laws                                                         *)
(* ------------------------------------------------------------------ *)

let prop_merge_commut =
  QCheck.Test.make ~count:300 ~name:"merge a b = merge b a"
    QCheck.(pair stats_arb stats_arb)
    (fun (a, b) -> eq (S.merge a b) (S.merge b a))

let prop_merge_assoc =
  QCheck.Test.make ~count:300 ~name:"merge (merge a b) c = merge a (merge b c)"
    QCheck.(triple stats_arb stats_arb stats_arb)
    (fun (a, b, c) -> eq (S.merge (S.merge a b) c) (S.merge a (S.merge b c)))

let prop_merge_identity =
  QCheck.Test.make ~count:300 ~name:"merge (create ()) a = a" stats_arb
    (fun a -> eq (S.merge (S.create ()) a) a)

(* Histogram totals are conserved: no sample is dropped or double
   counted by a merge. *)
let prop_merge_conserves_count =
  QCheck.Test.make ~count:300 ~name:"merge conserves histogram mass"
    QCheck.(pair stats_arb stats_arb)
    (fun (a, b) ->
      S.hist_count (S.merge a b).S.serve_lat
      = S.hist_count a.S.serve_lat + S.hist_count b.S.serve_lat)

(* ------------------------------------------------------------------ *)
(* Percentile vs sorted-sample oracle                                 *)
(* ------------------------------------------------------------------ *)

(* The histogram quantile must equal the bucket upper bound of the
   rank-th smallest raw sample, rank = ceil (q/100 * n) clamped to
   [1, n] — bucketing is monotone, so ordering by value orders by
   bucket and the selected bucket is exactly the one holding that
   sample. *)
let oracle_percentile samples q =
  let arr = Array.of_list samples in
  Array.sort compare arr;
  let n = Array.length arr in
  if n = 0 then 0
  else
    let rank = min n (max 1 ((n * q + 99) / 100)) in
    S.bucket_upper (S.bucket_of arr.(rank - 1))

let prop_percentile_oracle =
  QCheck.Test.make ~count:500 ~name:"hist_percentile matches sorted oracle"
    QCheck.(pair (make gen_samples) (make Gen.(int_range 0 100)))
    (fun (samples, q) ->
      let h = S.hist_create () in
      List.iter (S.hist_add h) samples;
      let got = S.hist_percentile h q in
      let want = oracle_percentile samples q in
      if got = want then true
      else
        QCheck.Test.fail_reportf "q=%d over %d samples: got %d, oracle %d" q
          (List.length samples) got want)

(* The reported quantile never under-reports: at least ceil (q/100 * n)
   samples really are <= the returned bound. *)
let prop_percentile_conservative =
  QCheck.Test.make ~count:500 ~name:"percentile bound is conservative"
    QCheck.(pair (make gen_samples) (make Gen.(int_range 0 100)))
    (fun (samples, q) ->
      QCheck.assume (samples <> []);
      let h = S.hist_create () in
      List.iter (S.hist_add h) samples;
      let bound = S.hist_percentile h q in
      let n = List.length samples in
      let rank = min n (max 1 ((n * q + 99) / 100)) in
      let covered = List.length (List.filter (fun v -> v <= bound) samples) in
      covered >= rank)

(* ------------------------------------------------------------------ *)
(* Directed edges                                                     *)
(* ------------------------------------------------------------------ *)

let test_hist_edges () =
  let h = S.hist_create () in
  Alcotest.(check int) "empty histogram p99 is 0" 0 (S.hist_percentile h 99);
  S.hist_add h 0;
  S.hist_add h (-7);
  Alcotest.(check int) "non-positive samples land in bucket 0" 0
    (S.hist_percentile h 100);
  S.hist_add h 1;
  Alcotest.(check int) "p100 tracks the max sample's bucket" 1
    (S.hist_percentile h 100);
  S.hist_add h 1024;
  Alcotest.(check int) "power-of-two sample reports its bucket upper" 2047
    (S.hist_percentile h 100);
  Alcotest.(check int) "count tracks adds" 4 (S.hist_count h)

let () =
  Alcotest.run "stats"
    [
      ( "merge",
        [
          QCheck_alcotest.to_alcotest prop_merge_commut;
          QCheck_alcotest.to_alcotest prop_merge_assoc;
          QCheck_alcotest.to_alcotest prop_merge_identity;
          QCheck_alcotest.to_alcotest prop_merge_conserves_count;
        ] );
      ( "percentile",
        [
          QCheck_alcotest.to_alcotest prop_percentile_oracle;
          QCheck_alcotest.to_alcotest prop_percentile_conservative;
          Alcotest.test_case "histogram edge cases" `Quick test_hist_edges;
        ] );
    ]
