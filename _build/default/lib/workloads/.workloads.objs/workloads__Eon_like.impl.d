lib/workloads/eon_like.ml: Asm List Workload
