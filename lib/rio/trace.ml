(** Trace selection and generation (paper §2.4 / §3.3), split out of
    the dispatcher: trace-head promotion, block stitching, pending-CTI
    resolution, inline-check flags fixup, and trace finalization.

    Under a bounded FIFO cache a trace that no longer fits is simply
    {e dropped} — the constituent blocks keep running, the head's
    counter restarts, and no full flush is forced: basic blocks are the
    only fragments whose emission must succeed. *)

open Isa
open Types
module FI = Fragindex

(* ------------------------------------------------------------------ *)
(* Trace heads                                                        *)
(* ------------------------------------------------------------------ *)

(** Promote the tag of [e] to trace-head status: it loses its in-cache
    lookup entry and its incoming links, so every future execution
    passes through the dispatcher and bumps its counter. *)
let make_head_entry (rt : runtime) (e : fragment FI.entry) =
  if e.FI.head < 0 && not e.FI.marked then begin
    e.FI.head <- 0;
    rt.stats.Stats.trace_head_promotions <- rt.stats.Stats.trace_head_promotions + 1;
    (match e.FI.ibl with
     | Some f when f.kind = Bb -> e.FI.ibl <- None
     | _ -> ());
    match e.FI.bb with
    | Some frag -> List.iter (Emit.unlink rt) frag.incoming
    | None -> ()
  end

let make_head (rt : runtime) (ts : thread_state) tag =
  make_head_entry rt (FI.ensure ts.index tag)

(* ------------------------------------------------------------------ *)
(* Trace building                                                     *)
(* ------------------------------------------------------------------ *)

(* A head whose counter averaged at most this many elapsed cycles per
   hit on its way to threshold was spinning in a loop: its trace is
   worth optimizing the moment it is built. *)
let hot_head_cycles_per_hit = 500

let start_tracegen (rt : runtime) (ts : thread_state) head =
  ts.tracegen <-
    Some
      {
        tg_head = head;
        tg_tags = [];
        tg_il = Instrlist.create ();
        tg_insns = 0;
        tg_pending = P_start;
        tg_checks = [];
        tg_guards = [];
      };
  log_flow rt "start trace 0x%x" head

(* Splice the client-view IL of block [tag]'s bb fragment into the
   growing trace, recording the new pending CTI. *)
let stitch_block (rt : runtime) (ts : thread_state) (tg : tracegen) tag : unit =
  let frag =
    match FI.find_bb ts.index tag with
    | Some f -> f
    | None -> Blockbuild.build_bb rt ts tag
  in
  let il = Emit.decode_fragment_il rt frag in
  (* peel the trailing exit structure *)
  let target_of (i : Instr.t) =
    match Insn.src (Instr.get_insn i) 0 with
    | Operand.Target t -> t
    | _ -> rio_error "trace stitch: malformed exit"
  in
  let last = Option.get (Instrlist.last il) in
  let pending =
    match Instr.get_opcode last with
    | Opcode.Hlt ->
        Instrlist.remove il last;
        P_halt
    | Opcode.Jmp -> (
        let t = target_of last in
        Instrlist.remove il last;
        match ind_kind_of_token t with
        | Some k -> P_ind k
        | None -> (
            (* is the (new) last instruction a conditional exit? *)
            match Instrlist.last il with
            | Some prev
              when (not (Instr.is_bundle prev))
                   && (match Instr.get_opcode prev with
                      | Opcode.Jcc _ -> true
                      | _ -> false) ->
                let c =
                  match Instr.get_opcode prev with
                  | Opcode.Jcc c -> c
                  | _ -> assert false
                in
                let taken = target_of prev in
                Instrlist.remove il prev;
                P_jcc (c, taken, t)
            | _ -> P_jmp t))
    | _ -> rio_error "trace stitch: block 0x%x does not end in an exit" tag
  in
  (* Speculative constant-load folding (-O3, DESIGN.md §6.7): in the
     block's entry prefix — before anything can write memory — loads
     from absolute application addresses are folded to their currently
     observed values, guarded by a compare at the block's entry whose
     side exit deoptimizes to the unoptimized block.  The head block is
     skipped: its tag resolves to this very trace once built, so a
     guard failure there would re-enter the trace and spin. *)
  if
    rt.opts.Options.opt_level >= 3
    && tg.tg_tags <> []
    (* a despeculation verdict for this site (learned here or imported
       from the pool's shared profile store) means a constant guard
       already died once — don't rebuild it *)
    && not (Fragindex.nospec ts.index tag)
  then begin
    let mem = Vm.Machine.mem rt.machine in
    let candidates = ref [] in
    let stop = ref false in
    Instrlist.iter il (fun i ->
        if not !stop then
          if Instr.is_bundle i then stop := true
          else begin
            let insn = Instr.get_insn i in
            (match (insn.Insn.opcode, insn.Insn.srcs, insn.Insn.dsts) with
             | Opcode.Mov, [| Operand.Mem m |], [| Operand.Reg _ |]
               when m.Operand.base = None
                    && m.Operand.index = None
                    && m.Operand.disp >= 0
                    && m.Operand.disp < tls_base
                    && List.length !candidates < 2
                    && not
                         (List.exists
                            (fun (_, m') -> Operand.equal_mem m m')
                            !candidates) ->
                 candidates := (i, m) :: !candidates
             | _ -> ());
            let writes_mem =
              Array.exists
                (function Operand.Mem _ -> true | _ -> false)
                insn.Insn.dsts
            in
            match insn.Insn.opcode with
            | _ when writes_mem || Insn.is_cti insn -> stop := true
            | Opcode.Push | Opcode.Pushf | Opcode.Pop | Opcode.Popf
            | Opcode.Ccall | Opcode.In | Opcode.Out | Opcode.Hlt ->
                stop := true
            | _ -> ()
          end);
    List.iter
      (fun (i, (m : Operand.mem)) ->
        let v = Vm.Memory.read_u32 mem m.Operand.disp in
        let cmp = Create.cmp (Operand.Mem m) (Operand.Imm v) in
        let jne = Create.jcc Cond.NZ tag in
        Instrlist.append tg.tg_il cmp;
        Instrlist.append tg.tg_il jne;
        tg.tg_insns <- tg.tg_insns + 2;
        tg.tg_checks <- jne :: tg.tg_checks;
        let g =
          { g_site = tag; g_kind = G_const; g_exit_id = -1; g_violations = 0;
            g_last_violation = 0; g_burst = 0 }
        in
        tg.tg_guards <- (jne, g) :: tg.tg_guards;
        match Insn.dst (Instr.get_insn i) 0 with
        | Operand.Reg _ as r ->
            Instr.set_insn i (Insn.mk_mov r (Operand.Imm v))
        | _ -> assert false)
      (List.rev !candidates)
  end;
  tg.tg_insns <- tg.tg_insns + Instrlist.length il;
  Instrlist.append_all ~dst:tg.tg_il il;
  tg.tg_tags <- tag :: tg.tg_tags;
  tg.tg_pending <- pending

(* Resolve the pending CTI knowing execution continued at [next]. *)
let resolve_pending (rt : runtime) (ts : thread_state) (tg : tracegen) ~next :
    unit =
  match tg.tg_pending with
  | P_start -> ()
  | P_halt -> rio_error "trace continued past hlt"
  | P_jmp t ->
      if t <> next then rio_error "trace stitch: jmp to 0x%x but executed 0x%x" t next
  | P_jcc (c, taken, ft) ->
      let exit_instr =
        if next = taken then Create.jcc (Cond.invert c) ft
        else if next = ft then Create.jcc c taken
        else rio_error "trace stitch: jcc targets 0x%x/0x%x but executed 0x%x" taken ft next
      in
      tg.tg_insns <- tg.tg_insns + 1;
      Instrlist.append tg.tg_il exit_instr
  | P_ind k ->
      (* inline the observed target with a check; flags handling is
         fixed up at finalize time when the whole trace is known *)
      let instrs =
        Mangle.inline_check ~tid:ts.ts_tid ~expected:next ~kind:k ~flags_live:false
      in
      List.iter
        (fun i ->
          tg.tg_insns <- tg.tg_insns + 1;
          Instrlist.append tg.tg_il i)
        instrs;
      (match List.rev instrs with
       | jne :: _ ->
           tg.tg_checks <- jne :: tg.tg_checks;
           (* At -O3 the inline check becomes a tracked speculative
              guard when the site's successor profile says today's
              target is the dominant one: the side exit then counts
              violations and, past the budget, the dominant-target
              assumption is despeculated away.  A polymorphic site (or
              one without enough profile) keeps the plain check — it is
              expected to miss sometimes, so despeculating it would
              only trade a cheap compare for an unconditional IBL
              exit. *)
           if rt.opts.Options.opt_level >= 3 then begin
             let site =
               match tg.tg_tags with t :: _ -> t | [] -> tg.tg_head
             in
             match FI.successor_profile ts.index site with
             | Some p
               when p.FI.p_total >= rt.opts.Options.spec_threshold
                    && p.FI.p_n1 * 4 >= p.FI.p_total * 3
                    && p.FI.p_t1 = next ->
                 let g =
                   { g_site = site; g_kind = G_ind k; g_exit_id = -1;
                     g_violations = 0; g_last_violation = 0; g_burst = 0 }
                 in
                 tg.tg_guards <- (jne, g) :: tg.tg_guards
             | _ -> ()
           end
       | [] -> assert false)

(* Materialize the final pending CTI as trace exits.  At [-O3] the
   last conditional exit's polarity is biased by the site's successor
   profile: the default layout [jcc taken; jmp ft] makes the
   fall-through path pay two CTIs, so when profiling shows the
   fall-through is the dominant successor, the condition is inverted
   and the operands swapped — the hot side then leaves through the
   single jcc.  Pure layout, no guard: both successors keep direct,
   linkable exits, so a wrong profile costs one extra jmp, never a
   deopt. *)
let finalize_pending (rt : runtime) (ts : thread_state) (tg : tracegen) : unit
    =
  let app i = Instrlist.append tg.tg_il i in
  match tg.tg_pending with
  | P_start -> rio_error "empty trace"
  | P_halt -> app (Create.of_insn (Insn.mk_hlt ()))
  | P_jmp t -> app (Create.jmp t)
  | P_jcc (c, taken, ft) ->
      let bias_to_ft =
        rt.opts.Options.opt_level >= 3
        &&
        match tg.tg_tags with
        | site :: _ -> (
            match FI.successor_profile ts.index site with
            | Some p
              when p.FI.p_total >= rt.opts.Options.spec_threshold
                   && p.FI.p_n1 * 4 >= p.FI.p_total * 3 ->
                p.FI.p_t1 = ft
            | _ -> false)
        | [] -> false
      in
      if bias_to_ft then begin
        rt.stats.Stats.spec_exit_biases <-
          rt.stats.Stats.spec_exit_biases + 1;
        app (Create.jcc (Cond.invert c) ft);
        app (Create.jmp taken)
      end
      else begin
        app (Create.jcc c taken);
        app (Create.jmp ft)
      end
  | P_ind k -> app (Create.jmp (ind_token k))

(* For every inline check inserted without flags preservation, scan
   forward: if the application flags are live at the check, bracket it
   with save/restore and attach the stub restore. *)
let fixup_check_flags (rt : runtime) (ts : thread_state) (tg : tracegen) : unit =
  let il = tg.tg_il in
  let fslot = Mangle.abs_slot ~tid:ts.ts_tid slot_eflags in
  List.iter
    (fun (jne : Instr.t) ->
      (* the check is [cmp; jne]; flags are live if anything after the
         jne reads them before writing *)
      let after = jne.Instr.next in
      if
        rt.opts.Options.always_save_flags
        || not (Flags_analysis.dead_after after)
      then begin
        let cmp = Option.get jne.Instr.prev in
        Instrlist.insert_before il cmp (Create.pushf ());
        Instrlist.insert_before il cmp (Create.pop fslot);
        Instrlist.insert_after il jne (Create.popf ());
        Instrlist.insert_after il jne (Create.push fslot);
        let stub = Instrlist.create () in
        Instrlist.append stub (Create.push fslot);
        Instrlist.append stub (Create.popf ());
        jne.Instr.note <- Instr.Any_note (Stub_note (stub, false));
        tg.tg_insns <- tg.tg_insns + 4
      end)
    tg.tg_checks

(** Close out a trace: run the trace hook, mangle, and emit.  Returns
    [None] when a bounded FIFO cache could not host the trace — the
    trace is dropped, the head's counter restarts, and execution
    continues on the constituent blocks. *)
let finalize_trace (rt : runtime) (ts : thread_state) (tg : tracegen) :
    fragment option =
  finalize_pending rt ts tg;
  fixup_check_flags rt ts tg;
  let head = tg.tg_head in
  let il = tg.tg_il in
  (* the client sees the completely processed trace (paper §3.3);
     instructions are fully decoded with raw bits valid (Level 3) *)
  Instrlist.decode_to il Level.L3;
  let il =
    match rt.client.trace_hook with
    | Some hook ->
        Guard.protect_il rt ~hook:"trace" il (fun il ->
            hook { rt; ts } ~tag:head il)
    | None -> il
  in
  (* Hot traces get the pass pipeline at finalize time; cold ones are
     emitted unoptimized and only pay for passes if they later prove
     hot by re-entry (Opt.maybe_reoptimize) — the unconditional
     finalize-time run was the source of the -O2 per-bench regressions
     on build-dominated workloads, whose many one-shot traces can
     never amortize the pass cost.  Hot here means the trace will
     iterate: either it jumps back to its own head, or its head
     counter reached threshold in a tight cycle window (a loop spread
     over several traces circulates internally once they link, so
     entry-count deferral would never see it get hot). *)
  let is_loop =
    let found = ref false in
    Instrlist.iter il (fun i ->
        if not (Instr.is_bundle i) then
          Array.iter
            (function
              | Operand.Target t when t = head -> found := true
              | _ -> ())
            (Instr.get_insn i).Insn.srcs);
    !found
  in
  let hot_head =
    match FI.find ts.index head with
    | Some e when e.FI.head > 0 ->
        (Vm.Machine.cycles rt.machine - e.FI.head_cycles) / e.FI.head
        <= hot_head_cycles_per_hit
    | _ -> false
  in
  let pre_opted =
    (is_loop || hot_head) && Options.effective_passes rt.opts <> []
  in
  if pre_opted then Opt.run rt il;
  charge_opt rt
    (Instrlist.length il * rt.opts.Options.costs.Options.trace_build_per_insn);
  Mangle.mangle_il ~tid:ts.ts_tid il;
  let src_ranges =
    List.concat_map
      (fun tag ->
        match FI.find_bb ts.index tag with
        | Some f -> f.src_ranges
        | None -> [])
      tg.tg_tags
  in
  match Emit.emit_fragment rt ts ~kind:Trace ~tag:head ~src_ranges il with
  | exception Emit.No_room _ ->
      (* the trace region cannot host it even after evicting: drop the
         trace rather than force a full flush — only bb emission is a
         hard requirement.  Restarting the head counter keeps a still-hot
         head eligible for re-selection once the cache churns. *)
      rt.stats.Stats.traces_dropped <- rt.stats.Stats.traces_dropped + 1;
      (match FI.find ts.index head with
       | Some e when e.FI.head >= 0 -> e.FI.head <- 0
       | _ -> ());
      ts.tracegen <- None;
      log_flow rt "dropped trace 0x%x (no room)" head;
      None
  | frag ->
      rt.stats.Stats.traces_built <- rt.stats.Stats.traces_built + 1;
      if pre_opted then frag.reopted <- true;
      (* bind speculative guards to their emitted exits: body exits
         occupy the head of [frag.exits] in IL order, so the n-th exit
         CTI of the final IL is [frag.exits.(n)].  A guard whose jne
         did not survive to emission (a client hook rebuilt the IL) is
         silently dropped — never speculative, always safe. *)
      if tg.tg_guards <> [] then begin
        let ord = ref (-1) in
        let bound = ref [] in
        Instrlist.iter il (fun i ->
            if Emit.exit_info i <> None then begin
              incr ord;
              match List.assq_opt i tg.tg_guards with
              | Some g when !ord < Array.length frag.exits ->
                  g.g_exit_id <- frag.exits.(!ord).exit_id;
                  bound := g :: !bound;
                  let s = rt.stats in
                  (match g.g_kind with
                   | G_ind _ ->
                       s.Stats.spec_guards_ind <- s.Stats.spec_guards_ind + 1
                   | G_const ->
                       s.Stats.spec_guards_const <- s.Stats.spec_guards_const + 1)
              | _ -> ()
            end);
        frag.guards <- List.rev !bound;
        if frag.guards <> [] then
          rt.stats.Stats.spec_traces <- rt.stats.Stats.spec_traces + 1
      end;
      (* the trace shadows the head's bb: lookups prefer traces, the ibl
         entry moves to the trace, and the bb's links are already severed
         (it is a head).  Targets of the trace's direct exits become heads. *)
      FI.set_ibl ts.index head frag;
      Array.iter
        (fun e ->
          match e.e_kind with
          | Exit_direct ->
              if
                e.target_tag <> head
                && FI.find_trace ts.index e.target_tag = None
              then make_head rt ts e.target_tag
          | Exit_indirect _ -> ())
        frag.exits;
      ts.tracegen <- None;
      log_flow rt "built trace 0x%x (%d blocks)" head (List.length tg.tg_tags);
      Some frag

(* Default end-of-trace test (paper §3.5: stop at a backward branch —
   approximated as reaching another trace head — or an existing trace). *)
let default_end (rt : runtime) (ts : thread_state) (tg : tracegen) ~next =
  FI.find_trace ts.index next <> None
  || FI.is_head ts.index next
  || List.length tg.tg_tags >= rt.opts.Options.max_trace_blocks

(* One dispatcher step while generating a trace.  Returns the fragment
   to execute next (always the bb for [next], unlinked). *)
let tracegen_step (rt : runtime) (ts : thread_state) ~next : fragment option =
  let tg = match ts.tracegen with Some tg -> tg | None -> assert false in
  let should_end =
    if tg.tg_pending = P_start then false (* always take the head block *)
    else if tg.tg_pending = P_halt then true
    else
      match rt.client.end_trace with
      | None -> default_end rt ts tg ~next
      | Some hook -> (
          match
            Guard.protect_end_trace rt ~hook:"end_trace" ~default:Default_end
              (fun () -> hook { rt; ts } ~trace_tag:tg.tg_head ~next_tag:next)
          with
          | End_trace -> true
          | Continue_trace -> false
          | Default_end -> default_end rt ts tg ~next)
  in
  if should_end || tg.tg_pending = P_halt then begin
    ignore (finalize_trace rt ts tg);
    None (* re-dispatch [next] normally *)
  end
  else begin
    resolve_pending rt ts tg ~next;
    stitch_block rt ts tg next;
    if tg.tg_pending = P_halt then begin
      (* block ends the program: close the trace now *)
      ignore (finalize_trace rt ts tg)
    end;
    (* execute the constituent block, unlinked, so control returns to
       the dispatcher to observe where execution goes *)
    let frag =
      match FI.find_bb ts.index next with
      | Some f -> f
      | None -> Blockbuild.build_bb rt ts next
    in
    Array.iter (fun e -> Emit.unlink rt e) frag.exits;
    Some frag
  end

(* Discard an in-progress trace generation (used when a constituent
   block turned out to be damaged mid-stitch, or when bb emission ran
   out of room). *)
let abort_tracegen (rt : runtime) (ts : thread_state) =
  match ts.tracegen with
  | None -> ()
  | Some _ ->
      ts.tracegen <- None;
      log_flow rt "abort trace generation"
