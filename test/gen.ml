(** QCheck generators for SynISA instructions and programs, shared by
    the property-test suites. *)

open Isa

let reg : Reg.t QCheck2.Gen.t = QCheck2.Gen.oneofl Reg.all
let reg_no_esp : Reg.t QCheck2.Gen.t =
  QCheck2.Gen.oneofl (List.filter (fun r -> not (Reg.equal r Reg.Esp)) Reg.all)

let freg : Reg.F.t QCheck2.Gen.t = QCheck2.Gen.oneofl Reg.F.all

let disp : int QCheck2.Gen.t =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.return 0;
      QCheck2.Gen.int_range (-128) 127;
      QCheck2.Gen.int_range (-100000) 100000;
    ]

let mem : Operand.mem QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* base = option reg in
  let* index =
    option
      (let* r = reg_no_esp in
       let* s = oneofl [ 1; 2; 4; 8 ] in
       return (r, s))
  in
  let* d = disp in
  return { Operand.base; index; disp = d }

let mem_op = QCheck2.Gen.map (fun m -> Operand.Mem m) mem
let reg_op = QCheck2.Gen.map (fun r -> Operand.Reg r) reg

let rm : Operand.t QCheck2.Gen.t = QCheck2.Gen.oneof [ reg_op; mem_op ]

let imm_signed : int QCheck2.Gen.t =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.int_range (-128) 127;
      QCheck2.Gen.int_range (-0x8000_0000) 0x7FFF_FFFF;
    ]

let imm_op = QCheck2.Gen.map (fun i -> Operand.Imm i) imm_signed
let rmi : Operand.t QCheck2.Gen.t = QCheck2.Gen.oneof [ reg_op; mem_op; imm_op ]

(* binary ALU: avoid mem,mem *)
let alu_pair : (Operand.t * Operand.t) QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [
      (let* d = reg_op and* s = rmi in
       return (d, s));
      (let* d = mem_op and* s = oneof [ reg_op; imm_op ] in
       return (d, s));
    ]

let cond : Cond.t QCheck2.Gen.t = QCheck2.Gen.oneofl Cond.all

(* Code addresses: positive, below 16MB, roomy enough for rel8/rel32. *)
let code_addr : int QCheck2.Gen.t = QCheck2.Gen.int_range 0x1000 0xFF_FFFF

(** A generator of arbitrary well-formed (validating) instructions. *)
let insn : Insn.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let alu mk =
    let* d, s = alu_pair in
    return (mk d s)
  in
  let unary mk =
    let* x = rm in
    return (mk x)
  in
  oneof
    [
      alu Insn.mk_add; alu Insn.mk_adc; alu Insn.mk_sub; alu Insn.mk_sbb;
      alu Insn.mk_and; alu Insn.mk_or; alu Insn.mk_xor;
      (let* a, b = alu_pair in return (Insn.mk_cmp a b));
      (let* d = reg_op and* s = rm in return (Insn.mk_imul d s));
      unary Insn.mk_inc; unary Insn.mk_dec; unary Insn.mk_neg; unary Insn.mk_not;
      (let* a = rm and* b = oneof [ reg_op; imm_op ] in return (Insn.mk_test a b));
      (let* d, s = alu_pair in return (Insn.mk_mov d s));
      (let* d = reg_op and* s = rm in return (Insn.mk_movzx8 d s));
      (let* d = reg_op and* s = rm in return (Insn.mk_movzx16 d s));
      (let* d = reg_op and* m = mem_op in return (Insn.mk_lea d m));
      (let* s = rmi in return (Insn.mk_push s));
      unary Insn.mk_pop;
      (let* a = reg_op and* b = rm in return (Insn.mk_xchg a b));
      return (Insn.mk_pushf ());
      return (Insn.mk_popf ());
      (let* s = rm in return (Insn.mk_idiv s));
      (let* d = rm and* n = int_range 0 31 in return (Insn.mk_shl d (Operand.Imm n)));
      (let* d = rm and* n = int_range 0 31 in return (Insn.mk_shr d (Operand.Imm n)));
      (let* d = rm and* n = int_range 0 31 in return (Insn.mk_sar d (Operand.Imm n)));
      (let* d = rm in return (Insn.mk_shl d (Operand.Reg Reg.Ecx)));
      (let* t = code_addr in return (Insn.mk_jmp t));
      (let* s = rm in return (Insn.mk_jmp_ind s));
      (let* c = cond and* t = code_addr in return (Insn.mk_jcc c t));
      (let* t = code_addr in return (Insn.mk_call t));
      (let* s = rm in return (Insn.mk_call_ind s));
      return (Insn.mk_ret ());
      (let* f = freg and* m = mem_op in return (Insn.mk_fld f m));
      (let* f = freg and* m = mem_op in return (Insn.mk_fst m f));
      (let* d = freg and* s = freg in return (Insn.mk_fmov d s));
      (let* d = freg and* s = oneof [ map (fun f -> Operand.Freg f) freg; mem_op ] in
       return (Insn.mk_fadd d s));
      (let* d = freg and* s = oneof [ map (fun f -> Operand.Freg f) freg; mem_op ] in
       return (Insn.mk_fsub d s));
      (let* d = freg and* s = oneof [ map (fun f -> Operand.Freg f) freg; mem_op ] in
       return (Insn.mk_fmul d s));
      (let* d = freg and* s = oneof [ map (fun f -> Operand.Freg f) freg; mem_op ] in
       return (Insn.mk_fdiv d s));
      (let* f = freg in return (Insn.mk_fabs f));
      (let* f = freg in return (Insn.mk_fneg f));
      (let* f = freg in return (Insn.mk_fsqrt f));
      (let* a = freg and* b = oneof [ map (fun f -> Operand.Freg f) freg; mem_op ] in
       return (Insn.mk_fcmp a b));
      (let* f = freg and* s = rm in return (Insn.mk_cvtsi f s));
      (let* d = reg_op and* f = freg in return (Insn.mk_cvtfi d f));
      return (Insn.mk_nop ());
      return (Insn.mk_hlt ());
      (let* r = reg_op in return (Insn.mk_out r));
      (let* r = reg_op in return (Insn.mk_in r));
      (let* id = int_range 0 1000 in return (Insn.mk_ccall id));
    ]

(** Instructions together with an encoding address. *)
let insn_at : (Insn.t * int) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* i = insn and* pc = code_addr in
  return (i, pc)

let print_insn i = Disasm.insn_to_string i
let print_insn_at (i, pc) = Printf.sprintf "%s @ 0x%x" (Disasm.insn_to_string i) pc

(* ------------------------------------------------------------------ *)
(* Safe straight-line programs (differential optimizer testing)       *)
(* ------------------------------------------------------------------ *)

(* A "safe" IL is one a test harness can actually execute to [Hlt]
   from a fixed initial state: no control transfers, no environment
   interaction, and all memory operands confined to two scratch
   regions addressed off [Ebp]/[Esi] — which are therefore never
   written.  Straight-line by construction, so the optimizer's
   trace-shaped soundness frame applies verbatim. *)

let safe_slots = 16

let writable_reg : Reg.t QCheck2.Gen.t =
  QCheck2.Gen.oneofl Reg.[ Eax; Ebx; Ecx; Edx; Edi ]

let readable_reg : Reg.t QCheck2.Gen.t =
  QCheck2.Gen.oneofl Reg.[ Eax; Ebx; Ecx; Edx; Edi; Ebp; Esi ]

let safe_mem : Operand.mem QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* base = oneofl Reg.[ Ebp; Esi ] in
  let* slot = int_range 0 (safe_slots - 1) in
  return { Operand.base = Some base; index = None; disp = 8 * slot }

let safe_mem_op = QCheck2.Gen.map (fun m -> Operand.Mem m) safe_mem
let safe_wreg_op = QCheck2.Gen.map (fun r -> Operand.Reg r) writable_reg
let safe_rreg_op = QCheck2.Gen.map (fun r -> Operand.Reg r) readable_reg
let safe_rm : Operand.t QCheck2.Gen.t =
  QCheck2.Gen.oneof [ safe_wreg_op; safe_mem_op ]

let safe_src : Operand.t QCheck2.Gen.t =
  QCheck2.Gen.oneof [ safe_rreg_op; safe_mem_op; imm_op ]

(* binary ALU over safe operands: avoid mem,mem *)
let safe_alu_pair : (Operand.t * Operand.t) QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [
      (let* d = safe_wreg_op and* s = safe_src in
       return (d, s));
      (let* d = safe_mem_op and* s = oneof [ safe_rreg_op; imm_op ] in
       return (d, s));
    ]

(** One safe straight-line instruction: no CTIs, no [Hlt], no [Ccall],
    no [In], no [Idiv]; [Out] kept because it makes mid-program state
    observable.  Every memory operand is a scratch slot; [Ebp], [Esi]
    and [Esp] are never explicitly written. *)
let safe_insn : Insn.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let alu mk =
    let* d, s = safe_alu_pair in
    return (mk d s)
  in
  let unary mk =
    let* x = safe_rm in
    return (mk x)
  in
  let shift mk =
    let* d = safe_rm in
    let* s =
      oneof
        [
          map (fun n -> Operand.Imm n) (int_range 0 31);
          return (Operand.Reg Reg.Ecx);
        ]
    in
    return (mk d s)
  in
  let fsrc =
    oneof [ map (fun f -> Operand.Freg f) freg; safe_mem_op ]
  in
  oneof
    [
      alu Insn.mk_add; alu Insn.mk_adc; alu Insn.mk_sub; alu Insn.mk_sbb;
      alu Insn.mk_and; alu Insn.mk_or; alu Insn.mk_xor; alu Insn.mk_cmp;
      alu Insn.mk_mov;
      (let* a = safe_rm and* b = oneof [ safe_rreg_op; imm_op ] in
       return (Insn.mk_test a b));
      (let* d = safe_wreg_op and* s = safe_rm in return (Insn.mk_imul d s));
      (let* d = safe_wreg_op and* s = safe_rm in return (Insn.mk_movzx8 d s));
      (let* d = safe_wreg_op and* s = safe_rm in return (Insn.mk_movzx16 d s));
      (let* d = safe_wreg_op and* m = safe_mem_op in return (Insn.mk_lea d m));
      unary Insn.mk_inc; unary Insn.mk_dec; unary Insn.mk_neg; unary Insn.mk_not;
      shift Insn.mk_shl; shift Insn.mk_shr; shift Insn.mk_sar;
      (let* s = safe_src in return (Insn.mk_push s));
      unary Insn.mk_pop;
      (let* a = safe_wreg_op and* b = safe_rm in return (Insn.mk_xchg a b));
      return (Insn.mk_pushf ());
      return (Insn.mk_popf ());
      (let* f = freg and* m = safe_mem_op in return (Insn.mk_fld f m));
      (let* f = freg and* m = safe_mem_op in return (Insn.mk_fst m f));
      (let* d = freg and* s = freg in return (Insn.mk_fmov d s));
      (let* d = freg and* s = fsrc in return (Insn.mk_fadd d s));
      (let* d = freg and* s = fsrc in return (Insn.mk_fsub d s));
      (let* d = freg and* s = fsrc in return (Insn.mk_fmul d s));
      (let* d = freg and* s = fsrc in return (Insn.mk_fdiv d s));
      (let* f = freg in return (Insn.mk_fabs f));
      (let* f = freg in return (Insn.mk_fneg f));
      (let* f = freg in return (Insn.mk_fsqrt f));
      (let* a = freg and* b = fsrc in return (Insn.mk_fcmp a b));
      (let* f = freg and* s = safe_rm in return (Insn.mk_cvtsi f s));
      (let* d = safe_wreg_op and* f = freg in return (Insn.mk_cvtfi d f));
      (let* r = safe_rreg_op in return (Insn.mk_out r));
      return (Insn.mk_nop ());
    ]

(** A safe straight-line program, 1–30 instructions. *)
let safe_il : Insn.t list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range 1 30) safe_insn)

let print_il (l : Insn.t list) : string =
  String.concat "\n" (List.map print_insn l)

(* ------------------------------------------------------------------ *)
(* Speculative-guard cases (-O3 deoptimization testing)               *)
(* ------------------------------------------------------------------ *)

(** A safe program split at an arbitrary guard position: the prefix
    runs before the speculative check, the suffix is the code the
    optimizer would specialize under the assumption.  [gc_reg] is the
    register the guard tests; [gc_fire] picks whether the runtime
    value should violate the assumption (the guard fires and control
    must deoptimize) or satisfy it (the specialized tail runs). *)
type guard_case = {
  gc_prefix : Insn.t list;
  gc_suffix : Insn.t list;
  gc_reg : Reg.t;
  gc_fire : bool;
}

let guard_case : guard_case QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* insns = safe_il in
  let* cut = int_range 0 (List.length insns) in
  let* r = writable_reg in
  let* fire = bool in
  let rec split k acc rest =
    if k = 0 then (List.rev acc, rest)
    else
      match rest with
      | [] -> (List.rev acc, [])
      | i :: tl -> split (k - 1) (i :: acc) tl
  in
  let pre, suf = split cut [] insns in
  return { gc_prefix = pre; gc_suffix = suf; gc_reg = r; gc_fire = fire }

let print_guard_case (gc : guard_case) : string =
  Printf.sprintf "guard on %s after %d insns (%s)\n--- prefix:\n%s\n--- suffix:\n%s"
    (Reg.name gc.gc_reg)
    (List.length gc.gc_prefix)
    (if gc.gc_fire then "violated" else "holds")
    (print_il gc.gc_prefix) (print_il gc.gc_suffix)
