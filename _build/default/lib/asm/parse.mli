(** Textual assembler front-end: AT&T-flavoured SynISA assembly →
    {!Ast.program}.

    {v
    .data
    buf:   .word 1, 2, @table_entry   ; ints or label addresses
    vals:  .float 1.5, 2.5
           .space 64
           .ascii "raw bytes"
    .text
    .entry main
    main:
        mov   %eax, $42               ; destination first
        mov   %ecx, 8(%ebp)           ; disp(base,index,scale)
        add   %eax, (%ebx,%ecx,4)
        fld   %f0, @vals+8            ; absolute memory at label+off
        li    %esi, $@buf             ; label address as immediate
        cmp   %eax, $10
        jl    main                    ; jcc <label>, all 16 conditions
        call  helper                  ;   (call/jmp with %reg or (mem)
        jmp   %eax                    ;    operands are indirect)
        out   %eax
        hlt
    v}

    Comments start with [#] or [;]. *)

exception Parse_error of { line : int; msg : string }

val program : ?name:string -> string -> Ast.program
(** Parse assembly source text.  @raise Parse_error with a line number
    on malformed input. *)

val program_of_file : string -> Ast.program
