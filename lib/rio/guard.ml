(** Client-hook exception barrier (S34).

    The paper's transparency promise is one-sided: the runtime must
    never let a client take the application down.  Every client hook
    invocation therefore runs inside a barrier:

    - a hook that raises is recorded ({!Stats.t.hook_failures}) and its
      effect discarded — for IL-transforming hooks the fragment is
      emitted from a snapshot taken {e before} the hook ran, so a
      half-applied transformation can never reach the cache;
    - after {!Options.t.client_fail_limit} failures the client is
      quarantined: all its hooks are skipped for the rest of the run;
    - {!Types.Client_abort} is the one deliberate escape hatch (a
      client legitimately terminating the application) and is re-raised,
      as are genuinely fatal runtime conditions.

    The fault injector simulates a buggy client by setting
    {!Types.runtime.fi_hook_pending}: the next protected hook runs to
    completion and then "raises" {!Fault_injected}, exercising the
    snapshot-restore path with a fully mutated IL. *)

open Types

exception Fault_injected
(** The failure injected into a client hook by the fault injector. *)

let hooks_live (rt : runtime) = not rt.client_quarantined

(* Deep-copy an IL, including the stub ILs carried by exit-CTI notes
   (one level deep, matching the emitter's nesting limit). *)
let rec copy_il (il : Instrlist.t) : Instrlist.t =
  let out = Instrlist.create () in
  Instrlist.iter il (fun i ->
      let c = Instr.copy i in
      (match c.Instr.note with
       | Instr.Any_note (Stub_note (stub, always)) ->
           c.Instr.note <- Instr.Any_note (Stub_note (copy_il stub, always))
       | _ -> ());
      Instrlist.append out c);
  out

(* Failures the barrier must not contain. *)
let fatal = function
  | Client_abort _ | Out_of_memory | Stack_overflow -> true
  | _ -> false

let record_failure (rt : runtime) ~hook (e : exn) : unit =
  rt.stats.Stats.hook_failures <- rt.stats.Stats.hook_failures + 1;
  rt.client_failures <- rt.client_failures + 1;
  log_flow rt "client hook %s raised: %s" hook (Printexc.to_string e);
  if
    (not rt.client_quarantined)
    && rt.client_failures >= rt.opts.Options.client_fail_limit
  then begin
    rt.client_quarantined <- true;
    rt.stats.Stats.clients_quarantined <- rt.stats.Stats.clients_quarantined + 1;
    log_flow rt "client %s quarantined after %d hook failures" rt.client.name
      rt.client_failures
  end

(* Run [f]; afterwards fire the injector's pending hook fault, if any,
   so the "raise" lands after the hook has done all its mutations —
   the hardest case for the snapshot machinery. *)
let run_with_injection (rt : runtime) (f : unit -> 'a) : 'a =
  let v = f () in
  if rt.fi_hook_pending then begin
    rt.fi_hook_pending <- false;
    raise Fault_injected
  end;
  v

(** Barrier for hooks with no IL to protect (init, thread events,
    fragment-deleted, clean calls).  A raise is swallowed. *)
let protect (rt : runtime) ~hook (f : unit -> unit) : unit =
  if hooks_live rt then
    match run_with_injection rt f with
    | () -> ()
    | exception e when fatal e -> raise e
    | exception e -> record_failure rt ~hook e

(** Barrier for IL-transforming hooks (basic block and trace creation).
    Returns the IL to emit: the client's when it succeeds, the
    pre-hook snapshot when it raises — a raising client must never
    change what reaches the cache. *)
let protect_il (rt : runtime) ~hook (il : Instrlist.t)
    (f : Instrlist.t -> unit) : Instrlist.t =
  if not (hooks_live rt) then il
  else begin
    let snapshot = copy_il il in
    match run_with_injection rt (fun () -> f il) with
    | () -> il
    | exception e when fatal e -> raise e
    | exception e ->
        record_failure rt ~hook e;
        snapshot
  end

(** Barrier for the end-of-trace query; a raise yields [default]. *)
let protect_end_trace (rt : runtime) ~hook ~(default : end_trace_directive)
    (f : unit -> end_trace_directive) : end_trace_directive =
  if not (hooks_live rt) then default
  else
    match run_with_injection rt f with
    | d -> d
    | exception e when fatal e -> raise e
    | exception e ->
        record_failure rt ~hook e;
        default
