lib/clients/ctraces.ml: Array Cond Hashtbl Insn Isa List Opcode Operand Reg Rio Stdlib Vm
