(** Fully-decoded SynISA instructions.

    An [Insn.t] is the Level-3/4 view of an instruction: opcode,
    prefixes, and explicit source/destination operand arrays *including
    implicit operands* (e.g. [push] names [%esp] in both its sources and
    destinations).  The [mk_*] constructors below take only the explicit
    operands and fill in the implicit ones — they are the ground truth
    for operand conventions, shared by the assembler, the encoder, the
    decoder, the interpreter, and the DynamoRIO instruction-creation
    macros. *)

type t = {
  opcode : Opcode.t;
  prefixes : int;  (** bit 0 = lock prefix (semantic no-op, kept intact) *)
  srcs : Operand.t array;
  dsts : Operand.t array;
}

let prefix_lock = 0x1

let make ?(prefixes = 0) opcode ~srcs ~dsts = { opcode; prefixes; srcs; dsts }

let opcode i = i.opcode
let prefixes i = i.prefixes
let num_srcs i = Array.length i.srcs
let num_dsts i = Array.length i.dsts
let src i n = i.srcs.(n)
let dst i n = i.dsts.(n)
let eflags i = Opcode.eflags i.opcode
let is_cti i = Opcode.is_cti i.opcode
let cti_kind i = Opcode.cti_kind i.opcode

let equal (a : t) (b : t) =
  Opcode.equal a.opcode b.opcode
  && a.prefixes = b.prefixes
  && Array.length a.srcs = Array.length b.srcs
  && Array.length a.dsts = Array.length b.dsts
  && Array.for_all2 Operand.equal a.srcs b.srcs
  && Array.for_all2 Operand.equal a.dsts b.dsts

(* ------------------------------------------------------------------ *)
(* Constructors (explicit operands only; implicit operands filled in) *)
(* ------------------------------------------------------------------ *)

let esp = Operand.Reg Reg.Esp
let eax = Operand.Reg Reg.Eax
let edx = Operand.Reg Reg.Edx

let mk_mov dst src = make Mov ~srcs:[| src |] ~dsts:[| dst |]
let mk_movzx8 dst src = make Movzx8 ~srcs:[| src |] ~dsts:[| dst |]
let mk_movzx16 dst src = make Movzx16 ~srcs:[| src |] ~dsts:[| dst |]
let mk_lea dst m = make Lea ~srcs:[| m |] ~dsts:[| dst |]
let mk_push src = make Push ~srcs:[| src; esp |] ~dsts:[| esp |]
let mk_pop dst = make Pop ~srcs:[| esp |] ~dsts:[| dst; esp |]
let mk_xchg a b = make Xchg ~srcs:[| a; b |] ~dsts:[| a; b |]
let mk_pushf () = make Pushf ~srcs:[| esp |] ~dsts:[| esp |]
let mk_popf () = make Popf ~srcs:[| esp |] ~dsts:[| esp |]

let mk_alu op dst src = make op ~srcs:[| src; dst |] ~dsts:[| dst |]
let mk_add dst src = mk_alu Add dst src
let mk_adc dst src = mk_alu Adc dst src
let mk_sub dst src = mk_alu Sub dst src
let mk_sbb dst src = mk_alu Sbb dst src
let mk_and dst src = mk_alu And dst src
let mk_or dst src = mk_alu Or dst src
let mk_xor dst src = mk_alu Xor dst src
let mk_imul dst src = mk_alu Imul dst src

let mk_inc rm = make Inc ~srcs:[| rm |] ~dsts:[| rm |]
let mk_dec rm = make Dec ~srcs:[| rm |] ~dsts:[| rm |]
let mk_neg rm = make Neg ~srcs:[| rm |] ~dsts:[| rm |]
let mk_not rm = make Not ~srcs:[| rm |] ~dsts:[| rm |]
let mk_cmp a b = make Cmp ~srcs:[| a; b |] ~dsts:[||]
let mk_test a b = make Test ~srcs:[| a; b |] ~dsts:[||]
let mk_idiv rm = make Idiv ~srcs:[| rm; eax |] ~dsts:[| eax; edx |]

let mk_shift op rm amt = make op ~srcs:[| amt; rm |] ~dsts:[| rm |]
let mk_shl rm amt = mk_shift Shl rm amt
let mk_shr rm amt = mk_shift Shr rm amt
let mk_sar rm amt = mk_shift Sar rm amt

let mk_jmp tgt = make Jmp ~srcs:[| Operand.Target tgt |] ~dsts:[||]
let mk_jmp_ind rm = make JmpInd ~srcs:[| rm |] ~dsts:[||]
let mk_jcc c tgt = make (Jcc c) ~srcs:[| Operand.Target tgt |] ~dsts:[||]
let mk_call tgt = make Call ~srcs:[| Operand.Target tgt; esp |] ~dsts:[| esp |]
let mk_call_ind rm = make CallInd ~srcs:[| rm; esp |] ~dsts:[| esp |]
let mk_ret () = make Ret ~srcs:[| esp |] ~dsts:[| esp |]

let mk_fld f m = make Fld ~srcs:[| m |] ~dsts:[| Operand.Freg f |]
let mk_fst m f = make Fst ~srcs:[| Operand.Freg f |] ~dsts:[| m |]
let mk_fmov d s = make Fmov ~srcs:[| Operand.Freg s |] ~dsts:[| Operand.Freg d |]

let mk_fp_alu op d src =
  make op ~srcs:[| src; Operand.Freg d |] ~dsts:[| Operand.Freg d |]

let mk_fadd d s = mk_fp_alu Fadd d s
let mk_fsub d s = mk_fp_alu Fsub d s
let mk_fmul d s = mk_fp_alu Fmul d s
let mk_fdiv d s = mk_fp_alu Fdiv d s

let mk_fp_unary op f =
  make op ~srcs:[| Operand.Freg f |] ~dsts:[| Operand.Freg f |]

let mk_fabs f = mk_fp_unary Fabs f
let mk_fneg f = mk_fp_unary Fneg f
let mk_fsqrt f = mk_fp_unary Fsqrt f
let mk_fcmp a b = make Fcmp ~srcs:[| Operand.Freg a; b |] ~dsts:[||]
let mk_cvtsi f r = make Cvtsi ~srcs:[| r |] ~dsts:[| Operand.Freg f |]
let mk_cvtfi r f = make Cvtfi ~srcs:[| Operand.Freg f |] ~dsts:[| r |]

let mk_nop () = make Nop ~srcs:[||] ~dsts:[||]
let mk_hlt () = make Hlt ~srcs:[||] ~dsts:[||]
let mk_out src = make Out ~srcs:[| src |] ~dsts:[||]
let mk_in dst = make In ~srcs:[||] ~dsts:[| dst |]
let mk_ccall id = make Ccall ~srcs:[| Operand.Imm id |] ~dsts:[||]

(* ------------------------------------------------------------------ *)
(* Shape validation                                                   *)
(* ------------------------------------------------------------------ *)

type shape_error = string

let fits_i32 n = n >= -0x8000_0000 && n <= 0xFFFF_FFFF

(** [validate i] checks that [i]'s operands have a shape the encoder can
    materialise (register/memory/immediate positions per opcode, no
    memory-to-memory forms, immediates in range).  The encoder refuses
    instructions that fail validation. *)
let validate (i : t) : (unit, shape_error) result =
  let open Operand in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let ok = Ok () in
  let rm = function Reg _ | Mem _ -> true | _ -> false in
  let rmi = function Reg _ | Mem _ | Imm _ -> true | _ -> false in
  let imm_ok = function Imm n -> fits_i32 n | _ -> true in
  let all_imm_ok =
    Array.for_all imm_ok i.srcs && Array.for_all imm_ok i.dsts
  in
  if not all_imm_ok then err "%s: immediate out of 32-bit range" (Opcode.name i.opcode)
  else
    let s = i.srcs and d = i.dsts in
    let two_rm_not_both_mem a b =
      if is_mem a && is_mem b then err "%s: memory-to-memory form" (Opcode.name i.opcode)
      else ok
    in
    match i.opcode with
    | Mov -> (
        match (d, s) with
        | [| dst |], [| src |] when rm dst && rmi src ->
            if is_imm src && is_mem dst then ok
            else two_rm_not_both_mem dst src
        | _ -> err "mov: expected dst=rm src=rm/imm")
    | Movzx8 | Movzx16 -> (
        match (d, s) with
        | [| Reg _ |], [| src |] when rm src -> ok
        | _ -> err "movzx: expected dst=reg src=rm")
    | Lea -> (
        match (d, s) with
        | [| Reg _ |], [| Mem _ |] -> ok
        | _ -> err "lea: expected dst=reg src=mem")
    | Push -> (
        match (d, s) with
        | [| Reg Reg.Esp |], [| src; Reg Reg.Esp |] when rmi src -> ok
        | _ -> err "push: expected src=rm/imm (+implicit esp)")
    | Pop -> (
        match (d, s) with
        | [| dst; Reg Reg.Esp |], [| Reg Reg.Esp |] when rm dst -> ok
        | _ -> err "pop: expected dst=rm (+implicit esp)")
    | Xchg -> (
        match (d, s) with
        | [| a; b |], [| a'; b' |]
          when Operand.equal a a' && Operand.equal b b' && is_reg a && rm b ->
            ok
        | _ -> err "xchg: expected reg, rm")
    | Pushf | Popf -> (
        match (d, s) with
        | [| Reg Reg.Esp |], [| Reg Reg.Esp |] -> ok
        | _ -> err "pushf/popf: implicit esp only")
    | Add | Adc | Sub | Sbb | And | Or | Xor -> (
        match (d, s) with
        | [| dst |], [| src; dst' |] when Operand.equal dst dst' && rm dst && rmi src ->
            two_rm_not_both_mem dst src
        | _ -> err "%s: expected dst=rm src=rm/imm" (Opcode.name i.opcode))
    | Imul -> (
        match (d, s) with
        | [| (Reg _ as dst) |], [| src; dst' |]
          when Operand.equal dst dst' && (rm src || is_imm src) ->
            ok
        | _ -> err "imul: expected dst=reg src=rm/imm")
    | Inc | Dec | Neg | Not -> (
        match (d, s) with
        | [| dst |], [| dst' |] when Operand.equal dst dst' && rm dst -> ok
        | _ -> err "%s: expected rm" (Opcode.name i.opcode))
    | Cmp | Test -> (
        match (d, s) with
        | [||], [| a; b |] when rm a && rmi b -> two_rm_not_both_mem a b
        | _ -> err "%s: expected a=rm b=rm/imm" (Opcode.name i.opcode))
    | Idiv -> (
        match (d, s) with
        | [| Reg Reg.Eax; Reg Reg.Edx |], [| src; Reg Reg.Eax |] when rm src -> ok
        | _ -> err "idiv: expected src=rm (+implicit eax/edx)")
    | Shl | Shr | Sar -> (
        match (d, s) with
        | [| dst |], [| amt; dst' |] when Operand.equal dst dst' && rm dst -> (
            match amt with
            (* like IA-32: any imm8 encodes; hardware masks to 5 bits *)
            | Imm n when n >= 0 && n < 256 -> ok
            | Reg Reg.Ecx -> ok
            | _ -> err "shift: amount must be imm8 or %%ecx")
        | _ -> err "shift: expected dst=rm amt")
    | Jmp | Jcc _ -> (
        match (d, s) with
        | [||], [| Target _ |] -> ok
        | _ -> err "%s: expected target" (Opcode.name i.opcode))
    | JmpInd -> (
        match (d, s) with
        | [||], [| src |] when rm src -> ok
        | _ -> err "jmp*: expected rm")
    | Call -> (
        match (d, s) with
        | [| Reg Reg.Esp |], [| Target _; Reg Reg.Esp |] -> ok
        | _ -> err "call: expected target (+implicit esp)")
    | CallInd -> (
        match (d, s) with
        | [| Reg Reg.Esp |], [| src; Reg Reg.Esp |] when rm src -> ok
        | _ -> err "call*: expected rm (+implicit esp)")
    | Ret -> (
        match (d, s) with
        | [| Reg Reg.Esp |], [| Reg Reg.Esp |] -> ok
        | _ -> err "ret: implicit esp only")
    | Fld -> (
        match (d, s) with
        | [| Freg _ |], [| Mem _ |] -> ok
        | _ -> err "fld: expected dst=freg src=mem")
    | Fst -> (
        match (d, s) with
        | [| Mem _ |], [| Freg _ |] -> ok
        | _ -> err "fst: expected dst=mem src=freg")
    | Fmov -> (
        match (d, s) with
        | [| Freg _ |], [| Freg _ |] -> ok
        | _ -> err "fmov: expected freg, freg")
    | Fadd | Fsub | Fmul | Fdiv -> (
        match (d, s) with
        | [| (Freg _ as dst) |], [| src; dst' |]
          when Operand.equal dst dst' && (is_freg src || is_mem src) ->
            ok
        | _ -> err "%s: expected dst=freg src=freg/mem" (Opcode.name i.opcode))
    | Fabs | Fneg | Fsqrt -> (
        match (d, s) with
        | [| (Freg _ as dst) |], [| dst' |] when Operand.equal dst dst' -> ok
        | _ -> err "%s: expected freg" (Opcode.name i.opcode))
    | Fcmp -> (
        match (d, s) with
        | [||], [| Freg _; b |] when is_freg b || is_mem b -> ok
        | _ -> err "fcmp: expected freg, freg/mem")
    | Cvtsi -> (
        match (d, s) with
        | [| Freg _ |], [| src |] when rm src -> ok
        | _ -> err "cvtsi: expected dst=freg src=rm")
    | Cvtfi -> (
        match (d, s) with
        | [| Reg _ |], [| Freg _ |] -> ok
        | _ -> err "cvtfi: expected dst=reg src=freg")
    | Nop | Hlt -> (
        match (d, s) with
        | [||], [||] -> ok
        | _ -> err "%s: no operands" (Opcode.name i.opcode))
    | Out -> (
        match (d, s) with
        | [||], [| Reg _ |] | [||], [| Imm _ |] -> ok
        | _ -> err "out: expected reg or imm")
    | In -> (
        match (d, s) with
        | [| Reg _ |], [||] -> ok
        | _ -> err "in: expected reg")
    | Ccall -> (
        match (d, s) with
        | [||], [| Imm _ |] -> ok
        | _ -> err "ccall: expected imm id")

let is_valid i = Result.is_ok (validate i)
