(** Two-pass assembler with branch relaxation: iterates layout to a
    fixed point because instruction lengths (rel8 vs rel32 branches,
    disp8 vs disp32) depend on label addresses and vice versa. *)

exception Assembly_error of string

val assemble : ?text_base:int -> ?data_base:int -> Ast.program -> Image.t
(** @raise Assembly_error on encoding failures or non-convergence;
    @raise Ast.Unknown_label / Ast.Duplicate_label for label errors. *)
