(** Fully-decoded SynISA instructions: opcode, prefixes, and source/
    destination operand arrays {e including implicit operands} (e.g.
    [push] names [%esp] in both directions).  The [mk_*] constructors
    take only the explicit operands and are the single source of truth
    for operand conventions, shared by assembler, encoder, decoder,
    interpreter, and the runtime's instruction-creation macros. *)

type t = {
  opcode : Opcode.t;
  prefixes : int;
  srcs : Operand.t array;
  dsts : Operand.t array;
}

val prefix_lock : int

val make : ?prefixes:int -> Opcode.t -> srcs:Operand.t array -> dsts:Operand.t array -> t

val opcode : t -> Opcode.t
val prefixes : t -> int
val num_srcs : t -> int
val num_dsts : t -> int
val src : t -> int -> Operand.t
val dst : t -> int -> Operand.t
val eflags : t -> Eflags.mask
val is_cti : t -> bool
val cti_kind : t -> Opcode.cti_kind
val equal : t -> t -> bool

(** {2 Constructors} — explicit operands only; implicit ones filled in. *)

val mk_mov : Operand.t -> Operand.t -> t
val mk_movzx8 : Operand.t -> Operand.t -> t
val mk_movzx16 : Operand.t -> Operand.t -> t
val mk_lea : Operand.t -> Operand.t -> t
val mk_push : Operand.t -> t
val mk_pop : Operand.t -> t
val mk_xchg : Operand.t -> Operand.t -> t
val mk_pushf : unit -> t
val mk_popf : unit -> t
val mk_alu : Opcode.t -> Operand.t -> Operand.t -> t
val mk_add : Operand.t -> Operand.t -> t
val mk_adc : Operand.t -> Operand.t -> t
val mk_sub : Operand.t -> Operand.t -> t
val mk_sbb : Operand.t -> Operand.t -> t
val mk_and : Operand.t -> Operand.t -> t
val mk_or : Operand.t -> Operand.t -> t
val mk_xor : Operand.t -> Operand.t -> t
val mk_imul : Operand.t -> Operand.t -> t
val mk_inc : Operand.t -> t
val mk_dec : Operand.t -> t
val mk_neg : Operand.t -> t
val mk_not : Operand.t -> t
val mk_cmp : Operand.t -> Operand.t -> t
val mk_test : Operand.t -> Operand.t -> t
val mk_idiv : Operand.t -> t
val mk_shift : Opcode.t -> Operand.t -> Operand.t -> t
val mk_shl : Operand.t -> Operand.t -> t
val mk_shr : Operand.t -> Operand.t -> t
val mk_sar : Operand.t -> Operand.t -> t
val mk_jmp : int -> t
val mk_jmp_ind : Operand.t -> t
val mk_jcc : Cond.t -> int -> t
val mk_call : int -> t
val mk_call_ind : Operand.t -> t
val mk_ret : unit -> t
val mk_fld : Reg.F.t -> Operand.t -> t
val mk_fst : Operand.t -> Reg.F.t -> t
val mk_fmov : Reg.F.t -> Reg.F.t -> t
val mk_fp_alu : Opcode.t -> Reg.F.t -> Operand.t -> t
val mk_fadd : Reg.F.t -> Operand.t -> t
val mk_fsub : Reg.F.t -> Operand.t -> t
val mk_fmul : Reg.F.t -> Operand.t -> t
val mk_fdiv : Reg.F.t -> Operand.t -> t
val mk_fabs : Reg.F.t -> t
val mk_fneg : Reg.F.t -> t
val mk_fsqrt : Reg.F.t -> t
val mk_fcmp : Reg.F.t -> Operand.t -> t
val mk_cvtsi : Reg.F.t -> Operand.t -> t
val mk_cvtfi : Operand.t -> Reg.F.t -> t
val mk_nop : unit -> t
val mk_hlt : unit -> t
val mk_out : Operand.t -> t
val mk_in : Operand.t -> t
val mk_ccall : int -> t

(** {2 Shape validation} *)

type shape_error = string

val validate : t -> (unit, shape_error) result
(** Check that the operands have a shape the encoder can materialize
    (no memory-to-memory forms, immediates in range, …). *)

val is_valid : t -> bool
