(** SynISA instruction encoder.

    Walks a per-opcode list of templates, most-compact first, and emits
    the first form whose operand shapes and immediate/displacement
    ranges match — the costly template-matching encode the paper
    describes for IA-32.  Direct branch targets become pc-relative
    displacements, so a CTI's encoding depends on its address. *)

type error =
  | Invalid_shape of string  (** {!Isa.Insn.validate} failed *)
  | No_template of string    (** no encoding form matches *)

val error_to_string : error -> string

exception Encode_error of error

val encode : ?long:bool -> pc:int -> Insn.t -> (Bytes.t, error) result
(** Encode for placement at [pc].  [~long:true] skips the rel8 forms of
    [jmp]/[jcc], producing fixed 4-byte displacements that a code cache
    can re-patch in place. *)

val encode_exn : ?long:bool -> pc:int -> Insn.t -> Bytes.t
val length : ?long:bool -> pc:int -> Insn.t -> int
