lib/isa/cond.ml: Eflags Fmt Printf
