(** The SynISA executor.

    Runs one hardware thread until an event stops it.  Two modes:

    - {e cached} (the default): instructions are decoded once and reused
      from the machine's decoded-instruction cache — this models native
      hardware fetch/execute, and is also how code-cache contents run;
    - {e emulate}: every instruction is re-decoded and charged the
      interpreter-dispatch overhead — Table 1's "Emulation" row.

    Control transfers into the runtime's trap region stop execution and
    return to the caller (the RIO dispatcher), as do clean calls,
    faults, halts, exhausted cycle budgets, and (when interception is
    enabled) signal delivery. *)

open Isa

type stop =
  | Halted                         (** the thread executed [hlt] *)
  | Fault of string                (** memory fault, division by zero, bad opcode *)
  | Trap of int                    (** control reached the runtime trap region *)
  | Ccall of { id : int; resume : int }  (** clean call emitted by the runtime *)
  | Budget                         (** cycle budget exhausted *)
  | Signal of int                  (** pending signal (interception enabled) *)
  | Smc of int                     (** executed code was written; runtime must
                                       flush stale fragments, then resume at
                                       the carried address *)

let stop_to_string = function
  | Halted -> "halted"
  | Fault s -> "fault: " ^ s
  | Trap a -> Printf.sprintf "trap 0x%x" a
  | Ccall { id; _ } -> Printf.sprintf "ccall %d" id
  | Budget -> "budget"
  | Signal h -> Printf.sprintf "signal -> 0x%x" h
  | Smc t -> Printf.sprintf "self-modified code (resume 0x%x)" t

open Machine

let ea (t : thread) (mm : Operand.mem) : int =
  let b = match mm.base with Some r -> get_reg t r | None -> 0 in
  let i = match mm.index with Some (r, s) -> get_reg t r * s | None -> 0 in
  Arith.wrap (b + i + mm.disp)

let src_value (m : Machine.t) (t : thread) (o : Operand.t) : int =
  match o with
  | Reg r -> get_reg t r
  | Imm i -> i land Arith.mask32
  | Mem mm -> Memory.read_u32 m.mem (ea t mm)
  | Target a -> a
  | Freg _ -> invalid_arg "src_value: freg"

let dst_write (m : Machine.t) (t : thread) (o : Operand.t) v : unit =
  match o with
  | Reg r -> set_reg t r v
  | Mem mm -> Memory.write_u32 m.mem (ea t mm) v
  | _ -> invalid_arg "dst_write"

let fp_value (m : Machine.t) (t : thread) (o : Operand.t) : float =
  match o with
  | Freg f -> get_freg t f
  | Mem mm -> Memory.read_f64 m.mem (ea t mm)
  | _ -> invalid_arg "fp_value"

let push (m : Machine.t) (t : thread) v =
  let sp = Arith.wrap (get_reg t Reg.Esp - 4) in
  set_reg t Reg.Esp sp;
  Memory.write_u32 m.mem sp v

let pop (m : Machine.t) (t : thread) : int =
  let sp = get_reg t Reg.Esp in
  let v = Memory.read_u32 m.mem sp in
  set_reg t Reg.Esp (Arith.wrap (sp + 4));
  v

(* Top-level (not a per-instruction closure) so the hot loop's only
   allocation is the arithmetic result record itself. *)
let apply (m : Machine.t) (t : thread) (d : Operand.t array) (r : Arith.result)
    : unit =
  dst_write m t d.(0) r.value;
  t.eflags <- r.flags

(* ------------------------------------------------------------------ *)

let run (m : Machine.t) (t : thread) ~budget ~emulate : stop =
  let deadline = m.cycles + budget in
  let result = ref None in
  (* Deliver control to [target]; returns [true] to keep running. *)
  let goto target =
    if target >= m.trap_base then begin
      t.pc <- target;
      result := Some (Trap target);
      false
    end
    else begin
      t.pc <- target;
      (* self-modified code: invalidate stale decodes at this safe
         point; under a runtime, also hand over for fragment flushing *)
      let smc_stop =
        if Memory.has_dirty m.mem then begin
          let ranges = Memory.take_dirty m.mem in
          List.iter
            (fun (lo, hi) -> Machine.invalidate_icache m ~addr:lo ~len:(hi - lo))
            ranges;
          if m.smc_trap then begin
            m.pending_smc <- ranges @ m.pending_smc;
            result := Some (Smc target);
            true
          end
          else false
        end
        else false
      in
      if smc_stop then false
      else begin
      (* signal check at control transfers only: cheap and sufficient *)
      if m.signal_queue <> [] then ignore (Machine.poll_signals m);
      match t.pending_signals with
      | [] -> true
      | h :: rest ->
          if m.intercept_signals then
            (* the runtime intercepts delivery: signals stay pending
               until its dispatcher reaches a safe point *)
            true
          else begin
            t.pending_signals <- rest;
            (* native delivery: push interrupted pc, redirect *)
            push m t t.pc;
            t.pc <- h;
            true
          end
      end
    end
  in
  let exec_one () : bool =
    let pc = t.pc in
    let slot = if emulate then fetch_slot_nocache m pc else fetch_slot m pc in
    m.cycles <-
      m.cycles + slot.is_cost + (if emulate then m.cost.emu_overhead else 0);
    m.insns_retired <- m.insns_retired + 1;
    let insn = slot.is_insn in
    let next = pc + slot.is_len in
    let fl = t.eflags in
    let s = insn.Insn.srcs and d = insn.Insn.dsts in
    match insn.Insn.opcode with
    (* --- data movement --- *)
    | Mov ->
        dst_write m t d.(0) (src_value m t s.(0));
        t.pc <- next;
        true
    | Movzx8 ->
        let v =
          match s.(0) with
          | Reg r -> get_reg t r land 0xFF
          | Mem mm -> Memory.read_u8 m.mem (ea t mm)
          | _ -> assert false
        in
        dst_write m t d.(0) v;
        t.pc <- next;
        true
    | Movzx16 ->
        let v =
          match s.(0) with
          | Reg r -> get_reg t r land 0xFFFF
          | Mem mm -> Memory.read_u16 m.mem (ea t mm)
          | _ -> assert false
        in
        dst_write m t d.(0) v;
        t.pc <- next;
        true
    | Lea ->
        (match s.(0) with
         | Mem mm -> dst_write m t d.(0) (ea t mm)
         | _ -> assert false);
        t.pc <- next;
        true
    | Push ->
        push m t (src_value m t s.(0));
        t.pc <- next;
        true
    | Pop ->
        let v = pop m t in
        dst_write m t d.(0) v;
        t.pc <- next;
        true
    | Xchg ->
        let a = src_value m t d.(0) and b = src_value m t d.(1) in
        dst_write m t d.(0) b;
        dst_write m t d.(1) a;
        t.pc <- next;
        true
    | Pushf ->
        push m t t.eflags;
        t.pc <- next;
        true
    | Popf ->
        t.eflags <- pop m t land Eflags.all_mask;
        t.pc <- next;
        true
    (* --- integer arithmetic --- *)
    | Add -> apply m t d (Arith.add (src_value m t s.(1)) (src_value m t s.(0)) fl); t.pc <- next; true
    | Adc ->
        apply m t d (Arith.add ~carry_in:(Eflags.is_set fl CF) (src_value m t s.(1)) (src_value m t s.(0)) fl);
        t.pc <- next; true
    | Sub -> apply m t d (Arith.sub (src_value m t s.(1)) (src_value m t s.(0)) fl); t.pc <- next; true
    | Sbb ->
        apply m t d (Arith.sub ~borrow_in:(Eflags.is_set fl CF) (src_value m t s.(1)) (src_value m t s.(0)) fl);
        t.pc <- next; true
    | Inc -> apply m t d (Arith.inc (src_value m t s.(0)) fl); t.pc <- next; true
    | Dec -> apply m t d (Arith.dec (src_value m t s.(0)) fl); t.pc <- next; true
    | Neg -> apply m t d (Arith.neg (src_value m t s.(0)) fl); t.pc <- next; true
    | Cmp ->
        t.eflags <- (Arith.sub (src_value m t s.(0)) (src_value m t s.(1)) fl).flags;
        t.pc <- next; true
    | Test ->
        t.eflags <- (Arith.land_ (src_value m t s.(0)) (src_value m t s.(1)) fl).flags;
        t.pc <- next; true
    | And -> apply m t d (Arith.land_ (src_value m t s.(1)) (src_value m t s.(0)) fl); t.pc <- next; true
    | Or -> apply m t d (Arith.lor_ (src_value m t s.(1)) (src_value m t s.(0)) fl); t.pc <- next; true
    | Xor -> apply m t d (Arith.lxor_ (src_value m t s.(1)) (src_value m t s.(0)) fl); t.pc <- next; true
    | Not ->
        dst_write m t d.(0) (lnot (src_value m t s.(0)) land Arith.mask32);
        t.pc <- next; true
    | Imul -> apply m t d (Arith.imul (src_value m t s.(1)) (src_value m t s.(0)) fl); t.pc <- next; true
    | Idiv ->
        let q, r, fl' = Arith.idiv ~eax:(get_reg t Reg.Eax) (src_value m t s.(0)) fl in
        set_reg t Reg.Eax q;
        set_reg t Reg.Edx r;
        t.eflags <- fl';
        t.pc <- next; true
    | Shl -> apply m t d (Arith.shl (src_value m t s.(1)) (src_value m t s.(0)) fl); t.pc <- next; true
    | Shr -> apply m t d (Arith.shr (src_value m t s.(1)) (src_value m t s.(0)) fl); t.pc <- next; true
    | Sar -> apply m t d (Arith.sar (src_value m t s.(1)) (src_value m t s.(0)) fl); t.pc <- next; true
    (* --- control transfer --- *)
    | Jmp ->
        m.cycles <- m.cycles + Cost.direct_jump m.cost;
        goto (Operand.get_target s.(0))
    | Jcc c ->
        let taken = Cond.eval c fl in
        m.cycles <- m.cycles + Cost.cond_branch m.cost m.pred ~site:pc ~taken;
        goto (if taken then Operand.get_target s.(0) else next)
    | JmpInd ->
        let target = src_value m t s.(0) in
        m.cycles <- m.cycles + Cost.indirect_jump m.cost m.pred ~site:pc ~target;
        goto target
    | Call ->
        push m t next;
        Cost.ras_push m.pred next;
        m.cycles <- m.cycles + Cost.direct_jump m.cost;
        goto (Operand.get_target s.(0))
    | CallInd ->
        let target = src_value m t s.(0) in
        push m t next;
        Cost.ras_push m.pred next;
        m.cycles <- m.cycles + Cost.indirect_jump m.cost m.pred ~site:pc ~target;
        goto target
    | Ret ->
        let target = pop m t in
        m.cycles <- m.cycles + Cost.ret_branch m.cost m.pred ~target;
        goto target
    (* --- floating point --- *)
    | Fld ->
        (match d.(0) with
         | Freg f -> set_freg t f (fp_value m t s.(0))
         | _ -> assert false);
        t.pc <- next; true
    | Fst ->
        (match (d.(0), s.(0)) with
         | Mem mm, Freg f -> Memory.write_f64 m.mem (ea t mm) (get_freg t f)
         | _ -> assert false);
        t.pc <- next; true
    | Fmov ->
        (match (d.(0), s.(0)) with
         | Freg df, Freg sf -> set_freg t df (get_freg t sf)
         | _ -> assert false);
        t.pc <- next; true
    | Fadd | Fsub | Fmul | Fdiv ->
        (match d.(0) with
         | Freg f ->
             let a = get_freg t f and b = fp_value m t s.(0) in
             let v =
               match insn.Insn.opcode with
               | Fadd -> a +. b
               | Fsub -> a -. b
               | Fmul -> a *. b
               | _ -> a /. b
             in
             set_freg t f v
         | _ -> assert false);
        t.pc <- next; true
    | Fabs | Fneg | Fsqrt ->
        (match d.(0) with
         | Freg f ->
             let a = get_freg t f in
             let v =
               match insn.Insn.opcode with
               | Fabs -> Float.abs a
               | Fneg -> -.a
               | _ -> Float.sqrt a
             in
             set_freg t f v
         | _ -> assert false);
        t.pc <- next; true
    | Fcmp ->
        (match s.(0) with
         | Freg f ->
             t.eflags <- Arith.fcmp (get_freg t f) (fp_value m t s.(1)) fl
         | _ -> assert false);
        t.pc <- next; true
    | Cvtsi ->
        (match d.(0) with
         | Freg f -> set_freg t f (float_of_int (Arith.to_signed (src_value m t s.(0))))
         | _ -> assert false);
        t.pc <- next; true
    | Cvtfi ->
        (match s.(0) with
         | Freg f ->
             let v = get_freg t f in
             let iv =
               if Float.is_nan v || v >= 2147483648.0 || v < -2147483648.0 then
                 0x8000_0000 (* IA-32 integer-indefinite *)
               else Arith.of_signed (int_of_float v)
             in
             dst_write m t d.(0) iv
         | _ -> assert false);
        t.pc <- next; true
    (* --- system --- *)
    | Nop -> t.pc <- next; true
    | Hlt ->
        t.alive <- false;
        t.pc <- next;
        result := Some Halted;
        false
    | Out ->
        Machine.push_output m (src_value m t s.(0));
        t.pc <- next; true
    | In ->
        dst_write m t d.(0) (Machine.pop_input m);
        t.pc <- next; true
    | Ccall ->
        let id = Operand.get_imm s.(0) in
        t.pc <- next;
        result := Some (Ccall { id; resume = next });
        false
  in
  let rec loop () =
    if m.cycles >= deadline then Budget
    else
      match exec_one () with
      | true -> loop ()
      | false -> Option.get !result
      | exception Memory.Fault { addr; size; write } ->
          Fault
            (Printf.sprintf "memory %s of %d bytes at 0x%x"
               (if write then "write" else "read")
               size addr)
      | exception Arith.Division_by_zero -> Fault "division by zero"
      | exception Machine.Bad_code { pc; err } ->
          Fault (Printf.sprintf "bad code at 0x%x: %s" pc (Decode.error_to_string err))
  in
  loop ()
