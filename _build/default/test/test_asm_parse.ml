(** Tests for the textual assembler front-end: parse → assemble → run,
    equivalence with DSL-built twins, and error reporting. *)

let checkb = Alcotest.(check bool)
let check_ilist = Alcotest.(check (list int))

let run_source ?(input = []) src =
  let prog = Asm.Parse.program src in
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create () in
  Vm.Machine.set_input m input;
  ignore (Asm.Image.load m image);
  let o = Vm.Sched.run ~emulate:false m in
  (Vm.Machine.output m, o.Vm.Sched.stop = Vm.Interp.Halted)

let run_source_rio src =
  let prog = Asm.Parse.program src in
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  let rt = Rio.create m in
  let o = Rio.run rt in
  (Vm.Machine.output m, o.Rio.reason = Rio.All_exited)

let test_basic_program () =
  let out, ok =
    run_source
      {|
      # sum 1..10
      main:
          mov  %eax, $0
          mov  %ecx, $1
      loop:
          add  %eax, %ecx
          inc  %ecx
          cmp  %ecx, $10
          jle  loop
          out  %eax
          hlt
      |}
  in
  checkb "halted" true ok;
  check_ilist "sum" [ 55 ] out

let test_memory_and_data () =
  let out, ok =
    run_source
      {|
      .data
      buf:
          .word 10, 20, 30
      scale:
          .word 7
      .text
      main:
          li   %ebx, $@buf
          mov  %eax, (%ebx)          ; 10
          add  %eax, 4(%ebx)         ; +20
          mov  %ecx, $2
          add  %eax, (%ebx,%ecx,4)   ; +30
          mov  %edx, @scale          ; absolute label load
          imul %eax, %edx
          out  %eax
          hlt
      |}
  in
  checkb "halted" true ok;
  check_ilist "sum*scale" [ 420 ] out

let test_calls_and_tables () =
  let out, ok =
    run_source
      {|
      .entry start
      .data
      table:
          .word @f1, @f2
      .text
      start:
          mov   %esi, $0
          li    %ebx, $@table
          mov   %eax, (%ebx,%esi,4)
          call  %eax                 ; indirect call through register
          out   %eax
          call  f2
          out   %eax
          hlt
      f1:
          mov %eax, $100
          ret
      f2:
          mov %eax, $200
          ret
      |}
  in
  checkb "halted" true ok;
  check_ilist "calls" [ 100; 200 ] out

let test_fp_and_ascii () =
  let out, ok =
    run_source
      {|
      .data
      vals:
          .float 1.5, 2.5
      msg:
          .ascii "ok"
      .text
      main:
          fld   %f0, @vals
          fadd  %f0, @vals+8
          cvtfi %eax, %f0
          out   %eax                 ; 4
          li    %ebx, $@msg
          movzx8 %ecx, (%ebx)
          out   %ecx                 ; 'o' = 111
          hlt
      |}
  in
  checkb "halted" true ok;
  check_ilist "fp+ascii" [ 4; 111 ] out

let test_equivalent_to_dsl () =
  (* the same program via the DSL and via text must behave identically,
     natively and under the code cache *)
  let src =
    {|
    main:
        mov  %eax, $0
        mov  %ecx, $0
    loop:
        mov  %edx, %ecx
        and  %edx, $7
        add  %eax, %edx
        inc  %ecx
        cmp  %ecx, $5000
        jl   loop
        out  %eax
        hlt
    |}
  in
  let open Asm.Dsl in
  let dsl_prog =
    program ~name:"twin" ~entry:"main"
      ~text:
        [
          label "main"; mov eax (i 0); mov ecx (i 0);
          label "loop";
          mov edx ecx; and_ edx (i 7); add eax edx;
          inc ecx; cmp ecx (i 5000); j l "loop";
          out eax; hlt;
        ]
      ()
  in
  let image = Asm.Assemble.assemble dsl_prog in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  ignore (Vm.Sched.run ~emulate:false m);
  let dsl_out = Vm.Machine.output m in
  let text_out, _ = run_source src in
  check_ilist "text = dsl (native)" dsl_out text_out;
  let rio_out, ok = run_source_rio src in
  checkb "rio ok" true ok;
  check_ilist "text = dsl (cached)" dsl_out rio_out

let expect_error src frag =
  match Asm.Parse.program src with
  | exception Asm.Parse.Parse_error { msg; _ } ->
      checkb
        (Printf.sprintf "error mentions %S (got %S)" frag msg)
        true
        (let fl = String.length frag and ml = String.length msg in
         let rec go i = i + fl <= ml && (String.sub msg i fl = frag || go (i + 1)) in
         go 0)
  | _ -> Alcotest.failf "expected a parse error (%s)" frag

let test_errors () =
  expect_error "main:\n  bogus %eax\n" "unknown mnemonic";
  expect_error "main:\n  mov %eux, $1\n" "unknown register";
  expect_error "main:\n  mov %eax\n" "expects 2 operand";
  expect_error "main:\n  .word x\n" "bad integer";
  expect_error "main:\n  .bogus 3\n" "unknown directive";
  expect_error "main:\n  jz\n" "expects a label"

(* print/parse round trip: whatever the disassembler prints, the parser
   reads back to the same instruction (modulo the runtime-reserved
   ccall, which the parser rejects on purpose) *)
let prop_disasm_parse_roundtrip =
  QCheck2.Test.make ~name:"parse (disasm i) = i" ~count:2000
    ~print:Gen.print_insn Gen.insn (fun insn ->
      if insn.Isa.Insn.opcode = Isa.Opcode.Ccall then true
      else begin
        let text = Isa.Disasm.insn_to_string insn in
        let src = Printf.sprintf "main:\n  %s\n  hlt\n" text in
        match Asm.Parse.program src with
        | exception Asm.Parse.Parse_error { msg; _ } ->
            QCheck2.Test.fail_reportf "parse of %S failed: %s" text msg
        | prog -> (
            match prog.Asm.Ast.text with
            | [ _label; Asm.Ast.Ins f; _hlt ] ->
                (* printed operands are numeric; no labels involved.
                   Compare by encoding: immediates may round-trip as
                   the unsigned spelling of the same 32-bit value. *)
                let parsed = f (fun _ -> 0) in
                let enc i = Isa.Encode.encode_exn ~pc:0x100000 i in
                if Bytes.equal (enc parsed) (enc insn) then true
                else
                  QCheck2.Test.fail_reportf "parsed %S as %s" text
                    (Isa.Disasm.insn_to_string parsed)
            | _ -> QCheck2.Test.fail_reportf "unexpected item shape for %S" text)
      end)

let () =
  Alcotest.run "asm-parse"
    [
      ( "parse",
        [
          Alcotest.test_case "basic program" `Quick test_basic_program;
          Alcotest.test_case "memory and data" `Quick test_memory_and_data;
          Alcotest.test_case "calls and tables" `Quick test_calls_and_tables;
          Alcotest.test_case "fp and ascii" `Quick test_fp_and_ascii;
          Alcotest.test_case "text = dsl equivalence" `Quick test_equivalent_to_dsl;
          Alcotest.test_case "errors" `Quick test_errors;
          QCheck_alcotest.to_alcotest prop_disasm_parse_roundtrip;
        ] );
    ]
