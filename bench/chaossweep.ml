(** Chaos sweep: the fault-tolerance gate for the serving pool
    (DESIGN.md §6.6), written to BENCH_chaos.json.

    Serves the full 20-workload suite through pools armed with
    pool-scope chaos injection — worker crashes mid-request, stalled
    workers, poisoned warm instances, hook storms — across a grid of
    chaos seeds x retry policies, and requires that the supervision
    machinery absorbs all of it:

    - {b zero hangs}: the whole sweep runs under a [Unix.alarm]
      backstop; a stuck drain kills the process with a distinct status;
    - {b zero lost requests}: every accepted request produces exactly
      one result, including requests whose worker domain was killed
      mid-service and requeued by the supervisor;
    - {b output-identical}: every completed request's output matches
      its native reference — the retry ladder must convert every
      injected failure into an eventually-clean run;
    - {b supervision exercised}: across the grid, worker domains
      actually died and were respawned, deadlines actually fired, and
      the retry ladder actually climbed (all counters in the JSON);
    - {b quarantine lifecycle}: a chaos-free scenario drives one
      workload key through breaker-open (consecutive final failures),
      probe admission, rejection while the probe is pending, and
      breaker-close on probe success.

    A stalled worker is caught by the per-request wall-clock deadline;
    a poisoned warm instance either diverges, faults, or loops (the
    deadline catches the loop), and the warm-retry rung heals it
    because the poison write marks its page touched, so
    {!Engine.reset_for_reuse} zeroes and restores it. *)

open Workloads

let pr fmt = Printf.printf fmt

let seeds ~quick = if quick then [ 1 ] else [ 1; 2 ]
let policies ~quick = if quick then [ 3 ] else [ 1; 3 ]
let requests_per_workload ~quick = if quick then 1 else 2

(* the whole-process hang backstop: chaossweep's first gate is that it
   terminates, so a deadlocked drain must not look like a quiet CI
   timeout *)
let arm_alarm ~quick =
  Sys.set_signal Sys.sigalrm
    (Sys.Signal_handle
       (fun _ ->
         prerr_endline "!! chaossweep: HANG — alarm fired before completion";
         exit 3));
  ignore (Unix.alarm (if quick then 300 else 900))

type combo_row = {
  cr_seed : int;
  cr_retries : int;
  cr_requests : int;
  cr_completed : int;
  cr_lost : int;
  cr_bad : int;
  cr_crashes : int;
  cr_deadline_hits : int;
  cr_retries_done : int;
  cr_requeues : int;
  cr_respawns : int;
  cr_warm_hits : int;
  cr_cold_boots : int;
  cr_max_attempts : int;
  cr_host_s : float;
}

let run ~quick ~out_path () =
  arm_alarm ~quick;
  let wls = List.map Workload.serving_variant Suite.all in
  pr "\n=== Chaos sweep (%s mode; %d workloads) ===\n"
    (if quick then "quick" else "full")
    (List.length wls);
  let make_requests = Sweep.request_maker wls in
  (* a client with a real basic-block hook, so hook storms have a hook
     to storm: the guard barrier absorbs the injected raise and
     quarantines the client without touching application output *)
  let client () =
    { Rio.Types.null_client with
      name = "chaos-observer";
      basic_block = Some (fun _ ~tag:_ _ -> ());
    }
  in
  let opts = { Rio.Options.default with max_cycles = max_int / 2 } in
  let boots = Sweep.pool_boots ~client ~opts wls in
  let n = requests_per_workload ~quick * List.length wls in
  let divergences = ref 0 in
  let lost_total = ref 0 in
  let reloads_done = ref 0 in
  let first_combo = ref true in

  (* ---------------- chaos grid ---------------- *)
  pr "%6s %8s %9s %6s %5s %8s %9s %8s %9s %9s\n" "seed" "retries" "requests"
    "lost" "bad" "crashes" "deadlines" "retried" "respawns" "host-s";
  let rows =
    List.concat_map
      (fun seed ->
        List.map
          (fun retries ->
            let cfg =
              {
                Rio.Options.default_pool with
                domains = 2;
                retries;
                quarantine_threshold = 3;
                (* wall-clock deadline: catches stalled workers and
                   poison-induced infinite loops; generous enough that
                   no legitimate request trips it *)
                deadline_secs = Some 2.0;
              }
            in
            let chaos =
              { Rio.Faultinject.default_chaos with ch_seed = seed; ch_period = 3 }
            in
            let pool = Rio.Pool.create ~cfg ~chaos ~boots () in
            let t0 = Sweep.time_now () in
            let reqs = make_requests ~seed_base:0 n in
            List.iter (Sweep.submit_exn pool) reqs;
            let results = Rio.Pool.drain pool in
            (* exercise drain_and_reload under fire once: quiesce, drop
               every (possibly poisoned) warm instance, resume, and the
               reloaded fleet must still serve clean *)
            let reload_extra =
              if !first_combo then begin
                first_combo := false;
                Rio.Pool.drain_and_reload ~rebuild:true pool;
                incr reloads_done;
                let extra = make_requests ~seed_base:0 (min n 10) in
                List.iter (Sweep.submit_exn pool) extra;
                Rio.Pool.drain pool
              end
              else []
            in
            let host_s = Sweep.time_now () -. t0 in
            let all = results @ reload_extra in
            let submitted = List.length reqs + List.length reload_extra in
            (* count via completion: submit_exn means all were accepted *)
            let lost = submitted - List.length all in
            let bad = List.filter (fun r -> not r.Rio.Pool.res_ok) all in
            Sweep.check_pass ~divergences
              (Printf.sprintf "chaos seed=%d retries=%d" seed retries)
              all;
            lost_total := !lost_total + lost;
            if lost > 0 then
              pr "!! chaos seed=%d retries=%d: %d accepted request(s) lost\n%!"
                seed retries lost;
            let snap = Rio.Pool.stats pool in
            Rio.Pool.shutdown pool;
            let max_attempts =
              List.fold_left (fun a r -> max a r.Rio.Pool.res_attempts) 0 all
            in
            let row =
              {
                cr_seed = seed;
                cr_retries = retries;
                cr_requests = submitted;
                cr_completed = List.length all;
                cr_lost = lost;
                cr_bad = List.length bad;
                cr_crashes = snap.Rio.Pool.snap_crashes;
                cr_deadline_hits = snap.Rio.Pool.snap_deadline_hits;
                cr_retries_done = snap.Rio.Pool.snap_retries;
                cr_requeues = snap.Rio.Pool.snap_requeues;
                cr_respawns = snap.Rio.Pool.snap_respawns;
                cr_warm_hits = snap.Rio.Pool.snap_warm_hits;
                cr_cold_boots = snap.Rio.Pool.snap_cold_boots;
                cr_max_attempts = max_attempts;
                cr_host_s = host_s;
              }
            in
            pr "%6d %8d %9d %6d %5d %8d %9d %8d %9d %9.3f\n%!" seed retries
              submitted lost (List.length bad) row.cr_crashes
              row.cr_deadline_hits row.cr_retries_done row.cr_respawns host_s;
            row)
          (policies ~quick))
      (seeds ~quick)
  in

  (* ---------------- quarantine lifecycle (chaos-free) ---------------- *)
  (* drive one key's circuit breaker through its whole life: open after
     consecutive final failures (forced via a wrong expectation), reject
     while a probe is pending, close on probe success *)
  let qkey = (List.hd wls).Workload.name in
  let filler_key =
    (List.nth wls (1 mod List.length wls)).Workload.name
  in
  let qcfg =
    {
      Rio.Options.default_pool with
      domains = 1;
      retries = 0;
      quarantine_threshold = 2;
    }
  in
  let qpool = Rio.Pool.create ~cfg:qcfg ~boots () in
  let good_reqs = make_requests ~seed_base:0 (List.length wls) in
  let good_for key =
    List.find (fun r -> r.Rio.Pool.req_key = key) good_reqs
  in
  let bad_req i =
    { (good_for qkey) with Rio.Pool.req_seed = 900 + i; req_expect = Some [ max_int ] }
  in
  (* two wrong-expectation requests: final failures, breaker opens *)
  List.iter (Sweep.submit_exn qpool) [ bad_req 0; bad_req 1 ];
  ignore (Rio.Pool.drain qpool);
  (* queue filler work so the probe sits behind it, then observe the
     probe admission and the rejection window *)
  List.iter
    (fun _ -> Sweep.submit_exn qpool (good_for filler_key))
    [ 1; 2; 3; 4; 5 ];
  let probe_admitted =
    match Rio.Pool.submit qpool (good_for qkey) with
    | Ok () -> true
    | Error _ -> false
  in
  let rejected_while_probing =
    match Rio.Pool.submit qpool (good_for qkey) with
    | Error (Rio.Pool.Quarantined _) -> true
    | Ok () | Error _ -> false
  in
  let qresults = Rio.Pool.drain qpool in
  let qsnap = Rio.Pool.stats qpool in
  (* breaker must be closed again: a fresh submit is accepted and serves *)
  let after_close_ok =
    match Rio.Pool.submit qpool (good_for qkey) with
    | Ok () -> (
        match Rio.Pool.drain qpool with
        | [ r ] -> r.Rio.Pool.res_ok
        | _ -> false)
    | Error _ -> false
  in
  Rio.Pool.shutdown qpool;
  let quarantine_ok =
    probe_admitted && after_close_ok
    && qsnap.Rio.Pool.snap_quarantine_opens >= 1
    && qsnap.Rio.Pool.snap_quarantine_closes >= 1
    && qsnap.Rio.Pool.snap_probes >= 1
    && List.for_all
         (fun r -> r.Rio.Pool.res_key <> qkey || r.Rio.Pool.res_ok)
         qresults
  in
  pr
    "quarantine: opens %d  probes %d  rejected-while-probing %b  closes %d  \
     post-close serve %s\n%!"
    qsnap.Rio.Pool.snap_quarantine_opens qsnap.Rio.Pool.snap_probes
    rejected_while_probing qsnap.Rio.Pool.snap_quarantine_closes
    (if after_close_ok then "ok" else "FAILED");

  (* ---------------- totals, JSON, gates ---------------- *)
  let total f = List.fold_left (fun a r -> a + f r) 0 rows in
  let crashes = total (fun r -> r.cr_crashes) in
  let respawns = total (fun r -> r.cr_respawns) in
  let deadline_hits = total (fun r -> r.cr_deadline_hits) in
  let retried = total (fun r -> r.cr_retries_done) in
  pr
    "totals: %d crashes  %d respawns  %d deadline hits  %d retries  %d lost  \
     %d divergences\n%!"
    crashes respawns deadline_hits retried !lost_total !divergences;

  let open Sweep in
  write_json ~path:out_path
    (Obj
       [
         ("schema", Str "rio-chaossweep-v1");
         ("quick", Bool quick);
         ("workloads", Int (List.length wls));
         ("combos", Int (List.length rows));
         ("lost", Int !lost_total);
         ("divergences", Int !divergences);
         ("crashes", Int crashes);
         ("respawns", Int respawns);
         ("deadline_hits", Int deadline_hits);
         ("retries", Int retried);
         ("requeues", Int (total (fun r -> r.cr_requeues)));
         ("reloads", Int !reloads_done);
         ( "quarantine",
           Obj
             [
               ("opens", Int qsnap.Rio.Pool.snap_quarantine_opens);
               ("closes", Int qsnap.Rio.Pool.snap_quarantine_closes);
               ("probes", Int qsnap.Rio.Pool.snap_probes);
               ( "rejected",
                 Int qsnap.Rio.Pool.snap_rejected_quarantined );
               ("rejected_while_probing", Bool rejected_while_probing);
               ("lifecycle_ok", Bool quarantine_ok);
             ] );
         ( "grid",
           Arr
             (List.map
                (fun r ->
                  Obj
                    [
                      ("chaos_seed", Int r.cr_seed);
                      ("retries", Int r.cr_retries);
                      ("requests", Int r.cr_requests);
                      ("completed", Int r.cr_completed);
                      ("lost", Int r.cr_lost);
                      ("bad", Int r.cr_bad);
                      ("crashes", Int r.cr_crashes);
                      ("deadline_hits", Int r.cr_deadline_hits);
                      ("retries_done", Int r.cr_retries_done);
                      ("requeues", Int r.cr_requeues);
                      ("respawns", Int r.cr_respawns);
                      ("warm_hits", Int r.cr_warm_hits);
                      ("cold_boots", Int r.cr_cold_boots);
                      ("max_attempts", Int r.cr_max_attempts);
                      ("host_seconds", Float r.cr_host_s);
                    ])
                rows) );
       ]);

  (* hard gates *)
  if !lost_total > 0 then begin
    pr "!! %d accepted request(s) lost\n%!" !lost_total;
    exit 1
  end;
  if !divergences > 0 then begin
    pr "!! %d request(s) not output-identical to native\n%!" !divergences;
    exit 1
  end;
  if not quarantine_ok then begin
    pr "!! quarantine lifecycle incomplete\n%!";
    exit 1
  end;
  (* the chaos machinery must actually have been exercised: with
     ch_period 3 over the whole grid, zero worker deaths means the
     injector (or the supervisor accounting) is broken.  A chaos kill
     deliberately bypasses the exception barrier, so it surfaces as a
     respawn, not a [Crashed] result *)
  if respawns = 0 then begin
    pr "!! no worker death/respawn exercised (respawns %d)\n%!" respawns;
    exit 1
  end;
  ignore (Unix.alarm 0)
