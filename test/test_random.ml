(** Differential testing on random programs: the dynamic-optimizer
    analogue of compiler fuzzing.

    A generator produces arbitrary {e terminating, fault-free} programs
    (random straight-line arithmetic/memory/FP code in a forward-branch
    block structure, wrapped in a counted loop, sprinkled with calls
    and table-driven indirect jumps).  Every program must produce
    bit-identical output natively and under the code cache in several
    configurations — including with all four optimizations attached and
    a low trace threshold so traces, inline checks, and rewrites all
    trigger within the short run. *)

open Isa
open Asm.Dsl

(* Register discipline:
     eax/ecx/edx/ebp — free for random code
     ebx — scratch-memory base (never clobbered)
     esi — structural scratch (indirect-jump computation)
     edi — loop counter
     esp — stack pointer *)
let pool = [ eax; ecx; edx; ebp ]

type rstate = { mutable seed : int }

let rnd st n =
  st.seed <- (1103515245 * st.seed) + 12345;
  (st.seed lsr 16) mod n

let pick st l = List.nth l (rnd st (List.length l))

let rand_reg st = pick st pool
let rand_freg st = pick st [ f0; f1; f2; f3; f4; f5; f6; f7 ]

(* scratch memory: 64 int words then 32 float slots, all based at ebx *)
let rand_int_slot st = mb ebx ~disp:(4 * rnd st 64)
let rand_fp_slot st = mb ebx ~disp:(256 + (8 * rnd st 32))

let rand_imm st = rnd st 65536 - 32768

(* one random non-CTI instruction *)
let rand_instr st =
  match rnd st 22 with
  | 0 -> mov (rand_reg st) (i (rand_imm st))
  | 1 -> mov (rand_reg st) (rand_reg st)
  | 2 -> mov (rand_reg st) (rand_int_slot st)
  | 3 -> mov (rand_int_slot st) (rand_reg st)
  | 4 -> add (rand_reg st) (rand_reg st)
  | 5 -> sub (rand_reg st) (i (rand_imm st))
  | 6 -> and_ (rand_reg st) (i (rand_imm st))
  | 7 -> or_ (rand_reg st) (rand_reg st)
  | 8 -> xor (rand_reg st) (rand_int_slot st)
  | 9 -> inc (rand_reg st)
  | 10 -> dec (rand_reg st)
  | 11 -> neg (rand_reg st)
  | 12 -> not_ (rand_reg st)
  | 13 -> shl (rand_reg st) (i (rnd st 31))
  | 14 -> sar (rand_reg st) (i (rnd st 31))
  | 15 -> imul (rand_reg st) (i (rand_imm st))
  | 16 -> movzx8 (rand_reg st) (rand_int_slot st)
  | 17 -> lea (rand_reg st) (m ~base:ebx ~index:(rand_reg st, pick st [ 1; 2; 4 ]) ())
  | 18 -> fld (rand_freg st) (rand_fp_slot st)
  | 19 -> fst_ (rand_fp_slot st) (rand_freg st)
  | 20 -> fadd (rand_freg st) (fr (rand_freg st))
  | 21 -> fmul (rand_freg st) (rand_fp_slot st)
  | _ -> nop

(* a leaf function the blocks may call *)
let leaf k st =
  [ label (Printf.sprintf "leaf%d" k) ]
  @ List.init (1 + rnd st 4) (fun _ -> rand_instr st)
  @ [ ret ]

let n_leaves = 3

(* Generate blocks and collect indirect-jump tables separately. *)
let gen_program seed : Asm.Ast.program =
  let st = { seed = (seed * 2654435761) lxor 0x9E3779B9 } in
  let st = { seed = st.seed land 0x3FFFFFFF } in
  let n_blocks = 4 + rnd st 6 in
  let tables = ref [] in
  let blocks =
    List.init n_blocks (fun idx ->
        let this = Printf.sprintf "blk%d" idx in
        let next = Printf.sprintf "blk%d" (idx + 1) in
        let straight = List.init (3 + rnd st 6) (fun _ -> rand_instr st) in
        let forward_target () =
          Printf.sprintf "blk%d" (idx + 1 + rnd st (n_blocks - idx))
        in
        let construct =
          match rnd st 6 with
          | 0 ->
              [
                cmp (rand_reg st) (i (rand_imm st));
                j (pick st [ z; nz; l; nl; b; nbe; s; le ]) (forward_target ());
                jmp next;
              ]
          | 1 -> [ call (Printf.sprintf "leaf%d" (rnd st n_leaves)); jmp next ]
          | 2 -> [ push (rand_reg st); rand_instr st; pop (rand_reg st); jmp next ]
          | 3 ->
              let t1 = forward_target () and t2 = forward_target () in
              let tbl = Printf.sprintf "tbl%d" idx in
              tables := (tbl, t1, t2) :: !tables;
              [
                mov esi (rand_reg st);
                and_ esi (i 1);
                ins (fun env ->
                    Insn.mk_mov (Operand.Reg Reg.Esi)
                      (Operand.mem ~index:(Reg.Esi, 4) ~disp:(env tbl) ()));
                jmp_ind esi;
              ]
          | _ -> [ jmp next ]
        in
        [ label this ] @ straight @ construct)
  in
  let loop_count = 8 + rnd st 20 in
  let prologue =
    [
      label "main";
      li ebx "scratch";
      mov eax (i (rand_imm st));
      mov ecx (i (rand_imm st));
      mov edx (i (rand_imm st));
      mov ebp (i (rand_imm st));
      mov edi (i loop_count);
      label "blk_start";
    ]
  in
  let epilogue =
    [
      label (Printf.sprintf "blk%d" n_blocks);
      dec edi;
      j nz "blk_start";
      (* output: the register pool, some scratch words, an fp slot *)
      out eax; out ecx; out edx; out ebp;
      mov eax (mb ebx); out eax;
      mov eax (mb ebx ~disp:64); out eax;
      mov eax (mb ebx ~disp:128); out eax;
      fld f0 (mb ebx ~disp:256);
      cvtfi eax f0;
      out eax;
      hlt;
    ]
  in
  let leaves = List.concat (List.init n_leaves (fun k -> leaf k st)) in
  let data =
    [ label "scratch";
      word32 (List.init 64 (fun k -> (k * 747796405) land 0xFFFF));
      float64 (List.init 32 (fun k -> float_of_int (k * 37) /. 8.0)) ]
    @ List.concat_map
        (fun (tbl, t1, t2) -> [ label tbl; word32_lbl [ t1; t2 ] ])
        !tables
  in
  program ~name:"random" ~entry:"main"
    ~text:(prologue @ List.concat blocks @ epilogue @ leaves)
    ~data ()

(* ------------------------------------------------------------------ *)

let run_native prog =
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  let o = Vm.Sched.run ~emulate:false m in
  (Vm.Machine.output m, o.Vm.Sched.stop = Vm.Interp.Halted)

let run_rio ?(opts = Rio.Options.default) ?(client = Rio.Types.null_client) prog =
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  let rt = Rio.create ~opts ~client m in
  let o = Rio.run rt in
  (Vm.Machine.output m, o.Rio.reason = Rio.All_exited)

(* low threshold so short random runs still exercise traces and
   adaptive rewrites *)
let hot_opts = { Rio.Options.default with trace_threshold = 4 }

let configs seed =
  ignore seed;
  [
    ("bb-only",
     (fun p -> run_rio p
         ~opts:{ hot_opts with link_direct = false; link_indirect = false;
                 enable_traces = false }));
    ("traces", fun p -> run_rio ~opts:hot_opts p);
    ("combined", fun p -> run_rio ~opts:hot_opts ~client:(Clients.Compose.all_four ()) p);
    ( "five-opts",
      fun p ->
        run_rio ~opts:hot_opts
          ~client:
            (Clients.Compose.compose
               [ Clients.Compose.all_four (); Stdlib.fst (Clients.Redundant_cmp.make ()) ])
          p );
  ]

let prop_differential =
  QCheck2.Test.make ~name:"random programs: native = cached (all configs)"
    ~count:60 ~print:string_of_int
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let prog = gen_program seed in
      let n_out, n_ok = run_native prog in
      if not n_ok then QCheck2.Test.fail_reportf "seed %d: native did not halt" seed
      else begin
        List.iter
          (fun (cname, run) ->
            let out, ok = run prog in
            if not ok then
              QCheck2.Test.fail_reportf "seed %d: %s did not complete" seed cname;
            if out <> n_out then
              QCheck2.Test.fail_reportf "seed %d: %s output mismatch" seed cname)
          (configs seed);
        true
      end)

let debug_seed () =
  match Sys.getenv_opt "RANDOM_SEED" with
  | None -> false
  | Some sd ->
      let seed = int_of_string sd in
      let prog = gen_program seed in
      let n_out, n_ok = run_native prog in
      Printf.printf "native ok=%b out=[%s]\n" n_ok
        (String.concat ";" (List.map string_of_int n_out));
      List.iter
        (fun (name, client) ->
          let out, ok = run_rio ~opts:hot_opts ~client prog in
          Printf.printf "%-10s ok=%b eq=%b out=[%s]\n" name ok (out = n_out)
            (String.concat ";" (List.map string_of_int out)))
        [
          ("null", Rio.Types.null_client);
          ("rlr", Clients.Rlr.make ());
          ("strength", Clients.Strength.make ~on_bb:false);
          ("ibdisp", Clients.Ibdispatch.make ());
          ("ctraces", Stdlib.fst (Clients.Ctraces.make ()));
          ("combined", Clients.Compose.all_four ());
        ];
      true

let () =
  if debug_seed () then exit 0;
  Alcotest.run "random-differential"
    [ ("property", [ QCheck_alcotest.to_alcotest prop_differential ]) ]
