lib/rio/rio.ml: Api Buffer Create Dispatch Emit Flags_analysis Hashtbl Instr Instrlist Level List Mangle Options Stats Types Vm
