(** Adaptive indirect-branch dispatch (paper §4.3, Figure 4).

    The in-cache hashtable lookup for indirect branches is DynamoRIO's
    single greatest source of overhead.  This client value-profiles the
    targets of each inlined indirect branch whose check misses, and —
    once enough samples accumulate — {e rewrites its own trace} to
    insert compare-plus-direct-branch pairs for the hottest targets
    ahead of the lookup:

    {v
    [flags save]                      [flags save]
    cmp [slot], inlined        →      cmp [slot], hot_1
    jne (profile; lookup)             je  hot_1           ; direct exit
                                      cmp [slot], hot_2
                                      je  hot_2
                                      cmp [slot], inlined
                                      jne (profile; lookup)
    v}

    The rewrite uses the adaptive-optimization API: the profiling clean
    call runs [decode_fragment] on the very trace it lives in, edits
    the InstrList, and installs it with [replace_fragment] — while
    execution may still be inside the old fragment body. *)

open Isa
open Rio.Types

type params = { sample_threshold : int; max_inline : int }

let default_params = { sample_threshold = 64; max_inline = 4 }

type site = {
  s_tag : int;                        (* trace tag *)
  s_idx : int;                        (* which inline check in the trace *)
  counts : (int, int) Hashtbl.t;      (* observed target -> samples *)
  mutable total : int;
  mutable inlined : int list;         (* targets already given dispatch pairs *)
  mutable rewrites : int;
}

type t = {
  params : params;
  sites : (int * int * int, site) Hashtbl.t;  (* tid, tag, idx *)
  mutable checks_instrumented : int;
  mutable total_rewrites : int;
  mutable pairs_inserted : int;
}

let fresh () =
  {
    params = default_params;
    sites = Hashtbl.create 64;
    checks_instrumented = 0;
    total_rewrites = 0;
    pairs_inserted = 0;
  }

(* Is this instr an inline-check miss branch (jne to an IND token)? *)
let is_check_jne (i : Rio.Instr.t) =
  (not (Rio.Instr.is_bundle i))
  &&
  match Rio.Instr.get_opcode i with
  | Opcode.Jcc Cond.NZ -> (
      match Rio.Instr.get_src i 0 with
      | Operand.Target t -> ind_kind_of_token t <> None
      | _ -> false)
  | _ -> false

(* Does this check's stub restore saved flags?  (Decides whether our
   inserted direct exits must restore them too.) *)
let stub_restores_flags (jne : Rio.Instr.t) =
  match Rio.Api.get_custom_stub jne with
  | None -> false
  | Some (stub_il, _) ->
      Rio.Instrlist.exists stub_il (fun si ->
          (not (Rio.Instr.is_bundle si))
          && Rio.Instr.get_opcode si = Opcode.Popf)

(* Find the [idx]-th inline check jne in [il]. *)
let find_check (il : Rio.Instrlist.t) idx : Rio.Instr.t option =
  let k = ref (-1) in
  Rio.Instrlist.fold il ~init:None (fun acc i ->
      if acc <> None then acc
      else if is_check_jne i then begin
        incr k;
        if !k = idx then Some i else None
      end
      else None)

(* The hottest targets not yet inlined, best first. *)
let hottest (s : site) ~limit : int list =
  Hashtbl.fold (fun tgt n acc -> (n, tgt) :: acc) s.counts []
  |> List.sort (fun (a, _) (b, _) -> compare b a)
  |> List.filter_map (fun (_, tgt) ->
         if List.mem tgt s.inlined then None else Some tgt)
  |> List.filteri (fun i _ -> i < limit)

(* Rewrite the trace so this check's miss path walks a chain of
   compare-plus-direct-branch pairs for the hot targets before falling
   back to profiling + lookup.  The chain lives in the jne's custom
   stub — the "code sequence at the bottom of the trace" of Figure 4 —
   so the inlined-target hit path pays nothing. *)
let rewrite (t : t) (ctx : context) (s : site) =
  match Rio.Api.decode_fragment ctx s.s_tag with
  | None -> ()
  | Some il -> (
      match find_check il s.s_idx with
      | None -> ()
      | Some jne ->
          let flags_saved = stub_restores_flags jne in
          let slot = Rio.Api.ibl_target_opnd ctx in
          let fslot =
            Operand.mem_abs (tls_addr ~tid:ctx.ts.ts_tid ~slot:slot_eflags)
          in
          let budget = t.params.max_inline - List.length s.inlined in
          let hot = hottest s ~limit:budget in
          if hot <> [] then begin
            let existing, always =
              match Rio.Api.get_custom_stub jne with
              | Some (sil, a) -> (sil, a)
              | None -> (Rio.Instrlist.create (), false)
            in
            let stub = Rio.Instrlist.create () in
            List.iter
              (fun target ->
                let c = Rio.Create.cmp slot (Operand.Imm target) in
                let je = Rio.Create.jcc Cond.Z target in
                if flags_saved then begin
                  (* the application's flags must be restored on the
                     way out to the hot target *)
                  let restore = Rio.Instrlist.create () in
                  Rio.Instrlist.append restore (Rio.Create.push fslot);
                  Rio.Instrlist.append restore (Rio.Create.popf ());
                  Rio.Api.set_custom_stub ~always:true je restore
                end;
                Rio.Instrlist.append stub c;
                Rio.Instrlist.append stub je;
                s.inlined <- target :: s.inlined;
                t.pairs_inserted <- t.pairs_inserted + 1)
              hot;
            (* then the original stub: profiling call (+ flags restore)
               ahead of the hashtable lookup *)
            Rio.Instrlist.append_all ~dst:stub existing;
            Rio.Api.set_custom_stub ~always jne stub;
            if Rio.Api.replace_fragment ctx s.s_tag il then begin
              s.rewrites <- s.rewrites + 1;
              t.total_rewrites <- t.total_rewrites + 1
            end
          end)

let profile_call (t : t) (s : site) : ccall_fn =
 fun ctx ->
  let target = Rio.Api.read_ibl_target ctx in
  Hashtbl.replace s.counts target
    (1 + Option.value (Hashtbl.find_opt s.counts target) ~default:0);
  s.total <- s.total + 1;
  if s.total mod t.params.sample_threshold = 0 then rewrite t ctx s

(* Trace hook: hang a profiling clean call off every inline check's
   miss path (prepended to its stub). *)
let instrument_trace (t : t) (ctx : context) ~tag (il : Rio.Instrlist.t) =
  let idx = ref (-1) in
  Rio.Instrlist.iter il (fun i ->
      if is_check_jne i then begin
        incr idx;
        let key = (ctx.ts.ts_tid, tag, !idx) in
        let s =
          match Hashtbl.find_opt t.sites key with
          | Some s -> s
          | None ->
              let s =
                {
                  s_tag = tag;
                  s_idx = !idx;
                  counts = Hashtbl.create 8;
                  total = 0;
                  inlined = [];
                  rewrites = 0;
                }
              in
              Hashtbl.replace t.sites key s;
              s
        in
        let existing, always =
          match Rio.Api.get_custom_stub i with
          | Some (sil, a) -> (sil, a)
          | None -> (Rio.Instrlist.create (), false)
        in
        let stub = Rio.Instrlist.create () in
        Rio.Instrlist.append stub (Rio.Api.clean_call ctx.rt (profile_call t s));
        Rio.Instrlist.append_all ~dst:stub existing;
        Rio.Api.set_custom_stub ~always i stub;
        t.checks_instrumented <- t.checks_instrumented + 1
      end)

let make ?(params = default_params) () : client =
  let t = { (fresh ()) with params } in
  {
    null_client with
    name = "ibdispatch";
    trace_hook = Some (fun ctx ~tag il -> instrument_trace t ctx ~tag il);
    exit_hook =
      (fun rt ->
        Rio.Api.printf rt
          "ibdispatch: %d checks instrumented, %d rewrites, %d dispatch pairs\n"
          t.checks_instrumented t.total_rewrites t.pairs_inserted);
  }

let client = make ()
