lib/vm/sched.ml: Interp List Machine Printf
