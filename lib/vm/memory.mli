(** Flat little-endian byte memory for the simulated machine, with
    page-granular write-watching for code-cache consistency.

    Out-of-range accesses raise {!Fault} (the simulated segfault).
    Pages marked with {!watch_code} record any store overlapping them
    as dirty byte ranges; the interpreter drains these at control
    transfers to invalidate stale decoded instructions and (under a
    runtime) trigger fragment flushes. *)

exception Fault of { addr : int; size : int; write : bool }

type t

val page_bits : int
(** Log2 of the watch/invalidation page size (4KB pages). *)

val create : int -> t
val size : t -> int

val watch_code : t -> addr:int -> len:int -> unit
(** Watch the pages covering the range; subsequent overlapping writes
    are recorded as dirty. *)

val has_dirty : t -> bool
val take_dirty : t -> (int * int) list

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit

val read_u32 : t -> int -> int
(** Unsigned value in [0, 2{^32}). *)

val write_u32 : t -> int -> int -> unit
val read_f64 : t -> int -> float
val write_f64 : t -> int -> float -> unit

val read_bytes : t -> addr:int -> len:int -> Bytes.t
(** Fresh copy of the [len] bytes at [addr]; one bounds check for the
    whole range. *)

val blit_bytes : t -> src:Bytes.t -> src_pos:int -> dst:int -> len:int -> unit
val blit_string : t -> src:string -> dst:int -> unit

val blit_bytes_raw : t -> src:Bytes.t -> src_pos:int -> dst:int -> len:int -> unit
(** Bulk copy without write tracking (no touch marks, no dirty ranges);
    for loaders restoring known-good image bytes on a reused machine. *)

val zero_touched : t -> below:int -> (int * int) list
(** Zero every page below the (page-aligned) bound that has been
    written since the last call; returns the zeroed ranges.  The cost
    of resetting a machine between requests is proportional to pages
    written, not address-space size. *)

val equal_range : t -> t -> addr:int -> len:int -> bool
(** Byte-equality of two memories over [addr, addr+len). *)

val fetch : t -> Isa.Decode.fetch
(** Bounds-checked byte-fetcher view for the decoders. *)
