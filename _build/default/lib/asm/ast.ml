(** Assembly-program representation.

    A program is two segments of items — text and data — plus an entry
    label.  Instructions may reference labels (branch targets, or label
    addresses used as immediates/displacements), so an instruction item
    is a function of the label environment. *)

type env = string -> int
(** Resolves a label to its absolute address.  Raises
    {!Unknown_label} for undefined labels. *)

exception Unknown_label of string
exception Duplicate_label of string

type item =
  | Label of string
  | Ins of (env -> Isa.Insn.t)
  | Align of int             (** pad with zero bytes to a multiple *)
  | Bytes_lit of string      (** raw bytes *)
  | Word32 of (env -> int) list   (** 32-bit little-endian words *)
  | Float64 of float list    (** 64-bit IEEE doubles *)
  | Space of int             (** zero-filled gap *)

type program = {
  name : string;
  entry : string;
  text : item list;
  data : item list;
}

let program ?(entry = "main") ~name ~text ?(data = []) () =
  { name; entry; text; data }
