(** SynISA opcodes and their static metadata: eflags effects and
    control-flow classification.  [Ccall] is reserved for the runtime
    (clean calls emitted into code caches); application code never
    contains it. *)

type t =
  | Mov
  | Movzx8
  | Movzx16
  | Lea
  | Push
  | Pop
  | Xchg
  | Pushf
  | Popf
  | Add
  | Adc
  | Sub
  | Sbb
  | Inc
  | Dec
  | Neg
  | Cmp
  | Imul
  | Idiv
  | And
  | Or
  | Xor
  | Not
  | Test
  | Shl
  | Shr
  | Sar
  | Jmp
  | JmpInd
  | Jcc of Cond.t
  | Call
  | CallInd
  | Ret
  | Fld
  | Fst
  | Fmov
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fabs
  | Fneg
  | Fsqrt
  | Fcmp
  | Cvtsi
  | Cvtfi
  | Nop
  | Hlt
  | Out
  | In
  | Ccall

val name : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val eflags : t -> Eflags.mask
(** Read/write effects on the flags register.  Flags IA-32 leaves
    undefined are defined as written, deterministically. *)

type cti_kind =
  | Not_cti
  | Cti_direct_jmp
  | Cti_cond
  | Cti_ind_jmp
  | Cti_direct_call
  | Cti_ind_call
  | Cti_return
  | Cti_halt

val cti_kind : t -> cti_kind
val is_cti : t -> bool

val is_indirect_cti : t -> bool
(** Transfers resolved through the indirect-branch lookup when running
    out of a code cache ([jmp*], [call*], [ret]). *)

val is_call : t -> bool
val implicit_stack_read : t -> bool
val implicit_stack_write : t -> bool
val is_fp : t -> bool
