(** The SynISA executor: runs one hardware thread until an event stops
    it.  In cached mode, decoded instructions are reused (native
    hardware fetch, and how code-cache contents run); in emulate mode
    every instruction is re-decoded and charged the interpreter
    overhead (Table 1's first row). *)

type stop =
  | Halted
  | Fault of string
  | Trap of int                          (** control reached the runtime trap region *)
  | Ccall of { id : int; resume : int }  (** clean call emitted by the runtime *)
  | Budget                               (** cycle budget exhausted *)
  | Signal of int                        (** pending signal (interception enabled) *)
  | Smc of int                           (** executed code was overwritten; the
                                             runtime must flush, then resume at
                                             the carried address *)

val stop_to_string : stop -> string

val run : Machine.t -> Machine.thread -> budget:int -> emulate:bool -> stop
