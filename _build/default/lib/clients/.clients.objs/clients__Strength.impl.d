lib/clients/strength.ml: Eflags Insn Isa Opcode Operand Rio Vm
