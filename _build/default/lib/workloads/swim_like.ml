(** swim-like: shallow-water 2D stencil (SPEC2000 171.swim).

    Character: bandwidth-style FP loops sweeping 2D grids with a
    five-point stencil; a few spilled constants are reloaded per
    iteration (less register pressure than mgrid, so RLR helps but
    less dramatically). *)

open Asm.Dsl

let w = 64
let h = 48
let steps = 20

let dt = mb ebp ~disp:(-8)

let at off = ins (fun env ->
    Isa.Insn.mk_fld f2
      (Isa.Operand.mem ~base:Isa.Reg.Esi ~index:(Isa.Reg.Edi, 8)
         ~disp:(env "u" + (8 * off)) ()))

let text =
  [
    label "main";
    mov ebp esp;
    sub esp (i 32);
    li ebx "consts";
    fld f0 (mb ebx);
    fst_ dt f0;
    mov edx (i 0);
    label "step";
    mov esi (i 0);
    mov edi (i w);                       (* skip first row *)
    label "cellloop";
    (* five-point stencil on u into v *)
    fld f1 dt;                           (* spilled dt reload *)
    at 0; fmov f3 f2;
    at 1; fadd f3 (fr f2);
    at (-1); fadd f3 (fr f2);
    at w; fadd f3 (fr f2);
    at (-w); fadd f3 (fr f2);
    fmul f3 (fr f1);
    fld f1 dt;                           (* redundant reload (as compiled) *)
    fadd f3 (fr f1);
    ins (fun env ->
        Isa.Insn.mk_fst
          (Isa.Operand.mem ~base:Isa.Reg.Esi ~index:(Isa.Reg.Edi, 8)
             ~disp:(env "v") ())
          f3);
    inc edi;
    cmp edi (i ((w * h) - w));
    j l "cellloop";
    inc edx;
    cmp edx (i steps);
    j l "step";
    (* checksum a sample of v *)
    mov edi (i 0);
    mov ecx (i 0);
    label "sum";
    ins (fun env ->
        Isa.Insn.mk_fld f0
          (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "v" + (8 * w)) ()));
    cvtfi eax f0;
    add ecx eax;
    add edi (i 7);
    cmp edi (i (w * (h - 2)));
    j l "sum";
    out ecx;
    hlt;
  ]

let data =
  [
    label "consts";
    float64 [ 0.125 ];
    label "u";
    float64 (Workload.lcg_floats ~seed:3 (w * h));
    label "v";
    float64 (List.init (w * h) (fun _ -> 0.0));
  ]

let workload =
  Workload.make ~name:"swim" ~spec_name:"171.swim" ~fp:true
    ~description:"five-point 2D stencil sweeps with spilled-constant reloads"
    (program ~name:"swim" ~entry:"main" ~text ~data ())
