lib/rio/instrlist.mli: Format Instr Level
