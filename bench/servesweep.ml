(** Serving sweep: the socket front-end, admission control, batching,
    pre-warming, and autoscaling evaluation (DESIGN.md §6.10), written
    to BENCH_serve.json.

    Four sections, each with hard gates:

    {ol
    {- {b Closed loop}: a pre-warmed pool serves an interleaved
       request mix with blocking submits.  Gates: zero divergence from
       native, zero cold boots in either pass (pre-warming builds every
       (worker, key) instance before the first request), zero shed.
       The empirical service-time distribution for section 2 is then
       re-measured on a {e single-domain} pre-warmed pool: with no
       work stealing, which request meets which warm instance — and so
       every per-request cycle count — is a deterministic function of
       the request list alone (the same determinism trick autotune
       uses, DESIGN.md §6.9), so the open-loop gates are exact
       replays, not statistics over scheduler noise.}
    {- {b Open loop}: a deterministic d-server bounded-queue model
       replays the measured service times under Poisson arrivals
       (seeded LCG) at a ladder of offered loads ρ.  Sim-latency is
       queueing delay plus service, all in simulated cycles — no host
       noise.  Gates: zero shed at ρ ≤ 0.8; p99 latency at ρ = 0.8
       within budget; past saturation the model sheds and the latency
       of {e accepted} requests stays bounded by the admission cap.}
    {- {b Socket smoke}: a live server ({!Rio.Server.run} on a worker
       domain) behind a deliberately tiny accept queue, hit with a
       burst over a Unix socket.  Gates: at least one typed shed, at
       least one success, every successful response byte-identical to
       native, no failed responses.}
    {- {b Scaling burst}: a pool floored at one live domain absorbs a
       burst.  Gates: the autoscaler both wakes parked workers
       (scale-ups ≥ 1) and parks them again as the queue drains
       (scale-downs ≥ 1), with zero divergence and zero cold boots —
       pre-warming covers parked workers too.}} *)

open Workloads

let pr fmt = Printf.printf fmt

let mix_names ~quick =
  if quick then [ "gzip"; "parser" ] else [ "gzip"; "parser"; "perlbmk"; "gcc" ]

let closed_domains ~quick = if quick then 2 else 4
let closed_requests ~quick = if quick then 24 else 48
let open_arrivals ~quick = if quick then 500 else 2000
let rho_ladder ~quick =
  if quick then [ 0.5; 0.8; 2.0 ] else [ 0.25; 0.5; 0.8; 1.5; 2.0 ]

(* admission cap of the open-loop model (requests in system before an
   arrival is shed), mirroring the pool's [accept_queue] *)
let model_cap = 64

(* ------------------------------------------------------------------ *)
(* Deterministic randomness                                           *)
(* ------------------------------------------------------------------ *)

(* 48-bit LCG (the classic drand48 multiplier): every open-loop rung is
   a pure function of its seed, so the gates are reproducible runs, not
   statistical hopes. *)
let lcg_mask = (1 lsl 48) - 1

let lcg_next st =
  st := ((25214903917 * !st) + 11) land lcg_mask;
  !st

(* uniform in (0, 1] — never 0, so log is finite *)
let lcg_unit st = (float_of_int (lcg_next st) +. 1.0) /. float_of_int (1 lsl 48)

let exp_sample st ~mean = -.mean *. log (lcg_unit st)

(* ------------------------------------------------------------------ *)
(* Percentiles over float samples                                     *)
(* ------------------------------------------------------------------ *)

let percentile (xs : float array) (q : float) : float =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let s = Array.copy xs in
    Array.sort compare s;
    let rank = int_of_float (ceil (q /. 100.0 *. float_of_int n)) in
    s.(max 0 (min (n - 1) (rank - 1)))
  end

(* ------------------------------------------------------------------ *)
(* Open-loop queue model                                              *)
(* ------------------------------------------------------------------ *)

type ol_row = {
  ol_rho : float;
  ol_offered : int;
  ol_accepted : int;
  ol_shed : int;
  ol_p50 : float;
  ol_p95 : float;
  ol_p99 : float;
  ol_max : float;
}

(* FCFS over [d] servers with a hard cap on requests in system:
   arrivals are Poisson (rate ρ·d/mean-service), service times are
   drawn from the measured distribution.  Everything is simulated
   cycles; nothing depends on the host. *)
let open_loop_rung ~seed ~d ~cap ~rho ~(service : int array) ~arrivals : ol_row
    =
  let n_svc = Array.length service in
  let mean_service =
    float_of_int (Array.fold_left ( + ) 0 service) /. float_of_int n_svc
  in
  let mean_interarrival = mean_service /. (float_of_int d *. rho) in
  let st = ref seed in
  let free_at = Array.make d 0.0 in
  let in_system = ref [] in
  let latencies = ref [] in
  let shed = ref 0 in
  let t = ref 0.0 in
  for _ = 1 to arrivals do
    t := !t +. exp_sample st ~mean:mean_interarrival;
    let svc = float_of_int service.(lcg_next st mod n_svc) in
    in_system := List.filter (fun fin -> fin > !t) !in_system;
    if List.length !in_system >= cap then incr shed
    else begin
      (* earliest-free server, FCFS *)
      let k = ref 0 in
      Array.iteri (fun i f -> if f < free_at.(!k) then k := i) free_at;
      let start = Stdlib.max !t free_at.(!k) in
      let finish = start +. svc in
      free_at.(!k) <- finish;
      in_system := finish :: !in_system;
      latencies := (finish -. !t) :: !latencies
    end
  done;
  let lat = Array.of_list !latencies in
  {
    ol_rho = rho;
    ol_offered = arrivals;
    ol_accepted = Array.length lat;
    ol_shed = !shed;
    ol_p50 = percentile lat 50.0;
    ol_p95 = percentile lat 95.0;
    ol_p99 = percentile lat 99.0;
    ol_max = Array.fold_left Stdlib.max 0.0 lat;
  }

(* ------------------------------------------------------------------ *)
(* The sweep                                                          *)
(* ------------------------------------------------------------------ *)

let run ~quick ~out_path () =
  let wls =
    List.map
      (fun n -> Workload.serving_variant (Option.get (Suite.by_name n)))
      (mix_names ~quick)
  in
  pr "\n=== Serving sweep (%s mode; mix: %s) ===\n"
    (if quick then "quick" else "full")
    (String.concat "," (mix_names ~quick));
  let make_requests = Sweep.request_maker wls in
  let default_opts = { Rio.Options.default with max_cycles = max_int / 2 } in
  let boots = Sweep.pool_boots ~opts:default_opts wls in
  let divergences = ref 0 in
  let check_pass tag results = Sweep.check_pass ~divergences tag results in

  (* ---------------- 1. closed loop, pre-warmed ---------------- *)
  let d = closed_domains ~quick in
  let n = closed_requests ~quick in
  let pool =
    Rio.Pool.create
      ~cfg:
        {
          Rio.Options.default_pool with
          domains = d;
          prewarm = true;
          batch_window = 8;
        }
      ~boots ()
  in
  let boot_snap = Rio.Pool.stats pool in
  pr "closed loop: %d domains, %d requests, %d instances pre-warmed at boot\n%!"
    d n boot_snap.Rio.Pool.snap_prewarm_boots;
  (* warm pass: fills trace caches (pre-warming builds instances, the
     first requests still build fragments) *)
  List.iter (Sweep.submit_exn pool) (make_requests ~seed_base:10_000 n);
  check_pass "closed warm" (Rio.Pool.drain pool);
  let warm_snap = Rio.Pool.stats pool in
  Rio.Pool.reset_counters pool;
  List.iter (Sweep.submit_exn pool) (make_requests ~seed_base:0 n);
  let results = Rio.Pool.drain pool in
  check_pass "closed measured" results;
  let meas_snap = Rio.Pool.stats pool in
  Rio.Pool.shutdown pool;
  ignore results;
  (* service-time measurement: the same request list through a
     single-domain pre-warmed pool.  One domain means no work stealing,
     so which request meets which warm instance — and therefore every
     res_cycles sample — is deterministic; the multi-domain pool above
     keeps the cold-boot/divergence gates, but its per-request cycles
     shift run-to-run with steal order, which would make the open-loop
     p99 gate flaky. *)
  let mpool =
    Rio.Pool.create
      ~cfg:{ Rio.Options.default_pool with domains = 1; prewarm = true }
      ~boots ()
  in
  List.iter (Sweep.submit_exn mpool) (make_requests ~seed_base:10_000 n);
  check_pass "service warm" (Rio.Pool.drain mpool);
  List.iter (Sweep.submit_exn mpool) (make_requests ~seed_base:0 n);
  let mresults = Rio.Pool.drain mpool in
  check_pass "service measured" mresults;
  Rio.Pool.shutdown mpool;
  let service =
    Array.of_list (List.map (fun r -> r.Rio.Pool.res_cycles) mresults)
  in
  let servicef = Array.map float_of_int service in
  let mean_service =
    float_of_int (Array.fold_left ( + ) 0 service)
    /. float_of_int (Array.length service)
  in
  let max_service = Array.fold_left Stdlib.max 0 service in
  let closed_cold =
    warm_snap.Rio.Pool.snap_cold_boots + meas_snap.Rio.Pool.snap_cold_boots
  in
  pr
    "closed loop: cold boots %d (gate 0), batch hits %d, service cycles \
     p50 %.0f p99 %.0f mean %.0f\n%!"
    closed_cold meas_snap.Rio.Pool.snap_batch_hits
    (percentile servicef 50.0) (percentile servicef 99.0) mean_service;

  (* ---------------- 2. open loop, deterministic model ---------------- *)
  let arrivals = open_arrivals ~quick in
  pr "\nopen loop: %d Poisson arrivals per rung over a %d-server model, \
      cap %d\n" arrivals d model_cap;
  pr "%8s %9s %9s %7s %12s %12s %12s\n" "rho" "offered" "accepted" "shed"
    "p50-cyc" "p99-cyc" "max-cyc";
  let ol_rows =
    List.mapi
      (fun i rho ->
        let row =
          open_loop_rung ~seed:(0x5eed + i) ~d ~cap:model_cap ~rho ~service
            ~arrivals
        in
        pr "%8.2f %9d %9d %7d %12.0f %12.0f %12.0f\n%!" row.ol_rho
          row.ol_offered row.ol_accepted row.ol_shed row.ol_p50 row.ol_p99
          row.ol_max;
        row)
      (rho_ladder ~quick)
  in
  let target = List.find (fun r -> r.ol_rho = 0.8) ol_rows in
  let saturated = List.nth ol_rows (List.length ol_rows - 1) in
  let p99_budget = 20.0 *. mean_service in
  let accepted_bound = float_of_int (model_cap * max_service) in
  let subcritical_shed =
    List.fold_left
      (fun a r -> if r.ol_rho <= 0.8 then a + r.ol_shed else a)
      0 ol_rows
  in
  pr
    "target rung rho=0.80: p99 %.0f cycles (budget %.0f = 20x mean service)\n"
    target.ol_p99 p99_budget;
  pr
    "saturated rung rho=%.2f: %d/%d shed, accepted p99 %.0f (bound %.3g = \
     cap x max service)\n%!"
    saturated.ol_rho saturated.ol_shed saturated.ol_offered saturated.ol_p99
    accepted_bound;

  (* ---------------- 3. live socket smoke ---------------- *)
  (* tiny accept queue: the burst must draw typed sheds over the wire *)
  let sock_path = Filename.concat (Sys.getcwd ()) "servesweep.sock" in
  let smoke_aq = 2 in
  let smoke_n = if quick then 16 else 24 in
  let spool =
    Rio.Pool.create
      ~cfg:
        {
          Rio.Options.default_pool with
          domains = 2;
          prewarm = true;
          accept_queue = smoke_aq;
        }
      ~boots ()
  in
  let addr = Rio.Server.Unix_addr sock_path in
  let lfd = Rio.Server.listen addr in
  let srv = Domain.spawn (fun () -> Rio.Server.run spool [ lfd ]) in
  let reqs = make_requests ~seed_base:30_000 smoke_n in
  let cfd = Rio.Server.connect addr in
  let responses =
    Rio.Server.client_run cfd
      (List.map
         (fun (r : Rio.Pool.request) ->
           (r.Rio.Pool.req_key, r.req_seed, r.req_input, r.req_expect))
         reqs)
  in
  Rio.Wire.send_msg cfd Rio.Wire.Quit;
  Unix.close cfd;
  let sstats = Domain.join srv in
  Unix.close lfd;
  if Sys.file_exists sock_path then Sys.remove sock_path;
  Rio.Pool.drain spool |> ignore;
  let ssnap = Rio.Pool.stats spool in
  Rio.Pool.shutdown spool;
  let count st =
    List.length (List.filter (fun r -> r.Rio.Wire.r_status = st) responses)
  in
  let smoke_ok = count Rio.Wire.St_ok in
  let smoke_shed = count Rio.Wire.St_shed in
  let smoke_failed = count Rio.Wire.St_failed in
  let smoke_mismatch = ref 0 in
  List.iter
    (fun (r : Rio.Wire.response) ->
      if r.Rio.Wire.r_status = Rio.Wire.St_ok then begin
        let expect =
          (List.nth reqs r.Rio.Wire.r_id).Rio.Pool.req_expect
        in
        if Some r.Rio.Wire.r_output <> expect then begin
          incr smoke_mismatch;
          incr divergences;
          pr "!! socket: response %d output differs from native\n%!"
            r.Rio.Wire.r_id
        end
      end)
    responses;
  pr
    "\nsocket smoke (%s, accept_queue %d): %d requests -> %d ok, %d shed, \
     %d failed; pool shed %d; server: %d conns, %d responses\n%!"
    ("unix:" ^ sock_path) smoke_aq smoke_n smoke_ok smoke_shed smoke_failed
    ssnap.Rio.Pool.snap_shed sstats.Rio.Server.sv_accepted
    sstats.Rio.Server.sv_responses;

  (* ---------------- 4. scaling burst ---------------- *)
  let bd = 4 in
  let bn = if quick then 32 else 48 in
  let bpool =
    Rio.Pool.create
      ~cfg:
        {
          Rio.Options.default_pool with
          domains = bd;
          prewarm = true;
          min_domains = Some 1;
          scale_up_depth = 2;
          scale_down_depth = 1;
          scale_hysteresis = 2;
          max_inflight = 128;
        }
      ~boots ()
  in
  List.iter (Sweep.submit_exn bpool) (make_requests ~seed_base:40_000 bn);
  check_pass "scaling burst" (Rio.Pool.drain bpool);
  let bsnap = Rio.Pool.stats bpool in
  Rio.Pool.shutdown bpool;
  pr
    "scaling burst: %d requests, floor 1 of %d domains -> %d scale-ups, %d \
     scale-downs, %d live at rest, cold boots %d\n%!"
    bn bd bsnap.Rio.Pool.snap_scale_ups bsnap.Rio.Pool.snap_scale_downs
    bsnap.Rio.Pool.snap_live_domains bsnap.Rio.Pool.snap_cold_boots;

  (* ---------------- JSON + gates ---------------- *)
  let open Sweep in
  write_json ~path:out_path
    (Obj
       [ ("schema", Str "rio-servesweep-v1");
         ("quick", Bool quick);
         ("mix", Arr (List.map (fun n -> Str n) (mix_names ~quick)));
         ("divergences", Int !divergences);
         ( "closed_loop",
           Obj
             [ ("domains", Int d);
               ("requests", Int n);
               ("prewarm_boots", Int boot_snap.Rio.Pool.snap_prewarm_boots);
               ("cold_boots", Int closed_cold);
               ("batch_hits", Int meas_snap.Rio.Pool.snap_batch_hits);
               ("mean_service_cycles", Float mean_service);
               ("p50_service_cycles", Float (percentile servicef 50.0));
               ("p99_service_cycles", Float (percentile servicef 99.0)) ] );
         ( "open_loop",
           Obj
             [ ("servers", Int d);
               ("cap", Int model_cap);
               ("arrivals_per_rung", Int arrivals);
               ("p99_budget_cycles", Float p99_budget);
               ( "rungs",
                 Arr
                   (List.map
                      (fun r ->
                        Obj
                          [ ("rho", Float r.ol_rho);
                            ("offered", Int r.ol_offered);
                            ("accepted", Int r.ol_accepted);
                            ("shed", Int r.ol_shed);
                            ("p50_cycles", Float r.ol_p50);
                            ("p95_cycles", Float r.ol_p95);
                            ("p99_cycles", Float r.ol_p99);
                            ("max_cycles", Float r.ol_max) ])
                      ol_rows) ) ] );
         ( "socket",
           Obj
             [ ("requests", Int smoke_n);
               ("accept_queue", Int smoke_aq);
               ("ok", Int smoke_ok);
               ("shed", Int smoke_shed);
               ("failed", Int smoke_failed);
               ("output_mismatches", Int !smoke_mismatch);
               ("connections", Int sstats.Rio.Server.sv_accepted);
               ("responses", Int sstats.Rio.Server.sv_responses) ] );
         ( "scaling",
           Obj
             [ ("domains", Int bd);
               ("floor", Int 1);
               ("requests", Int bn);
               ("scale_ups", Int bsnap.Rio.Pool.snap_scale_ups);
               ("scale_downs", Int bsnap.Rio.Pool.snap_scale_downs);
               ("live_at_rest", Int bsnap.Rio.Pool.snap_live_domains);
               ("cold_boots", Int bsnap.Rio.Pool.snap_cold_boots) ] );
       ]);

  let fail = ref false in
  let gate cond msg = if not cond then begin pr "!! gate: %s\n%!" msg; fail := true end in
  gate (!divergences = 0)
    (Printf.sprintf "%d responses diverged from native" !divergences);
  gate (closed_cold = 0)
    (Printf.sprintf "closed loop took %d cold boots despite pre-warming"
       closed_cold);
  gate (subcritical_shed = 0)
    (Printf.sprintf "open loop shed %d requests at rho <= 0.8"
       subcritical_shed);
  gate (target.ol_p99 <= p99_budget)
    (Printf.sprintf "open-loop p99 %.0f at rho=0.8 exceeds budget %.0f"
       target.ol_p99 p99_budget);
  gate (saturated.ol_shed > 0)
    "open loop failed to shed past saturation";
  gate (saturated.ol_p99 <= accepted_bound)
    (Printf.sprintf
       "accepted p99 %.0f past saturation exceeds the admission bound %.3g"
       saturated.ol_p99 accepted_bound);
  gate (smoke_shed > 0) "socket burst produced no typed shed";
  gate (smoke_ok > 0) "socket burst produced no success";
  gate (smoke_failed = 0)
    (Printf.sprintf "socket burst produced %d failed responses" smoke_failed);
  gate
    (bsnap.Rio.Pool.snap_scale_ups >= 1)
    "autoscaler never woke a parked worker";
  gate
    (bsnap.Rio.Pool.snap_scale_downs >= 1)
    "autoscaler never parked a worker after the burst";
  gate
    (bsnap.Rio.Pool.snap_cold_boots = 0)
    "scaling burst took a cold boot despite pre-warming";
  if !fail then exit 1;
  pr "\nall serving gates passed\n%!"
