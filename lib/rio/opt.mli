(** The in-core trace optimizer (DESIGN.md §6.4): copy/constant
    propagation, strength reduction, redundant-load removal, dead-store
    elimination, exit-check peepholes and dead flag-save elision, run
    over the trace IL at finalization and again — through the
    decode/replace path — when a hot trace crosses the re-optimization
    threshold.

    Every pass either rewrites one instruction into a cheaper
    equal-semantics form or deletes a provably unobservable one: the
    instruction count never grows, and exit CTIs are treated as full
    liveness boundaries. *)

open Types

(** Per-run pass counters; folded into {!Stats.t} by {!run}. *)
type counters = {
  mutable copies : int;
  mutable consts : int;
  mutable strength : int;
  mutable loads_removed : int;
  mutable loads_rewritten : int;
  mutable stores_removed : int;
  mutable dead_removed : int;
  mutable checks_simplified : int;
  mutable flag_saves_elided : int;
}

val fresh_counters : unit -> counters

(** {2 Individual passes} — exported for clients, examples and tests;
    each mutates the IL in place and bumps its counters. *)

val copy_prop : counters -> Instrlist.t -> unit
val strength_reduce : family:Vm.Cost.family -> counters -> Instrlist.t -> unit
val remove_redundant_loads : counters -> Instrlist.t -> unit
val eliminate_dead : counters -> Instrlist.t -> unit
val simplify_exit_checks : counters -> Instrlist.t -> unit
val elide_flag_saves : counters -> Instrlist.t -> unit

val run_passes :
  ?always_save_flags:bool ->
  family:Vm.Cost.family ->
  counters ->
  Options.opt_pass list ->
  Instrlist.t ->
  unit
(** Run the passes in order.  [always_save_flags] suppresses the
    flag-save elision (that ablation must keep every bracket). *)

val run : runtime -> Instrlist.t -> unit
(** Optimize a freshly finalized trace IL in place, charging the
    modelled pass cost and folding counters into the runtime's stats.
    No-op when {!Options.effective_passes} is empty ([-O0]). *)

val maybe_reoptimize : runtime -> thread_state -> fragment -> fragment
(** Called on every fragment entry: counts trace entries and, once a
    hot trace crosses [reopt_threshold], decodes its cache image,
    re-runs the pipeline and replaces the fragment (delayed delete).
    Returns the fragment to actually enter — the fresh one on success,
    the original when replacement found no room. *)
