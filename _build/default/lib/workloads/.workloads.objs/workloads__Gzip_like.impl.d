lib/workloads/gzip_like.ml: Asm Char List String Workload
