examples/profiling.mli:
