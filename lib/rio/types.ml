(** Shared runtime types for the RIO core: fragments, exits, per-thread
    dispatch state, the runtime, client hooks, and address-space layout.

    {2 Address-space layout}

    {v
    0x0000_0000 .. 0x007F_FFFF   application (text, data, stacks)
    0x0080_0000 .. 0x0080_FFFF   thread-local runtime slots (TLS)
    0x0100_0000 .. cache_end     code caches (fragments + exit stubs)
    0x4000_0000 ..               trap tokens (never backed by memory):
                                 control transfers here return to the
                                 runtime, identifying the taken exit
    0x5000_0000 .. 0x5000_000B   pseudo-targets in client-visible ILs:
                                 "this CTI goes to the indirect-branch
                                 lookup" (jmp/call/ret flavours)
    v} *)

let tls_base = 0x80_0000
let tls_slot_bytes = 4
let tls_slots_per_thread = 16
let cache_base = 0x100_0000
let trap_base = 0x4000_0000
let ind_token_base = 0x5000_0000

(* TLS slot indices *)
(* app target of an in-flight indirect branch *)
let slot_ibl_target = 0
(* eflags save around inserted code *)
let slot_eflags = 1
(* register spill slots 0..7: indices 2..9 *)
let slot_spill0 = 2
(* generic client slot (tls_field API) *)
let slot_client = 10

(** Absolute address of a TLS slot for a thread. *)
let tls_addr ~tid ~slot =
  tls_base + (tid * tls_slots_per_thread * tls_slot_bytes) + (slot * tls_slot_bytes)

(** Exclusive end of the TLS region (64KB: 1024 threads). *)
let tls_end = tls_base + 0x1_0000

(** Decompose a TLS-region address back into [(tid, slot)] — the
    inverse of {!tls_addr}, used to type absolute-memory relocations. *)
let tls_slot_of_addr a =
  if a >= tls_base && a < tls_end then begin
    let rel = a - tls_base in
    let per_thread = tls_slots_per_thread * tls_slot_bytes in
    Some (rel / per_thread, rel mod per_thread / tls_slot_bytes)
  end
  else None

type ind_kind = Ind_jmp | Ind_call | Ind_ret

let ind_kind_name = function
  | Ind_jmp -> "jmp*"
  | Ind_call -> "call*"
  | Ind_ret -> "ret"

(** Pseudo-target used in client-visible ILs for CTIs that resolve via
    the indirect-branch lookup. *)
let ind_token = function
  | Ind_jmp -> ind_token_base
  | Ind_call -> ind_token_base + 4
  | Ind_ret -> ind_token_base + 8

let ind_kind_of_token a =
  if a = ind_token_base then Some Ind_jmp
  else if a = ind_token_base + 4 then Some Ind_call
  else if a = ind_token_base + 8 then Some Ind_ret
  else None

let is_app_addr a = a >= 0 && a < tls_base
let is_trap_token a = a >= trap_base && a < ind_token_base

type fragment_kind = Bb | Trace

(* ------------------------------------------------------------------ *)
(* Relocations                                                        *)
(* ------------------------------------------------------------------ *)

(** What an address embedded in a fragment's cache bytes refers to.
    Every absolute target the emitter encodes is recorded as one of
    these, so a fragment can be moved (cache compaction) or serialized
    and re-materialized at a different address (persistent cache) by
    replaying its relocation table instead of re-emitting from IL. *)
type reloc_target =
  | RT_exit_branch of int
      (* ordinal into [exits]: the exit CTI.  Encoded pc-relative, so a
         move re-encodes it against the new site; its logical target
         (stub, or linked peer's entry) is owned by the exit record *)
  | RT_stub_jmp of int
      (* ordinal into [exits]: the stub's final jmp (token or, for
         always-through-stub exits, the linked peer's entry) *)
  | RT_tls_abs of int * int
      (* (tid, slot): absolute-memory operand addressing a TLS runtime
         slot.  Position-independent under a move; persistable, but the
         image loader must re-validate the tid against the loading
         thread *)
  | RT_runtime_abs of int
      (* any other runtime-absolute memory operand (client global
         slots, profiling counters at >= cache_base).  Stable under a
         move within one runtime; never persistable, because the
         address belongs to a heap allocation of this process's
         runtime *)

(** One relocation site: [r_off] is the byte offset of the referencing
    instruction from the fragment's entry. *)
type reloc = { r_off : int; r_target : reloc_target }

type exit_ = {
  exit_id : int;                      (* global; trap token = trap_base + 4*id *)
  e_kind : exit_kind;
  mutable target_tag : int;           (* 0 for indirect exits *)
  mutable branch_pc : int;            (* cache addr of the exit CTI *)
  mutable branch_is_cond : bool;
  mutable stub_pc : int;              (* cache addr of the stub entry *)
  mutable stub_jmp_pc : int;          (* addr of the stub's final jmp (patched when always_through_stub links) *)
  mutable linked : fragment option;
  always_through_stub : bool;
  stub_il : Instrlist.t option;       (* stub preamble (client custom stub and/or flags restore) *)
  mutable e_owner : fragment option;  (* back-pointer, set at registration *)
}

and exit_kind = Exit_direct | Exit_indirect of ind_kind

and fragment = {
  tag : int;
  kind : fragment_kind;
  f_tid : int;
  mutable entry : int;                (* mutable: compaction slides live fragments *)
  mutable body_end : int;             (* exclusive *)
  mutable total_end : int;            (* end of stubs *)
  relocs : reloc array;
      (* every absolute target embedded in [entry, total_end), typed;
         the move and image-load paths fix code up by replaying these *)
  exits : exit_ array;
  mutable incoming : exit_ list;      (* exits of (other) fragments linked to me *)
  mutable deleted : bool;
  mutable exec_count : int;
      (* entries observed at dispatch/IBL safe points, counted while
         deferred/hot-trace re-optimization is armed (opt_level >= 1) *)
  mutable reopted : bool;
      (* this body already went through (or resulted from) hot-trace
         re-optimization: never re-optimize twice *)
  loaded : bool;
      (* re-materialized from a persisted cache image rather than built
         by this process: the bytes are valid code but the IL round-trip
         is gone (stub preambles lost their notes), so anything that
         decodes the body back to IL — re-optimization, guard cutting —
         must take a rebuild path instead *)
  mutable guards : guard list;
      (* speculative guards compiled into this (trace) fragment, each
         bound to the exit that fires when its assumption is violated
         (DESIGN.md §6.7); empty below -O3 *)
  mutable checksum : int;
      (* FNV-1a hash of the fragment's cache bytes [entry, total_end),
         refreshed after every legitimate patch (link/unlink/replace);
         the auditor recomputes and compares to detect corruption *)
  src_ranges : (int * int) list;
      (* application-code byte ranges this fragment was built from,
         for self-modifying-code flushes *)
}

(** What a speculative guard assumed. *)
and guard_kind =
  | G_ind of ind_kind  (* dominant indirect-branch target inlined *)
  | G_const            (* observed-constant memory cell folded *)

(** A speculative assumption compiled into a trace.  The guard's
    machine form is an ordinary conditional exit (cmp + jne) whose
    side-exit stub is the recovery map: the exit CTI is an all-live
    boundary for the liveness analyses, so every register holds its
    precise application value there, and the stub restores the flags
    the compare clobbered.  Deoptimization is therefore just taking
    the exit — control lands on the unoptimized constituent block (or
    the IBL) with exact machine state. *)
and guard = {
  g_site : int;                 (* app tag of the block that was specialized *)
  g_kind : guard_kind;
  mutable g_exit_id : int;      (* the bound side exit; -1 until bound *)
  mutable g_violations : int;   (* times this guard fired, lifetime *)
  mutable g_last_violation : int;  (* cycle stamp of the last firing *)
  mutable g_burst : int;        (* consecutive firings within the window *)
}

(** Violation-budget window, in machine cycles: two guard firings
    closer together than this are one burst.  A guard that still hits
    most of the time fires with long gaps between misses and never
    accumulates a burst; a guard whose assumption has died (the
    workload changed phase) fires on back-to-back iterations and
    spends its budget within a few trips round the loop. *)
let spec_burst_window = 250

let token_of_exit (e : exit_) = trap_base + (4 * e.exit_id)

(** The guard bound to [exit_id] in [f], if any. *)
let guard_of_exit (f : fragment) (exit_id : int) : guard option =
  List.find_opt (fun g -> g.g_exit_id = exit_id) f.guards

(* ------------------------------------------------------------------ *)

(** The trace builder's pending CTI: what the last stitched block ended
    with, resolved once execution shows where control actually went. *)
type pending_cti =
  | P_jcc of Isa.Cond.t * int * int  (* cond, taken target, fall-through *)
  | P_jmp of int
  | P_ind of ind_kind
  | P_halt
  | P_start                          (* no block stitched yet *)

type tracegen = {
  tg_head : int;
  mutable tg_tags : int list;            (* constituent block tags, reversed *)
  mutable tg_il : Instrlist.t;           (* stitched client-view IL so far *)
  mutable tg_insns : int;
  mutable tg_pending : pending_cti;
  mutable tg_checks : Instr.t list;      (* jne instrs of inline checks, for flags fixup *)
  mutable tg_guards : (Instr.t * guard) list;
      (* jne -> speculative guard, by physical instr identity; bound to
         real exit ids once the trace is emitted *)
}

type end_trace_directive = End_trace | Continue_trace | Default_end

type thread_state = {
  ts_tid : int;
  mutable thread : Vm.Machine.thread;
      (* rebound on warm reuse: each request brings a fresh machine
         thread, but the fragment index (the warm cache) is keyed by
         tid and survives *)
  mutable next_tag : int;
  (* the unified fragment index: basic blocks, traces, the in-cache
     indirect-branch lookup table, and trace-head state, all in one
     open-addressing table probed once per dispatch.  Trace heads are
     deliberately absent from the ibl slots so their executions pass
     through the dispatcher and bump the head counter. *)
  index : fragment Fragindex.t;
  mutable tracegen : tracegen option;
  mutable client_field : exn option;     (* per-thread client storage *)
  mutable exited : bool;                 (* thread_exit hook delivered *)
  mutable in_cache : bool;               (* preempted mid-fragment: resume at thread.pc *)
}

type runtime = {
  machine : Vm.Machine.t;
  opts : Options.t;
  stats : Stats.t;
  mutable client : client;
  mutable thread_states : thread_state list;
  (* exit ids are dense (allocated sequentially), so the trap-token →
     exit mapping is a flat array: one bounds check per cache exit
     instead of a hashed lookup *)
  mutable exits_by_id : exit_ option array;
  mutable next_exit_id : int;
  ccalls : (int, ccall_fn) Hashtbl.t;
  mutable next_ccall_id : int;
  mutable cache_cursor : int;
      (* bump cursor for the unbounded / full-flush-policy cache; under
         the FIFO policy it is pinned at the region end so transparent
         heap allocations cannot grow into the bounded cache *)
  cache_end : int;
  mutable heap_cursor : int;          (* transparent allocations grow down from cache_end *)
  mutable flush_pending : bool;       (* capacity exceeded: flush at next safe point *)
  (* --- incremental cache management (FIFO policy, DESIGN.md §6.3) --- *)
  cache_alloc : (Cachealloc.t * Cachealloc.t) option;
      (* (bb region, trace region); [Some] only with a bounded capacity
         under the FIFO policy — [None] selects the legacy bump path *)
  fifo_bb : fragment Queue.t;         (* bb fragments in emission order *)
  fifo_trace : fragment Queue.t;      (* trace fragments in emission order *)
  mutable client_output : Buffer.t;      (* transparent I/O: dr_printf *)
  mutable client_global : exn option;    (* dr global storage *)
  mutable flow_log : string list;        (* optional dispatch-event log (Figure 1) *)
  mutable log_flow : bool;
  (* --- fault tolerance (S34) --- *)
  mutable watchdog : (unit -> bool) option;
      (* per-request deadline probe (pool supervision, DESIGN.md §6.6):
         polled at dispatcher safe points and quantum boundaries; when
         it returns true the run is preempted at the next fragment
         boundary with a [Deadline_exceeded] outcome *)
  mutable client_failures : int;      (* hook raises so far *)
  mutable client_quarantined : bool;  (* hooks disabled after too many *)
  mutable fi_state : int;             (* fault-injector LCG state *)
  mutable fi_hook_pending : bool;     (* next client hook must raise *)
  recover_attempts : (int, int) Hashtbl.t;
      (* tag -> recovery-ladder rung already attempted *)
  emulate_only : (int, unit) Hashtbl.t;
      (* tags demoted permanently to pure emulation (ladder rung 4) *)
}

and context = { rt : runtime; ts : thread_state }

and ccall_fn = context -> unit

(** Client hooks (paper Table 3 + §3.5).  [None] hooks are skipped at
    zero cost. *)
and client = {
  name : string;
  init : runtime -> unit;
  exit_hook : runtime -> unit;
  thread_init : context -> unit;
  thread_exit : context -> unit;
  basic_block : (context -> tag:int -> Instrlist.t -> unit) option;
  trace_hook : (context -> tag:int -> Instrlist.t -> unit) option;
  fragment_deleted : (context -> tag:int -> unit) option;
  end_trace : (context -> trace_tag:int -> next_tag:int -> end_trace_directive) option;
}

let null_client =
  {
    name = "null";
    init = (fun _ -> ());
    exit_hook = (fun _ -> ());
    thread_init = (fun _ -> ());
    thread_exit = (fun _ -> ());
    basic_block = None;
    trace_hook = None;
    fragment_deleted = None;
    end_trace = None;
  }

(** Note attached to an exit CTI carrying its custom stub: the stub
    preamble IL and the always-go-through-stub flag (paper §3.2). *)
exception Stub_note of Instrlist.t * bool

exception Rio_error of string

(** Raised by clients to terminate the application (e.g. a security
    client refusing to execute injected code).  The runtime turns it
    into an {e application fault} outcome. *)
exception Client_abort of string

let rio_error fmt = Printf.ksprintf (fun s -> raise (Rio_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Exit-id registry                                                   *)
(* ------------------------------------------------------------------ *)

let register_exit (rt : runtime) (e : exit_) : unit =
  let id = e.exit_id in
  let n = Array.length rt.exits_by_id in
  if id >= n then begin
    let bigger = Array.make (max (2 * n) (id + 1)) None in
    Array.blit rt.exits_by_id 0 bigger 0 n;
    rt.exits_by_id <- bigger
  end;
  rt.exits_by_id.(id) <- Some e

let exit_of_id (rt : runtime) id : exit_ option =
  if id >= 0 && id < Array.length rt.exits_by_id then rt.exits_by_id.(id)
  else None

let drop_exit (rt : runtime) (e : exit_) : unit =
  let id = e.exit_id in
  if id >= 0 && id < Array.length rt.exits_by_id then rt.exits_by_id.(id) <- None

(** True when some preempted thread will resume execution inside [f]:
    such a fragment is pinned — it may be neither corrupted (fault
    injection) nor reclaimed (capacity eviction) until the thread
    leaves the cache. *)
let thread_inside (rt : runtime) (f : fragment) : bool =
  List.exists
    (fun ts ->
      ts.in_cache
      &&
      let pc = ts.thread.Vm.Machine.pc in
      pc >= f.entry && pc < f.total_end)
    rt.thread_states

let charge (rt : runtime) n =
  Vm.Machine.add_cycles rt.machine n;
  rt.stats.Stats.runtime_cycles <- rt.stats.Stats.runtime_cycles + n

(** Charge an optimization cost: to the application thread normally,
    or to the spare processor under sideline optimization. *)
let charge_opt (rt : runtime) n =
  if rt.opts.Options.sideline then
    rt.stats.Stats.sideline_cycles <- rt.stats.Stats.sideline_cycles + n
  else charge rt n

let log_flow (rt : runtime) fmt =
  Printf.ksprintf
    (fun s -> if rt.log_flow then rt.flow_log <- s :: rt.flow_log)
    fmt
