(** Deterministic processor cost model.

    Captures exactly the asymmetries the paper's evaluation rests on: a
    processor-family knob ([inc] slower than [add 1] on the Pentium 4
    only), a return-address-stack predictor that mangled code-cache
    returns cannot use, a one-entry-per-site BTB for indirect jumps, a
    2-bit counter per conditional branch, and a small extra cost for
    taken transfers (the code-layout benefit of traces). *)

open Isa

type family = Pentium3 | Pentium4

val family_name : family -> string

type t = {
  family : family;
  mispredict : int;
  taken_extra : int;
  mem_read : int;
  mem_write : int;
  emu_overhead : int;  (** per-instruction cost of pure emulation *)
}

val default_params : family -> t

val base_cycles : t -> Opcode.t -> int
(** Execution cycles excluding memory-operand and branch extras. *)

type predictor

val create_predictor : unit -> predictor
val reset_predictor : predictor -> unit

val cond_branch : t -> predictor -> site:int -> taken:bool -> int
val direct_jump : t -> int
val ras_push : predictor -> int -> unit
val ret_branch : t -> predictor -> target:int -> int
val indirect_jump : t -> predictor -> site:int -> target:int -> int
