lib/asm/parse.mli: Ast
