lib/rio/instr.mli: Bytes Eflags Format Insn Isa Level Opcode Operand
