(** Branch conditions for [jcc], mirroring the sixteen IA-32 condition
    codes.  The 4-bit encoding matches IA-32: bit 0 negates the base
    predicate, which is why [invert] is a single XOR on real hardware —
    SynISA keeps that property so trace building can flip a branch
    in-place. *)

type t =
  | O   (** overflow: OF *)
  | NO  (** not overflow *)
  | B   (** below (unsigned <): CF *)
  | NB  (** not below (unsigned >=) *)
  | Z   (** zero / equal: ZF *)
  | NZ  (** not zero / not equal *)
  | BE  (** below or equal (unsigned <=): CF|ZF *)
  | NBE (** above (unsigned >) *)
  | S   (** sign: SF *)
  | NS  (** not sign *)
  | P   (** parity: PF *)
  | NP  (** not parity *)
  | L   (** less (signed <): SF<>OF *)
  | NL  (** not less (signed >=) *)
  | LE  (** less or equal (signed <=): ZF or SF<>OF *)
  | NLE (** greater (signed >) *)

let all = [ O; NO; B; NB; Z; NZ; BE; NBE; S; NS; P; NP; L; NL; LE; NLE ]

let number = function
  | O -> 0 | NO -> 1 | B -> 2 | NB -> 3
  | Z -> 4 | NZ -> 5 | BE -> 6 | NBE -> 7
  | S -> 8 | NS -> 9 | P -> 10 | NP -> 11
  | L -> 12 | NL -> 13 | LE -> 14 | NLE -> 15

let of_number = function
  | 0 -> O | 1 -> NO | 2 -> B | 3 -> NB
  | 4 -> Z | 5 -> NZ | 6 -> BE | 7 -> NBE
  | 8 -> S | 9 -> NS | 10 -> P | 11 -> NP
  | 12 -> L | 13 -> NL | 14 -> LE | 15 -> NLE
  | n -> invalid_arg (Printf.sprintf "Cond.of_number: %d" n)

let invert c = of_number (number c lxor 1)

let name = function
  | O -> "o" | NO -> "no" | B -> "b" | NB -> "nb"
  | Z -> "z" | NZ -> "nz" | BE -> "be" | NBE -> "nbe"
  | S -> "s" | NS -> "ns" | P -> "p" | NP -> "np"
  | L -> "l" | NL -> "nl" | LE -> "le" | NLE -> "nle"

(** Flags consulted by the condition (for eflags effect metadata). *)
let flags_read : t -> Eflags.flag list = function
  | O | NO -> [ OF ]
  | B | NB -> [ CF ]
  | Z | NZ -> [ ZF ]
  | BE | NBE -> [ CF; ZF ]
  | S | NS -> [ SF ]
  | P | NP -> [ PF ]
  | L | NL -> [ SF; OF ]
  | LE | NLE -> [ ZF; SF; OF ]

(** [eval c fl] decides the condition against a concrete eflags value. *)
let eval (c : t) (fl : Eflags.t) : bool =
  let f x = Eflags.is_set fl x in
  match c with
  | O -> f OF          | NO -> not (f OF)
  | B -> f CF          | NB -> not (f CF)
  | Z -> f ZF          | NZ -> not (f ZF)
  | BE -> f CF || f ZF | NBE -> not (f CF || f ZF)
  | S -> f SF          | NS -> not (f SF)
  | P -> f PF          | NP -> not (f PF)
  | L -> f SF <> f OF  | NL -> f SF = f OF
  | LE -> f ZF || f SF <> f OF
  | NLE -> not (f ZF || f SF <> f OF)

let equal (a : t) (b : t) = a = b
let pp ppf c = Fmt.string ppf (name c)
