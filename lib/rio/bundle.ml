(** Configuration bundles as a first-class artifact (DESIGN.md §6.9).

    A bundle is the complete tunable surface of the system — every
    engine knob ({!Options.t} including the cost model), the pool
    sizing/supervision block ({!Options.pool_opts}), and per-workload
    opt-level overrides — plus provenance describing where it came
    from.  Bundles serialize to a small JSON dialect (objects, arrays,
    strings, ints, floats, bools, null — parsed and printed here, no
    external dependency), so the autotuner can ship its winner as
    `bundle.json` and `rio_serve --bundle` can load it at boot.

    Deserialization is *validating*: unknown keys, out-of-range values
    (via {!Options.validate} / {!Options.validate_pool}, also applied
    to every override-projected configuration), malformed JSON, and
    stale [bundle_version]s are all rejected with a typed {!error},
    never an exception.  {!digest} hashes the canonical printed form of
    the semantic payload (engine + pool + sorted overrides, provenance
    excluded), so reordering fields in the file — or rewriting the
    provenance block — does not change a bundle's identity. *)

(* ------------------------------------------------------------------ *)
(* Types                                                              *)
(* ------------------------------------------------------------------ *)

(** Where a bundle came from.  Informational only: excluded from
    {!digest} so re-stamping provenance never changes identity. *)
type provenance = {
  pv_created_by : string;  (** producer, e.g. ["autotune"] or ["hand"] *)
  pv_created_at : string;  (** timestamp or build tag, free-form *)
  pv_objective : string;   (** objective the bundle was tuned against *)
  pv_note : string;
}

let default_provenance =
  { pv_created_by = "hand"; pv_created_at = ""; pv_objective = ""; pv_note = "" }

type t = {
  b_opts : Options.t;                (** engine knobs, incl. cost model *)
  b_pool : Options.pool_opts;        (** pool sizing / supervision *)
  b_overrides : (string * int) list;
      (** per-workload-key opt-level overrides, kept sorted by key *)
  b_provenance : provenance;
}

(** Current serialization format.  Bump on incompatible schema change;
    older files are refused with {!Stale_version}. *)
let format_version = 1

type error =
  | Io_error of string         (** file could not be read/written *)
  | Parse_error of string      (** malformed JSON *)
  | Unknown_key of string      (** object key not in the schema, path-qualified *)
  | Bad_value of string * string  (** field path, what is wrong with it *)
  | Stale_version of int       (** [bundle_version] ≠ {!format_version} *)
  | Invalid_bundle of string   (** rejected by options/pool validation *)

let error_to_string = function
  | Io_error m -> "bundle i/o error: " ^ m
  | Parse_error m -> "bundle parse error: " ^ m
  | Unknown_key k -> Printf.sprintf "bundle has unknown key %S" k
  | Bad_value (f, m) -> Printf.sprintf "bundle field %S: %s" f m
  | Stale_version v ->
      Printf.sprintf
        "bundle version %d is not supported (this build reads version %d)" v
        format_version
  | Invalid_bundle m -> "invalid bundle: " ^ m

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* JSON dialect                                                       *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let json_to_buf buf (j : json) =
  let add = Buffer.add_string buf in
  let escape s =
    String.iter
      (fun c ->
        match c with
        | '"' -> add "\\\""
        | '\\' -> add "\\\\"
        | '\n' -> add "\\n"
        | '\t' -> add "\\t"
        | '\r' -> add "\\r"
        | c when Char.code c < 0x20 -> add (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s
  in
  let rec go ind j =
    match j with
    | Null -> add "null"
    | Bool b -> add (if b then "true" else "false")
    | Int i -> add (string_of_int i)
    | Float f ->
        (* %.17g round-trips every float; trim to a canonical form *)
        let s = Printf.sprintf "%.17g" f in
        add (if String.contains s '.' || String.contains s 'e'
             || String.contains s 'n' (* nan/inf *)
             then s else s ^ ".0")
    | Str s -> add "\""; escape s; add "\""
    | Arr [] -> add "[]"
    | Arr xs ->
        add "[";
        List.iteri (fun i x -> if i > 0 then add ", "; go ind x) xs;
        add "]"
    | Obj [] -> add "{}"
    | Obj kvs ->
        let pad = String.make (ind + 2) ' ' in
        add "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then add ",\n";
            add pad; add "\""; escape k; add "\": ";
            go (ind + 2) v)
          kvs;
        add "\n"; add (String.make ind ' '); add "}"
  in
  go 0 j

let json_to_string (j : json) : string =
  let buf = Buffer.create 1024 in
  json_to_buf buf j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(** Recursive-descent parser for the dialect above.  Duplicate object
    keys are rejected (they would make round-tripping ambiguous). *)
let json_of_string (s : string) : (json, error) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    (* report a 1-based line number for hand-edited bundles *)
    let line = ref 1 in
    for i = 0 to min !pos (n - 1) - 1 do
      if s.[i] = '\n' then incr line
    done;
    Error (Parse_error (Printf.sprintf "line %d: %s" !line msg))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then (incr pos; Ok ())
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; Ok v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    let* () = expect '"' in
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos; Ok (Buffer.contents buf)
        | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape"
            else (
              (match s.[!pos] with
              | '"' -> Buffer.add_char buf '"'; incr pos
              | '\\' -> Buffer.add_char buf '\\'; incr pos
              | '/' -> Buffer.add_char buf '/'; incr pos
              | 'n' -> Buffer.add_char buf '\n'; incr pos
              | 't' -> Buffer.add_char buf '\t'; incr pos
              | 'r' -> Buffer.add_char buf '\r'; incr pos
              | 'b' -> Buffer.add_char buf '\b'; incr pos
              | 'u' ->
                  (* only codepoints < 0x80 are ever emitted by the
                     printer; decode those, pass others through raw *)
                  if !pos + 4 < n then begin
                    (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                    | Some c when c < 0x80 -> Buffer.add_char buf (Char.chr c)
                    | _ -> Buffer.add_string buf ("\\u" ^ String.sub s (!pos + 1) 4));
                    pos := !pos + 5
                  end
                  else incr pos
              | c -> Buffer.add_char buf c; incr pos);
              go ())
        | c -> Buffer.add_char buf c; incr pos; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do incr pos done;
    let tok = String.sub s start (!pos - start) in
    if String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E'
    then
      match float_of_string_opt tok with
      | Some f -> Ok (Float f)
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Ok (Int i)
      | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        let rec fields acc =
          skip_ws ();
          match peek () with
          | Some '}' -> incr pos; Ok (Obj (List.rev acc))
          | _ ->
              let* k = parse_string () in
              if List.mem_assoc k acc then fail (Printf.sprintf "duplicate key %S" k)
              else
                let* () = (skip_ws (); expect ':') in
                let* v = parse_value () in
                let acc = (k, v) :: acc in
                skip_ws ();
                (match peek () with
                | Some ',' -> incr pos; fields acc
                | Some '}' -> incr pos; Ok (Obj (List.rev acc))
                | _ -> fail "expected ',' or '}'")
        in
        fields []
    | Some '[' ->
        incr pos;
        let rec elems acc =
          skip_ws ();
          match peek () with
          | Some ']' -> incr pos; Ok (Arr (List.rev acc))
          | _ ->
              let* v = parse_value () in
              let acc = v :: acc in
              skip_ws ();
              (match peek () with
              | Some ',' -> incr pos; elems acc
              | Some ']' -> incr pos; Ok (Arr (List.rev acc))
              | _ -> fail "expected ',' or ']'")
        in
        elems []
    | Some '"' -> (match parse_string () with Ok s -> Ok (Str s) | Error e -> Error e)
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let* v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage after document" else Ok v

(* ------------------------------------------------------------------ *)
(* Typed field access                                                 *)
(* ------------------------------------------------------------------ *)

(** Every schema object is read through [fields]: a closed key list —
    anything else is {!Unknown_key} — with per-field typed getters that
    default to the hand-tuned values when a key is absent, so terse
    hand-written bundles stay loadable. *)
let check_keys ~ctx allowed kvs =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) kvs with
  | Some (k, _) -> Error (Unknown_key (if ctx = "" then k else ctx ^ "." ^ k))
  | None -> Ok ()

let path ctx k = if ctx = "" then k else ctx ^ "." ^ k

let get_bool ~ctx kvs k ~default =
  match List.assoc_opt k kvs with
  | None -> Ok default
  | Some (Bool b) -> Ok b
  | Some _ -> Error (Bad_value (path ctx k, "expected a boolean"))

let get_int ~ctx kvs k ~default =
  match List.assoc_opt k kvs with
  | None -> Ok default
  | Some (Int i) -> Ok i
  | Some _ -> Error (Bad_value (path ctx k, "expected an integer"))

let get_int_opt ~ctx kvs k ~default =
  match List.assoc_opt k kvs with
  | None -> Ok default
  | Some Null -> Ok None
  | Some (Int i) -> Ok (Some i)
  | Some _ -> Error (Bad_value (path ctx k, "expected an integer or null"))

let get_float_opt ~ctx kvs k ~default =
  match List.assoc_opt k kvs with
  | None -> Ok default
  | Some Null -> Ok None
  | Some (Float f) -> Ok (Some f)
  | Some (Int i) -> Ok (Some (float_of_int i))
  | Some _ -> Error (Bad_value (path ctx k, "expected a number or null"))

let get_str ~ctx kvs k ~default =
  match List.assoc_opt k kvs with
  | None -> Ok default
  | Some (Str s) -> Ok s
  | Some _ -> Error (Bad_value (path ctx k, "expected a string"))

let get_obj ~ctx kvs k =
  match List.assoc_opt k kvs with
  | None -> Ok None
  | Some (Obj o) -> Ok (Some o)
  | Some Null -> Ok None
  | Some _ -> Error (Bad_value (path ctx k, "expected an object or null"))

let get_pass_list ~ctx kvs k ~default =
  match List.assoc_opt k kvs with
  | None -> Ok default
  | Some (Arr xs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Str s :: rest -> (
            match Options.pass_of_name s with
            | Some p -> go (p :: acc) rest
            | None ->
                Error
                  (Bad_value
                     ( path ctx k,
                       Printf.sprintf "unknown optimizer pass %S" s )))
        | _ -> Error (Bad_value (path ctx k, "expected an array of pass names"))
      in
      go [] xs
  | Some _ -> Error (Bad_value (path ctx k, "expected an array of pass names"))

(* ------------------------------------------------------------------ *)
(* Schema: printer                                                    *)
(* ------------------------------------------------------------------ *)

let costs_to_json (c : Options.costs) : json =
  Obj
    [
      ("context_switch", Int c.context_switch);
      ("ibl_lookup", Int c.ibl_lookup);
      ("stub_exec", Int c.stub_exec);
      ("bb_build_base", Int c.bb_build_base);
      ("bb_build_per_insn", Int c.bb_build_per_insn);
      ("trace_build_per_insn", Int c.trace_build_per_insn);
      ("clean_call", Int c.clean_call);
      ("replace_fragment", Int c.replace_fragment);
      ("audit_per_fragment", Int c.audit_per_fragment);
      ("evict_fragment", Int c.evict_fragment);
      ("opt_per_insn_pass", Int c.opt_per_insn_pass);
    ]

let faults_to_json (f : Options.fault_opts option) : json =
  match f with
  | None -> Null
  | Some f ->
      Obj
        [
          ("seed", Int f.fi_seed);
          ("period", Int f.fi_period);
          ("corrupt", Bool f.fi_corrupt);
          ("links", Bool f.fi_links);
          ("hooks", Bool f.fi_hooks);
          ("signals", Bool f.fi_signals);
        ]

let engine_to_json (o : Options.t) : json =
  let opt_int = function None -> Null | Some i -> Int i in
  Obj
    [
      ("emulate", Bool o.emulate);
      ("link_direct", Bool o.link_direct);
      ("link_indirect", Bool o.link_indirect);
      ("enable_traces", Bool o.enable_traces);
      ("trace_threshold", Int o.trace_threshold);
      ("max_trace_blocks", Int o.max_trace_blocks);
      ("max_bb_insns", Int o.max_bb_insns);
      ("cache_capacity", opt_int o.cache_capacity);
      ("flush_policy", Str (Options.flush_policy_name o.flush_policy));
      ("cache_compaction", Bool o.cache_compaction);
      ("quantum", Int o.quantum);
      ("always_save_flags", Bool o.always_save_flags);
      ("sideline", Bool o.sideline);
      ("opt_level", Int o.opt_level);
      ("opt_enable", Arr (List.map (fun p -> Str (Options.pass_name p)) o.opt_enable));
      ("opt_disable", Arr (List.map (fun p -> Str (Options.pass_name p)) o.opt_disable));
      ("reopt_threshold", opt_int o.reopt_threshold);
      ("spec_threshold", Int o.spec_threshold);
      ("spec_max_violations", Int o.spec_max_violations);
      ("max_cycles", Int o.max_cycles);
      ("faults", faults_to_json o.faults);
      ("audit_period", Int o.audit_period);
      ("client_fail_limit", Int o.client_fail_limit);
      ("costs", costs_to_json o.costs);
    ]

let pool_to_json (p : Options.pool_opts) : json =
  Obj
    [
      ("domains", Int p.domains);
      ("max_inflight", Int p.max_inflight);
      ("queue_capacity", Int p.queue_capacity);
      ("affinity", Bool p.affinity);
      ("retries", Int p.retries);
      ("quarantine_threshold", Int p.quarantine_threshold);
      ( "deadline_cycles",
        match p.deadline_cycles with None -> Null | Some c -> Int c );
      ( "deadline_secs",
        match p.deadline_secs with None -> Null | Some s -> Float s );
      ("accept_queue", Int p.accept_queue);
      ("batch_window", Int p.batch_window);
      ("prewarm", Bool p.prewarm);
      ("min_domains", match p.min_domains with None -> Null | Some m -> Int m);
      ("scale_up_depth", Int p.scale_up_depth);
      ("scale_down_depth", Int p.scale_down_depth);
      ("scale_hysteresis", Int p.scale_hysteresis);
    ]

let sorted_overrides ov =
  List.sort (fun (a, _) (b, _) -> compare a b) ov

(** The semantic payload: everything that participates in {!digest},
    in canonical field order with overrides sorted by key. *)
let payload_to_json (b : t) : json =
  Obj
    [
      ("engine", engine_to_json b.b_opts);
      ("pool", pool_to_json b.b_pool);
      ( "overrides",
        Obj (List.map (fun (k, v) -> (k, Int v)) (sorted_overrides b.b_overrides))
      );
    ]

(* FNV-1a, matching Options.digest's mixing. *)
let fnv32 (s : string) : int =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffff_ffff)
    s;
  !h

(** Stable identity of a bundle: FNV-1a over the canonical printed
    payload.  Reordering fields in the file, re-indenting it, or
    editing provenance leaves the digest unchanged; changing any knob
    or override changes it. *)
let digest (b : t) : int = fnv32 (json_to_string (payload_to_json b))

let to_json (b : t) : json =
  match payload_to_json b with
  | Obj payload ->
      Obj
        (("bundle_version", Int format_version)
        :: ("digest", Str (Printf.sprintf "%08x" (digest b)))
        :: ("provenance",
            Obj
              [
                ("created_by", Str b.b_provenance.pv_created_by);
                ("created_at", Str b.b_provenance.pv_created_at);
                ("objective", Str b.b_provenance.pv_objective);
                ("note", Str b.b_provenance.pv_note);
              ])
        :: payload)
  | _ -> assert false

let to_string (b : t) : string = json_to_string (to_json b)

(* ------------------------------------------------------------------ *)
(* Schema: parser                                                     *)
(* ------------------------------------------------------------------ *)

let costs_of_json ~ctx kvs : (Options.costs, error) result =
  let d = Options.default_costs in
  let* () =
    check_keys ~ctx
      [ "context_switch"; "ibl_lookup"; "stub_exec"; "bb_build_base";
        "bb_build_per_insn"; "trace_build_per_insn"; "clean_call";
        "replace_fragment"; "audit_per_fragment"; "evict_fragment";
        "opt_per_insn_pass" ]
      kvs
  in
  let f k dv = get_int ~ctx kvs k ~default:dv in
  let* context_switch = f "context_switch" d.context_switch in
  let* ibl_lookup = f "ibl_lookup" d.ibl_lookup in
  let* stub_exec = f "stub_exec" d.stub_exec in
  let* bb_build_base = f "bb_build_base" d.bb_build_base in
  let* bb_build_per_insn = f "bb_build_per_insn" d.bb_build_per_insn in
  let* trace_build_per_insn = f "trace_build_per_insn" d.trace_build_per_insn in
  let* clean_call = f "clean_call" d.clean_call in
  let* replace_fragment = f "replace_fragment" d.replace_fragment in
  let* audit_per_fragment = f "audit_per_fragment" d.audit_per_fragment in
  let* evict_fragment = f "evict_fragment" d.evict_fragment in
  let* opt_per_insn_pass = f "opt_per_insn_pass" d.opt_per_insn_pass in
  Ok
    {
      Options.context_switch; ibl_lookup; stub_exec; bb_build_base;
      bb_build_per_insn; trace_build_per_insn; clean_call; replace_fragment;
      audit_per_fragment; evict_fragment; opt_per_insn_pass;
    }

let faults_of_json ~ctx kvs : (Options.fault_opts, error) result =
  let d = Options.default_faults in
  let* () = check_keys ~ctx [ "seed"; "period"; "corrupt"; "links"; "hooks"; "signals" ] kvs in
  let* fi_seed = get_int ~ctx kvs "seed" ~default:d.fi_seed in
  let* fi_period = get_int ~ctx kvs "period" ~default:d.fi_period in
  let* fi_corrupt = get_bool ~ctx kvs "corrupt" ~default:d.fi_corrupt in
  let* fi_links = get_bool ~ctx kvs "links" ~default:d.fi_links in
  let* fi_hooks = get_bool ~ctx kvs "hooks" ~default:d.fi_hooks in
  let* fi_signals = get_bool ~ctx kvs "signals" ~default:d.fi_signals in
  if fi_period < 1 then Error (Bad_value (path ctx "period", "must be >= 1"))
  else Ok { Options.fi_seed; fi_period; fi_corrupt; fi_links; fi_hooks; fi_signals }

let engine_of_json ~ctx kvs : (Options.t, error) result =
  let d = Options.default in
  let* () =
    check_keys ~ctx
      [ "emulate"; "link_direct"; "link_indirect"; "enable_traces";
        "trace_threshold"; "max_trace_blocks"; "max_bb_insns";
        "cache_capacity"; "flush_policy"; "cache_compaction"; "quantum";
        "always_save_flags"; "sideline"; "opt_level"; "opt_enable";
        "opt_disable"; "reopt_threshold"; "spec_threshold";
        "spec_max_violations"; "max_cycles"; "faults"; "audit_period";
        "client_fail_limit"; "costs" ]
      kvs
  in
  let* emulate = get_bool ~ctx kvs "emulate" ~default:d.emulate in
  let* link_direct = get_bool ~ctx kvs "link_direct" ~default:d.link_direct in
  let* link_indirect = get_bool ~ctx kvs "link_indirect" ~default:d.link_indirect in
  let* enable_traces = get_bool ~ctx kvs "enable_traces" ~default:d.enable_traces in
  let* trace_threshold = get_int ~ctx kvs "trace_threshold" ~default:d.trace_threshold in
  let* max_trace_blocks = get_int ~ctx kvs "max_trace_blocks" ~default:d.max_trace_blocks in
  let* max_bb_insns = get_int ~ctx kvs "max_bb_insns" ~default:d.max_bb_insns in
  let* cache_capacity = get_int_opt ~ctx kvs "cache_capacity" ~default:d.cache_capacity in
  let* policy_name =
    get_str ~ctx kvs "flush_policy"
      ~default:(Options.flush_policy_name d.flush_policy)
  in
  let* flush_policy =
    match Options.flush_policy_of_name policy_name with
    | Some p -> Ok p
    | None ->
        Error
          (Bad_value
             ( path ctx "flush_policy",
               Printf.sprintf "unknown policy %S (expected \"fifo\" or \"full\")"
                 policy_name ))
  in
  let* cache_compaction = get_bool ~ctx kvs "cache_compaction" ~default:d.cache_compaction in
  let* quantum = get_int ~ctx kvs "quantum" ~default:d.quantum in
  let* always_save_flags = get_bool ~ctx kvs "always_save_flags" ~default:d.always_save_flags in
  let* sideline = get_bool ~ctx kvs "sideline" ~default:d.sideline in
  let* opt_level = get_int ~ctx kvs "opt_level" ~default:d.opt_level in
  let* opt_enable = get_pass_list ~ctx kvs "opt_enable" ~default:d.opt_enable in
  let* opt_disable = get_pass_list ~ctx kvs "opt_disable" ~default:d.opt_disable in
  let* reopt_threshold = get_int_opt ~ctx kvs "reopt_threshold" ~default:d.reopt_threshold in
  let* spec_threshold = get_int ~ctx kvs "spec_threshold" ~default:d.spec_threshold in
  let* spec_max_violations =
    get_int ~ctx kvs "spec_max_violations" ~default:d.spec_max_violations
  in
  let* max_cycles = get_int ~ctx kvs "max_cycles" ~default:d.max_cycles in
  let* faults =
    let* fobj = get_obj ~ctx kvs "faults" in
    match fobj with
    | None -> Ok None
    | Some f ->
        let* f = faults_of_json ~ctx:(path ctx "faults") f in
        Ok (Some f)
  in
  let* audit_period = get_int ~ctx kvs "audit_period" ~default:d.audit_period in
  let* client_fail_limit = get_int ~ctx kvs "client_fail_limit" ~default:d.client_fail_limit in
  let* costs =
    let* cobj = get_obj ~ctx kvs "costs" in
    match cobj with
    | None -> Ok d.costs
    | Some c -> costs_of_json ~ctx:(path ctx "costs") c
  in
  Ok
    {
      Options.emulate; link_direct; link_indirect; enable_traces;
      trace_threshold; max_trace_blocks; max_bb_insns; cache_capacity;
      flush_policy; cache_compaction; quantum; always_save_flags; sideline;
      opt_level; opt_enable; opt_disable; reopt_threshold; spec_threshold;
      spec_max_violations; max_cycles; faults; audit_period;
      client_fail_limit; costs;
    }

(* {!Options.validate} only checks the combinations the engine itself
   would trip over; a bundle is an external artifact, so the knobs the
   autotuner sweeps get their ranges enforced at the parse boundary
   with a field-qualified error. *)
let engine_of_json ~ctx kvs : (Options.t, error) result =
  let* o = engine_of_json ~ctx kvs in
  let pos k v =
    if v >= 1 then Ok ()
    else Error (Bad_value (path ctx k, Printf.sprintf "must be >= 1 (got %d)" v))
  in
  let* () = pos "trace_threshold" o.Options.trace_threshold in
  let* () = pos "max_trace_blocks" o.Options.max_trace_blocks in
  let* () = pos "max_bb_insns" o.Options.max_bb_insns in
  let* () = pos "quantum" o.Options.quantum in
  let* () = pos "max_cycles" o.Options.max_cycles in
  if o.Options.audit_period < 0 then
    Error (Bad_value (path ctx "audit_period", "must be >= 0"))
  else Ok o

let pool_of_json ~ctx kvs : (Options.pool_opts, error) result =
  let d = Options.default_pool in
  let* () =
    check_keys ~ctx
      [ "domains"; "max_inflight"; "queue_capacity"; "affinity"; "retries";
        "quarantine_threshold"; "deadline_cycles"; "deadline_secs";
        "accept_queue"; "batch_window"; "prewarm"; "min_domains";
        "scale_up_depth"; "scale_down_depth"; "scale_hysteresis" ]
      kvs
  in
  let* domains = get_int ~ctx kvs "domains" ~default:d.domains in
  let* max_inflight = get_int ~ctx kvs "max_inflight" ~default:d.max_inflight in
  let* queue_capacity = get_int ~ctx kvs "queue_capacity" ~default:d.queue_capacity in
  let* affinity = get_bool ~ctx kvs "affinity" ~default:d.affinity in
  let* retries = get_int ~ctx kvs "retries" ~default:d.retries in
  let* quarantine_threshold =
    get_int ~ctx kvs "quarantine_threshold" ~default:d.quarantine_threshold
  in
  let* deadline_cycles = get_int_opt ~ctx kvs "deadline_cycles" ~default:d.deadline_cycles in
  let* deadline_secs = get_float_opt ~ctx kvs "deadline_secs" ~default:d.deadline_secs in
  let* accept_queue = get_int ~ctx kvs "accept_queue" ~default:d.accept_queue in
  let* batch_window = get_int ~ctx kvs "batch_window" ~default:d.batch_window in
  let* prewarm = get_bool ~ctx kvs "prewarm" ~default:d.prewarm in
  let* min_domains = get_int_opt ~ctx kvs "min_domains" ~default:d.min_domains in
  let* scale_up_depth = get_int ~ctx kvs "scale_up_depth" ~default:d.scale_up_depth in
  let* scale_down_depth =
    get_int ~ctx kvs "scale_down_depth" ~default:d.scale_down_depth
  in
  let* scale_hysteresis =
    get_int ~ctx kvs "scale_hysteresis" ~default:d.scale_hysteresis
  in
  Ok
    {
      Options.domains; max_inflight; queue_capacity; affinity; retries;
      quarantine_threshold; deadline_cycles; deadline_secs;
      accept_queue; batch_window; prewarm; min_domains;
      scale_up_depth; scale_down_depth; scale_hysteresis;
    }

let overrides_of_json ~ctx kvs : ((string * int) list, error) result =
  let rec go acc = function
    | [] -> Ok (sorted_overrides (List.rev acc))
    | (k, Int lvl) :: rest ->
        if lvl < 0 || lvl > 3 then
          Error
            (Bad_value
               ( path ctx k,
                 Printf.sprintf "override opt level must be 0..3 (got %d)" lvl ))
        else go ((k, lvl) :: acc) rest
    | (k, _) :: _ -> Error (Bad_value (path ctx k, "expected an integer opt level"))
  in
  go [] kvs

let provenance_of_json ~ctx kvs : (provenance, error) result =
  let d = default_provenance in
  let* () = check_keys ~ctx [ "created_by"; "created_at"; "objective"; "note" ] kvs in
  let* pv_created_by = get_str ~ctx kvs "created_by" ~default:d.pv_created_by in
  let* pv_created_at = get_str ~ctx kvs "created_at" ~default:d.pv_created_at in
  let* pv_objective = get_str ~ctx kvs "objective" ~default:d.pv_objective in
  let* pv_note = get_str ~ctx kvs "note" ~default:d.pv_note in
  Ok { pv_created_by; pv_created_at; pv_objective; pv_note }

(* ------------------------------------------------------------------ *)
(* Assembly + validation                                              *)
(* ------------------------------------------------------------------ *)

(** Engine options actually used when booting workload [key]: the
    bundle's base options with the per-workload opt-level override
    applied.  Demoting to level 0 turns the optimizer fully off, so
    level-gated knobs ([opt_enable], [reopt_threshold]) are dropped
    along with it — the projected configuration is always valid when
    the base one is. *)
let opts_for (b : t) (key : string) : Options.t =
  match List.assoc_opt key b.b_overrides with
  | None -> b.b_opts
  | Some 0 ->
      { b.b_opts with opt_level = 0; opt_enable = []; reopt_threshold = None }
  | Some lvl -> { b.b_opts with opt_level = lvl }

(** Semantic validation of an assembled bundle: the base options, the
    pool block, and every override-projected configuration must pass
    the {!Options} validators. *)
let validate (b : t) : (unit, error) result =
  let* () =
    match Options.validate b.b_opts with
    | Ok () -> Ok ()
    | Error m -> Error (Invalid_bundle m)
  in
  let* () =
    match Options.validate_pool b.b_pool with
    | Ok () -> Ok ()
    | Error m -> Error (Invalid_bundle m)
  in
  let rec check = function
    | [] -> Ok ()
    | (k, _) :: rest -> (
        match Options.validate (opts_for b k) with
        | Ok () -> check rest
        | Error m ->
            Error (Invalid_bundle (Printf.sprintf "override for %S: %s" k m)))
  in
  check b.b_overrides

let of_json (j : json) : (t, error) result =
  match j with
  | Obj kvs ->
      let* () =
        check_keys ~ctx:""
          [ "bundle_version"; "digest"; "provenance"; "engine"; "pool"; "overrides" ]
          kvs
      in
      let* version = get_int ~ctx:"" kvs "bundle_version" ~default:(-1) in
      if version = -1 then
        Error (Bad_value ("bundle_version", "required field is missing"))
      else if version <> format_version then Error (Stale_version version)
      else
        let* b_opts =
          let* e = get_obj ~ctx:"" kvs "engine" in
          match e with
          | None -> Ok Options.default
          | Some e -> engine_of_json ~ctx:"engine" e
        in
        let* b_pool =
          let* p = get_obj ~ctx:"" kvs "pool" in
          match p with
          | None -> Ok Options.default_pool
          | Some p -> pool_of_json ~ctx:"pool" p
        in
        let* b_overrides =
          let* o = get_obj ~ctx:"" kvs "overrides" in
          match o with
          | None -> Ok []
          | Some o -> overrides_of_json ~ctx:"overrides" o
        in
        let* b_provenance =
          let* p = get_obj ~ctx:"" kvs "provenance" in
          match p with
          | None -> Ok default_provenance
          | Some p -> provenance_of_json ~ctx:"provenance" p
        in
        let b = { b_opts; b_pool; b_overrides; b_provenance } in
        let* () = validate b in
        let* () =
          (* the embedded digest, when present, must match the payload:
             catches bundles whose knobs were edited by hand without
             re-stamping *)
          let* ds = get_str ~ctx:"" kvs "digest" ~default:"" in
          if ds = "" || ds = Printf.sprintf "%08x" (digest b) then Ok ()
          else
            Error
              (Bad_value
                 ( "digest",
                   Printf.sprintf
                     "embedded digest %s does not match payload digest %08x \
                      (knobs edited without re-stamping?)"
                     ds (digest b) ))
        in
        Ok b
  | _ -> Error (Parse_error "top-level value must be an object")

let of_string (s : string) : (t, error) result =
  let* j = json_of_string s in
  of_json j

(* ------------------------------------------------------------------ *)
(* File I/O                                                           *)
(* ------------------------------------------------------------------ *)

let load (path : string) : (t, error) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error (Io_error m)
  | s -> of_string s

let save (path : string) (b : t) : (unit, error) result =
  match
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (to_string b))
  with
  | exception Sys_error m -> Error (Io_error m)
  | () -> Ok ()
