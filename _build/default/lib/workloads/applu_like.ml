(** applu-like: SSOR solver with mixed FP/integer work (SPEC2000
    173.applu).

    Character: FP relaxation sweeps interleaved with integer index
    arithmetic and per-row helper calls — a middle ground between the
    pure stencils and the call-heavy integer codes. *)

open Asm.Dsl

let n = 96
let sweeps = 40

let omega = mb ebp ~disp:(-8)

let text =
  [
    label "main";
    mov ebp esp;
    sub esp (i 32);
    li ebx "consts";
    fld f0 (mb ebx);
    fst_ omega f0;
    mov edx (i 0);
    label "sweep";
    mov edi (i 1);
    label "row";
    call "relax_row";
    inc edi;
    cmp edi (i (n - 1));
    j l "row";
    inc edx;
    cmp edx (i sweeps);
    j l "sweep";
    (* checksum *)
    mov edi (i 0);
    mov ecx (i 0);
    label "sum";
    ins (fun env ->
        Isa.Insn.mk_fld f0
          (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "x") ()));
    cvtfi eax f0;
    add ecx eax;
    add edi (i 11);
    cmp edi (i n);
    j l "sum";
    out ecx;
    hlt;
    (* one red-black-ish relaxation over row edi *)
    label "relax_row";
    mov esi edi;
    and_ esi (i 1);                      (* parity decides the blend *)
    fld f1 omega;                        (* spilled omega reload *)
    ins (fun env ->
        Isa.Insn.mk_fld f2
          (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "x" - 8) ()));
    ins (fun env ->
        Isa.Insn.mk_fld f3
          (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "x" + 8) ()));
    fadd f2 (fr f3);
    fmul f2 (fr f1);
    test esi esi;
    j z "even";
    fld f1 omega;                        (* reloaded across the branch *)
    fmul f2 (fr f1);
    label "even";
    ins (fun env ->
        Isa.Insn.mk_fst
          (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "x") ())
          f2);
    ret;
  ]

let data =
  [ label "consts"; float64 [ 0.61 ]; label "x"; float64 (Workload.lcg_floats ~seed:17 (n + 2)) ]

let workload =
  Workload.make ~name:"applu" ~spec_name:"173.applu" ~fp:true
    ~description:"SSOR relaxation rows behind helper calls: FP + calls mix"
    (program ~name:"applu" ~entry:"main" ~text ~data ())
