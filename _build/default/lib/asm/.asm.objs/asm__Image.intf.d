lib/asm/image.mli: Bytes Vm
