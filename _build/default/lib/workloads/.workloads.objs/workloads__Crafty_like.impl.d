lib/workloads/crafty_like.ml: Asm Workload
