(** Domain-parallel serving driver: shard a request stream across a
    pool of worker domains with warm code-cache reuse and
    work-stealing dispatch — as a one-shot batch harness, a resident
    socket server, or a client driving one (DESIGN.md §6.10).

    {v
    dune exec bin/rio_serve.exe -- -d 4 -n 64
    dune exec bin/rio_serve.exe -- -d 2 -n 32 -w gzip -w parser -c rlr --stats
    dune exec bin/rio_serve.exe -- -d 4 -n 64 --faults 7
    # resident server with a pre-warmed pool, and a client against it:
    dune exec bin/rio_serve.exe -- -d 4 --prewarm --listen unix:/tmp/rio.sock
    dune exec bin/rio_serve.exe -- -n 64 --connect unix:/tmp/rio.sock --quit
    v}

    Each request is a (workload, input-seed) pair run to completion; a
    native reference execution is computed per request up front and
    every pool result is checked byte-for-byte against it.  Exit
    status is non-zero on any divergence. *)

open Cmdliner
open Workloads

let default_workloads = [ "gzip"; "parser"; "perlbmk"; "gcc" ]

let client_of_name = function
  | "null" -> Rio.Types.null_client
  | "rlr" -> Clients.Rlr.make ()
  | "strength" -> Clients.Strength.make ~on_bb:false
  | "ibdispatch" -> Clients.Ibdispatch.make ()
  | "ctraces" -> Stdlib.fst (Clients.Ctraces.make ())
  | "combined" -> Clients.Compose.all_four ()
  | n -> failwith ("unknown client: " ^ n)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let parse_addr s =
  match Rio.Server.addr_of_string s with
  | Ok a -> a
  | Error msg ->
      Printf.eprintf "rio_serve: %s\n" msg;
      exit 2

let run nd nreq workload_names client_name seed0 affinity max_inflight faults
    chaos retries quarantine deadline_cycles deadline_secs opt_level
    spec_threshold spec_max_violations bundle_path cache_dir load_cache
    save_cache listen_addr connect_addr prewarm accept_queue batch_window
    min_domains send_quit show_stats quiet =
  if listen_addr <> None && connect_addr <> None then begin
    Printf.eprintf "rio_serve: --listen and --connect are exclusive\n";
    exit 2
  end;
  if (load_cache || save_cache) && cache_dir = None then begin
    Printf.eprintf "rio_serve: --load-cache/--save-cache need --cache-dir\n";
    exit 2
  end;
  (* --bundle: a tuned configuration artifact (bench/main.exe autotune)
     supersedes the per-knob engine flags (-O, --spec-threshold,
     --spec-max-violations) and supplies the pool-opts base; explicit
     pool/supervision flags and the fault/chaos overlays still apply. *)
  let bundle =
    match bundle_path with
    | None -> None
    | Some path -> (
        match Rio.Bundle.load path with
        | Ok b -> Some b
        | Error e ->
            Printf.eprintf "rio_serve: --bundle %s: %s\n" path
              (Rio.Bundle.error_to_string e);
            exit 2)
  in
  let pool_base =
    match bundle with
    | Some b -> b.Rio.Bundle.b_pool
    | None -> Rio.Options.default_pool
  in
  let cfg =
    {
      pool_base with
      Rio.Options.domains = nd;
      max_inflight;
      affinity;
      retries;
      quarantine_threshold = quarantine;
      deadline_cycles;
      deadline_secs;
      (* serving knobs: explicit flags override the bundle's values *)
      prewarm = (prewarm || pool_base.Rio.Options.prewarm);
      accept_queue =
        Option.value ~default:pool_base.Rio.Options.accept_queue accept_queue;
      batch_window =
        Option.value ~default:pool_base.Rio.Options.batch_window batch_window;
      min_domains =
        (match min_domains with
        | Some _ -> min_domains
        | None -> pool_base.Rio.Options.min_domains);
    }
  in
  (match Rio.Options.validate_pool cfg with
   | Ok () -> ()
   | Error msg ->
       Printf.eprintf "rio_serve: invalid pool configuration: %s\n" msg;
       exit 2);
  let workload_names =
    if workload_names = [] then default_workloads else workload_names
  in
  let wls =
    List.map
      (fun name ->
        match Suite.by_name name with
        | Some w -> Workload.serving_variant w
        | None ->
            Printf.eprintf "unknown workload %S\n" name;
            exit 1)
      workload_names
  in
  (try ignore (client_of_name client_name)
   with Failure msg ->
     Printf.eprintf "%s\n" msg;
     exit 1);
  let fault_opts =
    match faults with
    | None -> None
    | Some seed -> Some { Rio.Options.default_faults with fi_seed = seed }
  in
  (* fault/chaos instrumentation overlays whatever configuration is in
     force — flags or bundle *)
  let overlay o =
    {
      o with
      Rio.Options.faults = fault_opts;
      audit_period = (match faults with Some _ -> 1 | None -> 0);
    }
  in
  let opts =
    match bundle with
    | Some b -> overlay b.Rio.Bundle.b_opts
    | None ->
        overlay
          {
            Rio.Options.default with
            max_cycles = max_int / 2;
            opt_level;
            spec_threshold;
            spec_max_violations;
          }
  in
  (* per-workload engine options: the bundle's overrides reach each
     booted instance here *)
  let opts_for name =
    match bundle with
    | Some b -> overlay (Rio.Bundle.opts_for b name)
    | None -> opts
  in
  (match Rio.Options.validate opts with
   | Ok () -> ()
   | Error msg ->
       Printf.eprintf "rio_serve: invalid options: %s\n" msg;
       exit 2);
  match connect_addr with
  | Some addr_s ->
      (* client mode: no local pool — stream the request mix to a
         resident server and check its responses against locally
         computed native references *)
      let addr = parse_addr addr_s in
      let reqs =
        List.init nreq (fun i ->
            let w = List.nth wls (i mod List.length wls) in
            let seed = seed0 + i in
            let input = Workload.request_input ~seed @ w.Workload.input in
            let native = Workload.run_native (Workload.with_input w input) in
            if not native.Workload.ok then begin
              Printf.eprintf "native reference failed for %s seed %d: %s\n"
                w.Workload.name seed native.Workload.detail;
              exit 1
            end;
            (w.Workload.name, seed, input, Some native.Workload.output))
      in
      let fd = Rio.Server.connect addr in
      let t0 = Unix.gettimeofday () in
      let resps = Rio.Server.client_run fd reqs in
      let wall = Unix.gettimeofday () -. t0 in
      if send_quit then Rio.Wire.send_msg fd Rio.Wire.Quit;
      Unix.close fd;
      let count st =
        List.length
          (List.filter (fun r -> r.Rio.Wire.r_status = st) resps)
      in
      let ok = count Rio.Wire.St_ok in
      let failed = count Rio.Wire.St_failed in
      let shed = count Rio.Wire.St_shed in
      let other = List.length resps - ok - failed - shed in
      let lat =
        Array.of_list
          (List.filter_map
             (fun r ->
               if r.Rio.Wire.r_status = Rio.Wire.St_ok then
                 Some (float_of_int r.Rio.Wire.r_cycles)
               else None)
             resps)
      in
      Array.sort compare lat;
      if not quiet then begin
        Printf.printf
          "%s: %d requests in %.3fs — ok %d, failed %d, shed %d, other %d\n"
          (Rio.Server.addr_to_string addr)
          (List.length resps) wall ok failed shed other;
        if Array.length lat > 0 then
          Printf.printf
            "  sim-latency p50 %.0f  p95 %.0f  p99 %.0f cycles\n"
            (percentile lat 0.50) (percentile lat 0.95) (percentile lat 0.99)
      end;
      List.iter
        (fun r ->
          if r.Rio.Wire.r_status = Rio.Wire.St_failed then
            Printf.eprintf "FAILED: request id %d: [%s]\n" r.Rio.Wire.r_id
              (String.concat "; "
                 (List.map string_of_int r.Rio.Wire.r_output)))
        resps;
      if failed = 0 && other = 0 then 0 else 1
  | None ->
  let boots =
    List.map
      (fun w ->
        let image = Asm.Assemble.assemble w.Workload.program in
        ( w.Workload.name,
          {
            Rio.Pool.boot_machine =
              (fun () ->
                let m = Vm.Machine.create () in
                Asm.Image.load_cold m image;
                m);
            boot_entry = image.Asm.Image.entry;
            boot_stack_top = Asm.Image.default_stack_top;
            boot_restore = (fun m ~zeroed -> Asm.Image.restore m image ~zeroed);
            boot_opts = opts_for w.Workload.name;
            boot_client = (fun () -> client_of_name client_name);
            boot_image_digest = Asm.Image.digest image;
            boot_cache =
              (if load_cache then
                 Option.map
                   (fun dir ->
                     Filename.concat dir
                       (Rio.Pool.cache_file_name w.Workload.name))
                   cache_dir
               else None);
          } ))
      wls
  in
  let chaos_opts =
    Option.map
      (fun seed -> { Rio.Faultinject.default_chaos with ch_seed = seed })
      chaos
  in
  let pool = Rio.Pool.create ~cfg ?chaos:chaos_opts ~boots () in
  match listen_addr with
  | Some addr_s ->
      (* server mode: pre-warmed pool behind the socket front-end; the
         loop runs until a client sends the quit op *)
      let addr = parse_addr addr_s in
      let lfd = Rio.Server.listen addr in
      if not quiet then
        Printf.printf "rio_serve: listening on %s (%d domain%s%s)\n%!"
          (Rio.Server.addr_to_string addr)
          nd
          (if nd = 1 then "" else "s")
          (if cfg.Rio.Options.prewarm then ", pre-warmed" else "");
      let sst = Rio.Server.run pool [ lfd ] in
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (match addr with
      | Rio.Server.Unix_addr p -> (try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
      | Rio.Server.Tcp_addr _ -> ());
      ignore (Rio.Pool.drain pool);
      let snap = Rio.Pool.stats pool in
      (if save_cache then
         match cache_dir with
         | Some dir -> ignore (Rio.Pool.save_caches pool ~dir)
         | None -> ());
      Rio.Pool.shutdown pool;
      if not quiet then begin
        Printf.printf
          "served %d request(s) over %d connection(s): %d response(s), %d \
           typed reject(s)\n"
          sst.Rio.Server.sv_requests sst.Rio.Server.sv_accepted
          sst.Rio.Server.sv_responses sst.Rio.Server.sv_rejects;
        let s = snap.Rio.Pool.snap_stats in
        Printf.printf
          "  warm hits %d  cold boots %d  prewarm boots %d  shed %d  \
           batched %d\n"
          snap.Rio.Pool.snap_warm_hits snap.Rio.Pool.snap_cold_boots
          snap.Rio.Pool.snap_prewarm_boots snap.Rio.Pool.snap_shed
          snap.Rio.Pool.snap_batch_hits;
        Printf.printf "  sim-latency p50 %d  p99 %d cycles\n"
          (Rio.Stats.hist_percentile s.Rio.Stats.serve_lat 50)
          (Rio.Stats.hist_percentile s.Rio.Stats.serve_lat 99)
      end;
      0
  | None ->
  (* the request stream, interleaved across workloads, with a native
     reference execution per request *)
  let requests =
    List.init nreq (fun i ->
        let w = List.nth wls (i mod List.length wls) in
        let seed = seed0 + i in
        let input = Workload.request_input ~seed @ w.Workload.input in
        let native = Workload.run_native (Workload.with_input w input) in
        if not native.Workload.ok then begin
          Printf.eprintf "native reference failed for %s seed %d: %s\n"
            w.Workload.name seed native.Workload.detail;
          exit 1
        end;
        {
          Rio.Pool.req_id = i;
          req_key = w.Workload.name;
          req_seed = seed;
          req_input = input;
          req_expect = Some native.Workload.output;
        })
  in
  let t0 = Unix.gettimeofday () in
  let rejected = ref 0 in
  List.iter
    (fun r ->
      match Rio.Pool.submit pool r with
      | Ok () -> ()
      | Error e ->
          incr rejected;
          Printf.eprintf "REJECTED: %s seed %d: %s\n" r.Rio.Pool.req_key
            r.Rio.Pool.req_seed
            (Rio.Pool.reject_to_string e))
    requests;
  let results = Rio.Pool.drain pool in
  let wall = Unix.gettimeofday () -. t0 in
  let snap = Rio.Pool.stats pool in
  (* snapshot-on-drain: persist every warm cache before the fleet goes
     away, so the next run's --load-cache warm-boots from it *)
  (if save_cache then
     match cache_dir with
     | Some dir ->
         let saved = Rio.Pool.save_caches pool ~dir in
         if not quiet then
           List.iter
             (fun (key, path, n) ->
               Printf.printf "saved %d fragment(s) of %s to %s\n" n key path)
             saved
     | None -> ());
  Rio.Pool.shutdown pool;
  (* correctness: every result must match its native reference *)
  let bad = List.filter (fun r -> not r.Rio.Pool.res_ok) results in
  List.iter
    (fun r ->
      Printf.eprintf "DIVERGENCE: %s seed %d on domain %d (%s): [%s]\n"
        r.Rio.Pool.res_key r.Rio.Pool.res_seed r.Rio.Pool.res_worker
        (Rio.Engine.stop_reason_to_string r.Rio.Pool.res_reason)
        (String.concat "; " (List.map string_of_int r.Rio.Pool.res_output)))
    bad;
  let insns =
    List.fold_left (fun a r -> a + r.Rio.Pool.res_insns) 0 results
  in
  let cycles =
    List.fold_left (fun a r -> a + r.Rio.Pool.res_cycles) 0 results
  in
  let lat = Array.of_list (List.map (fun r -> r.Rio.Pool.res_secs) results) in
  Array.sort compare lat;
  let warm = List.filter (fun r -> r.Rio.Pool.res_warm) results in
  let cold = List.filter (fun r -> not r.Rio.Pool.res_warm) results in
  let avg_blocks rs =
    if rs = [] then 0.0
    else
      float_of_int
        (List.fold_left (fun a r -> a + r.Rio.Pool.res_blocks_built) 0 rs)
      /. float_of_int (List.length rs)
  in
  if not quiet then begin
    Printf.printf
      "served %d requests (%s) on %d domain%s in %.3fs host time\n"
      (List.length results)
      (String.concat "," workload_names)
      nd
      (if nd = 1 then "" else "s")
      wall;
    (match bundle with
     | Some b ->
         Printf.printf "  bundle %08x (created by %s): %s\n"
           (Rio.Bundle.digest b) b.Rio.Bundle.b_provenance.Rio.Bundle.pv_created_by
           b.Rio.Bundle.b_provenance.Rio.Bundle.pv_note
     | None -> ());
    Printf.printf
      "  %.1f MIPS aggregate (%d simulated insns, %d simulated cycles)\n"
      (float_of_int insns /. wall /. 1e6)
      insns cycles;
    (* the autotuner's objective, for apples-to-apples comparison with
       BENCH_autotune.json (noise-free only with -d 1) *)
    (match bundle with
     | Some _ ->
         let by_wl = Hashtbl.create 16 in
         List.iter
           (fun r ->
             let prev =
               Option.value ~default:(0, 0)
                 (Hashtbl.find_opt by_wl r.Rio.Pool.res_key)
             in
             Hashtbl.replace by_wl r.Rio.Pool.res_key
               (fst prev + r.Rio.Pool.res_cycles, snd prev + 1))
           results;
         let means =
           Hashtbl.fold
             (fun _ (c, n) acc -> (float_of_int c /. float_of_int n) :: acc)
             by_wl []
         in
         if means <> [] then
           Printf.printf
             "  objective: geomean %.0f simulated cycles/request over %d \
              workload(s)\n"
             (exp
                (List.fold_left (fun a x -> a +. log x) 0.0 means
                /. float_of_int (List.length means)))
             (List.length means)
     | None -> ());
    Printf.printf "  latency p50 %.1fms  p95 %.1fms  p99 %.1fms\n"
      (1e3 *. percentile lat 0.50)
      (1e3 *. percentile lat 0.95)
      (1e3 *. percentile lat 0.99);
    Printf.printf "  steals %d  warm hits %d  cold boots %d\n"
      snap.Rio.Pool.snap_steals snap.Rio.Pool.snap_warm_hits
      snap.Rio.Pool.snap_cold_boots;
    if load_cache || snap.Rio.Pool.snap_cache_loads > 0 then
      Printf.printf
        "  persistent cache: loads %d  refused %d  prewarms %d  publishes %d\n"
        snap.Rio.Pool.snap_cache_loads snap.Rio.Pool.snap_cache_refused
        snap.Rio.Pool.snap_prewarms snap.Rio.Pool.snap_profile_publishes;
    Printf.printf
      "  block builds per request: %.1f warm vs %.1f cold (%d/%d requests warm)\n"
      (avg_blocks warm) (avg_blocks cold) (List.length warm)
      (List.length results);
    Printf.printf "  per-domain simulated busy cycles: [%s]\n"
      (String.concat "; "
         (Array.to_list
            (Array.map string_of_int snap.Rio.Pool.snap_busy_cycles)));
    if
      chaos <> None || deadline_cycles <> None || deadline_secs <> None
      || snap.Rio.Pool.snap_crashes > 0
      || snap.Rio.Pool.snap_retries > 0
    then begin
      Printf.printf
        "  supervision: crashes %d  deadline hits %d  retries %d  requeues \
         %d  respawns %d\n"
        snap.Rio.Pool.snap_crashes snap.Rio.Pool.snap_deadline_hits
        snap.Rio.Pool.snap_retries snap.Rio.Pool.snap_requeues
        snap.Rio.Pool.snap_respawns;
      Printf.printf
        "  quarantine: opens %d  closes %d  probes %d  rejected %d  open now \
         %d\n"
        snap.Rio.Pool.snap_quarantine_opens
        snap.Rio.Pool.snap_quarantine_closes snap.Rio.Pool.snap_probes
        snap.Rio.Pool.snap_rejected_quarantined
        snap.Rio.Pool.snap_quarantined_now
    end
  end;
  if show_stats then begin
    Format.printf "aggregate runtime stats (merged across instances):@.";
    Format.printf "%a@." Rio.Stats.pp snap.Rio.Pool.snap_stats;
    Format.printf "%a@." Rio.Stats.pp_cache snap.Rio.Pool.snap_stats;
    if Rio.Options.effective_passes opts <> [] then
      Format.printf "%a@." Rio.Stats.pp_opt snap.Rio.Pool.snap_stats;
    if opts.Rio.Options.opt_level >= 3 then
      Format.printf "%a@." Rio.Stats.pp_spec snap.Rio.Pool.snap_stats;
    if faults <> None then
      Format.printf "%a@." Rio.Stats.pp_faults snap.Rio.Pool.snap_stats
  end;
  let accepted = List.length requests - !rejected in
  let lost = accepted - List.length results in
  if lost > 0 then
    Printf.eprintf "LOST: %d accepted request(s) never produced a result\n"
      lost;
  if bad = [] && lost = 0 then 0 else 1

let cmd =
  let nd =
    Arg.(value & opt int 2 & info [ "d"; "domains" ] ~docv:"N"
           ~doc:"Worker domains in the pool.")
  in
  let nreq =
    Arg.(value & opt int 16 & info [ "n"; "requests" ] ~docv:"N"
           ~doc:"Requests to serve.")
  in
  let workloads =
    Arg.(value & opt_all string [] & info [ "w"; "workload" ] ~docv:"NAME"
           ~doc:"Workload(s) in the request mix; repeatable.  Default: \
                 gzip, parser, perlbmk, gcc.")
  in
  let client =
    Arg.(value & opt string "null" & info [ "c"; "client" ] ~docv:"CLIENT"
           ~doc:"Client attached to every instance (null, rlr, strength, \
                 ibdispatch, ctraces, combined).")
  in
  let seed0 =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S"
           ~doc:"Base request seed; request i uses seed S+i.")
  in
  let affinity =
    Arg.(value & flag & info [ "affinity" ]
           ~doc:"Shard by workload-key hash instead of round-robin.")
  in
  let max_inflight =
    Arg.(value & opt int 64 & info [ "max-inflight" ] ~docv:"N"
           ~doc:"Bound on submitted-but-incomplete requests (backpressure).")
  in
  let faults =
    Arg.(value & opt (some int) None & info [ "faults" ] ~docv:"SEED"
           ~doc:"Enable deterministic fault injection in every instance.")
  in
  let chaos =
    Arg.(value & opt (some int) None & info [ "chaos" ] ~docv:"SEED"
           ~doc:"Enable pool-scope chaos injection (worker crashes, stalls, \
                 poisoned warm instances, hook storms) with this seed; the \
                 supervisor, retry ladder, and quarantine must absorb it.")
  in
  let retries =
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N"
           ~doc:"Retry-ladder depth per request: warm retry, cold retry, \
                 cold retry on another domain.")
  in
  let quarantine =
    Arg.(value & opt int 3 & info [ "quarantine" ] ~docv:"K"
           ~doc:"Quarantine a workload key after K consecutive final \
                 failures; a single probe request may then reopen it.")
  in
  let deadline_cycles =
    Arg.(value & opt (some int) None & info [ "deadline-cycles" ] ~docv:"N"
           ~doc:"Per-request simulated-cycle budget; the watchdog preempts \
                 at the next fragment boundary.")
  in
  let deadline_secs =
    Arg.(value & opt (some float) None & info [ "deadline-secs" ] ~docv:"S"
           ~doc:"Per-request host wall-clock bound (catches stalled \
                 workers).")
  in
  let opt_level =
    Arg.(value & opt int 0 & info [ "O"; "opt" ] ~docv:"N"
           ~doc:"Trace optimization level for every instance (0-3; 3 \
                 adds profile-guided speculation with mid-trace \
                 deoptimization).")
  in
  let spec_threshold =
    Arg.(value & opt int Rio.Options.default.Rio.Options.spec_threshold
         & info [ "spec-threshold" ] ~docv:"N"
             ~doc:"Successor-profile samples required at an exit site \
                   before -O3 speculates on it.")
  in
  let spec_max_violations =
    Arg.(value & opt int Rio.Options.default.Rio.Options.spec_max_violations
         & info [ "spec-max-violations" ] ~docv:"K"
             ~doc:"Guard violations tolerated before a trace is \
                   re-optimized without that assumption.")
  in
  let bundle =
    Arg.(value & opt (some string) None & info [ "bundle" ] ~docv:"FILE"
           ~doc:"Boot from a tuned configuration bundle (bench/main.exe \
                 autotune emits one): its engine options and per-workload \
                 opt-level overrides supersede -O, --spec-threshold and \
                 --spec-max-violations, and its pool options are the base \
                 for the pool flags.  --faults/--chaos still overlay.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Directory for persistent code-cache images \
                 (*.riocache); created on save if missing.")
  in
  let load_cache =
    Arg.(value & flag & info [ "load-cache" ]
           ~doc:"Warm-boot every new instance from its saved cache image \
                 under --cache-dir (relocation replay, no re-emission); \
                 a refused image falls back to a cold boot.")
  in
  let save_cache =
    Arg.(value & flag & info [ "save-cache" ]
           ~doc:"After draining, save each workload's fullest warm \
                 instance to --cache-dir for a later --load-cache run.")
  in
  let listen =
    Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"ADDR"
           ~doc:"Run as a resident server on ADDR (unix:PATH or \
                 tcp:HOST:PORT): accept framed requests over the socket \
                 and stream responses until a client sends the quit op.")
  in
  let connect =
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR"
           ~doc:"Run as a client: stream the request mix to the server \
                 at ADDR and check its responses against local native \
                 references.")
  in
  let prewarm =
    Arg.(value & flag & info [ "prewarm" ]
           ~doc:"Build every (domain, workload) instance at pool boot, \
                 before accepting traffic, so no request ever cold-boots.")
  in
  let accept_queue =
    Arg.(value & opt (some int) None & info [ "accept-queue" ] ~docv:"N"
           ~doc:"Admission bound for the server: once N requests are \
                 admitted but unfinished, further requests are shed with \
                 a typed reject instead of queueing without bound.")
  in
  let batch_window =
    Arg.(value & opt (some int) None & info [ "batch-window" ] ~docv:"N"
           ~doc:"Dequeue-time batching window: a worker looks this deep \
                 into its queue for a request matching the key it just \
                 served (0 disables).")
  in
  let min_domains =
    Arg.(value & opt (some int) None & info [ "min-domains" ] ~docv:"N"
           ~doc:"Enable the queue-depth autoscaler: park idle worker \
                 domains down to N and wake them as queue depth grows.")
  in
  let quit =
    Arg.(value & flag & info [ "quit" ]
           ~doc:"Client mode: send the quit op after the last response, \
                 shutting the server down.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print aggregate runtime statistics (merged across all \
                 warm instances).")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Only report divergences.") in
  let term =
    Term.(
      const run $ nd $ nreq $ workloads $ client $ seed0 $ affinity
      $ max_inflight $ faults $ chaos $ retries $ quarantine
      $ deadline_cycles $ deadline_secs $ opt_level $ spec_threshold
      $ spec_max_violations $ bundle $ cache_dir $ load_cache $ save_cache
      $ listen $ connect $ prewarm $ accept_queue $ batch_window
      $ min_domains $ quit $ stats $ quiet)
  in
  Cmd.v
    (Cmd.info "rio_serve"
       ~doc:"Serve workload requests on a domain-parallel RIO pool")
    term

let () = exit (Cmd.eval' cmd)
