lib/vm/cost.mli: Isa Opcode
