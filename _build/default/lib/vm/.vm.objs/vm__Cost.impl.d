lib/vm/cost.ml: Hashtbl Isa List Opcode Option
