(** Workload infrastructure: synthetic SPEC2000-like programs and
    helpers to run them natively, emulated, or under the RIO runtime.
    Every workload finishes by writing a checksum to the output port,
    so observational-equivalence tests can compare executions exactly. *)

type t = {
  name : string;
  spec_name : string;      (** the SPEC2000 benchmark this models *)
  fp : bool;
  description : string;
  program : Asm.Ast.program;
  input : int list;        (** values served by the [in] port *)
}

val make :
  name:string ->
  spec_name:string ->
  fp:bool ->
  description:string ->
  ?input:int list ->
  Asm.Ast.program ->
  t

(** {2 Deterministic pseudo-random data for data segments} *)

val lcg : ?seed:int -> int -> int list
val lcg_mod : ?seed:int -> int -> int -> int list
val lcg_floats : ?seed:int -> int -> float list

(** {2 Request parameterization (serving)} *)

val request_input : seed:int -> int list
(** The four per-request input words the {!serving_variant} preamble
    consumes, derived deterministically from the request seed. *)

val with_input : t -> int list -> t

val serving_variant : t -> t
(** Wrap a workload for serving: a fixed preamble folds the four
    request words into an output fingerprint, then jumps to the
    original entry.  The text is identical across request seeds, so a
    warm code cache carries over between requests. *)

(** {2 Running} *)

type run_result = {
  output : int list;
  cycles : int;
  insns : int;
  ok : bool;
  detail : string;
}

val run_native :
  ?family:Vm.Cost.family -> ?emulate:bool -> t -> run_result

val run_rio :
  ?family:Vm.Cost.family ->
  ?opts:Rio.Options.t ->
  ?client:Rio.Types.client ->
  t ->
  run_result * Rio.t
