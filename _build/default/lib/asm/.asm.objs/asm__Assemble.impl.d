lib/asm/assemble.ml: Ast Bytes Disasm Encode Hashtbl Image Int32 Int64 Isa List Option Printf String
