(** Processor cost model.

    The simulated machine charges a deterministic cycle cost per
    executed instruction.  The model captures exactly the asymmetries
    the paper's evaluation depends on:

    - a {e processor family} knob: on [Pentium4], [inc]/[dec] pay a
      flag-merge penalty that [add 1]/[sub 1] do not; on [Pentium3] the
      short forms are the cheap ones (§4.2 of the paper);
    - a {e return-address stack} (RAS) predictor: native [call]/[ret]
      pairs predict perfectly, but code-cache execution — which mangles
      returns into indirect jumps — cannot use it (§5);
    - a one-entry-per-site {e BTB} for indirect jumps: an indirect
      branch whose target differs from its previous target pays a full
      misprediction;
    - a 2-bit counter predictor per conditional-branch site;
    - a small extra cost for {e taken} transfers (fetch redirection),
      which is what gives traces their superior-code-layout benefit.

    Everything is deterministic so experiment outputs are reproducible. *)

open Isa

type family = Pentium3 | Pentium4

let family_name = function Pentium3 -> "Pentium 3" | Pentium4 -> "Pentium 4"

type t = {
  family : family;
  mispredict : int;        (** branch misprediction penalty *)
  taken_extra : int;       (** extra cycles for any taken transfer *)
  mem_read : int;          (** extra cycles per memory-operand read *)
  mem_write : int;         (** extra cycles per memory-operand write *)
  emu_overhead : int;      (** per-instruction decode+dispatch cost in pure-emulation mode *)
}

let default_params = function
  | Pentium4 ->
      { family = Pentium4; mispredict = 20; taken_extra = 1;
        mem_read = 2; mem_write = 2; emu_overhead = 480 }
  | Pentium3 ->
      { family = Pentium3; mispredict = 10; taken_extra = 1;
        mem_read = 2; mem_write = 2; emu_overhead = 480 }

(** Base execution cycles for an opcode (excluding memory-operand and
    branch-resolution extras). *)
let base_cycles (t : t) (op : Opcode.t) : int =
  match op with
  | Mov | Lea | Movzx8 | Movzx16 -> 1
  | Add | Sub | And | Or | Xor | Cmp | Test | Adc | Sbb | Neg | Not -> 1
  | Inc | Dec -> ( match t.family with Pentium4 -> 4 | Pentium3 -> 1)
  | Shl | Shr | Sar -> ( match t.family with Pentium4 -> 2 | Pentium3 -> 1)
  | Imul -> 4
  | Idiv -> 24
  | Push | Pop -> 2
  | Xchg -> 2
  | Pushf | Popf -> ( match t.family with Pentium4 -> 8 | Pentium3 -> 5)
  | Jmp | Jcc _ -> 1
  | JmpInd | CallInd -> 2
  | Call -> 2
  | Ret -> 2
  | Fld | Fst -> 2
  | Fmov | Fabs | Fneg -> 1
  (* throughput costs: pipelined FP adds/multiplies issue every cycle
     or two; only divide/sqrt serialize *)
  | Fadd | Fsub -> 1
  | Fmul -> 2
  | Fdiv -> 20
  | Fsqrt -> 25
  | Fcmp -> 3
  | Cvtsi | Cvtfi -> 4
  | Nop -> 1
  | Hlt -> 1
  | Out | In -> 40
  | Ccall -> 0 (* runtime charges clean-call cost explicitly *)

(* ------------------------------------------------------------------ *)
(* Branch predictors (deterministic hardware state)                   *)
(* ------------------------------------------------------------------ *)

(* Predictor tables are consulted on every branch, so they use
   exact-keyed open-addressing int->int maps (no per-lookup hashing
   machinery or option allocation) instead of Hashtbl.  Keys are exact
   branch sites — predictions never alias, so the charged cycles are
   bit-identical to a per-site association. *)
type imap = {
  mutable keys : int array;          (* -1 = empty; sites are >= 0 *)
  mutable vals : int array;
  mutable imask : int;
  mutable icount : int;
}

let imap_create bits =
  let n = 1 lsl bits in
  { keys = Array.make n (-1); vals = Array.make n 0; imask = n - 1; icount = 0 }

let imap_clear t =
  Array.fill t.keys 0 (Array.length t.keys) (-1);
  t.icount <- 0

(* Fibonacci hash, then linear probe to the key or the first empty. *)
let imap_slot (keys : int array) mask key =
  let i = ref ((key * 0x2545F4914F6CDD1D) lsr 16 land mask) in
  let k = ref (Array.unsafe_get keys !i) in
  while !k <> key && !k <> -1 do
    i := (!i + 1) land mask;
    k := Array.unsafe_get keys !i
  done;
  !i

let imap_find t key ~default =
  let i = imap_slot t.keys t.imask key in
  if Array.unsafe_get t.keys i = key then Array.unsafe_get t.vals i else default

let imap_grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let n = 2 * (t.imask + 1) in
  t.keys <- Array.make n (-1);
  t.vals <- Array.make n 0;
  t.imask <- n - 1;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = imap_slot t.keys t.imask k in
        t.keys.(j) <- k;
        t.vals.(j) <- old_vals.(i)
      end)
    old_keys

let imap_set t key v =
  if 4 * (t.icount + 1) > 3 * (t.imask + 1) then imap_grow t;
  let i = imap_slot t.keys t.imask key in
  if Array.unsafe_get t.keys i <> key then begin
    Array.unsafe_set t.keys i key;
    t.icount <- t.icount + 1
  end;
  Array.unsafe_set t.vals i v

type predictor = {
  cond : imap;                       (** site -> 2-bit saturating counter *)
  btb : imap;                        (** site -> last indirect target *)
  ras : int array;                   (** return-address stack, ring buffer *)
  mutable ras_top : int;             (** index of newest entry *)
  mutable ras_count : int;
}

let ras_depth = 16 (* power of two: ring arithmetic uses land *)

let create_predictor () =
  {
    cond = imap_create 9;
    btb = imap_create 8;
    ras = Array.make ras_depth 0;
    ras_top = ras_depth - 1;
    ras_count = 0;
  }

let reset_predictor p =
  imap_clear p.cond;
  imap_clear p.btb;
  p.ras_top <- ras_depth - 1;
  p.ras_count <- 0

(** [cond_branch t p ~site ~taken] — cycles charged for resolving a
    conditional branch at [site]; updates predictor state. *)
let cond_branch (t : t) (p : predictor) ~site ~taken : int =
  let counter = imap_find p.cond site ~default:1 in
  let predicted_taken = counter >= 2 in
  let counter' =
    if taken then min 3 (counter + 1) else max 0 (counter - 1)
  in
  imap_set p.cond site counter';
  let mis = if predicted_taken <> taken then t.mispredict else 0 in
  mis + if taken then t.taken_extra else 0

(** Direct unconditional transfer (jmp/call): always predicted. *)
let direct_jump (t : t) : int = t.taken_extra

(* Pushing onto a full ring overwrites the oldest entry — exactly the
   bounded-stack truncation the model specifies. *)
let ras_push (p : predictor) addr =
  p.ras_top <- (p.ras_top + 1) land (ras_depth - 1);
  Array.unsafe_set p.ras p.ras_top addr;
  if p.ras_count < ras_depth then p.ras_count <- p.ras_count + 1

(** [ret_branch t p ~target] — a native return: predicted by the RAS. *)
let ret_branch (t : t) (p : predictor) ~target : int =
  if p.ras_count = 0 then t.mispredict + t.taken_extra
  else begin
    let top = Array.unsafe_get p.ras p.ras_top in
    p.ras_top <- (p.ras_top - 1) land (ras_depth - 1);
    p.ras_count <- p.ras_count - 1;
    (if top = target then 0 else t.mispredict) + t.taken_extra
  end

(** [indirect_jump t p ~site ~target] — indirect jmp/call resolved via
    the BTB: hit iff the same site jumped to the same target last time. *)
let indirect_jump (t : t) (p : predictor) ~site ~target : int =
  let hit = imap_find p.btb site ~default:(-1) = target in
  imap_set p.btb site target;
  (if hit then 0 else t.mispredict) + t.taken_extra
