lib/isa/insn.ml: Array Opcode Operand Printf Reg Result
