lib/isa/eflags.mli: Format
