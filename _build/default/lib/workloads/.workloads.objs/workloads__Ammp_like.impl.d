lib/workloads/ammp_like.ml: Asm Isa List Workload
