(** Instruction-creation macros (paper §3.2): one constructor per
    SynISA instruction, taking only the {e explicit} operands and
    filling in implicit ones.  Each produces a Level-4 {!Instr.t},
    ready to insert into an {!Instrlist.t}.

    The IA-32 abstraction can be bypassed with {!raw_insn}, mirroring
    the paper's "specify an opcode and complete list of operands". *)

open Isa

let of_insn = Instr.of_insn

let mov d s = of_insn (Insn.mk_mov d s)
let movzx8 d s = of_insn (Insn.mk_movzx8 d s)
let movzx16 d s = of_insn (Insn.mk_movzx16 d s)
let lea d s = of_insn (Insn.mk_lea d s)
let push s = of_insn (Insn.mk_push s)
let pop d = of_insn (Insn.mk_pop d)
let xchg a b = of_insn (Insn.mk_xchg a b)
let pushf () = of_insn (Insn.mk_pushf ())
let popf () = of_insn (Insn.mk_popf ())
let add d s = of_insn (Insn.mk_add d s)
let adc d s = of_insn (Insn.mk_adc d s)
let sub d s = of_insn (Insn.mk_sub d s)
let sbb d s = of_insn (Insn.mk_sbb d s)
let inc d = of_insn (Insn.mk_inc d)
let dec d = of_insn (Insn.mk_dec d)
let neg d = of_insn (Insn.mk_neg d)
let not_ d = of_insn (Insn.mk_not d)
let cmp a b = of_insn (Insn.mk_cmp a b)
let test a b = of_insn (Insn.mk_test a b)
let and_ d s = of_insn (Insn.mk_and d s)
let or_ d s = of_insn (Insn.mk_or d s)
let xor d s = of_insn (Insn.mk_xor d s)
let imul d s = of_insn (Insn.mk_imul d s)
let idiv s = of_insn (Insn.mk_idiv s)
let shl d s = of_insn (Insn.mk_shl d s)
let shr d s = of_insn (Insn.mk_shr d s)
let sar d s = of_insn (Insn.mk_sar d s)
let jmp target = of_insn (Insn.mk_jmp target)
let jmp_ind s = of_insn (Insn.mk_jmp_ind s)
let jcc c target = of_insn (Insn.mk_jcc c target)
let call target = of_insn (Insn.mk_call target)
let call_ind s = of_insn (Insn.mk_call_ind s)
let ret () = of_insn (Insn.mk_ret ())
let fld f m = of_insn (Insn.mk_fld f m)
let fst_ m f = of_insn (Insn.mk_fst m f)
let fmov d s = of_insn (Insn.mk_fmov d s)
let fadd d s = of_insn (Insn.mk_fadd d s)
let fsub d s = of_insn (Insn.mk_fsub d s)
let fmul d s = of_insn (Insn.mk_fmul d s)
let fdiv d s = of_insn (Insn.mk_fdiv d s)
let fabs f = of_insn (Insn.mk_fabs f)
let fneg f = of_insn (Insn.mk_fneg f)
let fsqrt f = of_insn (Insn.mk_fsqrt f)
let fcmp a b = of_insn (Insn.mk_fcmp a b)
let cvtsi f s = of_insn (Insn.mk_cvtsi f s)
let cvtfi d f = of_insn (Insn.mk_cvtfi d f)
let nop () = of_insn (Insn.mk_nop ())
let out s = of_insn (Insn.mk_out s)
let in_ d = of_insn (Insn.mk_in d)

(** Bypass the per-instruction abstraction. *)
let raw_insn ?(prefixes = 0) opcode ~srcs ~dsts =
  of_insn (Insn.make ~prefixes opcode ~srcs ~dsts)

(* Operand helpers, so clients don't need to reach into Isa *)
let opnd_reg r = Operand.Reg r
let opnd_imm n = Operand.Imm n
let opnd_int8 n = Operand.Imm n   (* the paper's OPND_CREATE_INT8 *)
let opnd_mem = Operand.mem
let opnd_abs = Operand.mem_abs
let opnd_base = Operand.mem_base
