(** The layered cache-management stack (DESIGN.md §6.3): the
    {!Rio.Cachealloc} free-list allocator in isolation, option
    validation at the boundary, incremental FIFO eviction end to end,
    exactly-once [fragment_deleted] hook accounting across every
    deletion path, and randomized native-equivalence under small
    capacities with both flush policies (with and without fault
    injection). *)

open Workloads

let wl name = Option.get (Suite.by_name name)
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_ilist = Alcotest.(check (list int))

module CA = Rio.Cachealloc

(* ------------------------------------------------------------------ *)
(* Cachealloc: unit tests                                              *)
(* ------------------------------------------------------------------ *)

let test_alloc_rounds_and_fits () =
  let a = CA.create ~base:0x1000 ~size:1024 () in
  checki "capacity" 1024 (CA.capacity a);
  checki "one hole when empty" 1 (CA.holes a);
  (* 100 bytes rounds up to two 64-byte units *)
  checkb "first alloc at base" true (CA.alloc a 100 = Some 0x1000);
  checki "used" 128 (CA.used_bytes a);
  checkb "second alloc follows" true (CA.alloc a 1 = Some 0x1080);
  checki "free accounting" (1024 - 128 - 64) (CA.free_bytes a);
  checkb "oversized alloc refused" true (CA.alloc a 2048 = None);
  checkb "exact-fit tail" true (CA.alloc a (1024 - 128 - 64) <> None);
  checkb "now full" true (CA.alloc a 1 = None);
  checki "no free bytes" 0 (CA.free_bytes a)

let test_free_coalesces () =
  let a = CA.create ~base:0 ~size:512 () in
  let addr n = Option.get (CA.alloc a n) in
  let a0 = addr 64 and a1 = addr 64 and a2 = addr 64 and a3 = addr 64 in
  ignore (addr 256);
  checki "full" 0 (CA.free_bytes a);
  (* free two non-adjacent runs: two holes *)
  checki "free returns bytes" 64 (CA.free a ~addr:a1);
  checki "free returns bytes" 64 (CA.free a ~addr:a3);
  checki "two holes" 2 (CA.holes a);
  checki "largest hole" 64 (CA.largest_free_bytes a);
  (* freeing between them merges all three into one run *)
  checki "free returns bytes" 64 (CA.free a ~addr:a2);
  checki "holes merged" 1 (CA.holes a);
  checki "largest hole" 192 (CA.largest_free_bytes a);
  ignore (CA.free a ~addr:a0);
  checki "prefix merged too" 1 (CA.holes a);
  checki "largest hole" 256 (CA.largest_free_bytes a);
  (* first-fit reuses the freed prefix *)
  checkb "first-fit reuse" true (CA.alloc a 64 = Some a0)

let test_free_rejects_bad_addresses () =
  let a = CA.create ~base:0x2000 ~size:256 () in
  let live = Option.get (CA.alloc a 64) in
  let raises addr =
    match CA.free a ~addr with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "below base" true (raises 0x1000);
  checkb "unallocated unit" true (raises (live + 64));
  checkb "misaligned" true (raises (live + 1));
  checki "live one still frees" 64 (CA.free a ~addr:live);
  checkb "double free" true (raises live)

let test_reset_forgets_everything () =
  let a = CA.create ~base:0 ~size:256 () in
  let x = Option.get (CA.alloc a 64) in
  ignore (CA.alloc a 64);
  CA.reset a;
  checki "all free" 256 (CA.free_bytes a);
  checki "one hole" 1 (CA.holes a);
  checkb "old allocation gone" true
    (match CA.free a ~addr:x with exception Invalid_argument _ -> true | _ -> false);
  checkb "region reusable" true (CA.alloc a 256 = Some 0)

(* Model check: random alloc/free traffic, verifying accounting and
   that live allocations never overlap. *)
let test_alloc_model =
  QCheck.Test.make ~count:300 ~name:"allocator accounting under random traffic"
    QCheck.(small_list (pair bool (int_range 1 200)))
    (fun ops ->
      let a = CA.create ~base:0x4000 ~size:1024 () in
      let live = ref [] in
      (* (addr, rounded bytes) *)
      List.iter
        (fun (do_alloc, n) ->
          if do_alloc || !live = [] then (
            match CA.alloc a n with
            | Some addr ->
                let rounded = (n + 63) / 64 * 64 in
                live := (addr, rounded) :: !live
            | None -> ())
          else
            let addr, bytes = List.hd !live in
            live := List.tl !live;
            if CA.free a ~addr <> bytes then failwith "free returned wrong size")
        ops;
      let used = List.fold_left (fun s (_, b) -> s + b) 0 !live in
      let no_overlap =
        List.for_all
          (fun (x, bx) ->
            List.for_all
              (fun (y, by) -> x = y || x + bx <= y || y + by <= x)
              !live)
          !live
      in
      CA.used_bytes a = used
      && CA.free_bytes a = CA.capacity a - used
      && CA.largest_free_bytes a <= CA.free_bytes a
      && no_overlap)

(* ------------------------------------------------------------------ *)
(* Options validation                                                  *)
(* ------------------------------------------------------------------ *)

let floor_cap = Rio.Options.(min_cache_capacity default)

let test_validate_capacities () =
  let with_cap ?(policy = Rio.Options.Flush_fifo) cap =
    Rio.Options.validate
      { Rio.Options.default with cache_capacity = cap; flush_policy = policy }
  in
  checkb "unbounded ok" true (with_cap None = Ok ());
  checkb "zero rejected" true (with_cap (Some 0) <> Ok ());
  checkb "negative rejected" true (with_cap (Some (-5)) <> Ok ());
  checkb "fifo below floor rejected" true (with_cap (Some (floor_cap - 1)) <> Ok ());
  checkb "fifo at floor ok" true (with_cap (Some floor_cap) = Ok ());
  checkb "full policy allows tiny caps" true
    (with_cap ~policy:Rio.Options.Flush_full (Some 256) = Ok ());
  checkb "full policy still rejects zero" true
    (with_cap ~policy:Rio.Options.Flush_full (Some 0) <> Ok ())

let test_create_rejects_bad_options () =
  let m = Vm.Machine.create () in
  checkb "Rio.create raises Invalid_options" true
    (match
       Rio.create
         ~opts:{ Rio.Options.default with cache_capacity = Some 64 }
         m
     with
    | exception Rio.Options.Invalid_options _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* FIFO eviction end to end                                            *)
(* ------------------------------------------------------------------ *)

let test_fifo_eviction_matches_native () =
  (* only gcc's low-reuse multi-phase footprint overflows these
     capacities; the other workloads verify the bounded path when the
     working set happens to fit *)
  List.iter
    (fun (name, cap, expect_evictions) ->
      let w = wl name in
      let native = Workload.run_native w in
      let r, rt =
        Workload.run_rio
          ~opts:{ Rio.Options.default with cache_capacity = Some cap }
          w
      in
      let s = Rio.stats rt in
      checkb (name ^ ": finished") true r.ok;
      check_ilist (name ^ ": output identical to native") native.output r.output;
      if expect_evictions then begin
        checkb (name ^ ": evictions occurred") true (s.Rio.Stats.evictions > 0);
        checkb (name ^ ": bytes reclaimed") true
          (s.Rio.Stats.evicted_bytes >= s.Rio.Stats.evictions)
      end;
      checki (name ^ ": zero full flushes") 0 s.Rio.Stats.cache_flushes)
    [
      ("gcc", 8192, true);
      ("gcc", 4096, true);
      ("crafty", 4096, false);
      ("eon", 4096, false);
      ("mgrid", 8192, false);
    ]

let test_unbounded_never_evicts () =
  let _, rt = Workload.run_rio (wl "gcc") in
  let s = Rio.stats rt in
  checki "no evictions" 0 s.Rio.Stats.evictions;
  checki "no flushes" 0 s.Rio.Stats.cache_flushes;
  checki "no dropped traces" 0 s.Rio.Stats.traces_dropped

(* ------------------------------------------------------------------ *)
(* fragment_deleted fires exactly once per deletion                    *)
(* ------------------------------------------------------------------ *)

(* Every path that retires a fragment — FIFO eviction, full flush,
   client-driven replacement, fault recovery — must fire the
   [fragment_deleted] hook exactly once for it.  Deletions and
   replacements are counted separately in the stats, so the hook count
   must equal their sum; a double fire or a missed fire breaks the
   equality. *)
let counting_probe () =
  let count = ref 0 in
  ( {
      Rio.Types.null_client with
      name = "delete-counter";
      fragment_deleted = Some (fun _ ~tag:_ -> incr count);
    },
    count )

let check_hook_count name ?client ~opts w =
  let probe, count = counting_probe () in
  let client =
    match client with
    | None -> probe
    | Some c -> Clients.Compose.compose [ c; probe ]
  in
  let r, rt = Workload.run_rio ~client ~opts w in
  let s = Rio.stats rt in
  checkb (name ^ ": finished") true r.ok;
  checki
    (name ^ ": hook fired once per deletion")
    (s.Rio.Stats.fragments_deleted + s.Rio.Stats.fragments_replaced)
    !count

let test_hook_exactly_once_eviction () =
  check_hook_count "gcc/fifo"
    ~opts:{ Rio.Options.default with cache_capacity = Some 8192 }
    (wl "gcc")

let test_hook_exactly_once_full_flush () =
  check_hook_count "gcc/full"
    ~opts:
      { Rio.Options.default with
        cache_capacity = Some 8192;
        flush_policy = Rio.Options.Flush_full;
      }
    (wl "gcc")

let test_hook_exactly_once_replacement () =
  check_hook_count "eon/ibdispatch" ~client:(Clients.Ibdispatch.make ())
    ~opts:Rio.Options.default (wl "eon")

let test_hook_exactly_once_faults () =
  (* fault recovery deletes fragments out of band (re-emit, flush-
     fragment, flush-world rungs), on top of concurrent FIFO churn *)
  check_hook_count "parser/faults+fifo"
    ~opts:
      { Rio.Options.default with
        cache_capacity = Some 8192;
        faults = Some { Rio.Options.default_faults with fi_seed = 7 };
        audit_period = 1;
      }
    (wl "parser")

(* ------------------------------------------------------------------ *)
(* Randomized native-equivalence under capacity pressure               *)
(* ------------------------------------------------------------------ *)

let equiv_workloads = [| "gzip"; "parser"; "crafty"; "twolf"; "applu" |]

let native_outputs =
  lazy
    (Array.map (fun n -> (Workload.run_native (wl n)).output) equiv_workloads)

let test_equiv_under_pressure =
  QCheck.Test.make ~count:30
    ~name:"any workload, any small capacity, both policies, ±faults = native"
    QCheck.(
      quad small_nat (int_range 0 8192) bool (option (int_range 1 999)))
    (fun (widx, extra, fifo, fault_seed) ->
      let widx = widx mod Array.length equiv_workloads in
      let cap = floor_cap + extra in
      let opts =
        {
          Rio.Options.default with
          cache_capacity = Some cap;
          flush_policy =
            (if fifo then Rio.Options.Flush_fifo else Rio.Options.Flush_full);
          faults =
            Option.map
              (fun s -> { Rio.Options.default_faults with fi_seed = s })
              fault_seed;
          audit_period = (match fault_seed with Some _ -> 1 | None -> 0);
        }
      in
      let r, rt = Workload.run_rio ~opts (wl equiv_workloads.(widx)) in
      let s = Rio.stats rt in
      (* the fault-recovery ladder's flush-world rung may legitimately
         flush even under FIFO, so only fault-free runs must show zero *)
      r.ok
      && r.output = (Lazy.force native_outputs).(widx)
      && (not (fifo && fault_seed = None) || s.Rio.Stats.cache_flushes = 0))

let () =
  Alcotest.run "cache"
    [
      ( "cachealloc",
        [
          Alcotest.test_case "alloc rounds and fits" `Quick test_alloc_rounds_and_fits;
          Alcotest.test_case "free coalesces" `Quick test_free_coalesces;
          Alcotest.test_case "free rejects bad addresses" `Quick
            test_free_rejects_bad_addresses;
          Alcotest.test_case "reset forgets everything" `Quick
            test_reset_forgets_everything;
          QCheck_alcotest.to_alcotest test_alloc_model;
        ] );
      ( "options",
        [
          Alcotest.test_case "capacity validation" `Quick test_validate_capacities;
          Alcotest.test_case "create rejects bad options" `Quick
            test_create_rejects_bad_options;
        ] );
      ( "fifo eviction",
        [
          Alcotest.test_case "matches native under pressure" `Slow
            test_fifo_eviction_matches_native;
          Alcotest.test_case "unbounded never evicts" `Quick
            test_unbounded_never_evicts;
        ] );
      ( "delete hook",
        [
          Alcotest.test_case "exactly once: fifo eviction" `Quick
            test_hook_exactly_once_eviction;
          Alcotest.test_case "exactly once: full flush" `Quick
            test_hook_exactly_once_full_flush;
          Alcotest.test_case "exactly once: replacement" `Quick
            test_hook_exactly_once_replacement;
          Alcotest.test_case "exactly once: fault recovery" `Quick
            test_hook_exactly_once_faults;
        ] );
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest test_equiv_under_pressure ] );
    ]
