(** The adaptive level-of-detail [Instr] (paper §3.1).

    An [Instr] lazily migrates between five representations.  Reading
    richer information raises the level implicitly (and pays the decode
    cost exactly once); mutating operands invalidates the raw bytes and
    moves the instruction to Level 4, whose encode must run the full
    template-matching encoder.  "Switching incrementally between levels
    costs no more than a single switch spanning multiple levels."

    [Instr]s are intrusive doubly-linked-list nodes (see {!Instrlist}),
    like DynamoRIO's.  The [note] field is the client annotation slot
    from §3.2. *)

open Isa

type payload =
  | Bundle of { raw : Bytes.t; addr : int }
      (** L0: one or more un-decoded instructions; only the end is a
          known boundary.  [addr] is the original address of the bytes. *)
  | Raw of { raw : Bytes.t; addr : int }
      (** L1: one un-decoded instruction. *)
  | RawOp of { raw : Bytes.t; addr : int; opcode : Opcode.t }
      (** L2: opcode + eflags known. *)
  | Full of { raw : Bytes.t option; raw_valid : bool; addr : int; insn : Insn.t }
      (** L3 when [raw_valid] (bytes usable for encoding), L4 otherwise.
          Like DynamoRIO, invalidation keeps the raw-bits field (and its
          storage) and merely marks it unusable. *)

type t = {
  mutable payload : payload;
  mutable note : note;
  mutable prev : t option;
  mutable next : t option;
  mutable owner : int;  (** id of the containing list, 0 = none *)
}

and note = No_note | Int_note of int | Any_note of exn

(* Clients attach arbitrary annotations by declaring an exception
   constructor carrying their payload — the classic OCaml universal
   type.  [Int_note] covers the common case cheaply. *)

let make payload = { payload; note = No_note; prev = None; next = None; owner = 0 }

(* ------------------------------------------------------------------ *)
(* Construction at each level                                         *)
(* ------------------------------------------------------------------ *)

let of_bundle ~addr raw = make (Bundle { raw; addr })
let of_raw ~addr raw = make (Raw { raw; addr })
let of_insn (insn : Insn.t) =
  make (Full { raw = None; raw_valid = false; addr = 0; insn })

let of_decoded ~addr ~raw insn =
  make (Full { raw = Some raw; raw_valid = true; addr; insn })

let level (i : t) : Level.t =
  match i.payload with
  | Bundle _ -> L0
  | Raw _ -> L1
  | RawOp _ -> L2
  | Full { raw_valid = true; _ } -> L3
  | Full { raw_valid = false; _ } -> L4

(* ------------------------------------------------------------------ *)
(* Level raising                                                      *)
(* ------------------------------------------------------------------ *)

exception Is_bundle
(** Raised when per-instruction detail is requested from an L0 bundle;
    split the bundle first ({!Instrlist.split_bundles}). *)

exception Bad_raw_bits of { addr : int; msg : string }
(** Raised when raw bytes fail to decode during a level raise — the
    stored bits are not a valid instruction (cache corruption, or a
    client handing over garbage).  Typed so the dispatcher's recovery
    ladder can catch it and heal instead of dying. *)

let bad_raw ~addr e =
  raise (Bad_raw_bits { addr; msg = Decode.error_to_string e })

let raw_of (i : t) =
  match i.payload with
  | Bundle { raw; addr } | Raw { raw; addr } | RawOp { raw; addr; _ } -> (raw, addr)
  | Full { raw = Some raw; raw_valid = true; addr; _ } -> (raw, addr)
  | Full _ -> invalid_arg "Instr.raw_of: level 4"

(** Raise to at least L2: know the opcode.  No-op at L2+. *)
let uplevel2 (i : t) : unit =
  match i.payload with
  | Bundle _ -> raise Is_bundle
  | Raw { raw; addr } -> (
      match Decode.opcode_eflags (Decode.fetch_bytes raw) 0 with
      | Ok (opcode, _) -> i.payload <- RawOp { raw; addr; opcode }
      | Error e -> bad_raw ~addr e)
  | RawOp _ | Full _ -> ()

(** Raise to at least L3: fully decode.  No-op at L3/L4. *)
let uplevel3 (i : t) : unit =
  match i.payload with
  | Bundle _ -> raise Is_bundle
  | Raw { raw; addr } | RawOp { raw; addr; _ } -> (
      (* decode with the original address so pc-relative targets
         resolve to their absolute values *)
      let fetch a = Char.code (Bytes.get raw (a - addr)) in
      match Decode.full fetch addr with
      | Ok (insn, _) -> i.payload <- Full { raw = Some raw; raw_valid = true; addr; insn }
      | Error e -> bad_raw ~addr e)
  | Full _ -> ()

(** Invalidate raw bytes: the instruction was modified (→ L4). *)
let invalidate_raw (i : t) : unit =
  uplevel3 i;
  match i.payload with
  | Full { insn; addr; raw; _ } ->
      i.payload <- Full { raw; raw_valid = false; addr; insn }
  | _ -> assert false

(** Deep copy: fresh payload bytes, [note] preserved, list links and
    ownership cleared.  Used by the client-hook barrier to snapshot a
    fragment's IL before handing it to a potentially-faulty client. *)
let copy (i : t) : t =
  let payload =
    match i.payload with
    | Bundle { raw; addr } -> Bundle { raw = Bytes.copy raw; addr }
    | Raw { raw; addr } -> Raw { raw = Bytes.copy raw; addr }
    | RawOp { raw; addr; opcode } -> RawOp { raw = Bytes.copy raw; addr; opcode }
    | Full { raw; raw_valid; addr; insn } ->
        Full { raw = Option.map Bytes.copy raw; raw_valid; addr; insn }
  in
  { payload; note = i.note; prev = None; next = None; owner = 0 }

(* ------------------------------------------------------------------ *)
(* Accessors (paper-style API; levels adjust implicitly)              *)
(* ------------------------------------------------------------------ *)

let is_bundle (i : t) = match i.payload with Bundle _ -> true | _ -> false

(** Original application address of the instruction's raw bytes
    (0 for newly created instructions). *)
let addr (i : t) =
  match i.payload with
  | Bundle { addr; _ } | Raw { addr; _ } | RawOp { addr; _ } | Full { addr; _ } -> addr

let get_opcode (i : t) : Opcode.t =
  uplevel2 i;
  match i.payload with
  | RawOp { opcode; _ } -> opcode
  | Full { insn; _ } -> insn.Insn.opcode
  | _ -> assert false

(** Eflags effect mask — the Level-2 query central to transformation
    safety analyses. *)
let get_eflags (i : t) : Eflags.mask = Opcode.eflags (get_opcode i)

let get_insn (i : t) : Insn.t =
  uplevel3 i;
  match i.payload with Full { insn; _ } -> insn | _ -> assert false

let num_srcs i = Insn.num_srcs (get_insn i)
let num_dsts i = Insn.num_dsts (get_insn i)
let get_src i n = Insn.src (get_insn i) n
let get_dst i n = Insn.dst (get_insn i) n
let get_prefixes i = (get_insn i).Insn.prefixes

(** Replace the decoded form entirely (→ L4). *)
let set_insn (i : t) (insn : Insn.t) : unit =
  let addr = addr i and raw =
    match i.payload with
    | Full { raw; _ } -> raw
    | Bundle { raw; _ } | Raw { raw; _ } | RawOp { raw; _ } -> Some raw
  in
  i.payload <- Full { raw; raw_valid = false; addr; insn }

let set_src (i : t) n (o : Operand.t) : unit =
  let insn = get_insn i in
  let srcs = Array.copy insn.Insn.srcs in
  srcs.(n) <- o;
  set_insn i { insn with Insn.srcs }

let set_dst (i : t) n (o : Operand.t) : unit =
  let insn = get_insn i in
  let dsts = Array.copy insn.Insn.dsts in
  dsts.(n) <- o;
  set_insn i { insn with Insn.dsts }

let set_prefixes (i : t) p : unit =
  let insn = get_insn i in
  set_insn i { insn with Insn.prefixes = p }

let is_cti (i : t) : bool =
  if is_bundle i then false (* bundles never contain CTIs by construction *)
  else Opcode.is_cti (get_opcode i)

(** Is this an exit CTI, i.e. a direct transfer whose target lies
    outside the fragment (in app space or the runtime's trap space)?
    Callers typically use {!Instrlist} context; at the instr level any
    direct CTI qualifies. *)
let is_exit_cti (i : t) : bool =
  (not (is_bundle i))
  &&
  match Opcode.cti_kind (get_opcode i) with
  | Cti_direct_jmp | Cti_cond | Cti_direct_call -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Length and encoding                                                *)
(* ------------------------------------------------------------------ *)

(** Encoded length when placed at [pc].  For L0–L3 with
    position-independent content this is the raw length; CTIs are
    re-encoded because their pc-relative form depends on placement. *)
let length ?(pc = 0) (i : t) : int =
  match i.payload with
  | Bundle { raw; _ } | Raw { raw; _ } | RawOp { raw; _ } -> Bytes.length raw
  | Full { raw = Some raw; raw_valid = true; insn; _ } ->
      if Insn.is_cti insn then Encode.length ~pc insn else Bytes.length raw
  | Full { insn; _ } -> Encode.length ~pc insn

(** Encode into bytes for placement at [pc].  Raw bytes are copied
    whenever they are valid (L0–L3, non-CTI); L4 and CTIs run the full
    encoder. *)
let encode ~pc (i : t) : Bytes.t =
  match i.payload with
  | Bundle { raw; _ } | Raw { raw; _ } | RawOp { raw; _ } -> Bytes.copy raw
  | Full { raw = Some raw; raw_valid = true; insn; _ } ->
      if Insn.is_cti insn then Encode.encode_exn ~pc insn else Bytes.copy raw
  | Full { insn; _ } -> Encode.encode_exn ~pc insn

(* ------------------------------------------------------------------ *)
(* Notes                                                              *)
(* ------------------------------------------------------------------ *)

let set_note i n = i.note <- n
let get_note i = i.note

let pp ppf (i : t) =
  match i.payload with
  | Bundle { raw; addr } ->
      Fmt.pf ppf "<L0 bundle %d bytes @0x%x>" (Bytes.length raw) addr
  | Raw { raw; addr } -> Fmt.pf ppf "<L1 %d bytes @0x%x>" (Bytes.length raw) addr
  | RawOp { opcode; addr; _ } -> Fmt.pf ppf "<L2 %a @0x%x>" Opcode.pp opcode addr
  | Full { raw_valid; insn; _ } ->
      Fmt.pf ppf "<L%d %s>" (if raw_valid then 3 else 4) (Disasm.insn_to_string insn)

let to_string i = Fmt.str "%a" pp i
