(** Custom traces: whole-procedure-call inlining (paper §4.4).

    Default traces focus on loops and often split a hot call from its
    return, so the inlined return target keeps missing and falls back
    to the hashtable lookup.  This client redirects trace creation:

    - every direct call target becomes a trace head
      ([dr_mark_trace_head]);
    - a trace that crosses a [ret] is ended {e after the next basic
      block}, inlining the return and nearly guaranteeing the inlined
      target matches;
    - traces are capped at a maximum size to limit loop unrolling;
    - assuming the calling convention holds, the inlined return's
      pop-and-check sequence is replaced outright by
      [lea esp, 4(%esp)] — removing the return entirely without
      touching eflags. *)

open Isa
open Rio.Types

type tstate = {
  mutable phase : int;       (* 0 normal; 1 = ret block added; 2 = +1 block added *)
  mutable cur_trace : int;   (* trace being built, for the block cap *)
  mutable blocks : int;
}

type t = {
  threads : (int, tstate) Hashtbl.t;
  max_blocks : int;
  mutable heads_marked : int;
  mutable returns_elided : int;
}

let state (t : t) (ctx : context) =
  match Hashtbl.find_opt t.threads ctx.ts.ts_tid with
  | Some s -> s
  | None ->
      let s = { phase = 0; cur_trace = 0; blocks = 0 } in
      Hashtbl.replace t.threads ctx.ts.ts_tid s;
      s

(* Does the block starting at [tag] end with a return?  (A cheap
   Level-2 scan of application code.) *)
let block_ends_in_ret (ctx : context) tag : bool =
  let fetch = Vm.Memory.fetch (Vm.Machine.mem ctx.rt.machine) in
  let rec go addr n =
    if n > 512 then false
    else
      match Isa.Decode.opcode_eflags fetch addr with
      | Error _ -> false
      | Ok (op, len) ->
          if op = Opcode.Ret then true
          else if Opcode.is_cti op then false
          else go (addr + len) (n + 1)
  in
  go tag 0

(* bb hook: mark call sites as trace heads, so the trace rooted there
   inlines the whole call — the pushed return address, the callee body,
   the return, and the continuation all land in one trace (and the
   return elision can prove the pushed address matches the check) *)
let on_bb (t : t) (ctx : context) ~tag (il : Rio.Instrlist.t) =
  match Rio.Instrlist.last il with
  | None -> ()
  | Some last ->
      if
        (not (Rio.Instr.is_bundle last))
        && Rio.Instr.get_opcode last = Opcode.Call
      then begin
        Rio.Api.mark_trace_head ctx tag;
        t.heads_marked <- t.heads_marked + 1
      end

(* end_trace hook: implement "end after the block following a ret",
   plus the size cap *)
let on_end_trace (t : t) (ctx : context) ~trace_tag ~next_tag : end_trace_directive
    =
  let s = state t ctx in
  if s.cur_trace <> trace_tag then begin
    s.cur_trace <- trace_tag;
    s.blocks <- 0;
    s.phase <- 0
  end;
  s.blocks <- s.blocks + 1;
  if s.blocks >= t.max_blocks then begin
    s.phase <- 0;
    End_trace
  end
  else if s.phase = 2 then begin
    s.phase <- 0;
    End_trace
  end
  else if s.phase = 1 then begin
    (* the block after a ret: include it; if it too ends in a ret,
       keep inlining (cascaded returns), else end after it *)
    s.phase <- (if block_ends_in_ret ctx next_tag then 1 else 2);
    Continue_trace
  end
  else if block_ends_in_ret ctx next_tag then begin
    (* a ret is coming up: make sure it is inlined (checked), and end
       one block later *)
    s.phase <- 1;
    Continue_trace
  end
  else
    (* no return in play: defer to the default loop-oriented test *)
    Default_end

(* trace hook: elide inlined returns under the calling-convention
   assumption.  The mangled return is the sequence
       pop [ibl_slot]
       [pushf; pop [fslot]]
       cmp [ibl_slot], $expected
       jne IND(ret)
       [push [fslot]; popf]
   which is equivalent to discarding the top of stack
   (lea esp, 4(%esp)) — but only when we can see that the word being
   popped IS $expected: the matching call must have been inlined
   earlier in this same trace (its mangled form pushes the return
   address as an immediate).  A leaf called from several sites returns
   to different places; eliding its check without the matching push
   would follow the wrong path.  We track a symbolic stack while
   walking the trace to establish the match. *)
let elide_returns (t : t) (ctx : context) (il : Rio.Instrlist.t) =
  let tid = ctx.ts.ts_tid in
  let slot_addr = tls_addr ~tid ~slot:slot_ibl_target in
  let fslot_addr = tls_addr ~tid ~slot:slot_eflags in
  let is_abs_mem (o : Operand.t) addr =
    match o with
    | Operand.Mem { base = None; index = None; disp } -> disp = addr
    | _ -> false
  in
  let opcode_of i = if Rio.Instr.is_bundle i then Opcode.Nop else Rio.Instr.get_opcode i in
  let next i = i.Rio.Instr.next in
  (* symbolic stack: Some a = a known immediate (a pushed return
     address), None = unknown word.  [valid] goes false if esp is
     modified in a way we cannot model. *)
  let stack : int option list ref = ref [] in
  let valid = ref true in
  let spush v = stack := v :: !stack in
  let spop () = match !stack with [] -> None | v :: tl -> stack := tl; v in
  let track (i : Rio.Instr.t) =
    match opcode_of i with
    | Opcode.Push -> (
        match Rio.Instr.get_src i 0 with
        | Operand.Imm n -> spush (Some n)
        | _ -> spush None)
    | Opcode.Pushf -> spush None
    | Opcode.Pop | Opcode.Popf -> ignore (spop ())
    | Opcode.Call | Opcode.CallInd | Opcode.Ret ->
        (* shouldn't survive mangling, but be safe *)
        valid := false
    | _ ->
        (* any other explicit esp write invalidates the model *)
        if
          (not (Rio.Instr.is_bundle i))
          && Array.exists
               (function Operand.Reg Reg.Esp -> true | _ -> false)
               (Rio.Instr.get_insn i).Insn.dsts
        then valid := false
  in
  let rec go = function
    | None -> ()
    | Some (i : Rio.Instr.t) -> (
        let nxt = next i in
        (* match: pop [slot] *)
        match opcode_of i with
        | Opcode.Pop when is_abs_mem (Rio.Instr.get_dst i 0) slot_addr -> (
            (* optional flags save *)
            let after_save, saved =
              match nxt with
              | Some p when opcode_of p = Opcode.Pushf -> (
                  match next p with
                  | Some q
                    when opcode_of q = Opcode.Pop
                         && is_abs_mem (Rio.Instr.get_dst q 0) fslot_addr ->
                      (next q, Some (p, q))
                  | _ -> (nxt, None))
              | _ -> (nxt, None)
            in
            match after_save with
            | Some c
              when opcode_of c = Opcode.Cmp
                   && is_abs_mem (Rio.Instr.get_src c 0) slot_addr -> (
                match next c with
                | Some j when opcode_of j = Opcode.Jcc Cond.NZ -> (
                    match Rio.Instr.get_src j 0 with
                    | Operand.Target tok when ind_kind_of_token tok = Some Ind_ret -> (
                        (* the word about to be popped must be the
                           check's expected value: only then is the
                           elision sound *)
                        let expected =
                          match Rio.Instr.get_src c 1 with
                          | Operand.Imm n -> Some n
                          | _ -> None
                        in
                        let top = match !stack with v :: _ -> v | [] -> None in
                        match (expected, top, !valid) with
                        | Some e, Some p, true when e = p ->
                            ignore (spop ());
                            (* optional flags restore *)
                            let restore =
                              match next j with
                              | Some r1 when opcode_of r1 = Opcode.Push -> (
                                  match next r1 with
                                  | Some r2 when opcode_of r2 = Opcode.Popf ->
                                      Some (r1, r2)
                                  | _ -> None)
                              | _ -> None
                            in
                            (* rewrite: drop the whole sequence, bump esp *)
                            let lea =
                              Rio.Create.lea (Operand.Reg Reg.Esp)
                                (Operand.mem_base ~disp:4 Reg.Esp)
                            in
                            Rio.Instrlist.insert_before il i lea;
                            let kill = ref [ i; c; j ] in
                            (match saved with
                             | Some (p, q) -> kill := p :: q :: !kill
                             | None -> ());
                            (match restore with
                             | Some (r1, r2) -> kill := r1 :: r2 :: !kill
                             | None -> ());
                            let continue_at =
                              match restore with
                              | Some (_, r2) -> next r2
                              | None -> next j
                            in
                            List.iter (Rio.Instrlist.remove il) !kill;
                            t.returns_elided <- t.returns_elided + 1;
                            go continue_at
                        | _ ->
                            (* cannot prove the match: keep the check;
                               the pop consumes one stack word *)
                            ignore (spop ());
                            go nxt)
                    | _ -> ignore (spop ()); go nxt)
                | _ -> ignore (spop ()); go nxt)
            | _ -> ignore (spop ()); go nxt)
        | _ ->
            track i;
            go nxt)
  in
  go (Rio.Instrlist.first il)

let make ?(max_blocks = 12) () : client * t =
  let t =
    { threads = Hashtbl.create 8; max_blocks; heads_marked = 0; returns_elided = 0 }
  in
  ( {
      null_client with
      name = "ctraces";
      basic_block = Some (fun ctx ~tag il -> on_bb t ctx ~tag il);
      end_trace = Some (fun ctx ~trace_tag ~next_tag -> on_end_trace t ctx ~trace_tag ~next_tag);
      trace_hook = Some (fun ctx ~tag:_ il -> elide_returns t ctx il);
      exit_hook =
        (fun rt ->
          Rio.Api.printf rt "ctraces: %d call heads marked, %d returns elided\n"
            t.heads_marked t.returns_elided);
    },
    t )

let client = Stdlib.fst (make ())
