lib/rio/api.ml: Array Buffer Create Emit Hashtbl Insn Instr Instrlist Isa List Operand Option Printf Reg Types Vm
