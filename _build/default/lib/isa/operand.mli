(** Instruction operands: registers, immediates, [base + index*scale +
    disp] memory references, and absolute direct-branch targets.
    Storing CTI targets as absolute addresses (materialized as
    pc-relative displacements only at encode time) is what lets a code
    cache re-encode a branch at any address without fixups. *)

type mem = {
  base : Reg.t option;
  index : (Reg.t * int) option;  (** register and scale in 1/2/4/8 *)
  disp : int;                    (** signed 32-bit displacement *)
}

type t =
  | Reg of Reg.t
  | Freg of Reg.F.t
  | Imm of int                   (** signed immediate fitting 32 bits *)
  | Mem of mem
  | Target of int                (** absolute code address of a direct CTI *)

val reg : Reg.t -> t
val freg : Reg.F.t -> t
val imm : int -> t
val target : int -> t

val mem : ?base:Reg.t -> ?index:Reg.t * int -> ?disp:int -> unit -> t
(** @raise Invalid_argument when the scale is not 1, 2, 4 or 8. *)

val mem_abs : int -> t
(** Absolute-address memory operand. *)

val mem_base : ?disp:int -> Reg.t -> t
val mem_bi : ?disp:int -> Reg.t -> Reg.t * int -> t

val is_reg : t -> bool
val is_mem : t -> bool
val is_imm : t -> bool
val is_freg : t -> bool

val get_reg : t -> Reg.t
val get_imm : t -> int
val get_mem : t -> mem
val get_target : t -> int

val mem_regs : mem -> Reg.t list
(** Registers read to form the effective address. *)

val regs_used : t -> Reg.t list

val equal_mem : mem -> mem -> bool
val equal : t -> t -> bool
val pp_mem : Format.formatter -> mem -> unit
val pp : Format.formatter -> t -> unit
