(** Tests for the four paper optimizations (§4) and the instrumentation
    clients: IL-level unit tests of each transformation, plus
    behavioural tests showing each optimization's intended effect
    (and its safety) on targeted programs. *)

open Isa

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_ilist = Alcotest.(check (list int))

let reg r = Operand.Reg r
let memb ?(disp = 0) b = Operand.mem_base ~disp b

let il_of list =
  let il = Rio.Instrlist.create () in
  List.iter (Rio.Instrlist.append il) list;
  il

let opcodes il =
  List.map
    (fun i -> Opcode.name (Rio.Instr.get_opcode i))
    (Rio.Instrlist.to_list il)

(* ------------------------------------------------------------------ *)
(* RLR unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let rlr_run list =
  let il = il_of list in
  let st = { Clients.Rlr.facts = []; removed = 0; rewritten = 0 } in
  Clients.Rlr.optimize_il il st;
  (il, st)

let test_rlr_removes_same_reg_reload () =
  let il, st =
    rlr_run
      [
        Rio.Create.mov (reg Reg.Eax) (memb ~disp:8 Reg.Ebp);
        Rio.Create.add (reg Reg.Ecx) (reg Reg.Ecx);
        Rio.Create.mov (reg Reg.Eax) (memb ~disp:8 Reg.Ebp);
        Rio.Create.jmp 0x4000;
      ]
  in
  checki "one removed" 1 st.removed;
  Alcotest.(check (list string)) "reload gone" [ "mov"; "add"; "jmp" ] (opcodes il)

let test_rlr_rewrites_cross_reg_reload () =
  let il, st =
    rlr_run
      [
        Rio.Create.mov (reg Reg.Eax) (memb ~disp:8 Reg.Ebp);
        Rio.Create.mov (reg Reg.Ecx) (memb ~disp:8 Reg.Ebp);
        Rio.Create.jmp 0x4000;
      ]
  in
  checki "one rewritten" 1 st.rewritten;
  let second = List.nth (Rio.Instrlist.to_list il) 1 in
  checkb "now reg-to-reg" true
    (Operand.equal (Rio.Instr.get_src second 0) (reg Reg.Eax))

let test_rlr_store_forwarding () =
  (* a store establishes the fact: mov [m], eax; mov ecx, [m] -> reg move *)
  let il, st =
    rlr_run
      [
        Rio.Create.mov (memb ~disp:16 Reg.Ebp) (reg Reg.Eax);
        Rio.Create.mov (reg Reg.Ecx) (memb ~disp:16 Reg.Ebp);
        Rio.Create.jmp 0x4000;
      ]
  in
  ignore il;
  checki "forwarded" 1 st.rewritten

let test_rlr_aliasing_store_kills () =
  (* an intervening store through an unrelated base must kill the fact *)
  let _, st =
    rlr_run
      [
        Rio.Create.mov (reg Reg.Eax) (memb ~disp:8 Reg.Ebp);
        Rio.Create.mov (memb Reg.Esi) (reg Reg.Edx);      (* may alias *)
        Rio.Create.mov (reg Reg.Eax) (memb ~disp:8 Reg.Ebp);
        Rio.Create.jmp 0x4000;
      ]
  in
  checki "nothing removed" 0 st.removed;
  checki "nothing rewritten" 0 st.rewritten

let test_rlr_disjoint_store_preserves () =
  (* same base, provably disjoint displacement: fact survives *)
  let _, st =
    rlr_run
      [
        Rio.Create.mov (reg Reg.Eax) (memb ~disp:8 Reg.Ebp);
        Rio.Create.mov (memb ~disp:32 Reg.Ebp) (reg Reg.Edx);  (* disjoint *)
        Rio.Create.mov (reg Reg.Eax) (memb ~disp:8 Reg.Ebp);
        Rio.Create.jmp 0x4000;
      ]
  in
  checki "removed" 1 st.removed

let test_rlr_clobbered_holder_kills () =
  let _, st =
    rlr_run
      [
        Rio.Create.mov (reg Reg.Eax) (memb ~disp:8 Reg.Ebp);
        Rio.Create.add (reg Reg.Eax) (Operand.Imm 1);     (* clobber holder *)
        Rio.Create.mov (reg Reg.Ecx) (memb ~disp:8 Reg.Ebp);
        Rio.Create.jmp 0x4000;
      ]
  in
  checki "no rewrite" 0 st.rewritten

let test_rlr_base_reg_clobber_kills () =
  (* clobbering the address base invalidates the fact *)
  let _, st =
    rlr_run
      [
        Rio.Create.mov (reg Reg.Eax) (memb ~disp:8 Reg.Ebp);
        Rio.Create.add (reg Reg.Ebp) (Operand.Imm 4);
        Rio.Create.mov (reg Reg.Ecx) (memb ~disp:8 Reg.Ebp);
        Rio.Create.jmp 0x4000;
      ]
  in
  checki "no rewrite" 0 st.rewritten

let test_rlr_push_kills_esp_facts () =
  let _, st =
    rlr_run
      [
        Rio.Create.mov (reg Reg.Eax) (memb ~disp:4 Reg.Esp);
        Rio.Create.push (reg Reg.Edx);
        Rio.Create.mov (reg Reg.Ecx) (memb ~disp:4 Reg.Esp);
        Rio.Create.jmp 0x4000;
      ]
  in
  checki "esp facts killed" 0 st.rewritten

let test_rlr_fp_reload_removed () =
  let _, st =
    rlr_run
      [
        Rio.Create.fld (Reg.F.make 2) (memb ~disp:8 Reg.Ebp);
        Rio.Create.fadd (Reg.F.make 1) (Operand.Freg (Reg.F.make 2));
        Rio.Create.fld (Reg.F.make 2) (memb ~disp:8 Reg.Ebp);
        Rio.Create.jmp 0x4000;
      ]
  in
  checki "fp reload removed" 1 st.removed

let test_rlr_fp_clobber_kills () =
  let _, st =
    rlr_run
      [
        Rio.Create.fld (Reg.F.make 2) (memb ~disp:8 Reg.Ebp);
        Rio.Create.fmul (Reg.F.make 2) (Operand.Freg (Reg.F.make 3)); (* clobber *)
        Rio.Create.fld (Reg.F.make 2) (memb ~disp:8 Reg.Ebp);
        Rio.Create.jmp 0x4000;
      ]
  in
  checki "no removal after clobber" 0 st.removed

(* ------------------------------------------------------------------ *)
(* Strength reduction unit tests                                      *)
(* ------------------------------------------------------------------ *)

let strength_run list =
  let il = il_of list in
  let st = { Clients.Strength.examined = 0; converted = 0 } in
  Clients.Strength.optimize_il il st;
  (il, st)

let test_strength_converts_when_cf_dead () =
  let il, st =
    strength_run
      [
        Rio.Create.inc (reg Reg.Eax);
        Rio.Create.add (reg Reg.Ecx) (Operand.Imm 1);  (* writes CF first *)
        Rio.Create.jmp 0x4000;
      ]
  in
  checki "converted" 1 st.converted;
  Alcotest.(check (list string)) "inc now add" [ "add"; "add"; "jmp" ] (opcodes il);
  let first = List.hd (Rio.Instrlist.to_list il) in
  checkb "adds 1" true (Operand.equal (Rio.Instr.get_src first 0) (Operand.Imm 1))

let test_strength_dec_to_sub () =
  let il, st =
    strength_run
      [
        Rio.Create.dec (reg Reg.Edx);
        Rio.Create.cmp (reg Reg.Ecx) (Operand.Imm 0);
        Rio.Create.jmp 0x4000;
      ]
  in
  checki "converted" 1 st.converted;
  Alcotest.(check (list string)) "dec now sub" [ "sub"; "cmp"; "jmp" ] (opcodes il)

let test_strength_blocked_by_cf_read () =
  (* adc reads CF: converting inc (which preserves CF) to add (which
     clobbers it) would be wrong *)
  let il, st =
    strength_run
      [
        Rio.Create.inc (reg Reg.Eax);
        Rio.Create.adc (reg Reg.Ecx) (Operand.Imm 0);
        Rio.Create.jmp 0x4000;
      ]
  in
  checki "not converted" 0 st.converted;
  Alcotest.(check (list string)) "inc kept" [ "inc"; "adc"; "jmp" ] (opcodes il)

let test_strength_blocked_at_exit () =
  (* the paper's simplification: stop at the first exit CTI *)
  let _, st =
    strength_run [ Rio.Create.inc (reg Reg.Eax); Rio.Create.jmp 0x4000 ]
  in
  checki "not converted at exit" 0 st.converted

let test_strength_preserves_semantics () =
  (* full-system check on a flag-sensitive program *)
  let open Asm.Dsl in
  let prog =
    program ~name:"p"
      ~text:
        [
          label "main";
          mov eax (i (-1));
          mov ebx (i 0);
          mov ecx (i 0);
          label "loop";
          add eax (i 1);     (* sets CF on wrap *)
          inc ebx;           (* must not clobber CF before the adc *)
          adc ecx (i 0);
          cmp ebx (i 100);
          j l "loop";
          out ecx;
          out ebx;
          hlt;
        ]
      ()
  in
  let image = Asm.Assemble.assemble prog in
  let native =
    let m = Vm.Machine.create () in
    ignore (Asm.Image.load m image);
    ignore (Vm.Sched.run ~emulate:false m);
    Vm.Machine.output m
  in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  let opts = { Rio.Options.default with trace_threshold = 10 } in
  let rt = Rio.create ~opts ~client:(Clients.Strength.make ~on_bb:true) m in
  ignore (Rio.run rt);
  check_ilist "flag-sensitive program unchanged" native (Vm.Machine.output m)

(* ------------------------------------------------------------------ *)
(* Redundant-compare elimination unit tests                           *)
(* ------------------------------------------------------------------ *)

let rcmp_run list =
  let il = il_of list in
  let _, t = Clients.Redundant_cmp.make () in
  Clients.Redundant_cmp.optimize_il t il;
  (il, t)

let test_rcmp_removes_duplicate () =
  let il, t =
    rcmp_run
      [
        Rio.Create.cmp (reg Reg.Eax) (reg Reg.Ecx);
        Rio.Create.jcc Isa.Cond.LE 0x3000;       (* exit CTI between: fine *)
        Rio.Create.cmp (reg Reg.Eax) (reg Reg.Ecx);
        Rio.Create.jcc Isa.Cond.NLE 0x4000;
        Rio.Create.jmp 0x5000;
      ]
  in
  checki "removed" 1 t.Clients.Redundant_cmp.removed;
  Alcotest.(check (list string)) "shape" [ "cmp"; "jle"; "jnle"; "jmp" ] (opcodes il)

let test_rcmp_blocked_by_operand_write () =
  let _, t =
    rcmp_run
      [
        Rio.Create.cmp (reg Reg.Eax) (reg Reg.Ecx);
        Rio.Create.jcc Isa.Cond.LE 0x3000;
        Rio.Create.mov (reg Reg.Eax) (Operand.Imm 7);   (* clobbers input *)
        Rio.Create.cmp (reg Reg.Eax) (reg Reg.Ecx);
        Rio.Create.jmp 0x5000;
      ]
  in
  checki "kept" 0 t.Clients.Redundant_cmp.removed

let test_rcmp_blocked_by_flag_write () =
  let _, t =
    rcmp_run
      [
        Rio.Create.cmp (reg Reg.Eax) (reg Reg.Ecx);
        Rio.Create.add (reg Reg.Edx) (Operand.Imm 1);   (* rewrites flags *)
        Rio.Create.cmp (reg Reg.Eax) (reg Reg.Ecx);
        Rio.Create.jmp 0x5000;
      ]
  in
  (* the duplicate must stay: the add changed the flags in between *)
  checki "kept" 0 t.Clients.Redundant_cmp.removed

let test_rcmp_blocked_by_aliasing_store () =
  let _, t =
    rcmp_run
      [
        Rio.Create.cmp (memb ~disp:8 Reg.Ebp) (Operand.Imm 3);
        Rio.Create.jcc Isa.Cond.Z 0x3000;
        Rio.Create.mov (memb Reg.Esi) (reg Reg.Edx);    (* may alias *)
        Rio.Create.cmp (memb ~disp:8 Reg.Ebp) (Operand.Imm 3);
        Rio.Create.jmp 0x5000;
      ]
  in
  checki "kept" 0 t.Clients.Redundant_cmp.removed

let test_rcmp_whole_program () =
  (* a cross-block duplicate comparison, visible only in a trace *)
  let open Asm.Dsl in
  let prog =
    program ~name:"p"
      ~text:
        [
          label "main";
          mov eax (i 0); mov ecx (i 0); mov edi (i 0);
          label "loop";
          cmp ecx (i 500);
          j nl "ge_path";
          (* < path: the compiler re-tests the same condition *)
          cmp ecx (i 500);
          j z "never";
          add eax (i 2);
          label "back";
          inc ecx;
          cmp ecx (i 1000);
          j l "loop";
          out eax; hlt;
          label "ge_path";
          add eax (i 3);
          jmp "back";
          label "never";
          add edi (i 1);
          jmp "back";
        ]
      ()
  in
  let image = Asm.Assemble.assemble prog in
  let native =
    let m = Vm.Machine.create () in
    ignore (Asm.Image.load m image);
    ignore (Vm.Sched.run ~emulate:false m);
    Vm.Machine.output m
  in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  let client, t = Clients.Redundant_cmp.make () in
  let rt = Rio.create ~client m in
  ignore (Rio.run rt);
  check_ilist "behaviour preserved" native (Vm.Machine.output m);
  checkb "a duplicate was eliminated" true (t.Clients.Redundant_cmp.removed >= 1)

(* ------------------------------------------------------------------ *)
(* Behavioural tests on workloads                                     *)
(* ------------------------------------------------------------------ *)

open Workloads

let run_pair w client =
  let n = Workload.run_native w in
  let r, rt = Workload.run_rio ~client w in
  checkb (w.Workload.name ^ " native ok") true n.ok;
  checkb (w.Workload.name ^ " rio ok") true r.ok;
  check_ilist (w.Workload.name ^ " outputs equal") n.output r.output;
  (n, r, rt)

let test_rlr_speeds_up_mgrid () =
  let w = Option.get (Suite.by_name "mgrid") in
  let null, _, _ = (fun () -> run_pair w Rio.Types.null_client) () in
  let _, rlr, _ = run_pair w (Clients.Rlr.make ()) in
  ignore null;
  let base, _ = Workload.run_rio w in
  checkb "rlr beats base RIO on mgrid" true (rlr.cycles < base.cycles);
  (* the paper's headline: a substantial speedup over native *)
  let n = Workload.run_native w in
  checkb "rlr beats native on mgrid" true
    (float_of_int rlr.cycles < 0.85 *. float_of_int n.cycles)

let test_ibdispatch_cuts_lookups () =
  let w = Option.get (Suite.by_name "gap") in
  let _, _, rt_null = run_pair w Rio.Types.null_client in
  let _, _, rt_ib = run_pair w (Clients.Ibdispatch.make ()) in
  let l0 = (Rio.stats rt_null).Rio.Stats.ibl_lookups in
  let l1 = (Rio.stats rt_ib).Rio.Stats.ibl_lookups in
  checkb "lookups reduced by > 4x" true (l1 * 4 < l0)

let test_ibdispatch_rewrites_own_trace () =
  let w = Option.get (Suite.by_name "eon") in
  let _, _, rt = run_pair w (Clients.Ibdispatch.make ()) in
  checkb "trace was rewritten" true
    ((Rio.stats rt).Rio.Stats.fragments_replaced >= 1)

let test_ctraces_elides_returns () =
  let w = Option.get (Suite.by_name "vortex") in
  let client, t = Clients.Ctraces.make () in
  let _, r, _ = run_pair w client in
  checkb "returns elided" true (t.Clients.Ctraces.returns_elided >= 1);
  let base, _ = Workload.run_rio w in
  checkb "ctraces beats base RIO on vortex" true (r.cycles < base.cycles)

let test_combined_all_equivalent () =
  List.iter
    (fun w -> ignore (run_pair w (Clients.Compose.all_four ())))
    [ Option.get (Suite.by_name "crafty"); Option.get (Suite.by_name "swim") ]

(* ------------------------------------------------------------------ *)
(* Instrumentation clients                                            *)
(* ------------------------------------------------------------------ *)

let test_counter_dynamic () =
  let w = Option.get (Suite.by_name "vpr") in
  let client, counts = Clients.Counter.make ~dynamic:true () in
  let n = Workload.run_native w in
  let r, _ = Workload.run_rio ~client w in
  check_ilist "output intact" n.output r.output;
  checkb "block executions counted" true
    (counts.Clients.Counter.dynamic_blocks > 1000);
  checkb "static instrs seen" true (counts.Clients.Counter.static_insns > 10)

let test_emitted_counter_matches_clean_calls () =
  (* the in-cache counters must agree exactly with clean-call counting,
     at much lower overhead *)
  let w = Option.get (Suite.by_name "vpr") in
  let n = Workload.run_native w in
  let cc_client, cc_counts = Clients.Counter.make ~dynamic:true () in
  let cc_run, _ = Workload.run_rio ~client:cc_client w in
  let em_client, read = Clients.Counter.make_emitted () in
  let em_run, _ = Workload.run_rio ~client:em_client w in
  check_ilist "clean-call output intact" n.output cc_run.output;
  check_ilist "emitted output intact" n.output em_run.output;
  let em_total = List.fold_left (fun a (_, c) -> a + c) 0 (read ()) in
  checkb "same total count" true
    (em_total = cc_counts.Clients.Counter.dynamic_blocks);
  (* per-tag agreement *)
  List.iter
    (fun (tag, c) ->
      let cc = Option.value (Hashtbl.find_opt cc_counts.Clients.Counter.executions tag) ~default:0 in
      checkb (Printf.sprintf "tag 0x%x agrees" tag) true (c = cc))
    (read ());
  checkb "emitted counters cost less than clean calls" true
    (em_run.cycles < cc_run.cycles)

let test_opmix_exact () =
  (* the folded in-cache counters must equal a clean-call ground truth *)
  let w = Option.get (Suite.by_name "gzip") in
  let n = Workload.run_native w in
  let client, t = Clients.Opmix.make () in
  let r, _ = Workload.run_rio ~client w in
  check_ilist "output intact" n.output r.output;
  let mix = Clients.Opmix.dynamic_mix t in
  let total = List.fold_left (fun a (_, c) -> a + c) 0 mix in
  (* the dynamic instruction total must match the machine's retired
     count for the app portion; we check it is plausibly large and that
     the hot opcode is a load/compare from the scan loop *)
  checkb "counted a hot workload" true (total > 20_000);
  (match mix with
   | (top, cnt) :: _ ->
       checkb "top opcode is hot" true (cnt > 2_000);
       checkb "top opcode is from the scan loop" true
         (List.mem (Isa.Opcode.name top) [ "mov"; "cmp"; "movzx8"; "inc"; "add"; "xor"; "shl"; "jmp"; "jl"; "jnz" ])
   | [] -> Alcotest.fail "empty mix")

let test_shepherd_blocks_injection () =
  let open Asm.Dsl in
  let shellcode =
    let b = Buffer.create 8 in
    List.iter
      (fun insn -> Buffer.add_bytes b (Isa.Encode.encode_exn ~pc:0 insn))
      [ Isa.Insn.mk_out (Isa.Operand.Imm 666); Isa.Insn.mk_hlt () ];
    Buffer.contents b
  in
  let attack =
    program ~name:"inject" ~entry:"main"
      ~text:[ label "main"; li eax "payload"; jmp_ind eax ]
      ~data:[ label "payload"; bytes shellcode ]
      ()
  in
  let image = Asm.Assemble.assemble attack in
  (* without the shepherd the attack "succeeds" under the cache too *)
  let m0 = Vm.Machine.create () in
  ignore (Asm.Image.load m0 image);
  let rt0 = Rio.create m0 in
  ignore (Rio.run rt0);
  check_ilist "undefended: shellcode ran" [ 666 ] (Vm.Machine.output m0);
  (* with it, the program is terminated before the first injected block *)
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  let client, t = Clients.Shepherd.make (Clients.Shepherd.policy_of_image image) in
  let rt = Rio.create ~client m in
  let o = Rio.run rt in
  checkb "terminated" true
    (match o.Rio.reason with Rio.App_fault _ -> true | _ -> false);
  check_ilist "no output escaped" [] (Vm.Machine.output m);
  checkb "violation recorded" true (t.Clients.Shepherd.violations = 1)

let test_raising_client_composed_with_optimizer () =
  (* a crashing client riding alongside a real optimizer must not cost
     the application its output; after quarantine the run continues
     (unoptimized) to the correct result *)
  let crasher =
    {
      Rio.Types.null_client with
      name = "crasher";
      basic_block = Some (fun _ ~tag:_ _ -> failwith "crasher: boom");
    }
  in
  let client =
    Clients.Compose.compose [ crasher; Clients.Strength.make ~on_bb:true ]
  in
  let w = Option.get (Suite.by_name "gzip") in
  let n = Workload.run_native w in
  let r, rt = Workload.run_rio ~client w in
  checkb "finished" true r.ok;
  check_ilist "output intact" n.output r.output;
  let s = Rio.stats rt in
  checkb "failures recorded" true (s.Rio.Stats.hook_failures > 0);
  checki "quarantined once" 1 s.Rio.Stats.clients_quarantined

let test_edgeprof_records_hot_edges () =
  let w = Option.get (Suite.by_name "gzip") in
  let client, t = Clients.Edgeprof.make () in
  let n = Workload.run_native w in
  let r, _ = Workload.run_rio ~client w in
  check_ilist "output intact" n.output r.output;
  let hot = Clients.Edgeprof.hot_edges t 3 in
  checkb "edges recorded" true (List.length hot = 3);
  let _, _, c = List.hd hot in
  checkb "hottest edge is hot" true (c > 1000)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "clients"
    [
      ( "rlr",
        [
          Alcotest.test_case "removes same-reg reload" `Quick test_rlr_removes_same_reg_reload;
          Alcotest.test_case "rewrites cross-reg reload" `Quick test_rlr_rewrites_cross_reg_reload;
          Alcotest.test_case "store forwarding" `Quick test_rlr_store_forwarding;
          Alcotest.test_case "aliasing store kills" `Quick test_rlr_aliasing_store_kills;
          Alcotest.test_case "disjoint store preserves" `Quick test_rlr_disjoint_store_preserves;
          Alcotest.test_case "holder clobber kills" `Quick test_rlr_clobbered_holder_kills;
          Alcotest.test_case "base clobber kills" `Quick test_rlr_base_reg_clobber_kills;
          Alcotest.test_case "push kills esp facts" `Quick test_rlr_push_kills_esp_facts;
          Alcotest.test_case "fp reload removed" `Quick test_rlr_fp_reload_removed;
          Alcotest.test_case "fp clobber kills" `Quick test_rlr_fp_clobber_kills;
        ] );
      ( "strength",
        [
          Alcotest.test_case "converts when CF dead" `Quick test_strength_converts_when_cf_dead;
          Alcotest.test_case "dec to sub" `Quick test_strength_dec_to_sub;
          Alcotest.test_case "blocked by CF read" `Quick test_strength_blocked_by_cf_read;
          Alcotest.test_case "blocked at exit" `Quick test_strength_blocked_at_exit;
          Alcotest.test_case "semantics preserved" `Quick test_strength_preserves_semantics;
        ] );
      ( "redundant-cmp",
        [
          Alcotest.test_case "removes duplicate" `Quick test_rcmp_removes_duplicate;
          Alcotest.test_case "blocked by operand write" `Quick test_rcmp_blocked_by_operand_write;
          Alcotest.test_case "blocked by flag write" `Quick test_rcmp_blocked_by_flag_write;
          Alcotest.test_case "blocked by aliasing store" `Quick test_rcmp_blocked_by_aliasing_store;
          Alcotest.test_case "whole program" `Quick test_rcmp_whole_program;
        ] );
      ( "optimization effects",
        [
          Alcotest.test_case "rlr speeds up mgrid" `Slow test_rlr_speeds_up_mgrid;
          Alcotest.test_case "ibdispatch cuts lookups" `Slow test_ibdispatch_cuts_lookups;
          Alcotest.test_case "ibdispatch rewrites trace" `Slow test_ibdispatch_rewrites_own_trace;
          Alcotest.test_case "ctraces elides returns" `Slow test_ctraces_elides_returns;
          Alcotest.test_case "combined equivalent" `Slow test_combined_all_equivalent;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "dynamic counter" `Slow test_counter_dynamic;
          Alcotest.test_case "emitted counters" `Slow test_emitted_counter_matches_clean_calls;
          Alcotest.test_case "opcode mix" `Slow test_opmix_exact;
          Alcotest.test_case "shepherd blocks injection" `Quick test_shepherd_blocks_injection;
          Alcotest.test_case "raising client contained" `Slow test_raising_client_composed_with_optimizer;
          Alcotest.test_case "edge profiler" `Slow test_edgeprof_records_hot_edges;
        ] );
    ]
