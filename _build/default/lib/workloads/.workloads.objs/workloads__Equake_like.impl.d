lib/workloads/equake_like.ml: Asm Isa List Workload
