lib/clients/shepherd.ml: Asm Bytes Isa Opcode Printf Reg Rio Vm
