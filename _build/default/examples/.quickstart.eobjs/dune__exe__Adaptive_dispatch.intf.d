examples/adaptive_dispatch.mli:
