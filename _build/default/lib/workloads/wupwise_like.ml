(** wupwise-like: lattice QCD with complex arithmetic (SPEC2000
    168.wupwise).

    Character: FP-heavy complex multiply-accumulate kernels (zgemm/zaxpy
    style: four multiplies and two adds per complex product) called per
    lattice site — FP throughput work behind a regular call structure. *)

open Asm.Dsl

let sites = 384
let iters = 18

let text =
  [
    label "main";
    mov ebp esp;
    mov edx (i 0);
    label "iter";
    mov edi (i 0);
    label "site";
    call "zmul_acc";
    inc edi;
    cmp edi (i (sites - 1));
    j l "site";
    inc edx;
    cmp edx (i iters);
    j l "iter";
    (* checksum accumulator in y[0..1] *)
    mov ecx (i 0);
    ins (fun env -> Isa.Insn.mk_fld f0 (Isa.Operand.mem_abs (env "y")));
    cvtfi eax f0;
    add ecx eax;
    ins (fun env -> Isa.Insn.mk_fld f0 (Isa.Operand.mem_abs (env "y" + 8)));
    cvtfi eax f0;
    add ecx eax;
    out ecx;
    hlt;
    (* y += a[site] * x[site], all complex (re, im) pairs of doubles *)
    label "zmul_acc";
    (* load a = (f0, f1), x = (f2, f3) *)
    ins (fun env ->
        Isa.Insn.mk_fld f0
          (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "a") ()));
    ins (fun env ->
        Isa.Insn.mk_fld f1
          (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "a" + 8) ()));
    ins (fun env ->
        Isa.Insn.mk_fld f2
          (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "x") ()));
    ins (fun env ->
        Isa.Insn.mk_fld f3
          (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "x" + 8) ()));
    (* re = a.re*x.re - a.im*x.im ; im = a.re*x.im + a.im*x.re *)
    fmov f4 f0; fmul f4 (fr f2);
    fmov f5 f1; fmul f5 (fr f3);
    fsub f4 (fr f5);                   (* re part *)
    fmov f6 f0; fmul f6 (fr f3);
    fmov f7 f1; fmul f7 (fr f2);
    fadd f6 (fr f7);                   (* im part *)
    (* y is a 2-double accumulator: damp then accumulate so the values
       stay bounded across iterations *)
    ins (fun env -> Isa.Insn.mk_fld f0 (Isa.Operand.mem_abs (env "y")));
    ins (fun env -> Isa.Insn.mk_fld f1 (Isa.Operand.mem_abs (env "scale")));
    fmul f0 (fr f1);
    fadd f0 (fr f4);
    ins (fun env -> Isa.Insn.mk_fst (Isa.Operand.mem_abs (env "y")) f0);
    ins (fun env -> Isa.Insn.mk_fld f0 (Isa.Operand.mem_abs (env "y" + 8)));
    fmul f0 (fr f1);
    fadd f0 (fr f6);
    ins (fun env -> Isa.Insn.mk_fst (Isa.Operand.mem_abs (env "y" + 8)) f0);
    ret;
  ]

let data =
  [
    label "scale";
    float64 [ 0.5 ];
    label "y";
    float64 [ 0.0; 0.0 ];
    label "a";
    float64 (Workload.lcg_floats ~seed:61 (2 * sites));
    label "x";
    float64 (Workload.lcg_floats ~seed:67 (2 * sites));
  ]

let workload =
  Workload.make ~name:"wupwise" ~spec_name:"168.wupwise" ~fp:true
    ~description:"complex multiply-accumulate kernels behind per-site calls"
    (program ~name:"wupwise" ~entry:"main" ~text ~data ())
