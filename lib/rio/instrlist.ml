(** [InstrList]: the linear code sequence DynamoRIO manipulates
    (paper §3.1).  A doubly-linked list of {!Instr.t}, single entrance,
    no internal join points.  All basic blocks and traces are
    represented this way; the linearity is what keeps client analyses
    cheap. *)

type t = {
  id : int;
  mutable first : Instr.t option;
  mutable last : Instr.t option;
  mutable count : int;
}

(* atomic so lists created from different domains (one Rio instance
   per worker domain) never share an id, which would confuse the
   owner checks below *)
let next_id = Atomic.make 1

let create () =
  { id = Atomic.fetch_and_add next_id 1; first = None; last = None; count = 0 }

let first t = t.first
let last t = t.last
let length t = t.count
let is_empty t = t.count = 0

let next (i : Instr.t) = i.Instr.next
let prev (i : Instr.t) = i.Instr.prev

let check_unowned (i : Instr.t) =
  if i.Instr.owner <> 0 then invalid_arg "Instrlist: instr already in a list"

let append t (i : Instr.t) =
  check_unowned i;
  i.Instr.owner <- t.id;
  i.Instr.prev <- t.last;
  i.Instr.next <- None;
  (match t.last with
   | Some l -> l.Instr.next <- Some i
   | None -> t.first <- Some i);
  t.last <- Some i;
  t.count <- t.count + 1

let prepend t (i : Instr.t) =
  check_unowned i;
  i.Instr.owner <- t.id;
  i.Instr.next <- t.first;
  i.Instr.prev <- None;
  (match t.first with
   | Some f -> f.Instr.prev <- Some i
   | None -> t.last <- Some i);
  t.first <- Some i;
  t.count <- t.count + 1

let insert_after t (anchor : Instr.t) (i : Instr.t) =
  if anchor.Instr.owner <> t.id then invalid_arg "Instrlist.insert_after: wrong list";
  check_unowned i;
  i.Instr.owner <- t.id;
  i.Instr.prev <- Some anchor;
  i.Instr.next <- anchor.Instr.next;
  (match anchor.Instr.next with
   | Some n -> n.Instr.prev <- Some i
   | None -> t.last <- Some i);
  anchor.Instr.next <- Some i;
  t.count <- t.count + 1

let insert_before t (anchor : Instr.t) (i : Instr.t) =
  if anchor.Instr.owner <> t.id then invalid_arg "Instrlist.insert_before: wrong list";
  check_unowned i;
  i.Instr.owner <- t.id;
  i.Instr.next <- Some anchor;
  i.Instr.prev <- anchor.Instr.prev;
  (match anchor.Instr.prev with
   | Some p -> p.Instr.next <- Some i
   | None -> t.first <- Some i);
  anchor.Instr.prev <- Some i;
  t.count <- t.count + 1

let remove t (i : Instr.t) =
  if i.Instr.owner <> t.id then invalid_arg "Instrlist.remove: wrong list";
  (match i.Instr.prev with
   | Some p -> p.Instr.next <- i.Instr.next
   | None -> t.first <- i.Instr.next);
  (match i.Instr.next with
   | Some n -> n.Instr.prev <- i.Instr.prev
   | None -> t.last <- i.Instr.prev);
  i.Instr.prev <- None;
  i.Instr.next <- None;
  i.Instr.owner <- 0;
  t.count <- t.count - 1

(** [replace t old new_] — swap [new_] into [old]'s position. *)
let replace t (old : Instr.t) (new_ : Instr.t) =
  insert_after t old new_;
  remove t old

let iter t f =
  let rec go = function
    | None -> ()
    | Some (i : Instr.t) ->
        let nxt = i.Instr.next in
        f i;
        go nxt
  in
  go t.first

let iter_rev t f =
  let rec go = function
    | None -> ()
    | Some (i : Instr.t) ->
        let prv = i.Instr.prev in
        f i;
        go prv
  in
  go t.last

let fold t ~init f =
  let acc = ref init in
  iter t (fun i -> acc := f !acc i);
  !acc

let to_list t = List.rev (fold t ~init:[] (fun acc i -> i :: acc))

let exists t p = fold t ~init:false (fun acc i -> acc || p i)

(** Append every instr of [src] to [dst], leaving [src] empty. *)
let append_all ~(dst : t) (src : t) =
  iter src (fun i ->
      remove src i;
      append dst i)

(* ------------------------------------------------------------------ *)
(* Level operations                                                   *)
(* ------------------------------------------------------------------ *)

(** Split every L0 bundle into per-instruction L1 [Instr]s (the L0→L1
    transition of §3.1). *)
let split_bundles (t : t) : unit =
  let rec go = function
    | None -> ()
    | Some (i : Instr.t) ->
        let nxt = i.Instr.next in
        (if Instr.is_bundle i then begin
           let raw, addr = Instr.raw_of i in
           let fetch a = Char.code (Bytes.get raw (a - addr)) in
           let stop = addr + Bytes.length raw in
           let anchor = ref i in
           let pos = ref addr in
           while !pos < stop do
             let len = Isa.Decode.boundary_exn fetch !pos in
             let piece = Bytes.sub raw (!pos - addr) len in
             let single = Instr.of_raw ~addr:!pos piece in
             insert_after t !anchor single;
             anchor := single;
             pos := !pos + len
           done;
           remove t i
         end);
        go nxt
  in
  go t.first

(** Raise every instruction to at least the given level.  [L3] is what
    DynamoRIO uses before running optimizations on a trace: fully
    decoded, raw bits still valid. *)
let decode_to (t : t) (lvl : Level.t) : unit =
  (match lvl with Level.L0 -> () | _ -> split_bundles t);
  iter t (fun i ->
      match lvl with
      | Level.L0 | Level.L1 -> ()
      | Level.L2 -> Instr.uplevel2 i
      | Level.L3 -> Instr.uplevel3 i
      | Level.L4 ->
          Instr.uplevel3 i;
          Instr.invalidate_raw i)

(** Total encoded size when laid out starting at [pc]. *)
let encoded_size ?(pc = 0) (t : t) : int =
  fst
    (fold t ~init:(0, pc) (fun (sz, pc) i ->
         let l = Instr.length ~pc i in
         (sz + l, pc + l)))

let pp ppf t =
  iter t (fun i -> Fmt.pf ppf "  %a@." Instr.pp i)
