(** vpr-like: FPGA place-and-route inner loops (SPEC2000 175.vpr).

    Character: tight, highly regular integer loops — bounding-box cost
    recomputation over a placement grid — with very high code reuse,
    few calls, and almost no indirect branches.  Under a code cache
    this is the friendly case: once the handful of hot blocks are
    linked into traces, execution stays in the cache (Table 1: 1.2×
    with indirect linking, 1.1× with traces). *)

open Asm.Dsl

let grid = 48
let iters = 55

let text =
  [
    label "main";
    mov ebp esp;
    mov edx (i 0);                 (* iteration counter *)
    mov edi (i 0);                 (* accumulated cost *)
    label "iter";
    mov esi (i 0);                 (* cell index *)
    label "cell";
    (* load cell position, compute manhattan cost against its net *)
    li ebx "cells";
    mov eax (m ~base:ebx ~index:(esi, 4) ());
    mov ecx eax;
    and_ eax (i 0xFFFF);           (* x *)
    shr ecx (i 16);                (* y *)
    (* |x - xc| *)
    sub eax (i (grid / 2));
    j nl "xpos";
    neg eax;
    label "xpos";
    (* |y - yc| *)
    sub ecx (i (grid / 2));
    j nl "ypos";
    neg ecx;
    label "ypos";
    add eax ecx;
    (* weight by net fanout (reload from the same slot the compiler
       spilled to — a little cross-block redundancy like real vpr) *)
    li ebx "fanout";
    mov ecx (mb ebx);
    imul eax ecx;
    add edi eax;
    mov ecx (mb ebx);
    add edi ecx;
    (* every 4th cell crosses a region boundary and pays a helper call,
       like real vpr's occasional net-cost recomputations *)
    mov eax esi;
    and_ eax (i 3);
    j nz "nocall";
    call "region_cost";
    label "nocall";
    inc esi;
    cmp esi (i (grid * grid / 4));
    j l "cell";
    inc edx;
    cmp edx (i iters);
    j l "iter";
    out edi;
    hlt;
    label "region_cost";
    mov eax esi;
    shr eax (i 3);
    add edi eax;
    ret;
  ]

let data =
  [
    label "cells";
    word32
      (List.map
         (fun v -> ((v mod grid) lsl 16) lor (v / 7 mod grid))
         (Workload.lcg ~seed:42 (grid * grid / 4)));
    label "fanout";
    word32 [ 3 ];
  ]

let workload =
  Workload.make ~name:"vpr" ~spec_name:"175.vpr" ~fp:false
    ~description:
      "regular placement-cost loops, high reuse, almost no indirect branches \
       (code-cache-friendly case)"
    (program ~name:"vpr" ~entry:"main" ~text ~data ())
