lib/workloads/bzip2_like.ml: Asm Char Fun List String Workload
