(** The simulated machine: memory, hardware threads, predictor state,
    cycle counter, and I/O ports.

    The machine is the substrate "hardware + OS" that both native
    execution and the DynamoRIO runtime drive.  It knows nothing about
    code caches; the RIO layer reserves a memory region for its cache
    and registers a {e trap base} — control transfers at or above that
    address stop the interpreter and hand control to the runtime
    (modelling exit stubs and lookup routines). *)

open Isa

(* One line of the decoded-instruction cache.  Slots are mutated in
   place on refill so steady-state fetch allocates nothing. *)
type islot = {
  mutable is_pc : int;               (* -1 = never filled *)
  mutable is_gen : int;              (* page generation when filled *)
  mutable is_insn : Insn.t;
  mutable is_len : int;
  mutable is_cost : int;             (* static (operand-shape) cycles *)
}

type thread = {
  tid : int;
  regs : int array;                  (* 8 GPRs, unsigned 32-bit values *)
  fregs : float array;               (* 8 FP regs *)
  mutable eflags : Eflags.t;
  mutable pc : int;
  mutable alive : bool;
  mutable pending_signals : int list;  (* handler addresses, FIFO *)
}

type t = {
  mem : Memory.t;
  cost : Cost.t;
  pred : Cost.predictor;
  mutable cycles : int;
  mutable insns_retired : int;
  mutable output : int list;         (* reversed *)
  mutable input : int list;
  mutable threads : thread list;     (* in tid order *)
  mutable next_tid : int;
  mutable trap_base : int;           (* addresses >= trap_base trap to the runtime *)
  (* decoded-instruction cache: models the hardware fetch/decode path.
     Direct-mapped on the low pc bits; invalidation is a per-4KB-page
     generation bump, so the RIO layer's post-patch invalidations are
     O(pages touched) instead of O(bytes).  Hit/miss behaviour is purely
     a host-time concern — decode is free in the cost model. *)
  icache : islot array;
  icache_gens : int array;           (* one generation per 4KB page *)
  emu_slot : islot;                  (* scratch slot for uncached decode *)
  (* timed signal queue: (deliver_at_cycle, tid, handler_addr) *)
  mutable signal_queue : (int * int * int) list;
  (* when true the runtime intercepts signal delivery (RIO active) *)
  mutable intercept_signals : bool;
  (* when true, writes to executed code stop execution at the next
     control transfer so the runtime can flush stale fragments *)
  mutable smc_trap : bool;
  mutable pending_smc : (int * int) list;
}

let icache_bits = 15
let icache_mask = (1 lsl icache_bits) - 1

let fresh_islot () =
  { is_pc = -1; is_gen = 0; is_insn = Insn.mk_hlt (); is_len = 0; is_cost = 0 }

(* All lines start out pointing at one shared never-filled slot
   (is_pc = -1, so it can never hit); a line gets its own record on
   first refill.  Creating a machine then costs one pointer fill, not
   32K record allocations. *)
let dummy_islot = fresh_islot ()

let create ?(family = Cost.Pentium4) ?(mem_size = 1 lsl 26) () =
  {
    mem = Memory.create mem_size;
    cost = Cost.default_params family;
    pred = Cost.create_predictor ();
    cycles = 0;
    insns_retired = 0;
    output = [];
    input = [];
    threads = [];
    next_tid = 0;
    trap_base = max_int;
    icache = Array.make (1 lsl icache_bits) dummy_islot;
    icache_gens = Array.make ((mem_size lsr Memory.page_bits) + 1) 0;
    emu_slot = fresh_islot ();
    signal_queue = [];
    intercept_signals = false;
    smc_trap = false;
    pending_smc = [];
  }

let mem m = m.mem
let cost m = m.cost
let cycles m = m.cycles
let add_cycles m n = m.cycles <- m.cycles + n
let output m = List.rev m.output
let set_input m vs = m.input <- vs
let push_output m v = m.output <- v :: m.output

let pop_input m =
  match m.input with
  | [] -> 0
  | v :: rest ->
      m.input <- rest;
      v

(* ------------------------------------------------------------------ *)
(* Threads                                                            *)
(* ------------------------------------------------------------------ *)

let add_thread m ~entry ~stack_top =
  let t =
    {
      tid = m.next_tid;
      regs = Array.make 8 0;
      fregs = Array.make 8 0.0;
      eflags = Eflags.empty;
      pc = entry;
      alive = true;
      pending_signals = [];
    }
  in
  t.regs.(Reg.number Reg.Esp) <- stack_top;
  m.next_tid <- m.next_tid + 1;
  m.threads <- m.threads @ [ t ];
  t

let live_threads m = List.filter (fun t -> t.alive) m.threads
let main_thread m = List.hd m.threads

let get_reg (t : thread) (r : Reg.t) = t.regs.(Reg.number r)
let set_reg (t : thread) (r : Reg.t) v = t.regs.(Reg.number r) <- v land Arith.mask32
let get_freg (t : thread) (f : Reg.F.t) = t.fregs.(Reg.F.number f)
let set_freg (t : thread) (f : Reg.F.t) v = t.fregs.(Reg.F.number f) <- v

(* ------------------------------------------------------------------ *)
(* Signals                                                            *)
(* ------------------------------------------------------------------ *)

(** Schedule an asynchronous signal: at (or after) cycle [at], thread
    [tid]'s control is redirected to [handler] (old pc pushed on its
    stack, handler returns with [ret]). *)
let schedule_signal m ~at ~tid ~handler =
  m.signal_queue <-
    List.sort compare ((at, tid, handler) :: m.signal_queue)

(** Move due signals into their thread's pending queue; returns true if
    any became pending. *)
let poll_signals m =
  let due, later = List.partition (fun (at, _, _) -> at <= m.cycles) m.signal_queue in
  m.signal_queue <- later;
  List.iter
    (fun (_, tid, h) ->
      match List.find_opt (fun t -> t.tid = tid) m.threads with
      | Some t when t.alive -> t.pending_signals <- t.pending_signals @ [ h ]
      | _ -> ())
    due;
  due <> []

(* ------------------------------------------------------------------ *)
(* Instruction cache                                                  *)
(* ------------------------------------------------------------------ *)

(* Static (operand-shape) cost of an instruction: base cycles plus
   memory-operand read/write costs, including implicit stack traffic. *)
let static_cost (c : Cost.t) (i : Insn.t) : int =
  let base = Cost.base_cycles c i.opcode in
  let mem_srcs =
    match i.opcode with
    | Lea -> 0 (* address computation only *)
    | _ -> Array.fold_left (fun n o -> if Operand.is_mem o then n + 1 else n) 0 i.srcs
  in
  let mem_dsts =
    Array.fold_left (fun n o -> if Operand.is_mem o then n + 1 else n) 0 i.dsts
  in
  let implicit_r = if Opcode.implicit_stack_read i.opcode then 1 else 0 in
  let implicit_w = if Opcode.implicit_stack_write i.opcode then 1 else 0 in
  base
  + ((mem_srcs + implicit_r) * c.mem_read)
  + ((mem_dsts + implicit_w) * c.mem_write)

exception Bad_code of { pc : int; err : Decode.error }

(** Fetch-and-decode with caching.  Returns the (mutable, reused) cache
    slot — valid until the next fetch that maps to the same line. *)
let fetch_slot m pc : islot =
  let slot = Array.unsafe_get m.icache (pc land icache_mask) in
  let gens = m.icache_gens in
  let gi = pc lsr Memory.page_bits in
  (* a pc outside memory never matches (slots are only filled after a
     successful decode) and faults in the decoder below *)
  let gen = if gi < Array.length gens then Array.unsafe_get gens gi else 0 in
  if slot.is_pc = pc && slot.is_gen = gen then slot
  else
    match Decode.full (Memory.fetch m.mem) pc with
    | Error err -> raise (Bad_code { pc; err })
    | Ok (insn, len) ->
        let slot =
          if slot == dummy_islot then begin
            let s = fresh_islot () in
            Array.unsafe_set m.icache (pc land icache_mask) s;
            s
          end
          else slot
        in
        slot.is_pc <- pc;
        slot.is_gen <- gen;
        slot.is_insn <- insn;
        slot.is_len <- len;
        slot.is_cost <- static_cost m.cost insn;
        (* executed code becomes write-watched so self-modification
           is detected (code-cache / icache consistency) *)
        Memory.watch_code m.mem ~addr:pc ~len;
        slot

(** Decode without caching (the pure-emulation path re-decodes every
    time, which is the point of Table 1's first row).  Fills the
    machine's scratch slot. *)
let fetch_slot_nocache m pc : islot =
  match Decode.full (Memory.fetch m.mem) pc with
  | Error err -> raise (Bad_code { pc; err })
  | Ok (insn, len) ->
      let slot = m.emu_slot in
      slot.is_pc <- pc;
      slot.is_insn <- insn;
      slot.is_len <- len;
      slot.is_cost <- static_cost m.cost insn;
      slot

(** Invalidate cached decodes for [len] bytes at [addr].  The RIO layer
    calls this after writing code (patching links, emitting fragments). *)
let invalidate_icache m ~addr ~len =
  (* conservative: decoded instructions are at most 13 bytes long, so
     also cover decodes starting shortly before the range; the page
     generation bump invalidates every cached decode on those pages *)
  let lo = max 0 (addr - 13) in
  let hi = addr + len - 1 in
  let gens = m.icache_gens in
  let p1 = min (Array.length gens - 1) (hi lsr Memory.page_bits) in
  for p = lo lsr Memory.page_bits to p1 do
    gens.(p) <- gens.(p) + 1
  done

let reset_hardware m =
  (* the shared never-filled slot is read-only: lines still pointing at
     it were never filled, and writing it would race between domains *)
  Array.iter (fun s -> if s != dummy_islot then s.is_pc <- -1) m.icache;
  Cost.reset_predictor m.pred

(** Reset the per-run machine state for serving a new request on a
    reused machine: threads, I/O ports, cycle and instruction counters,
    signals, and predictor go back to power-on.  Memory contents and
    cached decodes are left alone — the warm-reuse path (Rio) zeroes
    the pages the previous run wrote and restores the program image,
    invalidating cached decodes only where bytes changed. *)
let reset_for_run m =
  m.cycles <- 0;
  m.insns_retired <- 0;
  m.output <- [];
  m.input <- [];
  m.threads <- [];
  m.next_tid <- 0;
  m.signal_queue <- [];
  m.pending_smc <- [];
  Cost.reset_predictor m.pred
