(** Cooperative round-robin scheduler for running programs directly on
    the simulated machine (native execution and pure emulation).

    The DynamoRIO runtime has its own dispatch loop and uses this
    module only as a reference for scheduling policy: threads run in
    tid order with a fixed cycle quantum. *)

type outcome = {
  stop : Interp.stop;        (** why the {e last} thread stopped *)
  cycles : int;              (** total machine cycles consumed *)
  insns : int;               (** total instructions retired *)
}

let default_quantum = 50_000

(** Run all live threads to completion (or fault), interleaving with a
    round-robin quantum.  [max_cycles] bounds total simulated time. *)
let run ?(quantum = default_quantum) ?(max_cycles = max_int) ~emulate
    (m : Machine.t) : outcome =
  let c0 = Machine.cycles m in
  let i0 = m.Machine.insns_retired in
  let deadline = c0 + max_cycles in
  let last_stop = ref Interp.Halted in
  let rec loop () =
    match Machine.live_threads m with
    | [] -> ()
    | threads ->
        if Machine.cycles m >= deadline then last_stop := Interp.Budget
        else begin
          let continue_ = ref true in
          List.iter
            (fun t ->
              if !continue_ && t.Machine.alive then begin
                let budget = min quantum (deadline - Machine.cycles m) in
                let stop = Interp.run m t ~budget ~emulate in
                last_stop := stop;
                match stop with
                | Interp.Budget | Interp.Halted -> ()
                | Interp.Fault _ ->
                    (* a faulting thread kills the process, like a real OS *)
                    List.iter (fun t -> t.Machine.alive <- false) m.Machine.threads;
                    continue_ := false
                | Interp.Trap _ | Interp.Ccall _ | Interp.Signal _ | Interp.Smc _ ->
                    (* these events belong to the RIO runtime; reaching
                       them natively is a program error *)
                    List.iter (fun t -> t.Machine.alive <- false) m.Machine.threads;
                    last_stop :=
                      Interp.Fault
                        (Printf.sprintf "unexpected native event: %s"
                           (Interp.stop_to_string stop));
                    continue_ := false
              end)
            threads;
          if !continue_ then loop ()
        end
  in
  loop ();
  {
    stop = !last_stop;
    cycles = Machine.cycles m - c0;
    insns = m.Machine.insns_retired - i0;
  }
