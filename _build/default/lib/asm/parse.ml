(** Textual assembler front-end: parse AT&T-flavoured SynISA assembly
    into an {!Ast.program}.

    Syntax summary (one statement per line; [#] or [;] start comments):

    {v
    .text                     ; switch section (default)
    .data
    .entry main               ; entry label (default "main")
    .word 1, 2, -3            ; 32-bit words (data)
    .word @table_target       ; a label's address as a word
    .float 1.5, 2.5           ; 64-bit doubles
    .space 64                 ; zero bytes
    .ascii "bytes"            ; raw bytes

    main:                     ; label
        mov   %eax, $42       ; dst first (matching the disassembler)
        mov   %ecx, 8(%ebp)
        add   %eax, (%ebx,%ecx,4)
        fld   %f0, @vals+8    ; absolute memory at label+offset
        lea   %esi, @buf      ; a label address as an immediate? no —
                              ; lea of an absolute address
        li    %esi, @buf      ; pseudo: load label address (mov imm)
        cmp   %eax, $10
        jl    loop            ; branch to label
        call  helper
        jmp*  %eax            ; indirect
        out   %eax
        hlt
    v}

    Registers are [%eax]-style; immediates [$n] (decimal or 0x hex);
    memory operands are [disp(base,index,scale)] with any parts
    omitted, or [@label+off] for absolute data references. *)

open Isa

exception Parse_error of { line : int; msg : string }

let perr line fmt = Printf.ksprintf (fun msg -> raise (Parse_error { line; msg })) fmt

(* ------------------------------------------------------------------ *)
(* Tokenizing one line                                                *)
(* ------------------------------------------------------------------ *)

let strip_comment s =
  let cut =
    match (String.index_opt s '#', String.index_opt s ';') with
    | Some a, Some b -> Some (min a b)
    | Some a, None -> Some a
    | None, Some b -> Some b
    | None, None -> None
  in
  match cut with Some i -> String.sub s 0 i | None -> s

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

(* split "mov %eax, $42" into the mnemonic and raw operand strings *)
let split_stmt line (s : string) : string * string list =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, [])
  | Some sp ->
      let m = String.sub s 0 sp in
      let rest = String.sub s sp (String.length s - sp) in
      (* split top-level commas (parentheses protect the SIB commas) *)
      let ops = ref [] in
      let buf = Buffer.create 16 in
      let depth = ref 0 in
      String.iter
        (fun c ->
          match c with
          | '(' ->
              incr depth;
              Buffer.add_char buf c
          | ')' ->
              decr depth;
              Buffer.add_char buf c
          | ',' when !depth = 0 ->
              ops := Buffer.contents buf :: !ops;
              Buffer.clear buf
          | c -> Buffer.add_char buf c)
        rest;
      ops := Buffer.contents buf :: !ops;
      (* !ops is in reverse order; rev_map restores source order *)
      let ops = List.rev_map String.trim !ops in
      if List.exists (fun o -> o = "") ops then perr line "empty operand";
      (m, ops)

(* ------------------------------------------------------------------ *)
(* Operand parsing                                                    *)
(* ------------------------------------------------------------------ *)

let parse_int line (s : string) : int =
  let s = String.trim s in
  match int_of_string s (* handles 0x..., negatives *) with
  | v when v >= 0x8000_0000 && v <= 0xFFFF_FFFF ->
      (* canonicalize to the signed spelling of the same 32-bit value
         (so $0xffffffff means -1 and takes the short encoding) *)
      v - 0x1_0000_0000
  | v -> v
  | exception _ -> perr line "bad integer %S" s

let reg_of_name line = function
  | "%eax" -> Reg.Eax
  | "%ecx" -> Reg.Ecx
  | "%edx" -> Reg.Edx
  | "%ebx" -> Reg.Ebx
  | "%esp" -> Reg.Esp
  | "%ebp" -> Reg.Ebp
  | "%esi" -> Reg.Esi
  | "%edi" -> Reg.Edi
  | r -> perr line "unknown register %S" r

let freg_of_name _line (s : string) : Reg.F.t option =
  if String.length s = 3 && s.[0] = '%' && s.[1] = 'f' && s.[2] >= '0' && s.[2] <= '7'
  then Some (Reg.F.make (Char.code s.[2] - Char.code '0'))
  else None

(* a label reference with optional +off/-off *)
let parse_label_ref line (s : string) : string * int =
  match (String.index_opt s '+', String.index_opt s '-') with
  | Some i, _ ->
      (String.sub s 0 i, parse_int line (String.sub s (i + 1) (String.length s - i - 1)))
  | None, Some i when i > 0 ->
      (String.sub s 0 i, -parse_int line (String.sub s (i + 1) (String.length s - i - 1)))
  | _ -> (s, 0)

(* Operand grammar:
     %reg | %fN | $imm | @label(+off)? | disp? ( base? , index , scale )? *)
type raw_operand =
  | O_plain of Operand.t
  | O_labelled of (Ast.env -> Operand.t)  (* needs label resolution *)

let parse_operand line (s : string) : raw_operand =
  let s = String.trim s in
  if s = "" then perr line "empty operand"
  else if s.[0] = '%' then
    match freg_of_name line s with
    | Some f -> O_plain (Operand.Freg f)
    | None -> O_plain (Operand.Reg (reg_of_name line s))
  else if s.[0] = '$' then
    let body = String.sub s 1 (String.length s - 1) in
    if body <> "" && body.[0] = '@' then begin
      (* $@label: a label's address as an immediate *)
      let l, off = parse_label_ref line (String.sub body 1 (String.length body - 1)) in
      O_labelled (fun env -> Operand.Imm (env l + off))
    end
    else O_plain (Operand.Imm (parse_int line body))
  else if s.[0] = '@' then begin
    (* absolute memory at a label *)
    let l, off = parse_label_ref line (String.sub s 1 (String.length s - 1)) in
    O_labelled (fun env -> Operand.mem_abs (env l + off))
  end
  else if String.contains s '(' then begin
    let open_p = String.index s '(' in
    let close_p =
      match String.rindex_opt s ')' with
      | Some i when i > open_p -> i
      | _ -> perr line "unbalanced parentheses in %S" s
    in
    let disp_s = String.trim (String.sub s 0 open_p) in
    let inner = String.sub s (open_p + 1) (close_p - open_p - 1) in
    let parts = String.split_on_char ',' inner |> List.map String.trim in
    let base, index =
      match parts with
      | [ b ] -> ((if b = "" then None else Some (reg_of_name line b)), None)
      | [ b; i ] ->
          ( (if b = "" then None else Some (reg_of_name line b)),
            if i = "" then None else Some (reg_of_name line i, 1) )
      | [ b; i; sc ] ->
          ( (if b = "" then None else Some (reg_of_name line b)),
            if i = "" then None else Some (reg_of_name line i, parse_int line sc) )
      | _ -> perr line "bad memory operand %S" s
    in
    if disp_s <> "" && disp_s.[0] = '@' then begin
      let l, off = parse_label_ref line (String.sub disp_s 1 (String.length disp_s - 1)) in
      O_labelled
        (fun env -> Operand.mem ?base ?index ~disp:(env l + off) ())
    end
    else
      let disp = if disp_s = "" then 0 else parse_int line disp_s in
      O_plain (Operand.mem ?base ?index ~disp ())
  end
  else if s.[0] >= '0' && s.[0] <= '9' || (s.[0] = '-' && String.length s > 1) then
    (* a bare number is an absolute memory reference (as printed by the
       disassembler for no-base, no-index operands) *)
    O_plain (Operand.mem_abs (parse_int line s))
  else perr line "cannot parse operand %S" s

let resolve env = function O_plain o -> o | O_labelled f -> f env

(* ------------------------------------------------------------------ *)
(* Instruction parsing                                                *)
(* ------------------------------------------------------------------ *)

let cond_of_suffix (s : string) : Cond.t option =
  List.find_opt (fun c -> Cond.name c = s) Cond.all

let freg_arg line env (o : raw_operand) : Reg.F.t =
  match resolve env o with
  | Operand.Freg f -> f
  | _ -> perr line "expected an FP register"

let parse_instr line (mnemonic : string) (ops : raw_operand list) :
    (Ast.env -> Insn.t) =
  let n_ops = List.length ops in
  let op k env = resolve env (List.nth ops k) in
  let need n =
    if n_ops <> n then perr line "%s expects %d operand(s), got %d" mnemonic n n_ops
  in
  let unary mk =
    need 1;
    fun env -> mk (op 0 env)
  in
  let binary mk =
    need 2;
    fun env -> mk (op 0 env) (op 1 env)
  in
  let fp_binary mk =
    need 2;
    fun env -> mk (freg_arg line env (List.nth ops 0)) (op 1 env)
  in
  let fp_unary mk =
    need 1;
    fun env -> mk (freg_arg line env (List.nth ops 0))
  in
  match mnemonic with
  | "mov" -> binary Insn.mk_mov
  | "li" ->
      (* pseudo: load a label/imm into a register *)
      binary (fun d s -> Insn.mk_mov d s)
  | "movzx8" -> binary Insn.mk_movzx8
  | "movzx16" -> binary Insn.mk_movzx16
  | "lea" -> binary Insn.mk_lea
  | "push" -> unary Insn.mk_push
  | "pop" -> unary Insn.mk_pop
  | "xchg" -> binary Insn.mk_xchg
  | "pushf" -> need 0; fun _ -> Insn.mk_pushf ()
  | "popf" -> need 0; fun _ -> Insn.mk_popf ()
  | "add" -> binary Insn.mk_add
  | "adc" -> binary Insn.mk_adc
  | "sub" -> binary Insn.mk_sub
  | "sbb" -> binary Insn.mk_sbb
  | "and" -> binary Insn.mk_and
  | "or" -> binary Insn.mk_or
  | "xor" -> binary Insn.mk_xor
  | "imul" -> binary Insn.mk_imul
  | "inc" -> unary Insn.mk_inc
  | "dec" -> unary Insn.mk_dec
  | "neg" -> unary Insn.mk_neg
  | "not" -> unary Insn.mk_not
  | "cmp" -> binary Insn.mk_cmp
  | "test" -> binary Insn.mk_test
  | "idiv" -> unary Insn.mk_idiv
  | "shl" -> binary Insn.mk_shl
  | "shr" -> binary Insn.mk_shr
  | "sar" -> binary Insn.mk_sar
  | "ret" -> need 0; fun _ -> Insn.mk_ret ()
  | "nop" -> need 0; fun _ -> Insn.mk_nop ()
  | "hlt" -> need 0; fun _ -> Insn.mk_hlt ()
  | "out" -> unary Insn.mk_out
  | "in" -> unary Insn.mk_in
  | "jmp*" -> unary Insn.mk_jmp_ind
  | "call*" -> unary Insn.mk_call_ind
  | "fld" -> fp_binary Insn.mk_fld
  | "fst" ->
      need 2;
      fun env -> Insn.mk_fst (op 0 env) (freg_arg line env (List.nth ops 1))
  | "fmov" ->
      need 2;
      fun env ->
        Insn.mk_fmov
          (freg_arg line env (List.nth ops 0))
          (freg_arg line env (List.nth ops 1))
  | "fadd" -> fp_binary Insn.mk_fadd
  | "fsub" -> fp_binary Insn.mk_fsub
  | "fmul" -> fp_binary Insn.mk_fmul
  | "fdiv" -> fp_binary Insn.mk_fdiv
  | "fabs" -> fp_unary Insn.mk_fabs
  | "fneg" -> fp_unary Insn.mk_fneg
  | "fsqrt" -> fp_unary Insn.mk_fsqrt
  | "fcmp" -> fp_binary Insn.mk_fcmp
  | "cvtsi" -> fp_binary Insn.mk_cvtsi
  | "cvtfi" ->
      need 2;
      fun env -> Insn.mk_cvtfi (op 0 env) (freg_arg line env (List.nth ops 1))
  | _ -> perr line "unknown mnemonic %S" mnemonic

(* branch mnemonics take a bare label or a numeric absolute address *)
let parse_branch line (mnemonic : string) (ops : string list) :
    (Ast.env -> Insn.t) option =
  let is_numeric l =
    l <> "" && (l.[0] = '0' && String.length l > 1 && l.[1] = 'x'
                || (l.[0] >= '0' && l.[0] <= '9'))
  in
  let target () =
    match ops with
    | [ l ] when is_numeric l ->
        let a = parse_int line l in
        fun (_ : Ast.env) -> a
    | [ l ] when l <> "" && (is_ident_char l.[0] || l.[0] = '_') ->
        fun env -> env l
    | _ -> perr line "%s expects a label" mnemonic
  in
  match mnemonic with
  | "jmp" -> (
      (* could be an indirect jmp through an operand: detect by sigil *)
      match ops with
      | [ o ] when o <> "" && (o.[0] = '%' || String.contains o '(') ->
          let ro = parse_operand line o in
          Some (fun env -> Insn.mk_jmp_ind (resolve env ro))
      | _ ->
          let t = target () in
          Some (fun env -> Insn.mk_jmp (t env)))
  | "call" -> (
      match ops with
      | [ o ] when o <> "" && (o.[0] = '%' || String.contains o '(') ->
          let ro = parse_operand line o in
          Some (fun env -> Insn.mk_call_ind (resolve env ro))
      | _ ->
          let t = target () in
          Some (fun env -> Insn.mk_call (t env)))
  | m when String.length m > 1 && m.[0] = 'j' && m <> "jmp*" -> (
      match cond_of_suffix (String.sub m 1 (String.length m - 1)) with
      | Some c ->
          let t = target () in
          Some (fun env -> Insn.mk_jcc c (t env))
      | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Directives and program assembly                                    *)
(* ------------------------------------------------------------------ *)

let parse_string_lit line (s : string) : string =
  let s = String.trim s in
  if String.length s < 2 || s.[0] <> '"' || s.[String.length s - 1] <> '"' then
    perr line "expected a double-quoted string";
  Scanf.unescaped (String.sub s 1 (String.length s - 2))

(** Parse a whole program from source text. *)
let program ?(name = "asmfile") (source : string) : Ast.program =
  let entry = ref "main" in
  let text = ref [] and data = ref [] in
  let current = ref text in
  let push item = !current := item :: !(!current) in
  List.iteri
    (fun idx raw_line ->
      let line = idx + 1 in
      let s = String.trim (strip_comment raw_line) in
      if s <> "" then
        if s.[0] = '.' then begin
          (* directive *)
          let d, rest = split_stmt line s in
          match d with
          | ".text" -> current := text
          | ".data" -> current := data
          | ".entry" -> (
              match rest with
              | [ l ] -> entry := l
              | _ -> perr line ".entry expects a label")
          | ".word" ->
              let words =
                List.map
                  (fun w ->
                    let w = String.trim w in
                    if w <> "" && w.[0] = '@' then begin
                      let l, off = parse_label_ref line (String.sub w 1 (String.length w - 1)) in
                      fun (env : Ast.env) -> env l + off
                    end
                    else
                      let v = parse_int line w in
                      fun _ -> v)
                  rest
              in
              push (Ast.Word32 words)
          | ".float" ->
              push
                (Ast.Float64
                   (List.map
                      (fun w ->
                        try float_of_string (String.trim w)
                        with _ -> perr line "bad float %S" w)
                      rest))
          | ".space" -> (
              match rest with
              | [ n ] -> push (Ast.Space (parse_int line n))
              | _ -> perr line ".space expects a size")
          | ".align" -> (
              match rest with
              | [ n ] -> push (Ast.Align (parse_int line n))
              | _ -> perr line ".align expects a value")
          | ".ascii" ->
              (* re-join: the string literal may contain commas *)
              let payload = String.concat ", " rest in
              push (Ast.Bytes_lit (parse_string_lit line payload))
          | _ -> perr line "unknown directive %S" d
        end
        else if String.length s > 1 && s.[String.length s - 1] = ':' then
          push (Ast.Label (String.sub s 0 (String.length s - 1)))
        else begin
          let s, prefixes =
            if String.length s > 5 && String.sub s 0 5 = "lock " then
              (String.trim (String.sub s 5 (String.length s - 5)), Insn.prefix_lock)
            else (s, 0)
          in
          let with_prefix f env = { (f env) with Insn.prefixes } in
          let mnemonic, ops = split_stmt line s in
          match parse_branch line mnemonic ops with
          | Some f -> push (Ast.Ins (with_prefix f))
          | None ->
              let raw_ops = List.map (parse_operand line) ops in
              push (Ast.Ins (with_prefix (parse_instr line mnemonic raw_ops)))
        end)
    (String.split_on_char '\n' source);
  Ast.program ~name ~entry:!entry ~text:(List.rev !text) ~data:(List.rev !data) ()

let program_of_file (path : string) : Ast.program =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let source = really_input_string ic n in
  close_in ic;
  program ~name:(Filename.basename path) source
