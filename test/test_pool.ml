(** Warm-reuse and domain-parallel serving tests (DESIGN.md §6.5).

    The load-bearing property: serving a request on a {e warm} reused
    instance — code cache, fragment index, and traces carried over from
    arbitrary earlier requests — is observationally identical to
    serving it on a fresh instance: same output, same stop reason, same
    final registers, flags, pc, and application memory.  Simulated
    cycle counts are allowed to differ (that is the point of reuse:
    warm requests skip block building). *)

open Workloads

let serving_names = [ "perlbmk"; "gzip"; "parser"; "gcc" ]

let serving =
  List.map
    (fun n -> Workload.serving_variant (Option.get (Suite.by_name n)))
    serving_names

type site = {
  image : Asm.Image.t;
  workload : Workload.t;
}

let sites =
  List.map
    (fun w -> (w.Workload.name, { image = Asm.Assemble.assemble w.Workload.program; workload = w }))
    serving

let fresh_machine (s : site) =
  let m = Vm.Machine.create () in
  Asm.Image.load_cold m s.image;
  m

let input_for (s : site) seed =
  Workload.request_input ~seed @ s.workload.Workload.input

(* Serve one request on [rt] (already reset or freshly created): add
   the main thread, feed the input, run. *)
let serve_on (rt : Rio.Engine.t) (s : site) seed =
  let m = Rio.Engine.machine rt in
  ignore
    (Vm.Machine.add_thread m ~entry:s.image.Asm.Image.entry
       ~stack_top:Asm.Image.default_stack_top);
  Vm.Machine.set_input m (input_for s seed);
  Rio.Engine.run rt

(* One warm server: a table of long-lived instances keyed by workload,
   exactly as a pool worker keeps them. *)
let warm_server ~opts () =
  let tbl : (string, Rio.Engine.t) Hashtbl.t = Hashtbl.create 8 in
  fun (name, seed) ->
    let s = List.assoc name sites in
    let rt =
      match Hashtbl.find_opt tbl name with
      | Some rt ->
          Rio.Engine.reset_for_reuse rt ~restore:(fun m ~zeroed ->
              Asm.Image.restore m s.image ~zeroed);
          rt
      | None ->
          let rt = Rio.Engine.create ~opts (fresh_machine s) in
          Hashtbl.replace tbl name rt;
          rt
    in
    (serve_on rt s seed, rt)

let fresh_serve ~opts (name, seed) =
  let s = List.assoc name sites in
  let rt = Rio.Engine.create ~opts (fresh_machine s) in
  (serve_on rt s seed, rt)

(* Final observable state: output, stop reason, main-thread register
   file, and all application memory below the TLS area. *)
let state_equal (o1 : Rio.Engine.outcome) rt1 (o2 : Rio.Engine.outcome) rt2 =
  let m1 = Rio.Engine.machine rt1 and m2 = Rio.Engine.machine rt2 in
  let t1 = Vm.Machine.main_thread m1 and t2 = Vm.Machine.main_thread m2 in
  let problems = ref [] in
  let check name b = if not b then problems := name :: !problems in
  check "output" (Vm.Machine.output m1 = Vm.Machine.output m2);
  check "reason" (o1.Rio.Engine.reason = o2.Rio.Engine.reason);
  check "regs" (t1.Vm.Machine.regs = t2.Vm.Machine.regs);
  check "fregs" (t1.Vm.Machine.fregs = t2.Vm.Machine.fregs);
  check "eflags" (t1.Vm.Machine.eflags = t2.Vm.Machine.eflags);
  (* a thread that halts while executing inside the code cache leaves
     pc at the halt's cache address, which legitimately depends on
     cache layout (fresh RIO vs native differ the same way); pc is an
     observable only while it points at application code *)
  check "pc"
    (if
       Rio.Types.is_app_addr t1.Vm.Machine.pc
       && Rio.Types.is_app_addr t2.Vm.Machine.pc
     then t1.Vm.Machine.pc = t2.Vm.Machine.pc
     else true);
  check "app memory"
    (Vm.Memory.equal_range
       (Vm.Machine.mem m1) (Vm.Machine.mem m2)
       ~addr:0 ~len:Rio.Types.tls_base);
  !problems

let default_opts = { Rio.Options.default with max_cycles = max_int / 2 }

let pressure_opts =
  {
    default_opts with
    Rio.Options.cache_capacity =
      Some (2 * Rio.Options.min_cache_capacity Rio.Options.default);
    flush_policy = Rio.Options.Flush_fifo;
  }

(* ------------------------------------------------------------------ *)
(* qcheck: warm reused instance == fresh instance per request          *)
(* ------------------------------------------------------------------ *)

let gen_sequence =
  QCheck.(
    list_of_size (Gen.int_range 3 6)
      (pair (int_range 0 (List.length serving_names - 1)) (int_range 0 1000)))

let warm_equals_fresh ~name ~opts =
  QCheck.Test.make ~count:8 ~name gen_sequence (fun seq ->
      let seq =
        List.map (fun (k, seed) -> (List.nth serving_names k, seed)) seq
      in
      let warm = warm_server ~opts () in
      List.for_all
        (fun req ->
          let ow, rtw = warm req in
          let of_, rtf = fresh_serve ~opts req in
          match state_equal ow rtw of_ rtf with
          | [] -> true
          | ps ->
              QCheck.Test.fail_reportf "%s seed %d: %s differ" (fst req)
                (snd req)
                (String.concat ", " ps))
        seq)

(* ------------------------------------------------------------------ *)
(* Two-domain smoke: concurrent independent instances                  *)
(* ------------------------------------------------------------------ *)

(* Two domains running full RIO instances at once: any domain-unsafe
   global mutable state in lib/rio or lib/vm shows up here as
   corruption or divergence. *)
let two_domain_smoke same_workload () =
  let pick i =
    if same_workload then List.hd serving
    else List.nth serving (i mod List.length serving)
  in
  let run_one i =
    let w = pick i in
    let s = List.assoc w.Workload.name sites in
    let results = ref [] in
    for seed = 10 * i to (10 * i) + 2 do
      let o, rt = fresh_serve ~opts:default_opts (w.Workload.name, seed) in
      let native =
        Workload.run_native (Workload.with_input w (input_for s seed))
      in
      results :=
        ( seed,
          o.Rio.Engine.reason = Rio.Engine.All_exited,
          Vm.Machine.output (Rio.Engine.machine rt) = native.Workload.output )
        :: !results
    done;
    !results
  in
  let d1 = Domain.spawn (fun () -> run_one 0) in
  let d2 = Domain.spawn (fun () -> run_one 1) in
  let check who rs =
    List.iter
      (fun (seed, exited, matches) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s seed %d exited" who seed)
          true exited;
        Alcotest.(check bool)
          (Printf.sprintf "%s seed %d matches native" who seed)
          true matches)
      rs
  in
  check "domain0" (Domain.join d1);
  check "domain1" (Domain.join d2)

(* ------------------------------------------------------------------ *)
(* Pool integration                                                    *)
(* ------------------------------------------------------------------ *)

let pool_boots ~opts =
  List.map
    (fun (name, s) ->
      ( name,
        {
          Rio.Pool.boot_machine = (fun () -> fresh_machine s);
          boot_entry = s.image.Asm.Image.entry;
          boot_stack_top = Asm.Image.default_stack_top;
          boot_restore =
            (fun m ~zeroed -> Asm.Image.restore m s.image ~zeroed);
          boot_opts = opts;
          boot_client = (fun () -> Rio.Types.null_client);
        } ))
    sites

let pool_requests n =
  List.init n (fun i ->
      let name = List.nth serving_names (i mod List.length serving_names) in
      let s = List.assoc name sites in
      let seed = 100 + i in
      let native =
        Workload.run_native (Workload.with_input s.workload (input_for s seed))
      in
      {
        Rio.Pool.req_key = name;
        req_seed = seed;
        req_input = input_for s seed;
        req_expect = Some native.Workload.output;
      })

let pool_case () =
  let pool =
    Rio.Pool.create ~max_inflight:2 ~domains:2
      ~boots:(pool_boots ~opts:default_opts) ()
  in
  let n = 12 in
  List.iter (Rio.Pool.submit pool) (pool_requests n);
  let results = Rio.Pool.drain pool in
  let snap = Rio.Pool.stats pool in
  Alcotest.(check int) "all completed" n (List.length results);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s seed %d ok" r.Rio.Pool.res_key r.Rio.Pool.res_seed)
        true r.Rio.Pool.res_ok)
    results;
  Alcotest.(check int) "warm + cold covers all"
    n
    (snap.Rio.Pool.snap_warm_hits + snap.Rio.Pool.snap_cold_boots);
  (* 12 requests over 4 workloads x 2 domains: at most 8 cold boots *)
  Alcotest.(check bool) "some requests served warm" true
    (snap.Rio.Pool.snap_warm_hits > 0);
  (* a second, all-warm pass on the same pool *)
  Rio.Pool.reset_counters pool;
  List.iter (Rio.Pool.submit pool) (pool_requests n);
  let results2 = Rio.Pool.drain pool in
  let snap2 = Rio.Pool.stats pool in
  Rio.Pool.shutdown pool;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "pass2 %s seed %d ok" r.Rio.Pool.res_key
           r.Rio.Pool.res_seed)
        true r.Rio.Pool.res_ok)
    results2;
  Alcotest.(check int) "second pass fully warm" n
    snap2.Rio.Pool.snap_warm_hits;
  (* merged stats cover work from both domains *)
  Alcotest.(check bool) "merged stats saw blocks" true
    (snap2.Rio.Pool.snap_stats.Rio.Stats.blocks_built > 0)

let pool_faults_case () =
  let opts =
    {
      default_opts with
      Rio.Options.faults = Some { Rio.Options.default_faults with fi_seed = 3 };
      audit_period = 1;
    }
  in
  let pool = Rio.Pool.create ~domains:2 ~boots:(pool_boots ~opts) () in
  let n = 8 in
  List.iter (Rio.Pool.submit pool) (pool_requests n);
  let results = Rio.Pool.drain pool in
  Rio.Pool.shutdown pool;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "faults %s seed %d ok" r.Rio.Pool.res_key
           r.Rio.Pool.res_seed)
        true r.Rio.Pool.res_ok)
    results

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "pool"
    [
      ( "warm reuse == fresh",
        [
          QCheck_alcotest.to_alcotest
            (warm_equals_fresh ~name:"default options" ~opts:default_opts);
          QCheck_alcotest.to_alcotest
            (warm_equals_fresh ~name:"FIFO cache pressure"
               ~opts:pressure_opts);
        ] );
      ( "two-domain smoke",
        [
          Alcotest.test_case "same workload concurrently" `Slow
            (two_domain_smoke true);
          Alcotest.test_case "different workloads concurrently" `Slow
            (two_domain_smoke false);
        ] );
      ( "pool",
        [
          Alcotest.test_case "warm serving with backpressure" `Slow pool_case;
          Alcotest.test_case "serving under fault injection" `Slow
            pool_faults_case;
        ] );
    ]
