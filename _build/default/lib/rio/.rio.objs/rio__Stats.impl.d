lib/rio/stats.ml: Fmt
