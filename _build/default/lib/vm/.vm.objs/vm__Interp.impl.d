lib/vm/interp.ml: Arith Array Cond Cost Decode Eflags Float Insn Isa List Machine Memory Operand Option Printf Reg
