(** mcf-like: network-simplex pointer chasing (SPEC2000 181.mcf).

    Character: loops dominated by dependent loads walking arc/node
    lists, light arithmetic, and unpredictable data-dependent branches.
    Code reuse is high (one hot loop nest) but the work per iteration
    is memory-bound, so code-cache overhead amortizes well while
    optimizations find little to remove. *)

open Asm.Dsl

let nodes = 1500
let rounds = 55

let text =
  [
    label "main";
    mov ebp esp;
    mov edx (i 0);
    mov edi (i 0);                    (* total cost *)
    label "round";
    (* walk the node chain from node 0 until the null link *)
    mov esi (i 0);
    label "walk";
    li ebx "next_idx";
    mov eax (m ~base:ebx ~index:(esi, 4) ());   (* dependent load: next *)
    li ebx "cost";
    mov ecx (m ~base:ebx ~index:(esi, 4) ());
    (* reduced-cost test: negative edges update the potential *)
    test ecx ecx;
    j s "negative";
    add edi ecx;
    jmp "step";
    label "negative";
    sub edi ecx;
    li ebx "potential";
    mov ecx (m ~base:ebx ~index:(esi, 4) ());
    add ecx (i 1);
    mov (m ~base:ebx ~index:(esi, 4) ()) ecx;
    label "step";
    mov esi eax;
    test esi esi;
    j nz "walk";
    inc edx;
    cmp edx (i rounds);
    j l "round";
    out edi;
    hlt;
  ]

let data =
  (* a single scattered cycle through all nodes: next[i] = i + 389
     (mod nodes); 389 is coprime to [nodes], so the walk from node 0
     visits every node exactly once before returning to 0 *)
  let hops = List.init nodes (fun k -> (k + 389) mod nodes) in
  [
    label "next_idx";
    word32 hops;
    label "cost";
    word32 (List.map (fun v -> (v mod 2001) - 1000) (Workload.lcg ~seed:77 nodes));
    label "potential";
    word32 (List.init nodes (fun _ -> 0));
  ]

let workload =
  Workload.make ~name:"mcf" ~spec_name:"181.mcf" ~fp:false
    ~description:"pointer-chasing list walks with data-dependent branches"
    (program ~name:"mcf" ~entry:"main" ~text ~data ())
