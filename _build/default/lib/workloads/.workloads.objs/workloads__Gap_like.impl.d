lib/workloads/gap_like.ml: Asm Workload
