(** The client-facing API (paper §3.2, §3.4, §3.5).

    Everything a DynamoRIO client may call: transparent I/O and
    storage, register spill slots, thread-local fields, processor
    identification, custom exit stubs, clean calls, trace-head marking,
    and the adaptive-optimization pair
    {!decode_fragment} / {!replace_fragment}. *)

open Isa
open Types

(* ------------------------------------------------------------------ *)
(* Transparency: I/O and storage that never touch application state   *)
(* ------------------------------------------------------------------ *)

(** [printf rt fmt ...] writes to the client's output buffer, which is
    completely separate from the application's output port. *)
let printf (rt : runtime) fmt =
  Printf.ksprintf (fun s -> Buffer.add_string rt.client_output s) fmt

let client_output (rt : runtime) = Buffer.contents rt.client_output

(** Global client storage (the transparent-allocation analogue: client
    state lives host-side, never in application memory). *)
let set_global_field (rt : runtime) (v : exn) = rt.client_global <- Some v
let get_global_field (rt : runtime) = rt.client_global

(** Transparent memory allocation (paper §3.2): carve zero-initialized
    storage out of the runtime's own region, invisible to the
    application's allocator and address space assumptions.  The
    returned address is usable both host-side ({!read_global} /
    {!write_global}) and as an absolute-memory operand in emitted code
    ({!global_opnd}) — the low-overhead way to keep profiling counters. *)
let alloc_global (rt : runtime) ~bytes : int =
  let bytes = (bytes + 7) land lnot 7 in
  let a = rt.heap_cursor - bytes in
  if a < rt.cache_cursor then rio_error "alloc_global: runtime region full";
  rt.heap_cursor <- a;
  a

let global_opnd (addr : int) : Operand.t = Operand.mem_abs addr

let read_global (rt : runtime) addr : int =
  Vm.Memory.read_u32 (Vm.Machine.mem rt.machine) addr

let write_global (rt : runtime) addr v : unit =
  Vm.Memory.write_u32 (Vm.Machine.mem rt.machine) addr v

(** Per-thread client storage (paper: "a generic thread-local storage
    field for use by clients"). *)
let set_thread_field (ctx : context) (v : exn) = ctx.ts.client_field <- Some v
let get_thread_field (ctx : context) = ctx.ts.client_field

(* ------------------------------------------------------------------ *)
(* Processor identification (§3.2: architecture-specific opts)        *)
(* ------------------------------------------------------------------ *)

let proc_get_family (rt : runtime) : Vm.Cost.family =
  (Vm.Machine.cost rt.machine).Vm.Cost.family

(* ------------------------------------------------------------------ *)
(* Spill slots and TLS operands for emitted code                      *)
(* ------------------------------------------------------------------ *)

(** Operand addressing spill slot [n] (0..7) of the current thread;
    usable in instructions the client emits into fragments. *)
let spill_slot_opnd (ctx : context) n : Operand.t =
  if n < 0 || n > 7 then rio_error "spill slot %d out of range" n;
  Operand.mem_abs (tls_addr ~tid:ctx.ts.ts_tid ~slot:(slot_spill0 + n))

(** [save_reg ctx r n] — an instruction saving register [r] to spill
    slot [n] (the paper's dr_save_reg). *)
let save_reg (ctx : context) (r : Reg.t) n : Instr.t =
  Create.mov (spill_slot_opnd ctx n) (Operand.Reg r)

let restore_reg (ctx : context) (r : Reg.t) n : Instr.t =
  Create.mov (Operand.Reg r) (spill_slot_opnd ctx n)

(** Operand for the client's emitted-code TLS field. *)
let tls_field_opnd (ctx : context) : Operand.t =
  Operand.mem_abs (tls_addr ~tid:ctx.ts.ts_tid ~slot:slot_client)

(** Read/write the emitted-code TLS field from host code (clean calls). *)
let read_tls_field (ctx : context) : int =
  Vm.Memory.read_u32 (Vm.Machine.mem ctx.rt.machine)
    (tls_addr ~tid:ctx.ts.ts_tid ~slot:slot_client)

let write_tls_field (ctx : context) v : unit =
  Vm.Memory.write_u32 (Vm.Machine.mem ctx.rt.machine)
    (tls_addr ~tid:ctx.ts.ts_tid ~slot:slot_client)
    v

(** The in-flight indirect-branch target (valid inside ib-related clean
    calls and stubs — what Figure 4's profiling routine reads). *)
let read_ibl_target (ctx : context) : int =
  Vm.Memory.read_u32 (Vm.Machine.mem ctx.rt.machine)
    (tls_addr ~tid:ctx.ts.ts_tid ~slot:slot_ibl_target)

(** Operand for the IBL target slot (for emitted compares, Figure 4). *)
let ibl_target_opnd (ctx : context) : Operand.t =
  Operand.mem_abs (tls_addr ~tid:ctx.ts.ts_tid ~slot:slot_ibl_target)

(* ------------------------------------------------------------------ *)
(* Clean calls                                                        *)
(* ------------------------------------------------------------------ *)

(** [clean_call rt f] — an instruction that, when executed from the
    cache, saves the application context and invokes [f] host-side.
    The closure may inspect and modify machine state and call any API
    routine (including {!replace_fragment} on its own fragment). *)
let clean_call (rt : runtime) (f : ccall_fn) : Instr.t =
  let id = rt.next_ccall_id in
  rt.next_ccall_id <- id + 1;
  Hashtbl.replace rt.ccalls id f;
  Create.of_insn (Insn.mk_ccall id)

(* ------------------------------------------------------------------ *)
(* Custom exit stubs (§3.2)                                           *)
(* ------------------------------------------------------------------ *)

(** Attach a custom stub to an exit CTI: [il] is prepended to the stub,
    and with [~always:true] the exit goes through the stub even when
    linked. *)
let set_custom_stub ?(always = false) (exit_cti : Instr.t) (il : Instrlist.t) :
    unit =
  exit_cti.Instr.note <- Instr.Any_note (Stub_note (il, always))

let get_custom_stub (exit_cti : Instr.t) : (Instrlist.t * bool) option =
  match exit_cti.Instr.note with
  | Instr.Any_note (Stub_note (il, always)) -> Some (il, always)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Custom traces (§3.5)                                               *)
(* ------------------------------------------------------------------ *)

(** The paper's dr_mark_trace_head. *)
let mark_trace_head (ctx : context) (tag : int) : unit =
  let e = Fragindex.ensure ctx.ts.index tag in
  if not e.Fragindex.marked then begin
    e.Fragindex.marked <- true;
    (* severing links and lookup entries so executions reach the
       dispatcher is shared with automatic head promotion *)
    if e.Fragindex.head < 0 then e.Fragindex.head <- 0;
    (match e.Fragindex.ibl with
     | Some f when f.kind = Bb -> e.Fragindex.ibl <- None
     | _ -> ());
    match e.Fragindex.bb with
    | Some frag -> List.iter (Emit.unlink ctx.rt) frag.incoming
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Adaptive optimization (§3.4)                                       *)
(* ------------------------------------------------------------------ *)

(** The paper's dr_decode_fragment: rebuild the InstrList of an emitted
    fragment from the code cache.  Prefers the trace for [tag]. *)
let decode_fragment (ctx : context) (tag : int) : Instrlist.t option =
  let frag =
    match Fragindex.find_trace ctx.ts.index tag with
    | Some f -> Some f
    | None -> Fragindex.find_bb ctx.ts.index tag
  in
  Option.map (Emit.decode_fragment_il ctx.rt) frag

(** The paper's dr_replace_fragment: emit [il] as the new body for
    [tag] and atomically redirect all links; the old body survives
    until the executing thread leaves it. *)
let replace_fragment (ctx : context) (tag : int) (il : Instrlist.t) : bool =
  let frag =
    match Fragindex.find_trace ctx.ts.index tag with
    | Some f -> Some f
    | None -> Fragindex.find_bb ctx.ts.index tag
  in
  match frag with
  | None -> false
  | Some old_frag ->
      ignore (Emit.replace_fragment ctx.rt ctx.ts old_frag il);
      true

(* ------------------------------------------------------------------ *)
(* Core optimizer passes (DESIGN.md §6.4)                             *)
(* ------------------------------------------------------------------ *)

(* Clients and examples reach the in-core passes directly instead of
   reimplementing them in their hooks.  Each wrapper runs one pass over
   the IL and returns how many rewrites it applied. *)

let opt_propagate_copies (il : Instrlist.t) : int =
  let c = Opt.fresh_counters () in
  Opt.copy_prop c il;
  c.Opt.copies + c.Opt.consts

let opt_strength_reduce (rt : runtime) (il : Instrlist.t) : int =
  let c = Opt.fresh_counters () in
  Opt.strength_reduce ~family:(proc_get_family rt) c il;
  c.Opt.strength

let opt_remove_redundant_loads (il : Instrlist.t) : int =
  let c = Opt.fresh_counters () in
  Opt.remove_redundant_loads c il;
  c.Opt.loads_removed + c.Opt.loads_rewritten

let opt_eliminate_dead (il : Instrlist.t) : int =
  let c = Opt.fresh_counters () in
  Opt.eliminate_dead c il;
  c.Opt.dead_removed + c.Opt.stores_removed

let opt_simplify_exit_checks (il : Instrlist.t) : int =
  let c = Opt.fresh_counters () in
  Opt.simplify_exit_checks c il;
  c.Opt.checks_simplified

let opt_elide_flag_saves (il : Instrlist.t) : int =
  let c = Opt.fresh_counters () in
  Opt.elide_flag_saves c il;
  c.Opt.flag_saves_elided

(* ------------------------------------------------------------------ *)
(* Introspection                                                      *)
(* ------------------------------------------------------------------ *)

(** Human-readable dump of every live fragment: kind, tag, cache
    layout, disassembled body and stubs, exits and their link state.
    A debugging and teaching aid (`rio_run --dump-cache`). *)
let dump_cache (rt : runtime) : string =
  let b = Buffer.create 4096 in
  let fetch = Vm.Memory.fetch (Vm.Machine.mem rt.machine) in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter
    (fun ts ->
      pr "=== thread %d: %d basic blocks, %d traces ===\n" ts.ts_tid
        (Fragindex.bb_count ts.index) (Fragindex.trace_count ts.index);
      let frags =
        let acc = ref [] in
        Fragindex.iter_bbs ts.index (fun _ f -> acc := f :: !acc);
        Fragindex.iter_traces ts.index (fun _ f -> acc := f :: !acc);
        List.sort (fun a b -> compare a.entry b.entry) !acc
      in
      List.iter
        (fun f ->
          pr "%s tag=0x%x cache=[0x%x..0x%x) body=%dB stubs=%dB incoming=%d\n"
            (match f.kind with Bb -> "bb   " | Trace -> "trace")
            f.tag f.entry f.total_end (f.body_end - f.entry)
            (f.total_end - f.body_end)
            (List.length f.incoming);
          List.iter (fun l -> pr "    %s\n" l)
            (Isa.Disasm.region fetch ~pc:f.entry ~len:(f.body_end - f.entry));
          Array.iteri
            (fun k e ->
              pr "  exit %d: %s target=%s %s%s\n" k
                (match e.e_kind with
                 | Exit_direct -> "direct"
                 | Exit_indirect ik -> "indirect(" ^ ind_kind_name ik ^ ")")
                (match e.e_kind with
                 | Exit_direct -> Printf.sprintf "0x%x" e.target_tag
                 | Exit_indirect _ -> "-")
                (match e.linked with
                 | Some t -> Printf.sprintf "LINKED->0x%x@0x%x" t.tag t.entry
                 | None -> "unlinked")
                (if e.always_through_stub then " (always via stub)" else ""))
            f.exits)
        frags)
    rt.thread_states;
  Buffer.contents b
