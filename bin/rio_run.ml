(** Command-line driver: run a workload natively, emulated, or under
    the RIO runtime with any combination of clients and options.

    {v
    dune exec bin/rio_run.exe -- --list
    dune exec bin/rio_run.exe -- -w crafty
    dune exec bin/rio_run.exe -- -w mgrid -c rlr --stats
    dune exec bin/rio_run.exe -- -w vpr --mode native
    dune exec bin/rio_run.exe -- -w eon -c ibdispatch --family p3 --flow-log
    v} *)

open Cmdliner
open Workloads

type mode = Native | Emulate | Rio_mode

let client_of_name = function
  | "null" -> Rio.Types.null_client
  | "rlr" -> Clients.Rlr.make ()
  | "strength" -> Clients.Strength.make ~on_bb:false
  | "strength-bb" -> Clients.Strength.make ~on_bb:true
  | "ibdispatch" -> Clients.Ibdispatch.make ()
  | "ctraces" -> Stdlib.fst (Clients.Ctraces.make ())
  | "counter" -> Stdlib.fst (Clients.Counter.make ~dynamic:true ())
  | "edgeprof" -> Stdlib.fst (Clients.Edgeprof.make ())
  | "opmix" -> Stdlib.fst (Clients.Opmix.make ())
  | "redundant-cmp" -> Stdlib.fst (Clients.Redundant_cmp.make ())
  | "shepherd" -> failwith "shepherd needs an image policy; see examples/shepherding.ml"
  | "combined" -> Clients.Compose.all_four ()
  | n -> failwith ("unknown client: " ^ n)

let client_names =
  [ "null"; "rlr"; "strength"; "strength-bb"; "ibdispatch"; "ctraces";
    "counter"; "edgeprof"; "opmix"; "redundant-cmp"; "combined" ]

let run list workload_name file clients mode family no_link_direct
    no_link_indirect no_traces threshold sideline cache_capacity flush_policy
    faults fault_period audit opt_level opt_enable opt_disable reopt
    spec_threshold spec_max_violations stats flow_log dump_cache =
  if list then begin
    Printf.printf "workloads:\n";
    List.iter
      (fun w ->
        Printf.printf "  %-9s (%s, %s) %s\n" w.Workload.name w.Workload.spec_name
          (if w.Workload.fp then "fp" else "int")
          w.Workload.description)
      Suite.all;
    Printf.printf "clients: %s\n" (String.concat ", " client_names);
    0
  end
  else
    let chosen =
      match file with
      | Some path -> (
          (* run a textual assembly file instead of a built-in workload *)
          match Asm.Parse.program_of_file path with
          | prog ->
              Some
                (Workload.make ~name:(Filename.basename path) ~spec_name:"(file)"
                   ~fp:false ~description:"assembly file" prog)
          | exception Asm.Parse.Parse_error { line; msg } ->
              Printf.eprintf "%s:%d: %s\n" path line msg;
              exit 1)
      | None -> Suite.by_name workload_name
    in
    match chosen with
    | None ->
        Printf.eprintf "unknown workload %S (try --list)\n" workload_name;
        1
    | Some w -> (
        let family =
          match family with
          | "p3" -> Vm.Cost.Pentium3
          | "p4" -> Vm.Cost.Pentium4
          | f ->
              Printf.eprintf "unknown family %S (p3|p4)\n" f;
              exit 1
        in
        let native = Workload.run_native ~family w in
        match mode with
        | Native ->
            Printf.printf "%s: native: %d cycles, %d instructions, output [%s]\n"
              w.Workload.name native.cycles native.insns
              (String.concat "; " (List.map string_of_int native.output));
            if native.ok then 0 else 1
        | Emulate ->
            let r = Workload.run_native ~family ~emulate:true w in
            Printf.printf "%s: emulation: %d cycles (%.1fx native)\n" w.Workload.name
              r.cycles
              (float_of_int r.cycles /. float_of_int native.cycles);
            if r.ok then 0 else 1
        | Rio_mode ->
            let client =
              try
                match clients with
                | [] -> Rio.Types.null_client
                | [ c ] -> client_of_name c
                | cs -> Clients.Compose.compose (List.map client_of_name cs)
              with Failure msg ->
                Printf.eprintf "%s (try --list)\n" msg;
                exit 1
            in
            let fault_opts =
              match faults with
              | None -> None
              | Some seed ->
                  Some
                    { Rio.Options.default_faults with
                      fi_seed = seed;
                      fi_period = fault_period }
            in
            let pass_list which names =
              List.map
                (fun n ->
                  match Rio.Options.pass_of_name n with
                  | Some p -> p
                  | None ->
                      Printf.eprintf "unknown pass %S for --%s (one of: %s)\n" n
                        which
                        (String.concat ", "
                           (List.map Rio.Options.pass_name Rio.Options.all_passes));
                      exit 1)
                names
            in
            let opts =
              {
                Rio.Options.default with
                link_direct = not no_link_direct;
                link_indirect = not no_link_indirect;
                enable_traces = not no_traces;
                trace_threshold = threshold;
                sideline;
                cache_capacity;
                flush_policy;
                opt_level;
                opt_enable = pass_list "opt-enable" opt_enable;
                opt_disable = pass_list "opt-disable" opt_disable;
                reopt_threshold = reopt;
                spec_threshold;
                spec_max_violations;
                faults = fault_opts;
                (* with injection on, audit every dispatch unless the
                   user chose a period explicitly *)
                audit_period =
                  (match (audit, faults) with
                  | Some n, _ -> n
                  | None, Some _ -> 1
                  | None, None -> 0);
                max_cycles = max_int / 2;
              }
            in
            (* reject bad capacities here, as a CLI error — not as a
               runtime failure halfway through emission *)
            (match Rio.Options.validate opts with
             | Ok () -> ()
             | Error msg ->
                 Printf.eprintf "invalid options: %s\n" msg;
                 exit 1);
            let image = Asm.Assemble.assemble w.Workload.program in
            let m = Vm.Machine.create ~family () in
            Vm.Machine.set_input m w.Workload.input;
            ignore (Asm.Image.load m image);
            let rt = Rio.create ~opts ~client m in
            if flow_log then Rio.enable_flow_log rt;
            let o = Rio.run rt in
            let out = Vm.Machine.output m in
            Printf.printf "%s under RIO (%s): %d cycles (%.3fx native), %s\n"
              w.Workload.name
              (match clients with [] -> "no client" | cs -> String.concat "+" cs)
              o.Rio.cycles
              (float_of_int o.Rio.cycles /. float_of_int native.cycles)
              (Rio.stop_reason_to_string o.Rio.reason);
            Printf.printf "output [%s] — %s native\n"
              (String.concat "; " (List.map string_of_int out))
              (if out = native.output then "matches" else "DIFFERS FROM");
            let co = Rio.Api.client_output rt in
            if co <> "" then Printf.printf "client output:\n%s" co;
            if stats then begin
              Format.printf "%a@." Rio.Stats.pp (Rio.stats rt);
              Rio.Emit.refresh_cache_gauges rt;
              Format.printf "%a@." Rio.Stats.pp_cache (Rio.stats rt);
              if Rio.Options.effective_passes opts <> [] then
                Format.printf "%a@." Rio.Stats.pp_opt (Rio.stats rt);
              if opt_level >= 3 then
                Format.printf "%a@." Rio.Stats.pp_spec (Rio.stats rt);
              if faults <> None || audit <> None then
                Format.printf "%a@." Rio.Stats.pp_faults (Rio.stats rt)
            end;
            if dump_cache then print_string (Rio.Api.dump_cache rt);
            if flow_log then begin
              Printf.printf "first 40 dispatch events:\n";
              List.iteri
                (fun k e -> if k < 40 then Printf.printf "  %s\n" e)
                (Rio.flow_log rt)
            end;
            if o.Rio.reason = Rio.All_exited && out = native.output then 0 else 1)

let cmd =
  let list =
    Arg.(value & flag & info [ "list" ] ~doc:"List workloads and clients.")
  in
  let workload =
    Arg.(value & opt string "vpr" & info [ "w"; "workload" ] ~docv:"NAME"
           ~doc:"Workload to run (see --list).")
  in
  let file =
    Arg.(value & opt (some file) None & info [ "file"; "f" ] ~docv:"FILE.s"
           ~doc:"Run a textual SynISA assembly file instead of a workload.")
  in
  let clients =
    Arg.(value & opt_all string [] & info [ "c"; "client" ] ~docv:"CLIENT"
           ~doc:"Client(s) to attach; repeat to compose.")
  in
  let mode =
    let m =
      Arg.enum [ ("native", Native); ("emulate", Emulate); ("rio", Rio_mode) ]
    in
    Arg.(value & opt m Rio_mode & info [ "mode" ] ~docv:"MODE"
           ~doc:"Execution mode: native, emulate, or rio.")
  in
  let family =
    Arg.(value & opt string "p4" & info [ "family" ] ~docv:"FAM"
           ~doc:"Processor family: p3 or p4.")
  in
  let no_ld = Arg.(value & flag & info [ "no-link-direct" ] ~doc:"Disable direct linking.") in
  let no_li = Arg.(value & flag & info [ "no-link-indirect" ] ~doc:"Disable the in-cache indirect lookup.") in
  let no_tr = Arg.(value & flag & info [ "no-traces" ] ~doc:"Disable trace creation.") in
  let threshold =
    Arg.(value & opt int Rio.Options.default.Rio.Options.trace_threshold
         & info [ "trace-threshold" ] ~docv:"N" ~doc:"Trace-head hotness threshold.")
  in
  let sideline =
    Arg.(value & flag & info [ "sideline" ]
           ~doc:"Run trace optimization on a simulated spare processor.")
  in
  let cache_capacity =
    Arg.(value & opt (some int) None & info [ "cache-capacity" ] ~docv:"BYTES"
           ~doc:"Bound the code cache; see --flush-policy for what \
                 happens on overflow.")
  in
  let flush_policy =
    let p =
      Arg.enum
        [ ("fifo", Rio.Options.Flush_fifo); ("full", Rio.Options.Flush_full) ]
    in
    Arg.(value & opt p Rio.Options.default.Rio.Options.flush_policy
         & info [ "flush-policy" ] ~docv:"POLICY"
             ~doc:"Capacity policy for a bounded cache: $(b,fifo) evicts \
                   the oldest fragments incrementally; $(b,full) flushes \
                   the whole cache on overflow.")
  in
  let faults =
    Arg.(value & opt (some int) None & info [ "faults" ] ~docv:"SEED"
           ~doc:"Enable deterministic fault injection with this seed.")
  in
  let fault_period =
    Arg.(value & opt int Rio.Options.default_faults.Rio.Options.fi_period
         & info [ "fault-period" ] ~docv:"N"
             ~doc:"Mean dispatches between injected faults.")
  in
  let audit =
    Arg.(value & opt (some int) None & info [ "audit" ] ~docv:"N"
           ~doc:"Audit the code cache every N context switches \
                 (defaults to 1 when --faults is on).")
  in
  let opt_level =
    Arg.(value & opt int 0 & info [ "O"; "opt" ] ~docv:"N"
           ~doc:"Trace optimization level: 0 (off), 1 (copy/constant \
                 propagation, strength reduction, flag-save elision), \
                 2 (adds redundant-load removal, dead-store elimination \
                 and exit-check peepholes) or 3 (adds profile-guided \
                 speculation: guarded dominant-target inlining, \
                 constant-load folding and exit-layout biasing, with \
                 mid-trace deoptimization).")
  in
  let opt_enable =
    Arg.(value & opt_all string [] & info [ "opt-enable" ] ~docv:"PASS"
           ~doc:"Enable a single optimizer pass on top of the -O level; \
                 repeatable.  Passes: copyprop, strength, loadrem, \
                 deadstore, peephole, flagelide.")
  in
  let opt_disable =
    Arg.(value & opt_all string [] & info [ "opt-disable" ] ~docv:"PASS"
           ~doc:"Disable a single optimizer pass from the -O level; \
                 repeatable.")
  in
  let reopt =
    Arg.(value & opt (some int) None & info [ "reopt" ] ~docv:"N"
           ~doc:"Re-optimize a hot trace in place (decode + replace) \
                 after N dispatcher entries (overrides the built-in \
                 deferral threshold).")
  in
  let spec_threshold =
    Arg.(value & opt int Rio.Options.default.Rio.Options.spec_threshold
         & info [ "spec-threshold" ] ~docv:"N"
             ~doc:"Successor-profile samples required at an exit site \
                   before -O3 speculates on it.")
  in
  let spec_max_violations =
    Arg.(value & opt int Rio.Options.default.Rio.Options.spec_max_violations
         & info [ "spec-max-violations" ] ~docv:"K"
             ~doc:"Guard violations tolerated before the trace is \
                   re-optimized without that assumption.")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print runtime statistics.") in
  let flow = Arg.(value & flag & info [ "flow-log" ] ~doc:"Print dispatch events.") in
  let dump =
    Arg.(value & flag & info [ "dump-cache" ]
           ~doc:"Disassemble every live fragment after the run.")
  in
  let term =
    Term.(
      const run $ list $ workload $ file $ clients $ mode $ family $ no_ld $ no_li
      $ no_tr $ threshold $ sideline $ cache_capacity $ flush_policy $ faults
      $ fault_period $ audit $ opt_level $ opt_enable $ opt_disable $ reopt
      $ spec_threshold $ spec_max_violations $ stats $ flow $ dump)
  in
  Cmd.v (Cmd.info "rio_run" ~doc:"Run workloads under the RIO dynamic optimizer") term

let () = exit (Cmd.eval' cmd)
