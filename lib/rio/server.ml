(** The socket front-end over a serving {!Pool} (DESIGN.md §6.10): a
    single-threaded [Unix.select] loop that accepts connections, frames
    requests off the wire ({!Wire}), admits them through
    {!Pool.try_submit} — turning every admission reject into a typed
    response instead of unbounded queueing — and streams results back
    as the pool completes them.

    The loop itself does no simulation work: worker domains execute
    requests, so one acceptor thread keeps ordering and connection
    state trivial while the pool provides the parallelism.  Responses
    are routed by a server-assigned request id; a client that
    disconnects with requests in flight simply has its results
    dropped. *)

type addr =
  | Unix_addr of string        (** unix:PATH *)
  | Tcp_addr of string * int   (** tcp:HOST:PORT *)

let addr_of_string (s : string) : (addr, string) result =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S (want unix:PATH or tcp:HOST:PORT)" s)
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" when rest <> "" -> Ok (Unix_addr rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error (Printf.sprintf "bad tcp address %S (want tcp:HOST:PORT)" s)
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p > 0 && p < 65536 -> Ok (Tcp_addr (host, p))
              | _ -> Error (Printf.sprintf "bad tcp port %S" port)))
      | _ -> Error (Printf.sprintf "bad address scheme %S" scheme))

let addr_to_string = function
  | Unix_addr p -> "unix:" ^ p
  | Tcp_addr (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let sockaddr_of = function
  | Unix_addr p -> Unix.ADDR_UNIX p
  | Tcp_addr (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> failwith ("Server: cannot resolve host " ^ host))
      in
      Unix.ADDR_INET (ip, port)

(** Create, bind, and listen.  A stale Unix-domain socket file from a
    previous run is unlinked first. *)
let listen (a : addr) : Unix.file_descr =
  let domain =
    match a with Unix_addr _ -> Unix.PF_UNIX | Tcp_addr _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match a with
  | Unix_addr p -> if Sys.file_exists p then Unix.unlink p
  | Tcp_addr _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd (sockaddr_of a);
  Unix.listen fd 64;
  fd

(** Connect a client socket (blocking). *)
let connect (a : addr) : Unix.file_descr =
  let domain =
    match a with Unix_addr _ -> Unix.PF_UNIX | Tcp_addr _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.connect fd (sockaddr_of a);
  fd

(* ------------------------------------------------------------------ *)
(* Connections                                                        *)
(* ------------------------------------------------------------------ *)

(* Per-connection receive buffer: select says "readable", we pull one
   chunk, and whole frames are peeled off as they complete — a client
   that dribbles a frame across packets never blocks the loop. *)
type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;
  c_cid : int;  (* connection id, keys the routing table *)
}

(* Append available bytes; false when the peer closed.  The chunk is
   allocated per call so concurrent server loops (one per domain in
   tests) never share scratch state. *)
let pull (c : conn) : bool =
  let chunk = Bytes.create 65536 in
  match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
  | 0 -> false
  | n ->
      Buffer.add_subbytes c.c_buf chunk 0 n;
      true
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> false

(* Peel complete frames off the connection buffer. *)
let frames (c : conn) : string list =
  let s = Buffer.contents c.c_buf in
  let total = String.length s in
  let pos = ref 0 in
  let out = ref [] in
  let continue = ref true in
  while !continue do
    if total - !pos < 4 then continue := false
    else begin
      let len = Int32.to_int (String.get_int32_le s !pos) in
      if len < 0 || len > Wire.max_frame then failwith "Server: bad frame length"
      else if total - !pos - 4 < len then continue := false
      else begin
        out := String.sub s (!pos + 4) len :: !out;
        pos := !pos + 4 + len
      end
    end
  done;
  if !pos > 0 then begin
    let rest = String.sub s !pos (total - !pos) in
    Buffer.clear c.c_buf;
    Buffer.add_string c.c_buf rest
  end;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Serving loop                                                       *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable sv_accepted : int;    (** connections accepted *)
  mutable sv_requests : int;    (** run frames admitted to the pool *)
  mutable sv_rejects : int;     (** run frames answered with a typed reject *)
  mutable sv_responses : int;   (** responses written *)
  mutable sv_dropped : int;     (** results whose connection had gone away *)
}

let reject_status : Pool.reject -> Wire.status = function
  | Pool.Unknown_key _ -> Wire.St_unknown_key
  | Pool.Quarantined _ -> Wire.St_quarantined
  | Pool.Overloaded _ -> Wire.St_shed
  | Pool.Pool_stopping -> Wire.St_stopping

(** Run the accept/serve loop until a client sends [Quit] (and every
    admitted request has been answered).  [tick] is the poll interval:
    the loop wakes at least this often to flush completed results even
    when no socket is readable. *)
let run ?(tick = 0.01) (pool : Pool.t) (listeners : Unix.file_descr list) :
    stats =
  let st =
    { sv_accepted = 0; sv_requests = 0; sv_rejects = 0; sv_responses = 0;
      sv_dropped = 0 }
  in
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  (* server request id -> (connection id, client's correlation id) *)
  let routes : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let next_cid = ref 0 in
  let next_rid = ref 0 in
  let quitting = ref false in
  let send_to (c : conn) (r : Wire.response) : unit =
    try
      Wire.write_frame c.c_fd (Wire.encode_response r);
      st.sv_responses <- st.sv_responses + 1
    with Wire.Closed | Unix.Unix_error _ ->
      (* writer saw the close first; the reader side will reap it *)
      ()
  in
  let close_conn (c : conn) : unit =
    Hashtbl.remove conns c.c_cid;
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  in
  let handle_msg (c : conn) (m : Wire.client_msg) : unit =
    match m with
    | Wire.Quit -> quitting := true
    | Wire.Run { c_id; c_key; c_seed; c_input; c_expect } -> (
        let rid = !next_rid in
        incr next_rid;
        let req =
          {
            Pool.req_id = rid;
            req_key = c_key;
            req_seed = c_seed;
            req_input = c_input;
            req_expect = c_expect;
          }
        in
        match Pool.try_submit pool req with
        | Ok () ->
            st.sv_requests <- st.sv_requests + 1;
            Hashtbl.replace routes rid (c.c_cid, c_id)
        | Error e ->
            st.sv_rejects <- st.sv_rejects + 1;
            send_to c
              {
                Wire.r_id = c_id;
                r_status = reject_status e;
                r_warm = false;
                r_cycles = 0;
                r_output = [];
              })
  in
  let flush_results () =
    List.iter
      (fun (res : Pool.result) ->
        match Hashtbl.find_opt routes res.Pool.res_id with
        | None -> st.sv_dropped <- st.sv_dropped + 1
        | Some (cid, client_id) -> (
            Hashtbl.remove routes res.Pool.res_id;
            match Hashtbl.find_opt conns cid with
            | None -> st.sv_dropped <- st.sv_dropped + 1
            | Some c ->
                send_to c
                  {
                    Wire.r_id = client_id;
                    r_status =
                      (if res.Pool.res_ok then Wire.St_ok else Wire.St_failed);
                    r_warm = res.Pool.res_warm;
                    r_cycles = res.Pool.res_cycles;
                    r_output = res.Pool.res_output;
                  }))
      (Pool.take_results pool)
  in
  let finished () = !quitting && Hashtbl.length routes = 0 in
  while not (finished ()) do
    let conn_fds = Hashtbl.fold (fun _ c acc -> c.c_fd :: acc) conns [] in
    let watch = if !quitting then conn_fds else listeners @ conn_fds in
    let readable, _, _ =
      try Unix.select watch [] [] tick
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if List.mem fd listeners then begin
          let cfd, _ = Unix.accept fd in
          let cid = !next_cid in
          incr next_cid;
          st.sv_accepted <- st.sv_accepted + 1;
          Hashtbl.replace conns cid
            { c_fd = cfd; c_buf = Buffer.create 256; c_cid = cid }
        end
        else
          match
            Hashtbl.fold
              (fun _ c acc -> if c.c_fd = fd then Some c else acc)
              conns None
          with
          | None -> ()
          | Some c -> (
              match pull c with
              | false -> close_conn c
              | true -> (
                  try
                    List.iter
                      (fun payload ->
                        handle_msg c (Wire.decode_client_msg payload))
                      (frames c)
                  with Failure _ ->
                    (* malformed frame: drop the connection, keep serving *)
                    close_conn c)
              | exception Unix.Unix_error _ -> close_conn c))
      readable;
    flush_results ()
  done;
  (* answer anything that raced the quit *)
  flush_results ();
  Hashtbl.iter (fun _ c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ()) conns;
  st

(* ------------------------------------------------------------------ *)
(* Client convenience                                                 *)
(* ------------------------------------------------------------------ *)

(** Send [reqs] over one connection and collect every response
    (admission rejects included), in arrival order.  Ids are assigned
    0..n-1 in list order. *)
let client_run (fd : Unix.file_descr) reqs : Wire.response list =
  List.iteri
    (fun i (key, seed, input, expect) ->
      Wire.send_msg fd
        (Wire.Run
           { c_id = i; c_key = key; c_seed = seed; c_input = input;
             c_expect = expect }))
    reqs;
  List.init (List.length reqs) (fun _ -> Wire.recv_response fd)
