(** Trace selection and generation (paper §2.4 / §3.3), split out of
    the dispatcher: trace-head promotion, block stitching, pending-CTI
    resolution, inline-check flags fixup, and trace finalization.

    Under a bounded FIFO cache a trace that no longer fits is simply
    {e dropped} — the constituent blocks keep running, the head's
    counter restarts, and no full flush is forced: basic blocks are the
    only fragments whose emission must succeed. *)

open Isa
open Types
module FI = Fragindex

(* ------------------------------------------------------------------ *)
(* Trace heads                                                        *)
(* ------------------------------------------------------------------ *)

(** Promote the tag of [e] to trace-head status: it loses its in-cache
    lookup entry and its incoming links, so every future execution
    passes through the dispatcher and bumps its counter. *)
let make_head_entry (rt : runtime) (e : fragment FI.entry) =
  if e.FI.head < 0 && not e.FI.marked then begin
    e.FI.head <- 0;
    rt.stats.Stats.trace_head_promotions <- rt.stats.Stats.trace_head_promotions + 1;
    (match e.FI.ibl with
     | Some f when f.kind = Bb -> e.FI.ibl <- None
     | _ -> ());
    match e.FI.bb with
    | Some frag -> List.iter (Emit.unlink rt) frag.incoming
    | None -> ()
  end

let make_head (rt : runtime) (ts : thread_state) tag =
  make_head_entry rt (FI.ensure ts.index tag)

(* ------------------------------------------------------------------ *)
(* Trace building                                                     *)
(* ------------------------------------------------------------------ *)

let start_tracegen (rt : runtime) (ts : thread_state) head =
  ts.tracegen <-
    Some
      {
        tg_head = head;
        tg_tags = [];
        tg_il = Instrlist.create ();
        tg_insns = 0;
        tg_pending = P_start;
        tg_checks = [];
      };
  log_flow rt "start trace 0x%x" head

(* Splice the client-view IL of block [tag]'s bb fragment into the
   growing trace, recording the new pending CTI. *)
let stitch_block (rt : runtime) (ts : thread_state) (tg : tracegen) tag : unit =
  let frag =
    match FI.find_bb ts.index tag with
    | Some f -> f
    | None -> Blockbuild.build_bb rt ts tag
  in
  let il = Emit.decode_fragment_il rt frag in
  (* peel the trailing exit structure *)
  let target_of (i : Instr.t) =
    match Insn.src (Instr.get_insn i) 0 with
    | Operand.Target t -> t
    | _ -> rio_error "trace stitch: malformed exit"
  in
  let last = Option.get (Instrlist.last il) in
  let pending =
    match Instr.get_opcode last with
    | Opcode.Hlt ->
        Instrlist.remove il last;
        P_halt
    | Opcode.Jmp -> (
        let t = target_of last in
        Instrlist.remove il last;
        match ind_kind_of_token t with
        | Some k -> P_ind k
        | None -> (
            (* is the (new) last instruction a conditional exit? *)
            match Instrlist.last il with
            | Some prev
              when (not (Instr.is_bundle prev))
                   && (match Instr.get_opcode prev with
                      | Opcode.Jcc _ -> true
                      | _ -> false) ->
                let c =
                  match Instr.get_opcode prev with
                  | Opcode.Jcc c -> c
                  | _ -> assert false
                in
                let taken = target_of prev in
                Instrlist.remove il prev;
                P_jcc (c, taken, t)
            | _ -> P_jmp t))
    | _ -> rio_error "trace stitch: block 0x%x does not end in an exit" tag
  in
  tg.tg_insns <- tg.tg_insns + Instrlist.length il;
  Instrlist.append_all ~dst:tg.tg_il il;
  tg.tg_tags <- tag :: tg.tg_tags;
  tg.tg_pending <- pending

(* Resolve the pending CTI knowing execution continued at [next]. *)
let resolve_pending (ts : thread_state) (tg : tracegen) ~next : unit =
  match tg.tg_pending with
  | P_start -> ()
  | P_halt -> rio_error "trace continued past hlt"
  | P_jmp t ->
      if t <> next then rio_error "trace stitch: jmp to 0x%x but executed 0x%x" t next
  | P_jcc (c, taken, ft) ->
      let exit_instr =
        if next = taken then Create.jcc (Cond.invert c) ft
        else if next = ft then Create.jcc c taken
        else rio_error "trace stitch: jcc targets 0x%x/0x%x but executed 0x%x" taken ft next
      in
      tg.tg_insns <- tg.tg_insns + 1;
      Instrlist.append tg.tg_il exit_instr
  | P_ind k ->
      (* inline the observed target with a check; flags handling is
         fixed up at finalize time when the whole trace is known *)
      let instrs =
        Mangle.inline_check ~tid:ts.ts_tid ~expected:next ~kind:k ~flags_live:false
      in
      List.iter
        (fun i ->
          tg.tg_insns <- tg.tg_insns + 1;
          Instrlist.append tg.tg_il i)
        instrs;
      (match List.rev instrs with
       | jne :: _ -> tg.tg_checks <- jne :: tg.tg_checks
       | [] -> assert false)

(* Materialize the final pending CTI as trace exits. *)
let finalize_pending (tg : tracegen) : unit =
  let app i = Instrlist.append tg.tg_il i in
  match tg.tg_pending with
  | P_start -> rio_error "empty trace"
  | P_halt -> app (Create.of_insn (Insn.mk_hlt ()))
  | P_jmp t -> app (Create.jmp t)
  | P_jcc (c, taken, ft) ->
      app (Create.jcc c taken);
      app (Create.jmp ft)
  | P_ind k -> app (Create.jmp (ind_token k))

(* For every inline check inserted without flags preservation, scan
   forward: if the application flags are live at the check, bracket it
   with save/restore and attach the stub restore. *)
let fixup_check_flags (rt : runtime) (ts : thread_state) (tg : tracegen) : unit =
  let il = tg.tg_il in
  let fslot = Mangle.abs_slot ~tid:ts.ts_tid slot_eflags in
  List.iter
    (fun (jne : Instr.t) ->
      (* the check is [cmp; jne]; flags are live if anything after the
         jne reads them before writing *)
      let after = jne.Instr.next in
      if
        rt.opts.Options.always_save_flags
        || not (Flags_analysis.dead_after after)
      then begin
        let cmp = Option.get jne.Instr.prev in
        Instrlist.insert_before il cmp (Create.pushf ());
        Instrlist.insert_before il cmp (Create.pop fslot);
        Instrlist.insert_after il jne (Create.popf ());
        Instrlist.insert_after il jne (Create.push fslot);
        let stub = Instrlist.create () in
        Instrlist.append stub (Create.push fslot);
        Instrlist.append stub (Create.popf ());
        jne.Instr.note <- Instr.Any_note (Stub_note (stub, false));
        tg.tg_insns <- tg.tg_insns + 4
      end)
    tg.tg_checks

(** Close out a trace: run the trace hook, mangle, and emit.  Returns
    [None] when a bounded FIFO cache could not host the trace — the
    trace is dropped, the head's counter restarts, and execution
    continues on the constituent blocks. *)
let finalize_trace (rt : runtime) (ts : thread_state) (tg : tracegen) :
    fragment option =
  finalize_pending tg;
  fixup_check_flags rt ts tg;
  let head = tg.tg_head in
  let il = tg.tg_il in
  (* the client sees the completely processed trace (paper §3.3);
     instructions are fully decoded with raw bits valid (Level 3) *)
  Instrlist.decode_to il Level.L3;
  let il =
    match rt.client.trace_hook with
    | Some hook ->
        Guard.protect_il rt ~hook:"trace" il (fun il ->
            hook { rt; ts } ~tag:head il)
    | None -> il
  in
  (* the in-core optimizer sees the same client-view IL (DESIGN.md
     §6.4); it charges its own pass cost and is a no-op at -O0 *)
  Opt.run rt il;
  charge_opt rt
    (Instrlist.length il * rt.opts.Options.costs.Options.trace_build_per_insn);
  Mangle.mangle_il ~tid:ts.ts_tid il;
  let src_ranges =
    List.concat_map
      (fun tag ->
        match FI.find_bb ts.index tag with
        | Some f -> f.src_ranges
        | None -> [])
      tg.tg_tags
  in
  match Emit.emit_fragment rt ts ~kind:Trace ~tag:head ~src_ranges il with
  | exception Emit.No_room _ ->
      (* the trace region cannot host it even after evicting: drop the
         trace rather than force a full flush — only bb emission is a
         hard requirement.  Restarting the head counter keeps a still-hot
         head eligible for re-selection once the cache churns. *)
      rt.stats.Stats.traces_dropped <- rt.stats.Stats.traces_dropped + 1;
      (match FI.find ts.index head with
       | Some e when e.FI.head >= 0 -> e.FI.head <- 0
       | _ -> ());
      ts.tracegen <- None;
      log_flow rt "dropped trace 0x%x (no room)" head;
      None
  | frag ->
      rt.stats.Stats.traces_built <- rt.stats.Stats.traces_built + 1;
      (* the trace shadows the head's bb: lookups prefer traces, the ibl
         entry moves to the trace, and the bb's links are already severed
         (it is a head).  Targets of the trace's direct exits become heads. *)
      FI.set_ibl ts.index head frag;
      Array.iter
        (fun e ->
          match e.e_kind with
          | Exit_direct ->
              if
                e.target_tag <> head
                && FI.find_trace ts.index e.target_tag = None
              then make_head rt ts e.target_tag
          | Exit_indirect _ -> ())
        frag.exits;
      ts.tracegen <- None;
      log_flow rt "built trace 0x%x (%d blocks)" head (List.length tg.tg_tags);
      Some frag

(* Default end-of-trace test (paper §3.5: stop at a backward branch —
   approximated as reaching another trace head — or an existing trace). *)
let default_end (rt : runtime) (ts : thread_state) (tg : tracegen) ~next =
  FI.find_trace ts.index next <> None
  || FI.is_head ts.index next
  || List.length tg.tg_tags >= rt.opts.Options.max_trace_blocks

(* One dispatcher step while generating a trace.  Returns the fragment
   to execute next (always the bb for [next], unlinked). *)
let tracegen_step (rt : runtime) (ts : thread_state) ~next : fragment option =
  let tg = match ts.tracegen with Some tg -> tg | None -> assert false in
  let should_end =
    if tg.tg_pending = P_start then false (* always take the head block *)
    else if tg.tg_pending = P_halt then true
    else
      match rt.client.end_trace with
      | None -> default_end rt ts tg ~next
      | Some hook -> (
          match
            Guard.protect_end_trace rt ~hook:"end_trace" ~default:Default_end
              (fun () -> hook { rt; ts } ~trace_tag:tg.tg_head ~next_tag:next)
          with
          | End_trace -> true
          | Continue_trace -> false
          | Default_end -> default_end rt ts tg ~next)
  in
  if should_end || tg.tg_pending = P_halt then begin
    ignore (finalize_trace rt ts tg);
    None (* re-dispatch [next] normally *)
  end
  else begin
    resolve_pending ts tg ~next;
    stitch_block rt ts tg next;
    if tg.tg_pending = P_halt then begin
      (* block ends the program: close the trace now *)
      ignore (finalize_trace rt ts tg)
    end;
    (* execute the constituent block, unlinked, so control returns to
       the dispatcher to observe where execution goes *)
    let frag =
      match FI.find_bb ts.index next with
      | Some f -> f
      | None -> Blockbuild.build_bb rt ts next
    in
    Array.iter (fun e -> Emit.unlink rt e) frag.exits;
    Some frag
  end

(* Discard an in-progress trace generation (used when a constituent
   block turned out to be damaged mid-stitch, or when bb emission ran
   out of room). *)
let abort_tracegen (rt : runtime) (ts : thread_state) =
  match ts.tracegen with
  | None -> ()
  | Some _ ->
      ts.tracegen <- None;
      log_flow rt "abort trace generation"
