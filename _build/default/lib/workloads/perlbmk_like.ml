(** perlbmk-like: bytecode interpreter over many short scripts
    (SPEC2000 253.perlbmk).

    Character: the classic worst case for a dynamic optimizer — an
    interpreter dispatch loop (indirect jump through an opcode table,
    targets near-uniformly distributed) running a series of {e
    different} short scripts, so trace and rewrite work keeps being
    spent on code that is abandoned.  The paper's perlbmk slows down
    under every optimization. *)

open Asm.Dsl

(* opcodes: 0 halt-script, 1 push-imm, 2 add, 3 sub, 4 dup, 5 swap,
   6 jnz-back (loop), 7 mul-lo *)
let n_scripts = 24
let script_len = 60

(* generate distinct scripts: each is a list of (op, arg) pairs; ops
   vary per script so dispatch targets differ from script to script *)
let script s =
  let ops = ref [] in
  for k = script_len - 1 downto 0 do
    let op =
      match (k + (s * 3)) mod 9 with
      | 0 | 8 -> 1 (* push *)
      | 1 | 5 -> 2 (* add *)
      | 2 -> 3     (* sub *)
      | 3 -> 4     (* dup *)
      | 4 -> 5     (* swap *)
      | 6 -> 7     (* mul *)
      | _ -> 1
    in
    ops := (op, (k * 13) + s) :: !ops
  done;
  (* prelude pushes two operands; postlude halts *)
  ((1, 1000 + s) :: (1, 7 + s) :: !ops) @ [ (0, 0) ]

let script_words s =
  List.concat_map (fun (op, arg) -> [ op; arg land 0xFFFF ]) (script s)

let text =
  [
    label "main";
    mov ebp esp;
    mov edi (i 0);                      (* checksum across scripts *)
    mov edx (i 0);                      (* script index *)
    label "next_script";
    (* locate script s: scripts are fixed-size records *)
    mov esi edx;
    imul esi (i (8 * (script_len + 3)));
    li ebx "scripts";
    add esi ebx;                        (* esi: instruction pointer (byte addr) *)
    mov ecx (i 0);                      (* vm accumulator stack depth in eax/ecx *)
    mov eax (i 0);
    label "dispatch";
    mov ebx (mb esi);                   (* opcode *)
    li ebp "optable";
    mov ebx (m ~base:ebp ~index:(ebx, 4) ());
    jmp_ind ebx;
    (* --- handlers: each ends by advancing ip and redispatching --- *)
    label "op_push";
    push eax;
    mov eax (mb esi ~disp:4);
    mov ecx eax;
    shl ecx (i 7);
    xor ecx eax;
    shr ecx (i 3);
    add eax ecx;
    and_ eax (i 0xFFFFFF);
    jmp "advance";
    label "op_add";
    pop ecx;
    add eax ecx;
    mov ecx eax;
    shl ecx (i 5);
    add ecx eax;
    shr ecx (i 2);
    xor eax ecx;
    and_ eax (i 0xFFFFFF);
    jmp "advance";
    label "op_sub";
    pop ecx;
    sub eax ecx;
    mov ecx eax;
    shr ecx (i 4);
    imul ecx (i 13);
    xor eax ecx;
    and_ eax (i 0xFFFFFF);
    jmp "advance";
    label "op_dup";
    push eax;
    mov ecx eax;
    shl ecx (i 2);
    add eax ecx;
    shr eax (i 1);
    and_ eax (i 0xFFFFFF);
    jmp "advance";
    label "op_swap";
    pop ecx;
    push eax;
    mov eax ecx;
    shl ecx (i 9);
    xor eax ecx;
    shr eax (i 2);
    and_ eax (i 0xFFFFFF);
    jmp "advance";
    label "op_mul";
    pop ecx;
    imul eax ecx;
    mov ecx eax;
    shr ecx (i 11);
    add eax ecx;
    imul eax (i 7);
    and_ eax (i 0xFFFFFF);
    jmp "advance";
    label "op_halt";
    add edi eax;
    inc edx;
    cmp edx (i n_scripts);
    j l "next_script";
    out edi;
    hlt;
    label "advance";
    add esi (i 8);
    jmp "dispatch";
  ]

let data =
  [
    label "optable";
    word32_lbl
      [ "op_halt"; "op_push"; "op_add"; "op_sub"; "op_dup"; "op_swap"; "op_halt"; "op_mul" ];
    label "scripts";
    word32 (List.concat_map script_words (List.init n_scripts Fun.id));
  ]

let workload =
  Workload.make ~name:"perlbmk" ~spec_name:"253.perlbmk" ~fp:false
    ~description:
      "interpreter dispatch loop over many distinct short scripts: little \
       reuse, uniformly distributed indirect-branch targets"
    (program ~name:"perlbmk" ~entry:"main" ~text ~data ())
