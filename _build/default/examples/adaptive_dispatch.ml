(** Adaptive optimization end-to-end (paper §3.4 + §4.3): the
    indirect-branch-dispatch client profiles its own trace's lookup
    misses and rewrites the trace while it is running.

    {v dune exec examples/adaptive_dispatch.exe v}

    Runs the eon-like workload (virtual dispatch with a skewed receiver
    distribution) and shows the lookup traffic collapsing after the
    rewrite. *)

let () =
  let w = Option.get (Workloads.Suite.by_name "eon") in
  let native = Workloads.Workload.run_native w in
  Printf.printf "eon-like workload: %d simulated native cycles\n\n" native.cycles;

  let base, rt0 = Workloads.Workload.run_rio w in
  Printf.printf "base RIO:   %8d cycles (%.3fx native), %d hashtable lookups\n"
    base.cycles
    (float_of_int base.cycles /. float_of_int native.cycles)
    (Rio.stats rt0).Rio.Stats.ibl_lookups;

  let opt, rt = Workloads.Workload.run_rio ~client:(Clients.Ibdispatch.make ()) w in
  assert (opt.output = native.output);
  let s = Rio.stats rt in
  Printf.printf "adaptive:   %8d cycles (%.3fx native), %d hashtable lookups\n\n"
    opt.cycles
    (float_of_int opt.cycles /. float_of_int native.cycles)
    s.Rio.Stats.ibl_lookups;
  Printf.printf "%s" (Rio.Api.client_output rt);
  Printf.printf "fragments replaced in place: %d\n" s.Rio.Stats.fragments_replaced;
  Printf.printf
    "\n(the rewrite inserted compare-plus-branch pairs for the hot virtual\n\
    \ targets on the lookup's miss path, exactly as in the paper's Figure 4;\n\
    \ run `dune exec bench/main.exe figure4` to see the generated code)\n"
