(** Quickstart: run a program under the RIO runtime with a simple
    instrumentation client.

    {v dune exec examples/quickstart.exe v}

    This is the smallest end-to-end use of the public API:
    1. write a program in the assembler DSL,
    2. assemble and load it into a simulated machine,
    3. attach a client that counts basic-block executions,
    4. run under the code cache and inspect results. *)

open Asm.Dsl

(* 1. a program: sum the first 10,000 integers, print the sum *)
let prog =
  program ~name:"sum" ~entry:"main"
    ~text:
      [
        label "main";
        mov eax (i 0);
        mov ecx (i 1);
        label "loop";
        add eax ecx;
        inc ecx;
        cmp ecx (i 10_000);
        j le "loop";
        out eax;
        hlt;
      ]
    ()

let () =
  (* 2. assemble + load *)
  let image = Asm.Assemble.assemble prog in
  let machine = Vm.Machine.create () in
  ignore (Asm.Image.load machine image);

  (* 3. a client: Table-3 hooks + a clean call counting executions *)
  let executions = ref 0 in
  let client =
    {
      Rio.Types.null_client with
      name = "quickstart";
      basic_block =
        Some
          (fun ctx ~tag il ->
            Printf.printf "  built basic block for app address 0x%x (%d instrs)\n"
              tag
              (Rio.Instrlist.length il);
            let call = Rio.Api.clean_call ctx.Rio.Types.rt (fun _ -> incr executions) in
            match Rio.Instrlist.first il with
            | Some first -> Rio.Instrlist.insert_before il first call
            | None -> Rio.Instrlist.append il call);
      trace_hook =
        Some
          (fun _ ~tag il ->
            Printf.printf "  built trace at 0x%x (%d instrs)\n" tag
              (Rio.Instrlist.length il));
    }
  in

  (* 4. run *)
  let rt = Rio.create ~client machine in
  let outcome = Rio.run rt in
  Printf.printf "\nprogram output: %s\n"
    (String.concat ", " (List.map string_of_int (Vm.Machine.output machine)));
  Printf.printf "stopped: %s after %d simulated cycles (%d instructions)\n"
    (Rio.stop_reason_to_string outcome.Rio.reason)
    outcome.Rio.cycles outcome.Rio.insns;
  Printf.printf "basic-block executions observed by the client: %d\n" !executions;
  Format.printf "\nruntime statistics:@.%a@." Rio.Stats.pp (Rio.stats rt)
