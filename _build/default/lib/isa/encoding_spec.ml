(** The SynISA binary encoding, shared between encoder and decoder.

    SynISA is a variable-length CISC encoding (1–12 bytes per
    instruction) in the IA-32 mould:

    {v
    [0xF0 lock prefix] opcode [opcode2] [ModRM] [SIB] [disp8/32] [imm8/32]
    v}

    One-byte opcode map:
    - [0x00-0x3F]  ALU block: bits 7..3 select the operation
                   (add sub and or xor cmp adc sbb), bits 2..0 the form:
                   0 rm<-reg, 1 reg<-rm, 2 rm<-imm8(se), 3 rm<-imm32,
                   4 eax<-imm8(se), 5 eax<-imm32 (short forms).
    - [0x40+r] inc r    [0x48+r] dec r   (one-byte short forms)
    - [0x50+r] push r   [0x58+r] pop r
    - [0x60] mov rm<-reg  [0x61] mov reg<-rm  [0x62] mov rm<-imm32
      [0x63] test rm,reg  [0x64] test rm,imm32  [0x65] lea reg,m
      [0x66] xchg reg,rm  [0x67] imul reg<-rm
    - [0x68+r] mov r<-imm32 (short form)
    - [0x70+cc] jcc rel8
    - [0x80] jmp rel8   [0x81] jmp rel32  [0x82] jmp rm
      [0x83] call rel32 [0x84] call rm    [0x85] ret
      [0x86] push rm    [0x87] pop rm     [0x88] push imm32
      [0x89] movzx8 reg<-rm  [0x8A] movzx16 reg<-rm  [0x8B] idiv rm
      [0x8C] out reg    [0x8D] in reg     [0x8E] pushf  [0x8F] popf
    - [0x90] nop
    - [0x98] neg rm  [0x99] not rm  [0x9A] inc rm  [0x9B] dec rm
    - [0xA0-0xA2] shl/shr/sar rm,imm8   [0xA3-0xA5] shl/shr/sar rm,%cl
    - [0xF0] lock prefix  [0xF4] hlt
    - [0x0F] two-byte escape:
        [0x10] fld f,m   [0x11] fst m,f   [0x12] fmov fd,fs
        [0x20-0x23] fadd/fsub/fmul/fdiv f,f
        [0x28-0x2B] fadd/fsub/fmul/fdiv f,m
        [0x30] fcmp f,f  [0x31] fcmp f,m
        [0x38] fabs  [0x39] fneg  [0x3A] fsqrt
        [0x40] cvtsi f<-rm  [0x41] cvtfi r<-f
        [0x80+cc] jcc rel32
        [0xC0] ccall imm32 (runtime-reserved)

    ModRM is exactly IA-32's: [mod(2) | reg(3) | rm(3)]; mod=3 register
    direct; rm=4 selects a SIB byte [scale(2) | index(3) | base(3)];
    index=4 in SIB means "no index"; mod=0,rm=5 is absolute disp32;
    mod=0,SIB base=5 is disp32 with no base.  Direct branch targets are
    encoded pc-relative to the end of the instruction. *)

let escape = 0x0F
let lock_prefix = 0xF0

(* ALU block operation indices *)
let alu_index : Opcode.t -> int option = function
  | Add -> Some 0
  | Sub -> Some 1
  | And -> Some 2
  | Or -> Some 3
  | Xor -> Some 4
  | Cmp -> Some 5
  | Adc -> Some 6
  | Sbb -> Some 7
  | _ -> None

let alu_of_index = function
  | 0 -> Opcode.Add
  | 1 -> Opcode.Sub
  | 2 -> Opcode.And
  | 3 -> Opcode.Or
  | 4 -> Opcode.Xor
  | 5 -> Opcode.Cmp
  | 6 -> Opcode.Adc
  | 7 -> Opcode.Sbb
  | n -> invalid_arg (Printf.sprintf "alu_of_index: %d" n)

let fits_i8 n = n >= -128 && n <= 127

(* signed 32-bit wraparound helpers for displacements *)
let to_i32 n =
  let n = n land 0xFFFF_FFFF in
  if n >= 0x8000_0000 then n - 0x1_0000_0000 else n
