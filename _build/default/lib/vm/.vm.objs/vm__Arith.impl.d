lib/vm/arith.ml: Eflags Float Isa
