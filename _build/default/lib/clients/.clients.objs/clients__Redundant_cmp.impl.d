lib/clients/redundant_cmp.ml: Array Eflags Insn Isa List Opcode Operand Reg Rio Rlr Stdlib
