lib/workloads/workload.ml: Asm List Rio Vm
