(** Profiling as a non-optimization use of the interface (paper §1,
    §7): discover a program's dynamic control-flow graph with the edge
    profiler, then show how the hottest edges line up with the traces
    the runtime chose to build.

    {v dune exec examples/profiling.exe v} *)

let () =
  let w = Option.get (Workloads.Suite.by_name "gzip") in
  let client, t = Clients.Edgeprof.make () in
  let r, rt = Workloads.Workload.run_rio ~client w in
  assert r.ok;

  Printf.printf "gzip-like workload under the edge-profiling client\n\n";
  Printf.printf "distinct control-flow edges observed: %d\n"
    (Hashtbl.length t.Clients.Edgeprof.edges);
  Printf.printf "hottest edges (block -> block : executions):\n";
  List.iter
    (fun (a, b, c) -> Printf.printf "  0x%04x -> 0x%04x : %7d\n" a b c)
    (Clients.Edgeprof.hot_edges t 8);

  let s = Rio.stats rt in
  Printf.printf "\ntraces the runtime built from this behaviour: %d\n"
    s.Rio.Stats.traces_built;
  Printf.printf "basic blocks built: %d; block executions profiled: %d\n"
    s.Rio.Stats.blocks_built s.Rio.Stats.clean_calls;
  Printf.printf
    "\n(every hot edge is interior to a trace or a trace-to-trace link;\n\
    \ profiling ran as clean calls with zero changes to program output)\n"
