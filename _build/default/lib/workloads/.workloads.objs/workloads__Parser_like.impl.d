lib/workloads/parser_like.ml: Asm List Workload
