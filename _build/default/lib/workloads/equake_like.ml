(** equake-like: sparse matrix-vector earthquake simulation (SPEC2000
    183.equake).

    Character: sparse matvec — an index load feeds an FP gather
    (load-indexed, multiply, accumulate) — wrapped in a per-node
    helper call.  Mixes mcf-style dependent integer loads with FP
    arithmetic and call/return traffic. *)

open Asm.Dsl

let nodes = 420
let nnz_per_row = 6
let steps = 28

let text =
  [
    label "main";
    mov ebp esp;
    mov edx (i 0);
    label "step";
    mov edi (i 0);
    label "node";
    call "row_times_x";
    inc edi;
    cmp edi (i nodes);
    j l "node";
    inc edx;
    cmp edx (i steps);
    j l "step";
    (* checksum *)
    mov edi (i 0);
    mov ecx (i 0);
    label "sum";
    ins (fun env ->
        Isa.Insn.mk_fld f0
          (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "y") ()));
    cvtfi eax f0;
    add ecx eax;
    add edi (i 13);
    cmp edi (i nodes);
    j l "sum";
    out ecx;
    hlt;
    (* y[edi] = sum_k A[edi,k] * x[col[edi,k]] *)
    label "row_times_x";
    li ebx "zero";
    fld f1 (mb ebx);
    mov esi (i 0);
    label "nz";
    (* flat nonzero index: edi*nnz + esi *)
    mov eax edi;
    imul eax (i nnz_per_row);
    add eax esi;
    li ebx "cols";
    mov ecx (m ~base:ebx ~index:(eax, 4) ());   (* column index *)
    ins (fun env ->
        Isa.Insn.mk_fld f2
          (Isa.Operand.mem ~index:(Isa.Reg.Ecx, 8) ~disp:(env "x") ()));
    ins (fun env ->
        Isa.Insn.mk_fmul f2
          (Isa.Operand.mem ~index:(Isa.Reg.Eax, 8) ~disp:(env "a") ()));
    fadd f1 (fr f2);
    inc esi;
    cmp esi (i nnz_per_row);
    j l "nz";
    ins (fun env ->
        Isa.Insn.mk_fst
          (Isa.Operand.mem ~index:(Isa.Reg.Edi, 8) ~disp:(env "y") ())
          f1);
    ret;
  ]

let data =
  [
    label "zero";
    float64 [ 0.0 ];
    label "cols";
    word32 (Workload.lcg_mod ~seed:51 (nodes * nnz_per_row) nodes);
    label "a";
    float64 (Workload.lcg_floats ~seed:53 (nodes * nnz_per_row));
    label "x";
    float64 (Workload.lcg_floats ~seed:57 nodes);
    label "y";
    float64 (List.init nodes (fun _ -> 0.0));
  ]

let workload =
  Workload.make ~name:"equake" ~spec_name:"183.equake" ~fp:true
    ~description:"sparse matvec with index gathers behind per-row calls"
    (program ~name:"equake" ~entry:"main" ~text ~data ())
