(** The unified per-thread fragment index: one open-addressing,
    power-of-two hash table keyed by application tag, replacing the
    four separate [Hashtbl]s ([bbs], [traces], [ibl], head state) the
    dispatcher used to probe on every exit from the code cache.  This
    mirrors the paper's in-cache indirect-branch hashtable (§2.3): the
    hot lookups — "is there a trace for this tag", "is there a basic
    block", "is this tag a trace head and how hot is it", "what does
    the indirect-branch lookup resolve to" — are all answered by a
    single linear probe.

    Emptying a per-tag {e slot} (one fragment kind) just clears that
    field; {!delete} removes a whole key by backward-shift (no
    tombstones), so an evicted fragment leaves no ghost entry behind;
    evicting {e every} fragment at once (flush-the-world) bumps a
    table-wide generation counter in O(1) — entries whose generation is
    stale read as empty and are lazily reset on next touch.  Trace-head
    counters deliberately survive a fragment flush, exactly as the old
    separate [head_counters] table did (capacity eviction therefore
    only deletes keys with no head state left). *)

type profile = {
  mutable p_t1 : int;          (** most-frequent successor tag *)
  mutable p_n1 : int;          (** its sample count *)
  mutable p_t2 : int;          (** runner-up successor tag *)
  mutable p_n2 : int;          (** its sample count *)
  mutable p_other : int;       (** samples beyond the two slots *)
  mutable p_total : int;       (** all samples *)
}
(** Two-slot successor histogram for an exit site (the tag of the block
    ending in the CTI), feeding -O3 speculation: slot 1 is kept
    dominant by swap-on-overtake, so [p_n1 * 4 >= p_total * 3] is the
    "monomorphic enough to speculate on" test. *)

type 'a entry = {
  key : int;                   (** application tag *)
  mutable fgen : int;          (** fragment-slot generation (internal) *)
  mutable bb : 'a option;      (** basic-block fragment *)
  mutable trace : 'a option;   (** trace fragment *)
  mutable ibl : 'a option;     (** indirect-branch lookup target *)
  mutable head : int;          (** trace-head counter; -1 = not a head *)
  mutable marked : bool;       (** client-marked head (dr_mark_trace_head) *)
  mutable prof : profile option;
      (** successor profile for the site; like head counters it
          describes the application, so it survives fragment flushes *)
  mutable head_cycles : int;
      (** machine-cycle stamp of the head counter's first hit: the
          elapsed cycles per hit at trace-build time separate heads
          that got hot in a tight loop (worth optimizing immediately)
          from heads that merely accumulated hits over the whole run *)
  mutable nospec : bool;
      (** despeculation verdict: a constant-load guard at this site was
          already cut once, so trace building must not fold observed
          constants here again.  Application knowledge, like [prof] —
          survives flushes and is shared through the pool's profile
          store *)
}

type 'a t

val create : ?bits:int -> unit -> 'a t
(** [create ~bits ()] — initial capacity [2^bits] (default 9). *)

val find : 'a t -> int -> 'a entry option
(** The entry for a tag, with fragment slots already normalized against
    the current generation; [None] if the tag was never indexed. *)

val ensure : 'a t -> int -> 'a entry
(** The entry for a tag, creating it (all slots empty) if absent. *)

val find_ibl : 'a t -> int -> 'a option
(** Allocation-free probe of just the indirect-branch slot. *)

val find_bb : 'a t -> int -> 'a option
val find_trace : 'a t -> int -> 'a option

val set_bb : 'a t -> int -> 'a -> unit
val set_trace : 'a t -> int -> 'a -> unit
val set_ibl : 'a t -> int -> 'a -> unit
val clear_ibl : 'a t -> int -> unit

val is_head : 'a t -> int -> bool
(** True when the tag has a head counter or a client mark. *)

val set_nospec : 'a t -> int -> unit
(** Record a despeculation verdict for the tag: never again fold
    observed constants into traces rooted at this site. *)

val nospec : 'a t -> int -> bool
(** True when the tag carries a despeculation verdict. *)

val delete : 'a t -> int -> unit
(** Remove the key entirely — fragment slots, head counter, and mark —
    closing its probe chain by backward shift.  No-op when absent.
    Entry references for {e other} keys stay valid (records move by
    cell, not by copy); a reference to the deleted key's entry becomes
    detached and must not be reused. *)

val count : 'a t -> int
(** Live keys in the table. *)

val record_successor : 'a t -> int -> int -> unit
(** [record_successor t site target] adds one sample to the site's
    successor profile, creating it on first use. *)

val successor_profile : 'a t -> int -> profile option
(** The site's successor profile, if any samples were recorded. *)

val copy_profile : profile -> profile
(** Fresh, unshared copy of a profile record. *)

val merge_profile : src:profile -> profile -> unit
(** [merge_profile ~src dst] folds [src]'s histogram into [dst]:
    per-target counts combine by maximum (publishers carry cumulative
    histograms, so summing would double-count shared ancestry; max is
    idempotent under re-publish and a union for disjoint targets), the
    two heaviest targets keep the slots (ties broken by target, so
    merge order does not matter), the rest spill into [p_other] — which
    itself combines by maximum over both buckets and the spill, so a
    re-publish of the same cumulative histogram is a no-op — and
    [p_total] is recomputed to match.  [src] is not modified.  This is
    how the pool's shared store and the persistent-image loader
    combine profiles from multiple runs instead of letting one run
    clobber another. *)

val flush_fragments : 'a t -> unit
(** Invalidate every bb/trace/ibl slot in O(1) (generation bump);
    head counters and marks survive. *)

val iter_entries : 'a t -> ('a entry -> unit) -> unit
(** Iterate every live entry (fragment slots may be stale — check
    against the accessors, or use the typed iterators below).  The
    persistence and profile-sharing layers use this to harvest head
    counters, profiles, and verdicts in one walk. *)

val iter_bbs : 'a t -> (int -> 'a -> unit) -> unit
val iter_traces : 'a t -> (int -> 'a -> unit) -> unit
val iter_ibl : 'a t -> (int -> 'a -> unit) -> unit

val bb_count : 'a t -> int
val trace_count : 'a t -> int
