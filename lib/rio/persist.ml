(** Persistent code cache: serialize a warm runtime's fragments —
    bodies plus typed relocation tables — the fragment index's
    application knowledge (trace-head counters, successor profiles,
    despeculation verdicts), and re-materialize them into a fresh
    runtime so a new serving instance warm-boots instead of
    re-discovering every hot trace (DESIGN.md §6.8).

    {2 Image format (".riocache")}

    All multi-byte header fields are little-endian u32; payload
    integers are unsigned LEB128 varints.

    {v
    "RIOCACHE"            8-byte magic
    version               u32 (format_version)
    options digest        u32 (Options.digest of the saving runtime)
    program digest        u32 (Asm.Image.digest, caller-supplied)
    payload               varint-encoded thread sections (below)
    checksum              u32 FNV-1a over every preceding byte
    v}

    Per thread section: tid; index entries (key, head+1, marked,
    nospec, head_cycles, optional 6-field successor profile); then the
    persistable bb fragments and trace fragments.  Per fragment: kind,
    tag, body/total length, source ranges, per-exit metadata (kind,
    target tag, site offsets, condition and always-through-stub flags),
    the relocation table, the speculative-guard table (site, assumption
    kind, owning-exit ordinal, lifetime violation count — format v2),
    and the raw cache bytes.

    {2 What load replays, and what it drops}

    Fragment bytes are blitted at whatever address the loading
    runtime's allocator picks, then fixed up by replaying the
    relocation table: exit CTIs are re-encoded against their own stubs
    and stub jumps against {e fresh} trap tokens (exit ids are
    allocated anew), so whatever link state was frozen into the saved
    bytes is erased — fragments come back in unlinked form and the
    dispatcher re-links them lazily with its usual policy.  TLS-slot
    operands are validated against the loading thread's tid.  Dropped
    as rebuildable-or-runtime-local: direct links, IBL table entries,
    execution counters, guard burst windows (bursts are a phase
    signal of one process's run; lifetime violation counts {e do}
    survive, re-bound to the fresh exit ids, so a loaded -O3 trace
    keeps counting toward its despeculation budget), and client stub
    ILs (loaded fragments are marked [reopted] and [loaded] so nothing
    tries to decode them back to IL — a spent constant guard on a
    loaded trace despecs by rebuild, not by cutting).  Despeculation
    {e verdicts} travel in the index entries' [nospec] bits, so a
    warm-booted instance never rebuilds a speculation its saver
    already proved unstable.  Fragments addressing runtime-heap cells
    ([RT_runtime_abs]: client globals, profiling counters) are not
    persisted at all — those addresses die with the saving process. *)

open Types

let magic = "RIOCACHE"
let format_version = 2

type error =
  | Bad_magic
  | Bad_version of int
  | Truncated
  | Checksum_mismatch
  | Options_mismatch
  | Image_mismatch
  | Malformed of string

let error_to_string = function
  | Bad_magic -> "not a RIO cache image (bad magic)"
  | Bad_version v -> Printf.sprintf "unsupported cache-image version %d" v
  | Truncated -> "cache image truncated"
  | Checksum_mismatch -> "cache image checksum mismatch (corrupted)"
  | Options_mismatch -> "cache image was built under different options"
  | Image_mismatch -> "cache image was built from a different program"
  | Malformed msg -> Printf.sprintf "malformed cache image: %s" msg

(** What a successful load did: fragments skipped are those that did
    not fit the loading runtime's (possibly smaller) cache region. *)
type summary = { threads : int; fragments : int; skipped : int }

exception Fail of error

(* ------------------------------------------------------------------ *)
(* Primitive encoding                                                 *)
(* ------------------------------------------------------------------ *)

let fnv32 (s : string) ~(pos : int) ~(len : int) : int =
  let h = ref 0x811c9dc5 in
  for i = pos to pos + len - 1 do
    h := !h lxor Char.code s.[i];
    h := !h * 0x01000193 land 0xffff_ffff
  done;
  !h

let add_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

(* unsigned LEB128 *)
let rec add_v buf v =
  if v < 0 then invalid_arg "Persist.add_v: negative";
  if v < 0x80 then Buffer.add_char buf (Char.chr v)
  else begin
    Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
    add_v buf (v lsr 7)
  end

let add_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

type reader = { src : string; mutable pos : int; limit : int }

let need r n = if r.pos + n > r.limit then raise (Fail Truncated)

let read_u32 r =
  need r 4;
  let b i = Char.code r.src.[r.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  r.pos <- r.pos + 4;
  v

let read_v r =
  let rec go shift acc =
    need r 1;
    let b = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc
    else if shift > 56 then raise (Fail (Malformed "varint too long"))
    else go (shift + 7) acc
  in
  go 0 0

let read_bool r =
  need r 1;
  let c = r.src.[r.pos] in
  r.pos <- r.pos + 1;
  match c with
  | '\000' -> false
  | '\001' -> true
  | _ -> raise (Fail (Malformed "bad boolean"))

let read_bytes_ r n =
  need r n;
  let b = Bytes.of_string (String.sub r.src r.pos n) in
  r.pos <- r.pos + n;
  b

(* ------------------------------------------------------------------ *)
(* Saving                                                             *)
(* ------------------------------------------------------------------ *)

let persistable (f : fragment) : bool =
  (not f.deleted)
  && Array.for_all
       (fun r ->
         match r.r_target with RT_runtime_abs _ -> false | _ -> true)
       f.relocs

let write_fragment buf (mem : Vm.Memory.t) (f : fragment) : unit =
  Buffer.add_char buf (match f.kind with Bb -> '\000' | Trace -> '\001');
  add_v buf f.tag;
  add_v buf (f.body_end - f.entry);
  add_v buf (f.total_end - f.entry);
  add_v buf (List.length f.src_ranges);
  List.iter
    (fun (lo, hi) ->
      add_v buf lo;
      add_v buf hi)
    f.src_ranges;
  add_v buf (Array.length f.exits);
  Array.iter
    (fun e ->
      Buffer.add_char buf
        (match e.e_kind with
        | Exit_direct -> '\000'
        | Exit_indirect Ind_jmp -> '\001'
        | Exit_indirect Ind_call -> '\002'
        | Exit_indirect Ind_ret -> '\003');
      add_v buf e.target_tag;
      add_v buf (e.branch_pc - f.entry);
      add_bool buf e.branch_is_cond;
      add_v buf (e.stub_pc - f.entry);
      add_v buf (e.stub_jmp_pc - f.entry);
      add_bool buf e.always_through_stub)
    f.exits;
  add_v buf (Array.length f.relocs);
  Array.iter
    (fun r ->
      add_v buf r.r_off;
      match r.r_target with
      | RT_exit_branch ord ->
          Buffer.add_char buf '\000';
          add_v buf ord
      | RT_stub_jmp ord ->
          Buffer.add_char buf '\001';
          add_v buf ord
      | RT_tls_abs (tid, slot) ->
          Buffer.add_char buf '\002';
          add_v buf tid;
          add_v buf slot
      | RT_runtime_abs addr ->
          Buffer.add_char buf '\003';
          add_v buf addr)
    f.relocs;
  (* speculative guards (format v2): site, assumption kind, owning-exit
     ordinal, lifetime violations.  Burst state is run-local and
     dropped; a guard not bound to a live exit has nothing to re-bind
     to and is skipped. *)
  let ord_of_exit id =
    let ord = ref (-1) in
    Array.iteri (fun k e -> if e.exit_id = id then ord := k) f.exits;
    !ord
  in
  let guards =
    List.filter_map
      (fun (g : guard) ->
        let ord = ord_of_exit g.g_exit_id in
        if ord < 0 then None else Some (g, ord))
      f.guards
  in
  add_v buf (List.length guards);
  List.iter
    (fun ((g : guard), ord) ->
      add_v buf g.g_site;
      Buffer.add_char buf
        (match g.g_kind with
        | G_ind Ind_jmp -> '\000'
        | G_ind Ind_call -> '\001'
        | G_ind Ind_ret -> '\002'
        | G_const -> '\003');
      add_v buf ord;
      add_v buf g.g_violations)
    guards;
  let len = f.total_end - f.entry in
  let body = Vm.Memory.read_bytes mem ~addr:f.entry ~len in
  Buffer.add_bytes buf body

let write_index_entries buf (ts : thread_state) : unit =
  let worth (e : _ Fragindex.entry) =
    e.Fragindex.head >= 0 || e.Fragindex.marked || e.Fragindex.nospec
    || e.Fragindex.prof <> None
  in
  let entries = ref [] in
  Fragindex.iter_entries ts.index (fun e ->
      if worth e then entries := e :: !entries);
  add_v buf (List.length !entries);
  List.iter
    (fun (e : _ Fragindex.entry) ->
      add_v buf e.Fragindex.key;
      add_v buf (e.Fragindex.head + 1);
      add_bool buf e.Fragindex.marked;
      add_bool buf e.Fragindex.nospec;
      add_v buf (max 0 e.Fragindex.head_cycles);
      match e.Fragindex.prof with
      | None -> add_bool buf false
      | Some p ->
          add_bool buf true;
          add_v buf p.Fragindex.p_t1;
          add_v buf p.Fragindex.p_n1;
          add_v buf p.Fragindex.p_t2;
          add_v buf p.Fragindex.p_n2;
          add_v buf p.Fragindex.p_other;
          add_v buf p.Fragindex.p_total)
    !entries

(** Serialize the runtime's warm state to [path] (written atomically
    via a temporary file).  [image_digest] is the {!Asm.Image.digest}
    of the program the cache was built over; load refuses anything
    else.  Returns the number of fragments persisted. *)
let save (rt : runtime) ~(image_digest : int) ~(path : string) : int =
  let mem = Vm.Machine.mem rt.machine in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf magic;
  add_u32 buf format_version;
  add_u32 buf (Options.digest rt.opts);
  add_u32 buf (image_digest land 0xffff_ffff);
  let persisted = ref 0 in
  let tss =
    List.sort (fun a b -> compare a.ts_tid b.ts_tid) rt.thread_states
  in
  add_v buf (List.length tss);
  List.iter
    (fun ts ->
      add_v buf ts.ts_tid;
      write_index_entries buf ts;
      let collect iter =
        let fs = ref [] in
        iter ts.index (fun _ f -> if persistable f then fs := f :: !fs);
        (* ascending entry: stable output, and load re-materializes in
           original emission order within each region *)
        List.sort (fun a b -> compare a.entry b.entry) !fs
      in
      let bbs = collect Fragindex.iter_bbs in
      let traces = collect Fragindex.iter_traces in
      add_v buf (List.length bbs);
      List.iter (fun f -> write_fragment buf mem f) bbs;
      add_v buf (List.length traces);
      List.iter (fun f -> write_fragment buf mem f) traces;
      persisted := !persisted + List.length bbs + List.length traces)
    tss;
  add_u32 buf (fnv32 (Buffer.contents buf) ~pos:0 ~len:(Buffer.length buf));
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Buffer.output_buffer oc buf;
  close_out oc;
  Sys.rename tmp path;
  rt.stats.Stats.persist_saves <- rt.stats.Stats.persist_saves + 1;
  rt.stats.Stats.fragments_persisted <-
    rt.stats.Stats.fragments_persisted + !persisted;
  !persisted

(* ------------------------------------------------------------------ *)
(* Loading                                                            *)
(* ------------------------------------------------------------------ *)

(* The warm per-tid state for a loading runtime: reuse an existing one,
   or fabricate a machine thread so tids line up and build the state
   directly (mirrors Engine.make_thread_state; Persist sits below
   Engine).  Fabricated threads are swept away by the reset_for_run at
   the end of [load] — the next request's thread re-attaches to the
   state by tid, exactly as warm reuse does. *)
let thread_state_for (rt : runtime) (tid : int) : thread_state =
  match List.find_opt (fun ts -> ts.ts_tid = tid) rt.thread_states with
  | Some ts -> ts
  | None ->
      let rec mk () =
        let th = Vm.Machine.add_thread rt.machine ~entry:0 ~stack_top:0 in
        if th.Vm.Machine.tid < tid then mk ()
        else if th.Vm.Machine.tid = tid then th
        else raise (Fail (Malformed "thread sections out of order"))
      in
      let th = mk () in
      let ts =
        {
          ts_tid = tid;
          thread = th;
          next_tag = 0;
          index = Fragindex.create ();
          tracegen = None;
          client_field = None;
          exited = false;
          in_cache = false;
        }
      in
      rt.thread_states <- rt.thread_states @ [ ts ];
      ts

let read_index_entries r (ts : thread_state) : unit =
  let n = read_v r in
  for _ = 1 to n do
    let key = read_v r in
    let head = read_v r - 1 in
    let marked = read_bool r in
    let nospec = read_bool r in
    let head_cycles = read_v r in
    let e = Fragindex.ensure ts.index key in
    e.Fragindex.head <- max e.Fragindex.head head;
    if marked then e.Fragindex.marked <- true;
    if nospec then e.Fragindex.nospec <- true;
    if e.Fragindex.head_cycles = 0 then e.Fragindex.head_cycles <- head_cycles;
    if read_bool r then begin
      let p_t1 = read_v r in
      let p_n1 = read_v r in
      let p_t2 = read_v r in
      let p_n2 = read_v r in
      let p_other = read_v r in
      let p_total = read_v r in
      let loaded = { Fragindex.p_t1; p_n1; p_t2; p_n2; p_other; p_total } in
      match e.Fragindex.prof with
      | None -> e.Fragindex.prof <- Some loaded
      | Some live ->
          (* the image's histogram folds into whatever this instance
             already learned — cross-run accumulation, not clobbering *)
          Fragindex.merge_profile ~src:loaded live
    end
  done

(* Parse one fragment section into a placement-independent description. *)
type parsed_exit = {
  pe_kind : exit_kind;
  pe_target : int;
  pe_branch_off : int;
  pe_cond : bool;
  pe_stub_off : int;
  pe_stub_jmp_off : int;
  pe_always : bool;
}

type parsed_guard = {
  pg_site : int;
  pg_kind : guard_kind;
  pg_ord : int;          (* ordinal of the bound exit *)
  pg_violations : int;
}

type parsed_fragment = {
  pf_kind : fragment_kind;
  pf_tag : int;
  pf_body_len : int;
  pf_total_len : int;
  pf_src_ranges : (int * int) list;
  pf_exits : parsed_exit list;
  pf_relocs : reloc array;
  pf_guards : parsed_guard list;
  pf_bytes : Bytes.t;
}

let read_fragment r : parsed_fragment =
  need r 1;
  let kind =
    match r.src.[r.pos] with
    | '\000' -> Bb
    | '\001' -> Trace
    | _ -> raise (Fail (Malformed "bad fragment kind"))
  in
  r.pos <- r.pos + 1;
  let tag = read_v r in
  let body_len = read_v r in
  let total_len = read_v r in
  if body_len > total_len || total_len <= 0 || total_len > 0x100_0000 then
    raise (Fail (Malformed "implausible fragment size"));
  let nsrc = read_v r in
  let src_ranges =
    List.init nsrc (fun _ ->
        let lo = read_v r in
        let hi = read_v r in
        (lo, hi))
  in
  let nexits = read_v r in
  if nexits > 4096 then raise (Fail (Malformed "implausible exit count"));
  let exits =
    List.init nexits (fun _ ->
        need r 1;
        let pe_kind =
          match r.src.[r.pos] with
          | '\000' -> Exit_direct
          | '\001' -> Exit_indirect Ind_jmp
          | '\002' -> Exit_indirect Ind_call
          | '\003' -> Exit_indirect Ind_ret
          | _ -> raise (Fail (Malformed "bad exit kind"))
        in
        r.pos <- r.pos + 1;
        let pe_target = read_v r in
        let pe_branch_off = read_v r in
        let pe_cond = read_bool r in
        let pe_stub_off = read_v r in
        let pe_stub_jmp_off = read_v r in
        let pe_always = read_bool r in
        if pe_branch_off >= total_len || pe_stub_jmp_off >= total_len then
          raise (Fail (Malformed "exit site outside fragment"));
        { pe_kind; pe_target; pe_branch_off; pe_cond; pe_stub_off;
          pe_stub_jmp_off; pe_always })
  in
  let nrel = read_v r in
  if nrel > 65536 then raise (Fail (Malformed "implausible reloc count"));
  let relocs =
    Array.init nrel (fun _ ->
        let r_off = read_v r in
        need r 1;
        let tagc = r.src.[r.pos] in
        r.pos <- r.pos + 1;
        let r_target =
          match tagc with
          | '\000' ->
              let ord = read_v r in
              if ord >= nexits then
                raise (Fail (Malformed "reloc exit ordinal out of range"));
              RT_exit_branch ord
          | '\001' ->
              let ord = read_v r in
              if ord >= nexits then
                raise (Fail (Malformed "reloc exit ordinal out of range"));
              RT_stub_jmp ord
          | '\002' ->
              let tid = read_v r in
              let slot = read_v r in
              RT_tls_abs (tid, slot)
          | '\003' -> RT_runtime_abs (read_v r)
          | _ -> raise (Fail (Malformed "bad reloc target"))
        in
        if r_off >= total_len then
          raise (Fail (Malformed "reloc site outside fragment"));
        { r_off; r_target })
  in
  let nguards = read_v r in
  if nguards > 4096 then raise (Fail (Malformed "implausible guard count"));
  let guards =
    List.init nguards (fun _ ->
        let pg_site = read_v r in
        need r 1;
        let pg_kind =
          match r.src.[r.pos] with
          | '\000' -> G_ind Ind_jmp
          | '\001' -> G_ind Ind_call
          | '\002' -> G_ind Ind_ret
          | '\003' -> G_const
          | _ -> raise (Fail (Malformed "bad guard kind"))
        in
        r.pos <- r.pos + 1;
        let pg_ord = read_v r in
        if pg_ord >= nexits then
          raise (Fail (Malformed "guard exit ordinal out of range"));
        let pg_violations = read_v r in
        { pg_site; pg_kind; pg_ord; pg_violations })
  in
  let bytes = read_bytes_ r total_len in
  { pf_kind = kind; pf_tag = tag; pf_body_len = body_len;
    pf_total_len = total_len; pf_src_ranges = src_ranges; pf_exits = exits;
    pf_relocs = relocs; pf_guards = guards; pf_bytes = bytes }

(* Re-materialize one parsed fragment into the runtime: allocate cache
   space, blit, build exit records with fresh ids, and replay the
   relocation table so every pc-relative site targets this placement
   (and this runtime's trap tokens) instead of the saved one.  Returns
   false when the region cannot host it (smaller cache at load). *)
let materialize (rt : runtime) (ts : thread_state) (pf : parsed_fragment) : bool
    =
  (* TLS operands are absolute per-(tid,slot) addresses: only load a
     fragment into the tid it was mangled for *)
  let tls_ok =
    Array.for_all
      (fun r ->
        match r.r_target with
        | RT_tls_abs (tid, _) -> tid = ts.ts_tid
        | RT_runtime_abs _ -> false
        | _ -> true)
      pf.pf_relocs
  in
  if not tls_ok then false
  else
    match Emit.alloc rt ts ~kind:pf.pf_kind pf.pf_total_len with
    | exception Emit.No_room _ -> false
    | exception Emit.Cache_full -> false
    | entry ->
        Emit.write_bytes rt ~addr:entry pf.pf_bytes;
        let exits =
          List.map
            (fun pe ->
              let id = rt.next_exit_id in
              rt.next_exit_id <- rt.next_exit_id + 1;
              let e =
                {
                  exit_id = id;
                  e_kind = pe.pe_kind;
                  target_tag = pe.pe_target;
                  branch_pc = entry + pe.pe_branch_off;
                  branch_is_cond = pe.pe_cond;
                  stub_pc = entry + pe.pe_stub_off;
                  stub_jmp_pc = entry + pe.pe_stub_jmp_off;
                  linked = None;
                  always_through_stub = pe.pe_always;
                  stub_il = None;
                  e_owner = None;
                }
              in
              register_exit rt e;
              e)
            pf.pf_exits
        in
        let exits = Array.of_list exits in
        let frag =
          {
            tag = pf.pf_tag;
            kind = pf.pf_kind;
            f_tid = ts.ts_tid;
            entry;
            body_end = entry + pf.pf_body_len;
            total_end = entry + pf.pf_total_len;
            relocs = pf.pf_relocs;
            exits;
            incoming = [];
            deleted = false;
            exec_count = 0;
            (* no IL round-trip for loaded bodies: stub preambles lost
               their notes, so decode-based re-optimization must never
               run on them *)
            reopted = true;
            loaded = true;
            guards = [];
            checksum = 0;
            src_ranges = pf.pf_src_ranges;
          }
        in
        Array.iter (fun e -> e.e_owner <- Some frag) exits;
        (* re-bind persisted guards to the fresh exit ids: lifetime
           violation counts carry over (the despec budget survives the
           reboot), burst state starts clean *)
        frag.guards <-
          List.map
            (fun pg ->
              {
                g_site = pg.pg_site;
                g_kind = pg.pg_kind;
                g_exit_id = exits.(pg.pg_ord).exit_id;
                g_violations = pg.pg_violations;
                g_last_violation = 0;
                g_burst = 0;
              })
            pf.pf_guards;
        (* relocation replay: the saved bytes froze some link state and
           the saver's trap tokens — re-encode every pc-relative site
           for this placement, unlinked, with this runtime's tokens *)
        Array.iter
          (fun r ->
            match r.r_target with
            | RT_exit_branch ord ->
                let e = exits.(ord) in
                Emit.patch_branch rt ~pc:e.branch_pc ~target:e.stub_pc
            | RT_stub_jmp ord ->
                let e = exits.(ord) in
                Emit.patch_branch rt ~pc:e.stub_jmp_pc
                  ~target:(token_of_exit e)
            | RT_tls_abs _ | RT_runtime_abs _ -> ())
          pf.pf_relocs;
        Audit.refresh rt frag;
        (* index the fragment, replicating the build-time IBL policy:
           a bb publishes itself for indirect lookups unless its tag is
           a trace head; a trace always shadows the head's slot.  Bb
           sections precede trace sections in the image, so the trace's
           [set_ibl] wins, exactly as it does when built live. *)
        (match pf.pf_kind with
        | Bb ->
            Fragindex.set_bb ts.index pf.pf_tag frag;
            if not (Fragindex.is_head ts.index pf.pf_tag) then
              Fragindex.set_ibl ts.index pf.pf_tag frag;
            rt.stats.Stats.cache_bytes_bb <-
              rt.stats.Stats.cache_bytes_bb + pf.pf_total_len
        | Trace ->
            Fragindex.set_trace ts.index pf.pf_tag frag;
            Fragindex.set_ibl ts.index pf.pf_tag frag;
            rt.stats.Stats.cache_bytes_trace <-
              rt.stats.Stats.cache_bytes_trace + pf.pf_total_len);
        (if rt.cache_alloc <> None then
           match pf.pf_kind with
           | Bb -> Queue.push frag rt.fifo_bb
           | Trace -> Queue.push frag rt.fifo_trace);
        rt.stats.Stats.fragments_preloaded <-
          rt.stats.Stats.fragments_preloaded + 1;
        true

(** Load a cache image saved by {!save} into a freshly created runtime
    (no requests served yet).  Refuses images whose options bundle or
    program digest disagree with this runtime, and anything corrupted,
    truncated, or version-skewed — always with a typed error, never an
    exception.  On success every re-materialized fragment is indexed,
    unlinked, and audit-checksummed; the machine's thread list is left
    clean for the first request. *)
let load (rt : runtime) ~(image_digest : int) ~(path : string) :
    (summary, error) result =
  let refused e =
    rt.stats.Stats.persist_load_failures <-
      rt.stats.Stats.persist_load_failures + 1;
    Error e
  in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> In_channel.input_all ic)
  with
  | exception Sys_error _ -> refused Truncated
  | s -> (
      let hlen = String.length magic + 12 in
      if String.length s < hlen + 4 then refused Truncated
      else if String.sub s 0 (String.length magic) <> magic then
        refused Bad_magic
      else begin
        let r =
          { src = s; pos = String.length magic; limit = String.length s - 4 }
        in
        let stored_sum =
          let t = { src = s; pos = String.length s - 4; limit = String.length s }
          in
          read_u32 t
        in
        let version = read_u32 r in
        let opts_digest = read_u32 r in
        let img_digest = read_u32 r in
        if version <> format_version then refused (Bad_version version)
        else if fnv32 s ~pos:0 ~len:(String.length s - 4) <> stored_sum then
          refused Checksum_mismatch
        else if opts_digest <> Options.digest rt.opts then
          refused Options_mismatch
        else if img_digest <> image_digest land 0xffff_ffff then
          refused Image_mismatch
        else begin
          match
            let nthreads = read_v r in
            if nthreads > 1024 then
              raise (Fail (Malformed "implausible thread count"));
            let fragments = ref 0 and skipped = ref 0 in
            for _ = 1 to nthreads do
              let tid = read_v r in
              let ts = thread_state_for rt tid in
              read_index_entries r ts;
              let load_set () =
                let n = read_v r in
                for _ = 1 to n do
                  let pf = read_fragment r in
                  if materialize rt ts pf then incr fragments
                  else incr skipped
                done
              in
              load_set () (* basic blocks *);
              load_set () (* traces *)
            done;
            if r.pos <> r.limit then
              raise (Fail (Malformed "trailing bytes after last section"));
            (* drop the fabricated threads; per-tid state (the warm
               cache) survives and re-attaches on the first request *)
            Vm.Machine.reset_for_run rt.machine;
            { threads = nthreads; fragments = !fragments; skipped = !skipped }
          with
          | summary ->
              rt.stats.Stats.persist_loads <-
                rt.stats.Stats.persist_loads + 1;
              Ok summary
          | exception Fail e -> refused e
          | exception Rio_error msg -> refused (Malformed msg)
        end
      end)
