lib/clients/counter.ml: Hashtbl List Option Rio Stdlib
