(** 32-bit integer arithmetic with IA-32-style eflags computation.

    Register values are represented as unsigned ints in [0, 2^32); these
    helpers compute results together with the full set of arithmetic
    flags.  Flags IA-32 leaves undefined (AF after logic ops, OF after
    multi-bit shifts) are given fixed deterministic definitions so the
    interpreter is a function. *)

open Isa

let mask32 = 0xFFFF_FFFF
let wrap v = v land mask32
let msb v = v lsr 31 land 1 = 1

let to_signed v = if v >= 0x8000_0000 then v - 0x1_0000_0000 else v
let of_signed v = v land mask32

(* parity of the low byte: PF set when the number of 1 bits is even *)
let parity v =
  let b = v land 0xFF in
  let b = b lxor (b lsr 4) in
  let b = b lxor (b lsr 2) in
  let b = b lxor (b lsr 1) in
  b land 1 = 0

(* SF/ZF/PF from a result *)
let szp fl r =
  let open Eflags in
  let fl = update fl ZF (r = 0) in
  let fl = update fl SF (msb r) in
  update fl PF (parity r)

type result = { value : int; flags : Eflags.t }

(** [add ~carry_in a b fl] — full add with all six flags. *)
let add ?(carry_in = false) a b fl =
  let open Eflags in
  let c = if carry_in then 1 else 0 in
  let full = a + b + c in
  let r = wrap full in
  let fl = update fl CF (full > mask32) in
  let fl = update fl OF (msb a = msb b && msb r <> msb a) in
  let fl = update fl AF ((a lxor b lxor r) land 0x10 <> 0) in
  { value = r; flags = szp fl r }

(** [sub ~borrow_in a b fl] — computes [a - b]. *)
let sub ?(borrow_in = false) a b fl =
  let open Eflags in
  let c = if borrow_in then 1 else 0 in
  let full = a - b - c in
  let r = wrap full in
  let fl = update fl CF (full < 0) in
  let fl = update fl OF (msb a <> msb b && msb r <> msb a) in
  let fl = update fl AF ((a lxor b lxor r) land 0x10 <> 0) in
  { value = r; flags = szp fl r }

(** inc/dec: like add/sub by one but CF preserved. *)
let inc a fl =
  let cf = Eflags.is_set fl Eflags.CF in
  let r = add a 1 fl in
  { r with flags = Eflags.update r.flags CF cf }

let dec a fl =
  let cf = Eflags.is_set fl Eflags.CF in
  let r = sub a 1 fl in
  { r with flags = Eflags.update r.flags CF cf }

(* logic ops clear CF/OF/AF, set SF/ZF/PF *)
let logic r fl =
  let open Eflags in
  let fl = clear fl CF in
  let fl = clear fl OF in
  let fl = clear fl AF in
  { value = r; flags = szp fl r }

let land_ a b fl = logic (a land b) fl
let lor_ a b fl = logic (a lor b) fl
let lxor_ a b fl = logic (a lxor b) fl

let neg a fl =
  let r = sub 0 a fl in
  { r with flags = Eflags.update r.flags CF (a <> 0) }

(* shifts: count masked to 5 bits like IA-32; count 0 leaves flags *)
let shl a count fl =
  let count = count land 31 in
  if count = 0 then { value = a; flags = fl }
  else
    let open Eflags in
    let r = wrap (a lsl count) in
    let cf = a lsr (32 - count) land 1 = 1 in
    let fl = update fl CF cf in
    (* OF defined (IA-32: only for count=1): msb changed *)
    let fl = update fl OF (count = 1 && msb r <> cf) in
    let fl = clear fl AF in
    { value = r; flags = szp fl r }

let shr a count fl =
  let count = count land 31 in
  if count = 0 then { value = a; flags = fl }
  else
    let open Eflags in
    let r = a lsr count in
    let cf = a lsr (count - 1) land 1 = 1 in
    let fl = update fl CF cf in
    let fl = update fl OF (count = 1 && msb a) in
    let fl = clear fl AF in
    { value = r; flags = szp fl r }

let sar a count fl =
  let count = count land 31 in
  if count = 0 then { value = a; flags = fl }
  else
    let open Eflags in
    let sa = to_signed a in
    let r = of_signed (sa asr count) in
    let cf = sa asr (count - 1) land 1 = 1 in
    let fl = update fl CF cf in
    let fl = clear fl OF in
    let fl = clear fl AF in
    { value = r; flags = szp fl r }

let imul a b fl =
  let open Eflags in
  let sa = to_signed a and sb = to_signed b in
  let full = sa * sb in
  let r = wrap full in
  let overflowed = full < -0x8000_0000 || full > 0x7FFF_FFFF in
  let fl = update fl CF overflowed in
  let fl = update fl OF overflowed in
  let fl = clear fl AF in
  { value = r; flags = szp fl r }

exception Division_by_zero

(** SynISA [idiv src]: eax/src -> eax (quotient), remainder -> edx.
    Truncated (round-toward-zero) signed division, like IA-32. *)
let idiv ~eax src fl =
  if src land mask32 = 0 then raise Division_by_zero;
  let sa = to_signed eax and sb = to_signed src in
  (* OCaml's / and mod truncate toward zero, matching IA-32 *)
  let q = of_signed (sa / sb) and r = of_signed (sa mod sb) in
  let open Eflags in
  let fl = clear fl CF in
  let fl = clear fl OF in
  let fl = clear fl AF in
  (q, r, szp fl q)

(** [fcmp a b] — comisd-style flags: unordered ZF=PF=CF=1; a>b all
    clear; a<b CF=1; a=b ZF=1.  OF/AF/SF cleared. *)
let fcmp (a : float) (b : float) fl =
  let open Eflags in
  let fl = clear fl OF in
  let fl = clear fl AF in
  let fl = clear fl SF in
  if Float.is_nan a || Float.is_nan b then
    let fl = set fl ZF in
    let fl = set fl PF in
    set fl CF
  else begin
    let fl = clear fl PF in
    if a > b then clear (clear fl ZF) CF
    else if a < b then set (clear fl ZF) CF
    else set (clear fl CF) ZF
  end
