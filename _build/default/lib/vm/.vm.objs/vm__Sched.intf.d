lib/vm/sched.mli: Interp Machine
