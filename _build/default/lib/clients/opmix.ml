(** Dynamic opcode-mix statistics (§7's "statistics gathering").

    Counts how many times each opcode executes, using the low-overhead
    recipe: one transparently-allocated in-cache counter per (block,
    opcode-class) pair, incremented by emitted code — no clean calls on
    the hot path.  Block-level static opcode counts are folded with the
    per-block execution counters at exit time, giving exact dynamic
    counts at near-zero cost. *)

open Isa
open Rio.Types

type t = {
  (* per-tag: execution counter address + static opcode histogram *)
  blocks : (int, int * (Opcode.t * int) list) Hashtbl.t;
  mutable rt : runtime option;
}

let fresh () = { blocks = Hashtbl.create 256; rt = None }

let static_histogram (il : Rio.Instrlist.t) : (Opcode.t * int) list =
  let h = Hashtbl.create 16 in
  Rio.Instrlist.iter il (fun i ->
      if not (Rio.Instr.is_bundle i) then begin
        let op = Rio.Instr.get_opcode i in
        Hashtbl.replace h op (1 + Option.value (Hashtbl.find_opt h op) ~default:0)
      end);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []

let on_bb (t : t) (ctx : context) ~tag (il : Rio.Instrlist.t) =
  t.rt <- Some ctx.rt;
  Rio.Instrlist.split_bundles il;
  let addr =
    match Hashtbl.find_opt t.blocks tag with
    | Some (a, _) -> a
    | None -> Rio.Api.alloc_global ctx.rt ~bytes:4
  in
  (* (re)record the histogram: a rebuilt block may differ (SMC) *)
  Hashtbl.replace t.blocks tag (addr, static_histogram il);
  let ctr = Rio.Api.global_opnd addr in
  let insert i =
    match Rio.Instrlist.first il with
    | Some first -> Rio.Instrlist.insert_before il first i
    | None -> Rio.Instrlist.append il i
  in
  if Rio.Flags_analysis.dead_after (Rio.Instrlist.first il) then
    insert (Rio.Create.inc ctr)
  else begin
    insert (Rio.Create.popf ());
    insert (Rio.Create.inc ctr);
    insert (Rio.Create.pushf ())
  end

(** Dynamic opcode counts, descending. *)
let dynamic_mix (t : t) : (Opcode.t * int) list =
  match t.rt with
  | None -> []
  | Some rt ->
      let h = Hashtbl.create 64 in
      Hashtbl.iter
        (fun _tag (addr, hist) ->
          let execs = Rio.Api.read_global rt addr in
          List.iter
            (fun (op, n) ->
              Hashtbl.replace h op
                ((execs * n) + Option.value (Hashtbl.find_opt h op) ~default:0))
            hist)
        t.blocks;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []
      |> List.sort (fun (_, a) (_, b) -> compare b a)

let make () : client * t =
  let t = fresh () in
  ( {
      null_client with
      name = "opmix";
      basic_block = Some (fun ctx ~tag il -> on_bb t ctx ~tag il);
      exit_hook =
        (fun rt ->
          let mix = dynamic_mix t in
          let total = List.fold_left (fun a (_, n) -> a + n) 0 mix in
          Rio.Api.printf rt "opmix: %d instructions executed; top opcodes:\n" total;
          List.iteri
            (fun k (op, n) ->
              if k < 8 then
                Rio.Api.printf rt "  %-8s %9d (%4.1f%%)\n" (Opcode.name op) n
                  (100.0 *. float_of_int n /. float_of_int total))
            mix);
    },
    t )

let client = Stdlib.fst (make ())
