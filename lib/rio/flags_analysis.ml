(** Eflags liveness over linear code — the analysis Level 2 exists to
    make cheap (paper §3.1).

    Used by the trace builder to decide whether an inserted comparison
    must save and restore the application's flags, and by clients (the
    strength-reduction example) to decide whether a transformation's
    flag differences are observable. *)

open Isa

(* A shift whose count masks to zero leaves every flag untouched at run
   time (Arith.shl/shr/sar short-circuit on [count land 31 = 0]), so
   the static write mask only counts as a kill when the count is a
   provably nonzero immediate.  A variable count may write or may not:
   for liveness that is "writes nothing" (flags pass through).  Shifts
   never read flags, so the read mask is unaffected.  Raising to
   Level 3 happens only for the three shift opcodes. *)
let certain_write_mask (i : Instr.t) : int =
  let m = Eflags.write_mask (Instr.get_eflags i) in
  match Instr.get_opcode i with
  | Opcode.Shl | Opcode.Shr | Opcode.Sar -> (
      let insn = Instr.get_insn i in
      if Array.length insn.Insn.srcs = 0 then 0
      else
        match insn.Insn.srcs.(0) with
        | Operand.Imm k when k land 31 <> 0 -> m
        | _ -> 0)
  | _ -> m

(** [dead_after i] — true when the application flags are provably dead
    at the program point {e before} instruction [i] (walking forward
    from [i], every flag is written before it is read, without leaving
    the fragment).  [None] (end of list) and exit CTIs are conservative
    [live] boundaries: code outside the fragment may read anything.

    Only Level-2 information (opcode → eflags mask) is consulted,
    except shifts, whose conditional flag write needs the count
    operand. *)
let dead_after (start : Instr.t option) : bool =
  let rec go (cur : Instr.t option) (still_live : int) =
    if still_live = 0 then true
    else
      match cur with
      | None -> false (* fell off the fragment: assume live *)
      | Some i ->
          if Instr.is_bundle i then
            (* a bundle's members may read flags; be conservative:
               splitting is the caller's job if precision matters *)
            false
          else
            let m = Instr.get_eflags i in
            let reads = Eflags.read_mask m land still_live in
            if reads <> 0 then false
            else
              let still_live = still_live land lnot (certain_write_mask i) in
              if Instr.is_cti i then
                (* leaving (or possibly leaving) the fragment *)
                still_live = 0
              else go i.Instr.next still_live
  in
  go start Eflags.all_mask

(** [flags_dead_after ~mask i] — like {!dead_after} but for a subset of
    flags: true when every flag in [mask] is written before read,
    without leaving the fragment (what inc→add needs for CF alone). *)
let flags_dead_after ~(mask : int) (start : Instr.t option) : bool =
  let rec go (cur : Instr.t option) (still_live : int) =
    if still_live = 0 then true
    else
      match cur with
      | None -> false
      | Some i ->
          if Instr.is_bundle i then false
          else
            let m = Instr.get_eflags i in
            if Eflags.read_mask m land still_live <> 0 then false
            else
              let still_live = still_live land lnot (certain_write_mask i) in
              if Instr.is_cti i then still_live = 0 else go i.Instr.next still_live
  in
  go start (mask land Eflags.all_mask)

(** [flags_written_set il_from] — the set of flags certainly written
    before any read, as a bit mask (used by tests). *)
let written_before_read (start : Instr.t option) : int =
  let rec go cur ~unread ~written =
    match cur with
    | None -> written
    | Some (i : Instr.t) ->
        if Instr.is_bundle i then written
        else
          let m = Instr.get_eflags i in
          (* within one instruction, reads happen before writes *)
          let unread = unread land lnot (Eflags.read_mask m) in
          let written = written lor (certain_write_mask i land unread) in
          if Instr.is_cti i then written
          else go i.Instr.next ~unread ~written
  in
  go start ~unread:Eflags.all_mask ~written:0

(* ------------------------------------------------------------------ *)
(* Backward register/memory liveness (DESIGN.md §6.4)                 *)
(* ------------------------------------------------------------------ *)

(** Liveness at a program point, as bit sets: one bit per GPR
    ({!Reg.number}), one per FP register, plus the eflags mask. *)
type live = {
  live_regs : int;
  live_fregs : int;
  live_flags : int;
}

let all_gprs = 0xFF
let all_fprs = 0xFF

(** Everything live: the state at every fragment boundary (exit CTIs,
    list ends) — code outside the fragment may read anything. *)
let all_live =
  { live_regs = all_gprs; live_fregs = all_fprs; live_flags = Eflags.all_mask }

let reg_bit r = 1 lsl Reg.number r
let freg_bit f = 1 lsl Reg.F.number f

let live_reg l r = l.live_regs land reg_bit r <> 0
let live_freg l f = l.live_fregs land freg_bit f <> 0

(* register uses / defs of one operand position *)
let operand_uses (o : Operand.t) =
  match o with
  | Operand.Reg r -> (reg_bit r, 0)
  | Operand.Freg f -> (0, freg_bit f)
  | Operand.Mem m ->
      (List.fold_left (fun acc r -> acc lor reg_bit r) 0 (Operand.mem_regs m), 0)
  | Operand.Imm _ | Operand.Target _ -> (0, 0)

(* Instructions whose effects the transfer function cannot summarise
   precisely: treat as "everything live" barriers.  CTIs leave the
   fragment; clean calls run arbitrary host code; in/out touch the
   machine's ports; hlt ends the program (conservatively live, matching
   {!dead_after}'s end-of-list rule). *)
let is_barrier (i : Instr.t) =
  Instr.is_cti i
  ||
  match Instr.get_opcode i with
  | Opcode.Ccall | Opcode.In | Opcode.Out | Opcode.Hlt -> true
  | _ -> false

(* live-before from live-after for one instruction *)
let transfer (i : Instr.t) (after : live) : live =
  if Instr.is_bundle i || is_barrier i then all_live
  else
    let insn = Instr.get_insn i in
    let defs_r, defs_f =
      Array.fold_left
        (fun (dr, df) (d : Operand.t) ->
          match d with
          | Operand.Reg r -> (dr lor reg_bit r, df)
          | Operand.Freg f -> (dr, df lor freg_bit f)
          | _ -> (dr, df))
        (0, 0) insn.Isa.Insn.dsts
    in
    let uses_r, uses_f =
      let add (ur, uf) o =
        let r, f = operand_uses o in
        (ur lor r, uf lor f)
      in
      let u = Array.fold_left add (0, 0) insn.Isa.Insn.srcs in
      (* address registers of memory *destinations* are reads too *)
      Array.fold_left
        (fun acc (d : Operand.t) ->
          match d with Operand.Mem _ -> add acc d | _ -> acc)
        u insn.Isa.Insn.dsts
    in
    let m = Instr.get_eflags i in
    {
      live_regs = (after.live_regs land lnot defs_r) lor uses_r;
      live_fregs = (after.live_fregs land lnot defs_f) lor uses_f;
      live_flags =
        (after.live_flags land lnot (certain_write_mask i))
        lor Eflags.read_mask m;
    }

(** [backward_liveness il] — one backward walk over the list, pairing
    every instruction with the registers, FP registers and flags live
    {e after} it (in program order).  Exit CTIs and the list end are
    all-live boundaries, mirroring {!dead_after}'s conservatism. *)
let backward_liveness (il : Instrlist.t) : (Instr.t * live) list =
  let acc = ref [] in
  let live = ref all_live in
  Instrlist.iter_rev il (fun i ->
      acc := (i, !live) :: !acc;
      live := transfer i !live);
  !acc

(* ------------------------------------------------------------------ *)
(* Memory deadness (forward, per-store)                               *)
(* ------------------------------------------------------------------ *)

(** Conservative alias test between memory operands [a] (width [wa])
    and [b] (width [wb]): identical address expressions are disjoint
    exactly when their displacement ranges cannot overlap; different
    bases may point anywhere. *)
let may_alias (a : Operand.mem) wa (b : Operand.mem) wb =
  let same_index =
    Option.equal
      (fun (r1, s1) (r2, s2) -> Reg.equal r1 r2 && s1 = s2)
      a.Operand.index b.Operand.index
  in
  let same_base = Option.equal Reg.equal a.Operand.base b.Operand.base in
  if same_base && same_index then
    not (a.Operand.disp + wa <= b.Operand.disp || b.Operand.disp + wb <= a.Operand.disp)
  else true

(* does executing [i] change any register an address expression uses? *)
let writes_addr_reg (insn : Isa.Insn.t) (m : Operand.mem) =
  let addr_regs = Operand.mem_regs m in
  Array.exists
    (fun (d : Operand.t) ->
      match d with
      | Operand.Reg r -> List.exists (Reg.equal r) addr_regs
      | _ -> false)
    insn.Isa.Insn.dsts
  || (Opcode.implicit_stack_read insn.Isa.Insn.opcode
      || Opcode.implicit_stack_write insn.Isa.Insn.opcode)
     && List.exists (Reg.equal Reg.Esp) addr_regs

(** [store_dead_after ~mem ~width start] — true when the [width]-byte
    store to [mem] is provably dead at the program point before
    [start]: walking forward, an equal-address store of at least the
    same width overwrites it before any instruction that could observe
    it (an aliasing read, a CTI or other barrier leaving the fragment,
    an implicit stack access, or a write to one of its address
    registers). *)
let store_dead_after ~(mem : Operand.mem) ~(width : int) (start : Instr.t option) :
    bool =
  let rec go (cur : Instr.t option) =
    match cur with
    | None -> false (* fell off the fragment: assume observed *)
    | Some i ->
        if Instr.is_bundle i || is_barrier i then false
        else
          let insn = Instr.get_insn i in
          let op = insn.Isa.Insn.opcode in
          if Opcode.implicit_stack_read op || Opcode.implicit_stack_write op
          then false (* esp-relative access may alias anything esp-based *)
          else if
            (* any aliasing memory read observes the store *)
            Array.exists
              (fun (s : Operand.t) ->
                match s with
                | Operand.Mem m ->
                    let w = if Opcode.is_fp op then 8 else 4 in
                    may_alias m w mem width
                | _ -> false)
              insn.Isa.Insn.srcs
          then false
          else
            (* an exactly-covering store kills it; a partial aliasing
               write is conservatively an observation *)
            let verdict =
              Array.fold_left
                (fun acc (d : Operand.t) ->
                  match (acc, d) with
                  | (Some _ as v), _ -> v
                  | None, Operand.Mem m ->
                      let w = if Opcode.is_fp op then 8 else 4 in
                      if
                        Operand.equal_mem m mem && w >= width
                        && not (writes_addr_reg insn mem)
                      then Some true
                      else if may_alias m w mem width then Some false
                      else None
                  | None, _ -> None)
                None insn.Isa.Insn.dsts
            in
            match verdict with
            | Some dead -> dead
            | None ->
                (* writing an address register changes what [mem] means
                   downstream: stop, conservatively observed *)
                if writes_addr_reg insn mem then false else go i.Instr.next
  in
  go start
