(** Runtime statistics, kept per {!Rio} instance. *)

(* ------------------------------------------------------------------ *)
(* Latency histograms (serving layer, DESIGN.md §6.10)                *)
(* ------------------------------------------------------------------ *)

(** Power-of-two bucketed histogram for latency-style samples: bucket
    [i] counts samples whose value's bit width is [i] (bucket 0 holds
    samples <= 0, bucket 1 holds 1, bucket 2 holds 2..3, and so on).
    Merging is elementwise addition, so pool workers can keep private
    histograms and the aggregate is exact; percentile extraction
    returns the selected bucket's inclusive upper bound, so quantiles
    are conservative (never under-report) and deterministic. *)

let hist_buckets = 63

type hist = { counts : int array }

let hist_create () = { counts = Array.make hist_buckets 0 }

(** Bucket index of a sample: 0 for non-positive values, otherwise the
    position of the highest set bit plus one. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    !b
  end

(** Inclusive upper bound of a bucket: the largest sample it can hold. *)
let bucket_upper i = if i = 0 then 0 else (1 lsl i) - 1

let hist_add h v =
  let i = bucket_of v in
  h.counts.(i) <- h.counts.(i) + 1

let hist_count h = Array.fold_left ( + ) 0 h.counts

(** Fresh histogram holding both argument's samples. *)
let hist_merge a b =
  { counts = Array.init hist_buckets (fun i -> a.counts.(i) + b.counts.(i)) }

(** The [q]-th percentile (0..100) as a bucket upper bound: the value
    [v] such that at least [ceil (q/100 * n)] samples are <= [v].
    Returns 0 on an empty histogram. *)
let hist_percentile h q =
  let n = hist_count h in
  if n = 0 then 0
  else begin
    let rank = max 1 ((n * q + 99) / 100) in
    let rank = min rank n in
    let acc = ref 0 and i = ref 0 in
    while !acc < rank do
      acc := !acc + h.counts.(!i);
      incr i
    done;
    bucket_upper (!i - 1)
  end

type t = {
  mutable blocks_built : int;
  mutable traces_built : int;
  mutable fragments_deleted : int;
  mutable fragments_replaced : int;
  mutable context_switches : int;
  mutable ibl_lookups : int;
  mutable ibl_misses : int;          (** lookup failed; back to dispatcher *)
  mutable direct_links : int;
  mutable unlinks : int;
  mutable clean_calls : int;
  mutable cache_bytes_bb : int;
  mutable cache_bytes_trace : int;
  mutable trace_head_promotions : int;
  mutable signals_delivered : int;
  mutable runtime_cycles : int;      (** modelled cycles spent in the runtime *)
  mutable sideline_cycles : int;     (** optimization cycles offloaded to a spare processor *)
  mutable cache_flushes : int;       (** capacity-driven flush-the-world events *)
  (* --- incremental (FIFO) cache management --- *)
  mutable evictions : int;           (** live fragments deleted to make room *)
  mutable evicted_bytes : int;       (** cache bytes reclaimed by eviction *)
  mutable traces_dropped : int;      (** traces abandoned because no room could be made *)
  mutable full_flush_fallbacks : int;
      (** FIFO eviction defeated (everything left was pinned): a full
          flush was requested instead *)
  mutable freelist_holes : int;      (** gauge: maximal free runs across both regions *)
  mutable freelist_free_bytes : int; (** gauge: total free bytes across both regions *)
  mutable freelist_largest_hole : int;
      (** gauge: largest single free run (biggest emittable fragment) *)
  mutable enters_bb : int;           (** fragment entries landing on basic blocks *)
  mutable enters_trace : int;        (** fragment entries landing on traces *)
  (* --- trace optimization (DESIGN.md §6.4) --- *)
  mutable opt_traces : int;          (** traces run through the optimizer *)
  mutable opt_insns_removed : int;   (** total instructions deleted, all passes *)
  mutable opt_copies_propagated : int;
  mutable opt_consts_propagated : int;
  mutable opt_strength_reduced : int;   (** inc→add / dec→sub conversions *)
  mutable opt_loads_removed : int;      (** redundant loads deleted *)
  mutable opt_loads_rewritten : int;    (** loads turned into register moves *)
  mutable opt_stores_removed : int;     (** dead stores deleted *)
  mutable opt_dead_removed : int;       (** dead register/flag writes deleted *)
  mutable opt_checks_simplified : int;  (** exit-check peepholes applied *)
  mutable opt_flag_saves_elided : int;  (** save/restore brackets removed *)
  mutable traces_reoptimized : int;
      (** hot traces re-optimized in place via decode/replace *)
  mutable opt_replaces_skipped : int;
      (** re-optimizations abandoned by the cost gate: the optimized
          body estimated no cheaper, so the original was kept *)
  (* --- speculation (-O3, DESIGN.md §6.7) --- *)
  mutable spec_traces : int;         (** traces emitted with at least one guard *)
  mutable spec_guards_ind : int;     (** indirect-target guards compiled *)
  mutable spec_guards_const : int;   (** constant-load guards compiled *)
  mutable spec_exit_biases : int;
      (** final conditional trace exits whose polarity was inverted so
          the profile-dominant successor leaves through the single jcc
          instead of the jcc-then-jmp fall-through path *)
  mutable spec_violations : int;     (** guard side exits taken *)
  mutable spec_despecs : int;
      (** traces re-optimized without an assumption after its guard
          exceeded the violation budget *)
  (* --- fault injection (S34) --- *)
  mutable faults_injected : int;     (** total faults the injector introduced *)
  mutable faults_corrupt : int;      (** cache-byte corruptions injected *)
  mutable faults_link : int;         (** link-target flips injected *)
  mutable faults_hook : int;         (** client-hook raises injected *)
  mutable faults_signal : int;       (** spurious signals injected *)
  (* --- detection and recovery (S34) --- *)
  mutable faults_detected : int;     (** audit/ladder activations *)
  mutable recover_reemit : int;      (** ladder rung 1: fragment deleted and rebuilt *)
  mutable recover_flush_frag : int;  (** rung 2: all fragments of the source range flushed *)
  mutable recover_flush_world : int; (** rung 3: flush-the-world requested *)
  mutable recover_emulate : int;     (** rung 4: tag demoted to pure emulation *)
  mutable blocks_emulated : int;     (** executions of emulate-only blocks *)
  mutable audits_run : int;          (** cache audits performed *)
  mutable audit_fragments : int;     (** fragments examined across all audits *)
  (* --- client-hook isolation (S34) --- *)
  mutable hook_failures : int;       (** client hooks that raised (or were made to) *)
  mutable clients_quarantined : int; (** 1 once the client is disabled for the run *)
  mutable spurious_signals_dropped : int;
      (** pending signals with handlers outside application space,
          discarded at the delivery safe point *)
  (* --- pool supervision (DESIGN.md §6.6) --- *)
  mutable deadline_preempts : int;
      (** runs preempted by the per-request watchdog
          ({!Engine.set_watchdog}) *)
  (* --- relocation + persistent cache (DESIGN.md §6.8) --- *)
  mutable compactions : int;         (** region-compaction passes run *)
  mutable fragments_moved : int;     (** live fragments slid by compaction *)
  mutable moved_bytes : int;         (** cache bytes copied by those moves *)
  mutable persist_saves : int;       (** cache images written *)
  mutable persist_loads : int;       (** cache images loaded *)
  mutable persist_load_failures : int;
      (** image loads refused (bad magic/version/checksum/digest) *)
  mutable fragments_persisted : int; (** fragments written across all saves *)
  mutable fragments_preloaded : int; (** fragments re-materialized from images *)
  (* --- serving front-end (DESIGN.md §6.10) --- *)
  serve_lat : hist;                  (** per-request service latency, sim cycles *)
  mutable requests_shed : int;       (** admissions rejected for overload *)
  mutable requests_batched : int;
      (** same-key requests coalesced onto the worker already holding
          the warm instance (dequeue-time batch picks) *)
  mutable scale_ups : int;           (** worker domains woken by the autoscaler *)
  mutable scale_downs : int;         (** worker domains parked by the autoscaler *)
  mutable prewarm_boots : int;       (** instances built eagerly at pool boot *)
}

let create () =
  {
    blocks_built = 0;
    traces_built = 0;
    fragments_deleted = 0;
    fragments_replaced = 0;
    context_switches = 0;
    ibl_lookups = 0;
    ibl_misses = 0;
    direct_links = 0;
    unlinks = 0;
    clean_calls = 0;
    cache_bytes_bb = 0;
    cache_bytes_trace = 0;
    trace_head_promotions = 0;
    signals_delivered = 0;
    runtime_cycles = 0;
    sideline_cycles = 0;
    cache_flushes = 0;
    evictions = 0;
    evicted_bytes = 0;
    traces_dropped = 0;
    full_flush_fallbacks = 0;
    freelist_holes = 0;
    freelist_free_bytes = 0;
    freelist_largest_hole = 0;
    enters_bb = 0;
    enters_trace = 0;
    opt_traces = 0;
    opt_insns_removed = 0;
    opt_copies_propagated = 0;
    opt_consts_propagated = 0;
    opt_strength_reduced = 0;
    opt_loads_removed = 0;
    opt_loads_rewritten = 0;
    opt_stores_removed = 0;
    opt_dead_removed = 0;
    opt_checks_simplified = 0;
    opt_flag_saves_elided = 0;
    traces_reoptimized = 0;
    opt_replaces_skipped = 0;
    spec_traces = 0;
    spec_guards_ind = 0;
    spec_guards_const = 0;
    spec_exit_biases = 0;
    spec_violations = 0;
    spec_despecs = 0;
    faults_injected = 0;
    faults_corrupt = 0;
    faults_link = 0;
    faults_hook = 0;
    faults_signal = 0;
    faults_detected = 0;
    recover_reemit = 0;
    recover_flush_frag = 0;
    recover_flush_world = 0;
    recover_emulate = 0;
    blocks_emulated = 0;
    audits_run = 0;
    audit_fragments = 0;
    hook_failures = 0;
    clients_quarantined = 0;
    spurious_signals_dropped = 0;
    deadline_preempts = 0;
    compactions = 0;
    fragments_moved = 0;
    moved_bytes = 0;
    persist_saves = 0;
    persist_loads = 0;
    persist_load_failures = 0;
    fragments_persisted = 0;
    fragments_preloaded = 0;
    serve_lat = hist_create ();
    requests_shed = 0;
    requests_batched = 0;
    scale_ups = 0;
    scale_downs = 0;
    prewarm_boots = 0;
  }

(** Combine the counters of two instances into a fresh record, for
    aggregate reporting across a pool of runtimes.  Monotonic counters
    add; the free-list gauges (point-in-time snapshots of one cache,
    meaningless summed) take the maximum; histograms combine
    bucket-wise. *)
let merge (a : t) (b : t) : t =
  {
    blocks_built = a.blocks_built + b.blocks_built;
    traces_built = a.traces_built + b.traces_built;
    fragments_deleted = a.fragments_deleted + b.fragments_deleted;
    fragments_replaced = a.fragments_replaced + b.fragments_replaced;
    context_switches = a.context_switches + b.context_switches;
    ibl_lookups = a.ibl_lookups + b.ibl_lookups;
    ibl_misses = a.ibl_misses + b.ibl_misses;
    direct_links = a.direct_links + b.direct_links;
    unlinks = a.unlinks + b.unlinks;
    clean_calls = a.clean_calls + b.clean_calls;
    cache_bytes_bb = a.cache_bytes_bb + b.cache_bytes_bb;
    cache_bytes_trace = a.cache_bytes_trace + b.cache_bytes_trace;
    trace_head_promotions = a.trace_head_promotions + b.trace_head_promotions;
    signals_delivered = a.signals_delivered + b.signals_delivered;
    runtime_cycles = a.runtime_cycles + b.runtime_cycles;
    sideline_cycles = a.sideline_cycles + b.sideline_cycles;
    cache_flushes = a.cache_flushes + b.cache_flushes;
    evictions = a.evictions + b.evictions;
    evicted_bytes = a.evicted_bytes + b.evicted_bytes;
    traces_dropped = a.traces_dropped + b.traces_dropped;
    full_flush_fallbacks = a.full_flush_fallbacks + b.full_flush_fallbacks;
    freelist_holes = max a.freelist_holes b.freelist_holes;
    freelist_free_bytes = max a.freelist_free_bytes b.freelist_free_bytes;
    freelist_largest_hole = max a.freelist_largest_hole b.freelist_largest_hole;
    enters_bb = a.enters_bb + b.enters_bb;
    enters_trace = a.enters_trace + b.enters_trace;
    opt_traces = a.opt_traces + b.opt_traces;
    opt_insns_removed = a.opt_insns_removed + b.opt_insns_removed;
    opt_copies_propagated = a.opt_copies_propagated + b.opt_copies_propagated;
    opt_consts_propagated = a.opt_consts_propagated + b.opt_consts_propagated;
    opt_strength_reduced = a.opt_strength_reduced + b.opt_strength_reduced;
    opt_loads_removed = a.opt_loads_removed + b.opt_loads_removed;
    opt_loads_rewritten = a.opt_loads_rewritten + b.opt_loads_rewritten;
    opt_stores_removed = a.opt_stores_removed + b.opt_stores_removed;
    opt_dead_removed = a.opt_dead_removed + b.opt_dead_removed;
    opt_checks_simplified = a.opt_checks_simplified + b.opt_checks_simplified;
    opt_flag_saves_elided = a.opt_flag_saves_elided + b.opt_flag_saves_elided;
    traces_reoptimized = a.traces_reoptimized + b.traces_reoptimized;
    opt_replaces_skipped = a.opt_replaces_skipped + b.opt_replaces_skipped;
    spec_traces = a.spec_traces + b.spec_traces;
    spec_guards_ind = a.spec_guards_ind + b.spec_guards_ind;
    spec_guards_const = a.spec_guards_const + b.spec_guards_const;
    spec_exit_biases = a.spec_exit_biases + b.spec_exit_biases;
    spec_violations = a.spec_violations + b.spec_violations;
    spec_despecs = a.spec_despecs + b.spec_despecs;
    faults_injected = a.faults_injected + b.faults_injected;
    faults_corrupt = a.faults_corrupt + b.faults_corrupt;
    faults_link = a.faults_link + b.faults_link;
    faults_hook = a.faults_hook + b.faults_hook;
    faults_signal = a.faults_signal + b.faults_signal;
    faults_detected = a.faults_detected + b.faults_detected;
    recover_reemit = a.recover_reemit + b.recover_reemit;
    recover_flush_frag = a.recover_flush_frag + b.recover_flush_frag;
    recover_flush_world = a.recover_flush_world + b.recover_flush_world;
    recover_emulate = a.recover_emulate + b.recover_emulate;
    blocks_emulated = a.blocks_emulated + b.blocks_emulated;
    audits_run = a.audits_run + b.audits_run;
    audit_fragments = a.audit_fragments + b.audit_fragments;
    hook_failures = a.hook_failures + b.hook_failures;
    clients_quarantined = a.clients_quarantined + b.clients_quarantined;
    spurious_signals_dropped =
      a.spurious_signals_dropped + b.spurious_signals_dropped;
    deadline_preempts = a.deadline_preempts + b.deadline_preempts;
    compactions = a.compactions + b.compactions;
    fragments_moved = a.fragments_moved + b.fragments_moved;
    moved_bytes = a.moved_bytes + b.moved_bytes;
    persist_saves = a.persist_saves + b.persist_saves;
    persist_loads = a.persist_loads + b.persist_loads;
    persist_load_failures = a.persist_load_failures + b.persist_load_failures;
    fragments_persisted = a.fragments_persisted + b.fragments_persisted;
    fragments_preloaded = a.fragments_preloaded + b.fragments_preloaded;
    serve_lat = hist_merge a.serve_lat b.serve_lat;
    requests_shed = a.requests_shed + b.requests_shed;
    requests_batched = a.requests_batched + b.requests_batched;
    scale_ups = a.scale_ups + b.scale_ups;
    scale_downs = a.scale_downs + b.scale_downs;
    prewarm_boots = a.prewarm_boots + b.prewarm_boots;
  }

(** Total recovery-ladder activations, all rungs. *)
let recoveries (s : t) =
  s.recover_reemit + s.recover_flush_frag + s.recover_flush_world
  + s.recover_emulate

let pp ppf (s : t) =
  Fmt.pf ppf
    "@[<v>blocks built:        %d@,traces built:        %d@,\
     fragments deleted:   %d@,fragments replaced:  %d@,\
     context switches:    %d@,ibl lookups:         %d@,\
     ibl misses:          %d@,direct links:        %d@,\
     unlinks:             %d@,clean calls:         %d@,\
     bb cache bytes:      %d@,trace cache bytes:   %d@,\
     head promotions:     %d@,signals delivered:   %d@,\
     runtime cycles:      %d@,sideline cycles:     %d@,\
     cache flushes:       %d@,bb entries:          %d@,\
     trace entries:       %d@]"
    s.blocks_built s.traces_built s.fragments_deleted s.fragments_replaced
    s.context_switches s.ibl_lookups s.ibl_misses s.direct_links s.unlinks
    s.clean_calls s.cache_bytes_bb s.cache_bytes_trace s.trace_head_promotions
    s.signals_delivered s.runtime_cycles s.sideline_cycles s.cache_flushes
    s.enters_bb s.enters_trace

(** Cache-management counters (DESIGN.md §6.3); printed separately so
    existing stats output stays stable.  The free-list gauges are
    refreshed by {!Emit.refresh_cache_gauges} and stay zero under the
    unbounded bump allocator. *)
let pp_cache ppf (s : t) =
  Fmt.pf ppf
    "@[<v>evictions:           %d@,evicted bytes:       %d@,\
     traces dropped:      %d@,full-flush fallbacks: %d@,\
     free-list holes:     %d@,free-list free bytes: %d@,\
     largest free hole:   %d@]"
    s.evictions s.evicted_bytes s.traces_dropped s.full_flush_fallbacks
    s.freelist_holes s.freelist_free_bytes s.freelist_largest_hole

(** Trace-optimizer counters (DESIGN.md §6.4); printed separately so
    existing stats output stays stable. *)
let pp_opt ppf (s : t) =
  Fmt.pf ppf
    "@[<v>traces optimized:    %d@,insns removed:       %d@,\
     copies propagated:   %d@,consts propagated:   %d@,\
     strength reduced:    %d@,loads removed:       %d@,\
     loads rewritten:     %d@,stores removed:      %d@,\
     dead writes removed: %d@,checks simplified:   %d@,\
     flag saves elided:   %d@,traces reoptimized:  %d@]"
    s.opt_traces s.opt_insns_removed s.opt_copies_propagated
    s.opt_consts_propagated s.opt_strength_reduced s.opt_loads_removed
    s.opt_loads_rewritten s.opt_stores_removed s.opt_dead_removed
    s.opt_checks_simplified s.opt_flag_saves_elided s.traces_reoptimized

(** Speculation counters (-O3, DESIGN.md §6.7); printed separately so
    existing stats output stays stable. *)
let pp_spec ppf (s : t) =
  Fmt.pf ppf
    "@[<v>speculative traces:  %d@,indirect guards:     %d@,\
     const-load guards:   %d@,exit biases:         %d@,\
     guard violations:    %d@,despeculations:      %d@,\
     replaces skipped:    %d@]"
    s.spec_traces s.spec_guards_ind s.spec_guards_const s.spec_exit_biases
    s.spec_violations s.spec_despecs s.opt_replaces_skipped

(** Fault-tolerance counters; printed separately so existing stats
    output stays stable. *)
let pp_faults ppf (s : t) =
  Fmt.pf ppf
    "@[<v>faults injected:     %d (corrupt %d, link %d, hook %d, signal %d)@,\
     faults detected:     %d@,\
     recoveries:          %d (re-emit %d, flush-frag %d, flush-world %d, emulate %d)@,\
     blocks emulated:     %d@,audits run:          %d@,\
     audit fragments:     %d@,hook failures:       %d@,\
     clients quarantined: %d@,spurious sigs dropped: %d@,\
     deadline preempts:   %d@]"
    s.faults_injected s.faults_corrupt s.faults_link s.faults_hook
    s.faults_signal s.faults_detected (recoveries s) s.recover_reemit
    s.recover_flush_frag s.recover_flush_world s.recover_emulate
    s.blocks_emulated s.audits_run s.audit_fragments s.hook_failures
    s.clients_quarantined s.spurious_signals_dropped s.deadline_preempts

(** Relocation and persistent-cache counters (DESIGN.md §6.8); printed
    separately so existing stats output stays stable. *)
let pp_persist ppf (s : t) =
  Fmt.pf ppf
    "@[<v>compactions:         %d@,fragments moved:     %d@,\
     moved bytes:         %d@,images saved:        %d@,\
     images loaded:       %d@,loads refused:       %d@,\
     fragments persisted: %d@,fragments preloaded: %d@]"
    s.compactions s.fragments_moved s.moved_bytes s.persist_saves
    s.persist_loads s.persist_load_failures s.fragments_persisted
    s.fragments_preloaded

(** Serving front-end counters (DESIGN.md §6.10); printed separately so
    existing stats output stays stable. *)
let pp_serve ppf (s : t) =
  Fmt.pf ppf
    "@[<v>requests served:     %d@,requests shed:       %d@,\
     requests batched:    %d@,scale-ups:           %d@,\
     scale-downs:         %d@,prewarm boots:       %d@,\
     latency p50 cycles:  %d@,latency p99 cycles:  %d@]"
    (hist_count s.serve_lat) s.requests_shed s.requests_batched s.scale_ups
    s.scale_downs s.prewarm_boots
    (hist_percentile s.serve_lat 50)
    (hist_percentile s.serve_lat 99)
