examples/custom_traces.ml: Clients Option Printf Rio Workloads
