(** Eflags liveness over linear code — the analysis Level 2 exists to
    make cheap (paper §3.1).

    Used by the trace builder to decide whether an inserted comparison
    must save and restore the application's flags, and by clients (the
    strength-reduction example) to decide whether a transformation's
    flag differences are observable. *)

open Isa

(** [dead_after i] — true when the application flags are provably dead
    at the program point {e before} instruction [i] (walking forward
    from [i], every flag is written before it is read, without leaving
    the fragment).  [None] (end of list) and exit CTIs are conservative
    [live] boundaries: code outside the fragment may read anything.

    Only Level-2 information (opcode → eflags mask) is consulted. *)
let dead_after (start : Instr.t option) : bool =
  let rec go (cur : Instr.t option) (still_live : int) =
    if still_live = 0 then true
    else
      match cur with
      | None -> false (* fell off the fragment: assume live *)
      | Some i ->
          if Instr.is_bundle i then
            (* a bundle's members may read flags; be conservative:
               splitting is the caller's job if precision matters *)
            false
          else
            let m = Instr.get_eflags i in
            let reads = Eflags.read_mask m land still_live in
            if reads <> 0 then false
            else
              let still_live = still_live land lnot (Eflags.write_mask m) in
              if Instr.is_cti i then
                (* leaving (or possibly leaving) the fragment *)
                still_live = 0
              else go i.Instr.next still_live
  in
  go start Eflags.all_mask

(** [flags_written_set il_from] — the set of flags certainly written
    before any read, as a bit mask (used by tests). *)
let written_before_read (start : Instr.t option) : int =
  let rec go cur ~unread ~written =
    match cur with
    | None -> written
    | Some (i : Instr.t) ->
        if Instr.is_bundle i then written
        else
          let m = Instr.get_eflags i in
          (* within one instruction, reads happen before writes *)
          let unread = unread land lnot (Eflags.read_mask m) in
          let written = written lor (Eflags.write_mask m land unread) in
          if Instr.is_cti i then written
          else go i.Instr.next ~unread ~written
  in
  go start ~unread:Eflags.all_mask ~written:0
