lib/rio/instr.ml: Array Bytes Char Decode Disasm Eflags Encode Fmt Insn Isa Level Opcode Operand
