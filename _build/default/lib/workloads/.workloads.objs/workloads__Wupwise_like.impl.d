lib/workloads/wupwise_like.ml: Asm Isa Workload
