(** General-purpose registers of SynISA.

    Eight 32-bit registers in the IA-32 mould; numbers match their
    3-bit ModRM/SIB encoding.  [Esp] is the stack pointer by
    convention. *)

type t =
  | Eax
  | Ecx
  | Edx
  | Ebx
  | Esp
  | Ebp
  | Esi
  | Edi

val all : t list

val number : t -> int
(** 3-bit encoding, 0–7. *)

val of_number : int -> t
(** Inverse of {!number}.  @raise Invalid_argument outside 0–7. *)

val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Floating-point registers: a flat bank of eight 64-bit registers
    ([f0]–[f7]; SSE2-flavoured, not an x87 stack). *)
module F : sig
  type t

  val make : int -> t
  (** @raise Invalid_argument outside 0–7. *)

  val number : t -> int
  val all : t list
  val name : t -> string
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
