lib/isa/eflags.ml: Fmt List String
