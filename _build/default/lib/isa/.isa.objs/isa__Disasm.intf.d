lib/isa/disasm.mli: Bytes Decode Format Insn
