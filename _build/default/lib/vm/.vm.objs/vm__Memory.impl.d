lib/vm/memory.ml: Bytes Char Int64 Isa String
