(** SynISA disassembler: AT&T-flavoured text for decoded instructions
    and raw byte ranges.  Used by examples, debugging output, and the
    Figure-2 reproduction. *)

(** Render one instruction.  Implicit operands are suppressed, direct
    targets are printed as absolute hex addresses (matching how they
    are stored in the operand). *)
let insn_to_string (i : Insn.t) : string =
  let b = Buffer.create 32 in
  if i.prefixes land Insn.prefix_lock <> 0 then Buffer.add_string b "lock ";
  Buffer.add_string b (Opcode.name i.opcode);
  let operand o = Fmt.str "%a" Operand.pp o in
  let explicit =
    (* reconstruct the explicit operand list, dst first (AT&T would be
       src first, but dst-first reads better alongside the paper's
       figures, which also print "operands -> destination") *)
    match i.opcode with
    | Mov | Movzx8 | Movzx16 | Lea | Cvtsi | Cvtfi | Fld ->
        [ operand i.dsts.(0); operand i.srcs.(0) ]
    | Fst -> [ operand i.dsts.(0); operand i.srcs.(0) ]
    | Fmov -> [ operand i.dsts.(0); operand i.srcs.(0) ]
    | Add | Adc | Sub | Sbb | And | Or | Xor | Imul
    | Fadd | Fsub | Fmul | Fdiv ->
        [ operand i.dsts.(0); operand i.srcs.(0) ]
    | Shl | Shr | Sar -> [ operand i.dsts.(0); operand i.srcs.(0) ]
    | Cmp | Test | Fcmp -> [ operand i.srcs.(0); operand i.srcs.(1) ]
    | Inc | Dec | Neg | Not | Fabs | Fneg | Fsqrt -> [ operand i.dsts.(0) ]
    | Idiv -> [ operand i.srcs.(0) ]
    | Push -> [ operand i.srcs.(0) ]
    | Pop | In -> [ operand i.dsts.(0) ]
    | Out -> [ operand i.srcs.(0) ]
    | Xchg -> [ operand i.dsts.(0); operand i.dsts.(1) ]
    | Jmp | Jcc _ | Call -> [ operand i.srcs.(0) ]
    | JmpInd | CallInd -> [ operand i.srcs.(0) ]
    | Ccall -> [ operand i.srcs.(0) ]
    | Ret | Nop | Hlt | Pushf | Popf -> []
  in
  (match explicit with
   | [] -> ()
   | ops ->
       Buffer.add_char b ' ';
       Buffer.add_string b (String.concat ", " ops));
  Buffer.contents b

let pp_insn ppf i = Fmt.string ppf (insn_to_string i)

let hex_bytes (bytes : Bytes.t) : string =
  String.concat " "
    (List.init (Bytes.length bytes) (fun i ->
         Printf.sprintf "%02x" (Char.code (Bytes.get bytes i))))

(** Disassemble [len] bytes starting at [pc], one line per instruction:
    address, raw bytes, mnemonic.  Stops early on a decode error,
    appending an error line. *)
let region (f : Decode.fetch) ~pc ~len : string list =
  let stop = pc + len in
  let rec go pc acc =
    if pc >= stop then List.rev acc
    else
      match Decode.full f pc with
      | Error e ->
          List.rev (Printf.sprintf "%08x: <%s>" pc (Decode.error_to_string e) :: acc)
      | Ok (insn, n) ->
          let raw = Bytes.init n (fun i -> Char.chr (f (pc + i))) in
          let line =
            Printf.sprintf "%08x: %-24s %s" pc (hex_bytes raw) (insn_to_string insn)
          in
          go (pc + n) (line :: acc)
  in
  go pc []
