(** QCheck generators for SynISA instructions and programs, shared by
    the property-test suites. *)

open Isa

let reg : Reg.t QCheck2.Gen.t = QCheck2.Gen.oneofl Reg.all
let reg_no_esp : Reg.t QCheck2.Gen.t =
  QCheck2.Gen.oneofl (List.filter (fun r -> not (Reg.equal r Reg.Esp)) Reg.all)

let freg : Reg.F.t QCheck2.Gen.t = QCheck2.Gen.oneofl Reg.F.all

let disp : int QCheck2.Gen.t =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.return 0;
      QCheck2.Gen.int_range (-128) 127;
      QCheck2.Gen.int_range (-100000) 100000;
    ]

let mem : Operand.mem QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* base = option reg in
  let* index =
    option
      (let* r = reg_no_esp in
       let* s = oneofl [ 1; 2; 4; 8 ] in
       return (r, s))
  in
  let* d = disp in
  return { Operand.base; index; disp = d }

let mem_op = QCheck2.Gen.map (fun m -> Operand.Mem m) mem
let reg_op = QCheck2.Gen.map (fun r -> Operand.Reg r) reg

let rm : Operand.t QCheck2.Gen.t = QCheck2.Gen.oneof [ reg_op; mem_op ]

let imm_signed : int QCheck2.Gen.t =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.int_range (-128) 127;
      QCheck2.Gen.int_range (-0x8000_0000) 0x7FFF_FFFF;
    ]

let imm_op = QCheck2.Gen.map (fun i -> Operand.Imm i) imm_signed
let rmi : Operand.t QCheck2.Gen.t = QCheck2.Gen.oneof [ reg_op; mem_op; imm_op ]

(* binary ALU: avoid mem,mem *)
let alu_pair : (Operand.t * Operand.t) QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [
      (let* d = reg_op and* s = rmi in
       return (d, s));
      (let* d = mem_op and* s = oneof [ reg_op; imm_op ] in
       return (d, s));
    ]

let cond : Cond.t QCheck2.Gen.t = QCheck2.Gen.oneofl Cond.all

(* Code addresses: positive, below 16MB, roomy enough for rel8/rel32. *)
let code_addr : int QCheck2.Gen.t = QCheck2.Gen.int_range 0x1000 0xFF_FFFF

(** A generator of arbitrary well-formed (validating) instructions. *)
let insn : Insn.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let alu mk =
    let* d, s = alu_pair in
    return (mk d s)
  in
  let unary mk =
    let* x = rm in
    return (mk x)
  in
  oneof
    [
      alu Insn.mk_add; alu Insn.mk_adc; alu Insn.mk_sub; alu Insn.mk_sbb;
      alu Insn.mk_and; alu Insn.mk_or; alu Insn.mk_xor;
      (let* a, b = alu_pair in return (Insn.mk_cmp a b));
      (let* d = reg_op and* s = rm in return (Insn.mk_imul d s));
      unary Insn.mk_inc; unary Insn.mk_dec; unary Insn.mk_neg; unary Insn.mk_not;
      (let* a = rm and* b = oneof [ reg_op; imm_op ] in return (Insn.mk_test a b));
      (let* d, s = alu_pair in return (Insn.mk_mov d s));
      (let* d = reg_op and* s = rm in return (Insn.mk_movzx8 d s));
      (let* d = reg_op and* s = rm in return (Insn.mk_movzx16 d s));
      (let* d = reg_op and* m = mem_op in return (Insn.mk_lea d m));
      (let* s = rmi in return (Insn.mk_push s));
      unary Insn.mk_pop;
      (let* a = reg_op and* b = rm in return (Insn.mk_xchg a b));
      return (Insn.mk_pushf ());
      return (Insn.mk_popf ());
      (let* s = rm in return (Insn.mk_idiv s));
      (let* d = rm and* n = int_range 0 31 in return (Insn.mk_shl d (Operand.Imm n)));
      (let* d = rm and* n = int_range 0 31 in return (Insn.mk_shr d (Operand.Imm n)));
      (let* d = rm and* n = int_range 0 31 in return (Insn.mk_sar d (Operand.Imm n)));
      (let* d = rm in return (Insn.mk_shl d (Operand.Reg Reg.Ecx)));
      (let* t = code_addr in return (Insn.mk_jmp t));
      (let* s = rm in return (Insn.mk_jmp_ind s));
      (let* c = cond and* t = code_addr in return (Insn.mk_jcc c t));
      (let* t = code_addr in return (Insn.mk_call t));
      (let* s = rm in return (Insn.mk_call_ind s));
      return (Insn.mk_ret ());
      (let* f = freg and* m = mem_op in return (Insn.mk_fld f m));
      (let* f = freg and* m = mem_op in return (Insn.mk_fst m f));
      (let* d = freg and* s = freg in return (Insn.mk_fmov d s));
      (let* d = freg and* s = oneof [ map (fun f -> Operand.Freg f) freg; mem_op ] in
       return (Insn.mk_fadd d s));
      (let* d = freg and* s = oneof [ map (fun f -> Operand.Freg f) freg; mem_op ] in
       return (Insn.mk_fsub d s));
      (let* d = freg and* s = oneof [ map (fun f -> Operand.Freg f) freg; mem_op ] in
       return (Insn.mk_fmul d s));
      (let* d = freg and* s = oneof [ map (fun f -> Operand.Freg f) freg; mem_op ] in
       return (Insn.mk_fdiv d s));
      (let* f = freg in return (Insn.mk_fabs f));
      (let* f = freg in return (Insn.mk_fneg f));
      (let* f = freg in return (Insn.mk_fsqrt f));
      (let* a = freg and* b = oneof [ map (fun f -> Operand.Freg f) freg; mem_op ] in
       return (Insn.mk_fcmp a b));
      (let* f = freg and* s = rm in return (Insn.mk_cvtsi f s));
      (let* d = reg_op and* f = freg in return (Insn.mk_cvtfi d f));
      return (Insn.mk_nop ());
      return (Insn.mk_hlt ());
      (let* r = reg_op in return (Insn.mk_out r));
      (let* r = reg_op in return (Insn.mk_in r));
      (let* id = int_range 0 1000 in return (Insn.mk_ccall id));
    ]

(** Instructions together with an encoding address. *)
let insn_at : (Insn.t * int) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* i = insn and* pc = code_addr in
  return (i, pc)

let print_insn i = Disasm.insn_to_string i
let print_insn_at (i, pc) = Printf.sprintf "%s @ 0x%x" (Disasm.insn_to_string i) pc
