lib/rio/types.ml: Buffer Hashtbl Instrlist Options Printf Stats Vm
