examples/instruction_levels.mli:
