lib/rio/api.mli: Instr Instrlist Isa Operand Reg Types Vm
