examples/instruction_levels.ml: Buffer Bytes Cond Disasm Eflags Encode Fmt Insn Isa List Opcode Operand Printf Reg Rio
