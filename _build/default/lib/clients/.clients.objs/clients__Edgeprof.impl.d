lib/clients/edgeprof.ml: Hashtbl List Option Rio Stdlib
