(** The paper's Figure 3 client — inc→add / dec→sub strength
    reduction, enabled only when the processor is a Pentium 4 — now
    calling the {e in-core} optimizer pass through the public API
    instead of reimplementing the walk by hand
    ({!Rio.Api.opt_strength_reduce}; the same code the [-O1] pipeline
    runs on every trace).

    {v dune exec examples/strength_reduction.exe v}

    Runs the bzip2-like workload (inc/dec-dense) on both simulated
    processor families and prints the speedup three ways: base RIO, the
    client calling the core pass from its trace hook, and the built-in
    [-O1] pipeline with every other pass disabled.  The transformation
    helps on the P4 and stays disabled on the P3. *)

open Rio.Types

(* --- the client: Figure 3 reduced to one API call --- *)

let num_converted = ref 0

(* EXPORT void dynamorio_trace(...) — the CF-liveness walk, operand
   rewrite and prefix preservation all live in the core pass; the
   client only decides where to apply it. *)
let dynamorio_trace (ctx : context) ~tag:_ (trace : Rio.Instrlist.t) =
  Rio.Instrlist.split_bundles trace;
  num_converted := !num_converted + Rio.Api.opt_strength_reduce ctx.rt trace

let client =
  {
    null_client with
    name = "inc2add";
    (* EXPORT void dynamorio_init() *)
    init = (fun _rt -> num_converted := 0);
    (* EXPORT void dynamorio_exit() *)
    exit_hook =
      (fun rt ->
        if Rio.Api.proc_get_family rt = Vm.Cost.Pentium4 then
          Rio.Api.printf rt "converted %d inc/dec\n" !num_converted
        else Rio.Api.printf rt "kept original inc/dec\n");
    trace_hook = Some dynamorio_trace;
  }

(* --- drive it on both processor families --- *)

let () =
  let w = Option.get (Workloads.Suite.by_name "bzip2") in
  (* the same pass via the -O pipeline, everything else switched off *)
  let o1_strength_only =
    {
      Rio.Options.default with
      opt_level = 1;
      opt_disable = [ Rio.Options.Copy_prop; Rio.Options.Flag_elide ];
    }
  in
  List.iter
    (fun family ->
      Printf.printf "--- %s ---\n" (Vm.Cost.family_name family);
      let native = Workloads.Workload.run_native ~family w in
      let base, _ = Workloads.Workload.run_rio ~family w in
      let opt, rt = Workloads.Workload.run_rio ~family ~client w in
      let core, _ = Workloads.Workload.run_rio ~family ~opts:o1_strength_only w in
      assert (opt.output = native.output);
      assert (core.output = native.output);
      Printf.printf "  native:          %9d cycles\n" native.cycles;
      Printf.printf "  base RIO:        %9d cycles (%.3fx)\n" base.cycles
        (float_of_int base.cycles /. float_of_int native.cycles);
      Printf.printf "  with inc2add:    %9d cycles (%.3fx)\n" opt.cycles
        (float_of_int opt.cycles /. float_of_int native.cycles);
      Printf.printf "  -O1 strength:    %9d cycles (%.3fx)\n" core.cycles
        (float_of_int core.cycles /. float_of_int native.cycles);
      Printf.printf "  client says:     %s" (Rio.Api.client_output rt))
    [ Vm.Cost.Pentium4; Vm.Cost.Pentium3 ]
