(** Custom traces (paper §3.5 + §4.4): redirecting trace creation so
    procedure calls are inlined whole, and elided returns never touch
    the indirect-branch lookup.

    {v dune exec examples/custom_traces.exe v}

    Runs the vortex-like workload (call-dense database accessors) and
    compares default loop-oriented traces against call-inlining custom
    traces. *)

let () =
  let w = Option.get (Workloads.Suite.by_name "vortex") in
  let native = Workloads.Workload.run_native w in
  Printf.printf "vortex-like workload: %d simulated native cycles\n\n" native.cycles;

  let base, rt0 = Workloads.Workload.run_rio w in
  let s0 = Rio.stats rt0 in
  Printf.printf
    "default traces:  %8d cycles (%.3fx), %2d traces, %5d indirect lookups\n"
    base.cycles
    (float_of_int base.cycles /. float_of_int native.cycles)
    s0.Rio.Stats.traces_built s0.Rio.Stats.ibl_lookups;

  let client, t = Clients.Ctraces.make () in
  let opt, rt = Workloads.Workload.run_rio ~client w in
  assert (opt.output = native.output);
  let s = Rio.stats rt in
  Printf.printf
    "custom traces:   %8d cycles (%.3fx), %2d traces, %5d indirect lookups\n\n"
    opt.cycles
    (float_of_int opt.cycles /. float_of_int native.cycles)
    s.Rio.Stats.traces_built s.Rio.Stats.ibl_lookups;
  Printf.printf "call sites marked as trace heads: %d\n"
    t.Clients.Ctraces.heads_marked;
  Printf.printf "returns removed under the calling-convention assumption: %d\n"
    t.Clients.Ctraces.returns_elided;
  Printf.printf "%s" (Rio.Api.client_output rt)
