examples/strength_reduction.ml: Eflags Isa List Opcode Option Printf Rio Vm Workloads
