examples/adaptive_dispatch.ml: Clients Option Printf Rio Workloads
