lib/asm/image.ml: Ast Bytes List Vm
