(** Client composition: run several clients as one.

    Hooks fire in list order; for [end_trace], the first non-[Default]
    directive wins.  Used to reproduce the paper's "all four
    optimizations in combination" configuration (§5). *)

open Rio.Types

let compose ?(name = "composed") (clients : client list) : client =
  let opt_hooks f = List.filter_map f clients in
  let seq_bb = opt_hooks (fun c -> c.basic_block) in
  let seq_trace = opt_hooks (fun c -> c.trace_hook) in
  let seq_del = opt_hooks (fun c -> c.fragment_deleted) in
  let seq_end = opt_hooks (fun c -> c.end_trace) in
  {
    name;
    init = (fun rt -> List.iter (fun c -> c.init rt) clients);
    exit_hook = (fun rt -> List.iter (fun c -> c.exit_hook rt) clients);
    thread_init = (fun ctx -> List.iter (fun c -> c.thread_init ctx) clients);
    thread_exit = (fun ctx -> List.iter (fun c -> c.thread_exit ctx) clients);
    basic_block =
      (if seq_bb = [] then None
       else Some (fun ctx ~tag il -> List.iter (fun h -> h ctx ~tag il) seq_bb));
    trace_hook =
      (if seq_trace = [] then None
       else Some (fun ctx ~tag il -> List.iter (fun h -> h ctx ~tag il) seq_trace));
    fragment_deleted =
      (if seq_del = [] then None
       else Some (fun ctx ~tag -> List.iter (fun h -> h ctx ~tag) seq_del));
    end_trace =
      (if seq_end = [] then None
       else
         Some
           (fun ctx ~trace_tag ~next_tag ->
             let rec first = function
               | [] -> Default_end
               | h :: tl -> (
                   match h ctx ~trace_tag ~next_tag with
                   | Default_end -> first tl
                   | d -> d)
             in
             first seq_end));
  }

(** The paper's §5 "all four sample optimizations at once".  Fresh
    client instances each call (profiling state is per-run).  Order:
    custom traces shape trace creation and elide returns first; RLR
    then strength-reduction clean up the body; ibdispatch instruments
    the remaining indirect checks last so its check indices are stable
    under its own rewrites. *)
let all_four () : client =
  compose ~name:"combined"
    [
      Stdlib.fst (Ctraces.make ());
      Rlr.make ();
      Strength.make ~on_bb:false;
      Ibdispatch.make ();
    ]
