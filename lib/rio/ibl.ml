(** Indirect-branch lookup (paper §2.3), split out of the dispatcher.

    The simulated in-cache hashtable is the [ibl] slot of the unified
    {!Fragindex}: a hit continues in the cache paying only the lookup
    cost; a miss (or disabled in-cache lookup) pays the full context
    switch and goes back to the dispatcher. *)

open Types
module FI = Fragindex

let handle_indirect_exit (rt : runtime) (ts : thread_state) :
    [ `Stay of fragment | `Dispatch ] =
  let mem = Vm.Machine.mem rt.machine in
  let target = Vm.Memory.read_u32 mem (tls_addr ~tid:ts.ts_tid ~slot:slot_ibl_target) in
  ts.next_tag <- target;
  if rt.opts.Options.link_indirect && ts.tracegen = None then begin
    (* the in-cache hashtable lookup *)
    rt.stats.Stats.ibl_lookups <- rt.stats.Stats.ibl_lookups + 1;
    charge rt rt.opts.Options.costs.Options.ibl_lookup;
    match FI.find_ibl ts.index target with
    | Some f when not f.deleted ->
        log_flow rt "ibl hit 0x%x" target;
        `Stay f
    | _ ->
        rt.stats.Stats.ibl_misses <- rt.stats.Stats.ibl_misses + 1;
        log_flow rt "ibl miss 0x%x" target;
        `Dispatch
  end
  else `Dispatch
