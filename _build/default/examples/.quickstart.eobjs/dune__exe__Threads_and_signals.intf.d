examples/threads_and_signals.mli:
