(** Edge profiler: records the dynamic control-flow graph (basic-block
    tag → successor tag → count) with a clean call at every block
    entry.  A heavier-weight instrumentation example in the spirit of
    the paper's "profiling, statistics gathering" use cases; its output
    identifies the hot paths traces should capture. *)

open Rio.Types

type t = {
  edges : (int * int, int) Hashtbl.t;
  mutable last : (int * int) list;  (* per tid: last tag executed *)
}

let fresh () = { edges = Hashtbl.create 1024; last = [] }

let record (t : t) ~tid ~tag =
  (match List.assoc_opt tid t.last with
   | Some prev ->
       Hashtbl.replace t.edges (prev, tag)
         (1 + Option.value (Hashtbl.find_opt t.edges (prev, tag)) ~default:0)
   | None -> ());
  t.last <- (tid, tag) :: List.remove_assoc tid t.last

(** The [n] hottest edges, descending. *)
let hot_edges (t : t) n =
  Hashtbl.fold (fun e c acc -> (c, e) :: acc) t.edges []
  |> List.sort (fun (a, _) (b, _) -> compare b a)
  |> List.filteri (fun i _ -> i < n)
  |> List.map (fun (c, (a, b)) -> (a, b, c))

let make () : client * t =
  let t = fresh () in
  ( {
      null_client with
      name = "edgeprof";
      basic_block =
        Some
          (fun ctx ~tag il ->
            let call =
              Rio.Api.clean_call ctx.rt (fun cctx ->
                  record t ~tid:cctx.ts.ts_tid ~tag)
            in
            match Rio.Instrlist.first il with
            | Some first -> Rio.Instrlist.insert_before il first call
            | None -> Rio.Instrlist.append il call);
      exit_hook =
        (fun rt ->
          let top = hot_edges t 5 in
          Rio.Api.printf rt "edgeprof: %d distinct edges; hottest:\n"
            (Hashtbl.length t.edges);
          List.iter
            (fun (a, b, c) ->
              Rio.Api.printf rt "  0x%x -> 0x%x : %d\n" a b c)
            top);
    },
    t )

let client = Stdlib.fst (make ())
