lib/clients/rlr.ml: Array Insn Isa List Opcode Operand Option Reg Rio
