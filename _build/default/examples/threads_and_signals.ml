(** Threads and asynchronous control flow under the runtime (paper §2):
    thread-private code caches, and interception of OS-delivered
    signals so that handler code, too, runs out of the cache.

    {v dune exec examples/threads_and_signals.exe v} *)

open Asm.Dsl

(* Two threads hand a token back and forth through shared memory while
   a signal fires mid-run; the handler runs under the cache like
   everything else. *)
let prog =
  program ~name:"pingpong" ~entry:"main"
    ~text:
      [
        label "main";
        mov edi (i 0);                  (* rounds completed *)
        label "ping";
        (* wait for token = 0, set it to 1 *)
        ld eax "token";
        test eax eax;
        j nz "ping";
        mov eax (i 1);
        st "token" eax;
        inc edi;
        cmp edi (i 300);
        j l "ping";
        out (i 111);
        hlt;
        label "pong";
        mov edi (i 0);
        label "pong_loop";
        ld eax "token";
        cmp eax (i 1);
        j nz "pong_loop";
        mov eax (i 0);
        st "token" eax;
        inc edi;
        cmp edi (i 300);
        j l "pong_loop";
        out (i 222);
        hlt;
        label "handler";
        out (i 999);
        ret;
      ]
    ~data:[ label "token"; word32 [ 0 ] ]
    ()

let () =
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  ignore (Asm.Image.spawn m image "pong");
  (* a signal lands on thread 0 after ~5000 cycles *)
  Vm.Machine.schedule_signal m ~at:5000 ~tid:0
    ~handler:(Asm.Image.label image "handler");
  let opts = { Rio.Options.default with quantum = 2500 } in
  let rt = Rio.create ~opts m in
  let outcome = Rio.run rt in
  let s = Rio.stats rt in
  Printf.printf "outcome: %s\n" (Rio.stop_reason_to_string outcome.Rio.reason);
  Printf.printf "output (999 = signal handler, then both threads finish): [%s]\n"
    (String.concat "; " (List.map string_of_int (Vm.Machine.output m)));
  Printf.printf
    "blocks built: %d (thread-private: the ping and pong loops were each\n\
    \  built in their own thread's cache); traces: %d; signals delivered: %d\n"
    s.Rio.Stats.blocks_built s.Rio.Stats.traces_built s.Rio.Stats.signals_delivered
