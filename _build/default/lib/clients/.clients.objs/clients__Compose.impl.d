lib/clients/compose.ml: Ctraces Ibdispatch List Rio Rlr Stdlib Strength
