(** Supervised domain-parallel serving pool (DESIGN.md §6.5–6.6).

    The pool owns N worker domains.  Each worker keeps {e warm}
    long-lived {!Engine.t} instances, one per workload key: the code
    cache, fragment index, and traces built while serving one request
    survive into the next, so steady-state requests skip almost all
    block building.  Instances never migrate between domains.

    Requests are sharded to a home worker (round-robin by default,
    key-hash affinity optionally) and pushed onto that worker's deque.
    An idle worker first drains its own deque in arrival order, then
    steals from the {e back} of a victim's deque — the request farthest
    from the victim's service horizon — so stealing disturbs the
    victim's imminent work least.  A stolen request cold-boots (or
    warms) an instance on the {e thief}'s domain.

    On top of that sits the fleet-level recovery machinery (§6.6):

    - every request runs inside an {e exception barrier}: an uncaught
      raise becomes a {!Engine.Crashed} result instead of a dead
      domain;
    - a {e supervisor} domain respawns workers that die anyway (chaos
      kills, pool bugs), requeueing the request they died serving;
    - a per-request {e watchdog} ({!Engine.set_watchdog}) enforces a
      simulated-cycle budget and a wall-clock bound, preempting the
      engine at the next fragment boundary with
      {!Engine.Deadline_exceeded};
    - failed requests climb a bounded {e retry ladder} — retry on the
      warm instance after reset, retry on a cold-booted instance, retry
      cold on another domain — before failing for good;
    - a per-workload-key {e quarantine} circuit breaker opens after K
      consecutive final failures: new submits for the key are rejected
      until a single probe request is let through and succeeds.

    All queues and counters sit behind one pool mutex: requests are
    coarse (each runs a whole workload to completion, millions of
    simulated cycles), so queue operations are a vanishing fraction of
    the work and a single lock keeps the invariants easy to audit.
    Lock-ordering discipline: the pool mutex is never held while a
    request executes. *)

(* ------------------------------------------------------------------ *)
(* Deques                                                             *)
(* ------------------------------------------------------------------ *)

module Deque = struct
  type 'a t = {
    mutable buf : 'a option array;
    mutable head : int;
    mutable len : int;
  }

  let create ~capacity () =
    if capacity < 1 then invalid_arg "Deque.create: capacity must be >= 1";
    { buf = Array.make capacity None; head = 0; len = 0 }

  let grow d =
    let n = Array.length d.buf in
    let buf = Array.make (2 * n) None in
    for i = 0 to d.len - 1 do
      buf.(i) <- d.buf.((d.head + i) mod n)
    done;
    d.buf <- buf;
    d.head <- 0

  let push_back d x =
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.head + d.len) mod Array.length d.buf) <- Some x;
    d.len <- d.len + 1

  (* owner end: requeued/retried requests jump the line so a crashed
     request's latency does not also pay for the queue behind it *)
  let push_front d x =
    if d.len = Array.length d.buf then grow d;
    d.head <- (d.head - 1 + Array.length d.buf) mod Array.length d.buf;
    d.buf.(d.head) <- Some x;
    d.len <- d.len + 1

  (* owner end: oldest request, preserving arrival order *)
  let pop_front d =
    if d.len = 0 then None
    else begin
      let x = d.buf.(d.head) in
      d.buf.(d.head) <- None;
      d.head <- (d.head + 1) mod Array.length d.buf;
      d.len <- d.len - 1;
      x
    end

  (* thief end: newest request *)
  let pop_back d =
    if d.len = 0 then None
    else begin
      let idx = (d.head + d.len - 1) mod Array.length d.buf in
      let x = d.buf.(idx) in
      d.buf.(idx) <- None;
      d.len <- d.len - 1;
      x
    end

  let length d = d.len

  (* logical index [i] from the front; [None] out of range *)
  let nth d i =
    if i < 0 || i >= d.len then None
    else d.buf.((d.head + i) mod Array.length d.buf)

  (* remove the element at logical index [i], closing the gap by
     shifting whichever side is shorter; the batching scheduler uses
     this to pull a same-key request out of the middle of a deque *)
  let remove_at d i =
    if i < 0 || i >= d.len then invalid_arg "Deque.remove_at";
    let n = Array.length d.buf in
    let x = d.buf.((d.head + i) mod n) in
    if i < d.len - 1 - i then begin
      for k = i downto 1 do
        d.buf.((d.head + k) mod n) <- d.buf.((d.head + k - 1) mod n)
      done;
      d.buf.(d.head) <- None;
      d.head <- (d.head + 1) mod n
    end
    else begin
      for k = i to d.len - 2 do
        d.buf.((d.head + k) mod n) <- d.buf.((d.head + k + 1) mod n)
      done;
      d.buf.((d.head + d.len - 1) mod n) <- None
    end;
    d.len <- d.len - 1;
    x

  (* first logical index within [window] of the front whose element
     satisfies [pred] *)
  let find_front d ~window pred =
    let n = min d.len window in
    let rec go i =
      if i >= n then None
      else
        match nth d i with
        | Some x when pred x -> Some i
        | _ -> go (i + 1)
    in
    go 0

  (* first logical index within [window] of the back whose element
     satisfies [pred], scanning backward from the newest element *)
  let find_back d ~window pred =
    let stop = max 0 (d.len - window) in
    let rec go i =
      if i < stop then None
      else
        match nth d i with
        | Some x when pred x -> Some i
        | _ -> go (i - 1)
    in
    go (d.len - 1)
end

(* ------------------------------------------------------------------ *)
(* Requests and results                                               *)
(* ------------------------------------------------------------------ *)

type boot = {
  boot_machine : unit -> Vm.Machine.t;
      (** create a machine with the program image cold-loaded
          (see {!Asm.Image.load_cold}); no thread yet *)
  boot_entry : int;
  boot_stack_top : int;
  boot_restore : Vm.Machine.t -> zeroed:(int * int) list -> (int * int) list;
      (** re-blit image slices over just-zeroed pages
          (see {!Asm.Image.restore}) *)
  boot_opts : Options.t;
  boot_client : unit -> Types.client;
      (** fresh client per instance: client state must be per-domain *)
  boot_image_digest : int;
      (** {!Asm.Image.digest} of the program: stamps saved cache images
          and validates loaded ones *)
  boot_cache : string option;
      (** path of a saved cache image ({!Persist}) to warm-boot every
          new instance of this key from; a refused load (different
          program or options, corruption, truncation) falls back to a
          plain cold boot *)
}

type request = {
  req_id : int;            (** caller-chosen correlation id, echoed in the result *)
  req_key : string;        (** workload key; selects the boot and the warm instance *)
  req_seed : int;
  req_input : int list;    (** full input stream for this request *)
  req_expect : int list option;  (** expected output (native reference), if known *)
}

type result = {
  res_id : int;            (** the request's [req_id] *)
  res_key : string;
  res_seed : int;
  res_worker : int;        (** domain that executed the final attempt *)
  res_home : int;          (** domain the final attempt was dequeued from *)
  res_stolen : bool;
  res_warm : bool;         (** final attempt served by an already-warm instance *)
  res_attempts : int;      (** total attempts, including the successful/last one *)
  res_output : int list;
  res_reason : Engine.stop_reason;
  res_cycles : int;        (** simulated cycles of the final attempt *)
  res_insns : int;
  res_blocks_built : int;  (** basic blocks built during the final attempt *)
  res_secs : float;        (** host wall-clock seconds of the final attempt *)
  res_ok : bool;           (** exited normally and matched [req_expect] *)
}

(** Why {!submit} or {!try_submit} refused a request. *)
type reject =
  | Unknown_key of string  (** no boot registered for this workload key *)
  | Quarantined of string  (** the key's circuit breaker is open and a
                               probe is already in flight *)
  | Overloaded of int * int
      (** admission bound hit: [(admitted, accept_queue)] — the
          non-blocking {!try_submit} path sheds instead of queueing
          without bound *)
  | Pool_stopping

let reject_to_string = function
  | Unknown_key k -> Printf.sprintf "no boot registered for key %S" k
  | Quarantined k -> Printf.sprintf "workload key %S is quarantined" k
  | Overloaded (n, cap) ->
      Printf.sprintf "pool overloaded: %d requests admitted (bound %d)" n cap
  | Pool_stopping -> "pool is shut down"

type snapshot = {
  snap_domains : int;
  snap_submitted : int;
  snap_completed : int;
  snap_steals : int;
  snap_warm_hits : int;
  snap_cold_boots : int;
  snap_busy_cycles : int array;  (** per-worker simulated cycles served *)
  snap_stats : Stats.t;          (** merge over all live warm instances *)
  (* --- supervision (DESIGN.md §6.6) --- *)
  snap_crashes : int;            (** attempts that ended in [Crashed] *)
  snap_deadline_hits : int;      (** attempts preempted by the watchdog *)
  snap_retries : int;            (** retry-ladder activations *)
  snap_requeues : int;           (** jobs pushed back onto a deque (migration
                                     rung + supervisor recoveries) *)
  snap_respawns : int;           (** worker domains respawned by the supervisor *)
  snap_reloads : int;            (** {!drain_and_reload} cycles completed *)
  snap_rejected_unknown : int;
  snap_rejected_quarantined : int;
  snap_quarantine_opens : int;   (** circuit breakers opened *)
  snap_quarantine_closes : int;  (** breakers closed by a successful request *)
  snap_probes : int;             (** probe requests admitted through open breakers *)
  snap_quarantined_now : int;    (** keys whose breaker is open right now *)
  (* --- persistent cache + shared profile store (DESIGN.md §6.8) --- *)
  snap_cache_loads : int;        (** instances warm-booted from a saved image *)
  snap_cache_refused : int;      (** image loads refused (fell back to cold) *)
  snap_profile_publishes : int;  (** successful requests that published to the store *)
  snap_prewarms : int;           (** instances seeded from the shared store *)
  (* --- serving front-end (DESIGN.md §6.10) --- *)
  snap_live_domains : int;       (** workers currently serving (not parked) *)
  snap_shed : int;               (** {!try_submit} rejections for overload *)
  snap_batch_hits : int;         (** same-key dequeue picks by the batcher *)
  snap_scale_ups : int;          (** autoscaler wake events *)
  snap_scale_downs : int;        (** autoscaler park events *)
  snap_prewarm_boots : int;      (** instances built eagerly at boot/reload *)
}

(* ------------------------------------------------------------------ *)
(* Fleet-wide shared profile store (DESIGN.md §6.8)                   *)
(* ------------------------------------------------------------------ *)

(** One tag's application knowledge in the shared store: what a worker
    learned about the program, detached from any code cache. *)
type profile_entry = {
  pe_head : int;                         (** trace-head counter *)
  pe_prof : Fragindex.profile option;    (** successor profile (a private copy) *)
  pe_nospec : bool;                      (** despeculation verdict *)
}

(* The store has its own mutex so workers can publish and prewarm
   without touching the pool mutex mid-request (which would violate the
   "never held while a request executes" discipline).  Lock order:
   pool.mu may be held when taking st_mu (drain_and_reload's rebuild),
   never the reverse. *)
type store = {
  st_mu : Mutex.t;
  st_entries : (string, (int, profile_entry) Hashtbl.t) Hashtbl.t;
      (* workload key -> tag -> merged knowledge *)
  mutable st_publishes : int;
  mutable st_prewarms : int;
  mutable st_cache_loads : int;
  mutable st_cache_refused : int;
}

(* ------------------------------------------------------------------ *)

(* A queued unit of work: the request plus its position on the retry
   ladder.  Mutated only under the pool mutex or by the worker
   currently serving it. *)
type job = {
  jr : request;
  mutable j_attempt : int;      (* 0 on first service *)
  mutable j_force_cold : bool;  (* drop the warm instance before serving *)
}

type worker = {
  w_id : int;
  w_deque : job Deque.t;                (* under pool mutex *)
  mutable w_busy_cycles : int;          (* under pool mutex *)
  mutable w_current : job option;       (* under pool mutex; what the
                                           domain dies holding *)
  mutable w_last_key : string option;   (* under pool mutex: key of the
                                           last claimed job, the
                                           batcher's locality hint *)
  w_chaos : Faultinject.chaos_state option;
      (* private per-worker chaos stream; touched only by the owning
         domain while serving *)
  w_warm : (string, Engine.t) Hashtbl.t;
      (* touched only by the owning domain while serving; readable by
         others only when the pool is quiescent (after [drain]) *)
}

(* Per-key circuit breaker (under pool mutex). *)
type quar = {
  mutable q_fails : int;   (* consecutive final failures *)
  mutable q_open : bool;
  mutable q_probe : bool;  (* a probe request is in flight *)
}

type t = {
  mu : Mutex.t;
  work_cv : Condition.t;    (* workers: new work or shutdown *)
  space_cv : Condition.t;   (* submitters: in-flight fell below cap *)
  done_cv : Condition.t;    (* drainers/reloaders: completed caught up *)
  sup_cv : Condition.t;     (* supervisor: a worker domain died *)
  workers : worker array;
  boots : (string * boot) list;   (* immutable after create *)
  cfg : Options.pool_opts;
  mutable next_home : int;
  mutable submitted : int;
  mutable completed : int;
  mutable active : int;           (* claimed-but-unfinished jobs *)
  mutable steals : int;
  mutable warm_hits : int;
  mutable cold_boots : int;
  mutable crashes : int;
  mutable deadline_hits : int;
  mutable retries : int;
  mutable requeues : int;
  mutable respawns : int;
  mutable reloads : int;
  mutable rejected_unknown : int;
  mutable rejected_quarantined : int;
  mutable quarantine_opens : int;
  mutable quarantine_closes : int;
  mutable probes : int;
  quar : (string, quar) Hashtbl.t;
  store : store;                  (* fleet-wide profile knowledge *)
  (* --- serving front-end (DESIGN.md §6.10); all under pool.mu --- *)
  mutable live : int;             (* workers < live serve; the rest park *)
  key_home : (string, int) Hashtbl.t;
      (* key -> worker that last claimed it; affinity routing follows
         the warm instance instead of a static hash *)
  mutable up_streak : int;        (* autoscaler hysteresis runs *)
  mutable down_streak : int;
  mutable pool_stats : Stats.t;   (* serving counters + latency histogram *)
  mutable results : result list;  (* reversed completion order *)
  mutable stopping : bool;
  mutable reloading : bool;       (* pause job claims while reloading *)
  mutable dead : worker list;     (* carcasses awaiting the supervisor *)
  mutable handles : unit Domain.t list;  (* every domain ever spawned *)
  mutable sup_handle : unit Domain.t option;
}

let domains pool = Array.length pool.workers

let quar_state pool key : quar =
  match Hashtbl.find_opt pool.quar key with
  | Some q -> q
  | None ->
      let q = { q_fails = 0; q_open = false; q_probe = false } in
      Hashtbl.replace pool.quar key q;
      q

(* Broadcast the drain/reload condition when the relevant counter
   caught up; call with the pool mutex held. *)
let note_progress pool =
  if pool.completed = pool.submitted then Condition.broadcast pool.done_cv;
  if pool.reloading && pool.active = 0 then Condition.broadcast pool.done_cv

(* Requests enqueued but not yet claimed; call with the pool mutex
   held. *)
let queued_jobs pool =
  Array.fold_left (fun n w -> n + Deque.length w.w_deque) 0 pool.workers

(* The queue-depth autoscaler (DESIGN.md §6.10): one decision per
   submit/completion, acting only after [scale_hysteresis] consecutive
   same-direction decisions.  Scale-up wakes the next parked worker;
   scale-down parks the youngest live worker and rehomes anything left
   on its deque.  Workers mid-request are untouched — parking only
   stops future claims.  Call with the pool mutex held. *)
let maybe_scale pool =
  match pool.cfg.Options.min_domains with
  | None -> ()
  | Some floor ->
      let cfg = pool.cfg in
      let depth = queued_jobs pool / pool.live in
      if depth >= cfg.Options.scale_up_depth
         && pool.live < Array.length pool.workers
      then begin
        pool.down_streak <- 0;
        pool.up_streak <- pool.up_streak + 1;
        if pool.up_streak >= cfg.Options.scale_hysteresis then begin
          pool.up_streak <- 0;
          pool.live <- pool.live + 1;
          pool.pool_stats.Stats.scale_ups <-
            pool.pool_stats.Stats.scale_ups + 1;
          Condition.broadcast pool.work_cv
        end
      end
      else if depth <= cfg.Options.scale_down_depth && pool.live > floor
      then begin
        pool.up_streak <- 0;
        pool.down_streak <- pool.down_streak + 1;
        if pool.down_streak >= cfg.Options.scale_hysteresis then begin
          pool.down_streak <- 0;
          pool.live <- pool.live - 1;
          pool.pool_stats.Stats.scale_downs <-
            pool.pool_stats.Stats.scale_downs + 1;
          (* rehome anything queued on the newly parked worker *)
          let parked = pool.workers.(pool.live) in
          let k = ref 0 in
          let rec move () =
            match Deque.pop_front parked.w_deque with
            | None -> ()
            | Some j ->
                Deque.push_back pool.workers.(!k mod pool.live).w_deque j;
                incr k;
                move ()
          in
          move ();
          if !k > 0 then Condition.broadcast pool.work_cv
        end
      end
      else begin
        pool.up_streak <- 0;
        pool.down_streak <- 0
      end

(* ------------------------------------------------------------------ *)
(* Shared profile store: publish and prewarm                          *)
(* ------------------------------------------------------------------ *)

let copy_profile = Fragindex.copy_profile

(* After a successful request, fold what this instance knows about the
   application — trace-head counters, successor profiles, despec
   verdicts — into the fleet store, so the next worker to boot this key
   (fresh domain, respawn after a crash, post-reload rebuild) starts
   with the knowledge instead of re-learning it request by request.
   Called by the owning worker with no pool lock held. *)
let publish_profiles pool key (rt : Engine.t) : unit =
  match
    List.find_opt (fun ts -> ts.Types.ts_tid = 0) rt.Types.thread_states
  with
  | None -> ()
  | Some ts ->
      let harvested = ref [] in
      Fragindex.iter_entries ts.Types.index (fun e ->
          if
            e.Fragindex.head >= 0 || e.Fragindex.nospec
            || e.Fragindex.prof <> None
          then
            harvested :=
              ( e.Fragindex.key,
                {
                  pe_head = e.Fragindex.head;
                  pe_prof = Option.map copy_profile e.Fragindex.prof;
                  pe_nospec = e.Fragindex.nospec;
                } )
              :: !harvested);
      if !harvested <> [] then begin
        let st = pool.store in
        Mutex.lock st.st_mu;
        let tbl =
          match Hashtbl.find_opt st.st_entries key with
          | Some tbl -> tbl
          | None ->
              let tbl = Hashtbl.create 64 in
              Hashtbl.replace st.st_entries key tbl;
              tbl
        in
        List.iter
          (fun (tag, pe) ->
            match Hashtbl.find_opt tbl tag with
            | None -> Hashtbl.replace tbl tag pe
            | Some old ->
                (* merge, don't clobber: head counters race upward,
                   verdicts stick, and successor histograms fold
                   together (Fragindex.merge_profile) so knowledge from
                   every publisher accumulates *)
                let merged_prof =
                  match (old.pe_prof, pe.pe_prof) with
                  | None, p | p, None -> p
                  | Some dst, Some src ->
                      Fragindex.merge_profile ~src dst;
                      Some dst
                in
                Hashtbl.replace tbl tag
                  {
                    pe_head = max old.pe_head pe.pe_head;
                    pe_prof = merged_prof;
                    pe_nospec = old.pe_nospec || pe.pe_nospec;
                  })
          !harvested;
        st.st_publishes <- st.st_publishes + 1;
        Mutex.unlock st.st_mu
      end

(* Boot-time warm-up for a freshly created instance, before its first
   request: replay the saved cache image if the boot carries one (a
   refusal is recorded and falls back to cold), then seed the index
   from the fleet store.  Caller owns [rt]; takes only st_mu. *)
let warm_boot_instance pool (boot : boot) key (rt : Engine.t) : unit =
  let st = pool.store in
  (match boot.boot_cache with
  | None -> ()
  | Some path -> (
      match
        Engine.load_image rt ~image_digest:boot.boot_image_digest ~path
      with
      | Ok _ ->
          Mutex.lock st.st_mu;
          st.st_cache_loads <- st.st_cache_loads + 1;
          Mutex.unlock st.st_mu
      | Error _ ->
          Mutex.lock st.st_mu;
          st.st_cache_refused <- st.st_cache_refused + 1;
          Mutex.unlock st.st_mu));
  let entries =
    Mutex.lock st.st_mu;
    let es =
      match Hashtbl.find_opt st.st_entries key with
      | None -> []
      | Some tbl ->
          Hashtbl.fold
            (fun tag pe acc ->
              (tag, pe.pe_head, pe.pe_prof, pe.pe_nospec) :: acc)
            tbl []
    in
    if es <> [] then st.st_prewarms <- st.st_prewarms + 1;
    Mutex.unlock st.st_mu;
    es
  in
  Engine.prewarm rt ~tid:0 entries

(* ------------------------------------------------------------------ *)
(* Serving one attempt (no pool lock held)                            *)
(* ------------------------------------------------------------------ *)

let serve pool (w : worker) (j : job) ~home ~stolen : result =
  let r = j.jr in
  let cfg = pool.cfg in
  let boot =
    (* submit validates keys; this is a backstop for requests forged
       around it, and the barrier turns the raise into a Crashed
       result rather than a dead domain *)
    match List.assoc_opt r.req_key pool.boots with
    | Some b -> b
    | None -> invalid_arg ("Pool: no boot registered for key " ^ r.req_key)
  in
  let t0 = Unix.gettimeofday () in
  if j.j_force_cold then begin
    Hashtbl.remove w.w_warm r.req_key;
    j.j_force_cold <- false
  end;
  (* chaos roll for this attempt.  The last ladder rung is
     chaos-immune, so a request under retry always converges: chaos
     tests the recovery machinery, not the application's luck *)
  let chaos =
    match w.w_chaos with
    | Some cs when j.j_attempt < max 1 cfg.Options.retries ->
        Faultinject.chaos_tick cs
    | _ -> None
  in
  (match chaos with
   | Some Faultinject.Chaos_stall ->
       (* stalled worker: burn host time before doing any work; with a
          wall-clock deadline armed the watchdog preempts the request
          at its first safe point *)
       Unix.sleepf
         (match cfg.Options.deadline_secs with
          | Some s -> s +. 0.01
          | None -> 0.02)
   | _ -> ());
  let warm, rt =
    match Hashtbl.find_opt w.w_warm r.req_key with
    | Some rt ->
        Engine.reset_for_reuse rt ~restore:boot.boot_restore;
        (true, rt)
    | None ->
        let m = boot.boot_machine () in
        let rt =
          Engine.create ~opts:boot.boot_opts ~client:(boot.boot_client ()) m
        in
        warm_boot_instance pool boot r.req_key rt;
        Hashtbl.replace w.w_warm r.req_key rt;
        (false, rt)
  in
  let m = Engine.machine rt in
  (match chaos with
   | Some Faultinject.Chaos_poison ->
       (* flip one application-image byte near the entry point: the
          request diverges or faults, and the ladder must heal it (the
          write marks its page touched, so a warm reset restores it) *)
       let cs = Option.get w.w_chaos in
       let addr =
         min (Types.tls_base - 1)
           (boot.boot_entry + Faultinject.chaos_rand cs 512)
       in
       let mem = Vm.Machine.mem m in
       let old = Vm.Memory.read_u8 mem addr in
       Vm.Memory.write_u8 mem addr (old lxor (1 + Faultinject.chaos_rand cs 255));
       Vm.Machine.invalidate_icache m ~addr ~len:1
   | Some Faultinject.Chaos_hook_storm ->
       (* the next client hook raises after doing its work; the guard's
          snapshot/quarantine machinery absorbs it *)
       rt.Types.fi_hook_pending <- true
   | _ -> ());
  ignore
    (Vm.Machine.add_thread m ~entry:boot.boot_entry
       ~stack_top:boot.boot_stack_top);
  Vm.Machine.set_input m r.req_input;
  let c0 = Vm.Machine.cycles m in
  let crash_at =
    match chaos with
    | Some Faultinject.Chaos_crash ->
        let cs = Option.get w.w_chaos in
        Some (c0 + 1_000 + Faultinject.chaos_rand cs 100_000)
    | _ -> None
  in
  let cycle_limit = Option.map (fun b -> c0 + b) cfg.Options.deadline_cycles in
  let wall_limit = Option.map (fun s -> t0 +. s) cfg.Options.deadline_secs in
  (match (crash_at, cycle_limit, wall_limit) with
   | None, None, None -> Engine.set_watchdog rt None
   | _ ->
       Engine.set_watchdog rt
         (Some
            (fun () ->
              (match crash_at with
               | Some c when Vm.Machine.cycles m >= c ->
                   (* the injected domain death: punches through the
                      barrier mid-request, at a dispatcher safe point *)
                   raise Faultinject.Chaos_domain_kill
               | _ -> ());
              (match cycle_limit with
               | Some c -> Vm.Machine.cycles m >= c
               | None -> false)
              ||
              match wall_limit with
              | Some t -> Unix.gettimeofday () > t
              | None -> false)));
  let b0 = (Engine.stats rt).Stats.blocks_built in
  let o = Engine.run rt in
  Engine.set_watchdog rt None;
  let output = Vm.Machine.output m in
  let ok =
    o.Engine.reason = Engine.All_exited
    && match r.req_expect with None -> true | Some e -> output = e
  in
  if ok then publish_profiles pool r.req_key rt;
  {
    res_id = r.req_id;
    res_key = r.req_key;
    res_seed = r.req_seed;
    res_worker = w.w_id;
    res_home = home;
    res_stolen = stolen;
    res_warm = warm;
    res_attempts = j.j_attempt + 1;
    res_output = output;
    res_reason = o.Engine.reason;
    res_cycles = o.Engine.cycles;
    res_insns = o.Engine.insns;
    res_blocks_built = (Engine.stats rt).Stats.blocks_built - b0;
    res_secs = Unix.gettimeofday () -. t0;
    res_ok = ok;
  }

(* The exception barrier: any raise out of [serve] — engine bug,
   unregistered key, client escape — becomes a [Crashed] result instead
   of a dead worker domain.  {!Faultinject.Chaos_domain_kill} is the
   one deliberate exception: it exists to kill the domain so the
   supervisor path stays honest. *)
let serve_barrier pool (w : worker) (j : job) ~home ~stolen : result =
  try serve pool w j ~home ~stolen with
  | Faultinject.Chaos_domain_kill as e -> raise e
  | exn ->
      Hashtbl.remove w.w_warm j.jr.req_key;
      {
        res_id = j.jr.req_id;
        res_key = j.jr.req_key;
        res_seed = j.jr.req_seed;
        res_worker = w.w_id;
        res_home = home;
        res_stolen = stolen;
        res_warm = false;
        res_attempts = j.j_attempt + 1;
        res_output = [];
        res_reason = Engine.Crashed (Printexc.to_string exn);
        res_cycles = 0;
        res_insns = 0;
        res_blocks_built = 0;
        res_secs = 0.0;
        res_ok = false;
      }

(* Record a request's final outcome and update its key's circuit
   breaker; call with the pool mutex held. *)
let record_final pool (w : worker) (j : job) (res : result) : unit =
  w.w_current <- None;
  pool.active <- pool.active - 1;
  pool.completed <- pool.completed + 1;
  if res.res_warm then pool.warm_hits <- pool.warm_hits + 1
  else pool.cold_boots <- pool.cold_boots + 1;
  pool.results <- res :: pool.results;
  let q = quar_state pool j.jr.req_key in
  if res.res_ok then begin
    if q.q_open then begin
      q.q_open <- false;
      pool.quarantine_closes <- pool.quarantine_closes + 1
    end;
    q.q_fails <- 0;
    q.q_probe <- false
  end
  else begin
    q.q_fails <- q.q_fails + 1;
    q.q_probe <- false;
    if (not q.q_open) && q.q_fails >= pool.cfg.Options.quarantine_threshold
    then begin
      q.q_open <- true;
      pool.quarantine_opens <- pool.quarantine_opens + 1
    end
  end;
  Stats.hist_add pool.pool_stats.Stats.serve_lat res.res_cycles;
  maybe_scale pool;
  Condition.signal pool.space_cv;
  note_progress pool

(* ------------------------------------------------------------------ *)
(* Worker loop, retry ladder, supervisor                              *)
(* ------------------------------------------------------------------ *)

(* Serve [j] to a final result, climbing the retry ladder on failures:
   rung 1 retries on the warm instance (reset first), rung 2 cold-boots
   on this worker, rung 3+ requeues cold on the next domain over.  The
   ladder is bounded by [cfg.retries]; rungs past the configured depth
   simply do not exist. *)
let rec serve_with_retries pool (w : worker) (j : job) ~home ~stolen : unit =
  let res = serve_barrier pool w j ~home ~stolen in
  Mutex.lock pool.mu;
  (match res.res_reason with
   | Engine.Crashed _ -> pool.crashes <- pool.crashes + 1
   | Engine.Deadline_exceeded -> pool.deadline_hits <- pool.deadline_hits + 1
   | _ -> ());
  w.w_busy_cycles <- w.w_busy_cycles + res.res_cycles;
  if res.res_ok || j.j_attempt >= pool.cfg.Options.retries then begin
    (* final: a request that did not exit cleanly leaves instance state
       we no longer trust; drop it so the next request cold-boots *)
    if res.res_reason <> Engine.All_exited then
      Hashtbl.remove w.w_warm j.jr.req_key;
    record_final pool w j res;
    Mutex.unlock pool.mu
  end
  else begin
    pool.retries <- pool.retries + 1;
    j.j_attempt <- j.j_attempt + 1;
    let rung = j.j_attempt in
    if rung >= 3 && pool.live > 1 then begin
      (* rung 3: migrate — cold-boot on another (live) domain *)
      j.j_force_cold <- true;
      Hashtbl.remove w.w_warm j.jr.req_key;
      let target = pool.workers.((w.w_id + 1) mod pool.live) in
      Deque.push_front target.w_deque j;
      pool.requeues <- pool.requeues + 1;
      w.w_current <- None;
      pool.active <- pool.active - 1;
      note_progress pool;
      Condition.broadcast pool.work_cv;
      Mutex.unlock pool.mu
    end
    else begin
      (* rung 1: warm retry (reset_for_reuse happens inside serve);
         rung 2+: cold retry on this worker *)
      if rung >= 2 then j.j_force_cold <- true;
      Mutex.unlock pool.mu;
      serve_with_retries pool w j ~home ~stolen
    end
  end

(* Dequeue from the worker's own deque, letting the batcher reorder:
   within [batch_window] of the front, a request for the key this
   worker served last jumps the line, so the instance that is hot right
   now stays hot.  Reordering is bounded by the window, so no request
   starves.  Call with the pool mutex held. *)
let claim_own pool (w : worker) : job option =
  let window = pool.cfg.Options.batch_window in
  match w.w_last_key with
  | Some key when window > 0 && Deque.length w.w_deque > 1 -> (
      match
        Deque.find_front w.w_deque ~window (fun j -> j.jr.req_key = key)
      with
      | Some i when i > 0 ->
          pool.pool_stats.Stats.requests_batched <-
            pool.pool_stats.Stats.requests_batched + 1;
          Deque.remove_at w.w_deque i
      | _ -> Deque.pop_front w.w_deque)
  | _ -> Deque.pop_front w.w_deque

(* Steal from a victim's back, preferring — within the batch window —
   a request for the thief's own hot key: stolen work then lands on an
   already-warm instance instead of forcing a boot.  Parked workers'
   deques are valid victims (supervisor requeues can strand jobs
   there).  Call with the pool mutex held. *)
let claim_steal pool (w : worker) : (job * int) option =
  let n = Array.length pool.workers in
  let window = pool.cfg.Options.batch_window in
  let preferred =
    match w.w_last_key with
    | Some key when window > 0 ->
        let rec scan k =
          if k >= n - 1 then None
          else
            let victim = pool.workers.((w.w_id + 1 + k) mod n) in
            match
              Deque.find_back victim.w_deque ~window (fun j ->
                  j.jr.req_key = key)
            with
            | Some i ->
                pool.pool_stats.Stats.requests_batched <-
                  pool.pool_stats.Stats.requests_batched + 1;
                Option.map
                  (fun j -> (j, victim.w_id))
                  (Deque.remove_at victim.w_deque i)
            | None -> scan (k + 1)
        in
        scan 0
    | _ -> None
  in
  match preferred with
  | Some _ as r -> r
  | None ->
      let rec scan k =
        if k >= n - 1 then None
        else
          let victim = pool.workers.((w.w_id + 1 + k) mod n) in
          match Deque.pop_back victim.w_deque with
          | Some j -> Some (j, victim.w_id)
          | None -> scan (k + 1)
      in
      scan 0

let rec worker_loop pool (w : worker) : unit =
  Mutex.lock pool.mu;
  let job =
    (* parked workers (id >= live) claim nothing until the autoscaler
       wakes them; they still finish the request they already hold *)
    if pool.reloading || w.w_id >= pool.live then None
    else
      match claim_own pool w with
      | Some j -> Some (j, w.w_id, false)
      | None ->
          Option.map (fun (j, home) -> (j, home, true)) (claim_steal pool w)
  in
  match job with
  | Some (j, home, stolen) ->
      if stolen then pool.steals <- pool.steals + 1;
      w.w_current <- Some j;
      w.w_last_key <- Some j.jr.req_key;
      Hashtbl.replace pool.key_home j.jr.req_key w.w_id;
      pool.active <- pool.active + 1;
      Mutex.unlock pool.mu;
      serve_with_retries pool w j ~home ~stolen;
      worker_loop pool w
  | None ->
      if pool.stopping then Mutex.unlock pool.mu
      else begin
        Condition.wait pool.work_cv pool.mu;
        Mutex.unlock pool.mu;
        worker_loop pool w
      end

(* The body every worker domain runs.  If anything escapes the loop —
   a chaos kill, or a bug in the pool itself — the domain is dying:
   hand the carcass to the supervisor and let it respawn us. *)
let worker_body pool (w : worker) : unit =
  try worker_loop pool w
  with _ ->
    Mutex.lock pool.mu;
    pool.dead <- w :: pool.dead;
    Condition.signal pool.sup_cv;
    Mutex.unlock pool.mu

(* The supervisor: bury dead workers, requeue the request each died
   serving (its warm instance died mid-run and cannot be trusted), and
   spawn a replacement domain over the same worker record — the deque
   and warm table survive, so queued requests are never lost. *)
let rec supervisor_loop pool : unit =
  Mutex.lock pool.mu;
  while pool.dead = [] && not pool.stopping do
    Condition.wait pool.sup_cv pool.mu
  done;
  match pool.dead with
  | [] -> Mutex.unlock pool.mu (* stopping, nothing left to bury *)
  | w :: rest ->
      pool.dead <- rest;
      (match w.w_current with
       | Some j ->
           Hashtbl.remove w.w_warm j.jr.req_key;
           j.j_attempt <- j.j_attempt + 1;
           j.j_force_cold <- true;
           Deque.push_front w.w_deque j;
           w.w_current <- None;
           pool.active <- pool.active - 1;
           pool.requeues <- pool.requeues + 1;
           note_progress pool
       | None -> ());
      pool.respawns <- pool.respawns + 1;
      let h = Domain.spawn (fun () -> worker_body pool w) in
      pool.handles <- h :: pool.handles;
      Condition.broadcast pool.work_cv;
      Mutex.unlock pool.mu;
      supervisor_loop pool

(* ------------------------------------------------------------------ *)
(* Public API                                                         *)
(* ------------------------------------------------------------------ *)

let create ?(cfg = Options.default_pool) ?chaos
    ~(boots : (string * boot) list) () : t =
  Options.validate_pool_exn cfg;
  let workers =
    Array.init cfg.Options.domains (fun i ->
        {
          w_id = i;
          w_deque = Deque.create ~capacity:cfg.Options.queue_capacity ();
          w_busy_cycles = 0;
          w_current = None;
          w_last_key = None;
          w_chaos = Option.map (fun co -> Faultinject.chaos_make co ~salt:i) chaos;
          w_warm = Hashtbl.create 8;
        })
  in
  let pool =
    {
      mu = Mutex.create ();
      work_cv = Condition.create ();
      space_cv = Condition.create ();
      done_cv = Condition.create ();
      sup_cv = Condition.create ();
      workers;
      boots;
      cfg;
      next_home = 0;
      submitted = 0;
      completed = 0;
      active = 0;
      steals = 0;
      warm_hits = 0;
      cold_boots = 0;
      crashes = 0;
      deadline_hits = 0;
      retries = 0;
      requeues = 0;
      respawns = 0;
      reloads = 0;
      rejected_unknown = 0;
      rejected_quarantined = 0;
      quarantine_opens = 0;
      quarantine_closes = 0;
      probes = 0;
      quar = Hashtbl.create 8;
      live =
        (match cfg.Options.min_domains with
        | None -> cfg.Options.domains
        | Some m -> m);
      key_home = Hashtbl.create 8;
      up_streak = 0;
      down_streak = 0;
      pool_stats = Stats.create ();
      store =
        {
          st_mu = Mutex.create ();
          st_entries = Hashtbl.create 8;
          st_publishes = 0;
          st_prewarms = 0;
          st_cache_loads = 0;
          st_cache_refused = 0;
        };
      results = [];
      stopping = false;
      reloading = false;
      dead = [];
      handles = [];
      sup_handle = None;
    }
  in
  (* pre-warm before any domain exists: build every (worker, key)
     instance — image replay plus store seeding — so the first request
     of every key on every domain is already warm.  Everything built
     here happens-before Domain.spawn, so the workers see it without
     synchronization. *)
  if cfg.Options.prewarm then
    Array.iter
      (fun w ->
        List.iter
          (fun (key, boot) ->
            let m = boot.boot_machine () in
            let rt =
              Engine.create ~opts:boot.boot_opts
                ~client:(boot.boot_client ()) m
            in
            warm_boot_instance pool boot key rt;
            Hashtbl.replace w.w_warm key rt;
            pool.pool_stats.Stats.prewarm_boots <-
              pool.pool_stats.Stats.prewarm_boots + 1)
          pool.boots)
      workers;
  pool.handles <-
    Array.to_list
      (Array.map (fun w -> Domain.spawn (fun () -> worker_body pool w)) workers);
  pool.sup_handle <- Some (Domain.spawn (fun () -> supervisor_loop pool));
  pool

(* Admission checks shared by {!submit} and {!try_submit}; call with
   the pool mutex held.  [Ok q] hands back the key's breaker state so
   the caller can admit a probe. *)
let admission_check pool (r : request) : (quar, reject) Stdlib.result =
  if pool.stopping then Error Pool_stopping
  else if not (List.mem_assoc r.req_key pool.boots) then begin
    pool.rejected_unknown <- pool.rejected_unknown + 1;
    Error (Unknown_key r.req_key)
  end
  else begin
    let q = quar_state pool r.req_key in
    if q.q_open && q.q_probe then begin
      pool.rejected_quarantined <- pool.rejected_quarantined + 1;
      Error (Quarantined r.req_key)
    end
    else Ok q
  end

(* Enqueue an admitted request on its home worker; call with the pool
   mutex held.  Routing prefers the worker that last served the key —
   its instance is the hottest — falling back to key-hash affinity or
   round-robin over the live workers. *)
let enqueue pool (r : request) (q : quar) : unit =
  (* half-open circuit breaker: exactly one probe request is let
     through an open breaker; its outcome closes or re-arms it *)
  if q.q_open then begin
    q.q_probe <- true;
    pool.probes <- pool.probes + 1
  end;
  let home =
    match Hashtbl.find_opt pool.key_home r.req_key with
    | Some h when pool.cfg.Options.affinity && h < pool.live -> h
    | _ ->
        if pool.cfg.Options.affinity then
          Hashtbl.hash r.req_key mod pool.live
        else begin
          let h = pool.next_home mod pool.live in
          pool.next_home <- (h + 1) mod pool.live;
          h
        end
  in
  Deque.push_back pool.workers.(home).w_deque
    { jr = r; j_attempt = 0; j_force_cold = false };
  pool.submitted <- pool.submitted + 1;
  maybe_scale pool;
  Condition.broadcast pool.work_cv

let submit pool (r : request) : (unit, reject) Stdlib.result =
  Mutex.lock pool.mu;
  match admission_check pool r with
  | Error e ->
      Mutex.unlock pool.mu;
      Error e
  | Ok q ->
      while pool.submitted - pool.completed >= pool.cfg.Options.max_inflight do
        Condition.wait pool.space_cv pool.mu
      done;
      enqueue pool r q;
      Mutex.unlock pool.mu;
      Ok ()

(** Non-blocking admission for the socket front-end: where {!submit}
    would wait for space, this sheds with [Overloaded] once the number
    of admitted-but-unfinished requests reaches [accept_queue] — the
    caller turns that into backpressure (a typed reject on the wire)
    instead of unbounded queueing. *)
let try_submit pool (r : request) : (unit, reject) Stdlib.result =
  Mutex.lock pool.mu;
  match admission_check pool r with
  | Error e ->
      Mutex.unlock pool.mu;
      Error e
  | Ok q ->
      let admitted = pool.submitted - pool.completed in
      if admitted >= pool.cfg.Options.accept_queue then begin
        pool.pool_stats.Stats.requests_shed <-
          pool.pool_stats.Stats.requests_shed + 1;
        Mutex.unlock pool.mu;
        Error (Overloaded (admitted, pool.cfg.Options.accept_queue))
      end
      else begin
        enqueue pool r q;
        Mutex.unlock pool.mu;
        Ok ()
      end

(** Results completed so far, in completion order, without waiting:
    the server's poll loop pairs this with {!try_submit} to stream
    responses while requests are still in flight. *)
let take_results pool : result list =
  Mutex.lock pool.mu;
  let rs = List.rev pool.results in
  pool.results <- [];
  Mutex.unlock pool.mu;
  rs

let drain pool : result list =
  Mutex.lock pool.mu;
  while pool.completed < pool.submitted do
    Condition.wait pool.done_cv pool.mu
  done;
  let rs = List.rev pool.results in
  pool.results <- [];
  Mutex.unlock pool.mu;
  rs

(** Quiesce service (claimed requests finish; queued requests wait),
    drop every warm instance — optionally rebuilding fresh pre-warmed
    ones — reset the quarantine breakers (the poisoned instances they
    were guarding are gone), and resume.  Accepted requests are never
    dropped: anything still queued is served by the reloaded fleet. *)
let drain_and_reload ?(rebuild = false) pool : unit =
  Mutex.lock pool.mu;
  if pool.reloading then begin
    Mutex.unlock pool.mu;
    invalid_arg "Pool.drain_and_reload: reload already in progress"
  end;
  pool.reloading <- true;
  Condition.broadcast pool.work_cv;
  while pool.active > 0 do
    Condition.wait pool.done_cv pool.mu
  done;
  (* serving is quiescent: no claimed job, so no domain touches its
     warm table; the mutex hand-off makes these writes visible to the
     workers when they next take the lock *)
  Array.iter
    (fun w ->
      Hashtbl.reset w.w_warm;
      if rebuild then
        List.iter
          (fun (key, boot) ->
            let m = boot.boot_machine () in
            let rt =
              Engine.create ~opts:boot.boot_opts
                ~client:(boot.boot_client ()) m
            in
            (* rebuilt instances start with everything the fleet has
               learned: the saved image (if any) and the shared store *)
            warm_boot_instance pool boot key rt;
            Hashtbl.replace w.w_warm key rt;
            pool.pool_stats.Stats.prewarm_boots <-
              pool.pool_stats.Stats.prewarm_boots + 1)
          pool.boots)
    pool.workers;
  Hashtbl.reset pool.quar;
  pool.reloads <- pool.reloads + 1;
  pool.reloading <- false;
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.mu

(** Zero the throughput counters between measurement passes.  Call only
    when drained (no request in flight). *)
let reset_counters pool : unit =
  Mutex.lock pool.mu;
  if pool.completed <> pool.submitted then begin
    Mutex.unlock pool.mu;
    invalid_arg "Pool.reset_counters: requests still in flight"
  end;
  pool.submitted <- 0;
  pool.completed <- 0;
  pool.steals <- 0;
  pool.warm_hits <- 0;
  pool.cold_boots <- 0;
  pool.crashes <- 0;
  pool.deadline_hits <- 0;
  pool.retries <- 0;
  pool.requeues <- 0;
  pool.respawns <- 0;
  pool.reloads <- 0;
  pool.rejected_unknown <- 0;
  pool.rejected_quarantined <- 0;
  pool.quarantine_opens <- 0;
  pool.quarantine_closes <- 0;
  pool.probes <- 0;
  pool.results <- [];
  pool.pool_stats <- Stats.create ();
  pool.up_streak <- 0;
  pool.down_streak <- 0;
  Array.iter (fun w -> w.w_busy_cycles <- 0) pool.workers;
  (* zero the store's counters but keep its knowledge: profiles are
     what the next measurement pass is usually trying to exploit *)
  let st = pool.store in
  Mutex.lock st.st_mu;
  st.st_publishes <- 0;
  st.st_prewarms <- 0;
  st.st_cache_loads <- 0;
  st.st_cache_refused <- 0;
  Mutex.unlock st.st_mu;
  Mutex.unlock pool.mu

(** Every live warm instance as [(worker_id, key, engine)].  Like
    {!stats}, coherent only when the pool is quiescent: workers mutate
    their warm tables while serving, and a returned engine must not be
    touched while a worker owns it.  Exposed so tests and the autotuner
    can check which {!Options.t} a per-workload override actually
    reached. *)
let warm_instances pool : (int * string * Engine.t) list =
  Mutex.lock pool.mu;
  let out =
    Array.fold_left
      (fun acc w ->
        Hashtbl.fold (fun key rt acc -> (w.w_id, key, rt) :: acc) w.w_warm acc)
      [] pool.workers
  in
  Mutex.unlock pool.mu;
  List.sort
    (fun (i1, k1, _) (i2, k2, _) ->
      if i1 <> i2 then compare i1 i2 else compare k1 k2)
    out

(** Counter snapshot plus runtime stats merged across every live warm
    instance.  The merged stats are coherent only when the pool is
    quiescent (after {!drain}); instances dropped after failed requests
    are not represented. *)
let stats pool : snapshot =
  Mutex.lock pool.mu;
  let snap_stats =
    Array.fold_left
      (fun acc w ->
        Hashtbl.fold (fun _ rt acc -> Stats.merge acc (Engine.stats rt)) w.w_warm
          acc)
      (* a merge with a zero record copies pool_stats, so the snapshot
         never aliases the live mutable record *)
      (Stats.merge (Stats.create ()) pool.pool_stats)
      pool.workers
  in
  let quarantined_now =
    Hashtbl.fold (fun _ q n -> if q.q_open then n + 1 else n) pool.quar 0
  in
  let s =
    {
      snap_domains = Array.length pool.workers;
      snap_submitted = pool.submitted;
      snap_completed = pool.completed;
      snap_steals = pool.steals;
      snap_warm_hits = pool.warm_hits;
      snap_cold_boots = pool.cold_boots;
      snap_busy_cycles = Array.map (fun w -> w.w_busy_cycles) pool.workers;
      snap_stats;
      snap_crashes = pool.crashes;
      snap_deadline_hits = pool.deadline_hits;
      snap_retries = pool.retries;
      snap_requeues = pool.requeues;
      snap_respawns = pool.respawns;
      snap_reloads = pool.reloads;
      snap_rejected_unknown = pool.rejected_unknown;
      snap_rejected_quarantined = pool.rejected_quarantined;
      snap_quarantine_opens = pool.quarantine_opens;
      snap_quarantine_closes = pool.quarantine_closes;
      snap_probes = pool.probes;
      snap_quarantined_now = quarantined_now;
      snap_cache_loads = pool.store.st_cache_loads;
      snap_cache_refused = pool.store.st_cache_refused;
      snap_profile_publishes = pool.store.st_publishes;
      snap_prewarms = pool.store.st_prewarms;
      snap_live_domains = pool.live;
      snap_shed = pool.pool_stats.Stats.requests_shed;
      snap_batch_hits = pool.pool_stats.Stats.requests_batched;
      snap_scale_ups = pool.pool_stats.Stats.scale_ups;
      snap_scale_downs = pool.pool_stats.Stats.scale_downs;
      snap_prewarm_boots = pool.pool_stats.Stats.prewarm_boots;
    }
  in
  Mutex.unlock pool.mu;
  s

(** The on-disk name a workload key's image is saved under (keys may
    contain characters unsuitable for file names). *)
let cache_file_name (key : string) : string =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    key
  ^ ".riocache"

(** Persist the fleet's warm code caches: for every registered key,
    save the fullest live instance's image to [dir]/<key>.riocache
    (stamped with the key's [boot_image_digest]).  Returns
    [(key, path, fragments_persisted)] for each image written.  Call
    only when the pool is quiescent (after {!drain}) — workers' warm
    tables must not be mid-request. *)
let save_caches pool ~(dir : string) : (string * string * int) list =
  Mutex.lock pool.mu;
  if pool.completed <> pool.submitted || pool.active <> 0 then begin
    Mutex.unlock pool.mu;
    invalid_arg "Pool.save_caches: requests still in flight"
  end;
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let saved =
    List.filter_map
      (fun (key, boot) ->
        (* the fullest instance: most live fragments across its tids *)
        let fullness rt =
          List.fold_left
            (fun n ts ->
              n
              + Fragindex.bb_count ts.Types.index
              + Fragindex.trace_count ts.Types.index)
            0 rt.Types.thread_states
        in
        let best =
          Array.fold_left
            (fun acc w ->
              match Hashtbl.find_opt w.w_warm key with
              | None -> acc
              | Some rt -> (
                  let n = fullness rt in
                  match acc with
                  | Some (_, best_n) when best_n >= n -> acc
                  | _ -> Some (rt, n)))
            None pool.workers
        in
        match best with
        | None | Some (_, 0) -> None
        | Some (rt, _) ->
            let path = Filename.concat dir (cache_file_name key) in
            let n =
              Engine.save_image rt ~image_digest:boot.boot_image_digest ~path
            in
            Some (key, path, n))
      pool.boots
  in
  Mutex.unlock pool.mu;
  saved

let shutdown pool : unit =
  Mutex.lock pool.mu;
  pool.stopping <- true;
  Condition.broadcast pool.work_cv;
  Condition.broadcast pool.sup_cv;
  Mutex.unlock pool.mu;
  (match pool.sup_handle with Some h -> Domain.join h | None -> ());
  (* join every domain ever spawned, including respawned replacements
     and the crashed originals (joining a terminated domain is a no-op) *)
  List.iter Domain.join pool.handles;
  pool.handles <- [];
  pool.sup_handle <- None
