examples/quickstart.ml: Asm Format List Printf Rio String Vm
