(** Branch conditions for [jcc] — the sixteen IA-32 condition codes.
    Bit 0 of the encoding negates the base predicate, so {!invert} is a
    single XOR; trace building relies on this to flip a branch
    in-place. *)

type t =
  | O   (** overflow *)
  | NO
  | B   (** below: unsigned [<] *)
  | NB
  | Z   (** zero / equal *)
  | NZ
  | BE  (** below or equal: unsigned [<=] *)
  | NBE
  | S   (** sign *)
  | NS
  | P   (** parity *)
  | NP
  | L   (** less: signed [<] *)
  | NL
  | LE  (** less or equal: signed [<=] *)
  | NLE

val all : t list

val number : t -> int
(** 4-bit encoding, matching IA-32. *)

val of_number : int -> t
(** @raise Invalid_argument outside 0–15. *)

val invert : t -> t
(** Logical negation of the predicate; involutive. *)

val name : t -> string

val flags_read : t -> Eflags.flag list
(** The flags this condition consults. *)

val eval : t -> Eflags.t -> bool
(** Decide the condition against a concrete flags value. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
