lib/vm/memory.mli: Bytes Isa
