(** Tests for the RIO core: adaptive Instr levels, InstrList, flags
    analysis, mangling, emission/linking, cache-resident decode,
    fragment replacement, custom stubs, clean calls, trace building,
    custom traces, threads, and signals under the runtime. *)

open Isa

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_ilist = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Instr levels (paper §3.1)                                          *)
(* ------------------------------------------------------------------ *)

(* raw bytes for "add %ebx, $5; inc %ecx" at address 0x1000 *)
let sample_bytes () =
  let i1 = Insn.mk_add (Operand.Reg Reg.Ebx) (Operand.Imm 5) in
  let i2 = Insn.mk_inc (Operand.Reg Reg.Ecx) in
  let b1 = Encode.encode_exn ~pc:0x1000 i1 in
  let b2 = Encode.encode_exn ~pc:(0x1000 + Bytes.length b1) i2 in
  (Bytes.cat b1 b2, Bytes.length b1, Bytes.length b2)

let test_levels_bundle () =
  let raw, l1, l2 = sample_bytes () in
  let b = Rio.Instr.of_bundle ~addr:0x1000 raw in
  checkb "starts at L0" true (Rio.Instr.level b = Rio.Level.L0);
  checki "bundle length" (l1 + l2) (Rio.Instr.length b);
  (* splitting happens through an InstrList *)
  let il = Rio.Instrlist.create () in
  Rio.Instrlist.append il b;
  Rio.Instrlist.split_bundles il;
  checki "split into two" 2 (Rio.Instrlist.length il);
  let first = Option.get (Rio.Instrlist.first il) in
  checkb "split gives L1" true (Rio.Instr.level first = Rio.Level.L1);
  checki "first piece len" l1 (Rio.Instr.length first)

let test_levels_transitions () =
  let raw, l1, _ = sample_bytes () in
  let i = Rio.Instr.of_raw ~addr:0x1000 (Bytes.sub raw 0 l1) in
  checkb "L1" true (Rio.Instr.level i = Rio.Level.L1);
  (* reading the opcode raises to L2 *)
  checkb "opcode read" true (Rio.Instr.get_opcode i = Opcode.Add);
  checkb "now L2" true (Rio.Instr.level i = Rio.Level.L2);
  (* eflags at L2 *)
  checkb "add writes CF" true
    (Eflags.writes_flag (Rio.Instr.get_eflags i) Eflags.CF);
  (* reading operands raises to L3; raw bits stay valid *)
  checkb "src imm" true (Operand.equal (Rio.Instr.get_src i 0) (Operand.Imm 5));
  checkb "now L3" true (Rio.Instr.level i = Rio.Level.L3);
  (* mutation invalidates raw bits -> L4 *)
  Rio.Instr.set_src i 0 (Operand.Imm 7);
  checkb "now L4" true (Rio.Instr.level i = Rio.Level.L4);
  (* L4 still encodes *)
  let b = Rio.Instr.encode ~pc:0x1000 i in
  let i', _ = Decode.full_exn (Decode.fetch_bytes b) 0 in
  checkb "L4 re-encode" true
    (Operand.equal (Insn.src i' 0) (Operand.Imm 7))

let test_level_encode_copies_raw () =
  (* an L1 instruction encodes by copying its raw bytes verbatim *)
  let raw, l1, _ = sample_bytes () in
  let piece = Bytes.sub raw 0 l1 in
  let i = Rio.Instr.of_raw ~addr:0x1000 piece in
  checkb "raw copy" true (Bytes.equal (Rio.Instr.encode ~pc:0x9999 i) piece)

let test_cti_reencoded_at_new_pc () =
  (* a decoded CTI keeps its absolute target when re-encoded elsewhere *)
  let j = Insn.mk_jmp 0x2000 in
  let raw = Encode.encode_exn ~pc:0x1000 j in
  let f a = Char.code (Bytes.get raw (a - 0x1000)) in
  let insn, _ = Decode.full_exn f 0x1000 in
  let i = Rio.Instr.of_decoded ~addr:0x1000 ~raw insn in
  let b = Rio.Instr.encode ~pc:0x5000 i in
  let f5 a = Char.code (Bytes.get b (a - 0x5000)) in
  let insn', _ = Decode.full_exn f5 0x5000 in
  checki "target preserved" 0x2000 (Operand.get_target (Insn.src insn' 0))

let test_note_field () =
  let i = Rio.Create.nop () in
  checkb "no note" true (Rio.Instr.get_note i = Rio.Instr.No_note);
  Rio.Instr.set_note i (Rio.Instr.Int_note 42);
  checkb "int note" true (Rio.Instr.get_note i = Rio.Instr.Int_note 42)

(* ------------------------------------------------------------------ *)
(* InstrList                                                          *)
(* ------------------------------------------------------------------ *)

let mk_simple n = Rio.Create.mov (Operand.Reg Reg.Eax) (Operand.Imm n)

let il_imms il =
  List.map
    (fun i -> Operand.get_imm (Rio.Instr.get_src i 0))
    (Rio.Instrlist.to_list il)

let test_instrlist_ops () =
  let il = Rio.Instrlist.create () in
  let a = mk_simple 1 and b = mk_simple 2 and c = mk_simple 3 in
  Rio.Instrlist.append il b;
  Rio.Instrlist.prepend il a;
  Rio.Instrlist.append il c;
  check_ilist "append/prepend" [ 1; 2; 3 ] (il_imms il);
  let d = mk_simple 4 in
  Rio.Instrlist.insert_after il a d;
  check_ilist "insert_after" [ 1; 4; 2; 3 ] (il_imms il);
  let e = mk_simple 5 in
  Rio.Instrlist.insert_before il c e;
  check_ilist "insert_before" [ 1; 4; 2; 5; 3 ] (il_imms il);
  Rio.Instrlist.remove il d;
  check_ilist "remove" [ 1; 2; 5; 3 ] (il_imms il);
  let f = mk_simple 6 in
  Rio.Instrlist.replace il b f;
  check_ilist "replace" [ 1; 6; 5; 3 ] (il_imms il);
  checki "length" 4 (Rio.Instrlist.length il);
  checkb "owner enforced" true
    (match Rio.Instrlist.append il f with
     | exception Invalid_argument _ -> true
     | () -> false)

(* model-based property: a random sequence of list operations agrees
   with a pure-list reference model *)
let prop_instrlist_model =
  QCheck2.Test.make ~name:"instrlist agrees with a list model" ~count:500
    ~print:(fun ops -> String.concat ";" (List.map string_of_int ops))
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 0 999))
    (fun ops ->
      let il = Rio.Instrlist.create () in
      let model = ref [] in
      let fresh =
        let k = ref 0 in
        fun () -> incr k; mk_simple !k
      in
      let nth_instr n =
        let l = Rio.Instrlist.to_list il in
        List.nth l (n mod List.length l)
      in
      List.iter
        (fun op ->
          let len = List.length !model in
          match op mod 5 with
          | 0 ->
              let i = fresh () in
              Rio.Instrlist.append il i;
              model := !model @ [ i ]
          | 1 ->
              let i = fresh () in
              Rio.Instrlist.prepend il i;
              model := i :: !model
          | 2 when len > 0 ->
              let anchor = nth_instr (op / 5) in
              let i = fresh () in
              Rio.Instrlist.insert_after il anchor i;
              model :=
                List.concat_map
                  (fun x -> if x == anchor then [ x; i ] else [ x ])
                  !model
          | 3 when len > 0 ->
              let victim = nth_instr (op / 5) in
              Rio.Instrlist.remove il victim;
              model := List.filter (fun x -> x != victim) !model
          | 4 when len > 0 ->
              let old = nth_instr (op / 5) in
              let i = fresh () in
              Rio.Instrlist.replace il old i;
              model := List.map (fun x -> if x == old then i else x) !model
          | _ -> ())
        ops;
      let same_order =
        List.length !model = Rio.Instrlist.length il
        && List.for_all2 ( == ) !model (Rio.Instrlist.to_list il)
      in
      (* forward and backward traversals agree *)
      let backward =
        let rec go acc = function
          | None -> acc
          | Some i -> go (i :: acc) (Rio.Instrlist.prev i)
        in
        go [] (Rio.Instrlist.last il)
      in
      same_order
      && List.length backward = List.length !model
      && List.for_all2 ( == ) backward !model)

(* ------------------------------------------------------------------ *)
(* Flags analysis                                                     *)
(* ------------------------------------------------------------------ *)

let test_flags_dead () =
  let il = Rio.Instrlist.create () in
  (* cmp writes all flags before anything reads them: dead before *)
  Rio.Instrlist.append il (Rio.Create.cmp (Operand.Reg Reg.Eax) (Operand.Imm 0));
  Rio.Instrlist.append il (Rio.Create.jcc Cond.Z 0x4000);
  checkb "dead before full write" true
    (Rio.Flags_analysis.dead_after (Rio.Instrlist.first il))

let test_flags_live_via_jcc () =
  let il = Rio.Instrlist.create () in
  Rio.Instrlist.append il (Rio.Create.mov (Operand.Reg Reg.Eax) (Operand.Imm 0));
  Rio.Instrlist.append il (Rio.Create.jcc Cond.Z 0x4000);
  checkb "jcc reads flags: live" false
    (Rio.Flags_analysis.dead_after (Rio.Instrlist.first il))

let test_flags_live_at_exit () =
  let il = Rio.Instrlist.create () in
  Rio.Instrlist.append il (Rio.Create.mov (Operand.Reg Reg.Eax) (Operand.Imm 0));
  Rio.Instrlist.append il (Rio.Create.jmp 0x4000);
  (* leaving the fragment without writing flags: conservative live *)
  checkb "exit: conservative live" false
    (Rio.Flags_analysis.dead_after (Rio.Instrlist.first il))

let test_written_before_read () =
  let il = Rio.Instrlist.create () in
  Rio.Instrlist.append il (Rio.Create.inc (Operand.Reg Reg.Eax));   (* writes all but CF *)
  Rio.Instrlist.append il (Rio.Create.mov (Operand.Reg Reg.Ebx) (Operand.Imm 1));
  let written = Rio.Flags_analysis.written_before_read (Rio.Instrlist.first il) in
  checkb "ZF certainly written" true (written land Eflags.bit Eflags.ZF <> 0);
  checkb "CF not written" true (written land Eflags.bit Eflags.CF = 0);
  (* an adc first READS CF: it must not count as written *)
  let il2 = Rio.Instrlist.create () in
  Rio.Instrlist.append il2 (Rio.Create.adc (Operand.Reg Reg.Eax) (Operand.Imm 0));
  let w2 = Rio.Flags_analysis.written_before_read (Rio.Instrlist.first il2) in
  checkb "CF read-before-write excluded" true (w2 land Eflags.bit Eflags.CF = 0)

let test_flags_inc_partial () =
  (* inc writes all but CF; a later adc still reads CF: live *)
  let il = Rio.Instrlist.create () in
  Rio.Instrlist.append il (Rio.Create.inc (Operand.Reg Reg.Eax));
  Rio.Instrlist.append il (Rio.Create.adc (Operand.Reg Reg.Ebx) (Operand.Imm 0));
  Rio.Instrlist.append il (Rio.Create.cmp (Operand.Reg Reg.Eax) (Operand.Imm 0));
  Rio.Instrlist.append il (Rio.Create.jcc Cond.Z 0x4000);
  checkb "CF survives inc" false
    (Rio.Flags_analysis.dead_after (Rio.Instrlist.first il))

(* ------------------------------------------------------------------ *)
(* Runtime-level helpers                                              *)
(* ------------------------------------------------------------------ *)

open Asm.Dsl

let run_with ?(opts = Rio.Options.default) ?(client = Rio.Types.null_client)
    ?(input = []) prog =
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create () in
  Vm.Machine.set_input m input;
  ignore (Asm.Image.load m image);
  let rt = Rio.create ~opts ~client m in
  let o = Rio.run rt in
  (Vm.Machine.output m, o, rt)

let native_out prog =
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  ignore (Vm.Sched.run ~emulate:false m);
  Vm.Machine.output m

let loop_prog n =
  program ~name:"p"
    ~text:
      [
        label "main"; mov eax (i 0); mov ecx (i 0);
        label "loop"; add eax ecx; inc ecx; cmp ecx (i n); j l "loop";
        out eax; hlt;
      ]
    ()

(* ------------------------------------------------------------------ *)
(* Dispatch / cache behaviour                                         *)
(* ------------------------------------------------------------------ *)

let test_rio_runs_program () =
  let out, o, _ = run_with (loop_prog 100) in
  checkb "halted" true (o.Rio.reason = Rio.All_exited);
  check_ilist "output" [ 4950 ] out

let test_trace_created_for_hot_loop () =
  let _, _, rt = run_with (loop_prog 500) in
  checkb "trace built" true ((Rio.stats rt).Rio.Stats.traces_built >= 1)

let test_no_trace_below_threshold () =
  let _, _, rt = run_with (loop_prog 10) in
  checki "no trace" 0 (Rio.stats rt).Rio.Stats.traces_built

let test_links_reduce_context_switches () =
  let _, _, rt_lnk = run_with (loop_prog 2000) in
  let opts =
    { Rio.Options.default with link_direct = false; link_indirect = false;
      enable_traces = false }
  in
  let _, _, rt_nolnk = run_with ~opts (loop_prog 2000) in
  checkb "links save context switches" true
    ((Rio.stats rt_lnk).Rio.Stats.context_switches * 10
    < (Rio.stats rt_nolnk).Rio.Stats.context_switches)

let test_table1_config_equivalence () =
  let prog =
    program ~name:"p"
      ~text:
        [
          label "main"; mov eax (i 3); mov ecx (i 0);
          label "loop";
          call "f";
          inc ecx; cmp ecx (i 200); j l "loop";
          out eax; hlt;
          label "f"; imul eax (i 17); and_ eax (i 0xFFFF); ret;
        ]
      ()
  in
  let expected = native_out prog in
  List.iter
    (fun (name, opts) ->
      let opts = { opts with Rio.Options.max_cycles = 100_000_000 } in
      let out, o, _ = run_with ~opts prog in
      checkb (name ^ " ok") true (o.Rio.reason = Rio.All_exited);
      check_ilist name expected out)
    Rio.Options.table1_configs

let test_max_size_block () =
  (* a straight-line run longer than max_bb_insns: the builder must cap
     each block, chain them by fallthrough, and compute the same answer *)
  let n = 300 in
  let cap = Rio.Options.default.Rio.Options.max_bb_insns in
  assert (n > 2 * cap);
  let adds = List.init n (fun _ -> add eax (i 1)) in
  let prog =
    program ~name:"p"
      ~text:([ label "main"; mov eax (i 0) ] @ adds @ [ out eax; hlt ])
      ()
  in
  let expected = native_out prog in
  check_ilist "native sum" [ n ] expected;
  let out, o, rt = run_with prog in
  checkb "finished" true (o.Rio.reason = Rio.All_exited);
  check_ilist "output" expected out;
  (* 302 straight-line instructions at <= 128 per block: >= 3 blocks *)
  checkb "blocks capped" true
    ((Rio.stats rt).Rio.Stats.blocks_built >= (n + 2 + cap - 1) / cap)

(* ------------------------------------------------------------------ *)
(* Client hooks (Table 3)                                             *)
(* ------------------------------------------------------------------ *)

let test_hook_coverage () =
  let seen = Hashtbl.create 8 in
  let mark k = Hashtbl.replace seen k () in
  let client =
    {
      Rio.Types.name = "probe";
      init = (fun _ -> mark "init");
      exit_hook = (fun _ -> mark "exit");
      thread_init = (fun _ -> mark "thread_init");
      thread_exit = (fun _ -> mark "thread_exit");
      basic_block = Some (fun _ ~tag:_ _ -> mark "basic_block");
      trace_hook = Some (fun _ ~tag:_ _ -> mark "trace");
      end_trace = Some (fun _ ~trace_tag:_ ~next_tag:_ -> mark "end_trace";
                         Rio.Types.Default_end);
      fragment_deleted = None;
    }
  in
  let _, _, _ = run_with ~client (loop_prog 500) in
  List.iter
    (fun k -> checkb k true (Hashtbl.mem seen k))
    [ "init"; "exit"; "thread_init"; "thread_exit"; "basic_block"; "trace"; "end_trace" ]

let test_bb_hook_sees_app_code () =
  (* with a bb hook, instructions arrive split (L1) and walkable *)
  let saw_inc = ref false in
  let client =
    {
      Rio.Types.null_client with
      name = "probe";
      basic_block =
        Some
          (fun _ ~tag:_ il ->
            Rio.Instrlist.iter il (fun i ->
                if
                  (not (Rio.Instr.is_bundle i))
                  && Rio.Instr.get_opcode i = Opcode.Inc
                then saw_inc := true));
    }
  in
  ignore (run_with ~client (loop_prog 5));
  checkb "saw inc" true !saw_inc

let test_client_transform_applies () =
  (* a bb-hook transformation must change execution: replace the
     "inc ecx" with "add ecx, 2", halving iterations of the loop body
     semantics (sum changes) *)
  let client =
    {
      Rio.Types.null_client with
      name = "inc2add2";
      basic_block =
        Some
          (fun _ ~tag:_ il ->
            Rio.Instrlist.iter il (fun i ->
                if
                  (not (Rio.Instr.is_bundle i))
                  && Rio.Instr.get_opcode i = Opcode.Inc
                  && Operand.equal (Rio.Instr.get_dst i 0) (Operand.Reg Reg.Ecx)
                then
                  Rio.Instr.set_insn i
                    (Insn.mk_add (Operand.Reg Reg.Ecx) (Operand.Imm 2))));
    }
  in
  let out, _, _ = run_with ~client (loop_prog 10) in
  (* sum of 0,2,4,6,8 = 20 *)
  check_ilist "transformed result" [ 20 ] out

let test_clean_call_counts_executions () =
  let count = ref 0 in
  let client =
    {
      Rio.Types.null_client with
      name = "exec-counter";
      basic_block =
        Some
          (fun ctx ~tag:_ il ->
            let call = Rio.Api.clean_call ctx.Rio.Types.rt (fun _ -> incr count) in
            match Rio.Instrlist.first il with
            | Some first -> Rio.Instrlist.insert_before il first call
            | None -> Rio.Instrlist.append il call);
    }
  in
  let out, _, _ = run_with ~client (loop_prog 50) in
  check_ilist "result unperturbed" [ 1225 ] out;
  (* loop body executes 50 times (+ entry/exit blocks) *)
  checkb "counted executions" true (!count >= 50)

let test_transparent_output () =
  let client =
    {
      Rio.Types.null_client with
      name = "printer";
      exit_hook = (fun rt -> Rio.Api.printf rt "bye %d" 7);
    }
  in
  let out, _, rt = run_with ~client (loop_prog 20) in
  check_ilist "app output untouched" [ 190 ] out;
  Alcotest.(check string) "client output separate" "bye 7" (Rio.Api.client_output rt)

(* ------------------------------------------------------------------ *)
(* Custom exit stubs                                                  *)
(* ------------------------------------------------------------------ *)

let test_custom_stub_executes_on_exit () =
  (* attach a stub that bumps a TLS-visible counter; verify it runs
     only when the exit is taken *)
  let prog =
    program ~name:"p"
      ~text:
        [
          label "main"; mov eax (i 0); mov ecx (i 0);
          label "loop"; add eax ecx; inc ecx; cmp ecx (i 30); j l "loop";
          out eax; hlt;
        ]
      ()
  in
  let stub_runs = ref 0 in
  let client =
    {
      Rio.Types.null_client with
      name = "stubber";
      basic_block =
        Some
          (fun ctx ~tag:_ il ->
            (* attach to every conditional exit CTI *)
            Rio.Instrlist.iter il (fun i ->
                if
                  (not (Rio.Instr.is_bundle i))
                  &&
                  match Rio.Instr.get_opcode i with
                  | Opcode.Jcc _ -> true
                  | _ -> false
                then begin
                  let sil = Rio.Instrlist.create () in
                  Rio.Instrlist.append sil
                    (Rio.Api.clean_call ctx.Rio.Types.rt (fun _ -> incr stub_runs));
                  Rio.Api.set_custom_stub i sil
                end));
    }
  in
  let opts = { Rio.Options.default with enable_traces = false } in
  let out, _, _ = run_with ~opts ~client prog in
  check_ilist "result" [ 435 ] out;
  (* the loop branch exit is taken through its stub until linked; at
     least the first traversal runs the stub *)
  checkb "stub ran" true (!stub_runs >= 1)

let test_custom_stub_always_through () =
  (* with ~always:true the stub executes on every exit traversal even
     once linked *)
  let prog = loop_prog 40 in
  let stub_runs = ref 0 in
  let client =
    {
      Rio.Types.null_client with
      name = "always-stub";
      basic_block =
        Some
          (fun ctx ~tag:_ il ->
            Rio.Instrlist.iter il (fun i ->
                if
                  (not (Rio.Instr.is_bundle i))
                  &&
                  match Rio.Instr.get_opcode i with
                  | Opcode.Jcc _ -> true
                  | _ -> false
                then begin
                  let sil = Rio.Instrlist.create () in
                  Rio.Instrlist.append sil
                    (Rio.Api.clean_call ctx.Rio.Types.rt (fun _ -> incr stub_runs));
                  Rio.Api.set_custom_stub ~always:true i sil
                end));
    }
  in
  let opts = { Rio.Options.default with enable_traces = false } in
  let out, _, _ = run_with ~opts ~client prog in
  check_ilist "result" [ 780 ] out;
  (* the backward branch is taken 39 times, every time via the stub *)
  checkb "stub ran every traversal" true (!stub_runs >= 39)

(* ------------------------------------------------------------------ *)
(* Adaptive API: decode/replace fragment                              *)
(* ------------------------------------------------------------------ *)

let test_decode_fragment_roundtrip () =
  (* decode an emitted bb and re-install it unchanged: behaviour and
     output must not change *)
  let replaced = ref 0 in
  let client =
    {
      Rio.Types.null_client with
      name = "redecoder";
      basic_block =
        Some
          (fun ctx ~tag il ->
            ignore il;
            (* after this block is emitted, re-decode and replace it on
               first execution via a clean call *)
            let call =
              Rio.Api.clean_call ctx.Rio.Types.rt (fun cctx ->
                  if !replaced < 3 then
                    match Rio.Api.decode_fragment cctx tag with
                    | Some dil ->
                        if Rio.Api.replace_fragment cctx tag dil then incr replaced
                    | None -> ())
            in
            match Rio.Instrlist.first il with
            | Some first -> Rio.Instrlist.insert_before il first call
            | None -> Rio.Instrlist.append il call);
    }
  in
  let out, o, _ = run_with ~client (loop_prog 60) in
  checkb "completed" true (o.Rio.reason = Rio.All_exited);
  check_ilist "output stable across replaces" [ 1770 ] out;
  checkb "replacements happened" true (!replaced >= 1)

let test_replace_fragment_transform () =
  (* replace a hot trace with a version that adds extra (semantically
     neutral) instructions; execution must continue correctly *)
  let did = ref false in
  let client =
    {
      Rio.Types.null_client with
      name = "replacer";
      trace_hook =
        Some
          (fun ctx ~tag il ->
            ignore il;
            if not !did then begin
              did := true;
              let call =
                Rio.Api.clean_call ctx.Rio.Types.rt (fun cctx ->
                    match Rio.Api.decode_fragment cctx tag with
                    | Some dil ->
                        (* insert a harmless register shuffle at the top *)
                        let pad1 = Rio.Create.push (Operand.Reg Reg.Ebx) in
                        let pad2 = Rio.Create.pop (Operand.Reg Reg.Ebx) in
                        (match Rio.Instrlist.first dil with
                         | Some f ->
                             Rio.Instrlist.insert_before dil f pad2;
                             Rio.Instrlist.insert_before dil pad2 pad1
                         | None -> ());
                        ignore (Rio.Api.replace_fragment cctx tag dil)
                    | None -> ())
              in
              match Rio.Instrlist.first il with
              | Some f -> Rio.Instrlist.insert_before il f call
              | None -> ()
            end);
    }
  in
  let out, o, rt = run_with ~client (loop_prog 2000) in
  checkb "completed" true (o.Rio.reason = Rio.All_exited);
  check_ilist "output stable" [ 1999000 ] out;
  checkb "a fragment was replaced" true
    ((Rio.stats rt).Rio.Stats.fragments_replaced >= 1)

(* ------------------------------------------------------------------ *)
(* Custom traces                                                      *)
(* ------------------------------------------------------------------ *)

let test_mark_trace_head () =
  (* marking a cold tag as a head forces trace creation there *)
  let prog =
    program ~name:"p"
      ~text:
        [
          label "main"; mov eax (i 0); mov ecx (i 0);
          label "loop";
          call "helper";
          inc ecx; cmp ecx (i 400); j l "loop";
          out eax; hlt;
          label "helper"; add eax (i 2); ret;
        ]
      ()
  in
  let marked = ref false in
  let client =
    {
      Rio.Types.null_client with
      name = "marker";
      basic_block =
        Some
          (fun ctx ~tag:_ il ->
            match Rio.Instrlist.last il with
            | Some last
              when (not (Rio.Instr.is_bundle last))
                   && Rio.Instr.get_opcode last = Opcode.Call ->
                let t = Operand.get_target (Rio.Instr.get_src last 0) in
                Rio.Api.mark_trace_head ctx t;
                marked := true
            | _ -> ());
    }
  in
  let out, _, rt = run_with ~client prog in
  check_ilist "result" [ 800 ] out;
  checkb "marked" true !marked;
  checkb "trace for helper exists" true ((Rio.stats rt).Rio.Stats.traces_built >= 1)

let test_end_trace_directive () =
  (* a client that forcibly ends every trace after one block produces
     single-block traces; behaviour is unchanged *)
  let client =
    {
      Rio.Types.null_client with
      name = "cutter";
      end_trace = Some (fun _ ~trace_tag:_ ~next_tag:_ -> Rio.Types.End_trace);
    }
  in
  let out, _, _ = run_with ~client (loop_prog 300) in
  check_ilist "result" [ 44850 ] out

(* ------------------------------------------------------------------ *)
(* Threads and signals under RIO                                      *)
(* ------------------------------------------------------------------ *)

let test_rio_two_threads () =
  let prog =
    program ~name:"p"
      ~text:
        [
          label "main";
          label "spin";
          ld eax "flag";
          test eax eax;
          j z "spin";
          out (i 11);
          hlt;
          label "worker";
          mov ecx (i 0);
          label "wloop";
          inc ecx;
          cmp ecx (i 1000);
          j l "wloop";
          mov eax (i 1);
          st "flag" eax;
          hlt;
        ]
      ~data:[ label "flag"; word32 [ 0 ] ]
      ()
  in
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  ignore (Asm.Image.spawn m image "worker");
  let opts = { Rio.Options.default with quantum = 2000 } in
  let rt = Rio.create ~opts m in
  let o = Rio.run rt in
  checkb "finished" true (o.Rio.reason = Rio.All_exited);
  check_ilist "handoff result" [ 11 ] (Vm.Machine.output m)

let test_thread_private_caches () =
  (* both threads run the same code; each builds its own blocks *)
  let prog =
    program ~name:"p"
      ~text:
        [
          label "main";
          mov ecx (i 0);
          label "loop"; inc ecx; cmp ecx (i 50); j l "loop";
          out ecx; hlt;
        ]
      ()
  in
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  ignore (Asm.Image.spawn m image "main");
  let rt = Rio.create m in
  let o = Rio.run rt in
  checkb "finished" true (o.Rio.reason = Rio.All_exited);
  check_ilist "both produced output" [ 50; 50 ] (Vm.Machine.output m);
  (* same tags built twice: once per thread *)
  checkb "thread-private blocks" true ((Rio.stats rt).Rio.Stats.blocks_built >= 4)

let test_signal_under_rio () =
  let prog =
    program ~name:"p"
      ~text:
        [
          label "main";
          mov ecx (i 0);
          label "loop";
          inc ecx;
          cmp ecx (i 60000);
          j l "loop";
          out ecx;
          hlt;
          label "handler";
          out (i 333);
          ret;
        ]
      ()
  in
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  Vm.Machine.schedule_signal m ~at:2000 ~tid:0
    ~handler:(Asm.Image.label image "handler");
  let rt = Rio.create m in
  let o = Rio.run rt in
  checkb "finished" true (o.Rio.reason = Rio.All_exited);
  check_ilist "handler intercepted and ran" [ 333; 60000 ] (Vm.Machine.output m);
  checkb "stat counted" true ((Rio.stats rt).Rio.Stats.signals_delivered = 1)

(* ------------------------------------------------------------------ *)
(* Self-modifying code                                                *)
(* ------------------------------------------------------------------ *)

(* A program that patches the immediate of an instruction in its own
   hot loop: iterations before the patch add 11, after it add 22.  The
   runtime must flush the stale basic blocks and traces (the loop is
   hot enough to have a trace by patch time) and keep the output
   identical to native execution. *)
let smc_prog =
  program ~name:"smc"
    ~text:
      [
        label "main";
        mov ecx (i 0);
        mov edi (i 0);
        label "loop";
        label "patchme";
        mov eax (i 11);          (* imm bytes live at patchme+1 *)
        add edi eax;
        inc ecx;
        cmp ecx (i 150);
        j nz "skip";
        (* patch: rewrite the imm32 of the mov above to 22 *)
        li ebx "patchme";
        mov (mb ebx ~disp:1) (i 22);
        label "skip";
        cmp ecx (i 200);
        j l "loop";
        out edi;
        hlt;
      ]
    ()

let test_smc_native () =
  (* the simulated hardware itself must handle the patch (decoded-
     instruction cache invalidation) *)
  check_ilist "native smc result" [ (150 * 11) + (50 * 22) ] (native_out smc_prog)

let test_smc_under_rio () =
  let out, o, rt = run_with smc_prog in
  checkb "completed" true (o.Rio.reason = Rio.All_exited);
  check_ilist "rio smc result" (native_out smc_prog) out;
  checkb "stale fragments were flushed" true
    ((Rio.stats rt).Rio.Stats.fragments_deleted >= 1);
  checkb "a trace had been built before the patch" true
    ((Rio.stats rt).Rio.Stats.traces_built >= 1)

let test_smc_with_clients () =
  let out, o, _ = run_with ~client:(Clients.Compose.all_four ()) smc_prog in
  checkb "completed" true (o.Rio.reason = Rio.All_exited);
  check_ilist "rio smc result under all-four" (native_out smc_prog) out

(* ------------------------------------------------------------------ *)
(* API edge cases                                                     *)
(* ------------------------------------------------------------------ *)

let test_trace_threshold_exact () =
  let opts = { Rio.Options.default with trace_threshold = 7 } in
  let _, _, rt = run_with ~opts (loop_prog 100) in
  checkb "a trace exists" true ((Rio.stats rt).Rio.Stats.traces_built >= 1);
  let opts = { Rio.Options.default with trace_threshold = 101 } in
  let _, _, rt = run_with ~opts (loop_prog 100) in
  checki "threshold above iteration count: no trace" 0
    (Rio.stats rt).Rio.Stats.traces_built

let test_ibl_disabled_counts () =
  let prog =
    program ~name:"p"
      ~text:
        [
          label "main"; mov ecx (i 0);
          label "loop"; call "f"; inc ecx; cmp ecx (i 100); j l "loop";
          out ecx; hlt;
          label "f"; ret;
        ]
      ()
  in
  let opts =
    { Rio.Options.default with link_indirect = false; enable_traces = false }
  in
  let _, _, rt = run_with ~opts prog in
  checki "no in-cache lookups when disabled" 0 (Rio.stats rt).Rio.Stats.ibl_lookups;
  let opts = { Rio.Options.default with enable_traces = false } in
  let _, _, rt = run_with ~opts prog in
  checkb "lookups happen when enabled" true
    ((Rio.stats rt).Rio.Stats.ibl_lookups >= 99)

let test_replace_missing_tag () =
  let result = ref None in
  let client =
    {
      Rio.Types.null_client with
      name = "probe";
      basic_block =
        Some
          (fun ctx ~tag:_ il ->
            if !result = None then
              result :=
                Some
                  (Rio.Api.replace_fragment ctx 0xDEAD (Rio.Instrlist.create ())
                   = false
                  && Rio.Api.decode_fragment ctx 0xDEAD = None);
            ignore il);
    }
  in
  ignore (run_with ~client (loop_prog 5));
  checkb "missing tag handled gracefully" true (Option.value !result ~default:false)

let test_nested_stub_exits_rejected () =
  (* an exit inside a stub inside a stub is one level too deep *)
  let client =
    {
      Rio.Types.null_client with
      name = "nester";
      basic_block =
        Some
          (fun _ ~tag:_ il ->
            Rio.Instrlist.iter il (fun i ->
                if
                  (not (Rio.Instr.is_bundle i))
                  &&
                  match Rio.Instr.get_opcode i with
                  | Opcode.Jcc _ -> true
                  | _ -> false
                then begin
                  let outer = Rio.Instrlist.create () in
                  let deep = Rio.Instrlist.create () in
                  Rio.Instrlist.append deep (Rio.Create.jmp 0x4000);
                  let too_deep = Rio.Create.jcc Cond.NZ 0x5000 in
                  Rio.Api.set_custom_stub too_deep deep;
                  Rio.Instrlist.append outer too_deep;
                  Rio.Api.set_custom_stub i outer
                end));
    }
  in
  let _, o, _ = run_with ~client (loop_prog 10) in
  checkb "rejected as an error" true
    (match o.Rio.reason with Rio.App_fault _ -> true | _ -> false)

let test_client_abort_from_trace_hook () =
  let client =
    {
      Rio.Types.null_client with
      name = "aborter";
      trace_hook =
        Some (fun _ ~tag:_ _ -> raise (Rio.Types.Client_abort "no traces please"));
    }
  in
  let _, o, _ = run_with ~client (loop_prog 500) in
  checkb "abort surfaces as fault" true
    (match o.Rio.reason with
     | Rio.App_fault m ->
         let has needle hay =
           let nl = String.length needle and hl = String.length hay in
           let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
           go 0
         in
         has "no traces please" m
     | _ -> false)

let test_emulate_builds_nothing () =
  let prog = loop_prog 200 in
  let expected = native_out prog in
  let opts =
    { (List.assoc "emulation" Rio.Options.table1_configs) with
      Rio.Options.max_cycles = max_int / 2 }
  in
  let out, o, rt = run_with ~opts prog in
  checkb "emulation completes" true (o.Rio.reason = Rio.All_exited);
  check_ilist "emulation output" expected out;
  checki "emulation builds no fragments" 0 (Rio.stats rt).Rio.Stats.blocks_built

(* ------------------------------------------------------------------ *)
(* Bounded cache / capacity flushes                                   *)
(* ------------------------------------------------------------------ *)

let test_cache_capacity_flush () =
  (* a tiny cache forces flush-the-world events; behaviour must be
     unchanged and the cache must actually be reclaimed *)
  let prog =
    program ~name:"p"
      ~text:
        ([ label "main"; mov eax (i 0); mov edx (i 0); label "outer" ]
        @ List.concat
            (List.init 24 (fun k ->
                 [
                   label (Printf.sprintf "b%d" k);
                   add eax (i (k + 1));
                   xor eax (i (k * 3));
                   call (Printf.sprintf "f%d" (k mod 6));
                 ]))
        @ [
            inc edx; cmp edx (i 30); j l "outer";
            out eax; hlt;
          ]
        @ List.concat
            (List.init 6 (fun k ->
                 [ label (Printf.sprintf "f%d" k); add eax (i k); ret ])))
      ()
  in
  let expected = native_out prog in
  let opts =
    { Rio.Options.default with
      cache_capacity = Some 256;
      (* this test exercises the legacy flush-the-world path; 256 bytes
         is far below the FIFO policy's validated minimum *)
      flush_policy = Rio.Options.Flush_full;
    }
  in
  let out, o, rt = run_with ~opts prog in
  checkb "completed" true (o.Rio.reason = Rio.All_exited);
  check_ilist "output equal under tiny cache" expected out;
  checkb "flushes happened" true ((Rio.stats rt).Rio.Stats.cache_flushes >= 1);
  (* cursor stays bounded: capacity plus one over-commit fragment worth *)
  checkb "cache stayed bounded" true
    (rt.Rio.Types.cache_cursor - Rio.Types.cache_base < 256 + 4096)

let test_cache_capacity_two_threads () =
  let prog =
    program ~name:"p"
      ~text:
        [
          label "main";
          mov ecx (i 0);
          label "loop"; inc ecx; call "h"; cmp ecx (i 400); j l "loop";
          out ecx; hlt;
          label "h"; ret;
        ]
      ()
  in
  let image = Asm.Assemble.assemble prog in
  let m = Vm.Machine.create () in
  ignore (Asm.Image.load m image);
  ignore (Asm.Image.spawn m image "main");
  let opts =
    { Rio.Options.default with
      cache_capacity = Some 128;
      flush_policy = Rio.Options.Flush_full;
      quantum = 700;
    }
  in
  let rt = Rio.create ~opts m in
  let o = Rio.run rt in
  checkb "completed" true (o.Rio.reason = Rio.All_exited);
  check_ilist "both threads correct" [ 400; 400 ] (Vm.Machine.output m);
  (* with two threads, flushes only happen when both reach a safe
     point simultaneously; otherwise the soft limit carries the run.
     Either way the capacity pressure must have been noticed. *)
  checkb "capacity pressure handled" true
    ((Rio.stats rt).Rio.Stats.cache_flushes >= 1 || rt.Rio.Types.flush_pending)

(* ------------------------------------------------------------------ *)
(* Fault transparency                                                 *)
(* ------------------------------------------------------------------ *)

let test_fault_surfaces () =
  let prog =
    program ~name:"p"
      ~text:[ label "main"; mov eax (i (-8)); mov ebx (mb eax); hlt ]
      ()
  in
  let _, o, _ = run_with prog in
  checkb "fault reported" true
    (match o.Rio.reason with Rio.App_fault _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "rio"
    [
      ( "instr levels",
        [
          Alcotest.test_case "bundle split" `Quick test_levels_bundle;
          Alcotest.test_case "level transitions" `Quick test_levels_transitions;
          Alcotest.test_case "raw copy encode" `Quick test_level_encode_copies_raw;
          Alcotest.test_case "cti re-encode" `Quick test_cti_reencoded_at_new_pc;
          Alcotest.test_case "note field" `Quick test_note_field;
        ] );
      ( "instrlist",
        [
          Alcotest.test_case "list ops" `Quick test_instrlist_ops;
          QCheck_alcotest.to_alcotest prop_instrlist_model;
        ] );
      ( "flags analysis",
        [
          Alcotest.test_case "dead after write" `Quick test_flags_dead;
          Alcotest.test_case "live via jcc" `Quick test_flags_live_via_jcc;
          Alcotest.test_case "live at exit" `Quick test_flags_live_at_exit;
          Alcotest.test_case "inc partial write" `Quick test_flags_inc_partial;
          Alcotest.test_case "written-before-read mask" `Quick test_written_before_read;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "runs a program" `Quick test_rio_runs_program;
          Alcotest.test_case "hot loop gets a trace" `Quick test_trace_created_for_hot_loop;
          Alcotest.test_case "cold code gets no trace" `Quick test_no_trace_below_threshold;
          Alcotest.test_case "links cut context switches" `Quick test_links_reduce_context_switches;
          Alcotest.test_case "table-1 configs equivalent" `Quick test_table1_config_equivalence;
          Alcotest.test_case "max-size block splits" `Quick test_max_size_block;
        ] );
      ( "client interface",
        [
          Alcotest.test_case "hook coverage" `Quick test_hook_coverage;
          Alcotest.test_case "bb hook sees code" `Quick test_bb_hook_sees_app_code;
          Alcotest.test_case "transform applies" `Quick test_client_transform_applies;
          Alcotest.test_case "clean calls" `Quick test_clean_call_counts_executions;
          Alcotest.test_case "transparent output" `Quick test_transparent_output;
        ] );
      ( "custom stubs",
        [
          Alcotest.test_case "stub executes on exit" `Quick test_custom_stub_executes_on_exit;
          Alcotest.test_case "always-through stub" `Quick test_custom_stub_always_through;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "decode roundtrip" `Quick test_decode_fragment_roundtrip;
          Alcotest.test_case "replace transform" `Quick test_replace_fragment_transform;
        ] );
      ( "custom traces",
        [
          Alcotest.test_case "mark trace head" `Quick test_mark_trace_head;
          Alcotest.test_case "end-trace directive" `Quick test_end_trace_directive;
        ] );
      ( "api edge cases",
        [
          Alcotest.test_case "trace threshold" `Quick test_trace_threshold_exact;
          Alcotest.test_case "ibl toggling" `Quick test_ibl_disabled_counts;
          Alcotest.test_case "replace missing tag" `Quick test_replace_missing_tag;
          Alcotest.test_case "nested stub exits rejected" `Quick test_nested_stub_exits_rejected;
          Alcotest.test_case "client abort from trace hook" `Quick test_client_abort_from_trace_hook;
          Alcotest.test_case "emulation builds nothing" `Quick test_emulate_builds_nothing;
        ] );
      ( "bounded cache",
        [
          Alcotest.test_case "capacity flush" `Quick test_cache_capacity_flush;
          Alcotest.test_case "two-thread capacity" `Quick test_cache_capacity_two_threads;
        ] );
      ( "self-modifying code",
        [
          Alcotest.test_case "native smc" `Quick test_smc_native;
          Alcotest.test_case "smc under rio" `Quick test_smc_under_rio;
          Alcotest.test_case "smc with clients" `Quick test_smc_with_clients;
        ] );
      ( "threads+signals",
        [
          Alcotest.test_case "two threads" `Quick test_rio_two_threads;
          Alcotest.test_case "thread-private caches" `Quick test_thread_private_caches;
          Alcotest.test_case "signal interception" `Quick test_signal_under_rio;
        ] );
      ("faults", [ Alcotest.test_case "fault surfaces" `Quick test_fault_surfaces ]);
    ]
