(** SynISA decoders, at three fidelities.

    DynamoRIO's adaptive level-of-detail representation rests on having
    decoders of graded cost:

    - {!boundary} only finds the instruction length (what Level-0/1
      construction needs),
    - {!opcode_eflags} additionally identifies the opcode — and hence
      the eflags effects — without building operands (Level 2),
    - {!full} produces a complete {!Insn.t} (Levels 3/4).

    All three share the length logic, so they agree on boundaries by
    construction; the test suite checks this with property tests anyway. *)

type error =
  | Invalid_opcode of int * int  (** position, offending byte *)
  | Invalid_modrm of int

let error_to_string = function
  | Invalid_opcode (pos, b) -> Printf.sprintf "invalid opcode 0x%02x at 0x%x" b pos
  | Invalid_modrm pos -> Printf.sprintf "invalid modrm at 0x%x" pos

exception Decode_error of error

type fetch = int -> int
(** A byte fetcher: [fetch addr] returns the byte at [addr] (0..255). *)

let fetch_bytes (b : Bytes.t) : fetch = fun i -> Char.code (Bytes.get b i)
let fetch_string (s : string) : fetch = fun i -> Char.code (String.get s i)

(* ------------------------------------------------------------------ *)
(* Low-level readers                                                  *)
(* ------------------------------------------------------------------ *)

let read_u8 (f : fetch) p = f p

let read_i8 (f : fetch) p =
  let v = f p in
  if v >= 128 then v - 256 else v

let read_u32 (f : fetch) p =
  f p lor (f (p + 1) lsl 8) lor (f (p + 2) lsl 16) lor (f (p + 3) lsl 24)

let read_i32 (f : fetch) p = Encoding_spec.to_i32 (read_u32 f p)

(* [modrm_len f p] = number of bytes occupied by the ModRM byte at [p]
   plus its SIB and displacement. *)
let modrm_len (f : fetch) p =
  let m = f p in
  let md = m lsr 6 and rm = m land 7 in
  if md = 3 then 1
  else
    let has_sib = rm = 4 in
    let sib_base = if has_sib then f (p + 1) land 7 else 0 in
    let disp_len =
      match md with
      | 1 -> 1
      | 2 -> 4
      | 0 -> if rm = 5 || (has_sib && sib_base = 5) then 4 else 0
      | _ -> assert false
    in
    1 + (if has_sib then 1 else 0) + disp_len

(* Full ModRM decode: returns (reg-field, operand, consumed bytes).
   [fp] selects whether a mod=3 rm is a GPR or an FP register. *)
let modrm_operand ?(fp = false) (f : fetch) p : int * Operand.t * int =
  let m = f p in
  let md = m lsr 6 and ext = (m lsr 3) land 7 and rm = m land 7 in
  if md = 3 then
    let op =
      if fp then Operand.Freg (Reg.F.make rm) else Operand.Reg (Reg.of_number rm)
    in
    (ext, op, 1)
  else
    let has_sib = rm = 4 in
    let sib = if has_sib then f (p + 1) else 0 in
    let after_sib = p + 1 + if has_sib then 1 else 0 in
    let base, index =
      if has_sib then
        let sc = 1 lsl (sib lsr 6)
        and ix = (sib lsr 3) land 7
        and bs = sib land 7 in
        let base =
          if bs = 5 && md = 0 then None else Some (Reg.of_number bs)
        in
        let index = if ix = 4 then None else Some (Reg.of_number ix, sc) in
        (base, index)
      else if rm = 5 && md = 0 then (None, None)
      else (Some (Reg.of_number rm), None)
    in
    let disp, disp_len =
      match md with
      | 1 -> (read_i8 f after_sib, 1)
      | 2 -> (read_i32 f after_sib, 4)
      | 0 ->
          if rm = 5 || (has_sib && sib land 7 = 5) then (read_i32 f after_sib, 4)
          else (0, 0)
      | _ -> assert false
    in
    (ext, Operand.Mem { base; index; disp }, after_sib - p + disp_len)

(* ------------------------------------------------------------------ *)
(* Shared opcode-byte classification                                  *)
(* ------------------------------------------------------------------ *)

(* What follows an opcode byte. *)
type tail =
  | T_none
  | T_imm8
  | T_imm32
  | T_modrm
  | T_modrm_imm8
  | T_modrm_imm32

let tail_len (f : fetch) p = function
  | T_none -> 0
  | T_imm8 -> 1
  | T_imm32 -> 4
  | T_modrm -> modrm_len f p
  | T_modrm_imm8 -> modrm_len f p + 1
  | T_modrm_imm32 -> modrm_len f p + 4

(* Classify a one-byte opcode: [Some (opcode, tail)] or [None].
   For two-byte opcodes (escape 0x0F) see [classify2]. *)
let classify1 b : (Opcode.t * tail) option =
  if b < 0x40 then
    let op = Encoding_spec.alu_of_index (b lsr 3) in
    match b land 7 with
    | 0 | 1 -> Some (op, T_modrm)
    | 2 -> Some (op, T_modrm_imm8)
    | 3 -> Some (op, T_modrm_imm32)
    | 4 -> Some (op, T_imm8)
    | 5 -> Some (op, T_imm32)
    | _ -> None
  else if b < 0x48 then Some (Inc, T_none)
  else if b < 0x50 then Some (Dec, T_none)
  else if b < 0x58 then Some (Push, T_none)
  else if b < 0x60 then Some (Pop, T_none)
  else
    match b with
    | 0x60 | 0x61 -> Some (Mov, T_modrm)
    | 0x62 -> Some (Mov, T_modrm_imm32)
    | 0x63 -> Some (Test, T_modrm)
    | 0x64 -> Some (Test, T_modrm_imm32)
    | 0x65 -> Some (Lea, T_modrm)
    | 0x66 -> Some (Xchg, T_modrm)
    | 0x67 -> Some (Imul, T_modrm)
    | b when b >= 0x68 && b < 0x70 -> Some (Mov, T_imm32)
    | b when b >= 0x70 && b < 0x80 -> Some (Jcc (Cond.of_number (b - 0x70)), T_imm8)
    | 0x80 -> Some (Jmp, T_imm8)
    | 0x81 -> Some (Jmp, T_imm32)
    | 0x82 -> Some (JmpInd, T_modrm)
    | 0x83 -> Some (Call, T_imm32)
    | 0x84 -> Some (CallInd, T_modrm)
    | 0x85 -> Some (Ret, T_none)
    | 0x86 -> Some (Push, T_modrm)
    | 0x87 -> Some (Pop, T_modrm)
    | 0x88 -> Some (Push, T_imm32)
    | 0x89 -> Some (Movzx8, T_modrm)
    | 0x8A -> Some (Movzx16, T_modrm)
    | 0x8B -> Some (Idiv, T_modrm)
    | 0x8C -> Some (Out, T_modrm)
    | 0x8D -> Some (In, T_modrm)
    | 0x8E -> Some (Pushf, T_none)
    | 0x8F -> Some (Popf, T_none)
    | 0x90 -> Some (Nop, T_none)
    | 0x98 -> Some (Neg, T_modrm)
    | 0x99 -> Some (Not, T_modrm)
    | 0x9A -> Some (Inc, T_modrm)
    | 0x9B -> Some (Dec, T_modrm)
    | 0x9C -> Some (Out, T_imm32)
    | 0x9D -> Some (Imul, T_modrm_imm32)
    | 0xA0 -> Some (Shl, T_modrm_imm8)
    | 0xA1 -> Some (Shr, T_modrm_imm8)
    | 0xA2 -> Some (Sar, T_modrm_imm8)
    | 0xA3 -> Some (Shl, T_modrm)
    | 0xA4 -> Some (Shr, T_modrm)
    | 0xA5 -> Some (Sar, T_modrm)
    | 0xF4 -> Some (Hlt, T_none)
    | _ -> None

let classify2 b2 : (Opcode.t * tail) option =
  match b2 with
  | 0x10 -> Some (Fld, T_modrm)
  | 0x11 -> Some (Fst, T_modrm)
  | 0x12 -> Some (Fmov, T_modrm)
  | 0x20 -> Some (Fadd, T_modrm)
  | 0x21 -> Some (Fsub, T_modrm)
  | 0x22 -> Some (Fmul, T_modrm)
  | 0x23 -> Some (Fdiv, T_modrm)
  | 0x28 -> Some (Fadd, T_modrm)
  | 0x29 -> Some (Fsub, T_modrm)
  | 0x2A -> Some (Fmul, T_modrm)
  | 0x2B -> Some (Fdiv, T_modrm)
  | 0x30 | 0x31 -> Some (Fcmp, T_modrm)
  | 0x38 -> Some (Fabs, T_modrm)
  | 0x39 -> Some (Fneg, T_modrm)
  | 0x3A -> Some (Fsqrt, T_modrm)
  | 0x40 -> Some (Cvtsi, T_modrm)
  | 0x41 -> Some (Cvtfi, T_modrm)
  | b when b >= 0x80 && b < 0x90 -> Some (Jcc (Cond.of_number (b - 0x80)), T_imm32)
  | 0xC0 -> Some (Ccall, T_imm32)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Level 0/1: boundary scan                                           *)
(* ------------------------------------------------------------------ *)

(** [boundary f pc] is the length of the instruction at [pc].  This is
    the cheapest decode: it never builds operands. *)
let boundary (f : fetch) (pc : int) : (int, error) result =
  let p0 = pc in
  let b = f pc in
  let pc, prefix = if b = Encoding_spec.lock_prefix then (pc + 1, 1) else (pc, 0) in
  let b = f pc in
  let cls, oplen =
    if b = Encoding_spec.escape then (classify2 (f (pc + 1)), 2) else (classify1 b, 1)
  in
  match cls with
  | None -> Error (Invalid_opcode (p0, b))
  | Some (_, tail) -> Ok (prefix + oplen + tail_len f (pc + oplen) tail)

(* ------------------------------------------------------------------ *)
(* Level 2: opcode + eflags                                           *)
(* ------------------------------------------------------------------ *)

(** [opcode_eflags f pc] identifies the opcode (hence its eflags mask)
    and the instruction length, without building operands. *)
let opcode_eflags (f : fetch) (pc : int) : (Opcode.t * int, error) result =
  let p0 = pc in
  let b = f pc in
  let pc, prefix = if b = Encoding_spec.lock_prefix then (pc + 1, 1) else (pc, 0) in
  let b = f pc in
  let cls, oplen =
    if b = Encoding_spec.escape then (classify2 (f (pc + 1)), 2) else (classify1 b, 1)
  in
  match cls with
  | None -> Error (Invalid_opcode (p0, b))
  | Some (op, tail) -> Ok (op, prefix + oplen + tail_len f (pc + oplen) tail)

(* ------------------------------------------------------------------ *)
(* Level 3: full decode                                               *)
(* ------------------------------------------------------------------ *)

(** [full f pc] fully decodes the instruction at [pc], reconstructing
    implicit operands and resolving pc-relative targets to absolute
    addresses.  Returns the instruction and its length. *)
let full (f : fetch) (pc : int) : (Insn.t * int, error) result =
  let start = pc in
  let b = f pc in
  let pc, prefixes =
    if b = Encoding_spec.lock_prefix then (pc + 1, Insn.prefix_lock) else (pc, 0)
  in
  let b = f pc in
  let finish insn len = Ok ({ insn with Insn.prefixes }, len) in
  try
    if b = Encoding_spec.escape then begin
      let b2 = f (pc + 1) in
      let p = pc + 2 in
      match classify2 b2 with
      | None -> Error (Invalid_opcode (start, b2))
      | Some (op, _) -> (
          match (op, b2) with
          | Jcc c, _ ->
              let rel = read_i32 f p in
              let len = p + 4 - start in
              finish (Insn.mk_jcc c (start + len + rel)) len
          | Ccall, _ ->
              let id = read_i32 f p in
              finish (Insn.mk_ccall id) (p + 4 - start)
          | Fld, _ -> (
              let ext, m, c = modrm_operand f p in
              match m with
              | Operand.Mem _ -> finish (Insn.mk_fld (Reg.F.make ext) m) (p + c - start)
              | _ -> Error (Invalid_modrm p))
          | Fst, _ -> (
              let ext, m, c = modrm_operand f p in
              match m with
              | Operand.Mem _ -> finish (Insn.mk_fst m (Reg.F.make ext)) (p + c - start)
              | _ -> Error (Invalid_modrm p))
          | Fmov, _ ->
              let ext, s, c = modrm_operand ~fp:true f p in
              (match s with
               | Operand.Freg fs -> finish (Insn.mk_fmov (Reg.F.make ext) fs) (p + c - start)
               | _ -> Error (Invalid_modrm p))
          | (Fadd | Fsub | Fmul | Fdiv), b2 ->
              let fp = b2 < 0x28 in
              let ext, s, c = modrm_operand ~fp f p in
              let d = Reg.F.make ext in
              (match (fp, s) with
               | true, Operand.Freg _ | false, Operand.Mem _ ->
                   finish (Insn.mk_fp_alu op d s) (p + c - start)
               | _ -> Error (Invalid_modrm p))
          | Fcmp, 0x30 ->
              let ext, s, c = modrm_operand ~fp:true f p in
              finish (Insn.mk_fcmp (Reg.F.make ext) s) (p + c - start)
          | Fcmp, _ -> (
              let ext, m, c = modrm_operand f p in
              match m with
              | Operand.Mem _ -> finish (Insn.mk_fcmp (Reg.F.make ext) m) (p + c - start)
              | _ -> Error (Invalid_modrm p))
          | (Fabs | Fneg | Fsqrt), _ ->
              let ext, _, c = modrm_operand ~fp:true f p in
              let freg = Reg.F.make ext in
              let mk =
                match op with
                | Opcode.Fabs -> Insn.mk_fabs
                | Opcode.Fneg -> Insn.mk_fneg
                | _ -> Insn.mk_fsqrt
              in
              finish (mk freg) (p + c - start)
          | Cvtsi, _ ->
              let ext, rm, c = modrm_operand f p in
              finish (Insn.mk_cvtsi (Reg.F.make ext) rm) (p + c - start)
          | Cvtfi, _ ->
              (* reg field = FP source, rm = GPR destination *)
              let ext, s, c = modrm_operand f p in
              (match s with
               | Operand.Reg _ ->
                   finish (Insn.mk_cvtfi s (Reg.F.make ext)) (p + c - start)
               | _ -> Error (Invalid_modrm p))
          | _ -> Error (Invalid_opcode (start, b2)))
    end
    else begin
      let p = pc + 1 in
      if b < 0x40 then begin
        let op = Encoding_spec.alu_of_index (b lsr 3) in
        let form = b land 7 in
        let mk_bin a bop =
          match op with
          | Opcode.Cmp -> Insn.mk_cmp a bop
          | _ -> Insn.mk_alu op a bop
        in
        match form with
        | 0 ->
            let ext, rm, c = modrm_operand f p in
            finish (mk_bin rm (Operand.Reg (Reg.of_number ext))) (p + c - start)
        | 1 ->
            let ext, rm, c = modrm_operand f p in
            finish (mk_bin (Operand.Reg (Reg.of_number ext)) rm) (p + c - start)
        | 2 ->
            let _, rm, c = modrm_operand f p in
            finish (mk_bin rm (Operand.Imm (read_i8 f (p + c)))) (p + c + 1 - start)
        | 3 ->
            let _, rm, c = modrm_operand f p in
            finish (mk_bin rm (Operand.Imm (read_i32 f (p + c)))) (p + c + 4 - start)
        | 4 -> finish (mk_bin (Operand.Reg Reg.Eax) (Operand.Imm (read_i8 f p))) (p + 1 - start)
        | 5 -> finish (mk_bin (Operand.Reg Reg.Eax) (Operand.Imm (read_i32 f p))) (p + 4 - start)
        | _ -> Error (Invalid_opcode (start, b))
      end
      else if b < 0x48 then finish (Insn.mk_inc (Operand.Reg (Reg.of_number (b - 0x40)))) (p - start)
      else if b < 0x50 then finish (Insn.mk_dec (Operand.Reg (Reg.of_number (b - 0x48)))) (p - start)
      else if b < 0x58 then finish (Insn.mk_push (Operand.Reg (Reg.of_number (b - 0x50)))) (p - start)
      else if b < 0x60 then finish (Insn.mk_pop (Operand.Reg (Reg.of_number (b - 0x58)))) (p - start)
      else if b >= 0x68 && b < 0x70 then
        finish
          (Insn.mk_mov (Operand.Reg (Reg.of_number (b - 0x68))) (Operand.Imm (read_i32 f p)))
          (p + 4 - start)
      else if b >= 0x70 && b < 0x80 then begin
        let rel = read_i8 f p in
        let len = p + 1 - start in
        finish (Insn.mk_jcc (Cond.of_number (b - 0x70)) (start + len + rel)) len
      end
      else
        match b with
        | 0x60 ->
            let ext, rm, c = modrm_operand f p in
            finish (Insn.mk_mov rm (Operand.Reg (Reg.of_number ext))) (p + c - start)
        | 0x61 ->
            let ext, rm, c = modrm_operand f p in
            finish (Insn.mk_mov (Operand.Reg (Reg.of_number ext)) rm) (p + c - start)
        | 0x62 ->
            let _, rm, c = modrm_operand f p in
            finish (Insn.mk_mov rm (Operand.Imm (read_i32 f (p + c)))) (p + c + 4 - start)
        | 0x63 ->
            let ext, rm, c = modrm_operand f p in
            finish (Insn.mk_test rm (Operand.Reg (Reg.of_number ext))) (p + c - start)
        | 0x64 ->
            let _, rm, c = modrm_operand f p in
            finish (Insn.mk_test rm (Operand.Imm (read_i32 f (p + c)))) (p + c + 4 - start)
        | 0x65 -> (
            let ext, m, c = modrm_operand f p in
            match m with
            | Operand.Mem _ ->
                finish (Insn.mk_lea (Operand.Reg (Reg.of_number ext)) m) (p + c - start)
            | _ -> Error (Invalid_modrm p))
        | 0x66 ->
            let ext, rm, c = modrm_operand f p in
            finish (Insn.mk_xchg (Operand.Reg (Reg.of_number ext)) rm) (p + c - start)
        | 0x67 ->
            let ext, rm, c = modrm_operand f p in
            finish (Insn.mk_imul (Operand.Reg (Reg.of_number ext)) rm) (p + c - start)
        | 0x80 ->
            let rel = read_i8 f p in
            let len = p + 1 - start in
            finish (Insn.mk_jmp (start + len + rel)) len
        | 0x81 ->
            let rel = read_i32 f p in
            let len = p + 4 - start in
            finish (Insn.mk_jmp (start + len + rel)) len
        | 0x82 ->
            let _, rm, c = modrm_operand f p in
            finish (Insn.mk_jmp_ind rm) (p + c - start)
        | 0x83 ->
            let rel = read_i32 f p in
            let len = p + 4 - start in
            finish (Insn.mk_call (start + len + rel)) len
        | 0x84 ->
            let _, rm, c = modrm_operand f p in
            finish (Insn.mk_call_ind rm) (p + c - start)
        | 0x85 -> finish (Insn.mk_ret ()) (p - start)
        | 0x86 ->
            let _, rm, c = modrm_operand f p in
            finish (Insn.mk_push rm) (p + c - start)
        | 0x87 ->
            let _, rm, c = modrm_operand f p in
            finish (Insn.mk_pop rm) (p + c - start)
        | 0x88 -> finish (Insn.mk_push (Operand.Imm (read_i32 f p))) (p + 4 - start)
        | 0x89 ->
            let ext, rm, c = modrm_operand f p in
            finish (Insn.mk_movzx8 (Operand.Reg (Reg.of_number ext)) rm) (p + c - start)
        | 0x8A ->
            let ext, rm, c = modrm_operand f p in
            finish (Insn.mk_movzx16 (Operand.Reg (Reg.of_number ext)) rm) (p + c - start)
        | 0x8B ->
            let _, rm, c = modrm_operand f p in
            finish (Insn.mk_idiv rm) (p + c - start)
        | 0x8C ->
            let _, rm, c = modrm_operand f p in
            (match rm with
             | Operand.Reg _ -> finish (Insn.mk_out rm) (p + c - start)
             | _ -> Error (Invalid_modrm p))
        | 0x8D ->
            let _, rm, c = modrm_operand f p in
            (match rm with
             | Operand.Reg _ -> finish (Insn.mk_in rm) (p + c - start)
             | _ -> Error (Invalid_modrm p))
        | 0x8E -> finish (Insn.mk_pushf ()) (p - start)
        | 0x8F -> finish (Insn.mk_popf ()) (p - start)
        | 0x90 -> finish (Insn.mk_nop ()) (p - start)
        | 0x98 ->
            let _, rm, c = modrm_operand f p in
            finish (Insn.mk_neg rm) (p + c - start)
        | 0x99 ->
            let _, rm, c = modrm_operand f p in
            finish (Insn.mk_not rm) (p + c - start)
        | 0x9A ->
            let _, rm, c = modrm_operand f p in
            finish (Insn.mk_inc rm) (p + c - start)
        | 0x9B ->
            let _, rm, c = modrm_operand f p in
            finish (Insn.mk_dec rm) (p + c - start)
        | 0x9C -> finish (Insn.mk_out (Operand.Imm (read_i32 f p))) (p + 4 - start)
        | 0x9D -> (
            let _, rm, c = modrm_operand f p in
            match rm with
            | Operand.Reg _ ->
                finish
                  (Insn.mk_imul rm (Operand.Imm (read_i32 f (p + c))))
                  (p + c + 4 - start)
            | _ -> Error (Invalid_modrm p))
        | (0xA0 | 0xA1 | 0xA2) as sb ->
            let op = match sb with 0xA0 -> Opcode.Shl | 0xA1 -> Opcode.Shr | _ -> Opcode.Sar in
            let _, rm, c = modrm_operand f p in
            finish (Insn.mk_shift op rm (Operand.Imm (read_u8 f (p + c)))) (p + c + 1 - start)
        | (0xA3 | 0xA4 | 0xA5) as sb ->
            let op = match sb with 0xA3 -> Opcode.Shl | 0xA4 -> Opcode.Shr | _ -> Opcode.Sar in
            let _, rm, c = modrm_operand f p in
            finish (Insn.mk_shift op rm (Operand.Reg Reg.Ecx)) (p + c - start)
        | 0xF4 -> finish (Insn.mk_hlt ()) (p - start)
        | _ -> Error (Invalid_opcode (start, b))
    end
  with Invalid_argument _ -> Error (Invalid_modrm start)

let full_exn f pc =
  match full f pc with Ok r -> r | Error e -> raise (Decode_error e)

let boundary_exn f pc =
  match boundary f pc with Ok r -> r | Error e -> raise (Decode_error e)

let opcode_eflags_exn f pc =
  match opcode_eflags f pc with Ok r -> r | Error e -> raise (Decode_error e)
