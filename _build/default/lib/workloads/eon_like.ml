(** eon-like: C++ ray tracer with virtual dispatch (SPEC2000 252.eon).

    Character: a hot loop invoking a {e virtual method} through an
    object's table pointer.  The receiver distribution is heavily
    skewed (most objects share one concrete type), so the adaptive
    indirect-branch-dispatch client converts most lookups into one
    inlined compare — the paper's flagship adaptive optimization win
    on integer/C++ codes. *)

open Asm.Dsl

let objects = 256
let rays = 9000

let text =
  [
    label "main";
    mov ebp esp;
    mov edx (i 0);
    mov edi (i 0);                     (* accumulated radiance *)
    label "ray";
    (* object for this ray *)
    mov eax edx;
    and_ eax (i (objects - 1));
    li ebx "vtables";
    mov eax (m ~base:ebx ~index:(eax, 4) ());   (* object -> method *)
    mov esi edx;                       (* "ray parameter" *)
    call_ind eax;
    add edi eax;
    inc edx;
    cmp edx (i rays);
    j l "ray";
    out edi;
    hlt;
    (* --- shade methods (one hot, two rare) --- *)
    label "shade_lambert";
    mov eax esi;
    imul eax (i 3);
    shr eax (i 2);
    add eax (i 64);
    ret;
    label "shade_mirror";
    mov eax esi;
    xor eax (i 0xFF00);
    shr eax (i 3);
    ret;
    label "shade_glass";
    mov eax esi;
    imul eax eax;
    shr eax (i 8);
    and_ eax (i 0xFFFF);
    ret;
  ]

let data =
  [
    label "vtables";
    Asm.Ast.Word32
      (List.init objects (fun k ->
           fun (env : Asm.Ast.env) ->
            (* ~90% lambert, ~8% mirror, ~2% glass *)
            if k mod 50 = 7 then env "shade_glass"
            else if k mod 12 = 3 then env "shade_mirror"
            else env "shade_lambert"));
  ]

let workload =
  Workload.make ~name:"eon" ~spec_name:"252.eon" ~fp:false
    ~description:
      "virtual-method dispatch with a skewed receiver distribution \
       (adaptive indirect-branch-dispatch showcase)"
    (program ~name:"eon" ~entry:"main" ~text ~data ())
