(** The five levels of instruction representation (paper §3.1, Fig. 2).

    - {b L0} — a bundle of raw bytes covering one or more un-decoded
      instructions; only the final boundary is known.
    - {b L1} — raw bytes of exactly one instruction.
    - {b L2} — opcode and eflags effects known; operands not decoded.
    - {b L3} — fully decoded, and the raw bytes are still valid (encode
      by copying them).
    - {b L4} — fully decoded but modified or newly created: no valid
      raw bytes, must be encoded from operands. *)

type t = L0 | L1 | L2 | L3 | L4

let to_int = function L0 -> 0 | L1 -> 1 | L2 -> 2 | L3 -> 3 | L4 -> 4
let of_int = function
  | 0 -> L0 | 1 -> L1 | 2 -> L2 | 3 -> L3 | 4 -> L4
  | n -> invalid_arg (Printf.sprintf "Level.of_int: %d" n)

let compare a b = Int.compare (to_int a) (to_int b)
let equal a b = to_int a = to_int b
let pp ppf l = Fmt.pf ppf "Level %d" (to_int l)
