lib/vm/arith.mli: Eflags Isa
