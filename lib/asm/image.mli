(** Assembled program images and loading them into a machine.  The
    standard layout places text at 4KB, data at 2MB, and the initial
    stack just under 8MB; everything at {!app_space_end} and above
    belongs to the runtime. *)

type t = {
  name : string;
  entry : int;
  text_base : int;
  text : Bytes.t;
  data_base : int;
  data : Bytes.t;
  labels : (string * int) list;
}

val default_text_base : int
val default_data_base : int
val default_stack_top : int
val app_space_end : int

val label : t -> string -> int
(** @raise Ast.Unknown_label when undefined. *)

val digest : t -> int
(** Stable 32-bit fingerprint of the image's code-relevant content
    (entry, section bases, text and data bytes).  The persistent code
    cache stores it so a saved fragment image is only ever warm-booted
    over the program it was translated from. *)

val load : ?stack_top:int -> Vm.Machine.t -> t -> Vm.Machine.thread
(** Copy text and data into machine memory; create the main thread at
    the entry point. *)

val load_cold : Vm.Machine.t -> t -> unit
(** Copy text and data into memory without touch/dirty marks and
    without creating a thread; for long-lived (pooled) machines whose
    between-request reset wipes only request-written pages. *)

val restore : Vm.Machine.t -> t -> zeroed:(int * int) list -> (int * int) list
(** Re-blit the image slices intersecting the just-zeroed ranges,
    returning the byte ranges rewritten. *)

val spawn : ?stack_size:int -> Vm.Machine.t -> t -> string -> Vm.Machine.thread
(** Add another thread entering at the given label, with its own stack. *)
