lib/workloads/mgrid_like.ml: Asm Isa List Workload
