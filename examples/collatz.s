# Collatz trajectory lengths — a demo program in SynISA textual
# assembly, runnable under the RIO runtime:
#
#   dune exec bin/rio_run.exe -- --file examples/collatz.s -c combined --stats
#
# Computes the total number of Collatz steps for 2..400 and the longest
# trajectory seen, then prints both.

.entry main

.text
main:
    mov  %edi, $0            ; total steps
    mov  %esi, $0            ; longest trajectory
    mov  %ebx, $2            ; current n
outer:
    mov  %eax, %ebx          ; walk this n
    mov  %ecx, $0            ; steps for this n
walk:
    cmp  %eax, $1
    jle  done_walk
    mov  %edx, %eax
    and  %edx, $1
    jz   even
    ; odd: n = 3n + 1
    imul %eax, $3
    inc  %eax
    jmp  step
even:
    shr  %eax, $1
step:
    inc  %ecx
    jmp  walk
done_walk:
    add  %edi, %ecx
    cmp  %ecx, %esi
    jle  not_longer
    mov  %esi, %ecx
not_longer:
    inc  %ebx
    cmp  %ebx, $400
    jle  outer
    out  %edi                ; total steps
    out  %esi                ; longest trajectory
    hlt
