lib/asm/assemble.mli: Ast Image
