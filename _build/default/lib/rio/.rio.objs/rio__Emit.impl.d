lib/rio/emit.ml: Array Buffer Bytes Char Decode Encode Hashtbl Insn Instr Instrlist Isa List Mangle Opcode Operand Option Options Printf Stats Types Vm
