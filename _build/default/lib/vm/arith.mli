(** 32-bit integer arithmetic with IA-32-style eflags computation.
    Values are unsigned ints in [0, 2{^32}); every helper returns the
    result together with the updated flags.  Flags IA-32 leaves
    undefined are given fixed deterministic definitions. *)

open Isa

val mask32 : int
val wrap : int -> int
val msb : int -> bool
val to_signed : int -> int
val of_signed : int -> int
val parity : int -> bool

type result = { value : int; flags : Eflags.t }

val add : ?carry_in:bool -> int -> int -> Eflags.t -> result
val sub : ?borrow_in:bool -> int -> int -> Eflags.t -> result

val inc : int -> Eflags.t -> result
(** Like [add 1] but CF is preserved — the asymmetry the
    strength-reduction client must respect. *)

val dec : int -> Eflags.t -> result
val land_ : int -> int -> Eflags.t -> result
val lor_ : int -> int -> Eflags.t -> result
val lxor_ : int -> int -> Eflags.t -> result
val neg : int -> Eflags.t -> result
val shl : int -> int -> Eflags.t -> result
val shr : int -> int -> Eflags.t -> result
val sar : int -> int -> Eflags.t -> result
val imul : int -> int -> Eflags.t -> result

exception Division_by_zero

val idiv : eax:int -> int -> Eflags.t -> int * int * Eflags.t
(** [(quotient, remainder, flags)]; truncated signed division. *)

val fcmp : float -> float -> Eflags.t -> Eflags.t
(** comisd-style: unordered sets ZF/PF/CF; [>] clears all; [<] sets CF;
    [=] sets ZF. *)
