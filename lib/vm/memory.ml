(** Flat little-endian byte memory for the simulated machine.

    Addresses are plain ints in [0, size).  Out-of-range accesses raise
    {!Fault}, which the machine surfaces as a program fault (the
    simulated equivalent of a segfault).

    The store is a private [/dev/zero] mapping: the kernel hands out
    zero pages on first touch, so creating a 64MB machine costs
    microseconds instead of a 64MB memset — the same trick a real VMM
    uses for guest RAM.  Byte loads and stores compile to direct
    unchecked accesses on the Bigarray. *)

exception Fault of { addr : int; size : int; write : bool }

type buf = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  bytes : buf;
  size : int;
  (* write-watching for code-cache consistency: one byte per 4KB page;
     stores into watched pages are recorded in [dirty] (the simulated
     analogue of write-protecting executed pages) *)
  watched_pages : Bytes.t;
  mutable dirty : (int * int) list;  (* [lo, hi) byte ranges *)
  (* write-touch tracking for warm instance reuse: one byte per 4KB
     page, set on any store.  {!zero_touched} wipes exactly the pages a
     run wrote, so resetting a machine between requests costs pages
     written, not address-space size. *)
  touched_pages : Bytes.t;
}

let page_bits = 12

let alloc_zeroed size : buf =
  match Unix.openfile "/dev/zero" [ Unix.O_RDWR ] 0 with
  | fd ->
      let ga =
        Unix.map_file fd Bigarray.int8_unsigned Bigarray.c_layout false
          [| size |]
      in
      Unix.close fd;
      Bigarray.array1_of_genarray ga
  | exception Unix.Unix_error _ ->
      (* no /dev/zero (exotic host): allocate and zero explicitly *)
      let a =
        Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout size
      in
      Bigarray.Array1.fill a 0;
      a

let create size =
  {
    bytes = alloc_zeroed size;
    size;
    watched_pages = Bytes.make ((size lsr page_bits) + 1) '\000';
    dirty = [];
    touched_pages = Bytes.make ((size lsr page_bits) + 1) '\000';
  }

let size m = m.size

(** Watch the pages covering [addr, addr+len): subsequent writes there
    are recorded as dirty ranges. *)
let watch_code m ~addr ~len =
  for p = addr lsr page_bits to (addr + len - 1) lsr page_bits do
    Bytes.unsafe_set m.watched_pages p '\001'
  done

let has_dirty m = m.dirty <> []

let take_dirty m =
  let d = m.dirty in
  m.dirty <- [];
  d

let note_write m addr n =
  let p0 = addr lsr page_bits and p1 = (addr + n - 1) lsr page_bits in
  for p = p0 to p1 do
    Bytes.unsafe_set m.touched_pages p '\001'
  done;
  if
    Bytes.unsafe_get m.watched_pages p0 <> '\000'
    || Bytes.unsafe_get m.watched_pages p1 <> '\000'
  then m.dirty <- (addr, addr + n) :: m.dirty

let check m addr n write =
  if addr < 0 || addr + n > m.size then raise (Fault { addr; size = n; write });
  if write then note_write m addr n

let read_u8 m addr =
  check m addr 1 false;
  Bigarray.Array1.unsafe_get m.bytes addr

let write_u8 m addr v =
  check m addr 1 true;
  Bigarray.Array1.unsafe_set m.bytes addr (v land 0xFF)

let read_u16 m addr =
  check m addr 2 false;
  Bigarray.Array1.unsafe_get m.bytes addr
  lor (Bigarray.Array1.unsafe_get m.bytes (addr + 1) lsl 8)

let write_u16 m addr v =
  check m addr 2 true;
  Bigarray.Array1.unsafe_set m.bytes addr (v land 0xFF);
  Bigarray.Array1.unsafe_set m.bytes (addr + 1) ((v lsr 8) land 0xFF)

(** 32-bit reads return an unsigned value in [0, 2^32). *)
let read_u32 m addr =
  check m addr 4 false;
  let b = m.bytes in
  Bigarray.Array1.unsafe_get b addr
  lor (Bigarray.Array1.unsafe_get b (addr + 1) lsl 8)
  lor (Bigarray.Array1.unsafe_get b (addr + 2) lsl 16)
  lor (Bigarray.Array1.unsafe_get b (addr + 3) lsl 24)

let write_u32 m addr v =
  check m addr 4 true;
  let b = m.bytes in
  Bigarray.Array1.unsafe_set b addr (v land 0xFF);
  Bigarray.Array1.unsafe_set b (addr + 1) ((v lsr 8) land 0xFF);
  Bigarray.Array1.unsafe_set b (addr + 2) ((v lsr 16) land 0xFF);
  Bigarray.Array1.unsafe_set b (addr + 3) ((v lsr 24) land 0xFF)

(* f64 values travel through an int64 built from two 32-bit halves
   (a 63-bit OCaml int cannot carry all 64 payload bits) *)

let read_f64 m addr =
  check m addr 8 false;
  let b = m.bytes in
  let half o =
    Bigarray.Array1.unsafe_get b (addr + o)
    lor (Bigarray.Array1.unsafe_get b (addr + o + 1) lsl 8)
    lor (Bigarray.Array1.unsafe_get b (addr + o + 2) lsl 16)
    lor (Bigarray.Array1.unsafe_get b (addr + o + 3) lsl 24)
  in
  Int64.float_of_bits
    (Int64.logor
       (Int64.of_int (half 0))
       (Int64.shift_left (Int64.of_int (half 4)) 32))

let write_f64 m addr v =
  check m addr 8 true;
  let bits = Int64.bits_of_float v in
  let lo = Int64.to_int (Int64.logand bits 0xFFFF_FFFFL) in
  let hi = Int64.to_int (Int64.shift_right_logical bits 32) in
  let b = m.bytes in
  Bigarray.Array1.unsafe_set b addr (lo land 0xFF);
  Bigarray.Array1.unsafe_set b (addr + 1) ((lo lsr 8) land 0xFF);
  Bigarray.Array1.unsafe_set b (addr + 2) ((lo lsr 16) land 0xFF);
  Bigarray.Array1.unsafe_set b (addr + 3) ((lo lsr 24) land 0xFF);
  Bigarray.Array1.unsafe_set b (addr + 4) (hi land 0xFF);
  Bigarray.Array1.unsafe_set b (addr + 5) ((hi lsr 8) land 0xFF);
  Bigarray.Array1.unsafe_set b (addr + 6) ((hi lsr 16) land 0xFF);
  Bigarray.Array1.unsafe_set b (addr + 7) ((hi lsr 24) land 0xFF)

(** Bulk read of [len] bytes starting at [addr]: one bounds check for
    the whole range instead of [len] bounds-checked byte fetches. *)
let read_bytes m ~addr ~len =
  check m addr len false;
  let b = m.bytes in
  Bytes.init len (fun i -> Char.unsafe_chr (Bigarray.Array1.unsafe_get b (addr + i)))

(** Bulk copy [len] bytes of [src] starting at [src_pos] into memory. *)
let blit_bytes m ~src ~src_pos ~dst ~len =
  check m dst len true;
  let b = m.bytes in
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set b (dst + i)
      (Char.code (Bytes.unsafe_get src (src_pos + i)))
  done

(** Bulk copy without write tracking: neither marks pages touched nor
    records dirty ranges.  For loaders that restore known-good image
    bytes and must not perturb the watch/touch state (warm reuse). *)
let blit_bytes_raw m ~src ~src_pos ~dst ~len =
  if dst < 0 || dst + len > m.size then
    raise (Fault { addr = dst; size = len; write = true });
  let b = m.bytes in
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set b (dst + i)
      (Char.code (Bytes.unsafe_get src (src_pos + i)))
  done

(** Zero every page below [below] that has been written since the last
    call, clearing its touch mark; returns the zeroed [lo, hi) ranges
    (page-granular, coalesced).  [below] must be page-aligned. *)
let zero_touched m ~below =
  let npages = min (below lsr page_bits) ((m.size lsr page_bits) + 1) in
  let ranges = ref [] in
  let p = ref 0 in
  while !p < npages do
    if Bytes.unsafe_get m.touched_pages !p <> '\000' then begin
      let q = ref !p in
      while !q < npages && Bytes.unsafe_get m.touched_pages !q <> '\000' do
        Bytes.unsafe_set m.touched_pages !q '\000';
        incr q
      done;
      let lo = !p lsl page_bits in
      let hi = min m.size (!q lsl page_bits) in
      Bigarray.Array1.fill (Bigarray.Array1.sub m.bytes lo (hi - lo)) 0;
      ranges := (lo, hi) :: !ranges;
      p := !q
    end
    else incr p
  done;
  List.rev !ranges

(** Byte-equality of [a] and [b] over [addr, addr+len). *)
let equal_range (a : t) (b : t) ~addr ~len =
  if addr < 0 || addr + len > a.size || addr + len > b.size then
    raise (Fault { addr; size = len; write = false });
  let ba = a.bytes and bb = b.bytes in
  let rec go i =
    i >= len
    || Bigarray.Array1.unsafe_get ba (addr + i)
         = Bigarray.Array1.unsafe_get bb (addr + i)
       && go (i + 1)
  in
  go 0

let blit_string m ~src ~dst =
  let len = String.length src in
  check m dst len true;
  let b = m.bytes in
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set b (dst + i) (Char.code (String.unsafe_get src i))
  done

(** A {!Isa.Decode.fetch} view of this memory (bounds-checked). *)
let fetch (m : t) : Isa.Decode.fetch = fun addr -> read_u8 m addr
