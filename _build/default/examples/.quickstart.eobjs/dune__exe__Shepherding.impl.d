examples/shepherding.ml: Asm Buffer Clients Isa List Option Printf Rio String Vm Workloads
