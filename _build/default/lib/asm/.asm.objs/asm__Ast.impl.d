lib/asm/ast.ml: Isa
