(** Runtime lifecycle: create a RIO instance over a machine, run the
    application under the code cache, and reset a finished instance
    for reuse on the next request while keeping its cache warm.

    [Rio] (the library's public face) re-exports everything here; this
    lives below it so {!Pool} can drive instances without a dependency
    cycle through the facade. *)

open Types

type t = runtime

type stop_reason =
  | All_exited
  | App_fault of string
  | Cycle_limit
  | Deadline_exceeded
      (** the per-request watchdog (see {!set_watchdog}) fired: the run
          was preempted at a fragment boundary *)
  | Crashed of string
      (** produced only by {!Pool}'s exception barrier, never by
          {!run}: an uncaught exception escaped the engine *)

type outcome = {
  reason : stop_reason;
  cycles : int;
  insns : int;
}

let stats (rt : t) = rt.stats
let machine (rt : t) = rt.machine
let options (rt : t) = rt.opts
let flow_log (rt : t) = List.rev rt.flow_log

let create ?(opts = Options.default) ?(client = null_client) (m : Vm.Machine.t) : t
    =
  if Vm.Memory.size (Vm.Machine.mem m) <= cache_base then
    rio_error "machine memory too small for a code cache (need > 16MB)";
  Options.validate_exn opts;
  m.Vm.Machine.trap_base <- trap_base;
  m.Vm.Machine.intercept_signals <- not opts.Options.emulate;
  m.Vm.Machine.smc_trap <- not opts.Options.emulate;
  (* A bounded capacity under the FIFO policy gets a pair of free-list
     allocators (half each for basic blocks and traces) and the bump
     cursor pinned at the region end, so transparent heap allocations
     can never grow into the managed cache.  Otherwise the historical
     bump-and-flush scheme is selected by [cache_alloc = None]. *)
  let cache_alloc, cursor0 =
    match (opts.Options.cache_capacity, opts.Options.flush_policy) with
    | Some cap, Options.Flush_fifo ->
        let bb_size = cap / 2 in
        let bb = Cachealloc.create ~base:cache_base ~size:bb_size () in
        let tr =
          Cachealloc.create ~base:(cache_base + bb_size) ~size:(cap - bb_size) ()
        in
        (Some (bb, tr), cache_base + cap)
    | _ -> (None, cache_base)
  in
  {
    machine = m;
    opts;
    stats = Stats.create ();
    client;
    thread_states = [];
    exits_by_id = Array.make 1024 None;
    next_exit_id = 1;
    ccalls = Hashtbl.create 64;
    next_ccall_id = 1;
    cache_cursor = cursor0;
    cache_end = Vm.Memory.size (Vm.Machine.mem m);
    heap_cursor = Vm.Memory.size (Vm.Machine.mem m);
    flush_pending = false;
    cache_alloc;
    fifo_bb = Queue.create ();
    fifo_trace = Queue.create ();
    client_output = Buffer.create 256;
    client_global = None;
    flow_log = [];
    log_flow = false;
    client_failures = 0;
    client_quarantined = false;
    fi_state =
      (match opts.Options.faults with
      | Some f -> if f.Options.fi_seed = 0 then 0x9e3779b9 else f.Options.fi_seed
      | None -> 0);
    fi_hook_pending = false;
    watchdog = None;
    recover_attempts = Hashtbl.create 16;
    emulate_only = Hashtbl.create 16;
  }

let enable_flow_log (rt : t) = rt.log_flow <- true

(** Arm (or disarm, with [None]) the per-request watchdog.  The probe
    is polled at dispatcher safe points and quantum boundaries; once it
    returns true the run stops with {!Deadline_exceeded} at the next
    fragment boundary.  The pool arms it with a cycle budget and a
    wall-clock bound before each request and disarms it after, so a
    warm instance never carries a stale deadline into the next
    request. *)
let set_watchdog (rt : t) (probe : (unit -> bool) option) : unit =
  rt.watchdog <- probe

let make_thread_state (rt : t) (thread : Vm.Machine.thread) : thread_state =
  let ts =
    {
      ts_tid = thread.Vm.Machine.tid;
      thread;
      next_tag = thread.Vm.Machine.pc;
      index = Fragindex.create ();
      tracegen = None;
      client_field = None;
      exited = false;
      in_cache = false;
    }
  in
  rt.thread_states <- rt.thread_states @ [ ts ];
  ts

(** Find the warm per-tid state for a new request's thread, or create
    one.  The fragment index — the warm cache — is what reuse keeps. *)
let attach_thread_state (rt : t) (thread : Vm.Machine.thread) : thread_state =
  match
    List.find_opt (fun ts -> ts.ts_tid = thread.Vm.Machine.tid) rt.thread_states
  with
  | Some ts ->
      ts.thread <- thread;
      ts.next_tag <- thread.Vm.Machine.pc;
      ts.tracegen <- None;
      ts.client_field <- None;
      ts.exited <- false;
      ts.in_cache <- false;
      ts
  | None -> make_thread_state rt thread

(** Reset a finished instance so the next request starts from a clean
    machine while the code cache, fragment indexes, and traces stay
    warm.  [restore] re-blits the program-image slices covering the
    just-zeroed pages (see {!Asm.Image.restore}), returning the ranges
    it rewrote.

    Pages the previous request wrote below the cache are zeroed;
    fragments built from bytes on those pages (self-modifying or
    data-resident code) are flushed before the image comes back, so a
    stale body can never serve a tag whose source bytes reverted. *)
let reset_for_reuse (rt : t)
    ~(restore : Vm.Machine.t -> zeroed:(int * int) list -> (int * int) list) :
    unit =
  let m = rt.machine in
  List.iter
    (fun ts ->
      Trace.abort_tracegen rt ts;
      ts.in_cache <- false)
    rt.thread_states;
  let flush ranges =
    match (rt.thread_states, ranges) with
    | ts :: _, _ :: _ -> ignore (Emit.flush_ranges rt ts ranges)
    | _ -> ()
  in
  (* code writes the previous request left unsettled (SMC detected but
     not yet flushed at its end) *)
  let leftover =
    m.Vm.Machine.pending_smc @ Vm.Memory.take_dirty (Vm.Machine.mem m)
  in
  flush leftover;
  Vm.Machine.reset_for_run m;
  let mem = Vm.Machine.mem m in
  let zeroed = Vm.Memory.zero_touched mem ~below:cache_base in
  flush zeroed;
  let restored = restore m ~zeroed in
  List.iter
    (fun (lo, hi) -> Vm.Machine.invalidate_icache m ~addr:lo ~len:(hi - lo))
    zeroed;
  List.iter
    (fun (lo, hi) -> Vm.Machine.invalidate_icache m ~addr:lo ~len:(hi - lo))
    restored;
  (* the reset itself must not read as self-modification *)
  ignore (Vm.Memory.take_dirty mem);
  (* warm traces keep their speculative guards (like the successor
     profiles that justified them) but each request gets a fresh
     violation budget: a previous request's near-misses must not push a
     surviving trace over the despeculation threshold *)
  List.iter
    (fun ts ->
      Fragindex.iter_traces ts.index (fun _ f ->
          List.iter
            (fun g ->
              g.g_violations <- 0;
              g.g_burst <- 0;
              g.g_last_violation <- 0)
            f.guards))
    rt.thread_states;
  Buffer.clear rt.client_output;
  rt.flow_log <- []

(** Run the whole application under RIO: round-robin over threads,
    dispatching and executing out of thread-private code caches. *)
let run (rt : t) : outcome =
  let m = rt.machine in
  let c0 = Vm.Machine.cycles m in
  let i0 = m.Vm.Machine.insns_retired in
  Guard.protect rt ~hook:"init" (fun () -> rt.client.init rt);
  List.iter
    (fun th ->
      let ts = attach_thread_state rt th in
      Guard.protect rt ~hook:"thread_init" (fun () ->
          rt.client.thread_init { rt; ts }))
    (Vm.Machine.live_threads m);
  let deadline = c0 + rt.opts.Options.max_cycles in
  let fault = ref None in
  let preempted = ref false in
  let kill_all () =
    List.iter (fun t -> t.Vm.Machine.alive <- false) m.Vm.Machine.threads
  in
  (* quantum-boundary watchdog poll: a fragment linked into a tight
     self-loop never reaches a dispatcher safe point, so the per-quantum
     check here is what bounds even fully cache-resident spins *)
  let watchdog_fired () =
    match rt.watchdog with
    | None -> false
    | Some probe ->
        let fired = probe () in
        if fired && not !preempted then begin
          preempted := true;
          rt.stats.Stats.deadline_preempts <-
            rt.stats.Stats.deadline_preempts + 1;
          log_flow rt "watchdog: request deadline exceeded";
          kill_all ()
        end;
        fired
  in
  let rec loop () =
    let runnable =
      List.filter
        (fun ts -> ts.thread.Vm.Machine.alive && not ts.exited)
        rt.thread_states
    in
    if
      runnable <> [] && !fault = None && (not !preempted)
      && Vm.Machine.cycles m < deadline
      && not (watchdog_fired ())
    then begin
      List.iter
        (fun ts ->
          if ts.thread.Vm.Machine.alive && !fault = None && not !preempted then
            match Dispatch.run_quantum rt ts with
            | exception Client_abort msg ->
                fault := Some ("terminated by client: " ^ msg);
                List.iter
                  (fun t -> t.Vm.Machine.alive <- false)
                  m.Vm.Machine.threads
            | exception Emit.Cache_full ->
                fault := Some "code cache exhausted (runtime region full)";
                List.iter
                  (fun t -> t.Vm.Machine.alive <- false)
                  m.Vm.Machine.threads
            | exception Rio_error msg ->
                (* runtime invariant violation or client API misuse *)
                fault := Some ("runtime error: " ^ msg);
                List.iter
                  (fun t -> t.Vm.Machine.alive <- false)
                  m.Vm.Machine.threads
            | Dispatch.Q_budget -> ()
            | Dispatch.Q_deadline ->
                if not !preempted then begin
                  preempted := true;
                  rt.stats.Stats.deadline_preempts <-
                    rt.stats.Stats.deadline_preempts + 1;
                  log_flow rt "watchdog: request deadline exceeded"
                end;
                kill_all ()
            | Dispatch.Q_thread_done ->
                ts.thread.Vm.Machine.alive <- false;
                Guard.protect rt ~hook:"thread_exit" (fun () ->
                    rt.client.thread_exit { rt; ts });
                ts.exited <- true
            | Dispatch.Q_fault f ->
                fault := Some f;
                List.iter
                  (fun t -> t.Vm.Machine.alive <- false)
                  m.Vm.Machine.threads)
        runnable;
      loop ()
    end
  in
  loop ();
  (* threads killed by a fault still get their exit hooks *)
  List.iter
    (fun ts ->
      if not ts.exited then begin
        Guard.protect rt ~hook:"thread_exit" (fun () ->
            rt.client.thread_exit { rt; ts });
        ts.exited <- true
      end)
    rt.thread_states;
  Guard.protect rt ~hook:"exit" (fun () -> rt.client.exit_hook rt);
  let reason =
    match !fault with
    | Some f -> App_fault f
    | None ->
        if !preempted then Deadline_exceeded
        else if Vm.Machine.cycles m >= deadline then Cycle_limit
        else All_exited
  in
  { reason; cycles = Vm.Machine.cycles m - c0; insns = m.Vm.Machine.insns_retired - i0 }

(* ---------------- persistent cache images (DESIGN.md §6.8) ------- *)

(** Serialize this instance's warm code cache and index knowledge to a
    relocatable on-disk image; see {!Persist.save}.  [image_digest]
    should be {!Asm.Image.digest} of the program being served. *)
let save_image (rt : t) ~(image_digest : int) ~(path : string) : int =
  Persist.save rt ~image_digest ~path

(** Warm-boot a freshly created instance from a saved image; see
    {!Persist.load}.  Must run before the first request. *)
let load_image (rt : t) ~(image_digest : int) ~(path : string) :
    (Persist.summary, Persist.error) result =
  Persist.load rt ~image_digest ~path

(** Seed a new instance's per-tid index with application knowledge
    harvested from another worker — trace-head counters, successor
    profiles, despeculation verdicts — so its first requests build
    traces (and skip doomed speculations) immediately instead of
    re-learning.  Entries are [(tag, head, profile, nospec)]; profile
    records are copied, never shared across instances.  Must run
    before the instance's first request for a brand-new tid. *)
let prewarm (rt : t) ~(tid : int)
    (entries : (int * int * Fragindex.profile option * bool) list) : unit =
  if entries <> [] then begin
    let fresh = not (List.exists (fun ts -> ts.ts_tid = tid) rt.thread_states) in
    let ts = Persist.thread_state_for rt tid in
    List.iter
      (fun (tag, head, prof, nospec) ->
        let e = Fragindex.ensure ts.index tag in
        e.Fragindex.head <- max e.Fragindex.head head;
        if nospec then e.Fragindex.nospec <- true;
        match (prof, e.Fragindex.prof) with
        | Some p, None -> e.Fragindex.prof <- Some (Fragindex.copy_profile p)
        | Some p, Some mine ->
            (* seeded on top of a loaded image: fold, don't clobber *)
            Fragindex.merge_profile ~src:p mine
        | None, _ -> ())
      entries;
    (* drop any thread fabricated just to mint the tid; the state (and
       its seeded index) re-attaches on the first real request *)
    if fresh then Vm.Machine.reset_for_run rt.machine
  end

let stop_reason_to_string = function
  | All_exited -> "all threads exited"
  | App_fault f -> "application fault: " ^ f
  | Cycle_limit -> "cycle limit reached"
  | Deadline_exceeded -> "request deadline exceeded"
  | Crashed msg -> "worker crashed: " ^ msg
