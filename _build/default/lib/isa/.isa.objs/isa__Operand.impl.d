lib/isa/operand.ml: Fmt Option Reg
