(** Two-pass assembler with branch relaxation.

    Layout iterates to a fixed point: instruction lengths depend on
    label addresses (rel8 vs rel32 branch forms, disp8 vs disp32), and
    label addresses depend on lengths.  Each pass recomputes every
    item's size under the current label table; in practice this
    converges in two or three passes (a safety bound guards against
    pathological oscillation). *)

open Isa

exception Assembly_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Assembly_error s)) fmt

type laid_item = { item : Ast.item; mutable addr : int; mutable size : int }

let item_size (env : Ast.env) ~addr (it : Ast.item) : int =
  match it with
  | Ast.Label _ -> 0
  | Ast.Align n ->
      if n <= 0 then err "align %d" n
      else (n - (addr mod n)) mod n
  | Ast.Bytes_lit s -> String.length s
  | Ast.Word32 ws -> 4 * List.length ws
  | Ast.Float64 fs -> 8 * List.length fs
  | Ast.Space n -> n
  | Ast.Ins f -> (
      let insn = f env in
      match Encode.encode ~pc:addr insn with
      | Ok b -> Bytes.length b
      | Error e ->
          err "cannot encode %s: %s" (Disasm.insn_to_string insn)
            (Encode.error_to_string e))

(* Collect label definitions in a segment under the current layout. *)
let collect_labels (items : laid_item list) (tbl : (string, int) Hashtbl.t) =
  List.iter
    (fun li ->
      match li.item with
      | Ast.Label name ->
          if Hashtbl.mem tbl name then raise (Ast.Duplicate_label name);
          Hashtbl.replace tbl name li.addr
      | _ -> ())
    items

let assemble ?(text_base = Image.default_text_base)
    ?(data_base = Image.default_data_base) (p : Ast.program) : Image.t =
  let text = List.map (fun item -> { item; addr = 0; size = 0 }) p.text in
  let data = List.map (fun item -> { item; addr = 0; size = 0 }) p.data in
  let labels : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let env name =
    match Hashtbl.find_opt labels name with
    | Some a -> a
    | None -> raise (Ast.Unknown_label name)
  in
  (* Pass 0: lay out with all unknown labels at the segment base, so
     every size is defined; then iterate to fixed point. *)
  let layout ~first =
    let place base items =
      let addr = ref base in
      List.iter
        (fun li ->
          li.addr <- !addr;
          let env name =
            if first then Option.value (Hashtbl.find_opt labels name) ~default:base
            else env name
          in
          li.size <- item_size env ~addr:!addr li.item;
          addr := !addr + li.size)
        items
    in
    place text_base text;
    place data_base data;
    Hashtbl.reset labels;
    collect_labels text labels;
    collect_labels data labels
  in
  layout ~first:true;
  let snapshot () = List.map (fun li -> (li.addr, li.size)) (text @ data) in
  let rec converge n prev =
    if n > 100 then err "branch relaxation did not converge";
    layout ~first:false;
    let cur = snapshot () in
    if cur <> prev then converge (n + 1) cur
  in
  converge 0 (snapshot ());
  (* Final emission *)
  let emit_segment base (items : laid_item list) : Bytes.t =
    let total =
      List.fold_left (fun acc li -> max acc (li.addr + li.size - base)) 0 items
    in
    let out = Bytes.make total '\000' in
    List.iter
      (fun li ->
        let off = li.addr - base in
        match li.item with
        | Ast.Label _ | Ast.Align _ | Ast.Space _ -> ()
        | Ast.Bytes_lit s -> Bytes.blit_string s 0 out off (String.length s)
        | Ast.Word32 ws ->
            List.iteri
              (fun k w ->
                let v = w env land 0xFFFF_FFFF in
                Bytes.set_int32_le out (off + (4 * k)) (Int32.of_int v))
              ws
        | Ast.Float64 fs ->
            List.iteri
              (fun k v -> Bytes.set_int64_le out (off + (8 * k)) (Int64.bits_of_float v))
              fs
        | Ast.Ins f -> (
            let insn = f env in
            match Encode.encode ~pc:li.addr insn with
            | Ok b ->
                if Bytes.length b <> li.size then
                  err "size drift on %s: laid %d, encoded %d"
                    (Disasm.insn_to_string insn) li.size (Bytes.length b);
                Bytes.blit b 0 out off (Bytes.length b)
            | Error e ->
                err "cannot encode %s: %s" (Disasm.insn_to_string insn)
                  (Encode.error_to_string e)))
      items;
    out
  in
  let text_bytes = emit_segment text_base text in
  let data_bytes = emit_segment data_base data in
  let entry =
    match Hashtbl.find_opt labels p.entry with
    | Some a -> a
    | None -> err "entry label %S undefined" p.entry
  in
  {
    Image.name = p.name;
    entry;
    text_base;
    text = text_bytes;
    data_base;
    data = data_bytes;
    labels = Hashtbl.fold (fun k v acc -> (k, v) :: acc) labels [];
  }
