(** gcc-like: compiler phases with little code reuse (SPEC2000 176.gcc).

    Character: a very large static code footprint executed briefly —
    dozens of distinct "phase" routines, each run only a few times.
    Code-cache systems cannot amortize block-building (let alone trace
    and optimization) costs here; the paper shows gcc {e slowing down}
    under every optimization configuration.  The phases are generated
    programmatically, each with its own distinct straight-line body. *)

open Asm.Dsl

let n_phases = 48
let outer = 140

(* a distinct small routine per phase: varied instruction mixes so the
   bodies don't share cache-friendly structure *)
let phase k =
  let a = 3 + (k mod 7) and b = 1 + (k mod 5) in
  [ label (Printf.sprintf "phase%d" k); mov eax edi ]
  @ (match k mod 4 with
    | 0 -> [ shl eax (i (k mod 13)); add eax (i (k * 17)); xor eax (i (k * 29)) ]
    | 1 -> [ imul eax (i a); sub eax (i (k * 13)); not_ eax ]
    | 2 ->
        [
          li ebx "pool";
          mov ecx (mb ebx ~disp:(4 * (k mod 64)));
          add eax ecx;
          shr eax (i b);
        ]
    | _ -> [ neg eax; and_ eax (i 0x7FFFFFFF); add eax (i k) ])
  @ [
      (* a small per-phase loop so each phase has a back edge (enough
         to tempt the trace selector into wasted work) *)
      mov ecx (i (2 + (k mod 3)));
      label (Printf.sprintf "ploop%d" k);
      add eax (i b);
      dec ecx;
      j nz (Printf.sprintf "ploop%d" k);
      add edi eax;
      ret;
    ]

let text =
  [
    label "main";
    mov ebp esp;
    mov edi (i 0x1357);
    mov edx (i 0);
    label "compile";
  ]
  @ List.concat_map (fun k -> [ call (Printf.sprintf "phase%d" k) ]) (List.init n_phases Fun.id)
  @ [
      inc edx;
      cmp edx (i outer);
      j l "compile";
      out edi;
      hlt;
    ]
  @ List.concat_map phase (List.init n_phases Fun.id)

let data = [ label "pool"; word32 (Workload.lcg ~seed:5 64) ]

let workload =
  Workload.make ~name:"gcc" ~spec_name:"176.gcc" ~fp:false
    ~description:
      "many distinct routines each executed a handful of times: block-build \
       and optimization costs cannot be amortized"
    (program ~name:"gcc" ~entry:"main" ~text ~data ())
