(** Differential tests for the trace optimizer (DESIGN.md §6.4).

    The core property: running a safe straight-line program through the
    VM gives the same final machine state — every GPR, every FP
    register, the arithmetic flags, the output stream and both scratch
    memory regions — whether or not the [-O] passes rewrote it first,
    and the passes never increase the instruction count.  Directed
    units pin the conservatism boundaries (end of list, exit CTIs,
    undecoded bundles) and prove each structural peephole can fire. *)

open Isa

let check = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Harness: encode an IL, execute it, capture the full final state    *)
(* ------------------------------------------------------------------ *)

let code_base = 0x1000
let ebp_base = 0x20000
let esi_base = 0x30000
let stack_top = 0x50000

type final = {
  f_regs : int array;
  f_fregs : int64 array;
  f_flags : int;
  f_out : int list;
  f_ebp_mem : Bytes.t;
  f_esi_mem : Bytes.t;
  f_stack_mem : Bytes.t;
}

let il_of_insns (insns : Insn.t list) : Rio.Instrlist.t =
  let il = Rio.Instrlist.create () in
  List.iter (fun i -> Rio.Instrlist.append il (Rio.Create.of_insn i)) insns;
  il

(* Encode the IL followed by a terminating [hlt].  The [hlt] is outside
   the optimized region on purpose: the passes must already be fully
   conservative at the bare end of the list. *)
let encode_il (il : Rio.Instrlist.t) : Bytes.t =
  let buf = Buffer.create 256 in
  Rio.Instrlist.iter il (fun i ->
      Buffer.add_bytes buf
        (Rio.Instr.encode ~pc:(code_base + Buffer.length buf) i));
  Buffer.add_bytes buf
    (Rio.Instr.encode
       ~pc:(code_base + Buffer.length buf)
       (Rio.Create.of_insn (Insn.mk_hlt ())));
  Buffer.to_bytes buf

let run_code (code : Bytes.t) : final =
  let m = Vm.Machine.create ~mem_size:(1 lsl 20) () in
  let mem = Vm.Machine.mem m in
  Vm.Memory.blit_bytes mem ~src:code ~src_pos:0 ~dst:code_base
    ~len:(Bytes.length code);
  (* non-trivial scratch data so loads see varied values *)
  for k = 0 to Gen.safe_slots - 1 do
    Vm.Memory.write_u32 mem (ebp_base + (8 * k)) ((k + 1) * 0x01010101);
    Vm.Memory.write_u32 mem (esi_base + (8 * k)) ((k + 3) * 0x00f0f0f1)
  done;
  let t = Vm.Machine.add_thread m ~entry:code_base ~stack_top in
  Vm.Machine.set_reg t Reg.Eax 0x1234;
  Vm.Machine.set_reg t Reg.Ebx 7;
  Vm.Machine.set_reg t Reg.Ecx 3;
  Vm.Machine.set_reg t Reg.Edx (-5);
  Vm.Machine.set_reg t Reg.Edi 0x55AA;
  Vm.Machine.set_reg t Reg.Ebp ebp_base;
  Vm.Machine.set_reg t Reg.Esi esi_base;
  Array.iteri
    (fun k f -> Vm.Machine.set_freg t f ((float_of_int k *. 1.5) -. 2.25))
    (Array.of_list Reg.F.all);
  (match Vm.Interp.run m t ~budget:100_000 ~emulate:true with
  | Vm.Interp.Halted -> ()
  | stop ->
      Alcotest.failf "safe program stopped with %s"
        (Vm.Interp.stop_to_string stop));
  {
    f_regs = Array.map (Vm.Machine.get_reg t) (Array.of_list Reg.all);
    f_fregs =
      Array.map
        (fun f -> Int64.bits_of_float (Vm.Machine.get_freg t f))
        (Array.of_list Reg.F.all);
    f_flags = t.Vm.Machine.eflags;
    f_out = Vm.Machine.output m;
    f_ebp_mem = Vm.Memory.read_bytes mem ~addr:ebp_base ~len:(8 * Gen.safe_slots);
    f_esi_mem = Vm.Memory.read_bytes mem ~addr:esi_base ~len:(8 * Gen.safe_slots);
    f_stack_mem = Vm.Memory.read_bytes mem ~addr:(stack_top - 256) ~len:512;
  }

let diff_final (a : final) (b : final) : string option =
  let probs = ref [] in
  let note fmt = Printf.ksprintf (fun s -> probs := s :: !probs) fmt in
  List.iteri
    (fun k r ->
      if a.f_regs.(k) <> b.f_regs.(k) then
        note "%s: 0x%x vs 0x%x" (Reg.name r) a.f_regs.(k) b.f_regs.(k))
    Reg.all;
  Array.iteri
    (fun k x ->
      if x <> b.f_fregs.(k) then note "f%d: %Lx vs %Lx" k x b.f_fregs.(k))
    a.f_fregs;
  if a.f_flags <> b.f_flags then
    note "eflags: 0x%x vs 0x%x" a.f_flags b.f_flags;
  if a.f_out <> b.f_out then
    note "output: [%s] vs [%s]"
      (String.concat ";" (List.map string_of_int a.f_out))
      (String.concat ";" (List.map string_of_int b.f_out));
  if not (Bytes.equal a.f_ebp_mem b.f_ebp_mem) then note "ebp scratch differs";
  if not (Bytes.equal a.f_esi_mem b.f_esi_mem) then note "esi scratch differs";
  if not (Bytes.equal a.f_stack_mem b.f_stack_mem) then note "stack window differs";
  match !probs with [] -> None | l -> Some (String.concat "; " l)

(* ------------------------------------------------------------------ *)
(* The differential property                                          *)
(* ------------------------------------------------------------------ *)

let optimize_at level (il : Rio.Instrlist.t) : Rio.Opt.counters =
  let c = Rio.Opt.fresh_counters () in
  Rio.Opt.run_passes ~family:Vm.Cost.Pentium4 c
    (Rio.Options.passes_at_level level)
    il;
  c

let prop_differential level =
  QCheck2.Test.make ~count:300
    ~name:(Printf.sprintf "-O%d preserves final machine state" level)
    ~print:Gen.print_il Gen.safe_il
    (fun insns ->
      let base = il_of_insns insns in
      let opt = il_of_insns insns in
      let _c = optimize_at level opt in
      let n_before = List.length insns in
      let n_after = Rio.Instrlist.length opt in
      if n_after > n_before then
        QCheck2.Test.fail_reportf "instruction count grew: %d -> %d" n_before
          n_after
      else
        let s0 = run_code (encode_il base) in
        let s1 = run_code (encode_il opt) in
        match diff_final s0 s1 with
        | None -> true
        | Some d -> QCheck2.Test.fail_reportf "state diverged: %s" d)

(* Idempotence: a second pipeline run over already-optimized IL must
   not change the program's behaviour either (re-optimization feeds
   optimizer output back through the same passes). *)
let prop_reopt_stable =
  QCheck2.Test.make ~count:150 ~name:"second -O2 run stays state-preserving"
    ~print:Gen.print_il Gen.safe_il
    (fun insns ->
      let base = il_of_insns insns in
      let opt = il_of_insns insns in
      let _ = optimize_at 2 opt in
      let once = Rio.Instrlist.length opt in
      let _ = optimize_at 2 opt in
      if Rio.Instrlist.length opt > once then
        QCheck2.Test.fail_reportf "second run grew the IL"
      else
        let s0 = run_code (encode_il base) in
        let s1 = run_code (encode_il opt) in
        match diff_final s0 s1 with
        | None -> true
        | Some d -> QCheck2.Test.fail_reportf "state diverged after reopt: %s" d)

(* ------------------------------------------------------------------ *)
(* Directed units: conservatism boundaries                            *)
(* ------------------------------------------------------------------ *)

let mov_imm r k = Insn.mk_mov (Operand.Reg r) (Operand.Imm k)

(* A register written at the very end of the IL is live-out: nothing
   after it proves the write dead, so it must survive. *)
let test_end_of_list_conservative () =
  let il = il_of_insns [ mov_imm Reg.Eax 5 ] in
  let c = Rio.Opt.fresh_counters () in
  Rio.Opt.eliminate_dead c il;
  check "trailing write kept" 1 (Rio.Instrlist.length il);
  check "no removals" 0 c.Rio.Opt.dead_removed;
  (* ... while the same write is removed when provably overwritten *)
  let il2 = il_of_insns [ mov_imm Reg.Eax 5; mov_imm Reg.Eax 6 ] in
  let c2 = Rio.Opt.fresh_counters () in
  Rio.Opt.eliminate_dead c2 il2;
  check "overwritten write removed" 1 (Rio.Instrlist.length il2);
  check "one removal" 1 c2.Rio.Opt.dead_removed

(* An undecoded bundle may read anything: every fact must die at its
   boundary, so the overwrite on the far side proves nothing. *)
let test_bundle_boundary_conservative () =
  let nop_raw = Isa.Encode.encode_exn ~pc:0 (Insn.mk_nop ()) in
  let il = Rio.Instrlist.create () in
  Rio.Instrlist.append il (Rio.Create.of_insn (mov_imm Reg.Eax 5));
  Rio.Instrlist.append il (Rio.Instr.of_bundle ~addr:0x2000 nop_raw);
  Rio.Instrlist.append il (Rio.Create.of_insn (mov_imm Reg.Eax 6));
  let c = Rio.Opt.fresh_counters () in
  Rio.Opt.eliminate_dead c il;
  check "bundle blocks dead-write removal" 3 (Rio.Instrlist.length il);
  check "no removals across bundle" 0 c.Rio.Opt.dead_removed

(* Exit CTIs are full liveness boundaries: an inc whose carry flag is
   only clobbered on the far side of a conditional exit must not be
   converted — the exit path could observe CF. *)
let test_exit_cti_conservative () =
  let inc_eax = Insn.mk_inc (Operand.Reg Reg.Eax) in
  let kill_flags = Insn.mk_add (Operand.Reg Reg.Ebx) (Operand.Imm 1) in
  (* straight line: the add rewrites CF before anything reads it *)
  let il_ok = il_of_insns [ inc_eax; kill_flags ] in
  let c_ok = Rio.Opt.fresh_counters () in
  Rio.Opt.strength_reduce ~family:Vm.Cost.Pentium4 c_ok il_ok;
  check "inc converted on straight line" 1 c_ok.Rio.Opt.strength;
  (* same add, but behind a conditional exit *)
  let il_cti =
    il_of_insns [ inc_eax; Insn.mk_jcc Cond.NZ 0x4000; kill_flags ]
  in
  let c_cti = Rio.Opt.fresh_counters () in
  Rio.Opt.strength_reduce ~family:Vm.Cost.Pentium4 c_cti il_cti;
  check "inc kept before exit CTI" 0 c_cti.Rio.Opt.strength;
  (* and the whole transformation is gated on the processor family *)
  let il_p3 = il_of_insns [ inc_eax; kill_flags ] in
  let c_p3 = Rio.Opt.fresh_counters () in
  Rio.Opt.strength_reduce ~family:Vm.Cost.Pentium3 c_p3 il_p3;
  check "inc kept on P3" 0 c_p3.Rio.Opt.strength

(* ------------------------------------------------------------------ *)
(* Directed units: structural peepholes can fire                      *)
(* ------------------------------------------------------------------ *)

let test_exit_check_peephole () =
  let slot = { Operand.base = Some Reg.Ebp; index = None; disp = 64 } in
  let il =
    il_of_insns
      [
        Insn.mk_mov (Operand.Mem slot) (Operand.Reg Reg.Eax);
        Insn.mk_cmp (Operand.Mem slot) (Operand.Imm 7);
      ]
  in
  let c = Rio.Opt.fresh_counters () in
  Rio.Opt.simplify_exit_checks c il;
  check "check simplified" 1 c.Rio.Opt.checks_simplified;
  check "store kept" 2 (Rio.Instrlist.length il);
  (match Rio.Instrlist.last il with
  | Some i ->
      let insn = Rio.Instr.get_insn i in
      Alcotest.(check bool)
        "cmp now reads the register" true
        (Operand.equal insn.Insn.srcs.(0) (Operand.Reg Reg.Eax))
  | None -> Alcotest.fail "empty IL");
  (* jcc T; jmp T — the conditional is unobservable *)
  let il2 = il_of_insns [ Insn.mk_jcc Cond.NZ 0x4000; Insn.mk_jmp 0x4000 ] in
  let c2 = Rio.Opt.fresh_counters () in
  Rio.Opt.simplify_exit_checks c2 il2;
  check "same-target jcc removed" 1 (Rio.Instrlist.length il2)

(* Build the trace builder's flag-save bracket by hand and show the
   elision actually fires once the flags are provably dead. *)
let flag_bracket ~tail =
  let fslot = { Operand.base = Some Reg.Ebp; index = None; disp = 120 } in
  let stub = Rio.Instrlist.create () in
  Rio.Instrlist.append stub (Rio.Create.push (Operand.Mem fslot));
  Rio.Instrlist.append stub (Rio.Create.popf ());
  let jcc = Rio.Create.jcc Cond.NZ 0x4000 in
  Rio.Instr.set_note jcc
    (Rio.Instr.Any_note (Rio.Types.Stub_note (stub, false)));
  let il = Rio.Instrlist.create () in
  Rio.Instrlist.append il (Rio.Create.pushf ());
  Rio.Instrlist.append il (Rio.Create.pop (Operand.Mem fslot));
  Rio.Instrlist.append il
    (Rio.Create.of_insn
       (Insn.mk_cmp (Operand.Reg Reg.Ebx) (Operand.Imm 42)));
  Rio.Instrlist.append il jcc;
  Rio.Instrlist.append il (Rio.Create.push (Operand.Mem fslot));
  Rio.Instrlist.append il (Rio.Create.popf ());
  List.iter (fun i -> Rio.Instrlist.append il (Rio.Create.of_insn i)) tail;
  (il, jcc)

let test_flag_elide_fires () =
  (* the trailing cmp rewrites every arithmetic flag before any read,
     so the restored flags are dead and the bracket must go *)
  let dead_tail = [ Insn.mk_cmp (Operand.Reg Reg.Eax) (Operand.Imm 0) ] in
  let il, jcc = flag_bracket ~tail:dead_tail in
  let before = Rio.Instrlist.length il in
  let c = Rio.Opt.fresh_counters () in
  Rio.Opt.elide_flag_saves c il;
  check "bracket elided" 1 c.Rio.Opt.flag_saves_elided;
  check "four instructions gone" (before - 4) (Rio.Instrlist.length il);
  Alcotest.(check bool)
    "custom stub note cleared" true
    (Rio.Instr.get_note jcc = Rio.Instr.No_note);
  (* without the flag-killing tail the flags are live-out: keep it *)
  let il2, _ = flag_bracket ~tail:[] in
  let before2 = Rio.Instrlist.length il2 in
  let c2 = Rio.Opt.fresh_counters () in
  Rio.Opt.elide_flag_saves c2 il2;
  check "live flags keep the bracket" before2 (Rio.Instrlist.length il2);
  check "no elisions" 0 c2.Rio.Opt.flag_saves_elided

(* ------------------------------------------------------------------ *)
(* Speculation and mid-trace deoptimization (DESIGN.md §6.7)          *)
(* ------------------------------------------------------------------ *)

(* The deopt property, at the IL level: compile a guard exactly the
   way the trace builder does — flags-save bracket, cmp against the
   assumed value, jne to a recovery block that restores the flags and
   runs the *unspecialized* suffix — and check that whichever way the
   guard goes, the final machine state is identical to the program
   that never speculated.  The guard position, the tested register and
   whether the assumption holds at runtime are all generated. *)

let spec_code_base = code_base      (* prefix + guard + specialized tail *)
let recover_base = 0x5000           (* deopt target: flags + plain suffix *)

(* the bracket's spill slot lives just past the compared scratch
   window, so saving flags there never shows up as a state diff *)
let guard_fslot =
  { Operand.base = Some Reg.Ebp; index = None; disp = 8 * Gen.safe_slots }

let encode_il_at (base : int) (il : Rio.Instrlist.t) : Bytes.t =
  let buf = Buffer.create 256 in
  Rio.Instrlist.iter il (fun i ->
      Buffer.add_bytes buf (Rio.Instr.encode ~pc:(base + Buffer.length buf) i));
  Buffer.add_bytes buf
    (Rio.Instr.encode
       ~pc:(base + Buffer.length buf)
       (Rio.Create.of_insn (Insn.mk_hlt ())));
  Buffer.to_bytes buf

let run_segments (segs : (int * Bytes.t) list) : final =
  let m = Vm.Machine.create ~mem_size:(1 lsl 20) () in
  let mem = Vm.Machine.mem m in
  List.iter
    (fun (base, code) ->
      Vm.Memory.blit_bytes mem ~src:code ~src_pos:0 ~dst:base
        ~len:(Bytes.length code))
    segs;
  for k = 0 to Gen.safe_slots - 1 do
    Vm.Memory.write_u32 mem (ebp_base + (8 * k)) ((k + 1) * 0x01010101);
    Vm.Memory.write_u32 mem (esi_base + (8 * k)) ((k + 3) * 0x00f0f0f1)
  done;
  let t = Vm.Machine.add_thread m ~entry:code_base ~stack_top in
  Vm.Machine.set_reg t Reg.Eax 0x1234;
  Vm.Machine.set_reg t Reg.Ebx 7;
  Vm.Machine.set_reg t Reg.Ecx 3;
  Vm.Machine.set_reg t Reg.Edx (-5);
  Vm.Machine.set_reg t Reg.Edi 0x55AA;
  Vm.Machine.set_reg t Reg.Ebp ebp_base;
  Vm.Machine.set_reg t Reg.Esi esi_base;
  Array.iteri
    (fun k f -> Vm.Machine.set_freg t f ((float_of_int k *. 1.5) -. 2.25))
    (Array.of_list Reg.F.all);
  (match Vm.Interp.run m t ~budget:100_000 ~emulate:true with
  | Vm.Interp.Halted -> ()
  | stop ->
      Alcotest.failf "guarded program stopped with %s"
        (Vm.Interp.stop_to_string stop));
  {
    f_regs = Array.map (Vm.Machine.get_reg t) (Array.of_list Reg.all);
    f_fregs =
      Array.map
        (fun f -> Int64.bits_of_float (Vm.Machine.get_freg t f))
        (Array.of_list Reg.F.all);
    f_flags = t.Vm.Machine.eflags;
    f_out = Vm.Machine.output m;
    f_ebp_mem = Vm.Memory.read_bytes mem ~addr:ebp_base ~len:(8 * Gen.safe_slots);
    f_esi_mem = Vm.Memory.read_bytes mem ~addr:esi_base ~len:(8 * Gen.safe_slots);
    f_stack_mem = Vm.Memory.read_bytes mem ~addr:(stack_top - 256) ~len:512;
  }

(* Bytes of the stack window strictly below the final stack pointer
   are dead — the bracket's transient pushf lives there in the
   speculated run but not the baseline.  Architected state is
   everything else. *)
let mask_dead_stack (f : final) : final =
  let esp_idx =
    let rec go k = function
      | [] -> assert false
      | r :: _ when Reg.equal r Reg.Esp -> k
      | _ :: tl -> go (k + 1) tl
    in
    go 0 Reg.all
  in
  let esp = f.f_regs.(esp_idx) in
  let base = stack_top - 256 in
  let live = Bytes.copy f.f_stack_mem in
  for k = 0 to Bytes.length live - 1 do
    if base + k < esp then Bytes.set live k '\x00'
  done;
  { f with f_stack_mem = live }

let reg_value_after (prefix : Insn.t list) (r : Reg.t) : int =
  let f = run_segments [ (code_base, encode_il_at code_base (il_of_insns prefix)) ] in
  let rec idx k = function
    | [] -> assert false
    | r' :: _ when Reg.equal r' r -> k
    | _ :: tl -> idx (k + 1) tl
  in
  f.f_regs.(idx 0 Reg.all)

let prop_guard_deopt =
  QCheck2.Test.make ~count:200
    ~name:"a guard firing anywhere deopts to the never-speculated state"
    ~print:Gen.print_guard_case Gen.guard_case
    (fun gc ->
      let open Gen in
      (* the assumed value: wrong when the guard should fire *)
      let v = reg_value_after gc.gc_prefix gc.gc_reg in
      let assumed = if gc.gc_fire then v lxor 1 else v in
      (* specialized tail: the assumption injected as a constant, then
         the ordinary -O2 pipeline over it — exactly what speculation
         buys the optimizer *)
      let spec_tail = il_of_insns (Insn.mk_mov (Operand.Reg gc.gc_reg) (Operand.Imm assumed) :: gc.gc_suffix) in
      ignore (optimize_at 2 spec_tail);
      (* main segment: prefix; flags save; cmp; jne recover; flags
         restore; specialized tail *)
      let main = il_of_insns gc.gc_prefix in
      Rio.Instrlist.append main (Rio.Create.pushf ());
      Rio.Instrlist.append main (Rio.Create.pop (Operand.Mem guard_fslot));
      Rio.Instrlist.append main
        (Rio.Create.of_insn
           (Insn.mk_cmp (Operand.Reg gc.gc_reg) (Operand.Imm assumed)));
      Rio.Instrlist.append main
        (Rio.Create.of_insn (Insn.mk_jcc Cond.NZ recover_base));
      Rio.Instrlist.append main (Rio.Create.push (Operand.Mem guard_fslot));
      Rio.Instrlist.append main (Rio.Create.popf ());
      Rio.Instrlist.iter spec_tail (fun i ->
          Rio.Instrlist.append main
            (Rio.Create.of_insn (Rio.Instr.get_insn i)));
      (* recovery segment: flags restore, then the unspecialized suffix *)
      let recover = Rio.Instrlist.create () in
      Rio.Instrlist.append recover (Rio.Create.push (Operand.Mem guard_fslot));
      Rio.Instrlist.append recover (Rio.Create.popf ());
      List.iter
        (fun i -> Rio.Instrlist.append recover (Rio.Create.of_insn i))
        gc.gc_suffix;
      let speculated =
        run_segments
          [ (spec_code_base, encode_il_at spec_code_base main);
            (recover_base, encode_il_at recover_base recover) ]
      in
      let baseline =
        run_segments
          [ (code_base,
             encode_il_at code_base (il_of_insns (gc.gc_prefix @ gc.gc_suffix))) ]
      in
      match
        diff_final (mask_dead_stack baseline) (mask_dead_stack speculated)
      with
      | None -> true
      | Some d ->
          QCheck2.Test.fail_reportf "deopt state diverged (%s): %s"
            (if gc.gc_fire then "guard fired" else "guard held")
            d)

open Workloads

(* The same property end-to-end through the real runtime: random
   speculation knobs over guard-heavy workloads must never perturb
   program output — every guard firing deoptimizes to exact state. *)
let prop_engine_spec =
  let open QCheck2.Gen in
  let case =
    let* bench = oneofl [ "gzip"; "crafty"; "eon"; "perlbmk"; "mesa"; "applu" ] in
    let* thr = int_range 1 32 in
    let* maxv = int_range 1 6 in
    return (bench, thr, maxv)
  in
  QCheck2.Test.make ~count:15
    ~name:"-O3 output identical to native for any speculation knobs"
    ~print:(fun (b, t, m) -> Printf.sprintf "%s --spec-threshold %d --spec-max-violations %d" b t m)
    case
    (fun (bench, thr, maxv) ->
      let w = Option.get (Suite.by_name bench) in
      let native = Workload.run_native w in
      let opts =
        { Rio.Options.default with
          Rio.Options.opt_level = 3;
          spec_threshold = thr;
          spec_max_violations = maxv;
          max_cycles = max_int / 2 }
      in
      let r, _ = Workload.run_rio ~opts w in
      r.Workload.ok && r.Workload.output = native.Workload.output)

(* The full speculate -> violate -> deoptimize -> re-optimize
   lifecycle on the phase-change workload: mesa alternates its
   transform function every few batches, so the dominant-target guard
   is built, violated in a burst when the phase flips, despeculated by
   rebuild, and re-speculated on the new phase — and the adaptive tier
   must beat the non-speculative one. *)
let test_spec_lifecycle () =
  let w = Option.get (Suite.by_name "mesa") in
  let native = Workload.run_native w in
  let at level =
    Workload.run_rio
      ~opts:
        { Rio.Options.default with
          Rio.Options.opt_level = level;
          max_cycles = max_int / 2 }
      w
  in
  let o2, _ = at 2 in
  let o3, rt3 = at 3 in
  Alcotest.(check bool) "-O3 output matches native" true
    (o3.Workload.ok && o3.Workload.output = native.Workload.output);
  let s = Rio.stats rt3 in
  Alcotest.(check bool) "guards compiled" true (s.Rio.Stats.spec_guards_ind >= 2);
  Alcotest.(check bool) "guards violated" true (s.Rio.Stats.spec_violations >= 1);
  Alcotest.(check bool) "trace despeculated" true (s.Rio.Stats.spec_despecs >= 1);
  Alcotest.(check bool) "re-speculated after deopt" true
    (s.Rio.Stats.spec_guards_ind > s.Rio.Stats.spec_despecs);
  Alcotest.(check bool) "-O3 beats -O2 on the phase-change workload" true
    (o3.Workload.cycles < o2.Workload.cycles)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_differential 1; prop_differential 2; prop_reopt_stable ]

let qcheck_spec_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_guard_deopt; prop_engine_spec ]

let () =
  Alcotest.run "opt"
    [
      ( "conservatism",
        [
          Alcotest.test_case "end of list" `Quick test_end_of_list_conservative;
          Alcotest.test_case "bundle boundary" `Quick
            test_bundle_boundary_conservative;
          Alcotest.test_case "exit CTI" `Quick test_exit_cti_conservative;
        ] );
      ( "peepholes",
        [
          Alcotest.test_case "exit check" `Quick test_exit_check_peephole;
          Alcotest.test_case "flag-save elision" `Quick test_flag_elide_fires;
        ] );
      ("differential", qcheck_tests);
      ( "speculation",
        qcheck_spec_tests
        @ [ Alcotest.test_case "deopt lifecycle (mesa)" `Slow test_spec_lifecycle ] );
    ]
