(** The open-addressing fragment index against a reference model.

    The index replaces four separate [Hashtbl]s on the dispatcher's
    hottest path, so its behaviour under arbitrary interleavings of
    inserts, slot clears, head bumps, marks, and O(1) generation
    flushes must match the obvious hashtable semantics exactly —
    including across table growth, probe-chain collisions, and the
    lazy post-flush normalization of stale entries. *)

module FI = Rio.Fragindex

(* ------------------------------------------------------------------ *)
(* Reference model: plain hashtables with eager flush                 *)
(* ------------------------------------------------------------------ *)

type model = {
  m_bb : (int, int) Hashtbl.t;
  m_trace : (int, int) Hashtbl.t;
  m_ibl : (int, int) Hashtbl.t;
  m_head : (int, int) Hashtbl.t;     (* tag -> counter (>= 0) *)
  m_marked : (int, unit) Hashtbl.t;
}

let model_create () =
  {
    m_bb = Hashtbl.create 16;
    m_trace = Hashtbl.create 16;
    m_ibl = Hashtbl.create 16;
    m_head = Hashtbl.create 16;
    m_marked = Hashtbl.create 16;
  }

type op =
  | Set_bb of int * int
  | Set_trace of int * int
  | Set_ibl of int * int
  | Clear_ibl of int
  | Bump_head of int                  (* the dispatcher's head-counter bump *)
  | Mark of int                       (* dr_mark_trace_head *)
  | Delete of int                     (* per-key backward-shift delete *)
  | Flush                             (* flush_fragments: heads survive *)

let op_to_string = function
  | Set_bb (t, v) -> Printf.sprintf "set_bb %d %d" t v
  | Set_trace (t, v) -> Printf.sprintf "set_trace %d %d" t v
  | Set_ibl (t, v) -> Printf.sprintf "set_ibl %d %d" t v
  | Clear_ibl t -> Printf.sprintf "clear_ibl %d" t
  | Bump_head t -> Printf.sprintf "bump_head %d" t
  | Mark t -> Printf.sprintf "mark %d" t
  | Delete t -> Printf.sprintf "delete %d" t
  | Flush -> "flush"

let model_apply (m : model) = function
  | Set_bb (t, v) -> Hashtbl.replace m.m_bb t v
  | Set_trace (t, v) -> Hashtbl.replace m.m_trace t v
  | Set_ibl (t, v) -> Hashtbl.replace m.m_ibl t v
  | Clear_ibl t -> Hashtbl.remove m.m_ibl t
  | Bump_head t ->
      let c = Option.value (Hashtbl.find_opt m.m_head t) ~default:0 in
      Hashtbl.replace m.m_head t (c + 1)
  | Mark t ->
      Hashtbl.replace m.m_marked t ();
      if not (Hashtbl.mem m.m_head t) then Hashtbl.replace m.m_head t 0
  | Delete t ->
      Hashtbl.remove m.m_bb t;
      Hashtbl.remove m.m_trace t;
      Hashtbl.remove m.m_ibl t;
      Hashtbl.remove m.m_head t;
      Hashtbl.remove m.m_marked t
  | Flush ->
      Hashtbl.reset m.m_bb;
      Hashtbl.reset m.m_trace;
      Hashtbl.reset m.m_ibl

let index_apply (idx : int FI.t) = function
  | Set_bb (t, v) -> FI.set_bb idx t v
  | Set_trace (t, v) -> FI.set_trace idx t v
  | Set_ibl (t, v) -> FI.set_ibl idx t v
  | Clear_ibl t -> FI.clear_ibl idx t
  | Bump_head t ->
      let e = FI.ensure idx t in
      e.FI.head <- 1 + (if e.FI.head >= 0 then e.FI.head else 0)
  | Mark t ->
      let e = FI.ensure idx t in
      e.FI.marked <- true;
      if e.FI.head < 0 then e.FI.head <- 0
  | Delete t -> FI.delete idx t
  | Flush -> FI.flush_fragments idx

(* ------------------------------------------------------------------ *)
(* Agreement check over the whole tag universe                        *)
(* ------------------------------------------------------------------ *)

let tag_universe = 700

let agree (idx : int FI.t) (m : model) : string option =
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  for tag = 0 to tag_universe - 1 do
    let eq name got want =
      if got <> want then fail "tag %d: %s disagrees" tag name
    in
    eq "bb" (FI.find_bb idx tag) (Hashtbl.find_opt m.m_bb tag);
    eq "trace" (FI.find_trace idx tag) (Hashtbl.find_opt m.m_trace tag);
    eq "ibl" (FI.find_ibl idx tag) (Hashtbl.find_opt m.m_ibl tag);
    if FI.is_head idx tag <> (Hashtbl.mem m.m_head tag || Hashtbl.mem m.m_marked tag)
    then fail "tag %d: is_head disagrees" tag;
    match FI.find idx tag with
    | Some e when Hashtbl.mem m.m_head tag ->
        eq "head counter" (Some e.FI.head) (Hashtbl.find_opt m.m_head tag)
    | _ -> ()
  done;
  if FI.bb_count idx <> Hashtbl.length m.m_bb then fail "bb_count disagrees";
  if FI.trace_count idx <> Hashtbl.length m.m_trace then
    fail "trace_count disagrees";
  (* iterators surface exactly the model's live bindings *)
  let collect iter =
    let acc = ref [] in
    iter idx (fun k v -> acc := (k, v) :: !acc);
    List.sort compare !acc
  in
  let model_bindings tbl =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  if collect FI.iter_bbs <> model_bindings m.m_bb then fail "iter_bbs disagrees";
  if collect FI.iter_traces <> model_bindings m.m_trace then
    fail "iter_traces disagrees";
  if collect FI.iter_ibl <> model_bindings m.m_ibl then fail "iter_ibl disagrees";
  !err

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let op_gen : op QCheck.Gen.t =
  let open QCheck.Gen in
  (* a small universe so probe chains collide and the table grows *)
  let tag = int_bound (tag_universe - 1) in
  let v = int_bound 10_000 in
  frequency
    [
      (4, map2 (fun t x -> Set_bb (t, x)) tag v);
      (3, map2 (fun t x -> Set_trace (t, x)) tag v);
      (3, map2 (fun t x -> Set_ibl (t, x)) tag v);
      (1, map (fun t -> Clear_ibl t) tag);
      (3, map (fun t -> Bump_head t) tag);
      (1, map (fun t -> Mark t) tag);
      (* deletes are frequent enough that probe chains shrink and
         re-close under churn, exercising the backward shift *)
      (3, map (fun t -> Delete t) tag);
      (1, return Flush);
    ]

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_to_string ops))
    QCheck.Gen.(list_size (int_bound 1500) op_gen)

let prop_index_matches_model =
  QCheck.Test.make ~count:60 ~name:"index agrees with hashtable model" ops_arb
    (fun ops ->
      (* tiny initial table: growth and collisions on every run *)
      let idx = FI.create ~bits:2 () in
      let m = model_create () in
      List.iter
        (fun op ->
          index_apply idx op;
          model_apply m op)
        ops;
      match agree idx m with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

let prop_entries_stable_across_growth =
  QCheck.Test.make ~count:30 ~name:"entry records survive rehash"
    QCheck.(make Gen.(int_bound (tag_universe - 1)))
    (fun tag ->
      let idx = FI.create ~bits:2 () in
      let e = FI.ensure idx tag in
      e.FI.head <- 7;
      (* force several growths *)
      for k = 0 to 999 do
        FI.set_bb idx (tag_universe + (7 * k)) k
      done;
      (* the held reference is still THE entry for the tag *)
      FI.ensure idx tag == e && e.FI.head = 7 && FI.is_head idx tag)

let prop_entries_stable_across_delete =
  QCheck.Test.make ~count:50 ~name:"entry records survive deletes of other keys"
    QCheck.(pair (make Gen.(int_bound 99)) (make Gen.(int_bound 99)))
    (fun (keep, del) ->
      let del = if del = keep then (del + 1) mod 100 else del in
      let idx = FI.create ~bits:2 () in
      for k = 0 to 99 do
        FI.set_bb idx k k
      done;
      let e = FI.ensure idx keep in
      e.FI.head <- 3;
      FI.delete idx del;
      FI.ensure idx keep == e
      && FI.find_bb idx keep = Some keep
      && FI.find_bb idx del = None)

(* ------------------------------------------------------------------ *)
(* Directed cases                                                     *)
(* ------------------------------------------------------------------ *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_delete_removes_everything () =
  let idx = FI.create () in
  FI.set_bb idx 10 1;
  FI.set_trace idx 10 2;
  FI.set_ibl idx 10 3;
  (FI.ensure idx 10).FI.head <- 5;
  FI.delete idx 10;
  checkb "no entry" true (FI.find idx 10 = None);
  checkb "not a head" false (FI.is_head idx 10);
  checki "count" 0 (FI.count idx);
  (* deleting an absent key is a no-op *)
  FI.delete idx 10;
  checki "still empty" 0 (FI.count idx)

let test_delete_closes_probe_chains () =
  (* a tiny initial table guarantees long collision chains; deleting
     interior keys must backward-shift the chains closed so every
     surviving key stays reachable from its ideal slot *)
  let idx = FI.create ~bits:2 () in
  for k = 0 to 99 do
    FI.set_bb idx k k
  done;
  for k = 0 to 99 do
    if k mod 3 = 0 then FI.delete idx k
  done;
  for k = 0 to 99 do
    let want = if k mod 3 = 0 then None else Some k in
    if FI.find_bb idx k <> want then Alcotest.failf "key %d wrong after deletes" k
  done;
  checki "live keys" 66 (FI.count idx);
  (* deleted slots are genuinely reusable *)
  for k = 0 to 99 do
    if k mod 3 = 0 then FI.set_bb idx k (k * 2)
  done;
  checki "refilled" 100 (FI.count idx)

let test_flush_preserves_heads () =
  let idx = FI.create () in
  FI.set_bb idx 10 111;
  FI.set_trace idx 10 222;
  FI.set_ibl idx 10 333;
  let e = FI.ensure idx 10 in
  e.FI.head <- 5;
  FI.flush_fragments idx;
  checkb "bb gone" true (FI.find_bb idx 10 = None);
  checkb "trace gone" true (FI.find_trace idx 10 = None);
  checkb "ibl gone" true (FI.find_ibl idx 10 = None);
  checki "bb_count" 0 (FI.bb_count idx);
  checkb "still a head" true (FI.is_head idx 10);
  checki "counter survives" 5 (FI.ensure idx 10).FI.head;
  (* the slot is reusable after the flush *)
  FI.set_bb idx 10 444;
  checkb "re-set works" true (FI.find_bb idx 10 = Some 444)

let test_repeated_flushes () =
  let idx = FI.create ~bits:2 () in
  for round = 1 to 50 do
    FI.set_bb idx round round;
    FI.flush_fragments idx
  done;
  checki "all flushed" 0 (FI.bb_count idx);
  for round = 1 to 50 do
    assert (FI.find_bb idx round = None)
  done

(* ------------------------------------------------------------------ *)
(* Cross-run profile merging (shared-store publish path)               *)
(* ------------------------------------------------------------------ *)

let mk_prof ?(t1 = 0) ?(n1 = 0) ?(t2 = 0) ?(n2 = 0) ?(other = 0) () =
  { FI.p_t1 = t1; p_n1 = n1; p_t2 = t2; p_n2 = n2; p_other = other;
    p_total = n1 + n2 + other }

let prof_eq name (a : FI.profile) (b : FI.profile) =
  Alcotest.(check (list int)) name
    [ a.FI.p_t1; a.FI.p_n1; a.FI.p_t2; a.FI.p_n2; a.FI.p_other; a.FI.p_total ]
    [ b.FI.p_t1; b.FI.p_n1; b.FI.p_t2; b.FI.p_n2; b.FI.p_other; b.FI.p_total ]

(* Publishers carry cumulative histograms, so the merge takes the
   per-target max — re-publishing an already-merged profile must not
   inflate anything. *)
let test_merge_max () =
  let dst = mk_prof ~t1:10 ~n1:5 ~t2:20 ~n2:3 ~other:2 () in
  let src = mk_prof ~t1:10 ~n1:8 ~t2:20 ~n2:1 ~other:2 () in
  FI.merge_profile ~src dst;
  prof_eq "per-target max" (mk_prof ~t1:10 ~n1:8 ~t2:20 ~n2:3 ~other:2 ()) dst

let test_merge_idempotent () =
  let dst = mk_prof ~t1:10 ~n1:5 ~t2:20 ~n2:3 ~other:1 () in
  let src = mk_prof ~t1:20 ~n1:9 ~t2:30 ~n2:4 ~other:2 () in
  FI.merge_profile ~src dst;
  let once = FI.copy_profile dst in
  FI.merge_profile ~src dst;
  prof_eq "second merge is a no-op" once dst;
  (* and merging a profile into itself never moves it *)
  let self = mk_prof ~t1:7 ~n1:6 ~t2:8 ~n2:2 ~other:3 () in
  let before = FI.copy_profile self in
  FI.merge_profile ~src:(FI.copy_profile self) self;
  prof_eq "self-merge is a no-op" before self

let test_merge_disjoint () =
  let dst = mk_prof ~t1:1 ~n1:5 () in
  let src = mk_prof ~t1:2 ~n1:7 () in
  FI.merge_profile ~src dst;
  (* union: heavier target takes slot 1, the other slot 2 *)
  prof_eq "disjoint union" (mk_prof ~t1:2 ~n1:7 ~t2:1 ~n2:5 ()) dst;
  (* four distinct targets: top two kept, rest spills into other *)
  let dst = mk_prof ~t1:1 ~n1:5 ~t2:2 ~n2:4 () in
  let src = mk_prof ~t1:3 ~n1:9 ~t2:4 ~n2:1 () in
  FI.merge_profile ~src dst;
  prof_eq "spill beyond two slots"
    (mk_prof ~t1:3 ~n1:9 ~t2:1 ~n2:5 ~other:5 ()) dst

let test_merge_order_independent () =
  let a () = mk_prof ~t1:10 ~n1:5 ~t2:20 ~n2:5 ~other:1 () in
  let b () = mk_prof ~t1:30 ~n1:5 ~t2:20 ~n2:2 ~other:4 () in
  let ab = a () in
  FI.merge_profile ~src:(b ()) ab;
  let ba = b () in
  FI.merge_profile ~src:(a ()) ba;
  prof_eq "merge commutes" ab ba

let () =
  Alcotest.run "fragindex"
    [
      ( "model",
        [
          QCheck_alcotest.to_alcotest prop_index_matches_model;
          QCheck_alcotest.to_alcotest prop_entries_stable_across_growth;
          QCheck_alcotest.to_alcotest prop_entries_stable_across_delete;
        ] );
      ( "directed",
        [
          Alcotest.test_case "flush preserves heads" `Quick
            test_flush_preserves_heads;
          Alcotest.test_case "repeated flushes" `Quick test_repeated_flushes;
          Alcotest.test_case "delete removes everything" `Quick
            test_delete_removes_everything;
          Alcotest.test_case "delete closes probe chains" `Quick
            test_delete_closes_probe_chains;
        ] );
      ( "profile merge",
        [
          Alcotest.test_case "per-target max" `Quick test_merge_max;
          Alcotest.test_case "idempotent" `Quick test_merge_idempotent;
          Alcotest.test_case "disjoint union + spill" `Quick
            test_merge_disjoint;
          Alcotest.test_case "order independent" `Quick
            test_merge_order_independent;
        ] );
    ]
