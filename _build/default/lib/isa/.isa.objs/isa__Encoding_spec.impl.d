lib/isa/encoding_spec.ml: Opcode Printf
