(** The dispatcher: Figure 1 of the paper.

    {v
    start → basic block builder → (trace selector) → code cache
              ↑                                        |
              └──── context switch ←── exit stub ←─────┘
                    (or stay in cache: direct link / indirect lookup)
    v}

    One dispatcher drives each application thread; code caches and all
    dispatch state are thread-private (paper §2).

    The hot path (exit → lookup → re-enter) is engineered to be
    allocation-free on the host: fragment lookups are single probes of
    the unified open-addressing {!Fragindex}, and trap tokens resolve
    through a flat exit array. *)

open Isa
open Types
module FI = Fragindex

(* ------------------------------------------------------------------ *)
(* Trace heads                                                        *)
(* ------------------------------------------------------------------ *)

let is_head (ts : thread_state) tag = FI.is_head ts.index tag

(** Promote the tag of [e] to trace-head status: it loses its in-cache
    lookup entry and its incoming links, so every future execution
    passes through the dispatcher and bumps its counter. *)
let make_head_entry (rt : runtime) (e : fragment FI.entry) =
  if e.FI.head < 0 && not e.FI.marked then begin
    e.FI.head <- 0;
    rt.stats.Stats.trace_head_promotions <- rt.stats.Stats.trace_head_promotions + 1;
    (match e.FI.ibl with
     | Some f when f.kind = Bb -> e.FI.ibl <- None
     | _ -> ());
    match e.FI.bb with
    | Some frag -> List.iter (Emit.unlink rt) frag.incoming
    | None -> ()
  end

let make_head (rt : runtime) (ts : thread_state) tag =
  make_head_entry rt (FI.ensure ts.index tag)

(* ------------------------------------------------------------------ *)
(* Basic block building                                               *)
(* ------------------------------------------------------------------ *)

(* Decode the application code starting at [tag] — all instructions up
   to and including the first CTI (or up to the size cap) — and build
   the client-view IL in the same forward pass.  Without a client hook,
   non-CTI instructions are kept as a single Level-0 bundle and only
   the final CTI is decoded (the paper's two-Instr fast path); with a
   hook, instructions are split to Level 1 so the client can walk them.
   Returns the IL, the instruction count, and the address just past the
   block. *)
let scan_and_build (rt : runtime) tag : Instrlist.t * int * int =
  let mem = Vm.Machine.mem rt.machine in
  let fetch = Vm.Memory.fetch mem in
  let max_insns = rt.opts.Options.max_bb_insns in
  let with_hook = rt.client.basic_block <> None && not rt.client_quarantined in
  let il = Instrlist.create () in
  let grab addr len = Vm.Memory.read_bytes mem ~addr ~len in
  let rec go addr n ~body_start =
    match Decode.opcode_eflags fetch addr with
    | Error e ->
        rio_error "bad application code at 0x%x: %s" addr
          (Decode.error_to_string e)
    | Ok (op, len) ->
        if Opcode.is_cti op then begin
          if (not with_hook) && addr > body_start then
            Instrlist.append il
              (Instr.of_bundle ~addr:body_start (grab body_start (addr - body_start)));
          let raw = grab addr len in
          (* decode against the true address so pc-relative targets resolve *)
          let f a = Char.code (Bytes.get raw (a - addr)) in
          (match Decode.full f addr with
           | Error e ->
               rio_error "bad CTI at 0x%x: %s" addr (Decode.error_to_string e)
           | Ok (insn, _) -> Instrlist.append il (Instr.of_decoded ~addr ~raw insn));
          (il, n + 1, addr + len)
        end
        else begin
          if with_hook then Instrlist.append il (Instr.of_raw ~addr (grab addr len));
          if n + 1 >= max_insns then begin
            if not with_hook then
              Instrlist.append il
                (Instr.of_bundle ~addr:body_start
                   (grab body_start (addr + len - body_start)));
            (il, n + 1, addr + len)
          end
          else go (addr + len) (n + 1) ~body_start
        end
  in
  go tag 0 ~body_start:tag

(* After mangling, guarantee the block's IL ends by leaving the
   fragment: a trailing conditional branch gets an explicit jmp to its
   fall-through; a capped block gets a jmp to the next instruction. *)
let seal_il (il : Instrlist.t) ~(fallthrough : int) : unit =
  match Instrlist.last il with
  | None -> rio_error "empty block"
  | Some last when Instr.is_bundle last ->
      (* capped block kept as one bundle: bundles never end in a CTI *)
      Instrlist.append il (Create.jmp fallthrough)
  | Some last -> (
      match Instr.get_opcode last with
      | Opcode.Jcc _ -> Instrlist.append il (Create.jmp fallthrough)
      | Opcode.Jmp | Opcode.Hlt -> ()
      | _ -> Instrlist.append il (Create.jmp fallthrough))

let build_bb (rt : runtime) (ts : thread_state) tag : fragment =
  let il, n_insns, block_end = scan_and_build rt tag in
  (* watch the source code so writes to it trigger fragment flushes *)
  Vm.Memory.watch_code (Vm.Machine.mem rt.machine) ~addr:tag ~len:(block_end - tag);
  charge rt
    (rt.opts.Options.costs.Options.bb_build_base
    + (n_insns * rt.opts.Options.costs.Options.bb_build_per_insn));
  let il =
    match rt.client.basic_block with
    | Some hook ->
        Guard.protect_il rt ~hook:"basic_block" il (fun il ->
            hook { rt; ts } ~tag il)
    | None -> il
  in
  Mangle.mangle_il ~tid:ts.ts_tid il;
  seal_il il ~fallthrough:block_end;
  let frag =
    Emit.emit_fragment rt ts ~kind:Bb ~tag ~src_ranges:[ (tag, block_end) ] il
  in
  rt.stats.Stats.blocks_built <- rt.stats.Stats.blocks_built + 1;
  if not (is_head ts tag) then FI.set_ibl ts.index tag frag;
  log_flow rt "build bb 0x%x" tag;
  frag

(* ------------------------------------------------------------------ *)
(* Trace building                                                     *)
(* ------------------------------------------------------------------ *)

let start_tracegen (rt : runtime) (ts : thread_state) head =
  ts.tracegen <-
    Some
      {
        tg_head = head;
        tg_tags = [];
        tg_il = Instrlist.create ();
        tg_insns = 0;
        tg_pending = P_start;
        tg_checks = [];
      };
  log_flow rt "start trace 0x%x" head

(* Splice the client-view IL of block [tag]'s bb fragment into the
   growing trace, recording the new pending CTI. *)
let stitch_block (rt : runtime) (ts : thread_state) (tg : tracegen) tag : unit =
  let frag =
    match FI.find_bb ts.index tag with
    | Some f -> f
    | None -> build_bb rt ts tag
  in
  let il = Emit.decode_fragment_il rt frag in
  (* peel the trailing exit structure *)
  let target_of (i : Instr.t) =
    match Insn.src (Instr.get_insn i) 0 with
    | Operand.Target t -> t
    | _ -> rio_error "trace stitch: malformed exit"
  in
  let last = Option.get (Instrlist.last il) in
  let pending =
    match Instr.get_opcode last with
    | Opcode.Hlt ->
        Instrlist.remove il last;
        P_halt
    | Opcode.Jmp -> (
        let t = target_of last in
        Instrlist.remove il last;
        match ind_kind_of_token t with
        | Some k -> P_ind k
        | None -> (
            (* is the (new) last instruction a conditional exit? *)
            match Instrlist.last il with
            | Some prev
              when (not (Instr.is_bundle prev))
                   && (match Instr.get_opcode prev with
                      | Opcode.Jcc _ -> true
                      | _ -> false) ->
                let c =
                  match Instr.get_opcode prev with
                  | Opcode.Jcc c -> c
                  | _ -> assert false
                in
                let taken = target_of prev in
                Instrlist.remove il prev;
                P_jcc (c, taken, t)
            | _ -> P_jmp t))
    | _ -> rio_error "trace stitch: block 0x%x does not end in an exit" tag
  in
  tg.tg_insns <- tg.tg_insns + Instrlist.length il;
  Instrlist.append_all ~dst:tg.tg_il il;
  tg.tg_tags <- tag :: tg.tg_tags;
  tg.tg_pending <- pending

(* Resolve the pending CTI knowing execution continued at [next]. *)
let resolve_pending (ts : thread_state) (tg : tracegen) ~next : unit =
  match tg.tg_pending with
  | P_start -> ()
  | P_halt -> rio_error "trace continued past hlt"
  | P_jmp t ->
      if t <> next then rio_error "trace stitch: jmp to 0x%x but executed 0x%x" t next
  | P_jcc (c, taken, ft) ->
      let exit_instr =
        if next = taken then Create.jcc (Cond.invert c) ft
        else if next = ft then Create.jcc c taken
        else rio_error "trace stitch: jcc targets 0x%x/0x%x but executed 0x%x" taken ft next
      in
      tg.tg_insns <- tg.tg_insns + 1;
      Instrlist.append tg.tg_il exit_instr
  | P_ind k ->
      (* inline the observed target with a check; flags handling is
         fixed up at finalize time when the whole trace is known *)
      let instrs =
        Mangle.inline_check ~tid:ts.ts_tid ~expected:next ~kind:k ~flags_live:false
      in
      List.iter
        (fun i ->
          tg.tg_insns <- tg.tg_insns + 1;
          Instrlist.append tg.tg_il i)
        instrs;
      (match List.rev instrs with
       | jne :: _ -> tg.tg_checks <- jne :: tg.tg_checks
       | [] -> assert false)

(* Materialize the final pending CTI as trace exits. *)
let finalize_pending (tg : tracegen) : unit =
  let app i = Instrlist.append tg.tg_il i in
  match tg.tg_pending with
  | P_start -> rio_error "empty trace"
  | P_halt -> app (Create.of_insn (Insn.mk_hlt ()))
  | P_jmp t -> app (Create.jmp t)
  | P_jcc (c, taken, ft) ->
      app (Create.jcc c taken);
      app (Create.jmp ft)
  | P_ind k -> app (Create.jmp (ind_token k))

(* For every inline check inserted without flags preservation, scan
   forward: if the application flags are live at the check, bracket it
   with save/restore and attach the stub restore. *)
let fixup_check_flags (rt : runtime) (ts : thread_state) (tg : tracegen) : unit =
  let il = tg.tg_il in
  let fslot = Mangle.abs_slot ~tid:ts.ts_tid slot_eflags in
  List.iter
    (fun (jne : Instr.t) ->
      (* the check is [cmp; jne]; flags are live if anything after the
         jne reads them before writing *)
      let after = jne.Instr.next in
      if
        rt.opts.Options.always_save_flags
        || not (Flags_analysis.dead_after after)
      then begin
        let cmp = Option.get jne.Instr.prev in
        Instrlist.insert_before il cmp (Create.pushf ());
        Instrlist.insert_before il cmp (Create.pop fslot);
        Instrlist.insert_after il jne (Create.popf ());
        Instrlist.insert_after il jne (Create.push fslot);
        let stub = Instrlist.create () in
        Instrlist.append stub (Create.push fslot);
        Instrlist.append stub (Create.popf ());
        jne.Instr.note <- Instr.Any_note (Stub_note (stub, false));
        tg.tg_insns <- tg.tg_insns + 4
      end)
    tg.tg_checks

let finalize_trace (rt : runtime) (ts : thread_state) (tg : tracegen) : fragment =
  finalize_pending tg;
  fixup_check_flags rt ts tg;
  let head = tg.tg_head in
  let il = tg.tg_il in
  (* the client sees the completely processed trace (paper §3.3);
     instructions are fully decoded with raw bits valid (Level 3) *)
  Instrlist.decode_to il Level.L3;
  let il =
    match rt.client.trace_hook with
    | Some hook ->
        Guard.protect_il rt ~hook:"trace" il (fun il ->
            hook { rt; ts } ~tag:head il)
    | None -> il
  in
  charge_opt rt
    (Instrlist.length il * rt.opts.Options.costs.Options.trace_build_per_insn);
  Mangle.mangle_il ~tid:ts.ts_tid il;
  let src_ranges =
    List.concat_map
      (fun tag ->
        match FI.find_bb ts.index tag with
        | Some f -> f.src_ranges
        | None -> [])
      tg.tg_tags
  in
  let frag = Emit.emit_fragment rt ts ~kind:Trace ~tag:head ~src_ranges il in
  rt.stats.Stats.traces_built <- rt.stats.Stats.traces_built + 1;
  (* the trace shadows the head's bb: lookups prefer traces, the ibl
     entry moves to the trace, and the bb's links are already severed
     (it is a head).  Targets of the trace's direct exits become heads. *)
  FI.set_ibl ts.index head frag;
  Array.iter
    (fun e ->
      match e.e_kind with
      | Exit_direct ->
          if
            e.target_tag <> head
            && FI.find_trace ts.index e.target_tag = None
          then make_head rt ts e.target_tag
      | Exit_indirect _ -> ())
    frag.exits;
  ts.tracegen <- None;
  log_flow rt "built trace 0x%x (%d blocks)" head (List.length tg.tg_tags);
  frag

(* Default end-of-trace test (paper §3.5: stop at a backward branch —
   approximated as reaching another trace head — or an existing trace). *)
let default_end (rt : runtime) (ts : thread_state) (tg : tracegen) ~next =
  FI.find_trace ts.index next <> None
  || is_head ts next
  || List.length tg.tg_tags >= rt.opts.Options.max_trace_blocks

(* One dispatcher step while generating a trace.  Returns the fragment
   to execute next (always the bb for [next], unlinked). *)
let tracegen_step (rt : runtime) (ts : thread_state) ~next : fragment option =
  let tg = match ts.tracegen with Some tg -> tg | None -> assert false in
  let should_end =
    if tg.tg_pending = P_start then false (* always take the head block *)
    else if tg.tg_pending = P_halt then true
    else
      match rt.client.end_trace with
      | None -> default_end rt ts tg ~next
      | Some hook -> (
          match
            Guard.protect_end_trace rt ~hook:"end_trace" ~default:Default_end
              (fun () -> hook { rt; ts } ~trace_tag:tg.tg_head ~next_tag:next)
          with
          | End_trace -> true
          | Continue_trace -> false
          | Default_end -> default_end rt ts tg ~next)
  in
  if should_end || tg.tg_pending = P_halt then begin
    ignore (finalize_trace rt ts tg);
    None (* re-dispatch [next] normally *)
  end
  else begin
    resolve_pending ts tg ~next;
    stitch_block rt ts tg next;
    if tg.tg_pending = P_halt then begin
      (* block ends the program: close the trace now *)
      ignore (finalize_trace rt ts tg)
    end;
    (* execute the constituent block, unlinked, so control returns to
       the dispatcher to observe where execution goes *)
    let frag =
      match FI.find_bb ts.index next with
      | Some f -> f
      | None -> build_bb rt ts next
    in
    Array.iter (fun e -> Emit.unlink rt e) frag.exits;
    Some frag
  end

(* ------------------------------------------------------------------ *)
(* The dispatcher proper                                              *)
(* ------------------------------------------------------------------ *)

(* Push a value on the application stack of [ts]'s thread. *)
let push_app (rt : runtime) (ts : thread_state) v =
  let t = ts.thread in
  let sp = (Vm.Machine.get_reg t Reg.Esp - 4) land 0xFFFF_FFFF in
  Vm.Machine.set_reg t Reg.Esp sp;
  Vm.Memory.write_u32 (Vm.Machine.mem rt.machine) sp v

(* Deliver one pending signal, if any, at this safe point: push the
   interrupted application pc and redirect to the handler (all in app
   terms; the handler's code itself runs out of the code cache).
   Handlers outside application space are runtime damage (S34) — they
   are dropped, never delivered. *)
let rec deliver_signals (rt : runtime) (ts : thread_state) =
  match ts.thread.Vm.Machine.pending_signals with
  | [] -> ()
  | h :: rest ->
      ts.thread.Vm.Machine.pending_signals <- rest;
      if not (is_app_addr h) then begin
        rt.stats.Stats.spurious_signals_dropped <-
          rt.stats.Stats.spurious_signals_dropped + 1;
        log_flow rt "drop spurious signal -> 0x%x" h;
        deliver_signals rt ts
      end
      else begin
        push_app rt ts ts.next_tag;
        ts.next_tag <- h;
        rt.stats.Stats.signals_delivered <- rt.stats.Stats.signals_delivered + 1;
        log_flow rt "deliver signal -> 0x%x" h
      end

(* Look up (or create) the fragment to run for [tag] outside trace
   generation, honouring trace-head counters.  One index probe serves
   the trace lookup, the bb lookup, and the head-counter bump. *)
let fragment_for_normal (rt : runtime) (ts : thread_state) tag : fragment =
  let e = FI.ensure ts.index tag in
  match e.FI.trace with
  | Some f ->
      log_flow rt "enter trace 0x%x" tag;
      f
  | None ->
      let frag =
        match e.FI.bb with
        | Some f -> f
        | None -> build_bb rt ts tag
      in
      if (e.FI.head >= 0 || e.FI.marked) && rt.opts.Options.enable_traces then begin
        let c = 1 + (if e.FI.head >= 0 then e.FI.head else 0) in
        e.FI.head <- c;
        if c >= rt.opts.Options.trace_threshold && ts.tracegen = None then begin
          start_tracegen rt ts tag;
          match tracegen_step rt ts ~next:tag with
          | Some f -> f
          | None -> frag
        end
        else frag
      end
      else frag

(* Full dispatch: trace generation first, then normal lookup.  Signal
   delivery happens once per safe point in the quantum loop, before
   this is called. *)
let rec fragment_for (rt : runtime) (ts : thread_state) : fragment =
  let tag = ts.next_tag in
  match ts.tracegen with
  | Some _ -> (
      match tracegen_step rt ts ~next:tag with
      | Some frag -> frag
      | None ->
          (* trace was finalized; dispatch [tag] normally (it may even
             start another trace) *)
          fragment_for rt ts)
  | None -> fragment_for_normal rt ts tag

(* ------------------------------------------------------------------ *)
(* Recovery ladder (S34)                                              *)
(* ------------------------------------------------------------------ *)

(* Discard an in-progress trace generation (used when a constituent
   block turned out to be damaged mid-stitch). *)
let abort_tracegen (rt : runtime) (ts : thread_state) =
  match ts.tracegen with
  | None -> ()
  | Some _ ->
      ts.tracegen <- None;
      log_flow rt "abort trace generation"

(** Graceful degradation for a damaged [tag], escalating one rung per
    detection: re-emit the fragment → flush every fragment built from
    its source ranges → request flush-the-world → demote the tag to
    permanent pure emulation.  Each rung strictly reduces how much the
    bad state can recur, so retries are bounded. *)
let recover_tag (rt : runtime) (ts : thread_state) ~tag ~(reason : string) :
    unit =
  rt.stats.Stats.faults_detected <- rt.stats.Stats.faults_detected + 1;
  let rung = Option.value (Hashtbl.find_opt rt.recover_attempts tag) ~default:0 in
  Hashtbl.replace rt.recover_attempts tag (rung + 1);
  let frags_of_tag () =
    match FI.find ts.index tag with
    | None -> []
    | Some e ->
        (match e.FI.trace with Some f -> [ f ] | None -> [])
        @ (match e.FI.bb with Some f -> [ f ] | None -> [])
  in
  let delete_tag () =
    List.iter
      (fun f -> if not f.deleted then Emit.delete_fragment rt ts f)
      (frags_of_tag ())
  in
  match rung with
  | 0 ->
      rt.stats.Stats.recover_reemit <- rt.stats.Stats.recover_reemit + 1;
      log_flow rt "recover 0x%x [re-emit]: %s" tag reason;
      delete_tag ()
  | 1 ->
      rt.stats.Stats.recover_flush_frag <- rt.stats.Stats.recover_flush_frag + 1;
      log_flow rt "recover 0x%x [flush-fragment]: %s" tag reason;
      let ranges =
        match List.concat_map (fun f -> f.src_ranges) (frags_of_tag ()) with
        | [] -> [ (tag, tag + 1) ]
        | rs -> rs
      in
      ignore (Emit.flush_ranges rt ts ranges)
  | 2 ->
      rt.stats.Stats.recover_flush_world <- rt.stats.Stats.recover_flush_world + 1;
      log_flow rt "recover 0x%x [flush-world]: %s" tag reason;
      delete_tag ();
      (* the full flush waits for the globally safe point the quantum
         loop already honours for capacity flushes *)
      rt.flush_pending <- true
  | _ ->
      rt.stats.Stats.recover_emulate <- rt.stats.Stats.recover_emulate + 1;
      log_flow rt "recover 0x%x [emulate-only]: %s" tag reason;
      delete_tag ();
      Hashtbl.replace rt.emulate_only tag ()

(* Run the auditor and heal every violation it reports, escalating the
   offender's ladder rung on each pass.  Deletion removes the offender
   from the audited set, so this converges; the iteration bound is a
   backstop only. *)
let audit_and_heal (rt : runtime) : unit =
  let rec go n =
    if n < 16 then
      match Audit.run rt with
      | Ok () -> ()
      | Error (f, msg) ->
          (match
             List.find_opt (fun ts -> ts.ts_tid = f.f_tid) rt.thread_states
           with
          | Some fts -> recover_tag rt fts ~tag:f.tag ~reason:msg
          | None ->
              rt.stats.Stats.faults_detected <-
                rt.stats.Stats.faults_detected + 1;
              rt.stats.Stats.recover_flush_world <-
                rt.stats.Stats.recover_flush_world + 1;
              rt.flush_pending <- true);
          go (n + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Exit handling and the per-thread quantum loop                      *)
(* ------------------------------------------------------------------ *)

type quantum_result = Q_budget | Q_thread_done | Q_fault of string

(* Handle a direct exit: set next_tag, apply head heuristics, and link
   the exit to its target fragment when allowed.  One index probe
   serves the head heuristic and the link target lookup. *)
let handle_direct_exit (rt : runtime) (ts : thread_state) (e : exit_) =
  let target = e.target_tag in
  ts.next_tag <- target;
  let owner = match e.e_owner with Some f -> f | None -> rio_error "orphan exit" in
  let te = FI.ensure ts.index target in
  (* backward direct branches identify loop heads (Dynamo's heuristic) *)
  if
    rt.opts.Options.enable_traces
    && owner.kind = Bb
    && target <= owner.tag
    && te.FI.trace = None
  then make_head_entry rt te;
  (* lazy linking: once the target fragment exists, patch the branch *)
  if
    rt.opts.Options.link_direct
    && ts.tracegen = None
    && (not owner.deleted)
    && e.linked = None
  then begin
    let target_frag =
      match te.FI.trace with
      | Some f -> Some f
      | None -> (
          match te.FI.bb with
          | Some f when te.FI.head < 0 && not te.FI.marked -> Some f
          | _ -> None)
    in
    match target_frag with
    | Some f when not f.deleted -> Emit.link rt e f
    | _ -> ()
  end

(* Handle an indirect exit: consult the in-cache lookup table.  A hit
   continues in the cache (no context switch); a miss (or disabled
   in-cache lookup) pays the full context switch and dispatches. *)
let handle_indirect_exit (rt : runtime) (ts : thread_state) :
    [ `Stay of fragment | `Dispatch ] =
  let mem = Vm.Machine.mem rt.machine in
  let target = Vm.Memory.read_u32 mem (tls_addr ~tid:ts.ts_tid ~slot:slot_ibl_target) in
  ts.next_tag <- target;
  if rt.opts.Options.link_indirect && ts.tracegen = None then begin
    (* the in-cache hashtable lookup *)
    rt.stats.Stats.ibl_lookups <- rt.stats.Stats.ibl_lookups + 1;
    charge rt rt.opts.Options.costs.Options.ibl_lookup;
    match FI.find_ibl ts.index target with
    | Some f when not f.deleted ->
        log_flow rt "ibl hit 0x%x" target;
        `Stay f
    | _ ->
        rt.stats.Stats.ibl_misses <- rt.stats.Stats.ibl_misses + 1;
        log_flow rt "ibl miss 0x%x" target;
        `Dispatch
  end
  else `Dispatch

(* Run one scheduling quantum of [ts]'s thread. *)
let run_quantum (rt : runtime) (ts : thread_state) : quantum_result =
  let m = rt.machine in
  let t = ts.thread in
  let deadline = Vm.Machine.cycles m + rt.opts.Options.quantum in
  let budget () = deadline - Vm.Machine.cycles m in
  (* returns true to continue the quantum *)
  let rec from_dispatcher () =
    ts.in_cache <- false;
    if
      rt.flush_pending
      && List.for_all (fun o -> not o.in_cache) rt.thread_states
      && ts.tracegen = None
    then begin
      Emit.flush_all rt;
      charge rt rt.opts.Options.costs.Options.context_switch;
      log_flow rt "cache flush (capacity)"
    end;
    if budget () <= 0 then Q_budget
    else begin
      rt.stats.Stats.context_switches <- rt.stats.Stats.context_switches + 1;
      charge rt rt.opts.Options.costs.Options.context_switch;
      (* safe point: no thread state is mid-update and this thread is
         out of the cache — inject faults here, and audit right after
         any injection (plus on the configured period) so damage is
         healed before the cache is re-entered *)
      let injected = Faultinject.tick rt ts in
      if
        injected
        || (rt.opts.Options.audit_period > 0
            && rt.stats.Stats.context_switches mod rt.opts.Options.audit_period
               = 0)
      then audit_and_heal rt;
      log_flow rt "dispatch 0x%x" ts.next_tag;
      dispatch_next ()
    end
  and dispatch_next () =
    deliver_signals rt ts;
    if Hashtbl.mem rt.emulate_only ts.next_tag then begin
      (match ts.tracegen with
       | None -> ()
       | Some tg ->
           (* close out (or discard) the trace before leaving cache
              execution: its next block will never be a fragment *)
           if tg.tg_pending = P_start then abort_tracegen rt ts
           else ignore (finalize_trace rt ts tg));
      emulate_block ()
    end
    else
      match fragment_for rt ts with
      | frag -> enter frag
      | exception Instr.Bad_raw_bits { addr; msg } ->
          (* undecodable raw bits surfaced while building a fragment:
             heal whatever cache state fed them and retry (the ladder
             bounds the retries, ending in pure emulation) *)
          abort_tracegen rt ts;
          recover_tag rt ts ~tag:ts.next_tag
            ~reason:(Printf.sprintf "bad raw bits at 0x%x: %s" addr msg);
          from_dispatcher ()
  and emulate_block () =
    (* ladder rung 4: this tag runs by pure interpretation, forever *)
    rt.stats.Stats.blocks_emulated <- rt.stats.Stats.blocks_emulated + 1;
    log_flow rt "emulate 0x%x" ts.next_tag;
    t.Vm.Machine.pc <- ts.next_tag;
    step_emulated ()
  and step_emulated () =
    if budget () <= 0 then begin
      ts.next_tag <- t.Vm.Machine.pc;
      Q_budget
    end
    else begin
      let pc0 = t.Vm.Machine.pc in
      let was_cti =
        match Decode.opcode_eflags (Vm.Memory.fetch (Vm.Machine.mem m)) pc0 with
        | Ok (op, _) -> Opcode.is_cti op
        | Error _ -> false
      in
      (* a 1-cycle budget interprets exactly one instruction *)
      match Vm.Interp.run m t ~budget:1 ~emulate:true with
      | Vm.Interp.Budget ->
          if was_cti then begin
            (* block over: back to the dispatcher with the new tag *)
            ts.next_tag <- t.Vm.Machine.pc;
            from_dispatcher ()
          end
          else step_emulated ()
      | Vm.Interp.Halted ->
          log_flow rt "halted";
          Q_thread_done
      | Vm.Interp.Fault f -> Q_fault f
      | Vm.Interp.Smc _ ->
          let ranges = m.Vm.Machine.pending_smc in
          m.Vm.Machine.pending_smc <- [];
          let flushed = Emit.flush_ranges rt ts ranges in
          log_flow rt "smc flush (emulated): %d fragments" (List.length flushed);
          step_emulated ()
      | Vm.Interp.Signal _ ->
          (* interception keeps signals pending for our safe points *)
          step_emulated ()
      | Vm.Interp.Ccall _ | Vm.Interp.Trap _ ->
          Q_fault
            (Printf.sprintf
               "emulated application code reached a runtime construct at 0x%x"
               pc0)
    end
  and enter (frag : fragment) =
    (match frag.kind with
     | Bb -> rt.stats.Stats.enters_bb <- rt.stats.Stats.enters_bb + 1
     | Trace -> rt.stats.Stats.enters_trace <- rt.stats.Stats.enters_trace + 1);
    t.Vm.Machine.pc <- frag.entry;
    resume ()
  and resume () =
    ts.in_cache <- true;
    if budget () <= 0 then Q_budget
    else
      match Vm.Interp.run m t ~budget:(budget ()) ~emulate:false with
      | Vm.Interp.Budget -> Q_budget
      | Vm.Interp.Halted ->
          ts.in_cache <- false;
          log_flow rt "halted";
          Q_thread_done
      | Vm.Interp.Fault f ->
          ts.in_cache <- false;
          let pc = t.Vm.Machine.pc in
          if
            pc >= cache_base
            && String.length f >= 11
            && String.sub f 0 11 = "bad code at"
          then begin
            (* undecodable bytes inside the code cache: the cache, not
               the application, is damaged — heal and retry the block *)
            abort_tracegen rt ts;
            recover_tag rt ts ~tag:ts.next_tag ~reason:f;
            from_dispatcher ()
          end
          else Q_fault f
      | Vm.Interp.Signal h ->
          (* unreachable while interception is on (the VM defers
             signals to our safe points); if one surfaces anyway,
             re-queue it instead of dying *)
          ts.thread.Vm.Machine.pending_signals <-
            ts.thread.Vm.Machine.pending_signals @ [ h ];
          resume ()
      | Vm.Interp.Smc target ->
          (* the application wrote over executed code: flush the stale
             fragments, then continue where the hardware stopped *)
          let ranges = m.Vm.Machine.pending_smc in
          m.Vm.Machine.pending_smc <- [];
          let flushed = Emit.flush_ranges rt ts ranges in
          log_flow rt "smc flush: %d fragments" (List.length flushed);
          (match
             List.find_opt
               (fun f -> target >= f.entry && target < f.total_end)
               flushed
           with
           | None -> resume ()
           | Some f when target = f.entry ->
               (* a linked branch pointed at the flushed fragment: we
                  know its application tag, so dispatch it fresh *)
               ts.next_tag <- f.tag;
               from_dispatcher ()
           | Some _ ->
               Q_fault
                 "self-modifying code rewrote the fragment currently executing")
      | Vm.Interp.Ccall { id; resume = rpc } -> (
          rt.stats.Stats.clean_calls <- rt.stats.Stats.clean_calls + 1;
          charge rt rt.opts.Options.costs.Options.clean_call;
          match Hashtbl.find_opt rt.ccalls id with
          | None -> Q_fault (Printf.sprintf "unknown clean call %d" id)
          | Some f ->
              Guard.protect rt ~hook:"clean_call" (fun () -> f { rt; ts });
              t.Vm.Machine.pc <- rpc;
              resume ())
      | Vm.Interp.Trap addr -> (
          charge rt rt.opts.Options.costs.Options.stub_exec;
          let id = (addr - trap_base) / 4 in
          match exit_of_id rt id with
          | None -> Q_fault (Printf.sprintf "unknown trap 0x%x" addr)
          | Some e -> (
              match e.e_kind with
              | Exit_direct ->
                  handle_direct_exit rt ts e;
                  from_dispatcher ()
              | Exit_indirect _ -> (
                  match handle_indirect_exit rt ts with
                  | `Stay f -> enter f
                  | `Dispatch -> from_dispatcher ())))
  in
  if ts.in_cache && not rt.opts.Options.emulate then resume ()
  else if rt.opts.Options.emulate then begin
    (* Table 1 row 1: no cache; re-decode and charge overhead on every
       instruction *)
    t.Vm.Machine.pc <- ts.next_tag;
    match Vm.Interp.run m t ~budget:(budget ()) ~emulate:true with
    | Vm.Interp.Budget ->
        ts.next_tag <- t.Vm.Machine.pc;
        Q_budget
    | Vm.Interp.Halted -> Q_thread_done
    | Vm.Interp.Fault f -> Q_fault f
    | s -> Q_fault ("unexpected emulation stop: " ^ Vm.Interp.stop_to_string s)
  end
  else from_dispatcher ()
