(** Fragment emission, linking, deletion, eviction, and cache-resident
    decoding.

    A fragment's cache image is:

    {v
    entry:      body instructions (exit CTIs forced to rel32 forms)
    body_end:   stub 0: [custom preamble] jmp <trap token 0>
                stub 1: ...
    total_end:
    v}

    Exit CTIs initially target their stub; {!link} patches the CTI (or,
    for always-through-stub exits, the stub's final jump) to the target
    fragment's entry, and {!unlink} restores it.  All patches re-encode
    in place — lengths cannot change because exit branches are emitted
    in their long forms.

    Cache space comes from one of two allocators (DESIGN.md §6.3): the
    historical bump allocator ([rt.cache_cursor]) when the cache is
    unbounded or under the full flush policy, or a pair of bounded
    {!Cachealloc} regions (basic blocks / traces) under the FIFO
    policy, where emission reclaims the oldest unpinned fragments until
    the new one fits. *)

open Isa
open Types

(* An exit CTI is any direct jmp/jcc whose target leaves the fragment:
   an application address or an IND pseudo-token. *)
let exit_info (i : Instr.t) : (exit_kind * int * bool) option =
  if Instr.is_bundle i then None
  else
    match Instr.get_opcode i with
    | Opcode.Jmp | Opcode.Jcc _ -> (
        let insn = Instr.get_insn i in
        let is_cond = match insn.Insn.opcode with Opcode.Jcc _ -> true | _ -> false in
        match Insn.src insn 0 with
        | Operand.Target t -> (
            match ind_kind_of_token t with
            | Some k -> Some (Exit_indirect k, 0, is_cond)
            | None ->
                if is_app_addr t then Some (Exit_direct, t, is_cond)
                else rio_error "exit CTI with target 0x%x outside app space" t)
        | _ -> None)
    | _ -> None

let stub_note (i : Instr.t) : (Instrlist.t option * bool) =
  match i.Instr.note with
  | Instr.Any_note (Stub_note (il, always)) -> (Some il, always)
  | _ -> (None, false)

(* length of an instruction at [pc], exit CTIs forced long *)
let instr_len ~pc ~is_exit (i : Instr.t) =
  if is_exit then
    match Instr.get_opcode i with
    | Opcode.Jcc _ -> 6
    | _ -> 5 (* jmp rel32 *)
  else Instr.length ~pc i

let write_bytes (rt : runtime) ~addr (b : Bytes.t) =
  Vm.Memory.blit_bytes (Vm.Machine.mem rt.machine) ~src:b ~src_pos:0 ~dst:addr
    ~len:(Bytes.length b);
  Vm.Machine.invalidate_icache rt.machine ~addr ~len:(Bytes.length b)

(* Re-encode a single branch at [pc] with a new [target]; length must
   not change (exit branches are long-form). *)
let patch_branch (rt : runtime) ~pc ~target =
  let mem = Vm.Machine.mem rt.machine in
  let fetch = Vm.Memory.fetch mem in
  let insn, len = Decode.full_exn fetch pc in
  let insn' =
    match insn.Insn.opcode with
    | Opcode.Jmp -> Insn.mk_jmp target
    | Opcode.Jcc c -> Insn.mk_jcc c target
    | _ -> rio_error "patch_branch: not a direct branch at 0x%x" pc
  in
  let b = Encode.encode_exn ~long:true ~pc insn' in
  if Bytes.length b <> len then rio_error "patch_branch: length drift at 0x%x" pc;
  write_bytes rt ~addr:pc b

(* ------------------------------------------------------------------ *)
(* Linking                                                            *)
(* ------------------------------------------------------------------ *)

(* Every legitimate patch of an exit's bytes re-stamps the owning
   fragment's checksum, so the auditor only flags foreign writes. *)
let refresh_owner (rt : runtime) (e : exit_) =
  match e.e_owner with Some f -> Audit.refresh rt f | None -> ()

let link (rt : runtime) (e : exit_) (target : fragment) : unit =
  if e.linked <> None then rio_error "link: exit already linked";
  if target.deleted then rio_error "link: target deleted";
  e.linked <- Some target;
  target.incoming <- e :: target.incoming;
  if e.always_through_stub then patch_branch rt ~pc:e.stub_jmp_pc ~target:target.entry
  else patch_branch rt ~pc:e.branch_pc ~target:target.entry;
  refresh_owner rt e;
  rt.stats.Stats.direct_links <- rt.stats.Stats.direct_links + 1

let unlink (rt : runtime) (e : exit_) : unit =
  match e.linked with
  | None -> ()
  | Some target ->
      e.linked <- None;
      target.incoming <- List.filter (fun x -> x != e) target.incoming;
      (try
         if e.always_through_stub then
           patch_branch rt ~pc:e.stub_jmp_pc ~target:(token_of_exit e)
         else patch_branch rt ~pc:e.branch_pc ~target:e.stub_pc
       with
      | (Rio_error _ | Decode.Decode_error _)
        when (match e.e_owner with Some f -> f.deleted | None -> false) ->
          (* sabotaged branch bytes on a fragment being torn down: the
             site no longer decodes, and will never execute again *)
          ());
      refresh_owner rt e;
      rt.stats.Stats.unlinks <- rt.stats.Stats.unlinks + 1

(* ------------------------------------------------------------------ *)
(* Deletion                                                           *)
(* ------------------------------------------------------------------ *)

(** Remove a fragment: unlink everything in and out, drop table
    entries, fire the client hook (exactly once — the [deleted] flag
    guards every deletion path).  Under the FIFO policy the cache bytes
    are reclaimed later, when the fragment reaches the front of its age
    queue; under the bump allocator space is only reclaimed by a full
    flush. *)
let delete_fragment (rt : runtime) (ts : thread_state) (frag : fragment) : unit =
  if not frag.deleted then begin
    (* marked first: if the fragment's own bytes were corrupted, unlink
       of its exits may find an undecodable patch site and must know
       the fragment is already condemned *)
    frag.deleted <- true;
    List.iter (fun e -> unlink rt e) frag.incoming;
    Array.iter (fun e -> unlink rt e) frag.exits;
    Array.iter (fun e -> drop_exit rt e) frag.exits;
    (match Fragindex.find ts.index frag.tag with
     | None -> ()
     | Some en ->
         (match frag.kind with
          | Bb -> (
              match en.Fragindex.bb with
              | Some f when f == frag -> en.Fragindex.bb <- None
              | _ -> ())
          | Trace -> (
              match en.Fragindex.trace with
              | Some f when f == frag -> en.Fragindex.trace <- None
              | _ -> ()));
         (match en.Fragindex.ibl with
          | Some f when f == frag -> en.Fragindex.ibl <- None
          | _ -> ());
         (* no ghost entries: once nothing lives under the key — no
            fragment of either kind, no ibl target, no trace-head
            counter or client mark — drop it from the index entirely.
            Trace heads deliberately keep their entry (and counter). *)
         if
           en.Fragindex.bb = None && en.Fragindex.trace = None
           && en.Fragindex.ibl = None && en.Fragindex.head < 0
           && not en.Fragindex.marked
         then Fragindex.delete ts.index frag.tag);
    rt.stats.Stats.fragments_deleted <- rt.stats.Stats.fragments_deleted + 1;
    match rt.client.fragment_deleted with
    | Some hook ->
        Guard.protect rt ~hook:"fragment_deleted" (fun () ->
            hook { rt; ts } ~tag:frag.tag)
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Allocation                                                         *)
(* ------------------------------------------------------------------ *)

exception Cache_full
(** The runtime's own address region is exhausted — fatal. *)

exception No_room of bool
(** A bounded FIFO region could not host the fragment even after
    evicting every unpinned fragment.  The payload is [true] when
    pinned fragments were skipped — a full flush at the next globally
    safe point would still make room — and [false] when the region
    simply cannot fit a fragment of this size.  Trace emission drops
    the trace on either; basic-block emission requests the flush and
    retries, or surfaces {!Cache_full}. *)

let owner_ts (rt : runtime) (f : fragment) ~(fallback : thread_state) =
  match List.find_opt (fun ts -> ts.ts_tid = f.f_tid) rt.thread_states with
  | Some ts -> ts
  | None -> fallback

(* ------------------------------------------------------------------ *)
(* Relocation: moving a live fragment                                  *)
(* ------------------------------------------------------------------ *)

(** Move a live fragment's cache image to [dst] and fix up everything
    that addressed the old placement, by replaying the fragment's
    relocation table:

    - the body and stub bytes are copied (the ranges may overlap — the
      whole image is read out first);
    - every pc-relative site ([RT_exit_branch] / [RT_stub_jmp]) is
      re-encoded at its new address against its current logical target
      (linked peer's entry, own stub, or trap token — the link state in
      the exit records, which a move does not change);
    - absolute-memory operands ([RT_tls_abs] / [RT_runtime_abs]) encode
      addresses outside the cache and need no fixup;
    - inbound links (the fragment's [incoming] list) are re-pointed at
      the new entry;
    - a preempted thread resuming inside the fragment has its pc slid
      by the same delta.  Transparency guarantees this is the only
      cache address in thread state: application registers and stacks
      never hold cache addresses, so a pinned fragment is movable —
      which is exactly what lets compaction consolidate free space
      around fragments FIFO eviction must skip. *)
let move_fragment (rt : runtime) (f : fragment) ~(dst : int) : unit =
  if dst <> f.entry then begin
    let old_entry = f.entry in
    let len = f.total_end - f.entry in
    let delta = dst - old_entry in
    let mem = Vm.Machine.mem rt.machine in
    let image = Vm.Memory.read_bytes mem ~addr:old_entry ~len in
    Vm.Memory.blit_bytes mem ~src:image ~src_pos:0 ~dst ~len;
    Vm.Machine.invalidate_icache rt.machine ~addr:old_entry ~len;
    Vm.Machine.invalidate_icache rt.machine ~addr:dst ~len;
    (* preempted threads resume at a cache pc inside the old image *)
    List.iter
      (fun ts ->
        if ts.in_cache then begin
          let pc = ts.thread.Vm.Machine.pc in
          if pc >= old_entry && pc < old_entry + len then
            ts.thread.Vm.Machine.pc <- pc + delta
        end)
      rt.thread_states;
    f.entry <- dst;
    f.body_end <- f.body_end + delta;
    f.total_end <- dst + len;
    Array.iter
      (fun e ->
        e.branch_pc <- e.branch_pc + delta;
        e.stub_pc <- e.stub_pc + delta;
        e.stub_jmp_pc <- e.stub_jmp_pc + delta)
      f.exits;
    (* replay pc-relative relocations at their new sites.  Self-links
       resolve through [f.entry], already updated above. *)
    Array.iter
      (fun r ->
        match r.r_target with
        | RT_exit_branch ord ->
            let e = f.exits.(ord) in
            let target =
              match e.linked with
              | Some tgt when not e.always_through_stub -> tgt.entry
              | _ -> e.stub_pc
            in
            patch_branch rt ~pc:e.branch_pc ~target
        | RT_stub_jmp ord ->
            let e = f.exits.(ord) in
            let target =
              match e.linked with
              | Some tgt when e.always_through_stub -> tgt.entry
              | _ -> token_of_exit e
            in
            patch_branch rt ~pc:e.stub_jmp_pc ~target
        | RT_tls_abs _ | RT_runtime_abs _ -> ())
      f.relocs;
    (* inbound links follow the entry *)
    List.iter
      (fun e ->
        match e.e_owner with
        | Some o when o.deleted -> ()
        | _ ->
            if e.always_through_stub then
              patch_branch rt ~pc:e.stub_jmp_pc ~target:dst
            else patch_branch rt ~pc:e.branch_pc ~target:dst;
            refresh_owner rt e)
      f.incoming;
    Audit.refresh rt f;
    rt.stats.Stats.fragments_moved <- rt.stats.Stats.fragments_moved + 1;
    rt.stats.Stats.moved_bytes <- rt.stats.Stats.moved_bytes + len;
    charge rt rt.opts.Options.costs.Options.evict_fragment;
    log_flow rt "compact: move %s 0x%x 0x%x -> 0x%x"
      (match f.kind with Bb -> "bb" | Trace -> "trace")
      f.tag old_entry dst
  end

(** Compact a bounded FIFO region: reclaim deleted-but-unreclaimed
    queue entries immediately (instead of at their FIFO turn), then
    slide every remaining fragment — pinned ones included — down over
    the free holes in ascending address order, so the region's free
    space coalesces toward the top.  FIFO age order is preserved: the
    queue is rebuilt with the survivors in their original order. *)
let compact_region (rt : runtime) region queue : unit =
  let kept = ref [] in
  let drained = ref [] in
  while not (Queue.is_empty queue) do
    drained := Queue.pop queue :: !drained
  done;
  List.iter
    (fun f ->
      (* a deleted fragment still pinning a preempted thread (delayed
         delete) keeps its space and its queue slot; any other deleted
         entry's run is reclaimed here *)
      if f.deleted && not (thread_inside rt f) then
        ignore (Cachealloc.free region ~addr:f.entry)
      else kept := f :: !kept)
    (List.rev !drained);
  let kept = List.rev !kept in
  let by_addr = List.sort (fun a b -> compare a.entry b.entry) kept in
  List.iter
    (fun f ->
      (* a pinned dead body (delayed delete) is an immovable obstacle:
         its link graph is already torn down, so relocation replay
         cannot re-derive its branch targets — it just stays put *)
      if not f.deleted then
        let dst = Cachealloc.slide_down region ~addr:f.entry in
        move_fragment rt f ~dst)
    by_addr;
  List.iter (fun f -> Queue.push f queue) kept;
  rt.stats.Stats.compactions <- rt.stats.Stats.compactions + 1;
  log_flow rt "compact: region now %d holes, largest %d"
    (Cachealloc.holes region)
    (Cachealloc.largest_free_bytes region)

(* Allocate [bytes] in a bounded FIFO region, reclaiming the oldest
   fragments until it fits.  Queue entries come in two flavours:
   already-deleted fragments (replaced, SMC-flushed, recovered) whose
   space was merely not yet reclaimed, and live fragments, which are
   deleted here (firing the client hook and repairing incoming links
   via delete_fragment).  A pinned fragment — some preempted thread
   resumes inside it (Types.thread_inside) — is never touched: it is
   re-queued at the back and effectively treated as young.

   With [cache_compaction] on, fragmentation is answered by compaction
   instead of eviction: if the region holds enough free bytes but no
   hole is large enough, live fragments are slid together first; and
   when eviction runs out of victims (everything left is pinned), one
   compaction pass is the last resort before [No_room]. *)
let alloc_fifo (rt : runtime) (ts : thread_state) region queue bytes : int =
  let compacting = rt.opts.Options.cache_compaction in
  match Cachealloc.alloc region bytes with
  | Some a -> a
  | None -> (
      (* fragmentation, not capacity: enough free bytes exist in total *)
      if compacting && Cachealloc.free_bytes region >= bytes then
        compact_region rt region queue;
      match Cachealloc.alloc region bytes with
      | Some a -> a
      | None ->
          let skipped = ref [] in
          let requeue () =
            List.iter (fun f -> Queue.push f queue) (List.rev !skipped);
            skipped := []
          in
          let rec go () =
            match Cachealloc.alloc region bytes with
            | Some a -> a
            | None -> (
                match Queue.take_opt queue with
                | None -> (
                    (* everything evictable is gone; whether pinned
                       fragments hold the rest decides if a full flush
                       can still help — the caller's policy, not ours *)
                    let retry = !skipped <> [] in
                    requeue ();
                    (* the free space may merely be sharded around the
                       pinned survivors: compaction moves them too *)
                    let last =
                      if compacting then begin
                        compact_region rt region queue;
                        Cachealloc.alloc region bytes
                      end
                      else None
                    in
                    match last with
                    | Some a -> a
                    | None -> raise (No_room retry))
                | Some f ->
                    if thread_inside rt f then begin
                      skipped := f :: !skipped;
                      go ()
                    end
                    else begin
                      if not f.deleted then begin
                        delete_fragment rt (owner_ts rt f ~fallback:ts) f;
                        rt.stats.Stats.evictions <- rt.stats.Stats.evictions + 1;
                        rt.stats.Stats.evicted_bytes <-
                          rt.stats.Stats.evicted_bytes + (f.total_end - f.entry);
                        charge rt rt.opts.Options.costs.Options.evict_fragment;
                        log_flow rt "evict %s 0x%x"
                          (match f.kind with Bb -> "bb" | Trace -> "trace")
                          f.tag
                      end;
                      ignore (Cachealloc.free region ~addr:f.entry);
                      go ()
                    end)
          in
          let a = go () in
          requeue ();
          a)

let alloc (rt : runtime) (ts : thread_state) ~(kind : fragment_kind) n =
  match rt.cache_alloc with
  | None ->
      (* unbounded cache, or a bounded one under the full flush policy:
         bump allocation with a soft capacity check (the fragment being
         built must land somewhere; the flush happens at the next
         globally safe point) *)
      let a = rt.cache_cursor in
      if a + n > rt.heap_cursor then raise Cache_full;
      (match rt.opts.Options.cache_capacity with
       | Some cap when a + n - cache_base > cap -> rt.flush_pending <- true
       | _ -> ());
      rt.cache_cursor <- a + n;
      a
  | Some (bb_region, trace_region) -> (
      match kind with
      | Bb -> alloc_fifo rt ts bb_region rt.fifo_bb n
      | Trace -> alloc_fifo rt ts trace_region rt.fifo_trace n)

(** Refresh the free-list gauges in {!Stats} from the live allocators
    (no-op under the bump allocator). *)
let refresh_cache_gauges (rt : runtime) : unit =
  match rt.cache_alloc with
  | None -> ()
  | Some (bb_region, trace_region) ->
      rt.stats.Stats.freelist_holes <-
        Cachealloc.holes bb_region + Cachealloc.holes trace_region;
      rt.stats.Stats.freelist_free_bytes <-
        Cachealloc.free_bytes bb_region + Cachealloc.free_bytes trace_region;
      rt.stats.Stats.freelist_largest_hole <-
        max
          (Cachealloc.largest_free_bytes bb_region)
          (Cachealloc.largest_free_bytes trace_region)

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)
(* ------------------------------------------------------------------ *)

type planned_exit = {
  px_instr : Instr.t;
  px_kind : exit_kind;
  px_target : int;
  px_cond : bool;
  px_stub_il : Instrlist.t option;
  px_always : bool;
  px_secondary : bool;   (* lives inside another exit's stub *)
  mutable px_branch_pc : int;
  mutable px_stub_pc : int;
  mutable px_stub_jmp_pc : int;
}

(** Emit a client-view (already mangled) IL as a fragment for [tag].

    Exit CTIs may appear both in the body and inside custom stubs
    (one level deep) — the latter is how a client builds a "code
    sequence at the bottom of the trace" reached only on an exit path
    (paper §4.3).  Registers the fragment; does not link. *)
let emit_fragment (rt : runtime) (ts : thread_state) ~(kind : fragment_kind)
    ~(tag : int) ?(src_ranges = []) (il : Instrlist.t) : fragment =
  let plan_of ~secondary (i : Instr.t) (k, target, is_cond) =
    let stub_il, always = stub_note i in
    if secondary then
      Option.iter
        (fun sil ->
          Instrlist.iter sil (fun si ->
              if exit_info si <> None then
                rio_error "emit: exits nested deeper than one stub level"))
        stub_il;
    {
      px_instr = i;
      px_kind = k;
      px_target = target;
      px_cond = is_cond;
      px_stub_il = stub_il;
      px_always = always;
      px_secondary = secondary;
      px_branch_pc = 0;
      px_stub_pc = 0;
      px_stub_jmp_pc = 0;
    }
  in
  (* plan body exits, then exits living inside their stubs *)
  let body_planned = ref [] in
  Instrlist.iter il (fun i ->
      match exit_info i with
      | None -> ()
      | Some info -> body_planned := plan_of ~secondary:false i info :: !body_planned);
  let body_planned = List.rev !body_planned in
  let sec_planned =
    List.concat_map
      (fun p ->
        match p.px_stub_il with
        | None -> []
        | Some sil ->
            let acc = ref [] in
            Instrlist.iter sil (fun si ->
                match exit_info si with
                | None -> ()
                | Some info -> acc := plan_of ~secondary:true si info :: !acc);
            List.rev !acc)
      body_planned
  in
  let planned = body_planned @ sec_planned in
  (* a fragment may legitimately have no exits if it ends in hlt *)
  let find_planned i = List.find_opt (fun p -> p.px_instr == i) planned in
  (* pass 1: layout.  Lengths of non-CTI instructions don't depend on
     pc and exit CTIs use fixed long forms, so layout is pc-independent. *)
  let seq_size (s : Instrlist.t) =
    Instrlist.fold s ~init:0 (fun sz si ->
        let is_exit = find_planned si <> None in
        sz + instr_len ~pc:sz ~is_exit si)
  in
  let body_size =
    Instrlist.fold il ~init:0 (fun sz i ->
        let is_exit = find_planned i <> None in
        sz + instr_len ~pc:sz ~is_exit i)
  in
  let stub_size p =
    (match p.px_stub_il with None -> 0 | Some sil -> seq_size sil) + 5
  in
  let stub_sizes = List.map stub_size planned in
  let total = body_size + List.fold_left ( + ) 0 stub_sizes in
  let entry = alloc rt ts ~kind total in
  let body_end = entry + body_size in
  let _ =
    List.fold_left2
      (fun addr p sz ->
        p.px_stub_pc <- addr;
        p.px_stub_jmp_pc <- addr + sz - 5;
        addr + sz)
      body_end planned stub_sizes
  in
  (* pass 2: encode *)
  let buf = Buffer.create total in
  let pc = ref entry in
  (* Absolute-memory relocations: any instruction already at Full level
     (mangle- or client-inserted code, and re-decoded bodies) may
     address a runtime-absolute cell — a TLS slot (spills, flags saves,
     the client tls_field) or a runtime heap cell (client globals,
     profiling counters).  App-origin instructions below L3 can only
     reference application space, so they are not decoded just to
     scan them. *)
  let abs_relocs = ref [] in
  let scan_abs (i : Instr.t) =
    match Instr.level i with
    | Level.L3 | Level.L4 ->
        let insn = Instr.get_insn i in
        let op (o : Operand.t) =
          match o with
          | Operand.Mem { base = None; index = None; disp } when disp >= tls_base
            ->
              let r_target =
                match tls_slot_of_addr disp with
                | Some (tid, slot) -> RT_tls_abs (tid, slot)
                | None -> RT_runtime_abs disp
              in
              abs_relocs := { r_off = !pc - entry; r_target } :: !abs_relocs
          | _ -> ()
        in
        Array.iter op insn.Insn.srcs;
        Array.iter op insn.Insn.dsts
    | _ -> ()
  in
  let encode_one (i : Instr.t) =
    match find_planned i with
    | Some p ->
        p.px_branch_pc <- !pc;
        (* initial target: the exit's own stub *)
        let insn = Instr.get_insn i in
        let insn' =
          match insn.Insn.opcode with
          | Opcode.Jmp -> Insn.mk_jmp p.px_stub_pc
          | Opcode.Jcc c -> Insn.mk_jcc c p.px_stub_pc
          | _ -> assert false
        in
        let b = Encode.encode_exn ~long:true ~pc:!pc insn' in
        Buffer.add_bytes buf b;
        pc := !pc + Bytes.length b
    | None ->
        scan_abs i;
        let b = Instr.encode ~pc:!pc i in
        Buffer.add_bytes buf b;
        pc := !pc + Bytes.length b
  in
  Instrlist.iter il encode_one;
  if !pc <> body_end then rio_error "emit: body layout drift (tag 0x%x)" tag;
  (* allocate exit ids and encode stubs (in planning order, which is
     also layout order) *)
  let exits =
    List.map
      (fun p ->
        let id = rt.next_exit_id in
        rt.next_exit_id <- rt.next_exit_id + 1;
        let e =
          {
            exit_id = id;
            e_kind = p.px_kind;
            target_tag = p.px_target;
            branch_pc = 0 (* patched below once the stub is encoded *);
            branch_is_cond = p.px_cond;
            stub_pc = p.px_stub_pc;
            stub_jmp_pc = p.px_stub_jmp_pc;
            linked = None;
            always_through_stub = p.px_always;
            stub_il = p.px_stub_il;
            e_owner = None;
          }
        in
        register_exit rt e;
        (p, e))
      planned
  in
  List.iter
    (fun (p, e) ->
      if !pc <> p.px_stub_pc then rio_error "emit: stub layout drift (tag 0x%x)" tag;
      (match p.px_stub_il with
       | None -> ()
       | Some sil -> Instrlist.iter sil encode_one);
      let jb =
        Encode.encode_exn ~long:true ~pc:p.px_stub_jmp_pc
          (Insn.mk_jmp (token_of_exit e))
      in
      Buffer.add_bytes buf jb;
      pc := !pc + Bytes.length jb)
    exits;
  (* branch_pc was recorded into the plan during encoding *)
  let exits =
    List.map
      (fun (p, e) ->
        e.branch_pc <- p.px_branch_pc;
        e)
      exits
  in
  write_bytes rt ~addr:entry (Buffer.to_bytes buf);
  (* the typed relocation table: every absolute target embedded in the
     fragment's bytes, as entry-relative sites.  Exit CTIs and stub
     jumps are pc-relative encodings of absolute targets, so a move
     re-encodes them; the absolute-memory operands collected above are
     position-independent under a move but gate persistence. *)
  let relocs =
    Array.of_list
      (List.concat
         (List.mapi
            (fun ord e ->
              [
                { r_off = e.branch_pc - entry; r_target = RT_exit_branch ord };
                { r_off = e.stub_jmp_pc - entry; r_target = RT_stub_jmp ord };
              ])
            exits)
      @ List.rev !abs_relocs)
  in
  let frag =
    {
      tag;
      kind;
      f_tid = ts.ts_tid;
      entry;
      body_end;
      total_end = entry + total;
      relocs;
      exits = Array.of_list exits;
      incoming = [];
      deleted = false;
      exec_count = 0;
      reopted = false;
      loaded = false;
      guards = [];
      checksum = 0;
      src_ranges;
    }
  in
  List.iter (fun e -> e.e_owner <- Some frag) exits;
  Audit.refresh rt frag;
  (match kind with
   | Bb ->
       Fragindex.set_bb ts.index tag frag;
       rt.stats.Stats.cache_bytes_bb <- rt.stats.Stats.cache_bytes_bb + total
   | Trace ->
       Fragindex.set_trace ts.index tag frag;
       rt.stats.Stats.cache_bytes_trace <- rt.stats.Stats.cache_bytes_trace + total);
  (* FIFO age tracking: every bounded-cache fragment joins its region's
     queue once, at emission; it leaves when its space is reclaimed *)
  (if rt.cache_alloc <> None then
     match kind with
     | Bb -> Queue.push frag rt.fifo_bb
     | Trace -> Queue.push frag rt.fifo_trace);
  frag

(* ------------------------------------------------------------------ *)
(* Cache-resident decode (client view)                                *)
(* ------------------------------------------------------------------ *)

(** Rebuild the client-view IL of a fragment by decoding its cache
    bytes (paper §3.4, [dr_decode_fragment]).  Exit CTIs are mapped
    back to their canonical form: direct exits get their application
    target, indirect exits their IND pseudo-token; custom stubs are
    re-attached as notes. *)
let decode_fragment_il (rt : runtime) (frag : fragment) : Instrlist.t =
  let mem = Vm.Machine.mem rt.machine in
  let fetch = Vm.Memory.fetch mem in
  let by_branch_pc = Hashtbl.create 8 in
  Array.iter (fun e -> Hashtbl.replace by_branch_pc e.branch_pc e) frag.exits;
  let il = Instrlist.create () in
  let pc = ref frag.entry in
  while !pc < frag.body_end do
    let insn, len = Decode.full_exn fetch !pc in
    let raw = Vm.Memory.read_bytes mem ~addr:!pc ~len in
    let instr =
      match Hashtbl.find_opt by_branch_pc !pc with
      | Some e ->
          let target =
            match e.e_kind with
            | Exit_direct -> e.target_tag
            | Exit_indirect k -> ind_token k
          in
          let insn' =
            match insn.Insn.opcode with
            | Opcode.Jmp -> Insn.mk_jmp target
            | Opcode.Jcc c -> Insn.mk_jcc c target
            | _ -> rio_error "decode_fragment: exit at 0x%x is not a branch" !pc
          in
          let i = Instr.of_insn insn' in
          (match (e.stub_il, e.always_through_stub) with
           | None, false -> ()
           | sil, always ->
               let sil = Option.value sil ~default:(Instrlist.create ()) in
               i.Instr.note <- Instr.Any_note (Stub_note (sil, always)));
          i
      | None -> Instr.of_decoded ~addr:!pc ~raw insn
    in
    Instrlist.append il instr;
    pc := !pc + len
  done;
  il

(* ------------------------------------------------------------------ *)
(* Replacement (adaptive re-optimization, paper §3.4)                 *)
(* ------------------------------------------------------------------ *)

(** Replace [old_frag] with a fresh emission of [il].  All links
    targeting the old fragment move to the new one atomically (from the
    application's perspective); the old body stays in memory so a
    thread currently executing inside it simply runs until its next
    exit, whose stubs remain valid — exactly the paper's delayed-delete
    scheme. *)
let replace_fragment (rt : runtime) (ts : thread_state) (old_frag : fragment)
    (il : Instrlist.t) : fragment =
  Mangle.mangle_il ~tid:ts.ts_tid il;
  let incoming = old_frag.incoming in
  (* detach incoming first so delete doesn't restore them to stubs *)
  old_frag.incoming <- [];
  let fresh =
    try
      emit_fragment rt ts ~kind:old_frag.kind ~tag:old_frag.tag
        ~src_ranges:old_frag.src_ranges il
    with No_room _ as e ->
      (* the bounded region refused the replacement: repair the link
         invariants broken by the detach above before giving up.  The
         failed emission may itself have evicted fragments — including
         [old_frag], whose deletion saw an empty incoming list *)
      if old_frag.deleted then
        (* old body is gone: surviving incoming branches must fall back
           to their stubs (unlink still sees e.linked = old_frag) *)
        List.iter
          (fun ex ->
            match ex.e_owner with
            | Some o when not o.deleted -> unlink rt ex
            | _ -> ex.linked <- None)
          incoming
      else
        (* old body stays live: re-attach the survivors *)
        old_frag.incoming <-
          List.filter
            (fun ex ->
              match ex.e_owner with
              | Some o when not o.deleted -> true
              | _ ->
                  ex.linked <- None;
                  false)
            incoming;
      raise e
  in
  (* Detach the old body from the link graph.  Its outgoing exits fall
     back to their stubs, so a thread still inside the old body leaves
     through the dispatcher — and no other fragment's incoming list
     keeps a patch site that would go stale when the old body's space
     is reclaimed and reused by the FIFO allocator.  If capacity
     pressure already evicted the old fragment during the emission
     above, delete_fragment did this (and its body bytes may be gone —
     do not touch them again). *)
  if not old_frag.deleted then
    Array.iter (fun e -> unlink rt e) old_frag.exits;
  List.iter
    (fun e ->
      (* under FIFO capacity pressure the emission above may already
         have evicted the fragment owning this incoming exit — its
         patch sites are reclaimed space now; leave it unlinked.  The
         old fragment's own self-loop exits were just unlinked above:
         they must not be re-pointed at [fresh], or its incoming list
         would keep a patch site inside the old body's dying space. *)
      match e.e_owner with
      | Some o when (not o.deleted) && o != old_frag ->
          e.linked <- None;
          (* re-point each incoming branch at the new entry *)
          if e.always_through_stub then
            patch_branch rt ~pc:e.stub_jmp_pc ~target:fresh.entry
          else patch_branch rt ~pc:e.branch_pc ~target:fresh.entry;
          refresh_owner rt e;
          e.linked <- Some fresh;
          fresh.incoming <- e :: fresh.incoming
      | Some o when o == old_frag -> () (* already unlinked above *)
      | _ -> e.linked <- None)
    incoming;
  (* the old fragment's stubs stay alive — a thread may still be
     executing inside the old body; emit_fragment already re-pointed
     the tag tables at the fresh fragment *)
  (match Fragindex.find ts.index old_frag.tag with
   | Some en when en.Fragindex.ibl <> None -> en.Fragindex.ibl <- Some fresh
   | _ -> ());
  (* delayed delete, exactly once: capacity eviction may have torn the
     old fragment down during the emission above, firing the hook
     already *)
  if not old_frag.deleted then begin
    old_frag.deleted <- true;
    rt.stats.Stats.fragments_replaced <- rt.stats.Stats.fragments_replaced + 1;
    charge_opt rt rt.opts.Options.costs.Options.replace_fragment;
    match rt.client.fragment_deleted with
    | Some hook ->
        Guard.protect rt ~hook:"fragment_deleted" (fun () ->
            hook { rt; ts } ~tag:old_frag.tag)
    | None -> ()
  end;
  fresh

(* ------------------------------------------------------------------ *)
(* Self-modifying-code flushes                                        *)
(* ------------------------------------------------------------------ *)

(** Delete every fragment built from application code overlapping any
    of [ranges].  Returns the deleted fragments (so the dispatcher can
    refuse to resume inside one). *)
let flush_ranges (rt : runtime) (ts : thread_state) (ranges : (int * int) list) :
    fragment list =
  let overlaps (f : fragment) =
    List.exists
      (fun (lo, hi) ->
        List.exists (fun (a, b) -> a < hi && lo < b) f.src_ranges)
      ranges
  in
  let victims = ref [] in
  let collect _ f = if (not f.deleted) && overlaps f then victims := f :: !victims in
  Fragindex.iter_bbs ts.index collect;
  Fragindex.iter_traces ts.index collect;
  List.iter (fun f -> delete_fragment rt ts f) !victims;
  !victims

(* ------------------------------------------------------------------ *)
(* Capacity management: flush the world                               *)
(* ------------------------------------------------------------------ *)

(** Delete every fragment of every thread and reclaim the cache region.
    Only legal when no thread is executing inside the cache (the
    dispatcher calls this at safe points). *)
let flush_all (rt : runtime) : unit =
  List.iter
    (fun ts ->
      let frags = ref [] in
      Fragindex.iter_bbs ts.index (fun _ f -> frags := f :: !frags);
      Fragindex.iter_traces ts.index (fun _ f -> frags := f :: !frags);
      List.iter (fun f -> delete_fragment rt ts f) !frags;
      (* O(1) invalidation of every remaining slot (ibl included);
         head counters survive, as before *)
      Fragindex.flush_fragments ts.index)
    rt.thread_states;
  (match rt.cache_alloc with
   | None -> rt.cache_cursor <- cache_base
   | Some (bb_region, trace_region) ->
       (* FIFO mode: drop the age queues (deleted-but-unreclaimed
          entries included) and reopen both regions empty; the bump
          cursor stays pinned at the region end guarding the heap *)
       Queue.clear rt.fifo_bb;
       Queue.clear rt.fifo_trace;
       Cachealloc.reset bb_region;
       Cachealloc.reset trace_region);
  rt.flush_pending <- false;
  rt.stats.Stats.cache_flushes <- rt.stats.Stats.cache_flushes + 1

(* ------------------------------------------------------------------ *)
(* Invariant checking (tests and debugging)                           *)
(* ------------------------------------------------------------------ *)

(** Verify cache/link consistency (DESIGN.md invariant 7) over every
    live fragment:
    - a linked exit's target fragment is live, and the exit appears in
      the target's incoming list (and vice versa);
    - the patched branch bytes agree with the link state (linked →
      target entry / always-through-stub rules; unlinked → own stub);
    - every stub's final jump targets either its trap token (unlinked)
      or the linked target's entry (always-through-stub). *)
let check_invariants (rt : runtime) : (unit, string) result =
  let fetch = Vm.Memory.fetch (Vm.Machine.mem rt.machine) in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  let branch_target pc =
    match Decode.full fetch pc with
    | Ok (insn, _) when Insn.is_cti insn -> (
        match Insn.src insn 0 with
        | Operand.Target t -> Some t
        | _ -> None)
    | _ -> None
  in
  let check_fragment ts (f : fragment) =
    Array.iter
      (fun e ->
        (* incoming consistency *)
        (match e.linked with
         | Some tgt ->
             if tgt.deleted then
               fail "exit %d of 0x%x linked to deleted fragment 0x%x" e.exit_id
                 f.tag tgt.tag;
             if not (List.memq e tgt.incoming) then
               fail "exit %d of 0x%x missing from 0x%x's incoming list" e.exit_id
                 f.tag tgt.tag
         | None -> ());
        (* patched bytes agree with link state *)
        let expected_branch =
          match e.linked with
          | Some tgt when not e.always_through_stub -> tgt.entry
          | _ -> e.stub_pc
        in
        (match branch_target e.branch_pc with
         | Some t when t = expected_branch -> ()
         | Some t ->
             fail "exit %d of 0x%x: branch targets 0x%x, expected 0x%x" e.exit_id
               f.tag t expected_branch
         | None -> fail "exit %d of 0x%x: branch not decodable" e.exit_id f.tag);
        let expected_stub_jmp =
          match e.linked with
          | Some tgt when e.always_through_stub -> tgt.entry
          | _ -> token_of_exit e
        in
        match branch_target e.stub_jmp_pc with
        | Some t when t = expected_stub_jmp -> ()
        | Some t ->
            fail "exit %d of 0x%x: stub jmp targets 0x%x, expected 0x%x" e.exit_id
              f.tag t expected_stub_jmp
        | None -> fail "exit %d of 0x%x: stub jmp not decodable" e.exit_id f.tag)
      f.exits;
    (* incoming entries really point at us *)
    List.iter
      (fun e ->
        match e.linked with
        | Some tgt when tgt == f -> ()
        | _ -> fail "0x%x's incoming list holds exit %d not linked to it" f.tag e.exit_id)
      f.incoming;
    ignore ts
  in
  List.iter
    (fun ts ->
      Fragindex.iter_bbs ts.index (fun _ f -> if not f.deleted then check_fragment ts f);
      Fragindex.iter_traces ts.index (fun _ f -> if not f.deleted then check_fragment ts f);
      (* ibl entries must be live and not bb trace-heads *)
      Fragindex.iter_ibl ts.index
        (fun tag f ->
          if f.deleted then fail "ibl entry 0x%x points to a deleted fragment" tag))
    rt.thread_states;
  match !err with None -> Ok () | Some e -> Error e
