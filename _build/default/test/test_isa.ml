(** Tests for the SynISA substrate: encoder, decoders, metadata. *)

open Isa

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let _ = check

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

let encode_at ~pc i =
  match Encode.encode ~pc i with
  | Ok b -> b
  | Error e ->
      Alcotest.failf "encode failed for %s: %s" (Disasm.insn_to_string i)
        (Encode.error_to_string e)

let decode_at ~pc (b : Bytes.t) =
  (* place the bytes "at" [pc] by offsetting the fetcher *)
  let f addr = Char.code (Bytes.get b (addr - pc)) in
  match Decode.full f pc with
  | Ok r -> r
  | Error e -> Alcotest.failf "decode failed: %s" (Decode.error_to_string e)

let roundtrip ~pc i =
  let b = encode_at ~pc i in
  let i', len = decode_at ~pc b in
  (i', len, Bytes.length b)

(* ------------------------------------------------------------------ *)
(* Unit tests: specific encodings                                     *)
(* ------------------------------------------------------------------ *)

let test_short_forms () =
  let len i = Bytes.length (encode_at ~pc:0x1000 i) in
  checki "inc reg is 1 byte" 1 (len (Insn.mk_inc (Operand.Reg Reg.Ebx)));
  checki "dec reg is 1 byte" 1 (len (Insn.mk_dec (Operand.Reg Reg.Esi)));
  checki "push reg is 1 byte" 1 (len (Insn.mk_push (Operand.Reg Reg.Ebp)));
  checki "pop reg is 1 byte" 1 (len (Insn.mk_pop (Operand.Reg Reg.Edi)));
  checki "nop is 1 byte" 1 (len (Insn.mk_nop ()));
  checki "ret is 1 byte" 1 (len (Insn.mk_ret ()));
  checki "mov reg,imm32 is 5 bytes" 5
    (len (Insn.mk_mov (Operand.Reg Reg.Ecx) (Operand.Imm 123456)));
  checki "add eax,imm8 is 2 bytes" 2
    (len (Insn.mk_add (Operand.Reg Reg.Eax) (Operand.Imm 5)));
  checki "add reg,imm8 is 3 bytes" 3
    (len (Insn.mk_add (Operand.Reg Reg.Ebx) (Operand.Imm 5)));
  checki "add reg,imm32 is 6 bytes" 6
    (len (Insn.mk_add (Operand.Reg Reg.Ebx) (Operand.Imm 100000)))

let test_jcc_forms () =
  (* short branch: rel8 *)
  let near = Insn.mk_jcc Cond.Z 0x1010 in
  checki "jcc near is 2 bytes" 2 (Bytes.length (encode_at ~pc:0x1000 near));
  (* far branch: rel32 via escape *)
  let far = Insn.mk_jcc Cond.Z 0x90000 in
  checki "jcc far is 6 bytes" 6 (Bytes.length (encode_at ~pc:0x1000 far));
  (* backward branch *)
  let back = Insn.mk_jmp 0x0FF0 in
  checki "jmp back near is 2 bytes" 2 (Bytes.length (encode_at ~pc:0x1000 back))

let test_esp_memory_forms () =
  (* esp-based addressing requires a SIB byte *)
  let i = Insn.mk_mov (Operand.Reg Reg.Eax) (Operand.mem_base ~disp:8 Reg.Esp) in
  let b = encode_at ~pc:0 i in
  checki "mov eax, 8(%esp) is 4 bytes (op+modrm+sib+disp8)" 4 (Bytes.length b);
  let i', _ = decode_at ~pc:0 b in
  checkb "esp-mem roundtrip" true (Insn.equal i i')

let test_ebp_disp0 () =
  (* (%ebp) with no displacement must still encode (mod=1 disp8=0) *)
  let i = Insn.mk_mov (Operand.Reg Reg.Eax) (Operand.mem_base Reg.Ebp) in
  let i', _, _ = roundtrip ~pc:0 i in
  checkb "(%ebp) roundtrip" true (Insn.equal i i')

let test_absolute_mem () =
  let i = Insn.mk_mov (Operand.Reg Reg.Edx) (Operand.mem_abs 0x8000) in
  let i', len, blen = roundtrip ~pc:0x400 i in
  checki "abs mem len" blen len;
  checkb "abs mem roundtrip" true (Insn.equal i i')

let test_lock_prefix () =
  let i = { (Insn.mk_add (Operand.mem_base Reg.Ebx) (Operand.Reg Reg.Eax))
            with Insn.prefixes = Insn.prefix_lock } in
  let b = encode_at ~pc:0 i in
  checki "lock prefix first byte" 0xF0 (Char.code (Bytes.get b 0));
  let i', _ = decode_at ~pc:0 b in
  checkb "lock prefix kept" true (i'.Insn.prefixes = Insn.prefix_lock);
  checkb "lock roundtrip" true (Insn.equal i i')

let test_invalid_shapes () =
  let mm = Insn.mk_mov (Operand.mem_base Reg.Eax) (Operand.mem_base Reg.Ebx) in
  checkb "mem-to-mem mov rejected" true (Result.is_error (Encode.encode ~pc:0 mm));
  let bad_shift =
    Insn.mk_shl (Operand.Reg Reg.Eax) (Operand.Reg Reg.Ebx) (* only %ecx allowed *)
  in
  checkb "shift by non-ecx reg rejected" true
    (Result.is_error (Encode.encode ~pc:0 bad_shift))

let test_invalid_decode () =
  (* 0x06 is ALU form 6: unused *)
  let f = Decode.fetch_bytes (Bytes.of_string "\x06\x00") in
  checkb "invalid opcode rejected" true (Result.is_error (Decode.full f 0));
  checkb "invalid boundary rejected" true (Result.is_error (Decode.boundary f 0))

let test_cond_invert () =
  List.iter
    (fun c ->
      let c' = Cond.invert c in
      checkb
        (Printf.sprintf "invert %s is involutive" (Cond.name c))
        true
        (Cond.equal c (Cond.invert c'));
      (* inverted condition evaluates oppositely on every flag value *)
      for fl = 0 to 0xFFF do
        if Cond.eval c fl = Cond.eval c' fl then
          Alcotest.failf "cond %s and inverse agree on flags %x" (Cond.name c) fl
      done)
    Cond.all

let test_eflags_metadata () =
  let open Eflags in
  let m = Opcode.eflags Opcode.Inc in
  checkb "inc does not write CF" false (writes_flag m CF);
  checkb "inc writes ZF" true (writes_flag m ZF);
  let m = Opcode.eflags Opcode.Add in
  checkb "add writes CF" true (writes_flag m CF);
  let m = Opcode.eflags (Opcode.Jcc Cond.B) in
  checkb "jb reads CF" true (reads_flag m CF);
  checkb "jb does not write" true (write_set m = []);
  let m = Opcode.eflags Opcode.Adc in
  checkb "adc reads CF" true (reads_flag m CF);
  checkb "mov touches nothing" true (Opcode.eflags Opcode.Mov = Eflags.none)

let test_disasm_smoke () =
  let i = Insn.mk_add (Operand.Reg Reg.Eax) (Operand.Imm 1) in
  check Alcotest.string "disasm add" "add %eax, $0x1" (Disasm.insn_to_string i);
  let i = Insn.mk_jcc Cond.NL 0x77f52269 in
  check Alcotest.string "disasm jnl" "jnl 0x77f52269" (Disasm.insn_to_string i)

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  QCheck2.Test.make ~name:"decode (encode i) = i" ~count:2000
    ~print:Gen.print_insn_at Gen.insn_at (fun (i, pc) ->
      match Encode.encode ~pc i with
      | Error e -> QCheck2.Test.fail_reportf "encode: %s" (Encode.error_to_string e)
      | Ok b ->
          let f addr = Char.code (Bytes.get b (addr - pc)) in
          (match Decode.full f pc with
           | Error e -> QCheck2.Test.fail_reportf "decode: %s" (Decode.error_to_string e)
           | Ok (i', len) ->
               if len <> Bytes.length b then
                 QCheck2.Test.fail_reportf "length mismatch: %d vs %d" len
                   (Bytes.length b)
               else if not (Insn.equal i i') then
                 QCheck2.Test.fail_reportf "got %s" (Disasm.insn_to_string i')
               else true))

let prop_boundary_agrees =
  QCheck2.Test.make ~name:"boundary scan = full decode length" ~count:2000
    ~print:Gen.print_insn_at Gen.insn_at (fun (i, pc) ->
      let b = Encode.encode_exn ~pc i in
      let f addr = Char.code (Bytes.get b (addr - pc)) in
      let l0 = Decode.boundary_exn f pc in
      let op, l2 = Decode.opcode_eflags_exn f pc in
      let _, l3 = Decode.full_exn f pc in
      l0 = l3 && l2 = l3 && Opcode.equal op i.Insn.opcode)

let prop_valid_always_encodes =
  QCheck2.Test.make ~name:"valid instructions always have a template" ~count:2000
    ~print:Gen.print_insn_at Gen.insn_at (fun (i, pc) ->
      match Insn.validate i with
      | Error _ -> true (* generator shouldn't produce these, but skip *)
      | Ok () -> Result.is_ok (Encode.encode ~pc i))

let prop_reencode_stable =
  (* encoding is deterministic and re-encoding a decoded instruction at
     the same pc gives identical bytes *)
  QCheck2.Test.make ~name:"encode (decode (encode i)) = encode i" ~count:1000
    ~print:Gen.print_insn_at Gen.insn_at (fun (i, pc) ->
      let b = Encode.encode_exn ~pc i in
      let f addr = Char.code (Bytes.get b (addr - pc)) in
      let i', _ = Decode.full_exn f pc in
      let b' = Encode.encode_exn ~pc i' in
      Bytes.equal b b')

let prop_shortest_form =
  (* the encoder never emits a longer encoding than any alternative
     template produces: check against brute-force minimum over templates
     by re-encoding with sub-ranged immediates.  We approximate by
     checking known dominances: imm8-able immediates never use imm32
     forms, reg forms never use modrm long forms. *)
  QCheck2.Test.make ~name:"short forms are chosen" ~count:1000
    ~print:Gen.print_insn Gen.insn (fun i ->
      let b = Encode.encode_exn ~pc:0x1000 i in
      let len = Bytes.length b in
      match (i.Insn.opcode, i.Insn.dsts, i.Insn.srcs) with
      | (Opcode.Inc | Opcode.Dec), [| Operand.Reg _ |], _ -> len = 1
      | Opcode.Push, _, [| Operand.Reg _; _ |] -> len = 1
      | Opcode.Pop, [| Operand.Reg _; _ |], _ -> len = 1
      | Opcode.Mov, [| Operand.Reg _ |], [| Operand.Imm _ |] -> len = 5
      | ( (Opcode.Add | Opcode.Sub | Opcode.And | Opcode.Or | Opcode.Xor),
          [| Operand.Reg Reg.Eax |],
          [| Operand.Imm n; _ |] )
        when Encoding_spec.fits_i8 n ->
          len = 2
      | _ -> len <= 12)

let prop_decoder_total =
  (* the decoder is total on arbitrary byte soup: every call either
     returns a decoded instruction with a sane length or a structured
     error — never an exception, never a zero/negative length.  (This is
     what lets the runtime scan unknown application memory safely.) *)
  QCheck2.Test.make ~name:"decoder never crashes on random bytes" ~count:2000
    ~print:(fun b -> Disasm.hex_bytes (Bytes.of_string b))
    QCheck2.Gen.(string_size ~gen:char (int_range 16 32))
    (fun s ->
      (* pad generously so reads past a truncated instruction stay in
         bounds; bounds themselves are the fetcher's concern *)
      let padded = s ^ String.make 16 '\x00' in
      let f = Decode.fetch_string padded in
      let check_result = function
        | Ok len -> len > 0 && len <= 13
        | Error _ -> true
      in
      check_result (Decode.boundary f 0)
      && check_result (Result.map snd (Decode.opcode_eflags f 0))
      && check_result (Result.map snd (Decode.full f 0))
      &&
      (* whatever fully decodes, the cheap scanners accept with the
         same length (the cheap scans may accept a superset: they skip
         operand-shape checks, like a real length decoder) *)
      match Decode.full f 0 with
      | Error _ -> true
      | Ok (_, len) ->
          Decode.boundary f 0 = Ok len
          && Result.map snd (Decode.opcode_eflags f 0) = Ok len)

let prop_decoded_garbage_reencodes =
  (* anything the decoder accepts, the encoder can re-produce *)
  QCheck2.Test.make ~name:"decoded random bytes re-encode" ~count:2000
    ~print:(fun b -> Disasm.hex_bytes (Bytes.of_string b))
    QCheck2.Gen.(string_size ~gen:char (int_range 16 32))
    (fun s ->
      let padded = s ^ String.make 16 '\x00' in
      match Decode.full (Decode.fetch_string padded) 0 with
      | Error _ -> true
      | Ok (insn, _) -> Result.is_ok (Encode.encode ~pc:0 insn))

let prop_eflags_mask_shape =
  QCheck2.Test.make ~name:"eflags masks: read/write halves disjoint bit ranges"
    ~count:500 ~print:Gen.print_insn Gen.insn (fun i ->
      let m = Insn.eflags i in
      let r = Eflags.read_mask m and w = Eflags.write_mask m in
      r land lnot Eflags.all_mask = 0 && w land lnot Eflags.all_mask = 0)

(* ------------------------------------------------------------------ *)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_roundtrip;
      prop_boundary_agrees;
      prop_valid_always_encodes;
      prop_reencode_stable;
      prop_shortest_form;
      prop_decoder_total;
      prop_decoded_garbage_reencodes;
      prop_eflags_mask_shape;
    ]

let () =
  Alcotest.run "isa"
    [
      ( "encoding",
        [
          Alcotest.test_case "short forms" `Quick test_short_forms;
          Alcotest.test_case "jcc forms" `Quick test_jcc_forms;
          Alcotest.test_case "esp memory forms" `Quick test_esp_memory_forms;
          Alcotest.test_case "(%ebp) disp0" `Quick test_ebp_disp0;
          Alcotest.test_case "absolute mem" `Quick test_absolute_mem;
          Alcotest.test_case "lock prefix" `Quick test_lock_prefix;
          Alcotest.test_case "invalid shapes" `Quick test_invalid_shapes;
          Alcotest.test_case "invalid decode" `Quick test_invalid_decode;
        ] );
      ( "metadata",
        [
          Alcotest.test_case "cond invert" `Quick test_cond_invert;
          Alcotest.test_case "eflags metadata" `Quick test_eflags_metadata;
          Alcotest.test_case "disasm smoke" `Quick test_disasm_smoke;
        ] );
      ("properties", qtests);
    ]
