lib/isa/opcode.ml: Cond Eflags Fmt
