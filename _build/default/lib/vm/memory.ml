(** Flat little-endian byte memory for the simulated machine.

    Addresses are plain ints in [0, size).  Out-of-range accesses raise
    {!Fault}, which the machine surfaces as a program fault (the
    simulated equivalent of a segfault). *)

exception Fault of { addr : int; size : int; write : bool }

type t = {
  bytes : Bytes.t;
  size : int;
  (* write-watching for code-cache consistency: one byte per 4KB page;
     stores into watched pages are recorded in [dirty] (the simulated
     analogue of write-protecting executed pages) *)
  watched_pages : Bytes.t;
  mutable dirty : (int * int) list;  (* [lo, hi) byte ranges *)
}

let page_bits = 12

let create size =
  {
    bytes = Bytes.make size '\000';
    size;
    watched_pages = Bytes.make ((size lsr page_bits) + 1) '\000';
    dirty = [];
  }

let size m = m.size

(** Watch the pages covering [addr, addr+len): subsequent writes there
    are recorded as dirty ranges. *)
let watch_code m ~addr ~len =
  for p = addr lsr page_bits to (addr + len - 1) lsr page_bits do
    Bytes.unsafe_set m.watched_pages p '\001'
  done

let has_dirty m = m.dirty <> []

let take_dirty m =
  let d = m.dirty in
  m.dirty <- [];
  d

let note_write m addr n =
  if
    Bytes.unsafe_get m.watched_pages (addr lsr page_bits) <> '\000'
    || Bytes.unsafe_get m.watched_pages ((addr + n - 1) lsr page_bits) <> '\000'
  then m.dirty <- (addr, addr + n) :: m.dirty

let check m addr n write =
  if addr < 0 || addr + n > m.size then raise (Fault { addr; size = n; write });
  if write then note_write m addr n

let read_u8 m addr =
  check m addr 1 false;
  Char.code (Bytes.unsafe_get m.bytes addr)

let write_u8 m addr v =
  check m addr 1 true;
  Bytes.unsafe_set m.bytes addr (Char.unsafe_chr (v land 0xFF))

let read_u16 m addr =
  check m addr 2 false;
  Char.code (Bytes.unsafe_get m.bytes addr)
  lor (Char.code (Bytes.unsafe_get m.bytes (addr + 1)) lsl 8)

let write_u16 m addr v =
  check m addr 2 true;
  Bytes.unsafe_set m.bytes addr (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set m.bytes (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF))

(** 32-bit reads return an unsigned value in [0, 2^32). *)
let read_u32 m addr =
  check m addr 4 false;
  let b = m.bytes in
  Char.code (Bytes.unsafe_get b addr)
  lor (Char.code (Bytes.unsafe_get b (addr + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (addr + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (addr + 3)) lsl 24)

let write_u32 m addr v =
  check m addr 4 true;
  let b = m.bytes in
  Bytes.unsafe_set b addr (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set b (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set b (addr + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set b (addr + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))

let read_f64 m addr =
  check m addr 8 false;
  Int64.float_of_bits (Bytes.get_int64_le m.bytes addr)

let write_f64 m addr v =
  check m addr 8 true;
  Bytes.set_int64_le m.bytes addr (Int64.bits_of_float v)

(** Bulk copy [len] bytes of [src] starting at [src_pos] into memory. *)
let blit_bytes m ~src ~src_pos ~dst ~len =
  check m dst len true;
  Bytes.blit src src_pos m.bytes dst len

let blit_string m ~src ~dst =
  check m dst (String.length src) true;
  Bytes.blit_string src 0 m.bytes dst (String.length src)

(** A {!Isa.Decode.fetch} view of this memory (bounds-checked). *)
let fetch (m : t) : Isa.Decode.fetch = fun addr -> read_u8 m addr
