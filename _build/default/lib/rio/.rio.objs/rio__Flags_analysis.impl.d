lib/rio/flags_analysis.ml: Eflags Instr Isa
