(** art-like: neural-network image recognition (SPEC2000 179.art).

    Character: dot-product scans (fld/fmul/fadd accumulation) followed
    by winner-take-all comparisons ([fcmp] + branches).  The F1 layer's
    scan loops are extremely hot and regular; normalization constants
    live in spilled slots. *)

open Asm.Dsl

let inputs = 256
let neurons = 24
let epochs = 18

let norm = mb ebp ~disp:(-8)

let text =
  [
    label "main";
    mov ebp esp;
    sub esp (i 32);
    li ebx "consts";
    fld f0 (mb ebx);
    fst_ norm f0;
    mov edx (i 0);
    mov edi (i 0);                       (* winner accumulator/checksum *)
    label "epoch";
    mov ecx (i 0);                       (* neuron index *)
    (* best activation so far in f6; winner index in edi (low bits) *)
    fld f6 (mb ebx ~disp:8);             (* -1e9 sentinel *)
    label "neuron";
    (* dot product of input with this neuron's weight row *)
    mov esi (i 0);
    fld f1 (mb ebx ~disp:16);            (* 0.0 *)
    label "dot";
    ins (fun env ->
        Isa.Insn.mk_fld f2
          (Isa.Operand.mem ~index:(Isa.Reg.Esi, 8) ~disp:(env "input") ()));
    (* weight address: row*inputs + esi *)
    mov eax ecx;
    imul eax (i inputs);
    add eax esi;
    ins (fun env ->
        Isa.Insn.mk_fmul (Asm.Dsl.f2)
          (Isa.Operand.mem ~index:(Isa.Reg.Eax, 8) ~disp:(env "weights") ()));
    fadd f1 (fr f2);
    inc esi;
    cmp esi (i inputs);
    j l "dot";
    (* normalize (spilled constant reloaded) and compare to the best *)
    fld f3 norm;
    fmul f1 (fr f3);
    fcmp f1 (fr f6);
    j be "notbest";
    fmov f6 f1;
    mov edi ecx;
    label "notbest";
    inc ecx;
    cmp ecx (i neurons);
    j l "neuron";
    (* fold winner into checksum *)
    shl edi (i 1);
    xor edi edx;
    inc edx;
    cmp edx (i epochs);
    j l "epoch";
    out edi;
    hlt;
  ]

let data =
  [
    label "consts";
    float64 [ 0.0078125; -1e9; 0.0 ];
    label "input";
    float64 (Workload.lcg_floats ~seed:11 inputs);
    label "weights";
    float64 (Workload.lcg_floats ~seed:13 (inputs * neurons));
  ]

let workload =
  Workload.make ~name:"art" ~spec_name:"179.art" ~fp:true
    ~description:"dot-product scans with winner-take-all fcmp branches"
    (program ~name:"art" ~entry:"main" ~text ~data ())
