(** The SynISA [eflags] register.

    SynISA keeps the six IA-32 arithmetic status flags.  Almost every
    arithmetic instruction writes some subset of them, which — exactly as
    on IA-32 — makes flags the central obstacle for any code
    transformation: inserted code must not clobber flags that later
    application code reads.  The DynamoRIO Level-2 representation exists
    precisely to answer "does this instruction touch eflags?" cheaply.

    A flag set is represented as a bit mask ([int]); the [read_*] /
    [write_*] masks below use the same bit positions shifted into
    separate read/write halves, mirroring the paper's
    [EFLAGS_READ_CF] / [EFLAGS_WRITE_CF] constants. *)

type flag = CF | PF | AF | ZF | SF | OF

let all_flags = [ CF; PF; AF; ZF; SF; OF ]

let bit = function
  | CF -> 0x01
  | PF -> 0x04
  | AF -> 0x10
  | ZF -> 0x40
  | SF -> 0x80
  | OF -> 0x800

let flag_name = function
  | CF -> "CF"
  | PF -> "PF"
  | AF -> "AF"
  | ZF -> "ZF"
  | SF -> "SF"
  | OF -> "OF"

(* ------------------------------------------------------------------ *)
(* Flag-register values                                               *)
(* ------------------------------------------------------------------ *)

type t = int
(** A concrete eflags value: the OR of [bit f] for each set flag. *)

let empty = 0
let is_set (fl : t) (f : flag) = fl land bit f <> 0
let set (fl : t) (f : flag) = fl lor bit f
let clear (fl : t) (f : flag) = fl land lnot (bit f)
let update (fl : t) (f : flag) (v : bool) = if v then set fl f else clear fl f

let all_mask = List.fold_left (fun m f -> m lor bit f) 0 all_flags

let pp ppf (fl : t) =
  let s =
    all_flags
    |> List.filter (is_set fl)
    |> List.map flag_name
    |> String.concat ","
  in
  Fmt.pf ppf "{%s}" s

(* ------------------------------------------------------------------ *)
(* Read/write effect masks (the paper's EFLAGS_READ / EFLAGS_WRITE) *)
(* ------------------------------------------------------------------ *)

type mask = int
(** Effect mask: low 12 bits = flags read, next 12 bits = flags written. *)

let write_shift = 12
let read_of (f : flag) : mask = bit f
let write_of (f : flag) : mask = bit f lsl write_shift

let reads (fs : flag list) : mask = List.fold_left (fun m f -> m lor read_of f) 0 fs
let writes (fs : flag list) : mask = List.fold_left (fun m f -> m lor write_of f) 0 fs

let read_all : mask = reads all_flags
let write_all : mask = writes all_flags
let none : mask = 0

let union (a : mask) (b : mask) = a lor b

let reads_flag (m : mask) (f : flag) = m land read_of f <> 0
let writes_flag (m : mask) (f : flag) = m land write_of f <> 0

let read_set (m : mask) = List.filter (reads_flag m) all_flags
let write_set (m : mask) = List.filter (writes_flag m) all_flags

(** [read_mask m] is the set of flags read, as a flag-register bit mask. *)
let read_mask (m : mask) : int = m land all_mask

(** [write_mask m] is the set of flags written, as a flag-register bit mask. *)
let write_mask (m : mask) : int = (m lsr write_shift) land all_mask

let pp_mask ppf (m : mask) =
  let show fs = String.concat "" (List.map flag_name fs) in
  let r = read_set m and w = write_set m in
  match (r, w) with
  | [], [] -> Fmt.string ppf "-"
  | _ -> Fmt.pf ppf "%s%s%s" (if r <> [] then "R" ^ show r else "")
           (if r <> [] && w <> [] then " " else "")
           (if w <> [] then "W" ^ show w else "")
