examples/quickstart.mli:
