(** Processor cost model.

    The simulated machine charges a deterministic cycle cost per
    executed instruction.  The model captures exactly the asymmetries
    the paper's evaluation depends on:

    - a {e processor family} knob: on [Pentium4], [inc]/[dec] pay a
      flag-merge penalty that [add 1]/[sub 1] do not; on [Pentium3] the
      short forms are the cheap ones (§4.2 of the paper);
    - a {e return-address stack} (RAS) predictor: native [call]/[ret]
      pairs predict perfectly, but code-cache execution — which mangles
      returns into indirect jumps — cannot use it (§5);
    - a one-entry-per-site {e BTB} for indirect jumps: an indirect
      branch whose target differs from its previous target pays a full
      misprediction;
    - a 2-bit counter predictor per conditional-branch site;
    - a small extra cost for {e taken} transfers (fetch redirection),
      which is what gives traces their superior-code-layout benefit.

    Everything is deterministic so experiment outputs are reproducible. *)

open Isa

type family = Pentium3 | Pentium4

let family_name = function Pentium3 -> "Pentium 3" | Pentium4 -> "Pentium 4"

type t = {
  family : family;
  mispredict : int;        (** branch misprediction penalty *)
  taken_extra : int;       (** extra cycles for any taken transfer *)
  mem_read : int;          (** extra cycles per memory-operand read *)
  mem_write : int;         (** extra cycles per memory-operand write *)
  emu_overhead : int;      (** per-instruction decode+dispatch cost in pure-emulation mode *)
}

let default_params = function
  | Pentium4 ->
      { family = Pentium4; mispredict = 20; taken_extra = 1;
        mem_read = 2; mem_write = 2; emu_overhead = 480 }
  | Pentium3 ->
      { family = Pentium3; mispredict = 10; taken_extra = 1;
        mem_read = 2; mem_write = 2; emu_overhead = 480 }

(** Base execution cycles for an opcode (excluding memory-operand and
    branch-resolution extras). *)
let base_cycles (t : t) (op : Opcode.t) : int =
  match op with
  | Mov | Lea | Movzx8 | Movzx16 -> 1
  | Add | Sub | And | Or | Xor | Cmp | Test | Adc | Sbb | Neg | Not -> 1
  | Inc | Dec -> ( match t.family with Pentium4 -> 4 | Pentium3 -> 1)
  | Shl | Shr | Sar -> ( match t.family with Pentium4 -> 2 | Pentium3 -> 1)
  | Imul -> 4
  | Idiv -> 24
  | Push | Pop -> 2
  | Xchg -> 2
  | Pushf | Popf -> ( match t.family with Pentium4 -> 8 | Pentium3 -> 5)
  | Jmp | Jcc _ -> 1
  | JmpInd | CallInd -> 2
  | Call -> 2
  | Ret -> 2
  | Fld | Fst -> 2
  | Fmov | Fabs | Fneg -> 1
  (* throughput costs: pipelined FP adds/multiplies issue every cycle
     or two; only divide/sqrt serialize *)
  | Fadd | Fsub -> 1
  | Fmul -> 2
  | Fdiv -> 20
  | Fsqrt -> 25
  | Fcmp -> 3
  | Cvtsi | Cvtfi -> 4
  | Nop -> 1
  | Hlt -> 1
  | Out | In -> 40
  | Ccall -> 0 (* runtime charges clean-call cost explicitly *)

(* ------------------------------------------------------------------ *)
(* Branch predictors (deterministic hardware state)                   *)
(* ------------------------------------------------------------------ *)

type predictor = {
  cond : (int, int) Hashtbl.t;       (** site -> 2-bit saturating counter *)
  btb : (int, int) Hashtbl.t;        (** site -> last indirect target *)
  mutable ras : int list;            (** return-address stack, bounded *)
  ras_depth : int;
}

let create_predictor () =
  { cond = Hashtbl.create 512; btb = Hashtbl.create 256; ras = []; ras_depth = 16 }

let reset_predictor p =
  Hashtbl.reset p.cond;
  Hashtbl.reset p.btb;
  p.ras <- []

(** [cond_branch t p ~site ~taken] — cycles charged for resolving a
    conditional branch at [site]; updates predictor state. *)
let cond_branch (t : t) (p : predictor) ~site ~taken : int =
  let counter = Option.value (Hashtbl.find_opt p.cond site) ~default:1 in
  let predicted_taken = counter >= 2 in
  let counter' =
    if taken then min 3 (counter + 1) else max 0 (counter - 1)
  in
  Hashtbl.replace p.cond site counter';
  let mis = if predicted_taken <> taken then t.mispredict else 0 in
  mis + if taken then t.taken_extra else 0

(** Direct unconditional transfer (jmp/call): always predicted. *)
let direct_jump (t : t) : int = t.taken_extra

let ras_push (p : predictor) addr =
  p.ras <- addr :: (if List.length p.ras >= p.ras_depth then List.filteri (fun i _ -> i < p.ras_depth - 1) p.ras else p.ras)

(** [ret_branch t p ~target] — a native return: predicted by the RAS. *)
let ret_branch (t : t) (p : predictor) ~target : int =
  match p.ras with
  | top :: rest ->
      p.ras <- rest;
      (if top = target then 0 else t.mispredict) + t.taken_extra
  | [] -> t.mispredict + t.taken_extra

(** [indirect_jump t p ~site ~target] — indirect jmp/call resolved via
    the BTB: hit iff the same site jumped to the same target last time. *)
let indirect_jump (t : t) (p : predictor) ~site ~target : int =
  let hit =
    match Hashtbl.find_opt p.btb site with
    | Some last -> last = target
    | None -> false
  in
  Hashtbl.replace p.btb site target;
  (if hit then 0 else t.mispredict) + t.taken_extra
