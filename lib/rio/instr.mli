(** The adaptive level-of-detail [Instr] (paper §3.1).

    An [Instr] migrates lazily between five representations: reading
    richer information raises the level (paying the decode exactly
    once); mutating operands invalidates the raw bytes (Level 4), whose
    encode must run the full template-matching encoder.  The [payload]
    and link fields are exposed because instrs are intrusive list nodes
    and low-level framework code (mangling, emission) pattern-matches
    on representation state; ordinary clients should stay on the
    accessor functions. *)

open Isa

type payload =
  | Bundle of { raw : Bytes.t; addr : int }
      (** L0: one or more un-decoded instructions. *)
  | Raw of { raw : Bytes.t; addr : int }
      (** L1: one un-decoded instruction. *)
  | RawOp of { raw : Bytes.t; addr : int; opcode : Opcode.t }
      (** L2: opcode + eflags known. *)
  | Full of { raw : Bytes.t option; raw_valid : bool; addr : int; insn : Insn.t }
      (** L3 when [raw_valid]; L4 otherwise (storage kept, like
          DynamoRIO, but unusable for encoding). *)

type t = {
  mutable payload : payload;
  mutable note : note;
  mutable prev : t option;
  mutable next : t option;
  mutable owner : int;
}

and note = No_note | Int_note of int | Any_note of exn
    (** Client annotation slot (paper §3.2).  [Any_note] carries an
        arbitrary payload via an exception constructor — the classic
        OCaml universal type. *)

(** {2 Construction} *)

val of_bundle : addr:int -> Bytes.t -> t
val of_raw : addr:int -> Bytes.t -> t
val of_insn : Insn.t -> t
(** A newly created (Level 4) instruction. *)

val of_decoded : addr:int -> raw:Bytes.t -> Insn.t -> t
(** Level 3: fully decoded with valid raw bytes. *)

val level : t -> Level.t

(** {2 Level transitions} *)

exception Is_bundle
(** Per-instruction detail requested from an L0 bundle; split it first
    ({!Instrlist.split_bundles}). *)

exception Bad_raw_bits of { addr : int; msg : string }
(** Raw bytes failed to decode during a level raise — cache corruption
    or client-supplied garbage.  Typed so the dispatcher's recovery
    ladder can catch it and heal instead of dying. *)

val raw_of : t -> Bytes.t * int
val uplevel2 : t -> unit
val uplevel3 : t -> unit
val invalidate_raw : t -> unit

(** {2 Accessors — levels adjust implicitly} *)

val is_bundle : t -> bool
val addr : t -> int
val get_opcode : t -> Opcode.t
val get_eflags : t -> Eflags.mask
val get_insn : t -> Insn.t
val num_srcs : t -> int
val num_dsts : t -> int
val get_src : t -> int -> Operand.t
val get_dst : t -> int -> Operand.t
val get_prefixes : t -> int
val set_insn : t -> Insn.t -> unit
val set_src : t -> int -> Operand.t -> unit
val set_dst : t -> int -> Operand.t -> unit
val set_prefixes : t -> int -> unit
val is_cti : t -> bool
val is_exit_cti : t -> bool

val copy : t -> t
(** Deep copy: fresh payload bytes, note preserved, list links and
    ownership cleared. *)

(** {2 Length and encoding} *)

val length : ?pc:int -> t -> int
val encode : pc:int -> t -> Bytes.t
(** Copies raw bytes whenever valid (L0–L3 non-CTI); re-encodes CTIs
    (their pc-relative form depends on placement) and L4. *)

(** {2 Notes} *)

val set_note : t -> note -> unit
val get_note : t -> note

val pp : Format.formatter -> t -> unit
val to_string : t -> string
