(** The adaptive level-of-detail instruction representation (paper
    §3.1, Figure 2), hands-on.

    {v dune exec examples/instruction_levels.exe v}

    Shows an instruction sequence migrating L0 → L1 → L2 → L3 → L4,
    with the cost character of each level: cheap boundary scans at the
    bottom, template-matching encodes only at the top. *)

open Isa

let show_il banner il =
  Printf.printf "%s\n" banner;
  Rio.Instrlist.iter il (fun i -> Printf.printf "    %s\n" (Rio.Instr.to_string i));
  print_newline ()

let () =
  (* assemble a small code sequence to get genuine machine bytes *)
  let insns =
    [
      Insn.mk_mov (Operand.Reg Reg.Eax) (Operand.mem_base ~disp:12 Reg.Esi);
      Insn.mk_add (Operand.Reg Reg.Eax) (Operand.Imm 100);
      Insn.mk_inc (Operand.Reg Reg.Ecx);
      Insn.mk_cmp (Operand.Reg Reg.Eax) (Operand.Reg Reg.Ecx);
      Insn.mk_jcc Cond.L 0x4000;
    ]
  in
  let addr0 = 0x4000 in
  let raw =
    let b = Buffer.create 32 in
    ignore
      (List.fold_left
         (fun pc i ->
           let e = Encode.encode_exn ~pc i in
           Buffer.add_bytes b e;
           pc + Bytes.length e)
         addr0 insns);
    Buffer.to_bytes b
  in
  Printf.printf "raw code bytes: %s\n\n" (Disasm.hex_bytes raw);

  (* Level 0: a single bundle — how DynamoRIO holds a basic block body
     when no client needs detail *)
  let il = Rio.Instrlist.create () in
  Rio.Instrlist.append il (Rio.Instr.of_bundle ~addr:addr0 raw);
  show_il "Level 0 — one bundle, only the final boundary known:" il;

  (* Level 1: split into per-instruction raw pieces *)
  Rio.Instrlist.split_bundles il;
  show_il "Level 1 — per-instruction, still un-decoded:" il;

  (* Level 2: reading the opcode (or eflags) raises the level *)
  Rio.Instrlist.iter il (fun i ->
      let op = Rio.Instr.get_opcode i in
      let fl = Rio.Instr.get_eflags i in
      Printf.printf "    %-8s eflags %s\n" (Opcode.name op)
        (Fmt.str "%a" Eflags.pp_mask fl));
  show_il "\nLevel 2 — opcode + eflags known:" il;

  (* Level 3: reading operands fully decodes; raw bits stay valid *)
  Rio.Instrlist.iter il (fun i -> ignore (Rio.Instr.num_srcs i));
  show_il "Level 3 — fully decoded, raw bits valid (encode = copy):" il;

  (* Level 4: modify an operand; raw bits become invalid *)
  Rio.Instrlist.iter il (fun i ->
      if Rio.Instr.get_opcode i = Opcode.Add then
        Rio.Instr.set_src i 0 (Operand.Imm 200));
  show_il "Level 4 — the add was modified (imm 100 -> 200):" il;

  (* the whole list still encodes; L0-L3 copy bytes, L4 re-encodes *)
  Printf.printf "re-encoded at a new address (0x9000):\n";
  let pc = ref 0x9000 in
  Rio.Instrlist.iter il (fun i ->
      let b = Rio.Instr.encode ~pc:!pc i in
      Printf.printf "    %08x: %s\n" !pc (Disasm.hex_bytes b);
      pc := !pc + Bytes.length b)
