(** Structural invariants checked over live runtimes (DESIGN.md §6):
    cache/link consistency after every kind of run, and trace linearity
    as seen by clients. *)

open Workloads

let checkb = Alcotest.(check bool)

let check_consistency name rt =
  match Rio.Emit.check_invariants rt with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: cache inconsistency: %s" name e

(* ------------------------------------------------------------------ *)
(* Invariant 7: cache/link consistency                                *)
(* ------------------------------------------------------------------ *)

let test_consistency_after_runs () =
  List.iter
    (fun name ->
      let w = Option.get (Suite.by_name name) in
      let _, rt = Workload.run_rio w in
      check_consistency (name ^ "/null") rt;
      let _, rt = Workload.run_rio ~client:(Clients.Compose.all_four ()) w in
      check_consistency (name ^ "/combined") rt)
    [ "crafty"; "vortex"; "eon"; "mgrid"; "gcc" ]

let test_consistency_with_capacity_flushes () =
  let w = Option.get (Suite.by_name "gcc") in
  let r, rt =
    Workload.run_rio
      ~opts:
        { Rio.Options.default with
          cache_capacity = Some 8192;
          flush_policy = Rio.Options.Flush_full;
        }
      w
  in
  checkb "ok" true r.Workload.ok;
  checkb "flushes occurred" true ((Rio.stats rt).Rio.Stats.cache_flushes >= 1);
  check_consistency "gcc/flushed" rt

let test_consistency_with_fifo_eviction () =
  (* same pressure, incremental policy: evictions instead of flushes,
     links must stay coherent over the churning free list *)
  let w = Option.get (Suite.by_name "gcc") in
  let r, rt =
    Workload.run_rio
      ~opts:{ Rio.Options.default with cache_capacity = Some 8192 } w
  in
  checkb "ok" true r.Workload.ok;
  checkb "evictions occurred" true ((Rio.stats rt).Rio.Stats.evictions >= 1);
  checkb "no full flushes" true ((Rio.stats rt).Rio.Stats.cache_flushes = 0);
  check_consistency "gcc/evicted" rt

let test_consistency_after_replacements () =
  (* ibdispatch replaces fragments mid-run: links must stay coherent *)
  let w = Option.get (Suite.by_name "eon") in
  let r, rt = Workload.run_rio ~client:(Clients.Ibdispatch.make ()) w in
  checkb "ok" true r.Workload.ok;
  checkb "replacements occurred" true
    ((Rio.stats rt).Rio.Stats.fragments_replaced >= 1);
  check_consistency "eon/replaced" rt

(* ------------------------------------------------------------------ *)
(* Invariant 8: trace linearity (client view)                         *)
(* ------------------------------------------------------------------ *)

let test_trace_linearity () =
  (* every CTI in a client-visible trace leaves the fragment: its
     target is an application address or an IND pseudo-token — never an
     internal join.  Clean calls are the only non-CTI control effect. *)
  let violations = ref [] in
  let probe =
    {
      Rio.Types.null_client with
      name = "linearity-probe";
      trace_hook =
        Some
          (fun _ ~tag il ->
            Rio.Instrlist.iter il (fun i ->
                if (not (Rio.Instr.is_bundle i)) && Rio.Instr.is_cti i then
                  match Rio.Instr.get_opcode i with
                  | Isa.Opcode.Jmp | Isa.Opcode.Jcc _ -> (
                      match Rio.Instr.get_src i 0 with
                      | Isa.Operand.Target t ->
                          if
                            not
                              (Rio.Types.is_app_addr t
                              || Rio.Types.ind_kind_of_token t <> None)
                          then violations := (tag, t) :: !violations
                      | _ -> violations := (tag, -1) :: !violations)
                  | Isa.Opcode.Hlt -> ()
                  | _ ->
                      (* call/ret/jmp* must have been mangled away *)
                      violations := (tag, -2) :: !violations));
    }
  in
  List.iter
    (fun name ->
      let w = Option.get (Suite.by_name name) in
      ignore (Workload.run_rio ~client:probe w))
    [ "crafty"; "vortex"; "perlbmk"; "wupwise" ];
  checkb
    (Printf.sprintf "no linearity violations (%d found)"
       (List.length !violations))
    true (!violations = [])

let test_trace_linearity_under_clients () =
  (* composition order: optimizations first, probe last — the probe
     sees the final trace the clients produced *)
  let ok = ref true in
  let probe =
    {
      Rio.Types.null_client with
      name = "probe";
      trace_hook =
        Some
          (fun _ ~tag:_ il ->
            Rio.Instrlist.iter il (fun i ->
                if (not (Rio.Instr.is_bundle i)) && Rio.Instr.is_cti i then
                  match Rio.Instr.get_opcode i with
                  | Isa.Opcode.Jmp | Isa.Opcode.Jcc _ | Isa.Opcode.Hlt -> ()
                  | _ -> ok := false));
    }
  in
  let client = Clients.Compose.compose [ Clients.Compose.all_four (); probe ] in
  List.iter
    (fun name ->
      let w = Option.get (Suite.by_name name) in
      ignore (Workload.run_rio ~client w))
    [ "eon"; "vortex" ];
  checkb "traces stay linear under optimization" true !ok

let () =
  Alcotest.run "invariants"
    [
      ( "cache consistency",
        [
          Alcotest.test_case "after plain and optimized runs" `Slow test_consistency_after_runs;
          Alcotest.test_case "after capacity flushes" `Quick test_consistency_with_capacity_flushes;
          Alcotest.test_case "after fifo eviction" `Quick test_consistency_with_fifo_eviction;
          Alcotest.test_case "after fragment replacement" `Quick test_consistency_after_replacements;
        ] );
      ( "trace linearity",
        [
          Alcotest.test_case "client view" `Slow test_trace_linearity;
          Alcotest.test_case "under optimization" `Slow test_trace_linearity_under_clients;
        ] );
    ]
