lib/workloads/swim_like.ml: Asm Isa List Workload
