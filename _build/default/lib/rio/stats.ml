(** Runtime statistics, kept per {!Rio} instance. *)

type t = {
  mutable blocks_built : int;
  mutable traces_built : int;
  mutable fragments_deleted : int;
  mutable fragments_replaced : int;
  mutable context_switches : int;
  mutable ibl_lookups : int;
  mutable ibl_misses : int;          (** lookup failed; back to dispatcher *)
  mutable direct_links : int;
  mutable unlinks : int;
  mutable clean_calls : int;
  mutable cache_bytes_bb : int;
  mutable cache_bytes_trace : int;
  mutable trace_head_promotions : int;
  mutable signals_delivered : int;
  mutable runtime_cycles : int;      (** modelled cycles spent in the runtime *)
  mutable sideline_cycles : int;     (** optimization cycles offloaded to a spare processor *)
  mutable cache_flushes : int;       (** capacity-driven flush-the-world events *)
  mutable enters_bb : int;           (** fragment entries landing on basic blocks *)
  mutable enters_trace : int;        (** fragment entries landing on traces *)
}

let create () =
  {
    blocks_built = 0;
    traces_built = 0;
    fragments_deleted = 0;
    fragments_replaced = 0;
    context_switches = 0;
    ibl_lookups = 0;
    ibl_misses = 0;
    direct_links = 0;
    unlinks = 0;
    clean_calls = 0;
    cache_bytes_bb = 0;
    cache_bytes_trace = 0;
    trace_head_promotions = 0;
    signals_delivered = 0;
    runtime_cycles = 0;
    sideline_cycles = 0;
    cache_flushes = 0;
    enters_bb = 0;
    enters_trace = 0;
  }

let pp ppf (s : t) =
  Fmt.pf ppf
    "@[<v>blocks built:        %d@,traces built:        %d@,\
     fragments deleted:   %d@,fragments replaced:  %d@,\
     context switches:    %d@,ibl lookups:         %d@,\
     ibl misses:          %d@,direct links:        %d@,\
     unlinks:             %d@,clean calls:         %d@,\
     bb cache bytes:      %d@,trace cache bytes:   %d@,\
     head promotions:     %d@,signals delivered:   %d@,\
     runtime cycles:      %d@,sideline cycles:     %d@,\
     cache flushes:       %d@,bb entries:          %d@,\
     trace entries:       %d@]"
    s.blocks_built s.traces_built s.fragments_deleted s.fragments_replaced
    s.context_switches s.ibl_lookups s.ibl_misses s.direct_links s.unlinks
    s.clean_calls s.cache_bytes_bb s.cache_bytes_trace s.trace_head_promotions
    s.signals_delivered s.runtime_cycles s.sideline_cycles s.cache_flushes
    s.enters_bb s.enters_trace
