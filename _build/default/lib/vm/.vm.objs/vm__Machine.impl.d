lib/vm/machine.ml: Arith Array Cost Decode Eflags Hashtbl Insn Isa List Memory Opcode Operand Reg
