lib/asm/dsl.ml: Ast Cond Insn Isa List Operand Option Reg
