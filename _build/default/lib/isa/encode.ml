(** SynISA instruction encoder.

    Encoding walks a per-opcode list of {e templates}, most-compact
    first, and emits the first one whose operand shapes and
    immediate/displacement ranges match — mirroring the costly
    template-matching encode the paper describes for IA-32.  Direct
    branch targets are turned into pc-relative displacements, so the
    encoding of a CTI depends on the address it is emitted at. *)

type error =
  | Invalid_shape of string      (** [Insn.validate] failed *)
  | No_template of string        (** no encoding form matches *)

let error_to_string = function
  | Invalid_shape s -> "invalid instruction shape: " ^ s
  | No_template s -> "no matching encoding template: " ^ s

exception Encode_error of error

(* ------------------------------------------------------------------ *)
(* Byte emission                                                      *)
(* ------------------------------------------------------------------ *)

let emit_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let emit_u32 buf v =
  emit_u8 buf v;
  emit_u8 buf (v lsr 8);
  emit_u8 buf (v lsr 16);
  emit_u8 buf (v lsr 24)

(* ModRM + SIB + displacement for a register-or-memory operand, with
   [ext] in the reg field (a register number, FP register, or opcode
   extension). Raises [Not_found] if the operand is not encodable. *)
let emit_modrm buf ~ext (op : Operand.t) =
  let modrm m reg rm = emit_u8 buf ((m lsl 6) lor (reg lsl 3) lor rm) in
  let sib scale index base =
    let s = match scale with 1 -> 0 | 2 -> 1 | 4 -> 2 | 8 -> 3 | _ -> raise Not_found in
    emit_u8 buf ((s lsl 6) lor (index lsl 3) lor base)
  in
  match op with
  | Operand.Reg r -> modrm 3 ext (Reg.number r)
  | Operand.Freg f -> modrm 3 ext (Reg.F.number f)
  | Operand.Mem { base; index; disp } -> (
      (match index with
       | Some (r, _) when Reg.equal r Reg.Esp -> raise Not_found
       | _ -> ());
      match (base, index) with
      | None, None ->
          (* absolute: mod=0 rm=5 disp32 *)
          modrm 0 ext 5;
          emit_u32 buf disp
      | Some b, None when not (Reg.equal b Reg.Esp) ->
          let bn = Reg.number b in
          if disp = 0 && not (Reg.equal b Reg.Ebp) then modrm 0 ext bn
          else if Encoding_spec.fits_i8 disp then (
            modrm 1 ext bn;
            emit_u8 buf disp)
          else (
            modrm 2 ext bn;
            emit_u32 buf disp)
      | Some b, None (* b = esp: needs SIB *) ->
          let bn = Reg.number b in
          if disp = 0 then (
            modrm 0 ext 4;
            sib 1 4 bn)
          else if Encoding_spec.fits_i8 disp then (
            modrm 1 ext 4;
            sib 1 4 bn;
            emit_u8 buf disp)
          else (
            modrm 2 ext 4;
            sib 1 4 bn;
            emit_u32 buf disp)
      | None, Some (i, s) ->
          (* index without base: mod=0, SIB base=5, disp32 mandatory *)
          modrm 0 ext 4;
          sib s (Reg.number i) 5;
          emit_u32 buf disp
      | Some b, Some (i, s) ->
          let bn = Reg.number b in
          if disp = 0 && not (Reg.equal b Reg.Ebp) then (
            modrm 0 ext 4;
            sib s (Reg.number i) bn)
          else if Encoding_spec.fits_i8 disp then (
            modrm 1 ext 4;
            sib s (Reg.number i) bn;
            emit_u8 buf disp)
          else (
            modrm 2 ext 4;
            sib s (Reg.number i) bn;
            emit_u32 buf disp))
  | Operand.Imm _ | Operand.Target _ -> raise Not_found

(* ------------------------------------------------------------------ *)
(* Templates                                                          *)
(* ------------------------------------------------------------------ *)

(* A template inspects the instruction and, if it matches, emits the
   full encoding into a fresh buffer.  [pc] is the address the
   instruction will live at (for pc-relative targets); templates whose
   length depends on the displacement must account for their own
   length when computing it. *)
type template = {
  tname : string;
  try_encode : pc:int -> prefix_len:int -> Insn.t -> Bytes.t option;
}

let tmpl tname f = { tname; try_encode = f }

let run1 f =
  let buf = Buffer.create 8 in
  f buf;
  Some (Buffer.to_bytes buf)

(* rel computation: [len] is the instruction length including prefix *)
let rel_of ~pc ~prefix_len ~body_len target =
  Encoding_spec.to_i32 (target - (pc + prefix_len + body_len))

let opt_of_not_found f = try f () with Not_found -> None

open Operand

(* --- ALU block ---------------------------------------------------- *)

let alu_templates idx =
  let base = idx lsl 3 in
  [
    (* eax <- imm8 (shortest) *)
    tmpl "alu_eax_imm8" (fun ~pc:_ ~prefix_len:_ i ->
        match (i.Insn.dsts, i.Insn.srcs, i.Insn.opcode) with
        | [| Reg Reg.Eax |], [| Imm n; Reg Reg.Eax |], _
        | [||], [| Reg Reg.Eax; Imm n |], Opcode.Cmp
          when Encoding_spec.fits_i8 n ->
            run1 (fun b ->
                emit_u8 b (base lor 4);
                emit_u8 b n)
        | _ -> None);
    tmpl "alu_rm_imm8" (fun ~pc:_ ~prefix_len:_ i ->
        match (i.Insn.dsts, i.Insn.srcs, i.Insn.opcode) with
        | [| rm |], [| Imm n; _ |], _ | [||], [| rm; Imm n |], Opcode.Cmp
          when Encoding_spec.fits_i8 n ->
            opt_of_not_found (fun () ->
                run1 (fun b ->
                    emit_u8 b (base lor 2);
                    emit_modrm b ~ext:0 rm;
                    emit_u8 b n))
        | _ -> None);
    tmpl "alu_eax_imm32" (fun ~pc:_ ~prefix_len:_ i ->
        match (i.Insn.dsts, i.Insn.srcs, i.Insn.opcode) with
        | [| Reg Reg.Eax |], [| Imm n; Reg Reg.Eax |], _
        | [||], [| Reg Reg.Eax; Imm n |], Opcode.Cmp ->
            run1 (fun b ->
                emit_u8 b (base lor 5);
                emit_u32 b n)
        | _ -> None);
    tmpl "alu_rm_imm32" (fun ~pc:_ ~prefix_len:_ i ->
        match (i.Insn.dsts, i.Insn.srcs, i.Insn.opcode) with
        | [| rm |], [| Imm n; _ |], _ | [||], [| rm; Imm n |], Opcode.Cmp ->
            opt_of_not_found (fun () ->
                run1 (fun b ->
                    emit_u8 b (base lor 3);
                    emit_modrm b ~ext:0 rm;
                    emit_u32 b n))
        | _ -> None);
    tmpl "alu_rm_reg" (fun ~pc:_ ~prefix_len:_ i ->
        match (i.Insn.dsts, i.Insn.srcs, i.Insn.opcode) with
        | [| rm |], [| Reg src; _ |], _ | [||], [| rm; Reg src |], Opcode.Cmp ->
            opt_of_not_found (fun () ->
                run1 (fun b ->
                    emit_u8 b base;
                    emit_modrm b ~ext:(Reg.number src) rm))
        | _ -> None);
    tmpl "alu_reg_rm" (fun ~pc:_ ~prefix_len:_ i ->
        match (i.Insn.dsts, i.Insn.srcs, i.Insn.opcode) with
        | [| Reg dst |], [| (Mem _ as rm); _ |], _
        | [||], [| Reg dst; (Mem _ as rm) |], Opcode.Cmp ->
            opt_of_not_found (fun () ->
                run1 (fun b ->
                    emit_u8 b (base lor 1);
                    emit_modrm b ~ext:(Reg.number dst) rm))
        | _ -> None);
  ]

(* --- generic helpers ---------------------------------------------- *)

let t_op_rm ~name op1 ?op2 ~ext pick =
  tmpl name (fun ~pc:_ ~prefix_len:_ i ->
      match pick i with
      | None -> None
      | Some rm ->
          opt_of_not_found (fun () ->
              run1 (fun b ->
                  emit_u8 b op1;
                  Option.iter (emit_u8 b) op2;
                  emit_modrm b ~ext rm)))

let t_short_reg ~name base pick =
  tmpl name (fun ~pc:_ ~prefix_len:_ i ->
      match pick i with
      | Some (Reg r) -> run1 (fun b -> emit_u8 b (base + Reg.number r))
      | _ -> None)

(* --- per-opcode template lists ------------------------------------ *)

let src0 i = Some i.Insn.srcs.(0)
let dst0 i = Some i.Insn.dsts.(0)

let templates_of (i : Insn.t) : template list =
  match i.opcode with
  | Add | Sub | And | Or | Xor | Cmp | Adc | Sbb ->
      let idx = Option.get (Encoding_spec.alu_index i.opcode) in
      alu_templates idx
  | Inc ->
      [ t_short_reg ~name:"inc_r" 0x40 dst0; t_op_rm ~name:"inc_rm" 0x9A ~ext:0 dst0 ]
  | Dec ->
      [ t_short_reg ~name:"dec_r" 0x48 dst0; t_op_rm ~name:"dec_rm" 0x9B ~ext:0 dst0 ]
  | Push ->
      [
        t_short_reg ~name:"push_r" 0x50 src0;
        tmpl "push_imm32" (fun ~pc:_ ~prefix_len:_ i ->
            match i.Insn.srcs.(0) with
            | Imm n ->
                run1 (fun b ->
                    emit_u8 b 0x88;
                    emit_u32 b n)
            | _ -> None);
        t_op_rm ~name:"push_rm" 0x86 ~ext:0 src0;
      ]
  | Pop -> [ t_short_reg ~name:"pop_r" 0x58 dst0; t_op_rm ~name:"pop_rm" 0x87 ~ext:0 dst0 ]
  | Pushf -> [ tmpl "pushf" (fun ~pc:_ ~prefix_len:_ _ -> run1 (fun b -> emit_u8 b 0x8E)) ]
  | Popf -> [ tmpl "popf" (fun ~pc:_ ~prefix_len:_ _ -> run1 (fun b -> emit_u8 b 0x8F)) ]
  | Mov ->
      [
        tmpl "mov_r_imm32" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| Reg r |], [| Imm n |] ->
                run1 (fun b ->
                    emit_u8 b (0x68 + Reg.number r);
                    emit_u32 b n)
            | _ -> None);
        tmpl "mov_rm_imm32" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| rm |], [| Imm n |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b 0x62;
                        emit_modrm b ~ext:0 rm;
                        emit_u32 b n))
            | _ -> None);
        tmpl "mov_rm_reg" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| rm |], [| Reg src |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b 0x60;
                        emit_modrm b ~ext:(Reg.number src) rm))
            | _ -> None);
        tmpl "mov_reg_rm" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| Reg dst |], [| (Mem _ as rm) |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b 0x61;
                        emit_modrm b ~ext:(Reg.number dst) rm))
            | _ -> None);
      ]
  | Test ->
      [
        tmpl "test_rm_reg" (fun ~pc:_ ~prefix_len:_ i ->
            match i.Insn.srcs with
            | [| rm; Reg r |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b 0x63;
                        emit_modrm b ~ext:(Reg.number r) rm))
            | _ -> None);
        tmpl "test_rm_imm32" (fun ~pc:_ ~prefix_len:_ i ->
            match i.Insn.srcs with
            | [| rm; Imm n |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b 0x64;
                        emit_modrm b ~ext:0 rm;
                        emit_u32 b n))
            | _ -> None);
      ]
  | Lea ->
      [
        tmpl "lea" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| Reg dst |], [| (Mem _ as m) |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b 0x65;
                        emit_modrm b ~ext:(Reg.number dst) m))
            | _ -> None);
      ]
  | Xchg ->
      [
        tmpl "xchg" (fun ~pc:_ ~prefix_len:_ i ->
            match i.Insn.dsts with
            | [| Reg a; rm |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b 0x66;
                        emit_modrm b ~ext:(Reg.number a) rm))
            | _ -> None);
      ]
  | Imul ->
      [
        tmpl "imul_reg_imm32" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| (Reg _ as dst) |], [| Imm n; _ |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b 0x9D;
                        emit_modrm b ~ext:0 dst;
                        emit_u32 b n))
            | _ -> None);
        tmpl "imul_reg_rm" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| Reg dst |], [| ((Reg _ | Mem _) as rm); _ |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b 0x67;
                        emit_modrm b ~ext:(Reg.number dst) rm))
            | _ -> None);
      ]
  | Neg -> [ t_op_rm ~name:"neg" 0x98 ~ext:0 dst0 ]
  | Not -> [ t_op_rm ~name:"not" 0x99 ~ext:0 dst0 ]
  | Idiv -> [ t_op_rm ~name:"idiv" 0x8B ~ext:0 src0 ]
  | Movzx8 ->
      [
        tmpl "movzx8" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| Reg dst |], [| rm |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b 0x89;
                        emit_modrm b ~ext:(Reg.number dst) rm))
            | _ -> None);
      ]
  | Movzx16 ->
      [
        tmpl "movzx16" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| Reg dst |], [| rm |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b 0x8A;
                        emit_modrm b ~ext:(Reg.number dst) rm))
            | _ -> None);
      ]
  | Shl | Shr | Sar ->
      let idx = match i.opcode with Shl -> 0 | Shr -> 1 | _ -> 2 in
      [
        tmpl "shift_imm8" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| rm |], [| Imm n; _ |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b (0xA0 + idx);
                        emit_modrm b ~ext:0 rm;
                        emit_u8 b n))
            | _ -> None);
        tmpl "shift_cl" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| rm |], [| Reg Reg.Ecx; _ |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b (0xA3 + idx);
                        emit_modrm b ~ext:0 rm))
            | _ -> None);
      ]
  | Jcc c ->
      [
        tmpl "jcc_rel8" (fun ~pc ~prefix_len i ->
            match i.Insn.srcs with
            | [| Target t |] ->
                let rel = rel_of ~pc ~prefix_len ~body_len:2 t in
                if Encoding_spec.fits_i8 rel then
                  run1 (fun b ->
                      emit_u8 b (0x70 + Cond.number c);
                      emit_u8 b rel)
                else None
            | _ -> None);
        tmpl "jcc_rel32" (fun ~pc ~prefix_len i ->
            match i.Insn.srcs with
            | [| Target t |] ->
                let rel = rel_of ~pc ~prefix_len ~body_len:6 t in
                run1 (fun b ->
                    emit_u8 b Encoding_spec.escape;
                    emit_u8 b (0x80 + Cond.number c);
                    emit_u32 b rel)
            | _ -> None);
      ]
  | Jmp ->
      [
        tmpl "jmp_rel8" (fun ~pc ~prefix_len i ->
            match i.Insn.srcs with
            | [| Target t |] ->
                let rel = rel_of ~pc ~prefix_len ~body_len:2 t in
                if Encoding_spec.fits_i8 rel then
                  run1 (fun b ->
                      emit_u8 b 0x80;
                      emit_u8 b rel)
                else None
            | _ -> None);
        tmpl "jmp_rel32" (fun ~pc ~prefix_len i ->
            match i.Insn.srcs with
            | [| Target t |] ->
                let rel = rel_of ~pc ~prefix_len ~body_len:5 t in
                run1 (fun b ->
                    emit_u8 b 0x81;
                    emit_u32 b rel)
            | _ -> None);
      ]
  | JmpInd -> [ t_op_rm ~name:"jmp_rm" 0x82 ~ext:0 src0 ]
  | Call ->
      [
        tmpl "call_rel32" (fun ~pc ~prefix_len i ->
            match i.Insn.srcs.(0) with
            | Target t ->
                let rel = rel_of ~pc ~prefix_len ~body_len:5 t in
                run1 (fun b ->
                    emit_u8 b 0x83;
                    emit_u32 b rel)
            | _ -> None);
      ]
  | CallInd -> [ t_op_rm ~name:"call_rm" 0x84 ~ext:0 src0 ]
  | Ret -> [ tmpl "ret" (fun ~pc:_ ~prefix_len:_ _ -> run1 (fun b -> emit_u8 b 0x85)) ]
  | Nop -> [ tmpl "nop" (fun ~pc:_ ~prefix_len:_ _ -> run1 (fun b -> emit_u8 b 0x90)) ]
  | Hlt -> [ tmpl "hlt" (fun ~pc:_ ~prefix_len:_ _ -> run1 (fun b -> emit_u8 b 0xF4)) ]
  | Out ->
      [
        tmpl "out_reg" (fun ~pc:_ ~prefix_len:_ i ->
            match i.Insn.srcs with
            | [| (Reg _ as r) |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b 0x8C;
                        emit_modrm b ~ext:0 r))
            | _ -> None);
        tmpl "out_imm32" (fun ~pc:_ ~prefix_len:_ i ->
            match i.Insn.srcs with
            | [| Imm n |] ->
                run1 (fun b ->
                    emit_u8 b 0x9C;
                    emit_u32 b n)
            | _ -> None);
      ]
  | In ->
      [
        tmpl "in" (fun ~pc:_ ~prefix_len:_ i ->
            match i.Insn.dsts with
            | [| (Reg _ as r) |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b 0x8D;
                        emit_modrm b ~ext:0 r))
            | _ -> None);
      ]
  | Fld ->
      [
        tmpl "fld" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| Freg f |], [| (Mem _ as m) |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b Encoding_spec.escape;
                        emit_u8 b 0x10;
                        emit_modrm b ~ext:(Reg.F.number f) m))
            | _ -> None);
      ]
  | Fst ->
      [
        tmpl "fst" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| (Mem _ as m) |], [| Freg f |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b Encoding_spec.escape;
                        emit_u8 b 0x11;
                        emit_modrm b ~ext:(Reg.F.number f) m))
            | _ -> None);
      ]
  | Fmov ->
      [
        tmpl "fmov" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| Freg d |], [| (Freg _ as s) |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b Encoding_spec.escape;
                        emit_u8 b 0x12;
                        emit_modrm b ~ext:(Reg.F.number d) s))
            | _ -> None);
      ]
  | Fadd | Fsub | Fmul | Fdiv ->
      let idx =
        match i.opcode with Fadd -> 0 | Fsub -> 1 | Fmul -> 2 | _ -> 3
      in
      [
        tmpl "fp_ff" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| Freg d |], [| (Freg _ as s); _ |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b Encoding_spec.escape;
                        emit_u8 b (0x20 + idx);
                        emit_modrm b ~ext:(Reg.F.number d) s))
            | _ -> None);
        tmpl "fp_fm" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| Freg d |], [| (Mem _ as m); _ |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b Encoding_spec.escape;
                        emit_u8 b (0x28 + idx);
                        emit_modrm b ~ext:(Reg.F.number d) m))
            | _ -> None);
      ]
  | Fcmp ->
      [
        tmpl "fcmp_ff" (fun ~pc:_ ~prefix_len:_ i ->
            match i.Insn.srcs with
            | [| Freg a; (Freg _ as s) |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b Encoding_spec.escape;
                        emit_u8 b 0x30;
                        emit_modrm b ~ext:(Reg.F.number a) s))
            | _ -> None);
        tmpl "fcmp_fm" (fun ~pc:_ ~prefix_len:_ i ->
            match i.Insn.srcs with
            | [| Freg a; (Mem _ as m) |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b Encoding_spec.escape;
                        emit_u8 b 0x31;
                        emit_modrm b ~ext:(Reg.F.number a) m))
            | _ -> None);
      ]
  | Fabs | Fneg | Fsqrt ->
      let second =
        match i.opcode with Fabs -> 0x38 | Fneg -> 0x39 | _ -> 0x3A
      in
      [
        tmpl "fp_unary" (fun ~pc:_ ~prefix_len:_ i ->
            match i.Insn.dsts with
            | [| (Freg f) |] ->
                run1 (fun b ->
                    emit_u8 b Encoding_spec.escape;
                    emit_u8 b second;
                    emit_u8 b ((3 lsl 6) lor (Reg.F.number f lsl 3)))
            | _ -> None);
      ]
  | Cvtsi ->
      [
        tmpl "cvtsi" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| Freg f |], [| rm |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b Encoding_spec.escape;
                        emit_u8 b 0x40;
                        emit_modrm b ~ext:(Reg.F.number f) rm))
            | _ -> None);
      ]
  | Cvtfi ->
      [
        tmpl "cvtfi" (fun ~pc:_ ~prefix_len:_ i ->
            match (i.Insn.dsts, i.Insn.srcs) with
            | [| (Reg _ as r) |], [| Freg f |] ->
                opt_of_not_found (fun () ->
                    run1 (fun b ->
                        emit_u8 b Encoding_spec.escape;
                        emit_u8 b 0x41;
                        emit_modrm b ~ext:(Reg.F.number f) r))
            | _ -> None);
      ]
  | Ccall ->
      [
        tmpl "ccall" (fun ~pc:_ ~prefix_len:_ i ->
            match i.Insn.srcs with
            | [| Imm id |] ->
                run1 (fun b ->
                    emit_u8 b Encoding_spec.escape;
                    emit_u8 b 0xC0;
                    emit_u32 b id)
            | _ -> None);
      ]

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

(** [encode ~pc i] encodes [i] for placement at address [pc].  Walks the
    opcode's templates most-compact first and emits the first match.
    [~long:true] skips the rel8 forms of [jmp]/[jcc], producing a fixed
    4-byte displacement that a code cache can re-patch in place. *)
let encode ?(long = false) ~pc (i : Insn.t) : (Bytes.t, error) result =
  match Insn.validate i with
  | Error e -> Error (Invalid_shape e)
  | Ok () ->
      let prefix_len = if i.prefixes land Insn.prefix_lock <> 0 then 1 else 0 in
      let skip_short t =
        long && (t.tname = "jcc_rel8" || t.tname = "jmp_rel8")
      in
      let rec walk = function
        | [] ->
            Error
              (No_template
                 (Fmt.str "%a (%d srcs, %d dsts)" Opcode.pp i.opcode
                    (Insn.num_srcs i) (Insn.num_dsts i)))
        | t :: rest when skip_short t -> walk rest
        | t :: rest -> (
            match t.try_encode ~pc ~prefix_len i with
            | Some body ->
                if prefix_len = 0 then Ok body
                else begin
                  let full = Bytes.create (Bytes.length body + 1) in
                  Bytes.set full 0 (Char.chr Encoding_spec.lock_prefix);
                  Bytes.blit body 0 full 1 (Bytes.length body);
                  Ok full
                end
            | None -> walk rest)
      in
      walk (templates_of i)

let encode_exn ?long ~pc i =
  match encode ?long ~pc i with Ok b -> b | Error e -> raise (Encode_error e)

(** Length the instruction will occupy when encoded at [pc]. *)
let length ?long ~pc i = Bytes.length (encode_exn ?long ~pc i)
