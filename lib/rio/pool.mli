(** Supervised domain-parallel serving pool: N worker domains, each
    holding warm long-lived {!Engine.t} instances whose code caches
    survive across requests, with work-stealing dispatch and bounded
    in-flight backpressure (DESIGN.md §6.5) — wrapped in fleet-level
    recovery machinery (§6.6): a per-request exception barrier, a
    supervisor that respawns dead worker domains, per-request
    cycle/wall-clock deadlines, a bounded retry ladder, and a
    per-workload-key quarantine circuit breaker. *)

type boot = {
  boot_machine : unit -> Vm.Machine.t;
      (** create a machine with the program image cold-loaded
          (see {!Asm.Image.load_cold}); no thread yet *)
  boot_entry : int;
  boot_stack_top : int;
  boot_restore : Vm.Machine.t -> zeroed:(int * int) list -> (int * int) list;
      (** re-blit image slices over just-zeroed pages
          (see {!Asm.Image.restore}) *)
  boot_opts : Options.t;
  boot_client : unit -> Types.client;
      (** fresh client per instance: client state must be per-domain *)
  boot_image_digest : int;
      (** {!Asm.Image.digest} of the program: stamps saved cache images
          and validates loaded ones *)
  boot_cache : string option;
      (** path of a saved cache image ({!Persist}) to warm-boot every
          new instance of this key from; a refused load (different
          program or options, corruption, truncation) falls back to a
          plain cold boot *)
}

type request = {
  req_id : int;      (** caller-chosen correlation id, echoed in the result *)
  req_key : string;  (** workload key; selects the boot and the warm instance *)
  req_seed : int;
  req_input : int list;          (** full input stream for this request *)
  req_expect : int list option;  (** expected output (native reference), if known *)
}

type result = {
  res_id : int;            (** the request's [req_id] *)
  res_key : string;
  res_seed : int;
  res_worker : int;        (** domain that executed the final attempt *)
  res_home : int;          (** domain the final attempt was dequeued from *)
  res_stolen : bool;
  res_warm : bool;         (** final attempt served by an already-warm instance *)
  res_attempts : int;      (** total attempts, including the successful/last one *)
  res_output : int list;
  res_reason : Engine.stop_reason;
      (** [Crashed] when the final attempt raised out of the engine and
          the exception barrier absorbed it; [Deadline_exceeded] when
          the watchdog preempted it *)
  res_cycles : int;        (** simulated cycles of the final attempt *)
  res_insns : int;
  res_blocks_built : int;  (** basic blocks built during the final attempt *)
  res_secs : float;        (** host wall-clock seconds of the final attempt *)
  res_ok : bool;           (** exited normally and matched [req_expect] *)
}

(** Why {!submit} or {!try_submit} refused a request. *)
type reject =
  | Unknown_key of string  (** no boot registered for this workload key *)
  | Quarantined of string  (** the key's circuit breaker is open and a
                               probe is already in flight *)
  | Overloaded of int * int
      (** {!try_submit} admission bound hit: [(admitted, accept_queue)] *)
  | Pool_stopping

val reject_to_string : reject -> string

type snapshot = {
  snap_domains : int;
  snap_submitted : int;
  snap_completed : int;
  snap_steals : int;
  snap_warm_hits : int;
  snap_cold_boots : int;
  snap_busy_cycles : int array;  (** per-worker simulated cycles served *)
  snap_stats : Stats.t;          (** merge over all live warm instances *)
  snap_crashes : int;            (** attempts that ended in [Crashed] *)
  snap_deadline_hits : int;      (** attempts preempted by the watchdog *)
  snap_retries : int;            (** retry-ladder activations *)
  snap_requeues : int;           (** jobs pushed back onto a deque (migration
                                     rung + supervisor recoveries) *)
  snap_respawns : int;           (** worker domains respawned by the supervisor *)
  snap_reloads : int;            (** {!drain_and_reload} cycles completed *)
  snap_rejected_unknown : int;
  snap_rejected_quarantined : int;
  snap_quarantine_opens : int;   (** circuit breakers opened *)
  snap_quarantine_closes : int;  (** breakers closed by a successful request *)
  snap_probes : int;             (** probe requests admitted through open breakers *)
  snap_quarantined_now : int;    (** keys whose breaker is open right now *)
  snap_cache_loads : int;        (** instances warm-booted from a saved image *)
  snap_cache_refused : int;      (** image loads refused (fell back to cold) *)
  snap_profile_publishes : int;  (** successful requests that published learned
                                     profiles to the shared store *)
  snap_prewarms : int;           (** instances seeded from the shared store *)
  snap_live_domains : int;       (** workers currently serving (not parked) *)
  snap_shed : int;               (** {!try_submit} rejections for overload *)
  snap_batch_hits : int;         (** same-key dequeue picks by the batcher *)
  snap_scale_ups : int;          (** autoscaler wake events *)
  snap_scale_downs : int;        (** autoscaler park events *)
  snap_prewarm_boots : int;      (** instances built eagerly at boot/reload *)
}

type t

val create :
  ?cfg:Options.pool_opts ->
  ?chaos:Faultinject.chaos_opts ->
  boots:(string * boot) list ->
  unit ->
  t
(** Spawn the worker domains and the supervisor domain.  [cfg]
    (default {!Options.default_pool}) is validated with
    {!Options.validate_pool_exn}; it sets the domain count, in-flight
    cap, deque capacity, sharding policy, retry-ladder depth,
    quarantine threshold, and per-request deadlines.  [chaos] arms
    pool-scope fault injection: each worker gets a private
    deterministic stream derived from [ch_seed] and its worker id.
    @raise Options.Invalid_options on a rejected [cfg]. *)

val domains : t -> int

val submit : t -> request -> (unit, reject) Stdlib.result
(** Validate and enqueue on the request's home worker; blocks while the
    in-flight cap is reached.  Returns [Error] — never raises — when
    the key has no registered boot, when the key's circuit breaker is
    open with a probe already in flight, or after {!shutdown}.  When
    the breaker is open and no probe is in flight, the request is
    admitted {e as} the probe: its success closes the breaker, its
    failure re-arms it.  With [affinity] enabled, routing prefers the
    worker that last served the key (the warm instance's home),
    falling back to a key hash. *)

val try_submit : t -> request -> (unit, reject) Stdlib.result
(** {!submit} without blocking: where [submit] would wait for in-flight
    space, this sheds with [Overloaded] once admitted-but-unfinished
    requests reach the [accept_queue] bound — the serving front-end's
    typed backpressure (DESIGN.md §6.10). *)

val drain : t -> result list
(** Wait until every submitted request has completed; return (and
    clear) the accumulated results in completion order. *)

val take_results : t -> result list
(** Results completed so far, in completion order, without waiting;
    the server's poll loop pairs this with {!try_submit} to stream
    responses while other requests are still in flight. *)

val drain_and_reload : ?rebuild:bool -> t -> unit
(** Quiesce service (claimed requests finish, queued requests wait),
    drop every warm instance — with [~rebuild:true], build fresh
    pre-warmed instances for every (worker, key) pair — reset all
    quarantine breakers, and resume.  Accepted requests are never
    dropped: anything still queued is served by the reloaded fleet.
    @raise Invalid_argument if a reload is already in progress. *)

val reset_counters : t -> unit
(** Zero steal/warm/busy/supervision counters between measurement
    passes.  Call only when drained. *)

val warm_instances : t -> (int * string * Engine.t) list
(** Every live warm instance as [(worker_id, key, engine)], sorted.
    Coherent only when the pool is quiescent (after {!drain}); the
    returned engines are still owned by their workers and must not be
    driven.  Lets tests and the autotuner verify which {!Options.t} a
    per-workload bundle override actually reached. *)

val stats : t -> snapshot
(** Counters plus runtime stats merged across all live warm instances.
    Merged stats are coherent only when the pool is quiescent. *)

val cache_file_name : string -> string
(** The file name a workload key's cache image is saved under inside
    the {!save_caches} directory (key sanitized + [".riocache"]). *)

val save_caches : t -> dir:string -> (string * string * int) list
(** Persist the fleet's warm code caches (DESIGN.md §6.8): for every
    registered key with a non-empty live instance, save the fullest
    instance's relocatable image to [dir]/{!cache_file_name}[ key],
    stamped with the key's [boot_image_digest].  Returns [(key, path,
    fragments_persisted)] per image written.  Pair with a [boot_cache]
    pointing at the same path to warm-boot the next fleet.
    @raise Invalid_argument unless the pool is drained. *)

val shutdown : t -> unit
(** Stop accepting work, let workers finish queued requests, join the
    supervisor and every worker domain (including respawned ones). *)
